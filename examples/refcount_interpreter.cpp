/**
 * @file
 * The paper's motivating scenario (§1, §3): a bytecode interpreter
 * whose threads elide a global lock and constantly bump reference
 * counts of shared objects. Run the python_opt workload model at a
 * small scale under eager / lazy-vb / RETCON and report speedups over
 * sequential — the headline "no scaling becomes near-linear scaling"
 * result, scaled down to run in seconds.
 */

#include <cstdio>

#include "api/runner.hpp"

using namespace retcon;

int
main()
{
    std::printf("python_opt (refcount interpreter), 16 cores, small "
                "input\n");
    api::RunConfig cfg;
    cfg.workload = "python_opt";
    cfg.nthreads = 16;
    cfg.scale = 0.25;
    Cycle seq = api::sequentialCycles(cfg);
    std::printf("sequential: %llu cycles\n",
                (unsigned long long)seq);
    for (auto &[label, tm] : api::paperConfigs()) {
        cfg.tm = tm;
        api::RunResult r = api::runOnce(cfg);
        std::printf("%-8s %10llu cycles  speedup %5.2fx  (aborts %llu, "
                    "valid=%s)\n",
                    label, (unsigned long long)r.cycles,
                    double(seq) / double(r.cycles),
                    (unsigned long long)r.machineStats.aborts,
                    r.validation.ok ? "yes" : "NO");
    }
    return 0;
}
