/**
 * @file
 * The hashtable size-field scenario (§3): threads insert distinct keys
 * into a shared resizable hashtable. Every insert increments the
 * shared size field — a conceptually non-conflicting update that
 * serializes the baseline HTM and that RETCON repairs symbolically at
 * commit. Uses the ds::SimHashtable directly to show how simulated
 * data structures are driven from coroutine transaction bodies.
 */

#include <cstdio>

#include "ds/hashtable.hpp"
#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

ds::SimHashtable table;
std::unique_ptr<ds::SimAllocator> alloc;
constexpr int kInsertsPerThread = 64;

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kInsertsPerThread; ++i) {
        Word key =
            ds::hashKey(ctx.tid() * kInsertsPerThread + i + 1);
        co_await ctx.txn([&ctx, key](Tx &tx) {
            return table.insert(tx, ctx.tid(), key, key);
        });
        co_await ctx.work(400); // Per-item application work.
    }
    co_await ctx.barrier();
}

} // namespace

int
main()
{
    std::printf("8 threads x %d inserts into one resizable hashtable\n",
                kInsertsPerThread);
    for (auto mode : {htm::TMMode::Eager, htm::TMMode::Retcon}) {
        ClusterConfig cfg;
        cfg.numThreads = 8;
        cfg.tm.mode = mode;
        Cluster cluster(cfg);
        alloc = std::make_unique<ds::SimAllocator>(0x10000000, 4 << 20,
                                                   cfg.numThreads);
        table = ds::SimHashtable::create(cluster.memory(), *alloc, 256,
                                         /*resizable=*/true);
        cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
        Cycle cycles = cluster.run();
        auto stats = cluster.aggregateStats();
        std::printf("%-8s size=%llu cycles=%llu aborts=%llu\n",
                    htm::tmModeName(mode),
                    (unsigned long long)table.hostSize(cluster.memory()),
                    (unsigned long long)cycles,
                    (unsigned long long)stats.aborts);
    }
    return 0;
}
