/**
 * @file
 * Figure 2 as a runnable example: two processors repeatedly increment
 * one shared counter under five conflict-handling schemes, with the
 * machine's trace hook printing the first transactions' timelines so
 * the mechanisms are visible (RETCON's repair, DATM's forwarding and
 * cycle abort, eager aborts/stalls, lazy committer-wins).
 */

#include <cstdio>

#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x2000;

Task<TxValue>
twoIncrements(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    co_await tx.store(kCounter, tx.add(v, 1));
    co_await tx.work(30);
    TxValue w = co_await tx.load(kCounter);
    co_await tx.store(kCounter, tx.add(w, 1));
    co_return w;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < 3; ++i)
        co_await ctx.txn([](Tx &tx) { return twoIncrements(tx); });
    co_await ctx.barrier();
}

} // namespace

int
main()
{
    for (auto mode : {htm::TMMode::Retcon, htm::TMMode::DATM,
                      htm::TMMode::Eager, htm::TMMode::Lazy}) {
        std::printf("=== %s ===\n", htm::tmModeName(mode));
        ClusterConfig cfg;
        cfg.numThreads = 2;
        cfg.tm.mode = mode;
        Cluster cluster(cfg);
        cluster.machine().predictor().observeConflict(
            blockAddr(kCounter));
        int shown = 0;
        cluster.machine().setTraceHook(
            [&shown](const htm::TraceEvent &e) {
                if (shown < 24) {
                    std::printf("  cyc %5llu  p%u  %-12s addr=0x%llx "
                                "val=%llu\n",
                                (unsigned long long)e.cycle, e.core,
                                e.kind, (unsigned long long)e.addr,
                                (unsigned long long)e.value);
                    ++shown;
                }
            });
        cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
        Cycle end = cluster.run();
        std::printf("  final=%llu (want 12) in %llu cycles\n",
                    (unsigned long long)cluster.memory().readWord(
                        kCounter),
                    (unsigned long long)end);
    }
    return 0;
}
