/**
 * @file
 * Quickstart: simulate 8 cores incrementing a shared counter inside
 * transactions, under the baseline eager HTM and under RETCON, and
 * print the cycle counts. Demonstrates the whole public API surface:
 * Cluster construction, coroutine thread programs, transactional
 * load/add/store with symbolic tracking, and statistics.
 *
 * Expected output: both runs produce the correct final counter value;
 * RETCON commits with far fewer aborts and fewer total cycles because
 * remote increments are repaired at commit instead of causing aborts.
 */

#include <cstdio>

#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIncrementsPerThread = 100;

/** One transaction: counter += 1, tracked symbolically. */
Task<TxValue>
increment(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

/** Per-thread program: increment, then do some private work. */
Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIncrementsPerThread; ++i) {
        co_await ctx.txn([](Tx &tx) { return increment(tx); });
        co_await ctx.work(50);
    }
    co_await ctx.barrier();
}

Cycle
runMode(htm::TMMode mode, const char *label)
{
    ClusterConfig cfg;
    cfg.numThreads = 8;
    cfg.tm.mode = mode;
    Cluster cluster(cfg);
    // Pre-train the conflict predictor for the counter block, as a
    // warmed-up system would be.
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));
    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    Cycle cycles = cluster.run();
    auto stats = cluster.aggregateStats();
    std::printf("%-8s counter=%llu cycles=%llu commits=%llu aborts=%llu\n",
                label,
                (unsigned long long)cluster.memory().readWord(kCounter),
                (unsigned long long)cycles,
                (unsigned long long)stats.commits,
                (unsigned long long)stats.aborts);
    return cycles;
}

} // namespace

int
main()
{
    std::printf("8 threads x %d transactional increments of one shared "
                "counter\n",
                kIncrementsPerThread);
    Cycle eager = runMode(htm::TMMode::Eager, "eager");
    Cycle rc = runMode(htm::TMMode::Retcon, "retcon");
    std::printf("RETCON speedup over eager: %.2fx\n",
                double(eager) / double(rc));
    return 0;
}
