/**
 * @file
 * Provenance & repair-audit demo: run the shared-counter workload
 * under RETCON with the trace subsystem attached, reenact every
 * repaired commit against architectural memory, and export the event
 * stream for offline analysis.
 *
 * Expected output: hundreds of repaired commits, every one re-derived
 * by the ReenactmentValidator with zero mismatches, followed by a
 * negative control where repairs are deliberately corrupted via
 * TMConfig::faultInjectRepairXor and the validator flags them.
 */

#include <cstdio>

#include "exec/cluster.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "trace/reenact.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIncrementsPerThread = 100;

Task<TxValue>
increment(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIncrementsPerThread; ++i) {
        co_await ctx.txn([](Tx &tx) { return increment(tx); });
        co_await ctx.work(50);
    }
    co_await ctx.barrier();
}

trace::ReenactReport
runAudited(Word fault_xor)
{
    ClusterConfig cfg;
    cfg.numThreads = 8;
    cfg.tm.mode = htm::TMMode::Retcon;
    cfg.tm.faultInjectRepairXor = fault_xor;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));

    trace::TraceRecorder recorder(1 << 14);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    trace::MultiSink sink;
    sink.add(&recorder);
    sink.add(&validator);
    cluster.setTraceSink(&sink);

    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    Cycle cycles = cluster.run();

    std::printf("counter=%llu cycles=%llu events=%llu (%zu retained)\n",
                (unsigned long long)cluster.memory().readWord(kCounter),
                (unsigned long long)cycles,
                (unsigned long long)recorder.totalEvents(),
                recorder.size());
    std::printf("%s\n", validator.report().summary().c_str());
    for (const auto &m : validator.report().samples)
        std::printf("  %s\n", m.describe().c_str());

    if (fault_xor == 0) {
        std::size_t n =
            trace::exportJsonFile(recorder, "trace_audit.jsonl");
        trace::exportCsvFile(recorder, "trace_audit.csv");
        std::printf("exported %zu events to trace_audit.{jsonl,csv}\n",
                    n);
    }
    return validator.report();
}

} // namespace

int
main()
{
    std::printf("== clean run: every repair must reenact exactly ==\n");
    trace::ReenactReport clean = runAudited(0);

    std::printf("\n== corrupted run: repairs XORed with 0x40, the "
                "oracle must object ==\n");
    trace::ReenactReport corrupt = runAudited(0x40);

    bool ok = clean.ok() && clean.repairsChecked > 0 && !corrupt.ok();
    std::printf("\naudit demo %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
