#!/usr/bin/env python3
"""Compare fresh bench output against the committed baselines.

Reads the two bench JSON documents the CI bench job produces:

  BENCH_service_scalability.json  service_scalability --quick --json
  BENCH_micro_structures.json     micro_structures --benchmark_out=...
  BENCH_trace_stream.json         trace_stream --quick --json

and compares them against the copies committed under bench/baselines/.
Two very different tolerance regimes apply:

  * Simulated metrics (cycles, commits/kcycle, throughput gain) are
    produced by a deterministic simulator: identical code must produce
    identical numbers on any host. A small band (--sim-tolerance,
    default 2%) only absorbs legitimate rounding in derived ratios; a
    real change beyond it — in EITHER direction — means the PR changed
    simulated behaviour and must either fix the regression or
    consciously update the baseline (docs/repro-guide.md describes
    how). Unacknowledged improvements fail too: a stale baseline
    would let a later regression back down to it pass unnoticed.

  * Host-time metrics (micro_structures items_per_second, and the
    service bench's host_wall_ms — per point and along the
    host-threads axis) vary with the runner, so only large
    regressions fail (--host-tolerance, default 60% slower — the
    linear scans this guards against regress lookups by 10-50x, not
    10%). Improvements never fail.

Exit status: 0 when everything is within tolerance, 1 on any
regression or missing/malformed file. --report writes the comparison
table to a file (the nightly uploads it as an artifact).
"""

import argparse
import json
import sys
from pathlib import Path

SERVICE = "BENCH_service_scalability.json"
MICRO = "BENCH_micro_structures.json"
TRACE = "BENCH_trace_stream.json"


class Reporter:
    def __init__(self, path):
        self.lines = []
        self.path = path
        self.failures = 0

    def line(self, text=""):
        print(text)
        self.lines.append(text)

    def fail(self, text):
        self.failures += 1
        self.line(f"FAIL: {text}")

    def close(self):
        if self.path:
            Path(self.path).write_text("\n".join(self.lines) + "\n")


def load(path, rep):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        rep.fail(f"missing {path}")
    except json.JSONDecodeError as e:
        rep.fail(f"malformed {path}: {e}")
    return None


def check_host_ms(label, bp, fp, tol, rep):
    """Gate one host_wall_ms pair: one-sided, lower is better."""
    b, f = bp.get("host_wall_ms"), fp.get("host_wall_ms")
    if not b or f is None:
        return
    delta = (f - b) / b
    verdict = "ok" if f <= b * (1 + tol) else "REGRESSED"
    rep.line(f"  {label}: {b:.1f} -> {f:.1f} ms host wall "
             f"({delta:+.1%}) {verdict}")
    if verdict != "ok":
        rep.fail(f"host wall time at {label} regressed {delta:+.1%} "
                 f"(tolerance +{tol:.0%})")


def check_service(base, fresh, tol, host_tol, rep):
    rep.line(f"== service_scalability (simulated, tolerance {tol:.0%})")
    if base.get("scale") != fresh.get("scale") or \
            base.get("nthreads") != fresh.get("nthreads"):
        rep.line(
            f"  note: sizing changed "
            f"(baseline scale={base.get('scale')} nthreads="
            f"{base.get('nthreads')}, fresh scale={fresh.get('scale')} "
            f"nthreads={fresh.get('nthreads')}); update the baseline")
    base_pts = {(p.get("shards"), p.get("banks", 1)): p
                for p in base.get("points", [])}
    fresh_pts = {(p.get("shards"), p.get("banks", 1)): p
                 for p in fresh.get("points", [])}
    for key, bp in sorted(base_pts.items()):
        fp = fresh_pts.get(key)
        label = f"{key[0]} shards x {key[1]} banks"
        if fp is None:
            rep.fail(f"service point {label} missing from fresh run")
            continue
        b, f = bp["commits_per_kcycle"], fp["commits_per_kcycle"]
        delta = (f - b) / b if b else 0.0
        # Two-sided: the simulator is deterministic, so a change in
        # EITHER direction means simulated behaviour changed and the
        # baseline must be consciously regenerated (an unacknowledged
        # improvement would let a later regression back to the stale
        # baseline pass unnoticed).
        verdict = "ok" if abs(delta) <= tol else (
            "REGRESSED" if delta < 0 else "CHANGED (update baseline)")
        rep.line(f"  {label}: {b:.4f} -> {f:.4f} commits/kcycle "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"service throughput at {label} changed "
                     f"{delta:+.1%} (tolerance +/-{tol:.0%})")
    for key in sorted(set(fresh_pts) - set(base_pts)):
        rep.line(f"  note: new point {key[0]}x{key[1]} has no baseline")
    # The fleet axis (2-cluster scale-out, docs/fleet.md) is keyed by
    # cross-cluster fraction; the same deterministic two-sided band
    # applies.
    base_fleet = {p.get("xc_fraction"): p
                  for p in base.get("fleet_points", [])}
    fresh_fleet = {p.get("xc_fraction"): p
                   for p in fresh.get("fleet_points", [])}
    for xc, bp in sorted(base_fleet.items()):
        fp = fresh_fleet.get(xc)
        label = f"fleet xc={xc:.2f}"
        if fp is None:
            rep.fail(f"service point {label} missing from fresh run")
            continue
        b, f = bp["commits_per_kcycle"], fp["commits_per_kcycle"]
        delta = (f - b) / b if b else 0.0
        verdict = "ok" if abs(delta) <= tol else (
            "REGRESSED" if delta < 0 else "CHANGED (update baseline)")
        rep.line(f"  {label}: {b:.4f} -> {f:.4f} commits/kcycle "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"service throughput at {label} changed "
                     f"{delta:+.1%} (tolerance +/-{tol:.0%})")
    for xc in sorted(set(fresh_fleet) - set(base_fleet)):
        rep.line(f"  note: new fleet point xc={xc:.2f} has no baseline")
    # Scenario axis (docs/scenarios.md): one point per registered
    # scenario at the top scale-up config. Throughput sits in the
    # deterministic two-sided band; the arrival ledger fields are
    # exact simulated counters, so any drift at all means traffic-shape
    # behaviour changed and the baseline must be regenerated.
    base_scen = {p.get("scenario"): p
                 for p in base.get("scenario_points", [])}
    fresh_scen = {p.get("scenario"): p
                  for p in fresh.get("scenario_points", [])}
    for name, bp in sorted(base_scen.items()):
        fp = fresh_scen.get(name)
        label = f"scenario {name}"
        if fp is None:
            rep.fail(f"service point {label} missing from fresh run")
            continue
        b, f = bp["commits_per_kcycle"], fp["commits_per_kcycle"]
        delta = (f - b) / b if b else 0.0
        verdict = "ok" if abs(delta) <= tol else (
            "REGRESSED" if delta < 0 else "CHANGED (update baseline)")
        rep.line(f"  {label}: {b:.4f} -> {f:.4f} commits/kcycle "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"service throughput at {label} changed "
                     f"{delta:+.1%} (tolerance +/-{tol:.0%})")
        for field in ("injected", "completed", "dropped"):
            bv, fv = bp.get(field), fp.get(field)
            if bv is not None and fv is not None and bv != fv:
                rep.fail(f"{label} {field} changed {bv} -> {fv} "
                         f"(deterministic arrival ledger)")
    for name in sorted(set(fresh_scen) - set(base_scen)):
        rep.line(f"  note: new scenario point {name} has no baseline")
    bg, fg = base.get("throughput_gain"), fresh.get("throughput_gain")
    if bg is not None and fg is not None and bg > 0:
        delta = (fg - bg) / bg
        verdict = "ok" if abs(delta) <= tol else (
            "REGRESSED" if delta < 0 else "CHANGED (update baseline)")
        rep.line(f"  scale-out gain: {bg:.4f}x -> {fg:.4f}x "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"scale-out gain changed {delta:+.1%} "
                     f"(tolerance +/-{tol:.0%})")

    # Host wall time (one-sided, wide band): per scale-up point, and
    # along the host-threads axis of the host-parallel engine
    # (docs/parallel-engine.md). The axis points' simulated fields are
    # self-checked by the bench itself (bit-identity to sequential),
    # so only their wall clock is compared here.
    rep.line(f"== service_scalability (host time, tolerance "
             f"{host_tol:.0%})")
    for key, bp in sorted(base_pts.items()):
        fp = fresh_pts.get(key)
        if fp is not None:
            check_host_ms(f"{key[0]} shards x {key[1]} banks", bp, fp,
                          host_tol, rep)
    base_host = {p.get("host_threads"): p
                 for p in base.get("host_points", [])}
    fresh_host = {p.get("host_threads"): p
                  for p in fresh.get("host_points", [])}
    for ht, bp in sorted(base_host.items()):
        fp = fresh_host.get(ht)
        if fp is None:
            rep.fail(f"host point at {ht} host threads missing from "
                     f"fresh run")
            continue
        check_host_ms(f"{ht} host threads", bp, fp, host_tol, rep)
    for ht in sorted(set(fresh_host) - set(base_host)):
        rep.line(f"  note: new host point at {ht} threads has no "
                 f"baseline")


def check_micro(base, fresh, tol, rep):
    rep.line(f"== micro_structures (host time, tolerance {tol:.0%})")

    def rates(doc):
        out = {}
        for b in doc.get("benchmarks", []):
            rate = b.get("items_per_second")
            if rate:
                out[b["name"]] = rate
        return out

    base_rates, fresh_rates = rates(base), rates(fresh)
    if not base_rates:
        rep.fail("baseline micro_structures has no items_per_second")
        return
    for name, b in sorted(base_rates.items()):
        f = fresh_rates.get(name)
        if f is None:
            rep.fail(f"micro benchmark {name} missing from fresh run")
            continue
        delta = (f - b) / b
        verdict = "ok" if f >= b * (1 - tol) else "REGRESSED"
        rep.line(f"  {name}: {b / 1e6:.1f} -> {f / 1e6:.1f} Mitems/s "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"micro benchmark {name} regressed {delta:+.1%} "
                     f"(tolerance -{tol:.0%})")
    for name in sorted(set(fresh_rates) - set(base_rates)):
        rep.line(f"  note: new benchmark {name} has no baseline")


def check_trace(base, fresh, tol, host_tol, rep):
    """Gate the streaming trace format bench (docs/streaming.md).

    The format itself is deterministic — bytes_per_record and the
    service run's record count cannot move without a format or
    instrumentation change, so they sit in the two-sided simulated
    band. The codec rates are host time (wide one-sided band), and
    cycles_identical is an absolute invariant: a stream writer that
    perturbs the simulation is a correctness bug, not a slowdown.
    """
    rep.line(f"== trace_stream (simulated, tolerance {tol:.0%})")
    if fresh.get("cycles_identical") is not True:
        rep.fail("trace_stream: streaming perturbed simulated cycles")
    for label, getter in [
        ("bytes/record", lambda d: d.get("bytes_per_record")),
        ("service records",
         lambda d: (d.get("service") or {}).get("records")),
        ("service bytes",
         lambda d: (d.get("service") or {}).get("bytes_written")),
    ]:
        b, f = getter(base), getter(fresh)
        if not b or f is None:
            rep.line(f"  note: {label} missing from baseline or fresh")
            continue
        delta = (f - b) / b
        verdict = "ok" if abs(delta) <= tol else (
            "REGRESSED" if delta < 0 else "CHANGED (update baseline)")
        rep.line(f"  {label}: {b:.1f} -> {f:.1f} ({delta:+.1%}) "
                 f"{verdict}")
        if verdict != "ok":
            rep.fail(f"trace_stream {label} changed {delta:+.1%} "
                     f"(tolerance +/-{tol:.0%})")
    rep.line(f"== trace_stream (host time, tolerance {host_tol:.0%})")
    for label in ("write_recs_per_sec", "read_recs_per_sec"):
        b, f = base.get(label), fresh.get(label)
        if not b or f is None:
            rep.line(f"  note: {label} missing from baseline or fresh")
            continue
        delta = (f - b) / b
        verdict = "ok" if f >= b * (1 - host_tol) else "REGRESSED"
        rep.line(f"  {label}: {b / 1e6:.2f} -> {f / 1e6:.2f} Mrecs/s "
                 f"({delta:+.1%}) {verdict}")
        if verdict != "ok":
            rep.fail(f"trace_stream {label} regressed {delta:+.1%} "
                     f"(tolerance -{host_tol:.0%})")
    # Flush stalls are informational (host-side, sub-ms in CI sizing);
    # report the trend without gating it.
    bs = (base.get("service") or {}).get("flush_wall_ms")
    fs = (fresh.get("service") or {}).get("flush_wall_ms")
    if bs is not None and fs is not None:
        rep.line(f"  note: flush stalls {bs:.2f} -> {fs:.2f} ms "
                 f"(informational)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="directory with committed BENCH_*.json")
    ap.add_argument("--fresh-dir", default="build",
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--sim-tolerance", type=float, default=0.02,
                    help="relative band for simulated metrics")
    ap.add_argument("--host-tolerance", type=float, default=0.60,
                    help="relative band for host-time metrics (wide: "
                         "CI runners differ; the scans this guards "
                         "against regress by 10x, not 10%%)")
    ap.add_argument("--skip-micro", action="store_true",
                    help="skip the host-time comparison (no benchmark "
                         "library on this host)")
    ap.add_argument("--report", default=None,
                    help="also write the comparison table to this file")
    args = ap.parse_args()

    rep = Reporter(args.report)
    base_dir, fresh_dir = Path(args.baseline_dir), Path(args.fresh_dir)

    svc_base = load(base_dir / SERVICE, rep)
    svc_fresh = load(fresh_dir / SERVICE, rep)
    if svc_base and svc_fresh:
        check_service(svc_base, svc_fresh, args.sim_tolerance,
                      args.host_tolerance, rep)

    trace_base = load(base_dir / TRACE, rep)
    trace_fresh = load(fresh_dir / TRACE, rep)
    if trace_base and trace_fresh:
        check_trace(trace_base, trace_fresh, args.sim_tolerance,
                    args.host_tolerance, rep)

    if args.skip_micro:
        rep.line("== micro_structures skipped (--skip-micro)")
    else:
        micro_base = load(base_dir / MICRO, rep)
        micro_fresh = load(fresh_dir / MICRO, rep)
        if micro_base and micro_fresh:
            check_micro(micro_base, micro_fresh, args.host_tolerance,
                        rep)

    if rep.failures:
        rep.line(f"\n{rep.failures} regression(s); to accept a "
                 "deliberate change, regenerate bench/baselines "
                 "(docs/repro-guide.md)")
    else:
        rep.line("\nall benches within tolerance")
    rep.close()
    return 1 if rep.failures else 0


if __name__ == "__main__":
    sys.exit(main())
