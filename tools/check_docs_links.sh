#!/usr/bin/env bash
# Fail on broken intra-repo markdown links in README.md and docs/*.md.
#
# Checks every inline link target `[text](target)`: external links
# (scheme://, mailto:) are skipped, pure-anchor links (#section) are
# skipped, and everything else must exist on disk relative to the
# file containing the link (any #fragment is stripped first).
#
# Additionally enforces the documentation contract: the pages listed
# in required_pages must exist AND be linked from README.md, so a
# page can neither be deleted nor orphaned without CI noticing.
#
# Usage: tools/check_docs_links.sh   (from anywhere; repo-relative)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
checked=0

required_pages="docs/architecture.md docs/trace-format.md \
docs/repro-guide.md docs/workloads.md docs/tuning.md docs/fleet.md \
docs/parallel-engine.md docs/trace-query.md docs/what-if.md \
docs/streaming.md docs/scenarios.md"
for page in $required_pages; do
    if [ ! -f "$repo_root/$page" ]; then
        echo "MISSING: required page $page does not exist" >&2
        status=1
    elif ! grep -q "]($page" "$repo_root/README.md"; then
        echo "ORPHANED: $page is not linked from README.md" >&2
        status=1
    fi
done

for doc in "$repo_root"/README.md "$repo_root"/docs/*.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # One inline link target per line. Markdown images share the
    # (target) syntax, so they are covered too.
    while IFS= read -r target; do
        case "$target" in
            *://*|mailto:*) continue ;;  # external
            '#'*) continue ;;            # same-file anchor
            # GitHub UI routes (CI badge / workflow-run pages): real
            # on github.com, never files in the tree.
            *actions/workflows/*) continue ;;
            '') continue ;;
        esac
        path="${target%%#*}"             # strip fragment
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ] && [ ! -e "$repo_root/$path" ]; then
            echo "BROKEN: $doc -> $target" >&2
            status=1
        fi
    done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$checked" -eq 0 ]; then
    echo "no intra-repo links found — checker misconfigured?" >&2
    exit 1
fi
echo "checked $checked link(s), $( [ $status -eq 0 ] && echo all resolve || echo BROKEN LINKS FOUND )"
exit $status
