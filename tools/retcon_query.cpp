// retcon-query: interrogate a recorded provenance trace, or re-run a
// recorded configuration with one knob changed and see exactly how far
// the change reached (docs/trace-query.md, docs/what-if.md).
//
// Usage:
//   retcon-query <trace-file> stats
//   retcon-query <trace-file> timeline <block-addr>
//   retcon-query <trace-file> blame <attempt-uid | mark:<id>>
//   retcon-query <trace-file> diff <commit-seq>
//   retcon-query whatif [run options] [--set knob=value]...
//   retcon-query smoke
//
// <trace-file> is any export format — framed binary .rtt
// (docs/streaming.md), JSON Lines, or CSV — and the loader sniffs
// which. Addresses accept 0x-prefixed hex.
//
// whatif run options (the recorded base configuration):
//   --workload W  (default service)   --nthreads N  (default 8)
//   --seed S      (default 1)         --scale F     (default 0.1)
//   --partitions P (service state partitions, default 1)
//   --annotate-phases  (service phase marks, default off)
// Each --set knob=value is one change; see api::applyKnob for the
// knob vocabulary. With no --set the variant is the base itself and
// the report must show a bit-identical run with 100% prefix reuse —
// the determinism self-check.
//
// smoke: self-contained CI check — record a quick contended service
// run, export, reload, exercise every query surface, then run both
// whatif proofs (no-change bit-identity and a conflict-class change
// with a sound divergence frontier). Exits nonzero on any failure.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/whatif.hpp"
#include "query/index.hpp"
#include "query/loader.hpp"
#include "query/replay.hpp"

using namespace retcon;

namespace {

bool
parseAddr(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s, &end, 0); // Base 0: accepts 0x... and dec.
    return errno == 0 && end != s && *end == '\0';
}

void
printRecord(const trace::Record &r)
{
    std::printf("  seq %-8" PRIu64 " cyc %-10" PRIu64
                " core %-3u %-13s addr 0x%" PRIx64 " a %" PRIu64
                " b %" PRIu64,
                r.seq, r.cycle, r.core, trace::eventKindName(r.kind),
                r.addr, r.a, r.b);
    if (r.hasSym)
        std::printf(" sym[0x%" PRIx64 "%+" PRId64 "]", r.sym.root,
                    r.sym.delta);
    if (r.kind == trace::EventKind::Abort)
        std::printf(" cause=%s",
                    htm::abortCauseName(
                        static_cast<htm::AbortCause>(r.aux)));
    std::printf("\n");
}

int
cmdStats(const query::TraceIndex &idx)
{
    query::TraceStats st = idx.stats();
    std::printf("records   %" PRIu64 "  (cycles %" PRIu64 "..%" PRIu64
                ")\n",
                st.records, st.firstCycle, st.lastCycle);
    std::printf("attempts  %" PRIu64 "  commits %" PRIu64
                "  aborts %" PRIu64 "  repairs %" PRIu64
                "  forwards %" PRIu64 "  marks %" PRIu64 "\n",
                st.attempts, st.commits, st.aborts, st.repairs,
                st.forwards, st.marks);
    for (int c = 0; c < 10; ++c)
        if (st.abortsByCause[c] != 0)
            std::printf("  aborts[%s] %" PRIu64 "\n",
                        htm::abortCauseName(
                            static_cast<htm::AbortCause>(c)),
                        st.abortsByCause[c]);
    std::printf("blocks    %" PRIu64 " touched", st.distinctBlocks);
    if (!st.hotBlocks.empty()) {
        std::printf("; hottest:");
        for (std::size_t i = 0; i < st.hotBlocks.size() && i < 5; ++i)
            std::printf(" 0x%" PRIx64 "(%" PRIu64 ")",
                        st.hotBlocks[i].first, st.hotBlocks[i].second);
    }
    std::printf("\n");
    const trace::DepGraph &g = idx.graph();
    std::printf("graph     %zu attempts, %zu edges; frontier: "
                "contention ",
                g.attempts.size(), g.edges.size());
    if (g.firstContentionSeq == trace::kSeqUnreached)
        std::printf("none");
    else
        std::printf("seq %" PRIu64, g.firstContentionSeq);
    std::printf("\n");
    return 0;
}

int
cmdTimeline(const query::TraceIndex &idx, const char *arg)
{
    std::uint64_t block = 0;
    if (!parseAddr(arg, block)) {
        std::fprintf(stderr, "timeline: bad block address '%s'\n", arg);
        return 2;
    }
    auto tl = idx.blockTimeline(block);
    std::printf("block 0x%" PRIx64 ": %zu records\n", blockAddr(block),
                tl.size());
    for (const query::TimelineEntry &e : tl) {
        const trace::Record &r = idx.records()[e.recordIdx];
        std::printf("[uid %-6" PRIu64 "]", e.uid);
        printRecord(r);
    }
    return tl.empty() ? 1 : 0;
}

int
blameOne(const query::TraceIndex &idx, std::uint64_t uid)
{
    auto chain = idx.blameChain(uid);
    if (chain.empty()) {
        std::printf("attempt %" PRIu64
                    ": no abort recorded (nothing to blame)\n",
                    uid);
        return 1;
    }
    for (const query::BlameLink &l : chain) {
        std::printf("attempt %" PRIu64 " aborted (%s)", l.uid,
                    htm::abortCauseName(
                        static_cast<htm::AbortCause>(l.cause)));
        if (l.block != 0)
            std::printf(" on block 0x%" PRIx64, l.block);
        if (l.winnerUid != 0)
            std::printf(" -> lost to attempt %" PRIu64, l.winnerUid);
        std::printf("\n");
    }
    return 0;
}

int
cmdBlame(const query::TraceIndex &idx, const char *arg)
{
    if (std::strncmp(arg, "mark:", 5) == 0) {
        std::uint64_t mark = 0;
        if (!parseAddr(arg + 5, mark)) {
            std::fprintf(stderr, "blame: bad mark id '%s'\n", arg + 5);
            return 2;
        }
        auto spans = idx.spansForMark(mark);
        if (spans.empty()) {
            std::printf("mark %" PRIu64
                        ": no annotation spans in this trace\n",
                        mark);
            return 1;
        }
        std::printf("mark %" PRIu64 ": %zu spans\n", mark,
                    spans.size());
        auto uids = idx.abortsUnderMark(mark);
        if (uids.empty()) {
            std::printf("  no aborts under this mark\n");
            return 0;
        }
        for (std::uint64_t uid : uids)
            blameOne(idx, uid);
        return 0;
    }
    std::uint64_t uid = 0;
    if (!parseAddr(arg, uid)) {
        std::fprintf(stderr, "blame: bad attempt uid '%s'\n", arg);
        return 2;
    }
    return blameOne(idx, uid);
}

int
cmdDiff(const query::TraceIndex &idx, const char *arg)
{
    std::uint64_t seq = 0;
    if (!parseAddr(arg, seq)) {
        std::fprintf(stderr, "diff: bad commit seq '%s'\n", arg);
        return 2;
    }
    auto diff = idx.commitDiff(seq);
    if (!diff) {
        std::printf("seq %" PRIu64 ": no committed attempt there\n",
                    seq);
        return 1;
    }
    std::uint64_t uid = idx.attemptAtSeq(seq);
    std::printf("commit of attempt %" PRIu64 ": %zu repaired words\n",
                uid, diff->size());
    for (const query::RepairDelta &d : *diff) {
        std::printf("  word 0x%" PRIx64 ": %" PRIu64 " -> %" PRIu64,
                    d.word, d.before, d.after);
        if (d.symbolic)
            std::printf("  (sym 0x%" PRIx64 "%+" PRId64 ")",
                        d.sym.root, d.sym.delta);
        std::printf("\n");
    }
    return 0;
}

void
printWhatIf(const api::WhatIfResult &w)
{
    std::printf("reach     %s", api::reachClassName(w.reach));
    if (w.firstReachableSeq == trace::kSeqUnreached)
        std::printf(" (no reachable record)\n");
    else
        std::printf(" (first reachable seq %" PRIu64 ")\n",
                    w.firstReachableSeq);
    std::printf("prefix    %" PRIu64 "/%zu records reused (%.1f%%), "
                "proof %s\n",
                w.prefixRecords, w.recorded.size(),
                100.0 * w.prefixReuse,
                w.prefixProofHeld ? "held" : "VIOLATED");
    if (w.bitIdentical) {
        std::printf("result    bit-identical (%zu records)\n",
                    w.recorded.size());
    } else {
        std::printf("result    diverged at seq %" PRIu64
                    " (recorded %zu records, variant %zu)\n",
                    w.firstDivergentSeq, w.recorded.size(),
                    w.variant.size());
        std::printf("          %zu blocks changed activity",
                    w.blockDeltas.size());
        for (std::size_t i = 0; i < w.blockDeltas.size() && i < 5; ++i)
            std::printf("  0x%" PRIx64 "%+" PRId64,
                        w.blockDeltas[i].first, w.blockDeltas[i].second);
        std::printf("\n");
    }
    std::printf("reenact   %s (%" PRIu64 " words seeded, %" PRIu64
                " unknown reads)\n",
                w.reenact.report.ok() ? "clean" : "MISMATCH",
                w.reenact.seededWords, w.reenact.unknownReads);
}

int
cmdWhatIf(int argc, char **argv)
{
    api::RunConfig base;
    base.workload = "service";
    base.nthreads = 8;
    base.scale = 0.1;
    base.trace.enabled = true;
    std::vector<api::KnobChange> changes;
    for (int i = 0; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--workload") == 0) {
            base.workload = need("--workload");
        } else if (std::strcmp(argv[i], "--nthreads") == 0) {
            base.nthreads =
                static_cast<unsigned>(std::atoi(need("--nthreads")));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            base.seed = std::strtoull(need("--seed"), nullptr, 0);
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            base.scale = std::atof(need("--scale"));
        } else if (std::strcmp(argv[i], "--partitions") == 0) {
            base.servicePartitions =
                static_cast<unsigned>(std::atoi(need("--partitions")));
        } else if (std::strcmp(argv[i], "--annotate-phases") == 0) {
            base.annotatePhases = true;
        } else if (std::strcmp(argv[i], "--set") == 0) {
            std::string kv = need("--set");
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "--set wants knob=value, got '%s'\n",
                             kv.c_str());
                return 2;
            }
            changes.push_back({kv.substr(0, eq), kv.substr(eq + 1)});
        } else {
            std::fprintf(stderr, "whatif: unknown option '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    api::WhatIfResult w = api::runWhatIf(base, changes);
    if (!w.ok) {
        std::fprintf(stderr, "whatif: %s\n", w.error.c_str());
        return 2;
    }
    printWhatIf(w);
    return w.prefixProofHeld && w.reenact.report.ok() ? 0 : 1;
}

/**
 * Self-contained CI smoke: every surface of the product on a freshly
 * recorded run, with hard assertions instead of eyeballs.
 */
int
cmdSmoke()
{
    int failures = 0;
    auto check = [&](bool ok, const char *what) {
        std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
        if (!ok)
            ++failures;
    };

    // 1. Record a quick contended service run with phase marks.
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.1;
    cfg.tm = api::retconConfig();
    cfg.annotatePhases = true;
    cfg.trace.enabled = true;
    std::vector<trace::Record> recorded;
    cfg.trace.captureInto = &recorded;
    cfg.trace.exportJsonPath = "query_smoke_trace.json";
    cfg.trace.exportBinPath = "query_smoke_trace.rtt";
    api::RunResult r = api::runOnce(cfg);
    check(r.validation.ok, "recorded run validates");
    check(r.reenact.ok(), "recorded run audits clean");
    check(!recorded.empty(), "records captured programmatically");

    // 2. Both exports round-trip through the loader bit-for-bit: the
    //    JSON Lines text form and the framed binary .rtt form must
    //    decode to the same records the run captured.
    query::LoadResult loaded =
        query::loadTraceFile("query_smoke_trace.json");
    if (!loaded.ok)
        std::fprintf(stderr, "  load error: %s\n", loaded.error.c_str());
    check(loaded.ok, "exported trace loads");
    bool identical = loaded.records.size() == recorded.size();
    for (std::size_t i = 0; identical && i < recorded.size(); ++i)
        identical = trace::recordsIdentical(loaded.records[i],
                                            recorded[i]);
    check(identical, "file round-trip is bit-identical");
    query::LoadResult loadedBin =
        query::loadTraceFile("query_smoke_trace.rtt");
    if (!loadedBin.ok)
        std::fprintf(stderr, "  load error: %s\n",
                     loadedBin.error.c_str());
    check(loadedBin.ok, "binary .rtt export loads");
    bool binIdentical = loadedBin.records.size() == recorded.size();
    for (std::size_t i = 0; binIdentical && i < recorded.size(); ++i)
        binIdentical = trace::recordsIdentical(loadedBin.records[i],
                                               recorded[i]);
    check(binIdentical, "binary round-trip is bit-identical");

    // 3. Query surfaces on the loaded trace.
    query::TraceIndex idx(std::move(loaded.records));
    query::TraceStats st = idx.stats();
    check(st.attempts > 0 && st.commits > 0, "stats sees attempts");
    check(st.marks > 0, "phase annotations present");
    check(!idx.spansForMark(1).empty(), "mark 1 has spans");
    check(idx.spansForMark(9999).empty(), "absent mark is a miss");
    bool timelineOk = false;
    if (!st.hotBlocks.empty())
        timelineOk = !idx.blockTimeline(st.hotBlocks[0].first).empty();
    check(timelineOk, "hottest block has a timeline");
    bool blameOk = st.aborts == 0;
    for (const auto &[uid, at] : idx.attempts()) {
        if (!at.aborted)
            continue;
        blameOk = !idx.blameChain(uid).empty();
        break;
    }
    check(blameOk, "an aborted attempt blames a chain");
    bool diffOk = false;
    for (const auto &[uid, at] : idx.attempts()) {
        if (!at.committed || at.repairs == 0)
            continue;
        auto d = idx.commitDiff(at.endSeq);
        diffOk = d && !d->empty();
        break;
    }
    check(diffOk, "a repaired commit has a diff");
    query::ReplayResult rep = idx.records().empty()
                                  ? query::ReplayResult{}
                                  : query::replayValidate(idx.records());
    check(rep.report.ok(), "offline reenactment is clean");

    // 4. whatif, no change: the determinism self-check.
    api::WhatIfResult same = api::runWhatIf(cfg, {});
    check(same.ok && same.bitIdentical, "no-change whatif bit-identical");
    check(same.prefixReuse == 1.0, "no-change prefix reuse is 1.0");
    check(same.prefixProofHeld, "no-change prefix proof holds");
    check(same.reenact.report.ok(), "no-change reenactment clean");

    // 5. whatif, conflict-class change: divergence must start at or
    //    after the first-interaction frontier, and the spliced stream
    //    must reenact. A conflict-free recording would make the claim
    //    vacuous, so require the frontier to exist.
    api::WhatIfResult diff =
        api::runWhatIf(cfg, {{"backoff", "exp"}});
    check(diff.ok, "backoff whatif runs");
    check(diff.firstReachableSeq != trace::kSeqUnreached,
          "recording has a contention frontier");
    check(diff.prefixProofHeld, "backoff prefix proof holds");
    check(!diff.diverged ||
              diff.firstDivergentSeq >= diff.firstReachableSeq,
          "divergence respects the reach frontier");
    check(diff.reenact.report.ok(), "spliced stream reenacts clean");

    std::remove("query_smoke_trace.json");
    std::remove("query_smoke_trace.rtt");
    std::printf("query smoke: %s\n",
                failures == 0 ? "all checks passed" : "FAILURES");
    return failures == 0 ? 0 : 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: retcon-query <trace-file> stats\n"
        "       retcon-query <trace-file> timeline <block-addr>\n"
        "       retcon-query <trace-file> blame <uid | mark:<id>>\n"
        "       retcon-query <trace-file> diff <commit-seq>\n"
        "       retcon-query whatif [options] [--set knob=value]...\n"
        "       retcon-query smoke\n"
        "<trace-file>: .rtt binary stream, JSON Lines, or CSV\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "smoke") == 0)
        return cmdSmoke();
    if (std::strcmp(argv[1], "whatif") == 0)
        return cmdWhatIf(argc - 2, argv + 2);

    if (argc < 3)
        return usage();
    const char *path = argv[1];
    const char *cmd = argv[2];
    query::LoadResult loaded = query::loadTraceFile(path);
    if (!loaded.ok) {
        std::fprintf(stderr, "%s\n", loaded.error.c_str());
        return 2;
    }
    query::TraceIndex idx(std::move(loaded.records));

    if (std::strcmp(cmd, "stats") == 0)
        return cmdStats(idx);
    if (std::strcmp(cmd, "timeline") == 0 && argc >= 4)
        return cmdTimeline(idx, argv[3]);
    if (std::strcmp(cmd, "blame") == 0 && argc >= 4)
        return cmdBlame(idx, argv[3]);
    if (std::strcmp(cmd, "diff") == 0 && argc >= 4)
        return cmdDiff(idx, argv[3]);
    return usage();
}
