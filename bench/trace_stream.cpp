/**
 * @file
 * Streaming trace format (.rtt) throughput and overhead bench
 * (docs/streaming.md). Two legs:
 *
 *  1. **Codec throughput** — a synthetic, deterministically generated
 *     record stream is written through trace::StreamWriter and read
 *     back through trace::StreamReader, timing both directions. This
 *     isolates the frame encode/CRC/decode cost from any simulation:
 *     records/sec here is the ceiling a live run can stream at.
 *
 *  2. **Writer overhead in vivo** — the audited service workload runs
 *     twice, untraced and streamed to disk. The stream sink rides the
 *     live record feed, so the simulated result must be bit-identical
 *     (cycles are asserted equal; streaming that perturbs the
 *     simulation is a correctness bug, not an overhead); the delta in
 *     host wall plus the writer's own flush-stall accounting is the
 *     full cost of recording.
 *
 * JSON fields split into the two tolerance regimes of
 * tools/check_bench_regression.py: bytes_per_record and the service
 * record/byte counts are deterministic (two-sided sim band), the
 * records/sec rates are host-time (wide one-sided band), and
 * cycles_identical must simply be true.
 *
 * Usage: trace_stream [--quick] [--json PATH]
 *   --quick      CI sizing (fewer synthetic records, Table-1 service
 *                sizing — matching service_scalability --quick)
 *   --json PATH  write the measurements as BENCH_trace_stream.json
 * Environment: RETCON_SCALE / RETCON_THREADS as in bench_common.hpp.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "query/replay.hpp"
#include "trace/stream.hpp"

using namespace retcon;
using namespace retcon::bench;

namespace {

constexpr std::size_t kSynthRecordsFull = 2'000'000;
constexpr std::size_t kSynthRecordsQuick = 250'000;

/** xorshift64: deterministic synthetic field filler. */
std::uint64_t
nextRand(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

/**
 * A dense synthetic stream shaped like a real trace: every kind
 * appears, symbolic tags (some negative-delta) ride the symbolic
 * kinds, and every payload is legal (the reader decode-validates).
 */
std::vector<trace::Record>
makeSyntheticRecords(std::size_t n)
{
    std::vector<trace::Record> recs;
    recs.reserve(n);
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < n; ++i) {
        trace::Record r;
        r.seq = i + 1;
        r.cycle = i / 4;
        r.core = static_cast<CoreId>(nextRand(s) % 32);
        r.kind = static_cast<trace::EventKind>(
            nextRand(s) %
            (static_cast<std::uint64_t>(trace::EventKind::UserMark) +
             1));
        r.addr = nextRand(s) & 0xFFFFF8;
        r.a = nextRand(s);
        r.b = nextRand(s);
        r.vid = nextRand(s) % (i + 1);
        if (r.kind == trace::EventKind::SymStore ||
            r.kind == trace::EventKind::SymLoad ||
            r.kind == trace::EventKind::Repair) {
            r.hasSym = true;
            r.sym.root = r.addr;
            r.sym.delta =
                static_cast<std::int64_t>(nextRand(s) % 64) - 32;
        }
        if (r.kind == trace::EventKind::Constraint)
            r.cmp = static_cast<rtc::CmpOp>(
                nextRand(s) %
                (static_cast<std::uint64_t>(rtc::CmpOp::GT) + 1));
        r.aux = r.kind == trace::EventKind::Abort
                    ? static_cast<std::uint8_t>(
                          nextRand(s) %
                          (static_cast<std::uint64_t>(
                               htm::AbortCause::Zombie) +
                           1))
                    : 0;
        recs.push_back(r);
    }
    return recs;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
recsPerSec(std::size_t n, double ms)
{
    return ms > 0.0 ? 1000.0 * double(n) / ms : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a path\n");
                return 1;
            }
            json_path = argv[++i];
        }
    }

    printHeader("Streaming trace format: codec throughput + overhead",
                "docs/streaming.md (not a paper figure)");

    bool all_ok = true;

    // ---- Leg 1: synthetic codec throughput ---------------------------
    const std::size_t n =
        quick ? kSynthRecordsQuick : kSynthRecordsFull;
    const char *rtt = "trace_stream_bench.rtt";
    std::vector<trace::Record> recs = makeSyntheticRecords(n);

    auto t0 = std::chrono::steady_clock::now();
    {
        trace::StreamWriter writer(rtt);
        for (const trace::Record &r : recs)
            writer.onEvent(r);
        writer.close();
    }
    double write_ms = msSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::size_t read_back = 0;
    std::size_t faults = 0;
    {
        trace::StreamReader reader(rtt);
        trace::Record r;
        trace::StreamFault f;
        while (true) {
            trace::StreamReader::Status st = reader.next(r, f);
            if (st == trace::StreamReader::Status::Record)
                ++read_back;
            else if (st == trace::StreamReader::Status::Fault)
                ++faults;
            else
                break;
        }
    }
    double read_ms = msSince(t0);
    std::remove(rtt);

    const std::uint64_t file_bytes =
        trace::kStreamHeaderBytes + n * trace::kFrameBytes;
    double bytes_per_record = double(file_bytes) / double(n);
    double write_rate = recsPerSec(n, write_ms);
    double read_rate = recsPerSec(n, read_ms);
    std::printf("codec: %zu records, %llu bytes (%.1f B/rec)\n", n,
                (unsigned long long)file_bytes, bytes_per_record);
    std::printf("  write: %7.1f ms  %10.0f recs/s  %7.1f MB/s\n",
                write_ms, write_rate,
                write_rate * bytes_per_record / 1e6);
    std::printf("  read:  %7.1f ms  %10.0f recs/s  %7.1f MB/s\n",
                read_ms, read_rate,
                read_rate * bytes_per_record / 1e6);
    if (read_back != n || faults != 0) {
        std::printf("!! read back %zu of %zu records (%zu faults)\n",
                    read_back, n, faults);
        all_ok = false;
    }

    // ---- Leg 2: writer overhead on the audited service workload -----
    api::RunConfig base = baseConfig("service");
    base.tm = api::retconConfig();
    base.trace.enabled = true;   // Audit rides both runs identically.
    base.trace.ringCapacity = 0; // Stream/validate only; no retention.
    base.trace.validate = true;
    if (quick) {
        base.scale = 1.0; // Table-1 sizing, as service_scalability.
        base.nthreads = 32;
    }

    api::RunResult untraced = api::runOnce(base);
    flagInvalid(untraced, "service");
    all_ok = all_ok && untraced.validation.ok && untraced.reenact.ok();

    api::RunConfig traced_cfg = base;
    traced_cfg.trace.streamPath = rtt;
    api::RunResult traced = api::runOnce(traced_cfg);
    flagInvalid(traced, "service");
    all_ok = all_ok && traced.validation.ok && traced.reenact.ok();

    bool cycles_identical = traced.cycles == untraced.cycles;
    if (!cycles_identical) {
        std::printf("!! streaming perturbed the simulation: %llu "
                    "cycles traced vs %llu untraced\n",
                    (unsigned long long)traced.cycles,
                    (unsigned long long)untraced.cycles);
        all_ok = false;
    }

    // And the streamed file must actually validate incrementally —
    // the windowed validator agreeing with the live audit is the
    // product this bench prices (docs/streaming.md).
    query::StreamValidateResult v = query::validateStreamFile(rtt);
    if (!v.ok() || v.recordsRead != traced.traceStream.records) {
        std::printf("!! streamed run failed windowed validation: %s\n",
                    v.streamOk ? v.replay.report.summary().c_str()
                               : v.error.c_str());
        all_ok = false;
    }
    std::remove(rtt);

    const api::TraceStreamSummary &ws = traced.traceStream;
    std::printf("service (%u cores, scale %.2f): %llu records -> "
                "%llu bytes, %llu flushes, %.1f ms flush stall\n",
                base.nthreads, base.scale,
                (unsigned long long)ws.records,
                (unsigned long long)ws.bytesWritten,
                (unsigned long long)ws.flushes, ws.flushWallMs);
    std::printf("  host wall: %.1f ms traced vs %.1f ms untraced; "
                "cycles %s\n",
                traced.hostParallel.wallMs,
                untraced.hostParallel.wallMs,
                cycles_identical ? "identical" : "DIVERGED");

    if (json_path) {
        std::FILE *f = std::fopen(json_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(
            f,
            "{\"bench\":\"trace_stream\",\"synthetic_records\":%zu,"
            "\"bytes_per_record\":%.2f,"
            "\"write_recs_per_sec\":%.0f,\"read_recs_per_sec\":%.0f,"
            "\"service\":{\"scale\":%g,\"nthreads\":%u,"
            "\"records\":%llu,\"bytes_written\":%llu,"
            "\"flushes\":%llu,\"flush_wall_ms\":%.2f,"
            "\"traced_host_wall_ms\":%.2f,"
            "\"untraced_host_wall_ms\":%.2f},"
            "\"cycles_identical\":%s}\n",
            n, bytes_per_record, write_rate, read_rate, base.scale,
            base.nthreads, (unsigned long long)ws.records,
            (unsigned long long)ws.bytesWritten,
            (unsigned long long)ws.flushes, ws.flushWallMs,
            traced.hostParallel.wallMs, untraced.hostParallel.wallMs,
            cycles_identical ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    }

    if (!all_ok) {
        std::printf("FAIL\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
