/**
 * @file
 * Figure 10: execution-time breakdown for eager / lazy-vb / RetCon,
 * normalized to the eager baseline. The paper's observation: RETCON
 * "completely eliminates time spent in conflicts" on the abort-bound
 * auxiliary-data workloads, and most of the savings come from repair
 * (not from laziness/value-based detection alone — compare lazy-vb).
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

int
main()
{
    printHeader("Figure 10: time breakdown normalized to eager",
                "RETCON (ISCA 2010), Figure 10");
    std::printf("%-18s %-9s %8s %8s %8s %8s %9s\n", "workload",
                "config", "busy", "barrier", "conflict", "other",
                "runtime");
    for (const auto &name : workloads::workloadNames()) {
        if (name == "bayes")
            continue;
        api::RunConfig cfg = baseConfig(name);
        double eager_cycles = 0;
        for (auto &[label, tm] : api::paperConfigs()) {
            cfg.tm = tm;
            api::RunResult r = api::runOnce(cfg);
            flagInvalid(r, name);
            if (eager_cycles == 0)
                eager_cycles = double(r.cycles);
            double norm = double(r.cycles) / eager_cycles;
            double total = r.breakdown.total();
            std::printf(
                "%-18s %-9s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.2fx\n",
                name.c_str(), label,
                100 * r.breakdown.busy / total,
                100 * r.breakdown.barrier / total,
                100 * r.breakdown.conflict / total,
                100 * r.breakdown.other / total, norm);
            std::fflush(stdout);
        }
    }
    return 0;
}
