/**
 * @file
 * Service-workload scalability across event-queue shards.
 *
 * Not a paper figure: this is the ROADMAP's "millions of users"
 * scenario. The service workload (Zipfian queue + hashtable request
 * mix) runs under RETCON while the cluster's event-queue dispatch is
 * bandwidth-limited — the sequencer serialization a single-queue
 * cluster suffers. Sharding the queue multiplies dispatch slots and
 * lets idle shards steal from busy ones, so makespan drops and
 * throughput rises as shards are added; per-shard rows break the
 * totals down (commit throughput, repair rate, queue load, steals).
 *
 * A final self-check requires 4-shard throughput to beat 1-shard
 * throughput (exit 1 otherwise), so CI can run this binary as a
 * regression gate.
 *
 * Usage: service_scalability [--quick] [--json PATH]
 *   --quick      CI sizing (scale 0.2, 32 threads)
 *   --json PATH  also write the shard points as a JSON document
 *                (CI uploads these as BENCH_*.json artifacts, the
 *                repo's perf trajectory)
 * Environment: RETCON_SCALE / RETCON_THREADS as in bench_common.hpp.
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

namespace {

/// Modeled per-shard dispatch bandwidth (events/cycle). Small enough
/// that one shard saturates under a full request load, so the bench
/// exposes the serialization sharding removes.
constexpr unsigned kDispatchBandwidth = 1;

struct Point {
    unsigned shards = 0;
    Cycle cycles = 0;
    double throughput = 0; ///< Commits per kilocycle.
};

/** Emit the measured points as one JSON document (perf trajectory). */
void
writeJson(const char *path, double scale, unsigned nthreads,
          const std::vector<Point> &points, double gain)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\"bench\":\"service_scalability\",\"scale\":%g,"
                 "\"nthreads\":%u,\"points\":[",
                 scale, nthreads);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(f,
                     "%s{\"shards\":%u,\"cycles\":%llu,"
                     "\"commits_per_kcycle\":%.4f}",
                     i ? "," : "", p.shards,
                     (unsigned long long)p.cycles, p.throughput);
    }
    std::fprintf(f, "],\"throughput_gain\":%.4f}\n", gain);
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a path\n");
                return 1;
            }
            json_path = argv[++i];
        }
    }

    api::RunConfig base = baseConfig("service");
    base.tm = api::retconConfig();
    base.shardBandwidth = kDispatchBandwidth;
    base.trace.enabled = true;   // Audit + per-shard repair counters.
    base.trace.ringCapacity = 0; // Counters only; no retention.
    if (quick) {
        base.scale = 0.2;
        base.nthreads = 32;
    }

    printHeader("Service workload vs event-queue shard count",
                "ROADMAP scale-out target (not a paper figure)");
    std::printf("dispatch bandwidth: %u events/cycle/shard; "
                "work stealing on\n\n",
                kDispatchBandwidth);

    std::vector<Point> points;
    bool all_ok = true;
    for (unsigned shards : {1u, 2u, 4u}) {
        if (shards > base.nthreads)
            break;
        api::RunConfig cfg = base;
        cfg.shards = shards;
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, "service");
        all_ok = all_ok && r.validation.ok && r.reenact.ok();
        if (!r.reenact.ok())
            std::printf("!! reenactment audit: %s\n",
                        r.reenact.summary().c_str());

        Point p;
        p.shards = shards;
        p.cycles = r.cycles;
        p.throughput = 1000.0 * double(r.coreStats.commits) /
                       double(r.cycles);
        points.push_back(p);

        std::printf("%u shard%s: %llu cycles, %.2f commits/kcycle\n",
                    shards, shards == 1 ? "" : "s",
                    (unsigned long long)r.cycles, p.throughput);
        std::printf("  %-5s %9s %9s %9s %9s %9s %9s\n", "shard",
                    "commits", "aborts", "repairs", "events", "stolen",
                    "slipped");
        for (unsigned s = 0; s < r.shards.size(); ++s) {
            const api::ShardSummary &ss = r.shards[s];
            std::printf("  %-5u %9llu %9llu %9llu %9llu %9llu %9llu\n",
                        s, (unsigned long long)ss.commits,
                        (unsigned long long)ss.aborts,
                        (unsigned long long)ss.repairs,
                        (unsigned long long)ss.queueExecuted,
                        (unsigned long long)ss.queueStolen,
                        (unsigned long long)ss.queueDeferred);
        }
        std::printf("\n");
    }

    if (points.size() < 2) {
        // Nothing to compare (e.g. RETCON_THREADS=1 leaves only the
        // 1-shard point): not a scaling regression, just inapplicable.
        std::printf("SKIP: need >= 2 shard points to judge scaling "
                    "(got %zu)\n",
                    points.size());
        if (json_path)
            writeJson(json_path, base.scale, base.nthreads, points, 0);
        return all_ok ? 0 : 1;
    }
    const Point &first = points.front();
    const Point &last = points.back();
    double gain = last.throughput / first.throughput;
    std::printf("throughput %u -> %u shards: %.2fx\n", first.shards,
                last.shards, gain);
    if (json_path)
        writeJson(json_path, base.scale, base.nthreads, points, gain);
    if (!(gain > 1.0) || !all_ok) {
        std::printf("FAIL: sharding did not scale (or a run was "
                    "invalid)\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
