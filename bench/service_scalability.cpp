/**
 * @file
 * Service-workload scalability across event-queue shards x directory
 * banks, with the PR-5 conflict-time knobs layered on top.
 *
 * Not a paper figure: this is the ROADMAP's "millions of users"
 * scenario. The service workload (Zipfian queue + hashtable request
 * mix) runs under RETCON while both substrate bottlenecks are modeled:
 *  - event-queue dispatch is bandwidth-limited (the sequencer
 *    serialization sharding removes, PR 2), and
 *  - the memory system's directory is occupancy-limited and commits
 *    arbitrate per-bank commit tokens (the monolithic-spine
 *    serialization banking removes, PR 4).
 * PR 4 left ~85% of core cycles at 32 threads as genuine transaction
 * conflict time, so the scaled points additionally attack the
 * conflicts themselves (PR 5):
 *  - workload-side partitioning (servicePartitions = shard count):
 *    the session table and job queue — the §5.4 pointer conflicts
 *    repair cannot help — split into per-class partitions;
 *  - NACK/abort backoff (TMConfig::backoff, gentle linear policy):
 *    retries of contended requests space out instead of re-colliding;
 *  - contention-aware dispatch (RunConfig::contentionSched): restarts
 *    blaming hot blocks are deferred, de-phasing conflicting requests.
 * The (1 shard, 1 bank) monolith keeps every knob off — it is the
 * PR-4 baseline point, bit-identical run to run.
 *
 * A final self-check requires the (4 shards, 4 banks, 4 partitions)
 * point to beat (1, 1) throughput (>= kMinGainQuick x under --quick's
 * fixed sizing, where the run is fully deterministic), so CI can run
 * this binary as a regression gate; bench/baselines pins the exact
 * numbers.
 *
 * A second axis scales OUT instead of UP (PR 6, docs/fleet.md): the
 * same fleet-wide core count split across a 2-cluster fleet
 * (2 shards x 2 banks per cluster) at increasing cross-cluster
 * request fractions. At fraction 0 the clusters run fully
 * partitioned; raising it routes session/queue requests across the
 * interconnect, so throughput degrades with wire latency and
 * two-level commit-token round trips — the fleet_points array pins
 * that degradation curve.
 *
 * Usage: service_scalability [--quick] [--json PATH]
 *   --quick      CI sizing (scale 1.0, 32 threads — full Table 1;
 *                the service workload is cheap enough to simulate
 *                that CI runs the real scale-out point)
 *   --json PATH  also write the scale-out points as a JSON document
 *                (compared against bench/baselines by
 *                tools/check_bench_regression.py, uploaded as
 *                BENCH_*.json artifacts)
 * Environment: RETCON_SCALE / RETCON_THREADS as in bench_common.hpp.
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "scenario/scenario.hpp"

using namespace retcon;
using namespace retcon::bench;

namespace {

/// Modeled per-shard dispatch bandwidth (events/cycle). Small enough
/// that one shard saturates under a full request load, so the bench
/// exposes the serialization sharding removes.
constexpr unsigned kDispatchBandwidth = 1;

/// Modeled directory-bank occupancy (cycles per request). One bank
/// backs up under the full request load; four spread it.
constexpr Cycle kBankOccupancy = 8;

/// NACK/abort backoff at the scaled points: gentle linear steps.
/// Rollback is zero-cycle in this machine, so waiting long costs more
/// than the wasted work it avoids; 1-cycle steps capped at 16 shave
/// aborts without adding stall time (docs/tuning.md).
constexpr Cycle kBackoffBase = 1;
constexpr Cycle kBackoffCap = 16;

/// Required (4 shards, 4 banks, 4 partitions) / (1, 1) throughput
/// gain under --quick (deterministic sizing; ISSUE 5 acceptance
/// floor — PR 4 reached 2.67x on substrate banking alone).
constexpr double kMinGainQuick = 3.5;

struct Point {
    unsigned shards = 0;
    unsigned banks = 0;
    unsigned partitions = 1;
    const char *backoff = "none";
    bool sched = false;
    Cycle cycles = 0;
    double throughput = 0; ///< Commits per kilocycle.
    std::uint64_t bankStallCycles = 0;
    std::uint64_t tokenWaits = 0;
    std::uint64_t backoffCycles = 0;
    std::uint64_t schedDefers = 0;
    double hostWallMs = 0; ///< Host time of the run (not simulated).
};

/// One host-threads point: the top scale-up config re-run under the
/// host-parallel engine (docs/parallel-engine.md). Simulated results
/// must be bit-identical to the sequential point — only the host wall
/// clock may move, and check_bench_regression.py gates it under the
/// wide one-sided host tolerance, never the simulated band.
struct HostPoint {
    unsigned threads = 1;
    Cycle cycles = 0;
    std::uint64_t commits = 0;
    double wallMs = 0;
};

/// Trace-writer overhead: the top scale-up point re-run with the
/// live record stream additionally written to an .rtt file
/// (docs/streaming.md). Streaming is a host-side sink on the audit
/// stream the run already produces, so the simulated result must be
/// bit-identical — cycles are asserted equal, and only the writer's
/// own stats and host wall move (gated under the host tolerance,
/// never the simulated band).
struct TraceStreamPoint {
    bool measured = false;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t flushes = 0;
    double flushWallMs = 0;
    double wallMs = 0;     ///< Host wall of the streamed run.
    double baseWallMs = 0; ///< Host wall of the untraced point.
};

/// One scenario point: the top scale-up config re-run under a
/// registered scenario (docs/scenarios.md) — open-loop arrivals,
/// mid-run shifts, fault windows. Pins each scenario's throughput and
/// arrival ledger so traffic-shape behaviour cannot drift silently.
struct ScenarioPoint {
    const char *name = "";
    Cycle cycles = 0;
    double throughput = 0; ///< Commits per kilocycle.
    std::uint64_t injected = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t peakBacklog = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t bankFaultCycles = 0;
};

/// One scale-OUT point: the same fleet-wide core count split across a
/// 2-cluster fleet, swept over the cross-cluster request fraction.
struct FleetPoint {
    double xcFraction = 0;
    Cycle cycles = 0;
    double throughput = 0; ///< Commits per kilocycle (fleet-wide).
    std::uint64_t xcTokenWaits = 0;
    std::uint64_t netMessages = 0;
    std::uint64_t netQueueCycles = 0;
};

/** Emit the measured points as one JSON document (perf trajectory). */
void
writeJson(const char *path, double scale, unsigned nthreads,
          const std::vector<Point> &points,
          const std::vector<FleetPoint> &fleet,
          const std::vector<HostPoint> &host,
          const std::vector<ScenarioPoint> &scenarios,
          const TraceStreamPoint &ts, double gain)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\"bench\":\"service_scalability\",\"scale\":%g,"
                 "\"nthreads\":%u,\"bank_occupancy\":%llu,\"points\":[",
                 scale, nthreads,
                 (unsigned long long)kBankOccupancy);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(f,
                     "%s{\"shards\":%u,\"banks\":%u,\"partitions\":%u,"
                     "\"backoff\":\"%s\",\"sched\":%s,"
                     "\"cycles\":%llu,"
                     "\"commits_per_kcycle\":%.4f,"
                     "\"bank_stall_cycles\":%llu,\"token_waits\":%llu,"
                     "\"backoff_cycles\":%llu,\"sched_defers\":%llu,"
                     "\"host_wall_ms\":%.2f}",
                     i ? "," : "", p.shards, p.banks, p.partitions,
                     p.backoff, p.sched ? "true" : "false",
                     (unsigned long long)p.cycles, p.throughput,
                     (unsigned long long)p.bankStallCycles,
                     (unsigned long long)p.tokenWaits,
                     (unsigned long long)p.backoffCycles,
                     (unsigned long long)p.schedDefers, p.hostWallMs);
    }
    std::fprintf(f, "],\"fleet_points\":[");
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        const FleetPoint &p = fleet[i];
        std::fprintf(f,
                     "%s{\"clusters\":2,\"xc_fraction\":%.2f,"
                     "\"cycles\":%llu,"
                     "\"commits_per_kcycle\":%.4f,"
                     "\"xc_token_waits\":%llu,\"net_messages\":%llu,"
                     "\"net_queue_cycles\":%llu}",
                     i ? "," : "", p.xcFraction,
                     (unsigned long long)p.cycles, p.throughput,
                     (unsigned long long)p.xcTokenWaits,
                     (unsigned long long)p.netMessages,
                     (unsigned long long)p.netQueueCycles);
    }
    std::fprintf(f, "],\"host_points\":[");
    for (std::size_t i = 0; i < host.size(); ++i) {
        const HostPoint &p = host[i];
        std::fprintf(f,
                     "%s{\"host_threads\":%u,\"cycles\":%llu,"
                     "\"commits\":%llu,\"host_wall_ms\":%.2f}",
                     i ? "," : "", p.threads,
                     (unsigned long long)p.cycles,
                     (unsigned long long)p.commits, p.wallMs);
    }
    std::fprintf(f, "],\"scenario_points\":[");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const ScenarioPoint &p = scenarios[i];
        std::fprintf(f,
                     "%s{\"scenario\":\"%s\",\"cycles\":%llu,"
                     "\"commits_per_kcycle\":%.4f,"
                     "\"injected\":%llu,\"completed\":%llu,"
                     "\"dropped\":%llu,\"peak_backlog\":%llu,"
                     "\"stall_cycles\":%llu,"
                     "\"bank_fault_cycles\":%llu}",
                     i ? "," : "", p.name,
                     (unsigned long long)p.cycles, p.throughput,
                     (unsigned long long)p.injected,
                     (unsigned long long)p.completed,
                     (unsigned long long)p.dropped,
                     (unsigned long long)p.peakBacklog,
                     (unsigned long long)p.stallCycles,
                     (unsigned long long)p.bankFaultCycles);
    }
    std::fprintf(f, "]");
    if (ts.measured) {
        std::fprintf(f,
                     ",\"trace_stream\":{\"records\":%llu,"
                     "\"bytes_written\":%llu,"
                     "\"bytes_per_record\":%.2f,\"flushes\":%llu,"
                     "\"flush_wall_ms\":%.2f,\"host_wall_ms\":%.2f,"
                     "\"untraced_host_wall_ms\":%.2f}",
                     (unsigned long long)ts.records,
                     (unsigned long long)ts.bytes,
                     ts.records ? double(ts.bytes) / double(ts.records)
                                : 0.0,
                     (unsigned long long)ts.flushes, ts.flushWallMs,
                     ts.wallMs, ts.baseWallMs);
    }
    std::fprintf(f, ",\"throughput_gain\":%.4f}\n", gain);
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a path\n");
                return 1;
            }
            json_path = argv[++i];
        }
    }

    api::RunConfig base = baseConfig("service");
    base.tm = api::retconConfig();
    base.shardBandwidth = kDispatchBandwidth;
    base.memBankOccupancy = kBankOccupancy;
    base.tm.commitTokenArbitration = true;
    base.trace.enabled = true;   // Audit + per-shard repair counters.
    base.trace.ringCapacity = 0; // Counters only; no retention.
    if (quick) {
        // Full Table-1 sizing: the service workload is cheap enough
        // to simulate that CI runs the real scale-out point (a
        // smaller scale leaves the 1-shard dispatch queue unsaturated
        // and the gain meaningless).
        base.scale = 1.0;
        base.nthreads = 32;
    }

    printHeader("Service workload vs shards x banks x partitions",
                "ROADMAP conflict-time wall (not a paper figure)");
    std::printf("dispatch bandwidth: %u events/cycle/shard; "
                "work stealing on\n",
                kDispatchBandwidth);
    std::printf("bank occupancy: %llu cycles/request; "
                "per-bank commit tokens on\n",
                (unsigned long long)kBankOccupancy);
    std::printf("scaled points: partitions = shards, linear backoff "
                "(base %llu, cap %llu), contention scheduler on\n\n",
                (unsigned long long)kBackoffBase,
                (unsigned long long)kBackoffCap);

    std::vector<Point> points;
    bool all_ok = true;
    for (unsigned n : {1u, 2u, 4u}) {
        if (n > base.nthreads)
            break;
        api::RunConfig cfg = base;
        cfg.shards = n;
        cfg.memBanks = n;
        Point p;
        p.shards = n;
        p.banks = n;
        if (n > 1) {
            // The conflict-time knobs ride the scale-out axis; the
            // (1,1) monolith keeps them off (the PR-4 baseline).
            cfg.servicePartitions = n;
            cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
            cfg.tm.backoff.base = kBackoffBase;
            cfg.tm.backoff.cap = kBackoffCap;
            cfg.contentionSched = true;
            p.partitions = n;
            p.backoff = htm::backoffPolicyName(cfg.tm.backoff.policy);
            p.sched = true;
        }
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, "service");
        all_ok = all_ok && r.validation.ok && r.reenact.ok() &&
                 r.reenact.forwardedCommitsSkipped == 0;
        if (!r.reenact.ok())
            std::printf("!! reenactment audit: %s\n",
                        r.reenact.summary().c_str());

        p.cycles = r.cycles;
        p.throughput = 1000.0 * double(r.coreStats.commits) /
                       double(r.cycles);
        for (const api::BankSummary &bs : r.banks) {
            p.bankStallCycles += bs.stallCycles;
            p.tokenWaits += bs.tokenWaits;
        }
        p.backoffCycles = r.machineStats.backoffCycles;
        for (const api::ShardSummary &ss : r.shards)
            p.schedDefers += ss.schedDefers;
        p.hostWallMs = r.hostParallel.wallMs;
        points.push_back(p);

        std::printf("%u shard%s x %u bank%s x %u partition%s "
                    "(backoff %s, sched %s): %llu cycles, "
                    "%.2f commits/kcycle\n",
                    n, n == 1 ? "" : "s", n, n == 1 ? "" : "s",
                    p.partitions, p.partitions == 1 ? "" : "s",
                    p.backoff, p.sched ? "on" : "off",
                    (unsigned long long)r.cycles, p.throughput);
        std::printf("  %-5s %9s %9s %9s %9s %9s %9s %9s %9s\n", "shard",
                    "commits", "aborts", "repairs", "events", "stolen",
                    "slipped", "tokwait", "defers");
        for (unsigned s = 0; s < r.shards.size(); ++s) {
            const api::ShardSummary &ss = r.shards[s];
            std::printf("  %-5u %9llu %9llu %9llu %9llu %9llu %9llu "
                        "%9llu %9llu\n",
                        s, (unsigned long long)ss.commits,
                        (unsigned long long)ss.aborts,
                        (unsigned long long)ss.repairs,
                        (unsigned long long)ss.queueExecuted,
                        (unsigned long long)ss.queueStolen,
                        (unsigned long long)ss.queueDeferred,
                        (unsigned long long)ss.tokenWaits,
                        (unsigned long long)ss.schedDefers);
        }
        std::printf("  %-5s %9s %9s %9s %9s %9s\n", "bank", "requests",
                    "stalled", "stallcyc", "tokacq", "tokwait");
        for (unsigned b = 0; b < r.banks.size(); ++b) {
            const api::BankSummary &bs = r.banks[b];
            std::printf("  %-5u %9llu %9llu %9llu %9llu %9llu\n", b,
                        (unsigned long long)bs.requests,
                        (unsigned long long)bs.stalled,
                        (unsigned long long)bs.stallCycles,
                        (unsigned long long)bs.tokenAcquires,
                        (unsigned long long)bs.tokenWaits);
        }
        std::printf("\n");
    }

    // Scale-out axis: split the same fleet-wide core count across a
    // 2-cluster fleet (2 shards x 2 banks per cluster, conflict knobs
    // on) and sweep the cross-cluster request fraction. Throughput
    // must come down as more commits pay interconnect round trips for
    // remote bank tokens — the baseline pins that curve.
    std::vector<FleetPoint> fleet;
    if (base.nthreads >= 4) {
        api::RunConfig fbase = base;
        fbase.clusters = 2;
        fbase.nthreads = base.nthreads / 2; // Per-cluster on a fleet.
        fbase.shards = 2;
        fbase.memBanks = 2;
        fbase.servicePartitions = 2;
        fbase.tm.backoff.policy = htm::BackoffPolicy::Linear;
        fbase.tm.backoff.base = kBackoffBase;
        fbase.tm.backoff.cap = kBackoffCap;
        fbase.contentionSched = true;
        std::printf("fleet axis: 2 clusters x (%u cores, 2 shards, "
                    "2 banks) vs cross-cluster fraction\n",
                    fbase.nthreads);
        for (double xc : {0.0, 0.1, 0.3}) {
            api::RunConfig cfg = fbase;
            cfg.crossClusterFraction = xc;
            api::RunResult r = api::runOnce(cfg);
            flagInvalid(r, "service");
            all_ok = all_ok && r.validation.ok && r.reenact.ok() &&
                     r.reenact.forwardedCommitsSkipped == 0;
            if (!r.reenact.ok())
                std::printf("!! reenactment audit: %s\n",
                            r.reenact.summary().c_str());
            if (xc > 0.0 && (r.net.messages == 0 ||
                             r.machineStats.xcTokenWaits == 0)) {
                // The point is meaningless if nothing crossed the
                // wire or no commit waited on a remote token.
                std::printf("!! fleet point xc=%.2f never exercised "
                            "the interconnect\n", xc);
                all_ok = false;
            }
            FleetPoint p;
            p.xcFraction = xc;
            p.cycles = r.cycles;
            p.throughput = 1000.0 * double(r.coreStats.commits) /
                           double(r.cycles);
            p.xcTokenWaits = r.machineStats.xcTokenWaits;
            p.netMessages = r.net.messages;
            p.netQueueCycles = r.net.queueCycles;
            fleet.push_back(p);
            std::printf("  xc %.2f: %llu cycles, %.2f commits/kcycle, "
                        "%llu xc token waits, %llu net messages, "
                        "%llu net queue cycles\n",
                        xc, (unsigned long long)p.cycles, p.throughput,
                        (unsigned long long)p.xcTokenWaits,
                        (unsigned long long)p.netMessages,
                        (unsigned long long)p.netQueueCycles);
        }
        std::printf("\n");
    }

    // Host-threads axis: the top scale-up point re-run under the
    // host-parallel engine (docs/parallel-engine.md). The engine is a
    // host-side execution choice only, so cycles and commits must be
    // bit-identical to the sequential run — this doubles as a
    // determinism self-check at full bench sizing. Only host_wall_ms
    // may move (and on a single-core host it only moves up: the
    // engine's win is concurrency, not work reduction).
    std::vector<HostPoint> host;
    if (points.size() >= 2 && base.nthreads >= 4) {
        const Point &top = points.back();
        api::RunConfig cfg = base;
        cfg.shards = top.shards;
        cfg.memBanks = top.banks;
        cfg.servicePartitions = top.partitions;
        cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
        cfg.tm.backoff.base = kBackoffBase;
        cfg.tm.backoff.cap = kBackoffCap;
        cfg.contentionSched = true;
        std::printf("host axis: %ux%ux%u point vs host threads\n",
                    top.shards, top.banks, top.partitions);
        for (unsigned ht : {1u, 2u, 4u}) {
            if (ht > top.shards)
                break;
            cfg.hostThreads = ht;
            api::RunResult r = api::runOnce(cfg);
            flagInvalid(r, "service");
            all_ok = all_ok && r.validation.ok && r.reenact.ok();
            HostPoint p;
            p.threads = r.hostParallel.threads;
            p.cycles = r.cycles;
            p.commits = r.coreStats.commits;
            p.wallMs = r.hostParallel.wallMs;
            host.push_back(p);
            std::printf("  %u host thread%s: %llu cycles, %llu "
                        "commits, %.1f ms host wall\n",
                        ht, ht == 1 ? "" : "s",
                        (unsigned long long)p.cycles,
                        (unsigned long long)p.commits, p.wallMs);
            if (p.cycles != top.cycles ||
                p.commits != host.front().commits) {
                std::printf("!! host-parallel run diverged from the "
                            "sequential point\n");
                all_ok = false;
            }
        }
        std::printf("\n");
    }

    // Scenario axis: the top scale-up config re-run under every
    // registered scenario (docs/scenarios.md). Open-loop arrivals make
    // throughput arrival-limited instead of core-limited, and the
    // fault scenarios carve capacity out — the baseline pins each
    // shape's commits/kcycle and its arrival ledger, so a change in
    // traffic-shape behaviour (or a silently dead scenario) fails the
    // bench gate like any other simulated regression.
    std::vector<ScenarioPoint> scenarios;
    if (!points.empty()) {
        const Point &top = points.back();
        api::RunConfig cfg = base;
        cfg.shards = top.shards;
        cfg.memBanks = top.banks;
        cfg.servicePartitions = top.partitions;
        if (top.shards > 1) {
            cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
            cfg.tm.backoff.base = kBackoffBase;
            cfg.tm.backoff.cap = kBackoffCap;
            cfg.contentionSched = true;
        }
        std::printf("scenario axis: %ux%ux%u point vs registered "
                    "scenarios\n",
                    top.shards, top.banks, top.partitions);
        for (const scenario::Scenario &sc : scenario::registry()) {
            cfg.scenario = sc.name;
            api::RunResult r = api::runOnce(cfg);
            flagInvalid(r, "service");
            all_ok = all_ok && r.validation.ok && r.reenact.ok() &&
                     r.reenact.forwardedCommitsSkipped == 0;
            if (!r.reenact.ok())
                std::printf("!! reenactment audit: %s\n",
                            r.reenact.summary().c_str());
            const api::ScenarioSummary &ss = r.scenario;
            if (ss.injected != ss.completed + ss.dropped) {
                std::printf("!! %s arrival ledger does not conserve\n",
                            sc.name);
                all_ok = false;
            }
            ScenarioPoint p;
            p.name = sc.name;
            p.cycles = r.cycles;
            p.throughput = 1000.0 * double(r.coreStats.commits) /
                           double(r.cycles);
            p.injected = ss.injected;
            p.completed = ss.completed;
            p.dropped = ss.dropped;
            p.peakBacklog = ss.peakBacklog;
            p.stallCycles = ss.stallCycles;
            p.bankFaultCycles = ss.bankFaultCycles;
            scenarios.push_back(p);
            std::printf("  %-15s %llu cycles, %.2f commits/kcycle"
                        ", %llu/%llu/%llu inj/done/drop\n",
                        sc.name, (unsigned long long)p.cycles,
                        p.throughput, (unsigned long long)p.injected,
                        (unsigned long long)p.completed,
                        (unsigned long long)p.dropped);
        }
        std::printf("\n");
    }

    // Trace-writer overhead: the top scale-up point once more, now
    // streaming its complete audit record stream to disk. The stream
    // sink must not perturb the simulation — cycles are asserted
    // bit-identical — so the only cost is host-side: buffered frame
    // encoding plus the flush stalls the writer itself reports.
    TraceStreamPoint ts;
    if (!points.empty()) {
        const Point &top = points.back();
        const char *rtt = "service_scalability_stream.rtt";
        api::RunConfig cfg = base;
        cfg.shards = top.shards;
        cfg.memBanks = top.banks;
        cfg.servicePartitions = top.partitions;
        if (top.shards > 1) {
            cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
            cfg.tm.backoff.base = kBackoffBase;
            cfg.tm.backoff.cap = kBackoffCap;
            cfg.contentionSched = true;
        }
        cfg.trace.streamPath = rtt;
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, "service");
        all_ok = all_ok && r.validation.ok && r.reenact.ok();
        ts.measured = true;
        ts.records = r.traceStream.records;
        ts.bytes = r.traceStream.bytesWritten;
        ts.flushes = r.traceStream.flushes;
        ts.flushWallMs = r.traceStream.flushWallMs;
        ts.wallMs = r.hostParallel.wallMs;
        ts.baseWallMs = top.hostWallMs;
        std::printf("trace stream (%ux%ux%u point): %llu records -> "
                    "%llu bytes (%.1f B/rec), %llu flushes, %.1f ms "
                    "flush stall, host wall %.1f ms vs %.1f untraced\n\n",
                    top.shards, top.banks, top.partitions,
                    (unsigned long long)ts.records,
                    (unsigned long long)ts.bytes,
                    ts.records ? double(ts.bytes) / double(ts.records)
                               : 0.0,
                    (unsigned long long)ts.flushes, ts.flushWallMs,
                    ts.wallMs, ts.baseWallMs);
        if (r.cycles != top.cycles) {
            std::printf("!! streaming perturbed the simulation: %llu "
                        "cycles traced vs %llu untraced\n",
                        (unsigned long long)r.cycles,
                        (unsigned long long)top.cycles);
            all_ok = false;
        }
        if (ts.records != r.traceEvents || ts.records == 0) {
            std::printf("!! stream wrote %llu records for %llu "
                        "emitted events\n",
                        (unsigned long long)ts.records,
                        (unsigned long long)r.traceEvents);
            all_ok = false;
        }
        std::remove(rtt);
    }

    if (points.size() < 2) {
        // Nothing to compare (e.g. RETCON_THREADS=1 leaves only the
        // 1-shard point): not a scaling regression, just inapplicable.
        std::printf("SKIP: need >= 2 scale-out points to judge scaling "
                    "(got %zu)\n",
                    points.size());
        if (json_path)
            writeJson(json_path, base.scale, base.nthreads, points,
                      fleet, host, scenarios, ts, 0);
        return all_ok ? 0 : 1;
    }
    const Point &first = points.front();
    const Point &last = points.back();
    double gain = last.throughput / first.throughput;
    std::printf("throughput %ux%ux%u -> %ux%ux%u "
                "(shards x banks x partitions): %.2fx\n",
                first.shards, first.banks, first.partitions, last.shards,
                last.banks, last.partitions, gain);
    if (json_path)
        writeJson(json_path, base.scale, base.nthreads, points, fleet,
                  host, scenarios, ts, gain);
    double min_gain = quick ? kMinGainQuick : 1.0;
    if (!(gain > min_gain) || !all_ok) {
        std::printf("FAIL: scale-out gain %.2fx below the %.2fx floor "
                    "(or a run was invalid)\n",
                    gain, min_gain);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
