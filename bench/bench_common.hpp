/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every bench accepts two environment overrides:
 *   RETCON_SCALE    input-size multiplier (default 0.5)
 *   RETCON_THREADS  simulated core count  (default 32, as in Table 1)
 */

#ifndef RETCON_BENCH_COMMON_HPP
#define RETCON_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/runner.hpp"

namespace retcon::bench {

inline double
envScale()
{
    const char *s = std::getenv("RETCON_SCALE");
    return s ? std::atof(s) : 0.4;
}

inline unsigned
envThreads()
{
    const char *s = std::getenv("RETCON_THREADS");
    return s ? static_cast<unsigned>(std::atoi(s)) : 32;
}

inline api::RunConfig
baseConfig(const std::string &workload)
{
    api::RunConfig cfg;
    cfg.workload = workload;
    cfg.nthreads = envThreads();
    cfg.scale = envScale();
    return cfg;
}

inline void
printHeader(const char *experiment, const char *paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", experiment);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("machine: %u cores, scale %.2f "
                "(RETCON_THREADS / RETCON_SCALE to override)\n",
                envThreads(), envScale());
    std::printf("==================================================\n");
}

inline void
flagInvalid(const api::RunResult &r, const std::string &workload)
{
    if (!r.validation.ok)
        std::printf("!! %s failed validation: %s\n", workload.c_str(),
                    r.validation.note.c_str());
}

} // namespace retcon::bench

#endif // RETCON_BENCH_COMMON_HPP
