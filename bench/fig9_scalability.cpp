/**
 * @file
 * Figure 9: speedup over sequential execution for the three machine
 * configurations — eager (baseline), lazy-vb (value-based validation
 * without repair), and RetCon — across all 14 workload variants.
 *
 * The paper's key results to look for in the output:
 *  - python_opt: no scaling under eager/lazy-vb, near-linear under
 *    RetCon (refcount repair);
 *  - genome-sz / intruder_opt-sz / vacation_opt-sz: RetCon makes them
 *    insensitive to hashtable resizability (compare with the fixed
 *    variants);
 *  - intruder / yada / python: abort-bound but not helped (conflicting
 *    values feed address computation, §5.4);
 *  - lazy-vb alone helps only the vacation variants (false sharing).
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

int
main()
{
    printHeader("Figure 9: scalability over sequential execution",
                "RETCON (ISCA 2010), Figure 9");
    std::printf("%-18s %10s %10s %10s\n", "workload", "eager",
                "lazy-vb", "RetCon");
    for (const auto &name : workloads::workloadNames()) {
        if (name == "bayes")
            continue; // Figure 9 excludes bayes (runtime variability).
        api::RunConfig cfg = baseConfig(name);
        Cycle seq = api::sequentialCycles(cfg);
        std::printf("%-18s", name.c_str());
        for (auto &[label, tm] : api::paperConfigs()) {
            cfg.tm = tm;
            api::RunResult r = api::runOnce(cfg);
            flagInvalid(r, name);
            std::printf(" %9.2fx", double(seq) / double(r.cycles));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
