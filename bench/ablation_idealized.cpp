/**
 * @file
 * §5.3 "Comparison to idealized system": realistic RETCON (16/16/32
 * structures, serial pre-commit reacquire, serial commit stores)
 * versus an idealized variant with unlimited state, parallel
 * reacquire, and free commit-time stores. The paper found the
 * difference negligible; the abort-bound workloads below check that.
 *
 * Also sweeps the §5.1 predictor train-down threshold (the "100
 * conflicts before retrying symbolic tracking" design choice) and the
 * §2 contention-management policy claim (oldest-wins is robust).
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

namespace {

const char *kWorkloads[] = {"genome-sz", "intruder_opt-sz",
                            "vacation_opt-sz", "python_opt"};

} // namespace

int
main()
{
    printHeader("Ablations: idealized RETCON (§5.3), predictor "
                "train-down (§5.1), CM policy (§2)",
                "RETCON (ISCA 2010), §5.3 / §5.1 / §2");

    std::printf("--- idealized RETCON vs realistic ---\n");
    std::printf("%-18s %12s %12s %8s\n", "workload", "realistic",
                "idealized", "delta");
    for (const char *name : kWorkloads) {
        api::RunConfig cfg = baseConfig(name);
        cfg.tm = api::retconConfig();
        Cycle real = api::runOnce(cfg).cycles;
        cfg.tm.unlimitedState = true;
        cfg.tm.parallelReacquire = true;
        cfg.tm.freeCommitStores = true;
        Cycle ideal = api::runOnce(cfg).cycles;
        std::printf("%-18s %12llu %12llu %+7.1f%%\n", name,
                    static_cast<unsigned long long>(real),
                    static_cast<unsigned long long>(ideal),
                    100.0 * (double(real) - double(ideal)) /
                        double(real));
        std::fflush(stdout);
    }

    std::printf("\n--- predictor train-down threshold (genome-sz) ---\n");
    std::printf("%8s %12s %10s\n", "thresh", "cycles", "violations");
    for (std::uint32_t thresh : {1u, 10u, 100u, 1000u}) {
        api::RunConfig cfg = baseConfig("genome-sz");
        cfg.tm = api::retconConfig();
        cfg.tm.predictor.trainDownConflicts = thresh;
        api::RunResult r = api::runOnce(cfg);
        std::printf("%8u %12llu %10llu\n", thresh,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        r.machineStats
                            .abortsByCause[static_cast<int>(
                                htm::AbortCause::ConstraintViolation)]));
        std::fflush(stdout);
    }

    std::printf("\n--- contention management policy (eager baseline) "
                "---\n");
    std::printf("%-18s %12s %12s %12s\n", "workload", "oldest-wins",
                "req-loses", "req-wins");
    for (const char *name : {"intruder", "vacation", "kmeans"}) {
        api::RunConfig cfg = baseConfig(name);
        // Requester-loses/wins have no forward-progress guarantee
        // (the pathologies of Bobba et al. the paper cites); cap the
        // run so livelocks terminate and are visible as such.
        cfg.maxCycles = 30'000'000;
        std::printf("%-18s", name);
        for (auto policy :
             {htm::CMPolicy::OldestWins, htm::CMPolicy::RequesterLoses,
              htm::CMPolicy::RequesterWins}) {
            cfg.tm = api::eagerConfig();
            cfg.tm.cmPolicy = policy;
            api::RunResult r = api::runOnce(cfg);
            if (r.cycles >= cfg.maxCycles)
                std::printf("     LIVELOCK");
            else
                std::printf(" %12llu",
                            static_cast<unsigned long long>(r.cycles));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
