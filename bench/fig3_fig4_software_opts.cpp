/**
 * @file
 * Figure 3 + Figure 4: scalability of all workload variants on the
 * baseline (eager) system before and after the paper's software
 * restructurings, with the execution-time breakdown that identifies
 * *why* each workload scales or not (busy / barrier / conflict /
 * other).
 *
 * The key observations to reproduce: the _opt restructurings lift
 * intruder and vacation dramatically; the remaining laggards
 * (genome-sz, *-sz, python_opt, yada) are conflict-bound — on
 * auxiliary data for the -sz and python variants (which §4's RETCON
 * then repairs), and on algorithm-central data for yada.
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "--list") {
        std::printf("Table 2 workloads:\n");
        for (const auto &name : workloads::workloadNames())
            std::printf("  %s\n", name.c_str());
        return 0;
    }

    printHeader("Figures 3+4: software restructurings and time "
                "breakdown (baseline HTM)",
                "RETCON (ISCA 2010), Figures 3 and 4");
    std::printf("%-18s %9s | %6s %6s %6s %6s\n", "workload", "speedup",
                "busy", "barr", "conf", "other");
    for (const auto &name : workloads::workloadNames()) {
        if (name == "bayes")
            continue;
        api::RunConfig cfg = baseConfig(name);
        cfg.tm = api::eagerConfig();
        Cycle seq = api::sequentialCycles(cfg);
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, name);
        double total = r.breakdown.total();
        std::printf("%-18s %8.2fx | %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    name.c_str(), double(seq) / double(r.cycles),
                    100 * r.breakdown.busy / total,
                    100 * r.breakdown.barrier / total,
                    100 * r.breakdown.conflict / total,
                    100 * r.breakdown.other / total);
        std::fflush(stdout);
    }
    return 0;
}
