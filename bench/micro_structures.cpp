/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * event queue throughput, cache tag lookups, interval constraint
 * recording, IVB/SSB operations, and predictor queries. These bound
 * the host-side cost per simulated memory operation.
 */

#include <benchmark/benchmark.h>

#include "mem/cache.hpp"
#include "retcon/constraint_buffer.hpp"
#include "retcon/ivb.hpp"
#include "retcon/predictor.hpp"
#include "retcon/ssb.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace retcon;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheInsertLookup(benchmark::State &state)
{
    mem::SetAssocCache cache({64 * 1024, 4});
    Xoshiro rng(7);
    for (auto _ : state) {
        Addr block = blockAddr(rng.below(1 << 20) * kBlockBytes);
        cache.insert(block);
        benchmark::DoNotOptimize(cache.contains(block));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup);

static void
BM_IntervalConstrain(benchmark::State &state)
{
    Xoshiro rng(11);
    for (auto _ : state) {
        rtc::Interval iv;
        for (int i = 0; i < 8; ++i)
            iv.constrain(static_cast<rtc::CmpOp>(rng.below(6)),
                         static_cast<std::int64_t>(rng.below(100)));
        benchmark::DoNotOptimize(iv.contains(50));
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_IntervalConstrain);

static void
BM_IvbAllocateFind(benchmark::State &state)
{
    std::array<Word, kWordsPerBlock> words{};
    for (auto _ : state) {
        rtc::InitialValueBuffer ivb(16);
        for (Addr b = 0; b < 16; ++b)
            ivb.allocate(b * kBlockBytes, words);
        for (Addr b = 0; b < 16; ++b)
            benchmark::DoNotOptimize(ivb.find(b * kBlockBytes));
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_IvbAllocateFind);

static void
BM_SsbPutForward(benchmark::State &state)
{
    for (auto _ : state) {
        rtc::SymbolicStoreBuffer ssb(32);
        for (Addr w = 0; w < 32; ++w)
            ssb.put(w * 8, w, rtc::SymTag{0x1000, 1, 8}, 8);
        for (Addr w = 0; w < 32; ++w)
            benchmark::DoNotOptimize(ssb.find(w * 8));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SsbPutForward);

// ---------------------------------------------------------------------
// Grown-structure lookups (unlimitedState sizing). These pin the win
// from the small-map indices that replaced the linear scans: at
// Table 1 sizes (16/32 entries) either is fine, but idealized-RETCON
// runs grow the buffers far past that and made find()/invalidate()
// the host-side hot path (ROADMAP perf item, closed in PR 4).
// ---------------------------------------------------------------------

static void
BM_IvbFindGrown(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::array<Word, kWordsPerBlock> words{};
    rtc::InitialValueBuffer ivb(SIZE_MAX);
    for (Addr b = 0; b < n; ++b)
        ivb.allocate(b * kBlockBytes, words);
    Xoshiro rng(17);
    for (auto _ : state) {
        // Mix of hits and misses, like the txLoad fast path.
        Addr b = rng.below(2 * n) * kBlockBytes;
        benchmark::DoNotOptimize(ivb.find(b));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvbFindGrown)->Arg(16)->Arg(256)->Arg(1024);

static void
BM_SsbInvalidateMiss(benchmark::State &state)
{
    // Every RETCON eager store probes the SSB for an entry to drop;
    // almost all probes miss. The index makes the miss O(1).
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    rtc::SymbolicStoreBuffer ssb(SIZE_MAX);
    for (Addr w = 0; w < n; ++w)
        ssb.put(w * 8, w, rtc::SymTag{0x1000, 1, 8}, 8);
    Xoshiro rng(19);
    for (auto _ : state) {
        Addr miss = (n + rng.below(1 << 20)) * 8;
        ssb.invalidate(miss);
        benchmark::DoNotOptimize(ssb.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsbInvalidateMiss)->Arg(32)->Arg(1024);

static void
BM_ConstraintSatisfied(benchmark::State &state)
{
    // satisfied() runs per eager store and per commit word.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    rtc::ConstraintBuffer cb(SIZE_MAX);
    for (Addr r = 0; r < n; ++r)
        cb.record(r * 8, rtc::CmpOp::GT, -1);
    Xoshiro rng(23);
    for (auto _ : state) {
        Addr root = rng.below(2 * n) * 8;
        benchmark::DoNotOptimize(cb.satisfied(root, 5));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConstraintSatisfied)->Arg(16)->Arg(512);

static void
BM_PredictorQuery(benchmark::State &state)
{
    rtc::ConflictPredictor pred;
    for (Addr b = 0; b < 256; ++b)
        pred.observeConflict(b * kBlockBytes);
    Xoshiro rng(13);
    for (auto _ : state) {
        Addr b = blockAddr(rng.below(512) * kBlockBytes);
        benchmark::DoNotOptimize(pred.shouldTrack(b));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorQuery);

BENCHMARK_MAIN();
