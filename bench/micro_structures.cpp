/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * event queue throughput, cache tag lookups, interval constraint
 * recording, IVB/SSB operations, and predictor queries. These bound
 * the host-side cost per simulated memory operation.
 */

#include <benchmark/benchmark.h>

#include "mem/cache.hpp"
#include "retcon/constraint_buffer.hpp"
#include "retcon/ivb.hpp"
#include "retcon/predictor.hpp"
#include "retcon/ssb.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace retcon;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheInsertLookup(benchmark::State &state)
{
    mem::SetAssocCache cache({64 * 1024, 4});
    Xoshiro rng(7);
    for (auto _ : state) {
        Addr block = blockAddr(rng.below(1 << 20) * kBlockBytes);
        cache.insert(block);
        benchmark::DoNotOptimize(cache.contains(block));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup);

static void
BM_IntervalConstrain(benchmark::State &state)
{
    Xoshiro rng(11);
    for (auto _ : state) {
        rtc::Interval iv;
        for (int i = 0; i < 8; ++i)
            iv.constrain(static_cast<rtc::CmpOp>(rng.below(6)),
                         static_cast<std::int64_t>(rng.below(100)));
        benchmark::DoNotOptimize(iv.contains(50));
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_IntervalConstrain);

static void
BM_IvbAllocateFind(benchmark::State &state)
{
    std::array<Word, kWordsPerBlock> words{};
    for (auto _ : state) {
        rtc::InitialValueBuffer ivb(16);
        for (Addr b = 0; b < 16; ++b)
            ivb.allocate(b * kBlockBytes, words);
        for (Addr b = 0; b < 16; ++b)
            benchmark::DoNotOptimize(ivb.find(b * kBlockBytes));
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_IvbAllocateFind);

static void
BM_SsbPutForward(benchmark::State &state)
{
    for (auto _ : state) {
        rtc::SymbolicStoreBuffer ssb(32);
        for (Addr w = 0; w < 32; ++w)
            ssb.put(w * 8, w, rtc::SymTag{0x1000, 1, 8}, 8);
        for (Addr w = 0; w < 32; ++w)
            benchmark::DoNotOptimize(ssb.find(w * 8));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SsbPutForward);

static void
BM_PredictorQuery(benchmark::State &state)
{
    rtc::ConflictPredictor pred;
    for (Addr b = 0; b < 256; ++b)
        pred.observeConflict(b * kBlockBytes);
    Xoshiro rng(13);
    for (auto _ : state) {
        Addr b = blockAddr(rng.below(512) * kBlockBytes);
        benchmark::DoNotOptimize(pred.shouldTrack(b));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorQuery);

BENCHMARK_MAIN();
