/**
 * @file
 * Figure 2: qualitative comparison of RETCON, DATM, EagerTM,
 * EagerTM-Stall, and LazyTM on the shared-counter microbenchmark (two
 * processors, each performing repeated increments of one counter).
 *
 * Reproduces the figure's story quantitatively:
 *  - RETCON commits both transactions with *zero* aborts, repairing
 *    the counter at commit;
 *  - DATM forwards values but aborts on the cyclic dependence;
 *  - EagerTM (requester-loses) suffers repeated aborts;
 *  - EagerTM-Stall (oldest-wins) stalls the younger processor;
 *  - LazyTM aborts the loser at the winner's commit.
 */

#include "bench_common.hpp"
#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::bench;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x40000;

Task<TxValue>
doubleIncrement(Tx &tx)
{
    // Two increments per transaction, as in Figure 2.
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_await tx.work(40);
    TxValue w = co_await tx.load(kCounter);
    w = tx.add(w, 1);
    co_await tx.store(kCounter, w);
    co_return w;
}

Task<void>
threadMain(WorkerCtx &ctx, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await ctx.txn([](Tx &tx) { return doubleIncrement(tx); });
        co_await ctx.work(10);
    }
    co_await ctx.barrier();
}

struct Row {
    const char *label;
    htm::TMMode mode;
    htm::CMPolicy policy;
};

} // namespace

int
main()
{
    printHeader("Figure 2: conflict-handling comparison on a shared "
                "counter",
                "RETCON (ISCA 2010), Figure 2");
    const int iters = 50;
    const Row rows[] = {
        {"RetCon (a)", htm::TMMode::Retcon, htm::CMPolicy::OldestWins},
        {"DATM (b)", htm::TMMode::DATM, htm::CMPolicy::OldestWins},
        {"EagerTM (c)", htm::TMMode::Eager,
         htm::CMPolicy::RequesterLoses},
        {"EagerTM-Stall (d)", htm::TMMode::Eager,
         htm::CMPolicy::OldestWins},
        {"LazyTM (e)", htm::TMMode::Lazy, htm::CMPolicy::OldestWins},
    };

    std::printf("%-18s %10s %8s %8s %8s %10s\n", "configuration",
                "cycles", "commits", "aborts", "stalls", "final");
    for (const Row &row : rows) {
        ClusterConfig cfg;
        cfg.numThreads = 2;
        cfg.tm.mode = row.mode;
        cfg.tm.cmPolicy = row.policy;
        Cluster cluster(cfg);
        // Pre-train the predictor so RETCON tracks the counter from
        // the first transaction (as after warmup).
        cluster.machine().predictor().observeConflict(
            blockAddr(kCounter));
        cluster.start([&](WorkerCtx &ctx) {
            return threadMain(ctx, iters);
        });
        Cycle end = cluster.run();
        Word final_value = cluster.memory().readWord(kCounter);
        const auto &ms = cluster.machine().stats();
        std::printf("%-18s %10llu %8llu %8llu %8llu %10llu%s\n",
                    row.label, static_cast<unsigned long long>(end),
                    static_cast<unsigned long long>(ms.commits),
                    static_cast<unsigned long long>(ms.aborts),
                    static_cast<unsigned long long>(ms.nacks),
                    static_cast<unsigned long long>(final_value),
                    final_value == Word(2 * 2 * iters) ? ""
                                                       : "  (WRONG)");
    }
    std::printf("(final must be %d in every row: isolation holds in "
                "all modes)\n",
                2 * 2 * iters);
    return 0;
}
