/**
 * @file
 * Table 3: RETCON structure utilization and pre-commit runtime
 * overhead — average (max) of 64B blocks stolen per transaction, IVB
 * entries, symbolic registers repaired, symbolic stores drained,
 * constraint addresses checked, pre-commit stall cycles, and the
 * pre-commit share of transaction lifetime.
 *
 * The paper's conclusions to verify: the 16-entry IVB / 16-entry
 * constraint buffer / 32-entry SSB are ample (averages of a few
 * entries), and pre-commit repair costs under a few percent of
 * transaction lifetime everywhere (python the heaviest).
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

int
main()
{
    printHeader("Table 3: RETCON structure utilization",
                "RETCON (ISCA 2010), Table 3");
    std::printf("%-18s %-11s %-11s %-11s %-11s %-11s %8s %7s\n",
                "workload", "lost", "tracked", "symregs", "privst",
                "constr", "commitcy", "stall%");
    for (const auto &name : workloads::workloadNames()) {
        api::RunConfig cfg = baseConfig(name);
        cfg.tm = api::retconConfig();
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, name);
        const auto &m = r.machineStats;
        auto cell = [](const AvgMax &a) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f (%.0f)", a.avg(),
                          a.max());
            return std::string(buf);
        };
        std::printf("%-18s %-11s %-11s %-11s %-11s %-11s %8.1f %6.2f%%\n",
                    name.c_str(), cell(m.blocksLost).c_str(),
                    cell(m.blocksTracked).c_str(),
                    cell(m.symRegs).c_str(),
                    cell(m.privateStores).c_str(),
                    cell(m.constraintAddrs).c_str(),
                    m.commitCycles.avg(), m.commitStallPct());
        std::fflush(stdout);
    }
    return 0;
}
