/**
 * @file
 * Figure 1: scalability of the aggressive baseline HTM on 32
 * processors, for the eight unmodified workloads. The paper's headline
 * observation: performance is mixed — some workloads scale near
 * linearly while half obtain less than 5x.
 */

#include "bench_common.hpp"

using namespace retcon;
using namespace retcon::bench;

int
main()
{
    printHeader("Figure 1: baseline (eager HTM) speedup over sequential",
                "RETCON (ISCA 2010), Figure 1");
    std::printf("%-12s %12s %12s %10s\n", "workload", "seq cycles",
                "htm cycles", "speedup");
    for (const auto &name : workloads::baseWorkloadNames()) {
        api::RunConfig cfg = baseConfig(name);
        cfg.tm = api::eagerConfig();
        Cycle seq = api::sequentialCycles(cfg);
        api::RunResult r = api::runOnce(cfg);
        flagInvalid(r, name);
        std::printf("%-12s %12llu %12llu %9.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(r.cycles),
                    double(seq) / double(r.cycles));
    }
    return 0;
}
