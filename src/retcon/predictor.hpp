/**
 * @file
 * Conflict predictor deciding which blocks invoke value-based and
 * symbolic tracking (§5.1).
 *
 * The predictor trains up from observed conflicts: once a block has
 * caused at least `trainUpThreshold` conflicts it is tracked. A
 * violated constraint at commit "trains down aggressively": the block
 * must be observed in `trainDownConflicts` (100) further conflicts
 * before symbolic tracking is attempted again, which keeps transactions
 * from repeatedly elongating only to abort at the commit-time check.
 */

#ifndef RETCON_RETCON_PREDICTOR_HPP
#define RETCON_RETCON_PREDICTOR_HPP

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace retcon::rtc {

/** Per-block conflict-history predictor. */
class ConflictPredictor
{
  public:
    struct Config {
        std::uint32_t trainUpThreshold = 1;
        std::uint32_t trainDownConflicts = 100;
    };

    ConflictPredictor() : _cfg() {}
    explicit ConflictPredictor(const Config &cfg) : _cfg(cfg) {}

    /** Should loads/stores to @p block use symbolic tracking? */
    bool
    shouldTrack(Addr block) const
    {
        auto it = _table.find(block);
        if (it == _table.end())
            return false;
        const State &s = it->second;
        return s.conflicts >= _cfg.trainUpThreshold && s.cooldown == 0;
    }

    /** A conflict was observed on @p block (any transaction). */
    void
    observeConflict(Addr block)
    {
        State &s = _table[block];
        ++s.conflicts;
        if (s.cooldown > 0)
            --s.cooldown;
    }

    /** A commit-time constraint on @p block was violated. */
    void
    observeViolation(Addr block)
    {
        State &s = _table[block];
        s.cooldown = _cfg.trainDownConflicts;
        ++s.violations;
    }

    /** Total constraint violations recorded (stats). */
    std::uint64_t
    totalViolations() const
    {
        std::uint64_t n = 0;
        for (const auto &[a, s] : _table)
            n += s.violations;
        return n;
    }

    std::size_t tableSize() const { return _table.size(); }

    const Config &config() const { return _cfg; }

    void clear() { _table.clear(); }

  private:
    struct State {
        std::uint32_t conflicts = 0;
        std::uint32_t cooldown = 0;
        std::uint64_t violations = 0;
    };

    Config _cfg;
    std::unordered_map<Addr, State> _table;
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_PREDICTOR_HPP
