/**
 * @file
 * Constraint buffer: word-granularity interval constraints (Figure 5,
 * with the §4.4 interval representation).
 *
 * Each entry maps a root word address to the most restrictive interval
 * implied by every control-flow constraint recorded against it. The
 * buffer holds at most `capacity` distinct root addresses (16 in
 * Table 1); when full, new constraints fall back to compressed equality
 * bits in the IVB, which is sound but forfeits repairability for that
 * word.
 */

#ifndef RETCON_RETCON_CONSTRAINT_BUFFER_HPP
#define RETCON_RETCON_CONSTRAINT_BUFFER_HPP

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "retcon/interval.hpp"
#include "sim/types.hpp"

namespace retcon::rtc {

/** Fixed-capacity map: root word address -> Interval. */
class ConstraintBuffer
{
  public:
    explicit ConstraintBuffer(std::size_t capacity = 16)
        : _capacity(capacity)
    {}

    /** Outcome of attempting to record a constraint. */
    enum class Record {
        Ok,          ///< Captured in an interval.
        Full,        ///< No room: caller must set an equality bit.
        Unsat,       ///< Interval became empty: commit cannot succeed.
        Inexact,     ///< Interior NE: caller must set an equality bit.
    };

    /** Stable name for diagnostics and trace output. */
    static const char *
    recordName(Record r)
    {
        switch (r) {
          case Record::Ok: return "ok";
          case Record::Full: return "full";
          case Record::Unsat: return "unsat";
          case Record::Inexact: return "inexact";
        }
        return "?";
    }

    /**
     * Record `([root] OP k)` where k has already been normalized to the
     * root (i.e., the symbolic delta has been subtracted out).
     */
    Record
    record(Addr root, CmpOp op, std::int64_t k)
    {
        Interval *iv = find(root);
        if (!iv) {
            if (_entries.size() >= _capacity)
                return Record::Full;
            _index.emplace(root, _entries.size());
            _entries.emplace_back(root, Interval{});
            iv = &_entries.back().second;
        }
        Interval saved = *iv;
        if (!iv->constrain(op, k)) {
            *iv = saved;
            return Record::Inexact;
        }
        if (iv->empty())
            return Record::Unsat;
        return Record::Ok;
    }

    /** Interval currently constraining @p root, or nullptr. O(1) via
     *  the root index — satisfied() runs per store and per commit
     *  word, where the scan this replaces was the hot path. */
    Interval *
    find(Addr root)
    {
        auto it = _index.find(root);
        return it == _index.end() ? nullptr
                                  : &_entries[it->second].second;
    }

    const Interval *
    find(Addr root) const
    {
        auto it = _index.find(root);
        return it == _index.end() ? nullptr
                                  : &_entries[it->second].second;
    }

    /** True when @p value satisfies all constraints on @p root. */
    bool
    satisfied(Addr root, std::int64_t value) const
    {
        const Interval *iv = find(root);
        return !iv || iv->contains(value);
    }

    std::size_t size() const { return _entries.size(); }
    std::size_t capacity() const { return _capacity; }

    const std::vector<std::pair<Addr, Interval>> &
    entries() const
    {
        return _entries;
    }

    void
    clear()
    {
        _entries.clear();
        _index.clear();
    }

  private:
    std::size_t _capacity;
    std::vector<std::pair<Addr, Interval>> _entries;
    /// root -> position in _entries (append-only until clear()).
    std::unordered_map<Addr, std::size_t> _index;
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_CONSTRAINT_BUFFER_HPP
