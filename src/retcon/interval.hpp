/**
 * @file
 * Interval representation of symbolic control-flow constraints (§4.4).
 *
 * Every branch on a symbolic value "[A] + delta  OP  k" is normalized to
 * a constraint on the root "[A]  OP  (k - delta)" and folded into a
 * single closed interval [lo, hi] per root word: the most restrictive
 * interval implied by all {<, <=, ==, >=, >} constraints. A != bound is
 * representable exactly only at the interval edges; interior exclusions
 * are dropped (a sound over-approximation... of the *acceptable* set
 * would be unsound, so interior != instead falls back to an equality
 * constraint at a higher layer — see ConstraintRecorder in the machine).
 *
 * Values are interpreted as signed 64-bit integers, matching the
 * bookkeeping data (counters, sizes) the paper targets.
 */

#ifndef RETCON_RETCON_INTERVAL_HPP
#define RETCON_RETCON_INTERVAL_HPP

#include <cstdint>
#include <limits>

namespace retcon::rtc {

/** Comparison operators appearing in symbolic branch constraints. */
enum class CmpOp : std::uint8_t { LT, LE, EQ, NE, GE, GT };

/** Negate a comparison (for the not-taken branch direction). */
constexpr CmpOp
negate(CmpOp op)
{
    switch (op) {
      case CmpOp::LT: return CmpOp::GE;
      case CmpOp::LE: return CmpOp::GT;
      case CmpOp::EQ: return CmpOp::NE;
      case CmpOp::NE: return CmpOp::EQ;
      case CmpOp::GE: return CmpOp::LT;
      case CmpOp::GT: return CmpOp::LE;
    }
    return CmpOp::EQ;
}

/** Evaluate `a OP b` over signed 64-bit values. */
constexpr bool
evalCmp(std::int64_t a, CmpOp op, std::int64_t b)
{
    switch (op) {
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::GE: return a >= b;
      case CmpOp::GT: return a > b;
    }
    return false;
}

/** Closed signed interval [lo, hi]; default is unconstrained. */
struct Interval {
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();

    bool operator==(const Interval &) const = default;

    /** True when no value satisfies the interval. */
    bool empty() const { return lo > hi; }

    /** True when every int64 satisfies it. */
    bool
    unconstrained() const
    {
        return lo == std::numeric_limits<std::int64_t>::min() &&
               hi == std::numeric_limits<std::int64_t>::max();
    }

    /** Membership test. */
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

    /**
     * Intersect with `value OP k`.
     *
     * @return true when the constraint was captured exactly; false when
     * it could not be represented (interior NE), in which case the
     * interval is left unchanged and the caller must fall back to an
     * equality constraint on the current concrete value.
     */
    bool
    constrain(CmpOp op, std::int64_t k)
    {
        switch (op) {
          case CmpOp::LT:
            hi = std::min(hi, sub1(k));
            return true;
          case CmpOp::LE:
            hi = std::min(hi, k);
            return true;
          case CmpOp::EQ:
            lo = std::max(lo, k);
            hi = std::min(hi, k);
            return true;
          case CmpOp::GE:
            lo = std::max(lo, k);
            return true;
          case CmpOp::GT:
            lo = std::max(lo, add1(k));
            return true;
          case CmpOp::NE:
            if (k < lo || k > hi)
                return true; // Already excluded.
            if (k == lo && k == hi) {
                // The only remaining value is excluded: empty.
                lo = std::numeric_limits<std::int64_t>::max();
                hi = std::numeric_limits<std::int64_t>::min();
                return true;
            }
            if (k == lo) {
                lo = add1(lo);
                return true;
            }
            if (k == hi) {
                hi = sub1(hi);
                return true;
            }
            return false; // Interior exclusion: not representable.
        }
        return false;
    }

  private:
    static std::int64_t
    add1(std::int64_t v)
    {
        return v == std::numeric_limits<std::int64_t>::max() ? v : v + 1;
    }
    static std::int64_t
    sub1(std::int64_t v)
    {
        return v == std::numeric_limits<std::int64_t>::min() ? v : v - 1;
    }
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_INTERVAL_HPP
