/**
 * @file
 * Symbolic value representation (§4.4 "efficient representation").
 *
 * RETCON restricts symbolically-trackable computation to additions and
 * subtractions, so a symbolic value collapses to an
 * `(input_address, increment)` pair: the value equals "whatever the
 * root input word holds at commit, plus delta". The root is always a
 * word-aligned address of a word captured in the initial value buffer.
 *
 * Anything outside this shape (multiplies, divides, floating point,
 * address computation, multi-symbolic-input operations past the first
 * input, sub-word mixing) is *not* tracked; the implementation instead
 * pins the root with an equality constraint, which degrades that word
 * to lazy value-based validation — sound, just not repairable.
 */

#ifndef RETCON_RETCON_SYMBOLIC_HPP
#define RETCON_RETCON_SYMBOLIC_HPP

#include <cstdint>

#include "sim/types.hpp"

namespace retcon::rtc {

/** A symbolic value: [root] + delta, as a `size`-byte quantity. */
struct SymTag {
    /** Word-aligned address of the tracked input word. */
    Addr root = 0;
    /** Cumulative increment applied since the root was loaded. */
    std::int64_t delta = 0;
    /** Access size in bytes (8 for full-word tracking). */
    std::uint8_t size = 8;

    bool operator==(const SymTag &) const = default;
};

/** Evaluate a symbolic value given the root's final concrete value. */
constexpr Word
evalSym(const SymTag &tag, Word root_value)
{
    Word v = root_value + static_cast<Word>(tag.delta);
    if (tag.size >= 8)
        return v;
    return v & ((Word(1) << (tag.size * 8)) - 1);
}

} // namespace retcon::rtc

#endif // RETCON_RETCON_SYMBOLIC_HPP
