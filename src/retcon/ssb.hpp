/**
 * @file
 * Symbolic Store Buffer (Figure 5).
 *
 * Holds symbolically-tracked stores: address, the store's concrete
 * (best-guess) value, and its symbolic value if any. Accessed like an
 * unordered store buffer: loads check it in parallel with the IVB and
 * data cache (Figure 6); store-to-load forwarding *copies* the symbolic
 * value, flattening the dependence (§4.3), which is what lets the
 * commit-time drain proceed in any order.
 *
 * A non-symbolic store to an address present here invalidates the entry
 * (Figure 8, time 10).
 */

#ifndef RETCON_RETCON_SSB_HPP
#define RETCON_RETCON_SSB_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "retcon/symbolic.hpp"
#include "sim/types.hpp"

namespace retcon::rtc {

/** One symbolic store buffer entry (word granularity). */
struct SsbEntry {
    Addr word = 0;                ///< Word-aligned target address.
    Word concrete = 0;            ///< Best-guess value at store time.
    std::optional<SymTag> sym;    ///< Symbolic value, when tracked.
    std::uint8_t size = 8;        ///< Store size in bytes.
};

/** Fixed-capacity unordered symbolic store buffer (32 in Table 1). */
class SymbolicStoreBuffer
{
  public:
    explicit SymbolicStoreBuffer(std::size_t capacity = 32)
        : _capacity(capacity)
    {}

    /** O(1) via the word index; the common miss (most loads/stores
     *  touch words with no pending symbolic store) costs one hash
     *  probe instead of a full scan. */
    SsbEntry *
    find(Addr word)
    {
        auto it = _index.find(word);
        return it == _index.end() ? nullptr : &_entries[it->second];
    }

    const SsbEntry *
    find(Addr word) const
    {
        auto it = _index.find(word);
        return it == _index.end() ? nullptr : &_entries[it->second];
    }

    bool full() const { return _entries.size() >= _capacity; }

    /** Outcome of a put(), distinguished for provenance tracing. */
    enum class Put : std::uint8_t {
        Inserted, ///< New entry allocated.
        Updated,  ///< Existing entry for the word overwritten.
        Full,     ///< No room: caller falls back to an eager store +
                  ///< equality constraint.
    };

    /** Insert or overwrite the entry for @p word. */
    Put
    put(Addr word, Word concrete, std::optional<SymTag> sym,
        std::uint8_t size)
    {
        if (SsbEntry *e = find(word)) {
            e->concrete = concrete;
            e->sym = sym;
            e->size = size;
            return Put::Updated;
        }
        if (full())
            return Put::Full;
        _index.emplace(word, _entries.size());
        _entries.push_back(SsbEntry{word, concrete, sym, size});
        return Put::Inserted;
    }

    /**
     * Drop the entry for @p word (overwritten by a normal store).
     * The erase preserves insertion order (the commit drain order), so
     * later positions shift down and the index is fixed up — O(n), but
     * only on an actual hit; the hot no-entry case is one hash probe.
     */
    void
    invalidate(Addr word)
    {
        auto it = _index.find(word);
        if (it == _index.end())
            return;
        std::size_t pos = it->second;
        _entries.erase(_entries.begin() +
                       static_cast<std::ptrdiff_t>(pos));
        _index.erase(it);
        for (auto &[w, p] : _index)
            if (p > pos)
                --p;
    }

    /** Entries in insertion order (the commit drain order). */
    std::vector<SsbEntry> &entries() { return _entries; }
    const std::vector<SsbEntry> &entries() const { return _entries; }

    std::size_t size() const { return _entries.size(); }
    std::size_t capacity() const { return _capacity; }

    void
    clear()
    {
        _entries.clear();
        _index.clear();
    }

  private:
    std::size_t _capacity;
    std::vector<SsbEntry> _entries;
    /// word -> position in _entries, kept in step with every
    /// put/invalidate (see invalidate for the erase fix-up).
    std::unordered_map<Addr, std::size_t> _index;
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_SSB_HPP
