/**
 * @file
 * Symbolic Store Buffer (Figure 5).
 *
 * Holds symbolically-tracked stores: address, the store's concrete
 * (best-guess) value, and its symbolic value if any. Accessed like an
 * unordered store buffer: loads check it in parallel with the IVB and
 * data cache (Figure 6); store-to-load forwarding *copies* the symbolic
 * value, flattening the dependence (§4.3), which is what lets the
 * commit-time drain proceed in any order.
 *
 * A non-symbolic store to an address present here invalidates the entry
 * (Figure 8, time 10).
 */

#ifndef RETCON_RETCON_SSB_HPP
#define RETCON_RETCON_SSB_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "retcon/symbolic.hpp"
#include "sim/types.hpp"

namespace retcon::rtc {

/** One symbolic store buffer entry (word granularity). */
struct SsbEntry {
    Addr word = 0;                ///< Word-aligned target address.
    Word concrete = 0;            ///< Best-guess value at store time.
    std::optional<SymTag> sym;    ///< Symbolic value, when tracked.
    std::uint8_t size = 8;        ///< Store size in bytes.
};

/** Fixed-capacity unordered symbolic store buffer (32 in Table 1). */
class SymbolicStoreBuffer
{
  public:
    explicit SymbolicStoreBuffer(std::size_t capacity = 32)
        : _capacity(capacity)
    {}

    SsbEntry *
    find(Addr word)
    {
        for (auto &e : _entries)
            if (e.word == word)
                return &e;
        return nullptr;
    }

    const SsbEntry *
    find(Addr word) const
    {
        for (const auto &e : _entries)
            if (e.word == word)
                return &e;
        return nullptr;
    }

    bool full() const { return _entries.size() >= _capacity; }

    /** Outcome of a put(), distinguished for provenance tracing. */
    enum class Put : std::uint8_t {
        Inserted, ///< New entry allocated.
        Updated,  ///< Existing entry for the word overwritten.
        Full,     ///< No room: caller falls back to an eager store +
                  ///< equality constraint.
    };

    /** Insert or overwrite the entry for @p word. */
    Put
    put(Addr word, Word concrete, std::optional<SymTag> sym,
        std::uint8_t size)
    {
        if (SsbEntry *e = find(word)) {
            e->concrete = concrete;
            e->sym = sym;
            e->size = size;
            return Put::Updated;
        }
        if (full())
            return Put::Full;
        _entries.push_back(SsbEntry{word, concrete, sym, size});
        return Put::Inserted;
    }

    /** Drop the entry for @p word (overwritten by a normal store). */
    void
    invalidate(Addr word)
    {
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->word == word) {
                _entries.erase(it);
                return;
            }
        }
    }

    /** Entries in insertion order (the commit drain order). */
    std::vector<SsbEntry> &entries() { return _entries; }
    const std::vector<SsbEntry> &entries() const { return _entries; }

    std::size_t size() const { return _entries.size(); }
    std::size_t capacity() const { return _capacity; }

    void clear() { _entries.clear(); }

  private:
    std::size_t _capacity;
    std::vector<SsbEntry> _entries;
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_SSB_HPP
