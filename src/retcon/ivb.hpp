/**
 * @file
 * Initial Value Buffer (Figure 5), maintained at cache-block granularity
 * (§4.4 optimization).
 *
 * One entry per symbolically-tracked block. The entry snapshots the
 * block's initial concrete words at the first symbolic load, carries
 * per-word bookkeeping bits:
 *   - readMask: words whose values the transaction actually consumed;
 *   - eqMask: words pinned by a compressed equality constraint (§4.4);
 *   - written: the block will be written at commit, so the pre-commit
 *     reacquire should obtain write permission directly and avoid the
 *     upgrade miss (§4.4);
 *   - lost: the block was stolen away by a remote core mid-transaction
 *     and must be reacquired at commit (Figure 7, step 1).
 *
 * `curWords` holds the reacquired final values during pre-commit repair.
 */

#ifndef RETCON_RETCON_IVB_HPP
#define RETCON_RETCON_IVB_HPP

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::rtc {

/** One block-granularity IVB entry. */
struct IvbEntry {
    Addr block = 0;
    std::array<Word, kWordsPerBlock> initWords{};
    std::array<Word, kWordsPerBlock> curWords{};
    std::uint8_t readMask = 0;
    std::uint8_t eqMask = 0;
    /**
     * Words whose input value was fixed mid-transaction by a local
     * eager (non-symbolic) store: the pre-store value was validated
     * against the initial value at store time and recorded into
     * curWords; the pre-commit walk must not re-read these words from
     * memory (it would observe the transaction's own store).
     */
    std::uint8_t frozenMask = 0;
    bool written = false;
    bool lost = false;
};

/** Fixed-capacity initial value buffer (16 entries in Table 1). */
class InitialValueBuffer
{
  public:
    explicit InitialValueBuffer(std::size_t capacity = 16)
        : _capacity(capacity)
    {}

    /** Find the entry for @p block, or nullptr. O(1) via the index
     *  (the scan this replaces was hot once unlimitedState grew the
     *  buffer past its Table 1 size — see bench/micro_structures). */
    IvbEntry *
    find(Addr block)
    {
        auto it = _index.find(block);
        return it == _index.end() ? nullptr : &_entries[it->second];
    }

    const IvbEntry *
    find(Addr block) const
    {
        auto it = _index.find(block);
        return it == _index.end() ? nullptr : &_entries[it->second];
    }

    /** True when no further blocks can be tracked. */
    bool full() const { return _entries.size() >= _capacity; }

    /**
     * Allocate an entry for @p block with the given initial words.
     * @return nullptr when the buffer is full (caller falls back to
     * the eager path for this block).
     */
    IvbEntry *
    allocate(Addr block, const std::array<Word, kWordsPerBlock> &words)
    {
        sim_assert(!find(block), "IVB double allocation");
        if (full())
            return nullptr;
        IvbEntry e;
        e.block = block;
        e.initWords = words;
        e.curWords = words;
        _index.emplace(block, _entries.size());
        _entries.push_back(e);
        return &_entries.back();
    }

    /** Entries in insertion order (the pre-commit walk order). */
    std::vector<IvbEntry> &entries() { return _entries; }
    const std::vector<IvbEntry> &entries() const { return _entries; }

    std::size_t size() const { return _entries.size(); }
    std::size_t capacity() const { return _capacity; }

    /** Number of entries marked lost (Table 3 "blocks lost"). */
    std::size_t
    lostCount() const
    {
        std::size_t n = 0;
        for (const auto &e : _entries)
            n += e.lost;
        return n;
    }

    void
    clear()
    {
        _entries.clear();
        _index.clear();
    }

  private:
    std::size_t _capacity;
    std::vector<IvbEntry> _entries;
    /// block -> position in _entries (entries are never erased
    /// individually, so positions are stable until clear()).
    std::unordered_map<Addr, std::size_t> _index;
};

} // namespace retcon::rtc

#endif // RETCON_RETCON_IVB_HPP
