/**
 * @file
 * Fleet: N clusters joined by a modeled interconnect.
 *
 * A fleet is simulated as ONE shared substrate — one sharded event
 * queue, one memory system, one TM machine — whose cores, event-queue
 * shards, directory banks, and heap regions are partitioned
 * cluster-contiguously (net::FleetTopology). "Independent clusters"
 * means no structural resource crosses a cluster boundary: cores only
 * map onto their own cluster's shard slice, work stealing is scoped to
 * that slice, and every address homes on its owner cluster's bank
 * slice. All cross-cluster interaction — a coherence miss to a remote
 * cluster's bank, a commit token for a remote bank (the two-level
 * commit protocol) — is charged to the interconnect
 * (net/interconnect.hpp).
 *
 * The single substrate is what keeps fleet runs deterministic and the
 * provenance stream globally ordered: TMMachine's audit sequence is
 * already fleet-global, so trace::ShardMux merges every cluster's
 * shards into one stream the ReenactmentValidator can replay across
 * cluster boundaries — a forwarding chain that spans clusters reenacts
 * exactly like a local one.
 *
 * With clusters == 1 no interconnect is built (null wire) and the
 * per-cluster configuration passes through untouched, so a 1-cluster
 * fleet is bit-identical to a plain Cluster.
 */

#ifndef RETCON_EXEC_FLEET_HPP
#define RETCON_EXEC_FLEET_HPP

#include <memory>

#include "exec/cluster.hpp"
#include "net/interconnect.hpp"

namespace retcon::exec {

/** Per-cluster roll-up for fleet reporting (api::RunResult). */
struct ClusterSummary {
    std::uint64_t txns = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    Cycle finishCycle = 0;
    std::uint64_t tokenWaits = 0;   ///< Commit-token NACKs, any bank.
    std::uint64_t xcTokenWaits = 0; ///< Of those: remote-bank blames.
};

/** N identically-sized clusters behind one wire. */
class Fleet
{
  public:
    /**
     * @p per_cluster sizes ONE cluster (numThreads/numShards/memBanks
     * are per-cluster here); the fleet multiplies them by @p clusters
     * and partitions the shared substrate. Fleet-wide totals must
     * respect the machine limits (64 cores, 64 banks).
     */
    Fleet(const ClusterConfig &per_cluster, unsigned clusters,
          const net::NetConfig &net_cfg = {});

    unsigned clusters() const { return _clusters; }
    const net::FleetTopology &topology() const { return _topo; }

    /** The shared substrate (its config holds fleet-wide totals). */
    Cluster &cluster() { return *_cluster; }
    const Cluster &cluster() const { return *_cluster; }

    /** The wire; null when clusters == 1. */
    net::Interconnect *net() { return _net.get(); }
    const net::Interconnect *net() const { return _net.get(); }

    /** Core-id range [first, first + count) of cluster @p c. */
    CoreId firstCore(unsigned c) const
    {
        return static_cast<CoreId>(c * _topo.threadsPerCluster);
    }
    unsigned threadsPerCluster() const { return _topo.threadsPerCluster; }

    /** Roll up cluster @p c's cores (stats + token waits). */
    ClusterSummary summarize(unsigned c);

  private:
    unsigned _clusters;
    net::FleetTopology _topo;
    std::unique_ptr<net::Interconnect> _net;
    std::unique_ptr<Cluster> _cluster;
};

} // namespace retcon::exec

#endif // RETCON_EXEC_FLEET_HPP
