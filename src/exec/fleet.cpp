#include "exec/fleet.hpp"

#include "sim/logging.hpp"

namespace retcon::exec {

namespace {

ClusterConfig
fleetConfig(const ClusterConfig &per, unsigned clusters,
            const net::FleetTopology &topo, net::Interconnect *net)
{
    if (clusters == 1)
        return per; // Untouched: bit-identical to a plain Cluster.
    ClusterConfig cfg = per;
    cfg.numThreads = per.numThreads * clusters;
    cfg.numShards = per.numShards * clusters;
    cfg.memBanks = per.memBanks * clusters;
    cfg.fleet = topo;
    cfg.net = net;
    return cfg;
}

} // namespace

Fleet::Fleet(const ClusterConfig &per_cluster, unsigned clusters,
             const net::NetConfig &net_cfg)
    : _clusters(clusters)
{
    sim_assert(clusters >= 1, "fleet needs at least one cluster");
    sim_assert(per_cluster.numThreads * clusters <= 64,
               "fleet-wide thread count exceeds the 64-core sharer "
               "mask");
    sim_assert(per_cluster.memBanks * clusters <= 64,
               "fleet-wide bank count exceeds the 64-bank token mask");
    if (clusters > 1) {
        _topo.clusters = clusters;
        _topo.threadsPerCluster = per_cluster.numThreads;
        _topo.banksPerCluster = per_cluster.memBanks;
        _net = std::make_unique<net::Interconnect>(clusters, net_cfg);
    }
    _cluster = std::make_unique<Cluster>(
        fleetConfig(per_cluster, clusters, _topo, _net.get()));
}

ClusterSummary
Fleet::summarize(unsigned c)
{
    ClusterSummary s;
    Cluster &cl = *_cluster;
    htm::TMMachine &tm = cl.machine();
    unsigned per = _topo.fleet() ? _topo.threadsPerCluster
                                 : cl.numThreads();
    CoreId first = static_cast<CoreId>(c * per);
    for (CoreId i = first; i < first + per; ++i) {
        const Core &core = cl.core(i);
        s.txns += core.stats().txns;
        s.commits += core.stats().commits;
        s.aborts += core.stats().aborts;
        s.finishCycle = std::max(s.finishCycle,
                                 core.stats().finishCycle);
        s.tokenWaits += tm.tokenWaits(i);
        s.xcTokenWaits += tm.xcTokenWaits(i);
    }
    return s;
}

} // namespace retcon::exec
