#include "exec/cluster.hpp"

#include "sim/logging.hpp"

namespace retcon::exec {

namespace {

ShardedQueueConfig
queueConfig(const ClusterConfig &cfg)
{
    ShardedQueueConfig q;
    q.nshards = cfg.numShards;
    q.dispatchBandwidth = cfg.shardBandwidth;
    q.workStealing = cfg.shardWorkStealing;
    // A fleet scopes work stealing to each cluster's shard slice:
    // clusters share no dispatch capacity, only the wire.
    if (cfg.fleet.fleet())
        q.stealGroup = cfg.numShards / cfg.fleet.clusters;
    return q;
}

} // namespace

Cluster::Cluster(const ClusterConfig &cfg)
    : _cfg(cfg), _eq(queueConfig(cfg))
{
    sim_assert(cfg.numThreads >= 1 && cfg.numThreads <= 64,
               "thread count out of range");
    sim_assert(cfg.numShards >= 1 && cfg.numShards <= cfg.numThreads,
               "shard count out of range (1..numThreads)");
    sim_assert(!cfg.fleet.fleet() ||
                   (cfg.numShards % cfg.fleet.clusters == 0 &&
                    cfg.net != nullptr),
               "a fleet needs per-cluster shard slices and a wire");
    _ms = std::make_unique<mem::MemorySystem>(cfg.numThreads, cfg.timing,
                                              cfg.caches, cfg.memBanks,
                                              cfg.fleet);
    _ms->setClock(&_eq); // Bank occupancy observes the global clock.
    if (cfg.net)
        _ms->setNet(cfg.net);
    htm::TMConfig tm = cfg.tm;
    if (tm.backoff.seed == 0) {
        // Inherit the cluster seed (plus a policy-private stream tag)
        // so RunConfig::seed alone reproduces the jitter streams.
        tm.backoff.seed = cfg.seed ^ 0xb0ff0ff5eedull;
    }
    _tm = std::make_unique<htm::TMMachine>(_eq, *_ms, tm);
    if (cfg.net)
        _tm->setNet(cfg.net);
    _barrier = std::make_unique<Barrier>(cfg.numThreads);
    for (CoreId i = 0; i < cfg.numThreads; ++i)
        _cores.push_back(std::make_unique<Core>(
            i, ShardRef(_eq, shardOf(i)), *_tm, *_barrier,
            cfg.numThreads, cfg.seed));
    _tm->setRemoteAbortHandler([this](CoreId victim, htm::AbortCause c) {
        _cores[victim]->onRemoteAbort(c);
    });
    if (cfg.sched.enabled) {
        _sched = std::make_unique<ContentionScheduler>(cfg.numShards,
                                                       cfg.sched);
        _tm->setContentionHook([this](CoreId core, Addr key) {
            _sched->observe(shardOf(core), key, _eq.now());
        });
        for (auto &core : _cores)
            core->setDeferHook([this](CoreId c) {
                Addr blame = _tm->abortBlame(c);
                // Predictor-aware skip: a conflict on a repairable-
                // class (symbolically tracked) block is absorbed by
                // pre-commit repair on retry — no de-phasing needed.
                if (_cfg.sched.skipRepairableBlame && blame != 0 &&
                    blame < htm::kTokenBlameBase &&
                    _tm->wouldTrack(blame))
                    return _sched->noteRepairableSkip(shardOf(c));
                return _sched->deferDelay(shardOf(c), blame,
                                          _eq.now());
            });
    }
    if (cfg.traceSink)
        _tm->setTraceSink(cfg.traceSink);
    if (cfg.hostThreads >= 2 && cfg.numShards >= 2) {
        // A host-side execution choice only: the engine preserves the
        // global (cycle, seq) dispatch order, so simulated results are
        // bit-identical to the sequential run (docs/parallel-engine.md).
        _engine = std::make_unique<ParallelEngine>(
            _eq, std::min(cfg.hostThreads, cfg.numShards));
        _eq.setEngine(_engine.get());
    }
}

void
Cluster::setTraceSink(trace::TraceSink *sink)
{
    _tm->setTraceSink(sink);
}

void
Cluster::start(const Core::ProgramFactory &factory)
{
    for (auto &core : _cores)
        core->start(factory);
}

Cycle
Cluster::run()
{
    Cycle end = _eq.run(_cfg.maxCycles);
    for (auto &core : _cores) {
        if (!core->finished()) {
            warn("core %u did not finish within %llu cycles "
                 "(livelock or watchdog); results are partial",
                 core->id(),
                 static_cast<unsigned long long>(_cfg.maxCycles));
            break;
        }
    }
    return end;
}

TimeBreakdown
Cluster::aggregateBreakdown() const
{
    TimeBreakdown total;
    for (const auto &core : _cores)
        total.merge(core->breakdown());
    return total;
}

CoreStats
Cluster::aggregateStats() const
{
    CoreStats total;
    for (const auto &core : _cores) {
        total.txns += core->stats().txns;
        total.commits += core->stats().commits;
        total.aborts += core->stats().aborts;
        total.finishCycle =
            std::max(total.finishCycle, core->stats().finishCycle);
    }
    return total;
}

CoreStats
Cluster::shardCoreStats(unsigned shard) const
{
    CoreStats total;
    for (const auto &core : _cores) {
        if (core->shard() != shard)
            continue;
        total.txns += core->stats().txns;
        total.commits += core->stats().commits;
        total.aborts += core->stats().aborts;
        total.finishCycle =
            std::max(total.finishCycle, core->stats().finishCycle);
    }
    return total;
}

} // namespace retcon::exec
