/**
 * @file
 * Minimal lazy coroutine task for simulated-thread code.
 *
 * Transaction bodies and their helper subroutines are Task<T>
 * coroutines. A Task starts suspended; awaiting it starts the child and
 * resumes the parent via symmetric transfer when the child finishes.
 * The whole chain suspends when the innermost frame awaits a memory
 * operation, returning control to the simulation loop.
 *
 * Abort-by-destruction: destroying the outermost Task of a transaction
 * attempt destroys every nested frame (each parent frame owns its
 * children's Task objects), which is how the execution layer discards
 * an aborted attempt without unwinding code paths inside workloads.
 */

#ifndef RETCON_EXEC_TASK_HPP
#define RETCON_EXEC_TASK_HPP

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/logging.hpp"

namespace retcon::exec {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
        bool await_ready() noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        exception = std::current_exception();
    }
};

} // namespace detail

/** Lazy, single-awaiter coroutine task. */
template <typename T>
class Task
{
  public:
    struct promise_type : detail::TaskPromiseBase<T> {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void
        return_value(T v)
        {
            value = std::move(v);
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : _h(h) {}

    Task(Task &&o) noexcept : _h(std::exchange(o._h, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** Start the coroutine with no continuation (driven externally). */
    void
    start()
    {
        sim_assert(_h && !_h.done(), "starting an invalid task");
        _h.resume();
    }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return _h && _h.done(); }

    /** Retrieve the result after completion (rethrows exceptions). */
    T
    result()
    {
        sim_assert(done(), "task result before completion");
        if (_h.promise().exception)
            std::rethrow_exception(_h.promise().exception);
        return std::move(*_h.promise().value);
    }

    // Awaiter protocol: awaiting a task starts it.
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        _h.promise().continuation = cont;
        return _h;
    }

    T
    await_resume()
    {
        if (_h.promise().exception)
            std::rethrow_exception(_h.promise().exception);
        return std::move(*_h.promise().value);
    }

  private:
    std::coroutine_handle<promise_type> _h;

    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = {};
        }
    }
};

/** void specialization. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::TaskPromiseBase<void> {
        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_void() {}
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : _h(h) {}
    Task(Task &&o) noexcept : _h(std::exchange(o._h, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    void
    start()
    {
        sim_assert(_h && !_h.done(), "starting an invalid task");
        _h.resume();
    }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return _h && _h.done(); }

    void
    result()
    {
        sim_assert(done(), "task result before completion");
        if (_h.promise().exception)
            std::rethrow_exception(_h.promise().exception);
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        _h.promise().continuation = cont;
        return _h;
    }

    void
    await_resume()
    {
        if (_h.promise().exception)
            std::rethrow_exception(_h.promise().exception);
    }

  private:
    std::coroutine_handle<promise_type> _h;

    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = {};
        }
    }
};

} // namespace retcon::exec

#endif // RETCON_EXEC_TASK_HPP
