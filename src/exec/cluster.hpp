/**
 * @file
 * Cluster: the assembled simulated machine.
 *
 * Owns the event queue, the coherent memory hierarchy, the TM machine,
 * the barrier, and one Core per simulated thread, wired together per
 * Table 1. Workloads install one thread program per core and run() the
 * event loop to completion.
 */

#ifndef RETCON_EXEC_CLUSTER_HPP
#define RETCON_EXEC_CLUSTER_HPP

#include <memory>
#include <vector>

#include "exec/core.hpp"
#include "htm/machine.hpp"
#include "mem/memory_system.hpp"
#include "sim/event_queue.hpp"

namespace retcon::exec {

/** Full-machine configuration. */
struct ClusterConfig {
    unsigned numThreads = 32;
    std::uint64_t seed = 1;
    htm::TMConfig tm{};
    mem::MemTimingConfig timing{};
    mem::CacheConfig caches{};
    Cycle maxCycles = 2'000'000'000ull; ///< Watchdog for runaway runs.

    /**
     * Optional provenance sink (non-owning; must outlive the cluster).
     * Null disables tracing entirely — the zero-cost default.
     */
    trace::TraceSink *traceSink = nullptr;
};

/** The assembled simulated machine. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    /** Install and start thread programs (one factory for all cores). */
    void start(const Core::ProgramFactory &factory);

    /** Run the event loop until all cores finish. @return makespan. */
    Cycle run();

    EventQueue &eventQueue() { return _eq; }
    mem::MemorySystem &memorySystem() { return *_ms; }
    mem::SparseMemory &memory() { return _ms->memory(); }
    htm::TMMachine &machine() { return *_tm; }
    Core &core(CoreId i) { return *_cores[i]; }
    unsigned numThreads() const { return _cfg.numThreads; }
    const ClusterConfig &config() const { return _cfg; }

    /** Aggregate time breakdown over all cores. */
    TimeBreakdown aggregateBreakdown() const;

    /** Sum of per-core stats. */
    CoreStats aggregateStats() const;

    /** Attach/detach a provenance sink after construction. */
    void setTraceSink(trace::TraceSink *sink);

  private:
    ClusterConfig _cfg;
    EventQueue _eq;
    std::unique_ptr<mem::MemorySystem> _ms;
    std::unique_ptr<htm::TMMachine> _tm;
    std::unique_ptr<Barrier> _barrier;
    std::vector<std::unique_ptr<Core>> _cores;
};

} // namespace retcon::exec

#endif // RETCON_EXEC_CLUSTER_HPP
