/**
 * @file
 * Cluster: the assembled simulated machine.
 *
 * Owns the sharded event queue, the coherent memory hierarchy, the TM
 * machine, the barrier, and one Core per simulated thread, wired
 * together per Table 1. Cores map round-robin onto the event-queue
 * shards (core i -> shard i % numShards); each shard is its own clock
 * domain with a work-stealing fallback, while commit/repair ordering
 * stays globally correct (see sim/sharded_queue.hpp and
 * docs/architecture.md). Workloads install one thread program per
 * core and run() the event loop to completion.
 */

#ifndef RETCON_EXEC_CLUSTER_HPP
#define RETCON_EXEC_CLUSTER_HPP

#include <memory>
#include <vector>

#include "exec/core.hpp"
#include "exec/scheduler.hpp"
#include "htm/machine.hpp"
#include "mem/memory_system.hpp"
#include "net/interconnect.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/sharded_queue.hpp"

namespace retcon::exec {

/** Full-machine configuration. */
struct ClusterConfig {
    unsigned numThreads = 32;
    std::uint64_t seed = 1;
    htm::TMConfig tm{};
    mem::MemTimingConfig timing{};
    mem::CacheConfig caches{};
    Cycle maxCycles = 2'000'000'000ull; ///< Watchdog for runaway runs.

    /**
     * Event-queue shards (1..numThreads). With shardBandwidth 0 the
     * shard count is performance-transparent: simulated results are
     * bit-identical for any value (the queues merge on a global
     * schedule order).
     */
    unsigned numShards = 1;

    /**
     * Modeled per-shard dispatch bandwidth (events/cycle, 0 =
     * unlimited): the sequencer serialization a single-queue cluster
     * suffers and sharding removes. Over-quota events slip a cycle
     * unless an idle shard steals them.
     */
    unsigned shardBandwidth = 0;

    /** Allow idle shards to drain over-quota ones (work stealing). */
    bool shardWorkStealing = true;

    /**
     * Host threads driving the event queue (0 or 1 = the sequential
     * engine). With >= 2 (and >= 2 shards) the cluster runs under the
     * conservative ParallelEngine — min(hostThreads, numShards) real
     * threads, each owning a contiguous shard group. Purely a host-
     * side execution choice: simulated results are bit-identical for
     * any value (sim/parallel_engine.hpp, docs/parallel-engine.md).
     */
    unsigned hostThreads = 0;

    /**
     * Directory banks in the memory system (1..64). Like the shard
     * count, the bank count is performance-transparent unless bank
     * contention is modeled (timing.bankOccupancy for directory
     * occupancy, tm.commitTokenArbitration for commit tokens):
     * simulated results are bit-identical for any value otherwise.
     */
    unsigned memBanks = 1;

    /**
     * Contention-aware re-dispatch scheduling (exec/scheduler.hpp):
     * per-shard hot-block tables fed by the machine's abort and
     * commit-token contention events defer the restart of tasks whose
     * last abort blamed a hot block, de-phasing conflicting requests.
     * Off (the default) reproduces immediate re-dispatch exactly.
     */
    SchedulerConfig sched{};

    /**
     * Optional provenance sink (non-owning; must outlive the cluster).
     * Null disables tracing entirely — the zero-cost default.
     */
    trace::TraceSink *traceSink = nullptr;

    /**
     * Fleet partition of this machine (exec/fleet.hpp fills both in;
     * hand-built clusters leave them defaulted). With a fleet
     * topology, numThreads/numShards/memBanks are fleet-wide totals
     * partitioned cluster-contiguously; cores map onto their own
     * cluster's shard slice only, the directory homes each address on
     * its owner cluster's bank slice, and every cross-cluster
     * interaction is charged to @p net. A default topology (1
     * cluster) with a null net is bit-identical to the pre-fleet
     * machine.
     */
    net::FleetTopology fleet{};

    /** Fleet interconnect (non-owning; null = single cluster). */
    net::Interconnect *net = nullptr;
};

/** The assembled simulated machine. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    /** Install and start thread programs (one factory for all cores). */
    void start(const Core::ProgramFactory &factory);

    /** Run the event loop until all cores finish. @return makespan. */
    Cycle run();

    ShardedEventQueue &eventQueue() { return _eq; }
    mem::MemorySystem &memorySystem() { return *_ms; }
    mem::SparseMemory &memory() { return _ms->memory(); }
    htm::TMMachine &machine() { return *_tm; }
    Core &core(CoreId i) { return *_cores[i]; }
    unsigned numThreads() const { return _cfg.numThreads; }
    unsigned numShards() const { return _cfg.numShards; }
    unsigned numBanks() const { return _cfg.memBanks; }
    const ClusterConfig &config() const { return _cfg; }

    /** Home event-queue shard of core @p i: round-robin placement,
     *  within the core's own cluster's shard slice in a fleet. */
    unsigned
    shardOf(CoreId i) const
    {
        if (!_cfg.fleet.fleet())
            return i % _cfg.numShards;
        unsigned per = _cfg.numShards / _cfg.fleet.clusters;
        return _cfg.fleet.clusterOfCore(i) * per +
               (i % _cfg.fleet.threadsPerCluster) % per;
    }

    /** Aggregate time breakdown over all cores. */
    TimeBreakdown aggregateBreakdown() const;

    /** Sum of per-core stats. */
    CoreStats aggregateStats() const;

    /** Sum of core stats over the cores homed on @p shard. */
    CoreStats shardCoreStats(unsigned shard) const;

    /** Queue-level load/steal counters for @p shard. */
    const ShardedEventQueue::ShardStats &
    shardQueueStats(unsigned shard) const
    {
        return _eq.shardStats(shard);
    }

    /** Contention-scheduler counters for @p shard (zeros when the
     *  scheduler is disabled). */
    ContentionScheduler::Stats schedStats(unsigned shard) const
    {
        return _sched ? _sched->stats(shard)
                      : ContentionScheduler::Stats{};
    }

    /** Attach/detach a provenance sink after construction. */
    void setTraceSink(trace::TraceSink *sink);

    /** Host-parallel engine driving run(), or null (sequential). */
    const ParallelEngine *engine() const { return _engine.get(); }

  private:
    ClusterConfig _cfg;
    ShardedEventQueue _eq;
    std::unique_ptr<ParallelEngine> _engine;
    std::unique_ptr<mem::MemorySystem> _ms;
    std::unique_ptr<htm::TMMachine> _tm;
    std::unique_ptr<Barrier> _barrier;
    std::unique_ptr<ContentionScheduler> _sched;
    std::vector<std::unique_ptr<Core>> _cores;
};

} // namespace retcon::exec

#endif // RETCON_EXEC_CLUSTER_HPP
