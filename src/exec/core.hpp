/**
 * @file
 * Simulated in-order core driving workload coroutines (Table 1: 32
 * in-order x86 cores, 1 IPC).
 *
 * Each core runs one root "thread program" coroutine. Transactions are
 * executed as separate attempt coroutines produced by a body factory;
 * an abort destroys the attempt (all simulated state lives in simulated
 * memory, rolled back by the machine's undo log) and the factory is
 * re-invoked — the paper's zero-cycle rollback + immediate restart.
 *
 * Every cycle of a core's lifetime is attributed to one of the Figure 4
 * buckets: busy (useful work), conflict (stalls from contention
 * management plus all work in aborted attempts), barrier, or other
 * (begin/commit overhead including the RETCON pre-commit repair).
 */

#ifndef RETCON_EXEC_CORE_HPP
#define RETCON_EXEC_CORE_HPP

#include <coroutine>
#include <functional>
#include <optional>
#include <vector>

#include "exec/task.hpp"
#include "exec/tx_value.hpp"
#include "htm/machine.hpp"
#include "retcon/interval.hpp"
#include "sim/random.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/types.hpp"

namespace retcon::exec {

class Core;
class Tx;
class WorkerCtx;

/** Figure 4 / Figure 10 time buckets. */
struct TimeBreakdown {
    double busy = 0;
    double conflict = 0;
    double barrier = 0;
    double other = 0;

    double
    total() const
    {
        return busy + conflict + barrier + other;
    }

    void
    merge(const TimeBreakdown &o)
    {
        busy += o.busy;
        conflict += o.conflict;
        barrier += o.barrier;
        other += o.other;
    }
};

/** All-thread rendezvous. */
class Barrier
{
  public:
    explicit Barrier(unsigned parties) : _parties(parties) {}

    /** Called by Core; releases everyone when the last thread arrives. */
    void arrive(Core *core, std::coroutine_handle<> h);

    unsigned parties() const { return _parties; }

  private:
    unsigned _parties;
    unsigned _arrived = 0;
    std::vector<std::pair<Core *, std::coroutine_handle<>>> _waiters;
};

/** Awaitable for a (possibly transactional) memory operation. */
struct MemOpAwait {
    Core *core;
    Addr addr;
    unsigned size;
    bool isStore;
    bool txnal;
    TxValue storeValue;
    htm::MemOpOutcome out;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    TxValue
    await_resume() const
    {
        return TxValue(out.value, out.sym);
    }
};

/** Awaitable for pure compute delay. */
struct WorkAwait {
    Core *core;
    Cycle cycles;
    bool txnal;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
};

/** Awaitable for barrier arrival. */
struct BarrierAwait {
    Core *core;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
};

/** Awaitable executing one whole transaction (with retry). */
struct TxnAwait {
    Core *core;
    std::function<Task<TxValue>(Tx &)> factory;
    TxValue out;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    TxValue await_resume() const { return out; }
};

/**
 * Transactional context handed to body coroutines.
 *
 * Memory ops are awaitable; ALU helpers are synchronous but charge one
 * cycle each (1 IPC), drained before the next awaited operation.
 */
class Tx
{
  public:
    explicit Tx(Core *core) : _core(core) {}

    // ---- Memory -----------------------------------------------------
    MemOpAwait load(Addr addr, unsigned size = 8);
    MemOpAwait store(Addr addr, TxValue value, unsigned size = 8);
    WorkAwait work(Cycle cycles);

    // ---- Symbolic-aware ALU (each charges 1 cycle) -------------------
    /** value + k, symbolically tracked. */
    TxValue add(TxValue v, std::int64_t k);
    /** value - k, symbolically tracked. */
    TxValue
    sub(TxValue v, std::int64_t k)
    {
        return add(v, -k);
    }
    /** a + b; at most one operand may stay symbolic (§4.1). */
    TxValue addv(TxValue a, TxValue b);
    /** Untrackable binary op (multiply etc.): pins symbolic inputs. */
    TxValue complexOp(TxValue a, TxValue b,
                      std::function<Word(Word, Word)> fn);
    /** Floating-point op: never tracked (models kmeans updates). */
    TxValue fop(TxValue a, TxValue b, std::function<double(double, double)> fn);

    // ---- Control flow ------------------------------------------------
    /** Compare against a constant, recording a symbolic constraint. */
    bool cmp(const TxValue &v, rtc::CmpOp op, std::int64_t k);
    /** Compare two values (pins the right operand when symbolic). */
    bool cmpv(const TxValue &a, rtc::CmpOp op, const TxValue &b);

    /** Obtain the concrete value for addressing / untracked use;
     *  records an equality constraint on symbolic inputs. */
    Word reify(const TxValue &v);

    /** Declare a value held live to commit (Table 3 register stats). */
    void
    holdLive(const TxValue &v)
    {
        if (v.symbolic())
            ++_pinnedSymRegs;
    }

    CoreId coreId() const;

    /** Pending uncharged ALU cycles (drained at the next await). */
    Cycle pendingCompute() const { return _pending; }

    void
    reset()
    {
        _pending = 0;
        _pinnedSymRegs = 0;
    }

  private:
    friend class Core;
    Core *_core;
    Cycle _pending = 0;
    std::uint32_t _pinnedSymRegs = 0;

    void charge(Cycle n = 1) { _pending += n; }
};

/** Non-transactional context for the root thread program. */
class WorkerCtx
{
  public:
    WorkerCtx(Core *core, CoreId tid, unsigned nthreads,
              std::uint64_t seed)
        : _core(core), _tid(tid), _nthreads(nthreads),
          _rng(Xoshiro::forThread(seed, tid))
    {}

    MemOpAwait load(Addr addr, unsigned size = 8);
    MemOpAwait store(Addr addr, Word value, unsigned size = 8);
    WorkAwait work(Cycle cycles);
    BarrierAwait barrier();
    TxnAwait txn(std::function<Task<TxValue>(Tx &)> factory);

    /**
     * Drop a workload-level marker into the provenance stream (phase
     * boundaries, operation ids). No-op when tracing is disabled;
     * costs no simulated time either way.
     */
    void annotate(Word mark_id);

    /**
     * The current simulated cycle (the global clock — identical on
     * every shard and host-thread configuration by the determinism
     * contract). Lets open-loop workloads pace themselves against
     * modeled arrival processes (src/scenario/).
     */
    Cycle now() const;

    CoreId tid() const { return _tid; }
    unsigned nthreads() const { return _nthreads; }
    Xoshiro &rng() { return _rng; }

  private:
    Core *_core;
    CoreId _tid;
    unsigned _nthreads;
    Xoshiro _rng;
};

/** Per-core execution statistics. */
struct CoreStats {
    std::uint64_t txns = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    Cycle finishCycle = 0;
};

/** The simulated core. */
class Core
{
  public:
    using BodyFactory = std::function<Task<TxValue>(Tx &)>;
    using ProgramFactory = std::function<Task<void>(WorkerCtx &)>;

    /**
     * Re-dispatch deferral hook (contention-aware scheduling): called
     * with this core's id after an abort, returns extra cycles to
     * wait before restarting the transaction — nonzero when the
     * abort's blamed block is currently hot (exec::Cluster wires this
     * to its per-shard hot-block tables; see exec/scheduler.hpp).
     */
    using DeferFn = std::function<Cycle(CoreId)>;

    Core(CoreId id, ShardRef eq, htm::TMMachine &tm, Barrier &barrier,
         unsigned nthreads, std::uint64_t seed);

    /** Install and start the thread program at the current cycle. */
    void start(ProgramFactory factory);

    /** Install the re-dispatch deferral hook (null disables). */
    void setDeferHook(DeferFn fn) { _deferHook = std::move(fn); }

    bool finished() const { return _finished; }
    CoreId id() const { return _id; }
    /** Home event-queue shard this core schedules onto. */
    unsigned shard() const { return _eq.shard(); }
    /** Current global simulated cycle (see WorkerCtx::now). */
    Cycle now() const { return _eq.now(); }
    const TimeBreakdown &breakdown() const { return _breakdown; }
    const CoreStats &stats() const { return _stats; }
    WorkerCtx &ctx() { return *_ctx; }
    htm::TMMachine &machine() { return _tm; }

    /** Remote-abort notification from the machine. */
    void onRemoteAbort(htm::AbortCause cause);

    // ---- Called by awaitables ---------------------------------------
    void issueMemOp(MemOpAwait *op, std::coroutine_handle<> h);
    void issueWork(Cycle cycles, bool txnal, std::coroutine_handle<> h);
    void enterBarrier(std::coroutine_handle<> h);
    void startTxn(TxnAwait *awaitable, std::coroutine_handle<> h);

    /** Resume a barrier-released coroutine (called by Barrier). */
    void resumeFromBarrier(std::coroutine_handle<> h, Cycle delay);

    Tx &tx() { return _tx; }
    bool inTxn() const { return _inTxn; }

  private:
    /** Internal accounting categories, resolved at commit/abort. */
    enum class Cat { Busy, Work, Stall, Commit, Barrier };

    CoreId _id;
    ShardRef _eq; ///< Home-shard scheduling handle (global clock).
    htm::TMMachine &_tm;
    Barrier &_barrier;
    Tx _tx;
    std::optional<WorkerCtx> _ctx;

    ProgramFactory _programFactory;
    DeferFn _deferHook;
    std::optional<Task<void>> _program;
    std::optional<Task<TxValue>> _body;
    TxnAwait *_txnAwait = nullptr;
    std::coroutine_handle<> _programCont;
    std::coroutine_handle<> _resumePoint;
    MemOpAwait *_pendingOp = nullptr;

    bool _inTxn = false;
    bool _finished = false;
    EventHandle _pendingEvent;
    std::uint64_t _attemptOps = 0;

    // Accounting.
    Cycle _lastCycle = 0;
    TimeBreakdown _breakdown;
    double _attemptWork = 0;
    double _attemptStall = 0;
    double _attemptCommit = 0;

    CoreStats _stats;

    void schedule(Cycle delay, Cat cat, std::function<void()> fn);
    void accountTo(Cat cat);
    void resumeCoroutine(std::coroutine_handle<> h);
    void postResume();

    void beginTxnAttempt(bool retry);
    void launchBody();
    void tryMemOp(bool is_retry);
    void commitLoop(bool is_retry);
    void deliverResult();
    void cleanupAttempt();
    void finishProgram();
};

} // namespace retcon::exec

#endif // RETCON_EXEC_CORE_HPP
