/**
 * @file
 * Contention-aware re-dispatch scheduling for the sharded cluster.
 *
 * The execution layer restarts an aborted transaction immediately,
 * which re-collides the same conflicting requests in lockstep: on the
 * Zipfian service mix ~85% of core cycles at 32 threads is genuine
 * transaction conflict time (ROADMAP, "the conflict-time wall"). The
 * machine-level NACK backoff (htm::BackoffConfig) spaces retries of
 * one transaction; this scheduler additionally de-phases *different*
 * requests that keep fighting over the same data.
 *
 * Mechanism: one small hot-block table per event-queue shard. The
 * TMMachine's contention hook feeds it every contention loss — the
 * contested block of a conflict abort, the blamed bank of a commit-
 * token wait/steal (htm::tokenBlameKey). Entries accumulate "heat"
 * and cool by halving every decayInterval cycles. When a core's
 * transaction aborts, the cluster asks the core's home-shard table
 * whether the blamed key is hot; if its heat is at or above the
 * threshold, the restart is deferred by heat * deferBase cycles
 * (capped), so requests queued behind a hot block spread out instead
 * of re-arriving together.
 *
 * The table is deliberately tiny (direct-mapped, `entries` slots per
 * shard): hot blocks are by definition few, and a cold block that
 * aliases a hot slot merely evicts it — the cost is a missed
 * deferral, never a wrong result. Deferral changes timing only; all
 * concurrency control stays in the TMMachine, so every run remains
 * deterministic for a fixed configuration and the reenactment audit
 * holds with the scheduler engaged (tests/unit/test_contention.cpp).
 *
 * Threading contract (single writer per shard): observe(),
 * deferDelay() and noteRepairableSkip() mutate a shard's table and
 * stats with plain, unsynchronized accesses. Callers must guarantee
 * that at most one thread touches a given shard's entry points at a
 * time, with a happens-before edge between calls from different
 * threads. Both engines satisfy this by construction: the hooks fire
 * only from event callbacks, which the sequential engine runs on one
 * thread and the host-parallel engine serializes behind its migrating
 * dispatch token (docs/parallel-engine.md) — note that a core's
 * callback may run on a *stealing* shard's owner thread, so per-shard
 * affinity alone would NOT be a valid relaxation. Debug builds
 * enforce the contract with a per-shard serial-section assertion.
 */

#ifndef RETCON_EXEC_SCHEDULER_HPP
#define RETCON_EXEC_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "htm/types.hpp"
#include "sim/serial_guard.hpp"
#include "sim/types.hpp"

namespace retcon::exec {

/** Contention-scheduler knobs (ClusterConfig::sched). */
struct SchedulerConfig {
    /** Master switch: off reproduces immediate re-dispatch exactly. */
    bool enabled = false;

    /** Hot-table slots per shard (direct-mapped by key hash). */
    unsigned entries = 16;

    /** Heat at which a blamed key counts as hot (defers kick in). */
    std::uint32_t heatThreshold = 2;

    /** Deferral per heat unit above/at the threshold, in cycles. */
    Cycle deferBase = 32;

    /** Upper bound on a single deferral. */
    Cycle deferCap = 512;

    /** Heat halves every this-many cycles (lazy decay on access). */
    Cycle decayInterval = 2048;

    /**
     * Also defer restarts whose abort blamed a commit-token bank
     * (htm::tokenBlameKey) rather than a block. Off by default:
     * token-steal victims are transactions that had *reached their
     * commit point* — delaying their retry delays a commit
     * one-for-one, which measured as a net throughput loss on the
     * service mix (docs/tuning.md). Token events still heat the
     * table either way, so per-bank hotness stays observable in the
     * stats; full-key hashing keeps bank keys from aliasing block
     * entries.
     */
    bool deferTokenBlame = false;

    /**
     * Predictor-aware deferral: skip deferring restarts whose abort
     * blamed a *repairable-class* block — one the RETCON predictor
     * currently selects for symbolic tracking (htm::TMMachine::
     * wouldTrack). A conflict on a tracked block is absorbed by
     * pre-commit repair on retry rather than re-aborting, so the
     * restart does not need de-phasing and deferring it only adds
     * latency. Off by default; the decision is made by the cluster's
     * defer hook (the scheduler itself never sees the predictor), and
     * skipped restarts are counted in Stats::repairableSkips.
     */
    bool skipRepairableBlame = false;
};

/** Per-shard hot-block tables + deferral decisions. */
class ContentionScheduler
{
  public:
    /** Lifetime counters, per shard. */
    struct Stats {
        std::uint64_t observed = 0;    ///< Contention events fed.
        std::uint64_t defers = 0;      ///< Restarts deferred.
        std::uint64_t deferCycles = 0; ///< Total deferral imposed.
        std::uint64_t repairableSkips = 0; ///< Defers waived because
                                           ///< the blame is repairable.
    };

    ContentionScheduler(unsigned nshards, const SchedulerConfig &cfg)
        : _cfg(cfg), _shards(nshards)
    {
        for (Shard &s : _shards)
            s.slots.resize(cfg.entries);
    }

    /** Record a contention loss blaming @p key on @p shard. */
    void
    observe(unsigned shard, Addr key, Cycle now)
    {
        Shard &s = _shards[shard];
        RETCON_SERIAL_SCOPE(s.serial, "ContentionScheduler::observe");
        ++s.stats.observed;
        Slot &slot = s.slots[slotOf(key)];
        if (slot.key != key) {
            // Aliasing eviction: the newcomer starts cold.
            slot.key = key;
            slot.heat = 0;
            slot.lastTouch = now;
        }
        decay(slot, now);
        ++slot.heat;
    }

    /**
     * Deferral for re-dispatching a task on @p shard whose last abort
     * blamed @p key: 0 when the key is cold (or 0), else heat-scaled
     * cycles. Charges the deferral to the shard's stats.
     */
    Cycle
    deferDelay(unsigned shard, Addr key, Cycle now)
    {
        if (key == 0)
            return 0;
        if (key >= htm::kTokenBlameBase && !_cfg.deferTokenBlame)
            return 0;
        Shard &s = _shards[shard];
        RETCON_SERIAL_SCOPE(s.serial,
                            "ContentionScheduler::deferDelay");
        Slot &slot = s.slots[slotOf(key)];
        if (slot.key != key)
            return 0;
        decay(slot, now);
        if (slot.heat < _cfg.heatThreshold)
            return 0;
        Cycle d = _cfg.deferBase * slot.heat;
        d = d > _cfg.deferCap ? _cfg.deferCap : d;
        ++s.stats.defers;
        s.stats.deferCycles += d;
        return d;
    }

    /**
     * Record (and waive) a deferral skipped under skipRepairableBlame:
     * the blamed block is repairable-class, so the restart proceeds
     * immediately. @return 0, the deferral imposed.
     */
    Cycle
    noteRepairableSkip(unsigned shard)
    {
        Shard &s = _shards[shard];
        RETCON_SERIAL_SCOPE(
            s.serial, "ContentionScheduler::noteRepairableSkip");
        ++s.stats.repairableSkips;
        return 0;
    }

    const Stats &stats(unsigned shard) const
    {
        return _shards[shard].stats;
    }

    const SchedulerConfig &config() const { return _cfg; }

  private:
    struct Slot {
        Addr key = 0;
        std::uint32_t heat = 0;
        Cycle lastTouch = 0;
    };
    struct Shard {
        std::vector<Slot> slots;
        Stats stats;
        /// Debug-only single-writer enforcement (file header).
        RETCON_SERIAL_SECTION(serial);
    };

    SchedulerConfig _cfg;
    std::vector<Shard> _shards;

    std::size_t
    slotOf(Addr key) const
    {
        // Fibonacci hash of the full key (not the block index: token
        // blame keys for different banks live inside one block-sized
        // range — htm::tokenBlameKey — and must not all alias to a
        // single slot). The table is per shard, so no cross-shard
        // interference.
        return static_cast<std::size_t>(
                   key * 0x9e3779b97f4a7c15ull >> 40) %
               _cfg.entries;
    }

    /**
     * Bring @p slot's heat current as of @p now, halving once per
     * whole decayInterval elapsed since the slot's epoch. The epoch
     * advances only by the intervals actually applied, so residual
     * sub-interval time is carried — frequent touches cannot starve
     * decay by repeatedly resetting the clock.
     */
    void
    decay(Slot &slot, Cycle now) const
    {
        if (_cfg.decayInterval == 0)
            return;
        if (slot.heat == 0) {
            // Nothing to decay: fast-forward the epoch so a later
            // heat-up does not inherit eons of idle elapsed time.
            slot.lastTouch = now;
            return;
        }
        Cycle halvings = (now - slot.lastTouch) / _cfg.decayInterval;
        if (halvings == 0)
            return;
        slot.heat = halvings >= 32
                        ? 0
                        : slot.heat >> static_cast<unsigned>(halvings);
        slot.lastTouch += halvings * _cfg.decayInterval;
    }
};

} // namespace retcon::exec

#endif // RETCON_EXEC_SCHEDULER_HPP
