#include "exec/core.hpp"

#include "sim/logging.hpp"

namespace retcon::exec {

// ---------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------

void
Barrier::arrive(Core *core, std::coroutine_handle<> h)
{
    ++_arrived;
    _waiters.emplace_back(core, h);
    if (_arrived < _parties)
        return;
    // Last arriver: release everyone one cycle from now.
    auto waiters = std::move(_waiters);
    _waiters.clear();
    _arrived = 0;
    for (auto &[c, wh] : waiters)
        c->resumeFromBarrier(wh, 1);
}

// ---------------------------------------------------------------------
// Awaitables
// ---------------------------------------------------------------------

void
MemOpAwait::await_suspend(std::coroutine_handle<> h)
{
    core->issueMemOp(this, h);
}

void
WorkAwait::await_suspend(std::coroutine_handle<> h)
{
    core->issueWork(cycles, txnal, h);
}

void
BarrierAwait::await_suspend(std::coroutine_handle<> h)
{
    core->enterBarrier(h);
}

void
TxnAwait::await_suspend(std::coroutine_handle<> h)
{
    core->startTxn(this, h);
}

// ---------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------

MemOpAwait
Tx::load(Addr addr, unsigned size)
{
    charge();
    return MemOpAwait{_core, addr, size, false, true, TxValue{}, {}};
}

MemOpAwait
Tx::store(Addr addr, TxValue value, unsigned size)
{
    charge();
    return MemOpAwait{_core, addr, size, true, true, value, {}};
}

WorkAwait
Tx::work(Cycle cycles)
{
    return WorkAwait{_core, cycles, true};
}

TxValue
Tx::add(TxValue v, std::int64_t k)
{
    charge();
    Word c = v.concrete() + static_cast<Word>(k);
    if (v.symbolic()) {
        rtc::SymTag t = *v.sym();
        t.delta += k;
        return TxValue(c, t);
    }
    return TxValue(c);
}

TxValue
Tx::addv(TxValue a, TxValue b)
{
    charge();
    Word c = a.concrete() + b.concrete();
    if (a.symbolic() && b.symbolic()) {
        // At most one symbolic input per operation (§4.1): pin b.
        _core->machine().pinEquality(coreId(), b.sym()->root);
        rtc::SymTag t = *a.sym();
        t.delta += static_cast<std::int64_t>(b.concrete());
        return TxValue(c, t);
    }
    if (a.symbolic()) {
        rtc::SymTag t = *a.sym();
        t.delta += static_cast<std::int64_t>(b.concrete());
        return TxValue(c, t);
    }
    if (b.symbolic()) {
        rtc::SymTag t = *b.sym();
        t.delta += static_cast<std::int64_t>(a.concrete());
        return TxValue(c, t);
    }
    return TxValue(c);
}

TxValue
Tx::complexOp(TxValue a, TxValue b, std::function<Word(Word, Word)> fn)
{
    charge();
    if (a.symbolic())
        _core->machine().pinEquality(coreId(), a.sym()->root);
    if (b.symbolic())
        _core->machine().pinEquality(coreId(), b.sym()->root);
    return TxValue(fn(a.concrete(), b.concrete()));
}

TxValue
Tx::fop(TxValue a, TxValue b, std::function<double(double, double)> fn)
{
    charge();
    if (a.symbolic())
        _core->machine().pinEquality(coreId(), a.sym()->root);
    if (b.symbolic())
        _core->machine().pinEquality(coreId(), b.sym()->root);
    double x, y;
    Word wa = a.concrete(), wb = b.concrete();
    static_assert(sizeof(double) == sizeof(Word));
    __builtin_memcpy(&x, &wa, 8);
    __builtin_memcpy(&y, &wb, 8);
    double r = fn(x, y);
    Word out;
    __builtin_memcpy(&out, &r, 8);
    return TxValue(out);
}

bool
Tx::cmp(const TxValue &v, rtc::CmpOp op, std::int64_t k)
{
    charge();
    bool taken = rtc::evalCmp(v.sconcrete(), op, k);
    if (v.symbolic())
        _core->machine().recordBranchConstraint(coreId(), *v.sym(), op, k,
                                                taken);
    return taken;
}

bool
Tx::cmpv(const TxValue &a, rtc::CmpOp op, const TxValue &b)
{
    if (b.symbolic())
        _core->machine().pinEquality(coreId(), b.sym()->root);
    return cmp(a, op, b.sconcrete());
}

Word
Tx::reify(const TxValue &v)
{
    if (v.symbolic())
        _core->machine().pinEquality(coreId(), v.sym()->root);
    return v.concrete();
}

CoreId
Tx::coreId() const
{
    return _core->id();
}

// ---------------------------------------------------------------------
// WorkerCtx
// ---------------------------------------------------------------------

MemOpAwait
WorkerCtx::load(Addr addr, unsigned size)
{
    return MemOpAwait{_core, addr, size, false, false, TxValue{}, {}};
}

MemOpAwait
WorkerCtx::store(Addr addr, Word value, unsigned size)
{
    return MemOpAwait{_core, addr, size, true, false, TxValue(value), {}};
}

WorkAwait
WorkerCtx::work(Cycle cycles)
{
    return WorkAwait{_core, cycles, false};
}

BarrierAwait
WorkerCtx::barrier()
{
    return BarrierAwait{_core};
}

TxnAwait
WorkerCtx::txn(std::function<Task<TxValue>(Tx &)> factory)
{
    return TxnAwait{_core, std::move(factory), TxValue{}};
}

void
WorkerCtx::annotate(Word mark_id)
{
    _core->machine().userMark(_core->id(), mark_id);
}

Cycle
WorkerCtx::now() const
{
    return _core->now();
}

// ---------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------

Core::Core(CoreId id, ShardRef eq, htm::TMMachine &tm, Barrier &barrier,
           unsigned nthreads, std::uint64_t seed)
    : _id(id), _eq(eq), _tm(tm), _barrier(barrier), _tx(this)
{
    _ctx.emplace(this, id, nthreads, seed);
}

void
Core::accountTo(Cat cat)
{
    double delta = static_cast<double>(_eq.now() - _lastCycle);
    _lastCycle = _eq.now();
    switch (cat) {
      case Cat::Busy:
        _breakdown.busy += delta;
        break;
      case Cat::Work:
        if (_inTxn)
            _attemptWork += delta;
        else
            _breakdown.busy += delta;
        break;
      case Cat::Stall:
        if (_inTxn)
            _attemptStall += delta;
        else
            _breakdown.conflict += delta;
        break;
      case Cat::Commit:
        if (_inTxn)
            _attemptCommit += delta;
        else
            _breakdown.other += delta;
        break;
      case Cat::Barrier:
        _breakdown.barrier += delta;
        break;
    }
}

void
Core::schedule(Cycle delay, Cat cat, std::function<void()> fn)
{
    sim_assert(!_pendingEvent.valid(),
               "core %u double-scheduled an event", _id);
    _pendingEvent =
        _eq.scheduleAfter(delay, [this, cat, fn = std::move(fn)]() {
            _pendingEvent = EventHandle{};
            accountTo(cat);
            fn();
        });
}

void
Core::start(ProgramFactory factory)
{
    // The factory must outlive the program coroutine: a coroutine
    // produced by a capturing lambda references the lambda object's
    // captures, so the callable is kept for the core's lifetime.
    _programFactory = std::move(factory);
    _lastCycle = _eq.now();
    schedule(0, Cat::Busy, [this]() {
        _program.emplace(_programFactory(*_ctx));
        _program->start();
        postResume();
    });
}

void
Core::resumeCoroutine(std::coroutine_handle<> h)
{
    h.resume();
    postResume();
}

void
Core::postResume()
{
    if (_body && _body->done()) {
        // The transaction body finished: run the commit process.
        TxValue ret;
        try {
            ret = _body->result();
        } catch (const std::exception &e) {
            panic("transaction body threw: %s", e.what());
        }
        _txnAwait->out = ret;
        std::uint64_t sym_regs =
            (ret.symbolic() ? 1 : 0) + _tx._pinnedSymRegs;
        _tm.noteSymRegsRepaired(_id, sym_regs);
        commitLoop(false);
        return;
    }
    if (!_inTxn && _program && _program->done()) {
        finishProgram();
    }
}

void
Core::finishProgram()
{
    try {
        _program->result();
    } catch (const std::exception &e) {
        panic("thread program threw: %s", e.what());
    }
    _finished = true;
    _stats.finishCycle = _eq.now();
}

// ---- Transactions ----------------------------------------------------

void
Core::startTxn(TxnAwait *awaitable, std::coroutine_handle<> h)
{
    sim_assert(!_inTxn, "nested transactions are not supported");
    _txnAwait = awaitable;
    _programCont = h;
    _inTxn = true;
    _attemptWork = _attemptStall = _attemptCommit = 0;
    ++_stats.txns;
    beginTxnAttempt(false);
}

void
Core::beginTxnAttempt(bool retry)
{
    htm::MemOpOutcome out = _tm.txBegin(_id, retry);
    if (out.status == htm::OpStatus::Nack) {
        schedule(out.latency, Cat::Stall,
                 [this]() { beginTxnAttempt(true); });
        return;
    }
    schedule(out.latency, Cat::Commit, [this]() { launchBody(); });
}

void
Core::launchBody()
{
    _tx.reset();
    _attemptOps = 0;
    _body.emplace(_txnAwait->factory(_tx));
    _body->start();
    postResume();
}

void
Core::issueMemOp(MemOpAwait *op, std::coroutine_handle<> h)
{
    _pendingOp = op;
    _resumePoint = h;
    if (op->txnal) {
        sim_assert(_inTxn, "transactional op outside a transaction");
        Cycle pending = _tx._pending;
        if (pending > 0) {
            _tx._pending = 0;
            schedule(pending, Cat::Work, [this]() { tryMemOp(false); });
            return;
        }
    }
    tryMemOp(false);
}

void
Core::tryMemOp(bool is_retry)
{
    MemOpAwait *op = _pendingOp;
    htm::MemOpOutcome out;
    if (op->txnal && ++_attemptOps > _tm.config().zombieOpLimit) {
        // Doomed snapshot execution (zombie) backstop: discard the
        // attempt; the retry re-reads fresh values.
        _tm.abortSelf(_id, htm::AbortCause::Zombie);
        schedule(0, Cat::Stall, [this]() { cleanupAttempt(); });
        return;
    }
    if (op->txnal) {
        if (op->isStore) {
            out = _tm.txStore(_id, op->addr, op->storeValue.concrete(),
                              op->storeValue.sym(), op->size, is_retry);
        } else {
            out = _tm.txLoad(_id, op->addr, op->size, is_retry);
        }
    } else {
        if (op->isStore)
            out = _tm.plainStore(_id, op->addr, op->storeValue.concrete(),
                                 op->size);
        else
            out = _tm.plainLoad(_id, op->addr, op->size);
    }

    switch (out.status) {
      case htm::OpStatus::Ok:
        op->out = out;
        schedule(out.latency, op->txnal ? Cat::Work : Cat::Busy,
                 [this]() { resumeCoroutine(_resumePoint); });
        return;
      case htm::OpStatus::Nack:
        schedule(out.latency, Cat::Stall,
                 [this]() { tryMemOp(true); });
        return;
      case htm::OpStatus::AbortSelf:
        // The machine already rolled us back.
        schedule(0, Cat::Stall, [this]() { cleanupAttempt(); });
        return;
    }
}

void
Core::issueWork(Cycle cycles, bool txnal, std::coroutine_handle<> h)
{
    _resumePoint = h;
    Cycle total = cycles;
    if (txnal) {
        total += _tx._pending;
        _tx._pending = 0;
    }
    schedule(total, txnal ? Cat::Work : Cat::Busy,
             [this]() { resumeCoroutine(_resumePoint); });
}

void
Core::enterBarrier(std::coroutine_handle<> h)
{
    sim_assert(!_inTxn, "barrier inside a transaction");
    _barrier.arrive(this, h);
}

void
Core::resumeFromBarrier(std::coroutine_handle<> h, Cycle delay)
{
    schedule(delay, Cat::Barrier, [this, h]() { resumeCoroutine(h); });
}

void
Core::commitLoop(bool is_retry)
{
    htm::CommitStepOutcome out = _tm.commitStep(_id, is_retry);
    switch (out.status) {
      case htm::OpStatus::Ok:
        if (out.done) {
            schedule(out.latency, Cat::Commit,
                     [this]() { deliverResult(); });
        } else {
            schedule(out.latency, Cat::Commit,
                     [this]() { commitLoop(false); });
        }
        return;
      case htm::OpStatus::Nack:
        schedule(out.latency, Cat::Stall,
                 [this]() { commitLoop(true); });
        return;
      case htm::OpStatus::AbortSelf:
        schedule(0, Cat::Stall, [this]() { cleanupAttempt(); });
        return;
    }
}

void
Core::deliverResult()
{
    // Repair the returned register value with the final input values
    // (Figure 7, symbolic register file update).
    TxValue ret = _txnAwait->out;
    if (ret.symbolic()) {
        Word root_val = _tm.finalRootValue(_id, ret.sym()->root);
        _txnAwait->out = TxValue(rtc::evalSym(*ret.sym(), root_val));
    }

    // Resolve attempt accounting: committed work was useful.
    _breakdown.busy += _attemptWork;
    _breakdown.conflict += _attemptStall;
    _breakdown.other += _attemptCommit;
    _attemptWork = _attemptStall = _attemptCommit = 0;

    ++_stats.commits;
    _body.reset();
    _inTxn = false;
    resumeCoroutine(_programCont);
}

void
Core::cleanupAttempt()
{
    sim_assert(_inTxn, "cleanup without a transaction");
    // All cycles spent in the attempt were wasted.
    _breakdown.conflict += _attemptWork + _attemptStall + _attemptCommit;
    _attemptWork = _attemptStall = _attemptCommit = 0;
    ++_stats.aborts;
    _body.reset();
    _tx.reset();
    // Restart delay: the machine's abort-backoff policy plus the
    // contention scheduler's deferral for hot blamed blocks. Both are
    // 0 by default (immediate restart — the baseline behaviour); any
    // wait is conflict time, like every other contention stall.
    Cycle delay = _tm.restartBackoff(_id);
    if (_deferHook)
        delay += _deferHook(_id);
    if (delay > 0) {
        schedule(delay, Cat::Stall, [this]() { beginTxnAttempt(true); });
        return;
    }
    beginTxnAttempt(true);
}

void
Core::onRemoteAbort([[maybe_unused]] htm::AbortCause cause)
{
    sim_assert(_inTxn, "remote abort of core %u without a transaction",
               _id);
    // Cancel whatever this core was waiting for; rollback was already
    // performed by the machine (zero-cycle rollback).
    if (_pendingEvent.valid()) {
        _eq.cancel(_pendingEvent);
        _pendingEvent = EventHandle{};
    }
    schedule(0, Cat::Stall, [this]() { cleanupAttempt(); });
}

} // namespace retcon::exec
