/**
 * @file
 * TxValue: a simulated register value with an optional symbolic tag.
 *
 * Workload code computes on TxValues the way a program computes on
 * registers. The concrete part drives execution; the symbolic part is
 * RETCON's (input_address, increment) tag, propagated by the Tx
 * arithmetic helpers and consumed by stores, branches, and commit-time
 * register repair. Plain accessors that would let symbolic values leak
 * into untracked host computation are deliberately restrictive: use
 * Tx::reify() (which records an equality constraint) when a value is
 * needed as an address or for untrackable math.
 */

#ifndef RETCON_EXEC_TX_VALUE_HPP
#define RETCON_EXEC_TX_VALUE_HPP

#include <optional>

#include "retcon/symbolic.hpp"
#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::exec {

/** A register value: concrete word + optional symbolic tag. */
class TxValue
{
  public:
    TxValue() = default;

    /** A plain concrete value. */
    /* implicit */ TxValue(Word v) : _concrete(v) {}

    TxValue(Word v, std::optional<rtc::SymTag> sym)
        : _concrete(v), _sym(std::move(sym))
    {}

    /** The concrete (best-guess) value guiding execution. */
    Word concrete() const { return _concrete; }

    /** Signed view of the concrete value. */
    std::int64_t
    sconcrete() const
    {
        return static_cast<std::int64_t>(_concrete);
    }

    bool symbolic() const { return _sym.has_value(); }
    const std::optional<rtc::SymTag> &sym() const { return _sym; }

    /**
     * Extract the value when it is known to be non-symbolic. Asserts
     * otherwise — symbolic values must go through Tx::reify().
     */
    Word
    raw() const
    {
        sim_assert(!_sym, "raw() on a symbolic value; use Tx::reify()");
        return _concrete;
    }

  private:
    Word _concrete = 0;
    std::optional<rtc::SymTag> _sym;
};

} // namespace retcon::exec

#endif // RETCON_EXEC_TX_VALUE_HPP
