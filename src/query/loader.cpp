#include "query/loader.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "htm/types.hpp"
#include "trace/export.hpp"
#include "trace/stream.hpp"

namespace retcon::query {

namespace {

LoadResult
fail(std::size_t lineno, const std::string &why)
{
    LoadResult r;
    r.ok = false;
    r.error = "line " + std::to_string(lineno) + ": " + why;
    return r;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

/** Signed parse (sym deltas can be negative). */
bool
parseI64(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

/** Find `"key":<number>` in a JSON line; false when absent. */
bool
jsonU64(const std::string &line, const char *key, std::uint64_t &out)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t p = line.find(pat);
    if (p == std::string::npos)
        return false;
    p += pat.size();
    std::size_t e = line.find_first_not_of("0123456789", p);
    if (e == std::string::npos)
        e = line.size();
    return parseU64(line.substr(p, e - p), out);
}

/** Signed variant, for sym deltas. */
bool
jsonI64(const std::string &line, const char *key, std::int64_t &out)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t p = line.find(pat);
    if (p == std::string::npos)
        return false;
    p += pat.size();
    std::size_t e = p;
    if (e < line.size() && line[e] == '-')
        ++e;
    e = line.find_first_not_of("0123456789", e);
    if (e == std::string::npos)
        e = line.size();
    return parseI64(line.substr(p, e - p), out);
}

/** Find `"key":"<string>"` in a JSON line; false when absent. */
bool
jsonStr(const std::string &line, const char *key, std::string &out)
{
    std::string pat = std::string("\"") + key + "\":\"";
    std::size_t p = line.find(pat);
    if (p == std::string::npos)
        return false;
    p += pat.size();
    std::size_t e = line.find('"', p);
    if (e == std::string::npos)
        return false;
    out = line.substr(p, e - p);
    return true;
}

bool
abortCauseFromName(const std::string &name, std::uint8_t &out)
{
    for (int c = 0; c <= static_cast<int>(htm::AbortCause::Zombie);
         ++c) {
        if (htm::abortCauseName(static_cast<htm::AbortCause>(c)) ==
            name) {
            out = static_cast<std::uint8_t>(c);
            return true;
        }
    }
    return false;
}

void
splitCsv(const std::string &line, std::vector<std::string> &cols)
{
    cols.clear();
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            cols.push_back(line.substr(start));
            return;
        }
        cols.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

} // namespace

LoadResult
loadJson(std::istream &is)
{
    LoadResult result;
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t prevSeq = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line.front() != '{' || line.back() != '}')
            return fail(lineno, "not a JSON object");
        trace::Record r;
        std::uint64_t v = 0;
        std::string s;
        if (!jsonU64(line, "cycle", v))
            return fail(lineno, "missing cycle");
        r.cycle = v;
        if (!jsonU64(line, "seq", r.seq))
            return fail(lineno, "missing seq");
        if (!jsonU64(line, "core", v))
            return fail(lineno, "missing core");
        r.core = static_cast<CoreId>(v);
        if (!jsonStr(line, "kind", s))
            return fail(lineno, "missing kind");
        if (!trace::eventKindFromName(s.c_str(), r.kind))
            return fail(lineno, "unknown kind '" + s + "'");
        if (!jsonU64(line, "addr", r.addr))
            return fail(lineno, "missing addr");
        if (!jsonU64(line, "a", r.a))
            return fail(lineno, "missing a");
        if (!jsonU64(line, "b", r.b))
            return fail(lineno, "missing b");
        jsonU64(line, "vid", r.vid); // Omitted when zero.
        std::size_t symPos = line.find("\"sym\":{");
        if (symPos != std::string::npos) {
            std::string symPart = line.substr(symPos);
            if (!jsonU64(symPart, "root", r.sym.root) ||
                !jsonI64(symPart, "delta", r.sym.delta))
                return fail(lineno, "malformed sym tag");
            r.hasSym = true;
        }
        if (jsonStr(line, "cmp", s) &&
            !trace::cmpOpFromName(s.c_str(), r.cmp))
            return fail(lineno, "unknown cmp '" + s + "'");
        if (r.kind == trace::EventKind::Abort) {
            if (!jsonStr(line, "cause", s) ||
                !abortCauseFromName(s, r.aux))
                return fail(lineno, "missing/unknown abort cause");
        }
        if (r.kind == trace::EventKind::Commit &&
            line.find("\"datm_forwarded\":true") != std::string::npos)
            r.aux |= trace::kCommitAuxDatmForwarded;
        if (r.seq <= prevSeq)
            return fail(lineno, "seq order violated (" +
                                    std::to_string(r.seq) + " after " +
                                    std::to_string(prevSeq) + ")");
        prevSeq = r.seq;
        result.records.push_back(r);
    }
    return result;
}

LoadResult
loadCsv(std::istream &is)
{
    LoadResult result;
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t prevSeq = 0;
    std::vector<std::string> cols;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (!sawHeader) {
            if (line.rfind("cycle,core,kind,", 0) != 0)
                return fail(lineno, "missing CSV header");
            sawHeader = true;
            continue;
        }
        splitCsv(line, cols);
        // 13 columns is the pre-annotation schema; 14 the current one.
        if (cols.size() < 13)
            return fail(lineno, "expected >= 13 columns, got " +
                                    std::to_string(cols.size()));
        trace::Record r;
        std::uint64_t v = 0;
        if (!parseU64(cols[0], v))
            return fail(lineno, "bad cycle");
        r.cycle = v;
        if (!parseU64(cols[1], v))
            return fail(lineno, "bad core");
        r.core = static_cast<CoreId>(v);
        if (!trace::eventKindFromName(cols[2].c_str(), r.kind))
            return fail(lineno, "unknown kind '" + cols[2] + "'");
        if (!parseU64(cols[3], r.addr) || !parseU64(cols[4], r.a) ||
            !parseU64(cols[5], r.b))
            return fail(lineno, "bad addr/a/b");
        if (!cols[6].empty() || !cols[7].empty()) {
            if (!parseU64(cols[6], r.sym.root) ||
                !parseI64(cols[7], r.sym.delta))
                return fail(lineno, "malformed sym columns");
            r.hasSym = true;
        }
        if (!trace::cmpOpFromName(cols[8].c_str(), r.cmp))
            return fail(lineno, "unknown cmp '" + cols[8] + "'");
        if (!parseU64(cols[9], v) || v > 0xFF)
            return fail(lineno, "bad aux");
        r.aux = static_cast<std::uint8_t>(v);
        if (!parseU64(cols[10], r.seq))
            return fail(lineno, "bad seq");
        if (!parseU64(cols[12], r.vid))
            return fail(lineno, "bad vid");
        if (r.seq <= prevSeq)
            return fail(lineno, "seq order violated");
        prevSeq = r.seq;
        result.records.push_back(r);
    }
    if (!sawHeader)
        return fail(lineno, "empty CSV trace");
    return result;
}

LoadResult
loadBinary(const std::string &path)
{
    LoadResult result;
    trace::StreamReader reader(path); // Strict: first fault fails.
    if (!reader.ok()) {
        result.ok = false;
        result.error = "cannot open trace file " + path;
        return result;
    }
    trace::Record r;
    trace::StreamFault fault;
    while (true) {
        trace::StreamReader::Status s = reader.next(r, fault);
        if (s == trace::StreamReader::Status::Record) {
            result.records.push_back(r);
            continue;
        }
        if (s == trace::StreamReader::Status::Fault) {
            result.ok = false;
            result.error = fault.describe();
            result.records.clear();
        }
        return result;
    }
}

LoadResult
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        LoadResult r;
        r.ok = false;
        r.error = "cannot open trace file " + path;
        return r;
    }
    int first = is.peek();
    if (first == 'R') { // .rtt binary magic ("RTCSTRM1").
        is.close();
        return loadBinary(path);
    }
    if (first == '{')
        return loadJson(is);
    if (first == 'c')
        return loadCsv(is);
    LoadResult r;
    r.ok = false;
    r.error = path +
              ": neither .rtt binary, JSON Lines, nor CSV trace "
              "content";
    return r;
}

} // namespace retcon::query
