/**
 * @file
 * TraceIndex: the query-side view of a recorded provenance stream
 * (docs/trace-query.md). One pass over the records builds:
 *
 *  - **attempts**: every transaction attempt's interval (begin ->
 *    commit/abort), outcome, blamed block, repairs, and record span;
 *  - **block timelines**: per coherence block, every record that
 *    touched it plus the aborts that blamed it, in seq order — the
 *    conflict history of one address;
 *  - **annotation spans**: `WorkerCtx::annotate` marks partition each
 *    core's stream into named phases (a mark opens a span on its core
 *    until the core's next mark), so queries can anchor on workload
 *    phases instead of raw seq ranges;
 *  - **blame chains**: an aborted attempt names the block that killed
 *    it (the abort record's blame addr); the chain walks to the
 *    attempt that held that block at abort time, then to *its*
 *    killer, transitively — the debugging surface *Transactions Make
 *    Debugging Easy* argues for;
 *  - **repair diffs**: a committed attempt's before/after memory
 *    delta, straight from its `repair` records.
 */

#ifndef RETCON_QUERY_INDEX_HPP
#define RETCON_QUERY_INDEX_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/graph.hpp"

namespace retcon::query {

/** One transaction attempt as the index sees it. */
struct Attempt {
    std::uint64_t uid = 0;
    CoreId core = 0;
    std::uint64_t beginSeq = 0;
    Cycle beginCycle = 0;
    std::uint64_t endSeq = trace::kSeqUnreached; ///< In flight if unset.
    Cycle endCycle = 0;
    bool committed = false;
    bool aborted = false;
    std::uint8_t abortCause = 0;  ///< htm::AbortCause when aborted.
    Addr blameBlock = 0;          ///< Abort blame (0 = none recorded).
    std::uint64_t repairs = 0;    ///< Repair records at commit.
    std::uint64_t forwards = 0;   ///< DATM forwarded reads consumed.
    /** Annotation mark active on the core when the attempt began
     *  (nullopt before any mark). */
    std::optional<Word> annotation;
    /** Indices into the indexed record vector. */
    std::vector<std::size_t> recordIdx;
};

/** One step of a block's conflict timeline. */
struct TimelineEntry {
    std::size_t recordIdx = 0;     ///< Into the indexed records.
    std::uint64_t uid = 0;         ///< Attempt (0 = outside any).
};

/** One core's annotation span: [startSeq, endSeq). */
struct AnnotationSpan {
    Word mark = 0;
    CoreId core = 0;
    std::uint64_t startSeq = 0;
    std::uint64_t endSeq = trace::kSeqUnreached; ///< Open if unset.
};

/** One link of an abort-blame chain. */
struct BlameLink {
    std::uint64_t uid = 0;   ///< The aborted attempt.
    Addr block = 0;          ///< Block its abort blamed.
    std::uint8_t cause = 0;  ///< htm::AbortCause.
    /** The attempt holding the blamed block at abort time (the
     *  conflict winner); 0 when no holder is visible in the trace. */
    std::uint64_t winnerUid = 0;
};

/** One repaired word of a commit's before/after diff. */
struct RepairDelta {
    Addr word = 0;
    Word before = 0;
    Word after = 0;
    bool symbolic = false;
    rtc::SymTag sym{};
};

/** Aggregate stream statistics. */
struct TraceStats {
    std::uint64_t records = 0;
    std::uint64_t kindCounts[17] = {};
    std::uint64_t attempts = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t abortsByCause[10] = {};
    std::uint64_t repairs = 0;
    std::uint64_t forwards = 0;
    std::uint64_t marks = 0;
    std::uint64_t distinctBlocks = 0;
    Cycle firstCycle = 0;
    Cycle lastCycle = 0;
    /** Blocks ranked by conflict pressure (aborts blaming them +
     *  block-lost + overlap edges), hottest first. */
    std::vector<std::pair<Addr, std::uint64_t>> hotBlocks;
};

/** Indexed view over one recorded stream (records are copied in). */
class TraceIndex
{
  public:
    explicit TraceIndex(std::vector<trace::Record> recs);

    const std::vector<trace::Record> &records() const { return _recs; }
    const trace::DepGraph &graph() const { return _graph; }

    const std::unordered_map<std::uint64_t, Attempt> &attempts() const
    {
        return _attempts;
    }
    const Attempt *attempt(std::uint64_t uid) const;

    /** All records touching @p block (any address inside it). */
    std::vector<TimelineEntry> blockTimeline(Addr block) const;

    /**
     * Walk the abort-blame chain from @p uid: its abort's blamed
     * block, the attempt that held that block when the abort fired,
     * that attempt's own abort (if any), and so on. Cycles and
     * unbroken chains terminate at @p max_depth links.
     */
    std::vector<BlameLink> blameChain(std::uint64_t uid,
                                      std::size_t max_depth = 16) const;

    /** Aborted attempts whose begin-time annotation equals @p mark. */
    std::vector<std::uint64_t> abortsUnderMark(Word mark) const;

    /** All annotation spans, in seq order. */
    const std::vector<AnnotationSpan> &annotationSpans() const
    {
        return _spans;
    }

    /** Spans carrying @p mark (empty = annotation miss). */
    std::vector<AnnotationSpan> spansForMark(Word mark) const;

    /**
     * Before/after diff of the commit whose `commit` record carries
     * @p commit_seq (or whose attempt contains that seq). nullopt when
     * no committed attempt matches.
     */
    std::optional<std::vector<RepairDelta>>
    commitDiff(std::uint64_t commit_seq) const;

    /** Attempt whose record span contains @p seq (0 = none). */
    std::uint64_t attemptAtSeq(std::uint64_t seq) const;

    TraceStats stats() const;

  private:
    std::vector<trace::Record> _recs;
    trace::DepGraph _graph;
    std::unordered_map<std::uint64_t, Attempt> _attempts;
    std::vector<AnnotationSpan> _spans;
    /** Block -> indices of records touching it (including blames). */
    std::unordered_map<Addr, std::vector<std::size_t>> _blockIdx;
    /** Record index -> attempt uid (0 = outside any attempt). */
    std::vector<std::uint64_t> _recAttempt;
};

} // namespace retcon::query

#endif // RETCON_QUERY_INDEX_HPP
