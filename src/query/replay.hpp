/**
 * @file
 * Offline reenactment: run the ReenactmentValidator over a recorded
 * (or reconstructed) stream with no live cluster attached.
 *
 * The live validator reads architectural memory at commit-drain time;
 * offline there is no memory to read, so this module *reconstructs*
 * it from the stream itself:
 *
 *  - words are **seeded on first observation** — a `load`/`sym-load`
 *    carries the value read, `freeze`/`pin` the validated input
 *    value, `forward` the delivered word;
 *  - `store` records apply eagerly (the machine's eager modes write
 *    memory in place) with a per-attempt undo log, rolled back when
 *    the attempt aborts — consecutive `abort` records (a DATM
 *    cascade) roll back as one merged, newest-first unwind, exactly
 *    as the machine does;
 *  - `repair` records apply the commit-time drain — undo-logged like
 *    eager stores, because the machine logs drain writes too and an
 *    abort after a partial drain restores them.
 *
 * Replaying in seq order therefore presents the validator the same
 * memory values the live run did, and a complete stream (no ring
 * wraparound) must validate offline exactly as it did live — the
 * property that makes what-if's reconstructed prefix+suffix streams
 * checkable (src/api/whatif, docs/what-if.md).
 */

#ifndef RETCON_QUERY_REPLAY_HPP
#define RETCON_QUERY_REPLAY_HPP

#include <memory>
#include <string>
#include <vector>

#include "trace/reenact.hpp"

namespace retcon::query {

/** Outcome of one offline replay. */
struct ReplayResult {
    trace::ReenactReport report;
    /** Words first observed (seeded) during the replay. */
    std::uint64_t seededWords = 0;
    /**
     * Reads of words the stream never revealed (returned as 0).
     * Nonzero means the stream was windowed/wrapped — mismatches may
     * be artifacts of the missing prefix rather than real divergence.
     */
    std::uint64_t unknownReads = 0;
    /**
     * Most attempts ever simultaneously holding resident log state.
     * This is the windowed validator's memory bound: per-attempt
     * state retires at commit/abort, so the peak is capped by the
     * core count, never the run length (docs/streaming.md).
     */
    std::uint64_t peakOpenAttempts = 0;
};

/**
 * Incremental (windowed) offline reenactment: feed records one at a
 * time in ascending seq order and read the verdict at the end.
 * Verdict-identical to replayValidate on the same records — that
 * function is this class run over a vector — but never needs the
 * whole trace resident: memory reconstruction holds one value per
 * observed word (workload footprint), and the validator's attempt
 * logs retire at commit/abort, so resident state is bounded by open
 * attempts rather than run length. The consumption path for .rtt
 * streams (trace::StreamReader + docs/streaming.md).
 */
class StreamingReplay
{
  public:
    StreamingReplay();
    ~StreamingReplay();
    StreamingReplay(const StreamingReplay &) = delete;
    StreamingReplay &operator=(const StreamingReplay &) = delete;

    /** Consume one record (records must ascend in seq). */
    void onRecord(const trace::Record &r);

    /** Attempts currently holding resident validator state. */
    std::size_t openAttempts() const;

    /** Flush pending abort cascades and return the verdict. */
    ReplayResult finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/** Replay @p recs (ascending seq) through a fresh validator. */
ReplayResult replayValidate(const std::vector<trace::Record> &recs);

/** Outcome of validating an .rtt stream end to end. */
struct StreamValidateResult {
    /** Stream read cleanly: no checksum/seq/truncation faults. */
    bool streamOk = false;
    /** First fault's offset-precise diagnostic when !streamOk. */
    std::string error;
    std::uint64_t recordsRead = 0;
    ReplayResult replay;

    bool ok() const { return streamOk && replay.report.ok(); }
};

/**
 * Validate a streamed .rtt trace incrementally: strict StreamReader
 * feeding StreamingReplay record at a time, so neither the records
 * nor the validator state ever grow with trace length. Stops at the
 * first integrity fault (a corrupted stream must not be scored).
 */
StreamValidateResult validateStreamFile(const std::string &path);

} // namespace retcon::query

#endif // RETCON_QUERY_REPLAY_HPP
