/**
 * @file
 * Offline reenactment: run the ReenactmentValidator over a recorded
 * (or reconstructed) stream with no live cluster attached.
 *
 * The live validator reads architectural memory at commit-drain time;
 * offline there is no memory to read, so this module *reconstructs*
 * it from the stream itself:
 *
 *  - words are **seeded on first observation** — a `load`/`sym-load`
 *    carries the value read, `freeze`/`pin` the validated input
 *    value, `forward` the delivered word;
 *  - `store` records apply eagerly (the machine's eager modes write
 *    memory in place) with a per-attempt undo log, rolled back when
 *    the attempt aborts — consecutive `abort` records (a DATM
 *    cascade) roll back as one merged, newest-first unwind, exactly
 *    as the machine does;
 *  - `repair` records apply the commit-time drain — undo-logged like
 *    eager stores, because the machine logs drain writes too and an
 *    abort after a partial drain restores them.
 *
 * Replaying in seq order therefore presents the validator the same
 * memory values the live run did, and a complete stream (no ring
 * wraparound) must validate offline exactly as it did live — the
 * property that makes what-if's reconstructed prefix+suffix streams
 * checkable (src/api/whatif, docs/what-if.md).
 */

#ifndef RETCON_QUERY_REPLAY_HPP
#define RETCON_QUERY_REPLAY_HPP

#include <vector>

#include "trace/reenact.hpp"

namespace retcon::query {

/** Outcome of one offline replay. */
struct ReplayResult {
    trace::ReenactReport report;
    /** Words first observed (seeded) during the replay. */
    std::uint64_t seededWords = 0;
    /**
     * Reads of words the stream never revealed (returned as 0).
     * Nonzero means the stream was windowed/wrapped — mismatches may
     * be artifacts of the missing prefix rather than real divergence.
     */
    std::uint64_t unknownReads = 0;
};

/** Replay @p recs (ascending seq) through a fresh validator. */
ReplayResult replayValidate(const std::vector<trace::Record> &recs);

} // namespace retcon::query

#endif // RETCON_QUERY_REPLAY_HPP
