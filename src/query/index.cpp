#include "query/index.hpp"

#include <algorithm>
#include <unordered_set>

namespace retcon::query {

namespace {

/** Same block-touch set the graph extractor uses. */
bool
touchesBlock(trace::EventKind k)
{
    using K = trace::EventKind;
    switch (k) {
      case K::Load:
      case K::SymLoad:
      case K::Store:
      case K::SymStore:
      case K::Freeze:
      case K::Pin:
      case K::Constraint:
      case K::Forward:
      case K::Repair:
      case K::BlockLost:
        return true;
      default:
        return false;
    }
}

} // namespace

TraceIndex::TraceIndex(std::vector<trace::Record> recs)
    : _recs(std::move(recs)), _graph(trace::buildDepGraph(_recs))
{
    _recAttempt.assign(_recs.size(), 0);
    std::unordered_map<CoreId, std::uint64_t> inFlight;
    std::unordered_map<CoreId, std::optional<Word>> coreMark;
    std::unordered_map<CoreId, std::size_t> openSpan;

    for (std::size_t i = 0; i < _recs.size(); ++i) {
        const trace::Record &r = _recs[i];
        auto fit = inFlight.find(r.core);
        std::uint64_t uid = fit == inFlight.end() ? 0 : fit->second;

        if (r.kind == trace::EventKind::UserMark) {
            auto os = openSpan.find(r.core);
            if (os != openSpan.end())
                _spans[os->second].endSeq = r.seq;
            openSpan[r.core] = _spans.size();
            _spans.push_back({r.a, r.core, r.seq,
                              trace::kSeqUnreached});
            coreMark[r.core] = r.a;
            _recAttempt[i] = uid;
            if (uid != 0)
                _attempts[uid].recordIdx.push_back(i);
            continue;
        }

        if (r.kind == trace::EventKind::TxBegin) {
            uid = r.b;
            inFlight[r.core] = uid;
            Attempt &at = _attempts[uid];
            at.uid = uid;
            at.core = r.core;
            at.beginSeq = r.seq;
            at.beginCycle = r.cycle;
            auto cm = coreMark.find(r.core);
            if (cm != coreMark.end())
                at.annotation = cm->second;
            at.recordIdx.push_back(i);
            _recAttempt[i] = uid;
            continue;
        }

        _recAttempt[i] = uid;
        Attempt *at = uid != 0 ? &_attempts[uid] : nullptr;
        if (at)
            at->recordIdx.push_back(i);

        if (touchesBlock(r.kind))
            _blockIdx[blockAddr(r.addr)].push_back(i);

        switch (r.kind) {
          case trace::EventKind::Repair:
            if (at)
                ++at->repairs;
            break;
          case trace::EventKind::Forward:
            if (at)
                ++at->forwards;
            break;
          case trace::EventKind::Commit:
            if (at) {
                at->committed = true;
                at->endSeq = r.seq;
                at->endCycle = r.cycle;
            }
            inFlight.erase(r.core);
            break;
          case trace::EventKind::Abort:
            if (at) {
                at->aborted = true;
                at->abortCause = r.aux;
                at->blameBlock = r.addr;
                at->endSeq = r.seq;
                at->endCycle = r.cycle;
            }
            // The blamed block's timeline shows the abort too.
            if (r.addr != 0)
                _blockIdx[blockAddr(r.addr)].push_back(i);
            inFlight.erase(r.core);
            break;
          default:
            break;
        }
    }
}

const Attempt *
TraceIndex::attempt(std::uint64_t uid) const
{
    auto it = _attempts.find(uid);
    return it == _attempts.end() ? nullptr : &it->second;
}

std::vector<TimelineEntry>
TraceIndex::blockTimeline(Addr block) const
{
    std::vector<TimelineEntry> out;
    auto it = _blockIdx.find(blockAddr(block));
    if (it == _blockIdx.end())
        return out;
    out.reserve(it->second.size());
    for (std::size_t i : it->second)
        out.push_back({i, _recAttempt[i]});
    return out;
}

std::vector<BlameLink>
TraceIndex::blameChain(std::uint64_t uid, std::size_t max_depth) const
{
    std::vector<BlameLink> chain;
    std::unordered_set<std::uint64_t> visited;
    while (chain.size() < max_depth && visited.insert(uid).second) {
        const Attempt *at = attempt(uid);
        if (!at || !at->aborted)
            break;
        BlameLink link;
        link.uid = uid;
        link.block = at->blameBlock;
        link.cause = at->abortCause;
        if (at->blameBlock != 0) {
            // The conflict winner: the most recent attempt other than
            // ours to touch the blamed block while still in flight at
            // the moment our abort fired.
            auto bit = _blockIdx.find(at->blameBlock);
            if (bit != _blockIdx.end()) {
                std::uint64_t fallback = 0;
                for (auto ri = bit->second.rbegin();
                     ri != bit->second.rend(); ++ri) {
                    if (_recs[*ri].seq >= at->endSeq)
                        continue;
                    std::uint64_t other = _recAttempt[*ri];
                    if (other == 0 || other == uid)
                        continue;
                    if (fallback == 0)
                        fallback = other;
                    const Attempt *oa = attempt(other);
                    if (oa && oa->endSeq > at->endSeq) {
                        link.winnerUid = other;
                        break;
                    }
                }
                if (link.winnerUid == 0)
                    link.winnerUid = fallback;
            }
        }
        chain.push_back(link);
        if (link.winnerUid == 0)
            break;
        uid = link.winnerUid;
        const Attempt *next = attempt(uid);
        if (!next || !next->aborted)
            break;
    }
    return chain;
}

std::vector<std::uint64_t>
TraceIndex::abortsUnderMark(Word mark) const
{
    std::vector<std::uint64_t> out;
    for (const auto &[uid, at] : _attempts)
        if (at.aborted && at.annotation && *at.annotation == mark)
            out.push_back(uid);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<AnnotationSpan>
TraceIndex::spansForMark(Word mark) const
{
    std::vector<AnnotationSpan> out;
    for (const AnnotationSpan &s : _spans)
        if (s.mark == mark)
            out.push_back(s);
    return out;
}

std::optional<std::vector<RepairDelta>>
TraceIndex::commitDiff(std::uint64_t commit_seq) const
{
    const Attempt *match = nullptr;
    for (const auto &[uid, at] : _attempts) {
        if (!at.committed)
            continue;
        if (at.endSeq == commit_seq ||
            (at.beginSeq <= commit_seq && commit_seq <= at.endSeq)) {
            match = &at;
            break;
        }
    }
    if (!match)
        return std::nullopt;
    std::vector<RepairDelta> out;
    for (std::size_t i : match->recordIdx) {
        const trace::Record &r = _recs[i];
        if (r.kind != trace::EventKind::Repair)
            continue;
        out.push_back({r.addr, r.a, r.b, r.hasSym, r.sym});
    }
    return out;
}

std::uint64_t
TraceIndex::attemptAtSeq(std::uint64_t seq) const
{
    auto it = std::lower_bound(
        _recs.begin(), _recs.end(), seq,
        [](const trace::Record &r, std::uint64_t s) {
            return r.seq < s;
        });
    if (it == _recs.end() || it->seq != seq)
        return 0;
    return _recAttempt[static_cast<std::size_t>(it - _recs.begin())];
}

TraceStats
TraceIndex::stats() const
{
    TraceStats st;
    st.records = _recs.size();
    if (!_recs.empty()) {
        st.firstCycle = _recs.front().cycle;
        st.lastCycle = _recs.back().cycle;
    }
    std::unordered_map<Addr, std::uint64_t> heat;
    for (const trace::Record &r : _recs) {
        ++st.kindCounts[static_cast<int>(r.kind)];
        switch (r.kind) {
          case trace::EventKind::TxBegin:
            ++st.attempts;
            break;
          case trace::EventKind::Commit:
            ++st.commits;
            break;
          case trace::EventKind::Abort:
            ++st.aborts;
            if (r.aux < 10)
                ++st.abortsByCause[r.aux];
            if (r.addr != 0)
                ++heat[blockAddr(r.addr)];
            break;
          case trace::EventKind::Repair:
            ++st.repairs;
            break;
          case trace::EventKind::Forward:
            ++st.forwards;
            break;
          case trace::EventKind::UserMark:
            ++st.marks;
            break;
          case trace::EventKind::BlockLost:
            ++heat[blockAddr(r.addr)];
            break;
          default:
            break;
        }
    }
    for (const trace::GraphEdge &e : _graph.edges)
        if (e.kind == trace::GraphEdge::Kind::Overlap)
            ++heat[e.block];
    st.distinctBlocks = _blockIdx.size();
    st.hotBlocks.assign(heat.begin(), heat.end());
    std::sort(st.hotBlocks.begin(), st.hotBlocks.end(),
              [](const auto &a, const auto &b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
              });
    return st;
}

} // namespace retcon::query
