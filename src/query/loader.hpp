/**
 * @file
 * Offline trace loader: parse a recorded provenance stream back into
 * trace::Record form, from either export format (docs/trace-format.md):
 *
 *  - **JSON Lines** (`exportJson*`): one object per line. The
 *    per-kind decodes re-encode losslessly — `cause` names map back
 *    to the aux byte, `datm_forwarded` back to the commit flag bit,
 *    `annotation` is the mark's `a` value it was decoded from.
 *  - **CSV** (`exportCsv*`): one row per record; the `aux` column is
 *    raw, so the round trip is field-exact by construction.
 *
 * Loading is strict: any unparsable line, unknown kind/operator/cause
 * name, or seq-order violation (exports of a merged snapshot are
 * ascending in the machine-global `seq` key) fails the load with a
 * line-numbered diagnostic instead of silently yielding a partial
 * stream — a truncated or hand-edited trace must not masquerade as a
 * recorded run (tests/unit/test_query.cpp pins the negative control).
 */

#ifndef RETCON_QUERY_LOADER_HPP
#define RETCON_QUERY_LOADER_HPP

#include <istream>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace retcon::query {

/** Outcome of a load: the records, or a line-numbered diagnostic. */
struct LoadResult {
    bool ok = true;
    std::string error;
    std::vector<trace::Record> records;
};

/** Parse JSON Lines export output. */
LoadResult loadJson(std::istream &is);

/** Parse CSV export output (header row required). */
LoadResult loadCsv(std::istream &is);

/**
 * Parse a framed binary .rtt stream (docs/streaming.md). Strict like
 * the text loaders: the first checksum, seq-order, seq-gap (dense
 * streams), truncation, or payload fault fails the load with an
 * offset-precise diagnostic instead of yielding a partial stream.
 */
LoadResult loadBinary(const std::string &path);

/**
 * Load a trace file, dispatching on content: a first byte of 'R' is
 * the .rtt binary magic, a first line starting with '{' is JSON
 * Lines, a `cycle,core,...` header is CSV. Fails (ok = false) on
 * unreadable files or unrecognizable content.
 */
LoadResult loadTraceFile(const std::string &path);

} // namespace retcon::query

#endif // RETCON_QUERY_LOADER_HPP
