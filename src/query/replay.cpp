#include "query/replay.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "trace/stream.hpp"

namespace retcon::query {

namespace {

/** One eager store awaiting commit or rollback. */
struct UndoEnt {
    Addr word = 0;
    std::optional<Word> old; ///< nullopt: word was unknown before.
    std::uint64_t order = 0; ///< Global apply order (newest-first key).
};

struct OfflineMemory {
    std::unordered_map<Addr, Word> words;
    std::unordered_map<CoreId, std::vector<UndoEnt>> undo;
    std::uint64_t applyOrder = 0;
    std::uint64_t seeded = 0;
    std::uint64_t unknownReads = 0;

    Word
    read(Addr a)
    {
        auto it = words.find(wordAddr(a));
        if (it == words.end()) {
            ++unknownReads;
            return 0;
        }
        return it->second;
    }

    void
    seed(Addr word, Word value)
    {
        if (words.emplace(wordAddr(word), value).second)
            ++seeded;
    }

    void
    store(CoreId core, Addr byte_addr, Word word_value)
    {
        Addr w = wordAddr(byte_addr);
        auto it = words.find(w);
        UndoEnt e;
        e.word = w;
        e.old = it == words.end() ? std::nullopt
                                  : std::optional<Word>(it->second);
        e.order = ++applyOrder;
        undo[core].push_back(e);
        words[w] = word_value;
    }

    /**
     * Roll back @p cores' eager stores as one merged, newest-first
     * unwind — the machine merges a DATM cascade's undo entries and
     * restores them in reverse global order, so interleaved writes to
     * one word land back on the pre-cascade value.
     */
    void
    rollback(const std::vector<CoreId> &cores)
    {
        std::vector<UndoEnt> all;
        for (CoreId c : cores) {
            auto it = undo.find(c);
            if (it == undo.end())
                continue;
            all.insert(all.end(), it->second.begin(), it->second.end());
            it->second.clear();
        }
        std::sort(all.begin(), all.end(),
                  [](const UndoEnt &a, const UndoEnt &b) {
                      return a.order > b.order;
                  });
        for (const UndoEnt &e : all) {
            if (e.old)
                words[e.word] = *e.old;
            else
                words.erase(e.word);
        }
    }

    void
    commit(CoreId core)
    {
        auto it = undo.find(core);
        if (it != undo.end())
            it->second.clear();
    }
};

} // namespace

/**
 * The incremental consumer owns everything the old whole-vector
 * replay held, but advances one record at a time: offline memory,
 * the validator, and the pending-abort cascade accumulator.
 */
struct StreamingReplay::Impl {
    OfflineMemory mem;
    trace::ReenactmentValidator validator;
    // Consecutive abort records form one machine step (a DATM abort
    // cascade); their rollbacks merge. Flushed before any other kind.
    std::vector<CoreId> pendingAborts;
    std::uint64_t peakOpen = 0;

    Impl()
        : validator([this](Addr a) { return mem.read(a); })
    {
    }

    void
    flushAborts()
    {
        if (!pendingAborts.empty()) {
            mem.rollback(pendingAborts);
            pendingAborts.clear();
        }
    }
};

StreamingReplay::StreamingReplay() : _impl(std::make_unique<Impl>()) {}

StreamingReplay::~StreamingReplay() = default;

void
StreamingReplay::onRecord(const trace::Record &r)
{
    Impl &im = *_impl;
    if (r.kind != trace::EventKind::Abort)
        im.flushAborts();

    // The validator observes the record against memory as it was
    // *before* the record's own effect (its commit-drain snapshot
    // must predate that commit's repairs).
    im.validator.onEvent(r);

    switch (r.kind) {
      case trace::EventKind::Load:
      case trace::EventKind::SymLoad:
      case trace::EventKind::Forward:
        im.mem.seed(r.addr, r.a);
        break;
      case trace::EventKind::Freeze:
      case trace::EventKind::Pin:
        im.mem.seed(r.addr, r.a);
        break;
      case trace::EventKind::Store:
        im.mem.store(r.core, r.addr, r.b);
        break;
      case trace::EventKind::Repair:
        // Drain writes are undo-logged by the machine too: an abort
        // after a partial drain restores them, so a repair is only
        // permanent once its commit record arrives.
        im.mem.store(r.core, r.addr, r.b);
        break;
      case trace::EventKind::Commit:
        im.mem.commit(r.core);
        break;
      case trace::EventKind::Abort:
        im.pendingAborts.push_back(r.core);
        break;
      default:
        break;
    }
    std::size_t open = im.validator.openAttempts();
    if (open > im.peakOpen)
        im.peakOpen = open;
}

std::size_t
StreamingReplay::openAttempts() const
{
    return _impl->validator.openAttempts();
}

ReplayResult
StreamingReplay::finish()
{
    Impl &im = *_impl;
    im.flushAborts();
    ReplayResult out;
    out.report = im.validator.report();
    out.seededWords = im.mem.seeded;
    out.unknownReads = im.mem.unknownReads;
    out.peakOpenAttempts = im.peakOpen;
    return out;
}

ReplayResult
replayValidate(const std::vector<trace::Record> &recs)
{
    StreamingReplay replay;
    for (const trace::Record &r : recs)
        replay.onRecord(r);
    return replay.finish();
}

StreamValidateResult
validateStreamFile(const std::string &path)
{
    StreamValidateResult out;
    trace::StreamReader reader(path);
    if (!reader.ok()) {
        out.error = "cannot open trace stream " + path;
        return out;
    }
    StreamingReplay replay;
    trace::Record r;
    trace::StreamFault fault;
    while (true) {
        trace::StreamReader::Status s = reader.next(r, fault);
        if (s == trace::StreamReader::Status::Record) {
            replay.onRecord(r);
            continue;
        }
        if (s == trace::StreamReader::Status::Fault) {
            out.error = path + ": " + fault.describe();
            out.recordsRead = reader.recordsRead();
            out.replay = replay.finish();
            return out;
        }
        break;
    }
    out.streamOk = true;
    out.recordsRead = reader.recordsRead();
    out.replay = replay.finish();
    return out;
}

} // namespace retcon::query
