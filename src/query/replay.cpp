#include "query/replay.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace retcon::query {

namespace {

/** One eager store awaiting commit or rollback. */
struct UndoEnt {
    Addr word = 0;
    std::optional<Word> old; ///< nullopt: word was unknown before.
    std::uint64_t order = 0; ///< Global apply order (newest-first key).
};

struct OfflineMemory {
    std::unordered_map<Addr, Word> words;
    std::unordered_map<CoreId, std::vector<UndoEnt>> undo;
    std::uint64_t applyOrder = 0;
    std::uint64_t seeded = 0;
    std::uint64_t unknownReads = 0;

    Word
    read(Addr a)
    {
        auto it = words.find(wordAddr(a));
        if (it == words.end()) {
            ++unknownReads;
            return 0;
        }
        return it->second;
    }

    void
    seed(Addr word, Word value)
    {
        if (words.emplace(wordAddr(word), value).second)
            ++seeded;
    }

    void
    store(CoreId core, Addr byte_addr, Word word_value)
    {
        Addr w = wordAddr(byte_addr);
        auto it = words.find(w);
        UndoEnt e;
        e.word = w;
        e.old = it == words.end() ? std::nullopt
                                  : std::optional<Word>(it->second);
        e.order = ++applyOrder;
        undo[core].push_back(e);
        words[w] = word_value;
    }

    /**
     * Roll back @p cores' eager stores as one merged, newest-first
     * unwind — the machine merges a DATM cascade's undo entries and
     * restores them in reverse global order, so interleaved writes to
     * one word land back on the pre-cascade value.
     */
    void
    rollback(const std::vector<CoreId> &cores)
    {
        std::vector<UndoEnt> all;
        for (CoreId c : cores) {
            auto it = undo.find(c);
            if (it == undo.end())
                continue;
            all.insert(all.end(), it->second.begin(), it->second.end());
            it->second.clear();
        }
        std::sort(all.begin(), all.end(),
                  [](const UndoEnt &a, const UndoEnt &b) {
                      return a.order > b.order;
                  });
        for (const UndoEnt &e : all) {
            if (e.old)
                words[e.word] = *e.old;
            else
                words.erase(e.word);
        }
    }

    void
    commit(CoreId core)
    {
        auto it = undo.find(core);
        if (it != undo.end())
            it->second.clear();
    }
};

} // namespace

ReplayResult
replayValidate(const std::vector<trace::Record> &recs)
{
    OfflineMemory mem;
    trace::ReenactmentValidator validator(
        [&mem](Addr a) { return mem.read(a); });

    // Consecutive abort records form one machine step (a DATM abort
    // cascade); their rollbacks merge. Flush before any other kind.
    std::vector<CoreId> pendingAborts;
    auto flushAborts = [&] {
        if (!pendingAborts.empty()) {
            mem.rollback(pendingAborts);
            pendingAborts.clear();
        }
    };

    for (const trace::Record &r : recs) {
        if (r.kind != trace::EventKind::Abort)
            flushAborts();

        // The validator observes the record against memory as it was
        // *before* the record's own effect (its commit-drain snapshot
        // must predate that commit's repairs).
        validator.onEvent(r);

        switch (r.kind) {
          case trace::EventKind::Load:
          case trace::EventKind::SymLoad:
          case trace::EventKind::Forward:
            mem.seed(r.addr, r.a);
            break;
          case trace::EventKind::Freeze:
          case trace::EventKind::Pin:
            mem.seed(r.addr, r.a);
            break;
          case trace::EventKind::Store:
            mem.store(r.core, r.addr, r.b);
            break;
          case trace::EventKind::Repair:
            // Drain writes are undo-logged by the machine too: an
            // abort after a partial drain restores them, so a repair
            // is only permanent once its commit record arrives.
            mem.store(r.core, r.addr, r.b);
            break;
          case trace::EventKind::Commit:
            mem.commit(r.core);
            break;
          case trace::EventKind::Abort:
            pendingAborts.push_back(r.core);
            break;
          default:
            break;
        }
    }
    flushAborts();

    ReplayResult out;
    out.report = validator.report();
    out.seededWords = mem.seeded;
    out.unknownReads = mem.unknownReads;
    return out;
}

} // namespace retcon::query
