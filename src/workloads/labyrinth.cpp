/**
 * @file
 * labyrinth (Table 2): shortest-distance path routing on a 3D grid.
 *
 * Per the paper's restructuring, each router copies the grid state and
 * computes its path *before* the transaction (plain loads + private
 * compute); the transaction only revalidates and claims the path's
 * cells. Conflicts are rare (paths seldom overlap on a sparse grid);
 * the scalability limiter is load imbalance from highly variable route
 * lengths, which shows up as barrier time in Figure 4.
 */

#include "ds/grid.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class LabyrinthWorkload : public Workload
{
  public:
    explicit LabyrinthWorkload(const WorkloadParams &p) : _p(p)
    {
        _routes = _p.scaled(96, 8);
    }

    std::string name() const override { return "labyrinth"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());
        _grid = ds::SimGrid::create(mem, *_alloc, 32, 32, 3);

        // Pre-plan the routes deterministically: route r is a walk of
        // highly variable length (the imbalance source).
        Xoshiro rng(_p.seed * 131 + 7);
        _paths.resize(_routes);
        for (Word r = 0; r < _routes; ++r) {
            Word len = rng.range(6, 90);
            Word x = rng.below(_grid.xDim());
            Word y = rng.below(_grid.yDim());
            Word z = rng.below(_grid.zDim());
            for (Word s = 0; s < len; ++s) {
                _paths[r].push_back(_grid.index(x, y, z));
                switch (rng.below(4)) {
                  case 0: x = (x + 1) % _grid.xDim(); break;
                  case 1: y = (y + 1) % _grid.yDim(); break;
                  case 2: x = (x + _grid.xDim() - 1) % _grid.xDim(); break;
                  default: y = (y + _grid.yDim() - 1) % _grid.yDim(); break;
                }
            }
        }
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        // Every claimed cell carries a route id; every successfully
        // routed path must own all of its cells.
        const auto &mem = cluster.memory();
        Word claimed = _grid.hostClaimedCells(mem);
        Word expected = 0;
        for (Word r = 0; r < _routes; ++r) {
            if (!_routed[r])
                continue;
            std::vector<Word> uniq = _paths[r];
            std::sort(uniq.begin(), uniq.end());
            uniq.erase(std::unique(uniq.begin(), uniq.end()),
                       uniq.end());
            expected += uniq.size();
            for (Word cell : uniq) {
                if (mem.readWord(_grid.cellAddr(cell)) != r + 1)
                    return {false,
                            "route " + std::to_string(r) +
                                " does not own its cells"};
            }
        }
        if (claimed != expected)
            return {false, "claimed-cell count mismatch"};
        if (_routedCount == 0)
            return {false, "no route succeeded"};
        return {true, ""};
    }

  private:
    WorkloadParams _p;
    Word _routes;
    std::unique_ptr<ds::SimAllocator> _alloc;
    ds::SimGrid _grid;
    std::vector<std::vector<Word>> _paths;
    std::vector<bool> _routed;
    Word _routedCount = 0;

    Task<void>
    run(WorkerCtx &ctx)
    {
        if (ctx.tid() == 0) {
            _routed.assign(_routes, false);
            _routedCount = 0;
        }
        co_await ctx.barrier();

        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _routes * tid / nt;
        Word hi = _routes * (tid + 1) / nt;

        for (Word r = lo; r < hi; ++r) {
            // Deduplicate cells so the claim is idempotent per path.
            std::vector<Word> cells = _paths[r];
            std::sort(cells.begin(), cells.end());
            cells.erase(std::unique(cells.begin(), cells.end()),
                        cells.end());

            // Pre-transaction: grid copy + private route compute,
            // with plain (non-speculative) reads of the path area.
            for (Word cell : cells)
                co_await ctx.load(_grid.cellAddr(cell));
            co_await ctx.work(40 * cells.size());

            TxValue ok = co_await ctx.txn([this, &cells, r](Tx &tx) {
                return _grid.claimPath(tx, cells, r + 1);
            });
            if (ok.raw() == 1) {
                _routed[r] = true;
                ++_routedCount;
            }
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeLabyrinth(const WorkloadParams &p)
{
    return std::make_unique<LabyrinthWorkload>(p);
}

} // namespace retcon::workloads
