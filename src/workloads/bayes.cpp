/**
 * @file
 * bayes (Table 3): Bayesian network structure learning.
 *
 * Transactions evaluate candidate edge flips in a shared adjacency
 * matrix: they read a whole row and column of the matrix (large,
 * data-dependent read sets), recompute local scores (heavy private
 * compute of variable length), and update several score words plus the
 * edge bit. The paper dropped bayes from the figures for extreme
 * run-to-run variability but kept it in Table 3; we do the same.
 */

#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class BayesWorkload : public Workload
{
  public:
    explicit BayesWorkload(const WorkloadParams &p) : _p(p)
    {
        _flips = _p.scaled(384, 32);
    }

    std::string name() const override { return "bayes"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());
        // Adjacency matrix (one word per cell) + per-variable scores.
        _adjBase = _alloc->allocShared(kVars * kVars * kWordBytes);
        _scoreBase = _alloc->allocShared(kVars * kBlockBytes);
        for (Word i = 0; i < kVars * kVars; ++i)
            mem.writeWord(_adjBase + i * kWordBytes, 0);
        for (Word v = 0; v < kVars; ++v)
            mem.writeWord(scoreAddr(v), 1000);
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        // Each committed flip toggles exactly one edge and transfers
        // score between its endpoints: total score is conserved.
        const auto &mem = cluster.memory();
        Word total = 0;
        for (Word v = 0; v < kVars; ++v)
            total += mem.readWord(scoreAddr(v));
        if (total != 1000 * kVars)
            return {false, "score not conserved"};
        return {true, ""};
    }

  private:
    static constexpr Word kVars = 24;

    WorkloadParams _p;
    Word _flips;
    std::unique_ptr<ds::SimAllocator> _alloc;
    Addr _adjBase = 0;
    Addr _scoreBase = 0;

    Addr
    cellAddr(Word from, Word to) const
    {
        return _adjBase + (from * kVars + to) * kWordBytes;
    }
    Addr
    scoreAddr(Word v) const
    {
        return _scoreBase + v * kBlockBytes;
    }

    Task<TxValue>
    flipEdge(Tx &tx, Word from, Word to)
    {
        // Read the whole row and column (the candidate's Markov
        // blanket): a large, data-dependent read set.
        Word parents = 0;
        for (Word v = 0; v < kVars; ++v) {
            TxValue cell = co_await tx.load(cellAddr(from, v));
            if (tx.cmp(cell, rtc::CmpOp::NE, 0))
                ++parents;
            TxValue cell2 = co_await tx.load(cellAddr(v, to));
            (void)cell2;
        }
        // Score recomputation: long, variable-length private compute.
        co_await tx.work(100 + 40 * parents);

        // Toggle the edge and transfer one point of score.
        TxValue edge = co_await tx.load(cellAddr(from, to));
        bool present = tx.cmp(edge, rtc::CmpOp::NE, 0);
        co_await tx.store(cellAddr(from, to),
                          TxValue(present ? 0 : 1));
        TxValue sf = co_await tx.load(scoreAddr(from));
        co_await tx.store(scoreAddr(from), tx.add(sf, 1));
        TxValue st = co_await tx.load(scoreAddr(to));
        co_await tx.store(scoreAddr(to), tx.sub(st, 1));
        co_return TxValue(1);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _flips * tid / nt;
        Word hi = _flips * (tid + 1) / nt;

        for (Word f = lo; f < hi; ++f) {
            Word from = ds::hashKey(f * 3 + 1) % kVars;
            Word to = ds::hashKey(f * 7 + 5) % kVars;
            if (from == to)
                to = (to + 1) % kVars;
            co_await ctx.txn([this, from, to](Tx &tx) {
                return flipEdge(tx, from, to);
            });
            co_await ctx.work(80);
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeBayes(const WorkloadParams &p)
{
    return std::make_unique<BayesWorkload>(p);
}

} // namespace retcon::workloads
