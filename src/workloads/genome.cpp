/**
 * @file
 * genome / genome-sz (Table 2): gene sequencing.
 *
 * Phase 1 deduplicates DNA segments by inserting them into a shared
 * hashtable (duplicates hit existing keys); phase 2 string-matches
 * against the table with mostly-private compute. The base variant uses
 * STAMP's default non-resizable hashtable (no size field, so inserts
 * of different segments do not conflict and the workload scales); the
 * -sz variant maintains the shared size field and resizes, which
 * serializes the baseline HTM and is repaired by RETCON.
 */

#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class GenomeWorkload : public Workload
{
  public:
    GenomeWorkload(const WorkloadParams &p, bool resizable)
        : _p(p), _resizable(resizable)
    {
        _segments = _p.scaled(3072, 64);
        _uniquePool = _segments / 4;
    }

    std::string
    name() const override
    {
        return _resizable ? "genome-sz" : "genome";
    }

    void
    setup(exec::Cluster &cluster) override
    {
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());
        // Fixed variant: provisioned for the workload; resizable
        // variant: starts small and grows (the paper's "-sz").
        Word buckets = _resizable ? 1024 : 2048;
        _ht = ds::SimHashtable::create(cluster.memory(), *_alloc,
                                       buckets, _resizable);
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();
        Word nodes = _ht.hostCountNodes(mem);
        if (nodes != _uniquePool) {
            return {false, "expected " + std::to_string(_uniquePool) +
                               " unique segments, table holds " +
                               std::to_string(nodes)};
        }
        for (Word u = 0; u < _uniquePool; ++u) {
            if (!_ht.hostContains(mem, segmentKey(u)))
                return {false, "missing segment " + std::to_string(u)};
        }
        if (_resizable && _ht.hostSize(mem) != _uniquePool)
            return {false, "size field diverged from node count"};
        return {true, ""};
    }

  private:
    WorkloadParams _p;
    bool _resizable;
    Word _segments;
    Word _uniquePool;
    std::unique_ptr<ds::SimAllocator> _alloc;
    ds::SimHashtable _ht;

    static Word
    segmentKey(Word unique_id)
    {
        return ds::hashKey(unique_id * 2 + 1);
    }

    Task<TxValue>
    insertSegment(Tx &tx, unsigned tid, Word key)
    {
        co_await tx.work(120); // Segment hashing (in the txn, as in
                               // STAMP's coarse-grained phase 1).
        co_return co_await _ht.insert(tx, tid, key, key);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _segments * tid / nt;
        Word hi = _segments * (tid + 1) / nt;

        // Phase 1: segment deduplication. Half the segments are
        // duplicates (they only read the table), and hashing work
        // runs inside the critical section as in STAMP.
        for (Word i = lo; i < hi; ++i) {
            Word key = segmentKey(i % _uniquePool);
            co_await ctx.txn([this, &ctx, key](Tx &tx) {
                return insertSegment(tx, ctx.tid(), key);
            });
            co_await ctx.work(150); // Segment extraction.
        }

        co_await ctx.barrier();

        // Phase 2: sequence matching (lookups + private compute).
        for (Word i = lo; i < hi; ++i) {
            Word key = segmentKey(ctx.rng().below(_uniquePool));
            co_await ctx.txn([this, key](Tx &tx) {
                return _ht.lookup(tx, key);
            });
            co_await ctx.work(400); // Overlap matching.
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeGenome(const WorkloadParams &p, bool resizable)
{
    return std::make_unique<GenomeWorkload>(p, resizable);
}

} // namespace retcon::workloads
