/**
 * @file
 * ssca2 (Table 2): scalable synthetic compact applications graph
 * kernels.
 *
 * Many tiny transactions append edges to per-node adjacency lists
 * spread across a footprint far larger than the caches: almost no
 * conflicts, but terrible locality (every access misses) and frequent
 * kernel-phase barriers with uneven per-round work — which is why the
 * paper's ssca2 scales poorly without being abort-bound (Figure 4:
 * "bad caching behavior").
 */

#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class Ssca2Workload : public Workload
{
  public:
    explicit Ssca2Workload(const WorkloadParams &p) : _p(p)
    {
        _nodes = _p.scaled(8192, 256);
        _edges = _p.scaled(4096, 128);
    }

    std::string name() const override { return "ssca2"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena() * 4, cluster.numThreads());
        // Node record: [0] degree, [1..kMaxDegree] edge slots. One
        // block per node: the footprint (8192 blocks = 512KB+) busts
        // the L1 and thrashes the L2.
        _nodeBase = _alloc->allocShared(_nodes * kBlockBytes);
        for (Word i = 0; i < _nodes; ++i)
            mem.writeWord(nodeAddr(i), 0);
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();
        Word total = 0;
        for (Word i = 0; i < _nodes; ++i)
            total += mem.readWord(nodeAddr(i));
        if (total != _edges) {
            return {false, "inserted " + std::to_string(total) +
                               " edges, expected " +
                               std::to_string(_edges)};
        }
        return {true, ""};
    }

  private:
    static constexpr Word kMaxDegree = 6;
    static constexpr unsigned kRounds = 16;

    WorkloadParams _p;
    Word _nodes;
    Word _edges;
    std::unique_ptr<ds::SimAllocator> _alloc;
    Addr _nodeBase = 0;

    Addr nodeAddr(Word i) const { return _nodeBase + i * kBlockBytes; }

    Task<TxValue>
    addEdge(Tx &tx, Word node, Word target)
    {
        TxValue deg = co_await tx.load(nodeAddr(node));
        Word d = tx.reify(deg); // Degree indexes the slot array.
        if (d < kMaxDegree) {
            co_await tx.store(nodeAddr(node) + (1 + d) * kWordBytes,
                              TxValue(target));
            co_await tx.store(nodeAddr(node), TxValue(d + 1));
            co_return TxValue(1);
        }
        co_return TxValue(0);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _edges * tid / nt;
        Word hi = _edges * (tid + 1) / nt;

        // Kernel phases: edge construction split into rounds with a
        // barrier each (uneven work per round -> barrier stalls).
        for (unsigned round = 0; round < kRounds; ++round) {
            Word rlo = lo + (hi - lo) * round / kRounds;
            Word rhi = lo + (hi - lo) * (round + 1) / kRounds;
            for (Word e = rlo; e < rhi; ++e) {
                // Deterministic scattered endpoints: every access a
                // fresh block -> cache miss.
                Word node = ds::hashKey(e * 2654435761ull) % _nodes;
                Word target = ds::hashKey(e + 17) % _nodes;
                for (;;) {
                    TxValue ok = co_await ctx.txn(
                        [this, node, target](Tx &tx) {
                            return addEdge(tx, node, target);
                        });
                    if (ok.raw() == 1)
                        break;
                    node = (node + 1) % _nodes; // Slot full: spill.
                }
                co_await ctx.work(
                    20 + ctx.rng().below(150)); // Kernel bookkeeping.
            }
            co_await ctx.barrier();
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeSsca2(const WorkloadParams &p)
{
    return std::make_unique<Ssca2Workload>(p);
}

} // namespace retcon::workloads
