/**
 * @file
 * vacation / vacation_opt / vacation_opt-sz (Table 2): travel
 * reservation system.
 *
 * Client transactions look up resources (cars/rooms/flights), check and
 * decrement availability, and record the reservation in a customer
 * map. The base variant stores tables in red-black trees (rebalancing
 * near the root aborts concurrent clients) and packs resource records
 * eight per coherence block (false sharing — the conflicts lazy-vb's
 * value-based detection removes, per §5.2 "the lazy-vb variant ...
 * experiences a significant speedup over the baseline only on vacation
 * and vacation_opt-sz"). The _opt variants use a hashtable customer
 * map: fixed (scales) or resizable (size-field conflicts RETCON
 * repairs).
 */

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class VacationWorkload : public Workload
{
  public:
    VacationWorkload(const WorkloadParams &p, VacationVariant v)
        : _p(p), _variant(v)
    {
        _tasks = _p.scaled(1536, 64);
        _resources = _p.scaled(512, 32);
    }

    std::string
    name() const override
    {
        switch (_variant) {
          case VacationVariant::Base: return "vacation";
          case VacationVariant::Opt: return "vacation_opt";
          case VacationVariant::OptSz: return "vacation_opt-sz";
        }
        return "vacation";
    }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());

        // Resource records: [0] availability, packed 8 per block
        // (false sharing by design, as in the original allocation
        // pattern).
        _resourceBase = _alloc->allocShared(_resources * kWordBytes);
        for (Word r = 0; r < _resources; ++r)
            mem.writeWord(resourceAddr(r), kInitialAvail);

        // Resource directory + customer reservation map. The maps
        // carry existing bookings (a warmed-up reservation system),
        // so new inserts land deep and rebalancing stays local.
        if (_variant == VacationVariant::Base) {
            _dirTree = ds::SimRBTree::create(mem, *_alloc);
            _custTree = ds::SimRBTree::create(mem, *_alloc);
            for (Word r = 0; r < _resources; ++r)
                _dirTree.hostInsert(mem, r, resourceAddr(r));
            for (Word w = 1; w <= 2 * _tasks; ++w)
                _custTree.hostInsert(mem,
                                     ds::hashKey(w + (Word(1) << 40)),
                                     w);
        } else {
            bool resizable = _variant == VacationVariant::OptSz;
            _dirHt = ds::SimHashtable::create(mem, *_alloc, 1024, false);
            _custHt = ds::SimHashtable::create(
                mem, *_alloc, resizable ? 1024 : 2048, resizable);
            for (Word r = 0; r < _resources; ++r)
                _dirHt.hostInsert(mem, r, resourceAddr(r));
            for (Word w = 1; w <= 2 * _tasks; ++w)
                _custHt.hostInsert(mem,
                                   ds::hashKey(w + (Word(1) << 40)), w);
        }
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();
        Word sold = 0;
        for (Word r = 0; r < _resources; ++r) {
            Word avail = mem.readWord(resourceAddr(r));
            if (avail > kInitialAvail)
                return {false, "availability increased"};
            sold += kInitialAvail - avail;
        }
        Word booked = (_variant == VacationVariant::Base
                           ? _custTree.hostCount(mem)
                           : _custHt.hostCountNodes(mem)) -
                      2 * _tasks; // Minus the warmup bookings.
        if (sold != booked) {
            return {false, "sold " + std::to_string(sold) +
                               " units but booked " +
                               std::to_string(booked)};
        }
        if (_variant == VacationVariant::Base &&
            (!_dirTree.hostCheckInvariants(mem) ||
             !_custTree.hostCheckInvariants(mem)))
            return {false, "red-black invariants violated"};
        return {true, ""};
    }

  private:
    static constexpr Word kInitialAvail = 100;

    WorkloadParams _p;
    VacationVariant _variant;
    Word _tasks;
    Word _resources;
    std::unique_ptr<ds::SimAllocator> _alloc;
    Addr _resourceBase = 0;
    ds::SimRBTree _dirTree, _custTree;
    ds::SimHashtable _dirHt, _custHt;

    Addr
    resourceAddr(Word r) const
    {
        return _resourceBase + r * kWordBytes;
    }

    /** One client request: queries, one reservation, one booking. */
    Task<TxValue>
    makeReservation(Tx &tx, unsigned tid, Word customer, Word r0,
                    Word r1, Word r2, bool reserve)
    {
        // Browse: look up several resources in the directory.
        for (Word r : {r0, r1, r2}) {
            TxValue rec = _variant == VacationVariant::Base
                              ? co_await _dirTree.lookup(tx, r)
                              : co_await _dirHt.lookup(tx, r);
            (void)rec;
            co_await tx.work(250); // Price comparison.
        }
        if (!reserve)
            co_return TxValue(0); // Query-only session.

        // Reserve r0: availability check + decrement.
        TxValue avail = co_await tx.load(resourceAddr(r0));
        if (tx.cmp(avail, rtc::CmpOp::LE, 0))
            co_return TxValue(0); // Sold out.
        co_await tx.store(resourceAddr(r0), tx.sub(avail, 1));

        // Book: record the reservation under this customer.
        TxValue ins =
            _variant == VacationVariant::Base
                ? co_await _custTree.insert(tx, tid,
                                            ds::hashKey(customer), r0)
                : co_await _custHt.insert(tx, tid,
                                          ds::hashKey(customer), r0);
        if (tx.cmpv(ins, rtc::CmpOp::EQ, TxValue(0))) {
            // Duplicate booking id: undo the decrement (stay
            // consistent; ids are unique so this is cold).
            TxValue a2 = co_await tx.load(resourceAddr(r0));
            co_await tx.store(resourceAddr(r0), tx.add(a2, 1));
            co_return TxValue(0);
        }
        co_return TxValue(1);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _tasks * tid / nt;
        Word hi = _tasks * (tid + 1) / nt;

        for (Word t = lo; t < hi; ++t) {
            Word customer = t + 1; // Unique booking id.
            Word r0 = ctx.rng().below(_resources);
            Word r1 = ctx.rng().below(_resources);
            Word r2 = ctx.rng().below(_resources);
            bool reserve = ctx.rng().chance(35, 100);
            co_await ctx.txn(
                [this, &ctx, customer, r0, r1, r2, reserve](Tx &tx) {
                    return makeReservation(tx, ctx.tid(), customer, r0,
                                           r1, r2, reserve);
                });
            co_await ctx.work(300); // Client think time.
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeVacation(const WorkloadParams &p, VacationVariant v)
{
    return std::make_unique<VacationWorkload>(p, v);
}

} // namespace retcon::workloads
