/**
 * @file
 * kmeans (Table 2): partition-based clustering.
 *
 * Threads assign their slice of points to the nearest of K centers and
 * accumulate point coordinates into shared per-cluster accumulators
 * inside transactions. The accumulator updates are *floating-point*
 * adds, which RETCON does not track symbolically (they pin their inputs
 * with equality constraints), so — matching Figure 9 — RETCON does not
 * change kmeans' behaviour: conflicts on the shared centers remain.
 */

#include <cmath>

#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class KmeansWorkload : public Workload
{
  public:
    explicit KmeansWorkload(const WorkloadParams &p) : _p(p)
    {
        _points = _p.scaled(2048, 64);
    }

    std::string name() const override { return "kmeans"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());

        // Point coordinates (read-only during the run).
        Xoshiro rng(_p.seed * 77 + 5);
        _pointBase = _alloc->allocShared(_points * kDims * kWordBytes);
        for (Word i = 0; i < _points * kDims; ++i)
            mem.writeWord(_pointBase + i * kWordBytes,
                          toBits(rng.uniform() * 100.0));

        // Cluster accumulators: kDims float sums + a count word, one
        // block-aligned record per cluster.
        _centerBase = _alloc->allocShared(kClusters * 2 * kBlockBytes);
        for (Word c = 0; c < kClusters; ++c) {
            for (unsigned d = 0; d < kDims; ++d)
                mem.writeWord(centerSum(c, d), toBits(0.0));
            mem.writeWord(centerCount(c), 0);
        }
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();
        Word total = 0;
        double sum = 0;
        for (Word c = 0; c < kClusters; ++c) {
            total += mem.readWord(centerCount(c));
            for (unsigned d = 0; d < kDims; ++d)
                sum += fromBits(mem.readWord(centerSum(c, d)));
        }
        Word expect = _points * kIterations;
        if (total != expect) {
            return {false, "assigned " + std::to_string(total) +
                               " points, expected " +
                               std::to_string(expect)};
        }
        // The coordinate sums must equal the (order-independent) sum
        // of all assigned points' coordinates.
        double expect_sum = 0;
        for (Word i = 0; i < _points * kDims; ++i)
            expect_sum += fromBits(
                mem.readWord(_pointBase + i * kWordBytes));
        expect_sum *= kIterations;
        if (std::abs(sum - expect_sum) > 1e-6 * (1.0 + expect_sum))
            return {false, "coordinate sums diverged"};
        return {true, ""};
    }

  private:
    static constexpr Word kClusters = 12;
    static constexpr unsigned kDims = 4;
    static constexpr unsigned kIterations = 2;

    WorkloadParams _p;
    Word _points;
    std::unique_ptr<ds::SimAllocator> _alloc;
    Addr _pointBase = 0;
    Addr _centerBase = 0;

    static Word
    toBits(double d)
    {
        Word w;
        __builtin_memcpy(&w, &d, 8);
        return w;
    }
    static double
    fromBits(Word w)
    {
        double d;
        __builtin_memcpy(&d, &w, 8);
        return d;
    }

    Addr
    centerSum(Word c, unsigned d) const
    {
        return _centerBase + c * 2 * kBlockBytes + d * kWordBytes;
    }
    Addr
    centerCount(Word c) const
    {
        return _centerBase + c * 2 * kBlockBytes + kDims * kWordBytes;
    }

    Addr
    pointAddr(Word i, unsigned d) const
    {
        return _pointBase + (i * kDims + d) * kWordBytes;
    }

    Task<TxValue>
    accumulate(Tx &tx, Word cluster, Word point)
    {
        for (unsigned d = 0; d < kDims; ++d) {
            TxValue coord = co_await tx.load(pointAddr(point, d));
            TxValue sum = co_await tx.load(centerSum(cluster, d));
            TxValue next = tx.fop(sum, coord,
                                  [](double a, double b) { return a + b; });
            co_await tx.store(centerSum(cluster, d), next);
        }
        TxValue cnt = co_await tx.load(centerCount(cluster));
        co_await tx.store(centerCount(cluster), tx.add(cnt, 1));
        co_return TxValue(0);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _points * tid / nt;
        Word hi = _points * (tid + 1) / nt;

        for (unsigned iter = 0; iter < kIterations; ++iter) {
            for (Word i = lo; i < hi; ++i) {
                // Nearest-center search: private compute over the
                // point (the real distance loop), modeled as work.
                co_await ctx.work(250);
                Word cluster =
                    ds::hashKey(i * 31 + iter) % kClusters;
                co_await ctx.txn([this, cluster, i](Tx &tx) {
                    return accumulate(tx, cluster, i);
                });
            }
            co_await ctx.barrier();
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(const WorkloadParams &p)
{
    return std::make_unique<KmeansWorkload>(p);
}

} // namespace retcon::workloads
