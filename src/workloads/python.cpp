/**
 * @file
 * python / python_opt (Table 2): the transactionalized CPython
 * interpreter under speculative lock elision of the GIL.
 *
 * Each transaction is one interpretation quantum: a batch of bytecodes
 * executed while "holding" the elided global interpreter lock. Every
 * bytecode touches the reference counts of globally shared objects
 * (small ints, interned strings, module globals) — balanced
 * incref/decref pairs, the flagship RETCON-repairable conflict.
 *
 * The unoptimized variant additionally reads *and writes* shared
 * interpreter globals that are conceptually thread-private (the paper:
 * "global variables that are conceptually thread-private but were not
 * made so"), and the read value feeds address computation — an
 * unrepairable pattern that keeps base python at sequential speed. The
 * _opt variant applies the paper's `__thread` restructuring, making
 * those globals per-thread.
 */

#include "ds/refcount.hpp"
#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class PythonWorkload : public Workload
{
  public:
    PythonWorkload(const WorkloadParams &p, bool opt) : _p(p), _opt(opt)
    {
        _quanta = _p.scaled(768, 64);
    }

    std::string
    name() const override
    {
        return _opt ? "python_opt" : "python";
    }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        unsigned nt = cluster.numThreads();
        _alloc = std::make_unique<ds::SimAllocator>(kHeapBase,
                                                    _p.arena(), nt);

        // Shared singletons (small ints, interned strings, ...).
        _objects.clear();
        for (Word i = 0; i < kSharedObjects; ++i)
            _objects.push_back(ds::makeRefCounted(mem, *_alloc, 4,
                                                  kInitialRefs));

        // Interpreter state globals. Unopt: one shared block whose
        // word is a pointer consumed as an address. Opt: per-thread
        // copies (the __thread restructuring).
        _globals.clear();
        unsigned nglobals = _opt ? nt : 1;
        for (unsigned g = 0; g < nglobals; ++g) {
            Addr global = _alloc->allocShared(kBlockBytes);
            mem.writeWord(global, _objects[g % kSharedObjects]);
            _globals.push_back(global);
        }
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        // Every quantum's incref/decref pairs are balanced, so all
        // refcounts must end at their initial value — the refcount
        // machinery is exact under every TM mode.
        const auto &mem = cluster.memory();
        for (Word i = 0; i < kSharedObjects; ++i) {
            Word rc = mem.readWord(_objects[i]);
            if (rc != kInitialRefs) {
                return {false, "object " + std::to_string(i) +
                                   " refcount " + std::to_string(rc) +
                                   " != " +
                                   std::to_string(kInitialRefs)};
            }
        }
        // The shared global must still point at a live object.
        Addr g = mem.readWord(_globals[0]);
        for (Addr obj : _objects)
            if (obj == g)
                return {true, ""};
        return {false, "interpreter global corrupted"};
    }

  private:
    static constexpr Word kSharedObjects = 128;
    static constexpr Word kInitialRefs = 1000;
    static constexpr unsigned kBytecodesPerQuantum = 24;

    WorkloadParams _p;
    bool _opt;
    Word _quanta;
    std::unique_ptr<ds::SimAllocator> _alloc;
    std::vector<Addr> _objects;
    std::vector<Addr> _globals;

    /** One interpretation quantum (one GIL-elided critical section). */
    Task<TxValue>
    quantum(Tx &tx, unsigned tid, Word qid)
    {
        Addr global = _globals[_opt ? tid : 0];

        for (unsigned b = 0; b < kBytecodesPerQuantum; ++b) {
            Word pick = ds::hashKey(qid * 8 + b % 6) % kSharedObjects;
            Addr obj = _objects[pick];

            // Operand fetch: bump the operand's refcount.
            co_await ds::incref(tx, obj);

            // Dispatch + execute the bytecode (the paper's
            // python quanta are tens of thousands of cycles,
            // Table 3: commit stall is <1% of lifetime).
            co_await tx.work(600);

            if (!_opt && b == 0) {
                // Unopt: consult and update the shared interpreter
                // global. The loaded pointer indexes memory (equality
                // constraint) and the store makes the block eagerly
                // contended — RETCON cannot repair this quantum.
                TxValue gptr = co_await tx.load(global);
                Addr frame_obj = tx.reify(gptr);
                co_await tx.load(frame_obj + kWordBytes); // Peek state.
                Word next =
                    _objects[ds::hashKey(qid + b) % kSharedObjects];
                co_await tx.store(global, TxValue(next));
            }

            // Operand release: balanced decref.
            co_await ds::decref(tx, obj);
        }
        co_return TxValue(0);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _quanta * tid / nt;
        Word hi = _quanta * (tid + 1) / nt;

        for (Word q = lo; q < hi; ++q) {
            co_await ctx.txn([this, &ctx, q](Tx &tx) {
                return quantum(tx, ctx.tid(), q);
            });
            // GIL-free work between quanta (I/O checks, etc.).
            co_await ctx.work(100);
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makePython(const WorkloadParams &p, bool opt)
{
    return std::make_unique<PythonWorkload>(p, opt);
}

} // namespace retcon::workloads
