#include "workloads/workload.hpp"

#include "sim/logging.hpp"

namespace retcon::workloads {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "genome",       "genome-sz",       "intruder",
        "intruder_opt", "intruder_opt-sz", "kmeans",
        "labyrinth",    "ssca2",           "vacation",
        "vacation_opt", "vacation_opt-sz", "yada",
        "python",       "python_opt",      "bayes",
    };
    return names;
}

const std::vector<std::string> &
extendedWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = workloadNames();
        all.push_back("service");
        return all;
    }();
    return names;
}

const std::vector<std::string> &
baseWorkloadNames()
{
    static const std::vector<std::string> names = {
        "genome", "intruder", "kmeans",  "labyrinth",
        "ssca2",  "vacation", "yada",    "python",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "genome")
        return makeGenome(params, false);
    if (name == "genome-sz")
        return makeGenome(params, true);
    if (name == "intruder")
        return makeIntruder(params, IntruderVariant::Base);
    if (name == "intruder_opt")
        return makeIntruder(params, IntruderVariant::Opt);
    if (name == "intruder_opt-sz")
        return makeIntruder(params, IntruderVariant::OptSz);
    if (name == "kmeans")
        return makeKmeans(params);
    if (name == "labyrinth")
        return makeLabyrinth(params);
    if (name == "ssca2")
        return makeSsca2(params);
    if (name == "vacation")
        return makeVacation(params, VacationVariant::Base);
    if (name == "vacation_opt")
        return makeVacation(params, VacationVariant::Opt);
    if (name == "vacation_opt-sz")
        return makeVacation(params, VacationVariant::OptSz);
    if (name == "yada")
        return makeYada(params);
    if (name == "python")
        return makePython(params, false);
    if (name == "python_opt")
        return makePython(params, true);
    if (name == "bayes")
        return makeBayes(params);
    if (name == "service")
        return makeService(params);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace retcon::workloads
