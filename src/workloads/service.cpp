/**
 * @file
 * service: a long-running web-service request loop (not in Table 2 —
 * the ROADMAP's service-style workload for the sharded cluster).
 *
 * Each simulated thread is a worker serving a stream of requests
 * against shared state that mirrors a small web backend:
 *
 *  - a per-key hit-counter array indexed by a Zipfian-skewed key
 *    (YCSB theta = 0.99): the hottest keys live on a handful of
 *    coherence blocks, so their `load; add 1; store` updates are
 *    exactly the symbolic adds RETCON repairs instead of replaying;
 *  - a resizable session hashtable (the paper's flagship repairable
 *    size-word conflict) taking unique-session inserts;
 *  - a shared work queue (intruder-style pointer contention that
 *    repair cannot help — §5.4) taking a trickle of enqueued jobs
 *    drained by worker dequeues;
 *
 * Workload-side partitioning (WorkloadParams::servicePartitions, P):
 * the session hashtable splits into P partition tables (worker t
 * serves partition t mod P) and the work queue into P per-request-
 * class queues (a job of payload v belongs to class v mod P; worker t
 * drains class t mod P). Partitioning is how real services break
 * exactly the conflicts RETCON cannot repair — the queue's head/tail
 * pointer contention (§5.4) — while the repairable counter conflicts
 * stay shared. P = 1 reproduces the unpartitioned layout
 * bit-for-bit: same allocation order, same addresses, same request
 * stream (partition selection draws no randomness);
 *  - striped stats counters (hits, inserts, queue traffic) updated
 *    transactionally on every request. Striping (worker t uses stripe
 *    t mod 8, summed at validation) mirrors how real services shard
 *    their metrics: the stripes stay contended enough to exercise
 *    repair without serializing every request through one block.
 *
 * Request mix: 55% page views, 25% session creates, 12% job
 * enqueues, 8% job dequeues.
 *
 * Validation is conservation-based and interleaving-independent, so
 * it holds for any shard count, dispatch bandwidth, or TM mode: every
 * committed counter must match host-side request accounting, the
 * session table must hold exactly the warmup plus successful inserts,
 * and queue payloads must balance (prefill + enqueued = dequeued +
 * still queued, by count and by payload sum).
 */

#include <optional>

#include "ds/hashtable.hpp"
#include "ds/queue.hpp"
#include "scenario/arrivals.hpp"
#include "scenario/scenario.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class ServiceWorkload : public Workload
{
  public:
    explicit ServiceWorkload(const WorkloadParams &p) : _p(p)
    {
        _keys = _p.scaled(192, 16);
        _requests = _p.scaled(1600, 64);
        _warmSessions = _p.scaled(48, 8);
        _parts = _p.servicePartitions < 1 ? 1 : _p.servicePartitions;
        _clusters = _p.clusters < 1 ? 1 : _p.clusters;
        // Per-mille routing probability; the draw itself is gated on
        // a fleet being present so clusters == 1 stays bit-identical.
        _xcPermille = static_cast<Word>(
            _p.crossClusterFraction * 1000.0 + 0.5);
    }

    std::string name() const override { return "service"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        static_assert(kHeapBase == net::kClusterRegionBase,
                      "cluster heap regions must start at the "
                      "workload heap base");
        // A cluster's allocator spans one arena per (fleet-wide)
        // thread plus the shared setup arena; regions must not
        // overlap or one cluster's nodes clobber another's state.
        sim_assert((cluster.numThreads() + 1) * _p.arena() <=
                       net::kClusterRegionBytes,
                   "cluster heap region too small for %u thread arenas",
                   cluster.numThreads());

        // One full state set per cluster, allocated in that cluster's
        // heap region so it homes on that cluster's directory banks.
        // With one cluster this is exactly the pre-fleet layout (same
        // allocator, same allocation order, same addresses).
        _allocs.clear();
        _statsBase.clear();
        _hitsBase.clear();
        _sessions.clear();
        _jobs.clear();
        _prefillSum = 0;
        for (unsigned cl = 0; cl < _clusters; ++cl) {
            _allocs.push_back(std::make_unique<ds::SimAllocator>(
                net::FleetTopology::regionBase(cl), _p.arena(),
                cluster.numThreads()));
            ds::SimAllocator &alloc = *_allocs.back();

            // Striped stats: six counters per stripe, one stripe per
            // coherence block. Threads sharing a stripe still
            // conflict (and RETCON repairs those adds); threads on
            // different stripes proceed in parallel.
            _statsBase.push_back(
                alloc.allocShared(kStatStripes * kBlockBytes));
            for (unsigned s = 0; s < kStatStripes; ++s)
                for (unsigned i = 0; i < 6; ++i)
                    mem.writeWord(statAddr(cl, s, i), 0);

            // Per-key hit counters, packed (hot Zipfian head shares
            // blocks; the predictor learns them fast).
            _hitsBase.push_back(alloc.allocShared(_keys * kWordBytes));
            for (Word k = 0; k < _keys; ++k)
                mem.writeWord(hitAddr(cl, k), 0);

            // Session tables: P partitions, each small and resizable
            // so the size words cross their thresholds under load
            // (commit-time repaired growth). Warm sessions spread
            // across partitions round-robin; warm keys are salted by
            // cluster so every warm session is globally unique.
            for (unsigned part = 0; part < _parts; ++part)
                _sessions.push_back(
                    ds::SimHashtable::create(mem, alloc, 8, true));
            for (Word w = 0; w < _warmSessions; ++w)
                _sessions[cl * _parts + w % _parts].hostInsert(
                    mem, sessionKey(kWarmTid + cl, w), w);

            // Per-class work queues with a small standing backlog
            // spread over the classes. Prefilled payload i+1 must
            // live in its class queue ((i+1) mod P) or a class
            // drainer could never reach it.
            for (unsigned part = 0; part < _parts; ++part)
                _jobs.push_back(ds::SimQueue::create(mem, alloc));
            for (Word i = 0; i < kPrefill; ++i) {
                _jobs[cl * _parts + (i + 1) % _parts].hostEnqueue(
                    mem, i + 1);
                _prefillSum += i + 1;
            }
        }

        _viewOps = _insertOps = _insertOk = 0;
        _enqOps = _enqSum = _deqOk = _deqSum = 0;
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();

        // All sums run fleet-wide — over every cluster's stripes,
        // counters, tables, and queues — so conservation holds for
        // any clusters x shards x banks x partitions point, including
        // requests that committed against a remote cluster's state.

        // 1. Page views: the striped counters and the per-key counters
        //    must both account for every committed view exactly once.
        if (stripedSum(mem, kHits) != _viewOps)
            return {false, "hit counter diverged from request count"};
        Word perKey = 0;
        for (unsigned cl = 0; cl < _clusters; ++cl)
            for (Word k = 0; k < _keys; ++k)
                perKey += mem.readWord(hitAddr(cl, k));
        if (perKey != _viewOps)
            return {false, "per-key hit counters diverged"};

        // 2. Sessions: unique keys, so every insert must succeed and
        //    land exactly once. The count conserves across partition
        //    tables (sums are interleaving-independent, so this holds
        //    for any shards x banks x partitions point).
        if (_insertOk != _insertOps)
            return {false, "a unique session insert was rejected"};
        if (stripedSum(mem, kInserts) != _insertOk)
            return {false, "session counter diverged"};
        Word nodes = 0;
        for (const ds::SimHashtable &t : _sessions)
            nodes += t.hostCountNodes(mem);
        if (nodes != _warmSessions * _clusters + _insertOk)
            return {false, "session tables lost or duplicated nodes"};

        // 3. Queue conservation across all class queues, by count and
        //    by payload sum.
        if (stripedSum(mem, kEnqueued) != _enqOps ||
            stripedSum(mem, kEnqSum) != _enqSum)
            return {false, "enqueue counters diverged"};
        if (stripedSum(mem, kDequeued) != _deqOk ||
            stripedSum(mem, kDeqSum) != _deqSum)
            return {false, "dequeue counters diverged"};
        Word queued = 0, remaining = 0;
        for (const ds::SimQueue &q : _jobs) {
            queued += q.hostCount(mem);
            remaining += hostQueuePayloadSum(mem, q);
        }
        if (kPrefill * _clusters + _enqOps != _deqOk + queued)
            return {false, "queue job count not conserved"};
        if (_prefillSum + _enqSum != _deqSum + remaining)
            return {false, "queue payload sum not conserved"};
        return {true, ""};
    }

  private:
    /// Stats-stripe word indices.
    static constexpr unsigned kHits = 0;
    static constexpr unsigned kInserts = 1;
    static constexpr unsigned kEnqueued = 2;
    static constexpr unsigned kDequeued = 3;
    static constexpr unsigned kEnqSum = 4;
    static constexpr unsigned kDeqSum = 5;

    /// Metric stripes (one coherence block each; worker t -> t mod 8).
    static constexpr unsigned kStatStripes = 8;

    static constexpr Word kPrefill = 8;
    /// Warmup sessions use a tid no worker thread can have.
    static constexpr Word kWarmTid = 0xffff;

    WorkloadParams _p;
    Word _keys, _requests, _warmSessions;
    unsigned _parts = 1;
    unsigned _clusters = 1;
    Word _xcPermille = 0;
    /// Per-cluster state sets (index cl, or cl * _parts + part).
    std::vector<std::unique_ptr<ds::SimAllocator>> _allocs;
    std::vector<Addr> _statsBase;
    std::vector<Addr> _hitsBase;
    std::vector<ds::SimHashtable> _sessions; ///< Partition tables.
    std::vector<ds::SimQueue> _jobs;         ///< Request-class queues.
    Word _prefillSum = 0;

    // Host-side request accounting (single host thread; coroutines
    // interleave but never race). Deterministic for a fixed seed.
    Word _viewOps = 0;
    Word _insertOps = 0, _insertOk = 0;
    Word _enqOps = 0, _enqSum = 0;
    Word _deqOk = 0, _deqSum = 0;

    Addr
    statAddr(unsigned cl, unsigned stripe, unsigned i) const
    {
        return _statsBase[cl] + stripe * kBlockBytes + i * kWordBytes;
    }

    Word
    stripedSum(const mem::SparseMemory &mem, unsigned i) const
    {
        Word sum = 0;
        for (unsigned cl = 0; cl < _clusters; ++cl)
            for (unsigned s = 0; s < kStatStripes; ++s)
                sum += mem.readWord(statAddr(cl, s, i));
        return sum;
    }

    static unsigned stripeOf(unsigned tid) { return tid % kStatStripes; }

    Addr
    hitAddr(unsigned cl, Word k) const
    {
        return _hitsBase[cl] + k * kWordBytes;
    }

    /** Unique session key: disjoint per tid, hashed to spread chains. */
    static Word
    sessionKey(Word tid, Word n)
    {
        return ds::hashKey(((tid + 1) << 32) | n);
    }

    Word
    hostQueuePayloadSum(const mem::SparseMemory &mem,
                        const ds::SimQueue &q) const
    {
        Word sum = 0;
        Addr node = mem.readWord(q.base() +
                                 ds::SimQueue::kHead * kWordBytes);
        while (node != 0) {
            sum += mem.readWord(node +
                                ds::SimQueue::kNodePayload * kWordBytes);
            node = mem.readWord(node +
                                ds::SimQueue::kNodeNext * kWordBytes);
        }
        return sum;
    }

    /** 55%: page view — bump the key's counter and the stripe's.
     *  Always home-cluster state. */
    Task<TxValue>
    viewBody(Tx &tx, unsigned home, unsigned stripe, Word key)
    {
        TxValue h = co_await tx.load(hitAddr(home, key));
        co_await tx.store(hitAddr(home, key), tx.add(h, 1));
        TxValue total = co_await tx.load(statAddr(home, stripe, kHits));
        co_await tx.store(statAddr(home, stripe, kHits),
                          tx.add(total, 1));
        co_return TxValue(1);
    }

    /** 25%: session create — unique insert into @p target cluster's
     *  partition table + home-stripe counter. A cross-cluster route
     *  makes one transaction span two clusters' state, so its commit
     *  needs tokens on both sides of the wire. */
    Task<TxValue>
    sessionBody(Tx &tx, unsigned tid, unsigned home, unsigned target,
                Word key, Word value)
    {
        unsigned stripe = stripeOf(tid);
        TxValue ins = co_await _sessions[target * _parts + tid % _parts]
                          .insert(tx, tid, key, value);
        TxValue cnt =
            co_await tx.load(statAddr(home, stripe, kInserts));
        co_await tx.store(statAddr(home, stripe, kInserts),
                          tx.addv(cnt, ins));
        co_return ins;
    }

    /** 12%: enqueue a job carrying the requested key as payload, into
     *  @p target cluster's request-class queue (payload mod P). */
    Task<TxValue>
    enqueueBody(Tx &tx, unsigned tid, unsigned home, unsigned target,
                Word payload)
    {
        unsigned stripe = stripeOf(tid);
        co_await _jobs[target * _parts + payload % _parts].enqueue(
            tx, tid, payload);
        TxValue n = co_await tx.load(statAddr(home, stripe, kEnqueued));
        co_await tx.store(statAddr(home, stripe, kEnqueued),
                          tx.add(n, 1));
        TxValue s = co_await tx.load(statAddr(home, stripe, kEnqSum));
        co_await tx.store(statAddr(home, stripe, kEnqSum),
                          tx.add(s, static_cast<std::int64_t>(payload)));
        co_return TxValue(1);
    }

    /** 8%: drain one job from @p target cluster's class queue;
     *  counters only when one was present. */
    Task<TxValue>
    dequeueBody(Tx &tx, unsigned tid, unsigned home, unsigned target)
    {
        unsigned stripe = stripeOf(tid);
        TxValue got =
            co_await _jobs[target * _parts + tid % _parts].dequeue(tx);
        if (tx.cmpv(got, rtc::CmpOp::EQ, TxValue(0)))
            co_return TxValue(0);
        Word payload = tx.reify(got) - 1;
        TxValue n = co_await tx.load(statAddr(home, stripe, kDequeued));
        co_await tx.store(statAddr(home, stripe, kDequeued),
                          tx.add(n, 1));
        TxValue s = co_await tx.load(statAddr(home, stripe, kDeqSum));
        co_await tx.store(statAddr(home, stripe, kDeqSum),
                          tx.add(s, static_cast<std::int64_t>(payload)));
        co_return TxValue(payload + 1);
    }

    /**
     * Route one session/queue request: the worker's home cluster,
     * or — with probability crossClusterFraction in a fleet — a
     * uniformly-chosen remote cluster. The draw only happens when a
     * fleet is present AND the fraction is nonzero, so single-cluster
     * runs (and fully-partitioned fleet runs) consume exactly the
     * pre-fleet RNG stream.
     */
    unsigned
    route(WorkerCtx &ctx, unsigned home)
    {
        if (_clusters <= 1 || _xcPermille == 0)
            return home;
        if (ctx.rng().below(1000) >= _xcPermille)
            return home;
        auto o = static_cast<unsigned>(ctx.rng().below(_clusters - 1));
        return o >= home ? o + 1 : o;
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        unsigned home = tid / (nt / _clusters); ///< Cluster-contiguous.
        Word lo = _requests * tid / nt;
        Word hi = _requests * (tid + 1) / nt;
        Word span = hi - lo;
        Zipfian zipf(_keys);
        Word nextSession = 0;
        Word phase = 0; ///< Last phase/quarter annotated (0 = none).

        // Scenario drive (src/scenario/): null plan = the stationary
        // closed loop, bit-identical to pre-scenario behaviour (no
        // extra draws, no extra waits). Open-loop plans replace the
        // closed loop's think-time gap with a modeled arrival queue;
        // shift plans rotate the mix / migrate the hotset per phase;
        // the core-stall fault freezes victim cores through its
        // windows. All of it is a function of (seed, cycle, tid).
        scenario::Runtime *rt = _p.scenario;
        const scenario::Plan *plan = rt ? &rt->plan() : nullptr;
        bool openLoop = plan && plan->arrival.open();
        unsigned phases =
            plan && plan->shift.phases > 1 ? plan->shift.phases : 0;
        bool stalls = rt && rt->stallsCore(tid);
        scenario::Runtime::Stats wstats;
        std::optional<scenario::ArrivalSource> src;
        if (openLoop)
            src.emplace(*rt, _p.seed, tid, span);

        Word served = 0;
        while (true) {
            // A stalled core sleeps through the fault window before
            // touching its queue — arrivals pile up behind it exactly
            // like behind a hung shard.
            if (stalls) {
                Cycle w = rt->stallWait(ctx.now());
                if (w > 0) {
                    ++wstats.stallHits;
                    wstats.stallCycles += w;
                    co_await ctx.work(w);
                }
            }
            if (openLoop) {
                auto nx = src->pull(ctx.now());
                if (nx.kind == scenario::ArrivalSource::Next::Done)
                    break;
                if (nx.kind == scenario::ArrivalSource::Next::Wait) {
                    co_await ctx.work(nx.at - ctx.now());
                    continue;
                }
            } else if (served == span) {
                break;
            }
            Word t = lo + served;
            Word idx = served;
            ++served;
            // Phase marks. Scenario shift phases take precedence over
            // the legacy --annotate-phases quarters; both split the
            // worker's request slots evenly and annotate boundaries
            // with ids 1..N. Annotation-only in the legacy/stationary
            // case — consumes no randomness and no simulated time, so
            // runs with the flag off are bit-identical to runs that
            // never had it.
            Word curPhase = 0;
            if (phases != 0) {
                curPhase = idx * phases / span;
                Word q = curPhase + 1;
                if (q != phase) {
                    ctx.annotate(q);
                    ++wstats.phaseMarks;
                    phase = q;
                }
            } else if (_p.annotatePhases) {
                Word q = 1 + idx * 4 / span;
                if (q != phase) {
                    ctx.annotate(q);
                    phase = q;
                }
            }
            Word key = zipf.next(ctx.rng());
            if (plan && plan->shift.migrateHotset && curPhase != 0)
                key = (key + curPhase * (_keys / phases)) % _keys;
            Word op = ctx.rng().below(100);
            if (plan && plan->shift.rotateMix && curPhase != 0)
                op = rotateOpClass(op, curPhase);
            if (op < 55) {
                ++_viewOps;
                unsigned stripe = stripeOf(tid);
                co_await ctx.txn([this, home, stripe, key](Tx &tx) {
                    return viewBody(tx, home, stripe, key);
                });
            } else if (op < 80) {
                ++_insertOps;
                Word skey = sessionKey(tid, nextSession++);
                unsigned target = route(ctx, home);
                TxValue ins = co_await ctx.txn(
                    [this, tid, home, target, skey, t](Tx &tx) {
                        return sessionBody(tx, tid, home, target, skey,
                                           t);
                    });
                _insertOk += ins.concrete();
            } else if (op < 92) {
                ++_enqOps;
                _enqSum += key + 1;
                unsigned target = route(ctx, home);
                co_await ctx.txn(
                    [this, tid, home, target, key](Tx &tx) {
                        return enqueueBody(tx, tid, home, target,
                                           key + 1);
                    });
            } else {
                unsigned target = route(ctx, home);
                TxValue got = co_await ctx.txn(
                    [this, tid, home, target](Tx &tx) {
                        return dequeueBody(tx, tid, home, target);
                    });
                if (got.concrete() != 0) {
                    ++_deqOk;
                    _deqSum += got.concrete() - 1;
                }
            }
            // Inter-request gap (closed loop only): a loaded server
            // turns requests around with little idle time, so
            // sustained event demand stays near the dispatch limit
            // the scalability bench models. Open-loop workers are
            // paced by the arrival process instead.
            if (!openLoop)
                co_await ctx.work(ctx.rng().range(20, 60));
        }
        if (rt) {
            rt->recordWorker(wstats);
            if (src)
                rt->recordWorker(src->stats());
        }
        co_await ctx.barrier();
    }

    /**
     * Rotate the request-class mix by @p phase classes: the draw
     * keeps its base-mix share boundaries (55/25/12/8), but which
     * operation owns which share shifts — e.g. phase 1 gives the
     * view share to dequeues. Bijective on draws, so a fixed seed
     * serves the same request slots with a shifted mix.
     */
    static Word
    rotateOpClass(Word op, Word phase)
    {
        static constexpr Word kBase[4] = {0, 55, 80, 92};
        static constexpr Word kWidth[4] = {55, 25, 12, 8};
        unsigned cls = op < 55 ? 0 : op < 80 ? 1 : op < 92 ? 2 : 3;
        auto target = static_cast<unsigned>((cls + phase) % 4);
        // Map into the target class's band, clamped to its width.
        Word within = op - kBase[cls];
        if (within >= kWidth[target])
            within = kWidth[target] - 1;
        return kBase[target] + within;
    }
};

} // namespace

std::unique_ptr<Workload>
makeService(const WorkloadParams &p)
{
    return std::make_unique<ServiceWorkload>(p);
}

} // namespace retcon::workloads
