/**
 * @file
 * yada (Table 2): Delaunay mesh refinement.
 *
 * Threads repeatedly pick bad mesh elements and refine their cavities,
 * chasing neighbour pointers through the shared mesh. The contended
 * values *are* the addresses of the traversal, so RETCON's equality
 * constraints fire whenever cavities overlap — the class of conflicts
 * §5.4 identifies as unrepairable (a different element selected at
 * commit would invalidate most of the transaction's work).
 */

#include "ds/mesh.hpp"
#include "ds/hashtable.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class YadaWorkload : public Workload
{
  public:
    explicit YadaWorkload(const WorkloadParams &p) : _p(p)
    {
        _meshNodes = _p.scaled(256, 64);
        _refinements = _p.scaled(768, 32);
    }

    std::string name() const override { return "yada"; }

    void
    setup(exec::Cluster &cluster) override
    {
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(
            kHeapBase, _p.arena(), cluster.numThreads());
        Xoshiro rng(_p.seed * 313 + 11);
        _mesh = ds::SimMesh::create(mem, *_alloc, _meshNodes, 40, rng);
        // Shared worklist cursor: every refinement claims its seed
        // from here. The loaded value *selects the element* (address
        // computation), the paper's exact example of an unrepairable
        // conflict: "a repair that involves selecting a different
        // list element at commit ... little savings over a full
        // abort" (§5.4).
        _worklist = _alloc->allocShared(kBlockBytes);
        mem.writeWord(_worklist, 0);
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        // Committed refinements report how many elements they touched;
        // the sum of epoch counters in the mesh must match exactly
        // (every committed touch is visible, no lost updates).
        const auto &mem = cluster.memory();
        Word epochs = 0;
        for (Word i = 0; i < _mesh.numNodes(); ++i)
            epochs += mem.readWord(_mesh.node(i) +
                                   ds::SimMesh::kEpoch * kWordBytes);
        if (epochs != _touchedTotal) {
            return {false, "epoch sum " + std::to_string(epochs) +
                               " != committed touches " +
                               std::to_string(_touchedTotal)};
        }
        if (_touchedTotal == 0)
            return {false, "no refinement committed"};
        return {true, ""};
    }

  private:
    WorkloadParams _p;
    Word _meshNodes;
    Word _refinements;
    std::unique_ptr<ds::SimAllocator> _alloc;
    ds::SimMesh _mesh;
    Addr _worklist = 0;
    Word _touchedTotal = 0;

    Task<TxValue>
    claimSeed(Tx &tx)
    {
        TxValue cursor = co_await tx.load(_worklist);
        Word idx = tx.reify(cursor); // Seed selection: address use.
        co_await tx.store(_worklist, TxValue(idx + 1));
        co_return TxValue(idx);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        if (ctx.tid() == 0)
            _touchedTotal = 0;
        co_await ctx.barrier();

        unsigned tid = ctx.tid();
        unsigned nt = ctx.nthreads();
        Word lo = _refinements * tid / nt;
        Word hi = _refinements * (tid + 1) / nt;

        for (Word r = lo; r < hi; ++r) {
            unsigned depth = 8 + r % 9;
            // Claim the next bad element from the shared worklist,
            // then refine its cavity. The cavity transaction's
            // conflicts are on mesh pointers consumed as addresses —
            // unrepairable (§5.4).
            TxValue idxv = co_await ctx.txn(
                [this](Tx &tx) { return claimSeed(tx); });
            Word seed = ds::hashKey(idxv.raw() * 9176 + 3) %
                        _mesh.numNodes();
            TxValue touched =
                co_await ctx.txn([this, seed, depth](Tx &tx) {
                    return _mesh.refine(tx, _mesh.node(seed), depth);
                });
            _touchedTotal += touched.raw();
            co_await ctx.work(60); // New-point insertion bookkeeping.
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeYada(const WorkloadParams &p)
{
    return std::make_unique<YadaWorkload>(p);
}

} // namespace retcon::workloads
