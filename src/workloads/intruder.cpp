/**
 * @file
 * intruder / intruder_opt / intruder_opt-sz (Table 2): network packet
 * intrusion detection.
 *
 * The pipeline dequeues packet fragments, reassembles flows in a shared
 * map, and enqueues complete flows for detection. The base variant uses
 * one highly contended input queue, one contended output queue, and a
 * red-black tree map — its queue head/tail pointers are consumed as
 * addresses, the conflict class RETCON cannot repair (§5.4). The _opt
 * variants apply the paper's restructuring: thread-private queues and a
 * hashtable map (fixed-size for _opt, resizable for _opt-sz, whose
 * size-field conflicts RETCON repairs).
 */

#include "ds/hashtable.hpp"
#include "ds/queue.hpp"
#include "ds/rbtree.hpp"
#include "workloads/workload.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;
using retcon::exec::WorkerCtx;

namespace retcon::workloads {

namespace {

class IntruderWorkload : public Workload
{
  public:
    IntruderWorkload(const WorkloadParams &p, IntruderVariant v)
        : _p(p), _variant(v)
    {
        _packets = _p.scaled(2048, 64);
        _packets -= _packets % kFragmentsPerFlow;
    }

    std::string
    name() const override
    {
        switch (_variant) {
          case IntruderVariant::Base: return "intruder";
          case IntruderVariant::Opt: return "intruder_opt";
          case IntruderVariant::OptSz: return "intruder_opt-sz";
        }
        return "intruder";
    }

    void
    setup(exec::Cluster &cluster) override
    {
        unsigned nt = cluster.numThreads();
        auto &mem = cluster.memory();
        _alloc = std::make_unique<ds::SimAllocator>(kHeapBase,
                                                    _p.arena(), nt);
        bool shared_queues = _variant == IntruderVariant::Base;
        unsigned nqueues = shared_queues ? 1 : nt;
        for (unsigned q = 0; q < nqueues; ++q) {
            _inQ.push_back(ds::SimQueue::create(mem, *_alloc));
            _outQ.push_back(ds::SimQueue::create(mem, *_alloc));
        }
        // Pre-fill input queues with packet ids round-robin.
        for (Word pkt = 1; pkt <= _packets; ++pkt)
            _inQ[pkt % nqueues].hostEnqueue(mem, pkt);

        if (_variant == IntruderVariant::Base) {
            _tree = ds::SimRBTree::create(mem, *_alloc);
            // Session table carries existing flow state, as after
            // warmup: inserts land deep, rebalancing stays local.
            for (Word w = 1; w <= 2 * _packets; ++w)
                _tree.hostInsert(mem, ds::hashKey(w) | 1, w);
        } else {
            bool resizable = _variant == IntruderVariant::OptSz;
            _ht = ds::SimHashtable::create(
                mem, *_alloc, resizable ? 1024 : 2048, resizable);
        }
    }

    exec::Core::ProgramFactory
    program() override
    {
        return [this](WorkerCtx &ctx) { return run(ctx); };
    }

    ValidationResult
    validate(exec::Cluster &cluster) override
    {
        const auto &mem = cluster.memory();
        Word in_left = 0, out_count = 0;
        for (auto &q : _inQ)
            in_left += q.hostCount(mem);
        for (auto &q : _outQ)
            out_count += q.hostCount(mem);
        if (in_left != 0)
            return {false, std::to_string(in_left) +
                               " packets left in input queues"};
        if (out_count != _packets) {
            return {false, "output holds " + std::to_string(out_count) +
                               " of " + std::to_string(_packets)};
        }
        Word flows = _variant == IntruderVariant::Base
                         ? _tree.hostCount(mem) - 2 * _packets
                         : _ht.hostCountNodes(mem);
        if (flows != _packets / kFragmentsPerFlow)
            return {false, "flow map holds " + std::to_string(flows)};
        if (_variant == IntruderVariant::Base &&
            !_tree.hostCheckInvariants(mem))
            return {false, "red-black invariants violated"};
        return {true, ""};
    }

  private:
    static constexpr Word kFragmentsPerFlow = 4;

    WorkloadParams _p;
    IntruderVariant _variant;
    Word _packets;
    std::unique_ptr<ds::SimAllocator> _alloc;
    std::vector<ds::SimQueue> _inQ, _outQ;
    ds::SimRBTree _tree;
    ds::SimHashtable _ht;

    Task<TxValue>
    reassembleTree(Tx &tx, unsigned tid, Word flow, bool first)
    {
        co_await tx.work(400); // Fragment decode + flow match.
        Word key = ds::hashKey(flow) & ~Word(1);
        if (first)
            co_return co_await _tree.insert(tx, tid, key, flow);
        co_return co_await _tree.lookup(tx, key);
    }

    Task<TxValue>
    reassembleHt(Tx &tx, unsigned tid, Word flow, bool first)
    {
        co_await tx.work(400);
        Word key = ds::hashKey(flow);
        if (first)
            co_return co_await _ht.insert(tx, tid, key, flow);
        co_return co_await _ht.lookup(tx, key);
    }

    Task<void>
    run(WorkerCtx &ctx)
    {
        unsigned tid = ctx.tid();
        bool shared_queues = _variant == IntruderVariant::Base;
        ds::SimQueue &in = _inQ[shared_queues ? 0 : tid];
        ds::SimQueue &out = _outQ[shared_queues ? 0 : tid];

        for (;;) {
            // Capture: dequeue one fragment.
            TxValue got = co_await ctx.txn(
                [&in](Tx &tx) { return in.dequeue(tx); });
            if (got.raw() == 0)
                break; // Queue drained.
            Word pkt = got.raw() - 1;

            // Reassembly: the first fragment of a flow inserts the
            // flow record; later fragments find and extend it (no
            // size-field update), as in real flow reassembly.
            Word flow = pkt / kFragmentsPerFlow;
            bool first = pkt % kFragmentsPerFlow == 0;
            if (_variant == IntruderVariant::Base) {
                co_await ctx.txn([this, &ctx, flow, first](Tx &tx) {
                    return reassembleTree(tx, ctx.tid(), flow, first);
                });
            } else {
                co_await ctx.txn([this, &ctx, flow, first](Tx &tx) {
                    return reassembleHt(tx, ctx.tid(), flow, first);
                });
            }

            // Detection: private signature matching.
            co_await ctx.work(1000);

            // Hand the flow to the next stage.
            co_await ctx.txn([&out, &ctx, pkt](Tx &tx) {
                return out.enqueue(tx, ctx.tid(), pkt);
            });
        }
        co_await ctx.barrier();
    }
};

} // namespace

std::unique_ptr<Workload>
makeIntruder(const WorkloadParams &p, IntruderVariant v)
{
    return std::make_unique<IntruderWorkload>(p, v);
}

} // namespace retcon::workloads
