/**
 * @file
 * Workload framework: the Table 2 suite against the simulated machine.
 *
 * A Workload owns the simulated data it sets up, produces one thread
 * program per core, and validates the final functional state after the
 * run (every workload has a machine-checkable correctness property, so
 * the TM implementations are continuously cross-checked for
 * serializability of committed state).
 *
 * The `scale` parameter multiplies input sizes: the benches run at
 * scale 1.0; tests use smaller scales for speed.
 */

#ifndef RETCON_WORKLOADS_WORKLOAD_HPP
#define RETCON_WORKLOADS_WORKLOAD_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ds/sim_alloc.hpp"
#include "exec/cluster.hpp"

namespace retcon::scenario {
class Runtime;
}

namespace retcon::workloads {

/** Default per-thread allocation arena (WorkloadParams::arena). */
inline constexpr Addr kDefaultArenaBytes = 6 * 1024 * 1024;

/** Sizing/seeding knobs shared by all workloads. */
struct WorkloadParams {
    unsigned nthreads = 32;
    std::uint64_t seed = 1;
    double scale = 1.0;

    /**
     * Workload-side state partitioning for the `service` workload
     * (ignored by the Table 2 set): the session hashtable and the job
     * queue split into this many partitions — worker t serves session
     * partition t mod P, a job lands in queue (payload mod P) (its
     * "request class"). 1 (the default) is bit-identical to the
     * unpartitioned layout; the conservation-based validation sums
     * across partitions, so it holds for any P at any shard/bank
     * count (see docs/workloads.md and docs/tuning.md).
     */
    unsigned servicePartitions = 1;

    /**
     * Fleet width (api::RunConfig::clusters): the `service` workload
     * replicates its whole state set — stripes, hit counters, session
     * tables, class queues — once per cluster, placing cluster c's
     * copy in cluster c's heap region so it homes on that cluster's
     * directory banks. nthreads here is the fleet-wide total
     * (clusters x per-cluster threads). 1 (the default) is
     * bit-identical to the pre-fleet layout.
     */
    unsigned clusters = 1;

    /**
     * Fraction of service requests whose session/queue accesses are
     * routed to a uniformly-chosen remote cluster's state; page views
     * always stay home. 0 = fully partitioned. At clusters == 1 the
     * routing draw is never made (bit-identity).
     */
    double crossClusterFraction = 0.0;

    /**
     * Emit `user-mark` annotation records at workload phase
     * boundaries (api::RunConfig::annotatePhases). The `service`
     * workload marks each worker's request-range quarters with phase
     * ids 1..4; the Table 2 set ignores the flag. Marks are
     * audit-stream-only — no simulated-timing effect — and anchor
     * retcon-query's annotation spans (docs/trace-query.md).
     */
    bool annotatePhases = false;

    /**
     * Active scenario runtime (src/scenario/), or null for the plain
     * stationary run. Honoured by the `service` workload: open-loop
     * arrival pacing, mid-run mix/hotset shifts, and the core-stall
     * fault all read their plan through this. The Table 2 set ignores
     * it. Non-owning; api::runOnce owns the runtime for the run.
     */
    scenario::Runtime *scenario = nullptr;

    /**
     * Per-thread allocation arena bytes; 0 = the 6 MiB default
     * (Workload::kArenaBytes). api::runOnce widens this under DATM —
     * forwarding cascades leak one arena bump per aborted attempt by
     * design (ds::SimAllocator), so DATM needs more headroom per
     * thread to cover the same workload scale. Clamped by callers so
     * (nthreads + 1) arenas fit a cluster heap region.
     */
    Addr arenaBytes = 0;

    /** Effective arena size (the default unless overridden). */
    Addr
    arena() const
    {
        return arenaBytes != 0 ? arenaBytes : kDefaultArenaBytes;
    }

    /** Scaled size helper: max(min_value, round(base * scale)). */
    Word
    scaled(Word base, Word min_value = 1) const
    {
        auto v = static_cast<Word>(static_cast<double>(base) * scale);
        return v < min_value ? min_value : v;
    }
};

/** Result of post-run functional validation. */
struct ValidationResult {
    bool ok = true;
    std::string note;
};

/** One Table 2 workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Canonical name (matches Table 2, e.g. "intruder_opt-sz"). */
    virtual std::string name() const = 0;

    /** Initialize simulated memory (functional, zero simulated time). */
    virtual void setup(exec::Cluster &cluster) = 0;

    /** Per-thread program factory. */
    virtual exec::Core::ProgramFactory program() = 0;

    /** Check the final functional state. */
    virtual ValidationResult validate(exec::Cluster &cluster) = 0;

  protected:
    /** Shared allocator placement for all workloads. */
    static constexpr Addr kHeapBase = 0x10000000;
    static constexpr Addr kArenaBytes = kDefaultArenaBytes;
};

/** Construct a workload by Table 2 name; fatal() on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** All Table 2 names, in the paper's figure order. */
const std::vector<std::string> &workloadNames();

/** The 8 unmodified workloads of Figure 1. */
const std::vector<std::string> &baseWorkloadNames();

/**
 * Table 2 plus the post-paper workloads (currently "service", the
 * long-running Zipfian queue+hashtable request loop). The figure
 * benches iterate workloadNames() so paper outputs stay comparable;
 * the sweep/smoke drivers iterate this.
 */
const std::vector<std::string> &extendedWorkloadNames();

// Per-workload constructors (variants share an implementation).
std::unique_ptr<Workload> makeGenome(const WorkloadParams &p,
                                     bool resizable);
enum class IntruderVariant { Base, Opt, OptSz };
std::unique_ptr<Workload> makeIntruder(const WorkloadParams &p,
                                       IntruderVariant v);
std::unique_ptr<Workload> makeKmeans(const WorkloadParams &p);
std::unique_ptr<Workload> makeLabyrinth(const WorkloadParams &p);
std::unique_ptr<Workload> makeSsca2(const WorkloadParams &p);
enum class VacationVariant { Base, Opt, OptSz };
std::unique_ptr<Workload> makeVacation(const WorkloadParams &p,
                                       VacationVariant v);
std::unique_ptr<Workload> makeYada(const WorkloadParams &p);
std::unique_ptr<Workload> makePython(const WorkloadParams &p, bool opt);
std::unique_ptr<Workload> makeBayes(const WorkloadParams &p);
std::unique_ptr<Workload> makeService(const WorkloadParams &p);

} // namespace retcon::workloads

#endif // RETCON_WORKLOADS_WORKLOAD_HPP
