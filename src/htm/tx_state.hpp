/**
 * @file
 * Per-core transactional state.
 *
 * Groups everything a core's in-flight transaction owns: the eager
 * read/write sets (conflict detection via the coherence protocol), the
 * undo log (eager version management), the RETCON structures (IVB,
 * constraint buffer, SSB), the modeled permissions-only cache that
 * absorbs speculative bits evicted from the L2 (OneTM backing, §2), the
 * DATM dependence bookkeeping, and the pre-commit walk cursor.
 */

#ifndef RETCON_HTM_TX_STATE_HPP
#define RETCON_HTM_TX_STATE_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "htm/types.hpp"
#include "htm/undo_log.hpp"
#include "mem/cache.hpp"
#include "retcon/constraint_buffer.hpp"
#include "retcon/ivb.hpp"
#include "retcon/ssb.hpp"
#include "sim/types.hpp"

namespace retcon::htm {

/** Per-transaction statistics sampled at commit (Table 3 inputs). */
struct TxnSample {
    std::uint64_t blocksLost = 0;
    std::uint64_t blocksTracked = 0;
    std::uint64_t symRegsRepaired = 0;
    std::uint64_t privateStores = 0;
    std::uint64_t constraintAddrs = 0;
    Cycle commitCycles = 0;
    Cycle lifetimeCycles = 0;
};

/** Everything one core's current transaction owns. */
struct CoreTxState {
    CoreTxState(const TMConfig &cfg, const mem::CacheGeometry &perm_geom)
        : ivb(cfg.unlimitedState ? SIZE_MAX : cfg.ivbEntries),
          constraints(cfg.unlimitedState ? SIZE_MAX : cfg.constraintEntries),
          ssb(cfg.unlimitedState ? SIZE_MAX : cfg.ssbEntries),
          permCache(perm_geom)
    {}

    TxStatus status = TxStatus::Idle;

    /// Timestamp for oldest-wins arbitration; kept across retries so an
    /// aborted transaction ages toward winning (forward progress, §2).
    std::uint64_t timestamp = 0;
    bool hasTimestamp = false;

    /// Unique id of the current *attempt* (DATM dependence edges).
    std::uint64_t uid = 0;

    /// Eager conflict-detection sets, block granularity (the modeled
    /// speculatively-read/-written cache bits).
    std::unordered_set<Addr> readSet;
    std::unordered_set<Addr> writeSet;

    UndoLog undo;

    /// RETCON structures (Figure 5). The SSB doubles as the lazy-mode
    /// write buffer (entries with sym == nullopt).
    rtc::InitialValueBuffer ivb;
    rtc::ConstraintBuffer constraints;
    rtc::SymbolicStoreBuffer ssb;

    /// Permissions-only cache occupancy model: spec blocks evicted from
    /// the L2 land here; evicting a spec block *from here* overflows the
    /// transaction into the OneTM serialized mode.
    mem::SetAssocCache permCache;
    bool overflowed = false;
    bool overflowPending = false;

    /// DATM: uid -> edge kind of transactions that must commit before
    /// this one. Bit 0: anti/output ordering only; bit 1: dataflow
    /// (this transaction consumed or overwrote the predecessor's
    /// speculative data, so the predecessor's abort cascades here).
    std::unordered_map<std::uint64_t, std::uint8_t> datmPreds;

    /// DATM: word -> machine-global write seq of this attempt's latest
    /// store to it. The forwarding-producer index: lets a forwarded
    /// load name the producing store in O(block writers) instead of
    /// scanning undo logs (htm::TMMachine::findForwardProducer).
    std::unordered_map<Addr, std::uint64_t> datmStoreSeq;

    /// DATM: this attempt loaded a value forwarded from another
    /// in-flight transaction (word-level value flow; every such load
    /// also emitted a trace::EventKind::Forward record). Surfaced on
    /// the commit provenance record (trace::kCommitAuxDatmForwarded)
    /// so the reenactment validator knows to re-derive the attempt's
    /// forwarding chain at commit (see docs/trace-format.md).
    bool datmForwardedRead = false;

    /// Per-bank commit tokens held by this commit (bit = bank index).
    /// Managed explicitly by TMMachine::{acquire,release}CommitTokens —
    /// released on commit and on abort, never by resetSpeculation.
    std::uint64_t heldBankMask = 0;
    bool commitTokensHeld = false;

    /// Needed-bank mask cached across NACKed acquisition attempts:
    /// the commit's write targets are fixed once it reaches its
    /// commit point, so the mask is computed on the first attempt
    /// only (a contended token can be re-requested tens of thousands
    /// of times per run). Derived data — cleared by resetSpeculation.
    std::uint64_t commitBankMask = 0;
    bool commitBankMaskValid = false;

    /// Pre-commit walk cursor.
    int commitPhase = 0;
    std::size_t commitIvbIdx = 0;
    std::size_t commitSsbIdx = 0;

    Cycle txnStartCycle = 0;
    Cycle commitCycles = 0;
    std::uint64_t symRegsRepaired = 0;

    /// Root word -> final value map, published at commit for the
    /// execution layer to repair symbolic register values.
    std::unordered_map<Addr, Word> finalRoots;

    /// Block that most recently NACKed us (dedupes predictor training
    /// across the retry loop for the same request).
    Addr lastNackBlock = static_cast<Addr>(-1);

    /// A use-time equality validation already failed (set from a
    /// context that cannot abort, e.g. mid-instruction reify); the
    /// next machine operation converts it into an abort.
    bool earlyViolation = false;
    Addr earlyViolationBlock = 0;

    bool active() const { return status != TxStatus::Idle; }

    /** Reset all speculative state (after commit or abort). */
    void
    resetSpeculation()
    {
        readSet.clear();
        writeSet.clear();
        undo.clear();
        ivb.clear();
        constraints.clear();
        ssb.clear();
        permCache.clear();
        datmPreds.clear();
        datmStoreSeq.clear();
        datmForwardedRead = false;
        commitBankMask = 0;
        commitBankMaskValid = false;
        overflowed = false;
        overflowPending = false;
        commitPhase = 0;
        commitIvbIdx = 0;
        commitSsbIdx = 0;
        commitCycles = 0;
        symRegsRepaired = 0;
        lastNackBlock = static_cast<Addr>(-1);
        earlyViolation = false;
        earlyViolationBlock = 0;
        status = TxStatus::Idle;
    }
};

} // namespace retcon::htm

#endif // RETCON_HTM_TX_STATE_HPP
