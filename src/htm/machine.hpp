/**
 * @file
 * TMMachine: the transactional memory logic for every mode.
 *
 * The execution layer (src/exec) drives one TMMachine shared by all
 * cores. Each operation is synchronous: the machine applies all
 * functional and coherence state changes and returns the latency the
 * calling core must wait before continuing, or NACK/abort outcomes.
 * Remote aborts decided during conflict resolution are performed
 * immediately (rollback restores memory before the winner proceeds —
 * the paper's zero-cycle rollback baseline) and reported through the
 * remote-abort callback so the execution layer can restart the victim.
 *
 * Mode map:
 *  - Serial: global lock, no speculation (sequential baseline / GIL).
 *  - Eager:  baseline HTM of §2 (eager detection + eager versioning,
 *            timestamp oldest-wins CM, permissions-only cache + OneTM).
 *  - Lazy:   TCC-style committer-wins (Figure 2e).
 *  - LazyVB: the paper's lazy-vb — predictor-selected blocks validate
 *            by value at commit, no repair (§5.1).
 *  - Retcon: full symbolic tracking + pre-commit repair (§4, Figure 7).
 *  - DATM:   dependence-aware forwarding (Figure 2b), microbench-grade.
 */

#ifndef RETCON_HTM_MACHINE_HPP
#define RETCON_HTM_MACHINE_HPP

#include <functional>
#include <memory>
#include <vector>

#include "htm/tx_state.hpp"
#include "htm/types.hpp"
#include "mem/memory_system.hpp"
#include "retcon/predictor.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "trace/sink.hpp"

namespace retcon::htm {

/** Aggregate machine statistics, including Table 3 columns. */
struct MachineStats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t abortsByCause[10] = {};
    std::uint64_t conflicts = 0;
    std::uint64_t nacks = 0;
    std::uint64_t overflows = 0;
    std::uint64_t fwdReads = 0; ///< DATM loads of forwarded values
                                ///< (an in-flight producer's store).
    std::uint64_t abortsLazyValueMismatch = 0; ///< Equality-bit misses.

    /// Commit-token arbitration (0 unless modeled).
    std::uint64_t tokenAcquires = 0; ///< Successful multi-bank grabs.
    std::uint64_t tokenWaits = 0;    ///< NACKed acquisition attempts.
    std::uint64_t tokenSteals = 0;   ///< Younger holders aborted by an
                                     ///< older committer (oldest-wins).

    /// Two-level commit across the fleet interconnect (0 unless a
    /// fleet is modeled — see acquireCommitTokens).
    std::uint64_t xcTokenMsgs = 0;   ///< Remote-cluster token contacts.
    std::uint64_t xcTokenWaits = 0;  ///< NACKs blamed on a remote bank.
    std::uint64_t xcTokenCycles = 0; ///< Wire cycles spent on tokens.

    /// NACK/abort backoff (0 unless TMConfig::backoff.policy != None).
    std::uint64_t backoffNacks = 0;    ///< NACK retries delayed extra.
    std::uint64_t backoffRestarts = 0; ///< Post-abort restarts delayed.
    std::uint64_t backoffCycles = 0;   ///< Total extra delay imposed.

    /// DATM cascade back-pressure (0 unless mode == DATM and
    /// TMConfig::datmCascadeBackpressure; reported separately from
    /// the backoff counters so policy-None runs still show 0 there).
    std::uint64_t cascadeBpRestarts = 0; ///< Restarts delayed.
    std::uint64_t cascadeBpCycles = 0;   ///< Total extra delay.

    AvgMax blocksLost;
    AvgMax blocksTracked;
    AvgMax symRegs;
    AvgMax privateStores;
    AvgMax constraintAddrs;
    AvgMax commitCycles;
    double totalCommitCycles = 0;
    double totalTxnCycles = 0;

    /** Commit-stall percentage (Table 3 last column). */
    double
    commitStallPct() const
    {
        return totalTxnCycles > 0
                   ? 100.0 * totalCommitCycles / totalTxnCycles
                   : 0.0;
    }
};

/** The shared transactional machine. */
class TMMachine : public mem::CoherenceListener
{
  public:
    /** Called when a core's transaction is aborted by a remote event. */
    using RemoteAbortFn = std::function<void(CoreId, AbortCause)>;

    /** Timeline hook for the Figure 2 bench. */
    using TraceFn = std::function<void(const TraceEvent &)>;

    /**
     * Contention observation hook (the feed of the exec layer's
     * hot-block tables): called with the blamed key every time a
     * transaction is aborted by a block conflict or a commit-token
     * steal (key = the contested block / tokenBlameKey(bank)) and on
     * every commit-token NACK. Null (the default) disables feeding.
     */
    using ContentionFn = std::function<void(CoreId, Addr)>;

    /**
     * @p clock is only observed (latency stamps, provenance records):
     * pass the driving EventQueue or a ShardedEventQueue's global
     * clock — the machine never schedules events itself.
     */
    TMMachine(const SimClock &clock, mem::MemorySystem &ms,
              const TMConfig &cfg);
    ~TMMachine();

    TMMachine(const TMMachine &) = delete;
    TMMachine &operator=(const TMMachine &) = delete;

    void setRemoteAbortHandler(RemoteAbortFn fn) { _onRemoteAbort = fn; }
    void setTraceHook(TraceFn fn) { _trace = fn; }
    void setContentionHook(ContentionFn fn) { _contention = std::move(fn); }

    /**
     * Attach a provenance sink (trace/). Null detaches. With no sink
     * attached every instrumentation point is a single pointer check;
     * simulated timing is identical either way (audit events carry no
     * latency).
     */
    void setTraceSink(trace::TraceSink *sink) { _sink = sink; }
    trace::TraceSink *traceSink() const { return _sink; }

    /**
     * Attach the fleet interconnect (non-owning; null detaches, the
     * single-cluster configuration). When attached, commit-token
     * acquisition runs the two-level protocol: tokens for the
     * committer's own cluster are checked locally, tokens homed on
     * other clusters' banks are requested over the wire and the
     * attempt pays the slowest contacted cluster's round trip —
     * grant or NACK alike, since a NACK is only learned from the
     * reply.
     */
    void setNet(net::Interconnect *net) { _net = net; }

    /** Emit a workload-level annotation into the provenance stream. */
    void userMark(CoreId core, Word id);

    // ---- Non-transactional accesses -------------------------------
    MemOpOutcome plainLoad(CoreId core, Addr addr, unsigned size = 8);
    MemOpOutcome plainStore(CoreId core, Addr addr, Word value,
                            unsigned size = 8);

    // ---- Transaction lifecycle ------------------------------------
    /**
     * Begin (or re-begin after NACK) a transaction. May NACK when a
     * global token (Serial lock, overflow token) is unavailable.
     */
    MemOpOutcome txBegin(CoreId core, bool is_retry);

    /** Transactional load. */
    MemOpOutcome txLoad(CoreId core, Addr addr, unsigned size = 8,
                        bool is_retry = false);

    /**
     * Transactional store. @p sym carries the symbolic tag of the data
     * register, when the executing value is being tracked.
     */
    MemOpOutcome txStore(CoreId core, Addr addr, Word value,
                         const std::optional<rtc::SymTag> &sym,
                         unsigned size = 8, bool is_retry = false);

    /**
     * Drive one step of the commit process (pre-commit repair walk for
     * RETCON/LazyVB, write-buffer drain for Lazy, finalization for
     * all). Call repeatedly until `done` or `AbortSelf`.
     */
    CommitStepOutcome commitStep(CoreId core, bool is_retry = false);

    /** Record how many symbolic registers the exec layer repaired. */
    void noteSymRegsRepaired(CoreId core, std::uint64_t n);

    /**
     * Record the control-flow constraint implied by a branch on a
     * symbolic value: `([root] + delta) OP rhs` held (@p taken true) or
     * did not hold. Falls back to an equality pin when the constraint
     * buffer is full or the constraint is not interval-representable.
     */
    void recordBranchConstraint(CoreId core, const rtc::SymTag &sym,
                                rtc::CmpOp op, std::int64_t rhs,
                                bool taken);

    /**
     * Pin @p root with an equality constraint (§4.2): the symbolic
     * input was used in a way that cannot be tracked (address
     * computation, complex arithmetic, second symbolic operand).
     */
    void pinEquality(CoreId core, Addr root);

    // ---- mem::CoherenceListener ------------------------------------
    void onRemoteTake(CoreId victim, Addr block, CoreId by,
                      bool by_write) override;
    void onCapacityEvict(CoreId victim, Addr block) override;

    /** Abort the local transaction (explicit workload abort). */
    void abortSelf(CoreId core, AbortCause cause);

    // ---- Queries ----------------------------------------------------
    TxStatus status(CoreId core) const { return _cores[core]->status; }

    /** Final value of a symbolic root after commit repair. */
    Word finalRootValue(CoreId core, Addr root) const;

    /** Whether @p block would currently be tracked symbolically. */
    bool wouldTrack(Addr block) const;

    rtc::ConflictPredictor &predictor() { return _predictor; }
    const TMConfig &config() const { return _cfg; }
    const MachineStats &stats() const { return _stats; }
    MachineStats &stats() { return _stats; }
    mem::MemorySystem &memorySystem() { return _ms; }
    CoreTxState &coreState(CoreId core) { return *_cores[core]; }

    /** Per-bank commit-token counters (all zero unless arbitration
     *  is modeled — TMConfig::commitTokenArbitration). */
    struct BankTokenStats {
        std::uint64_t acquires = 0; ///< Grants that included this bank.
        std::uint64_t waits = 0;    ///< NACKs blamed on this bank.
    };
    const BankTokenStats &bankTokenStats(unsigned bank) const
    {
        return _bankTokens[bank].stats;
    }

    /** Commit-token waits charged to @p core (for shard summaries). */
    std::uint64_t tokenWaits(CoreId core) const
    {
        return _tokenWaitsByCore[core];
    }

    /** Cross-cluster token waits charged to @p core (fleet only). */
    std::uint64_t xcTokenWaits(CoreId core) const
    {
        return _xcTokenWaitsByCore[core];
    }

    /**
     * Extra delay (cycles) the execution layer must wait before
     * restarting @p core's aborted transaction, per the configured
     * backoff policy (0 when the policy is None — the immediate-
     * restart baseline). Counted in MachineStats::backoffRestarts.
     */
    Cycle restartBackoff(CoreId core);

    /**
     * The key blamed for @p core's most recent abort: the contested
     * block for conflict aborts, tokenBlameKey(bank) for commit-token
     * steals, 0 when the abort had no contention blame (constraint
     * violations, zombies, explicit aborts). Consumed by the exec
     * layer's contention-aware re-dispatch.
     */
    Addr abortBlame(CoreId core) const { return _abortBlame[core]; }

  private:
    const SimClock &_eq;
    mem::MemorySystem &_ms;
    TMConfig _cfg;
    rtc::ConflictPredictor _predictor;
    std::vector<std::unique_ptr<CoreTxState>> _cores;
    RemoteAbortFn _onRemoteAbort;
    TraceFn _trace;
    ContentionFn _contention;
    trace::TraceSink *_sink = nullptr;
    std::uint64_t _auditSeq = 1; ///< Global provenance-record order.
    MachineStats _stats;

    std::uint64_t _nextTimestamp = 1;
    std::uint64_t _nextUid = 1;
    std::uint64_t _writeSeq = 1;

    /// Global tokens.
    CoreId _serialLockHolder = kNoCore;
    CoreId _overflowTokenHolder = kNoCore;
    CoreId _lazyCommitToken = kNoCore;

    /// Per-directory-bank commit tokens (modeled arbitration only).
    struct BankToken {
        CoreId holder = kNoCore;
        BankTokenStats stats;
    };
    std::vector<BankToken> _bankTokens;
    std::vector<std::uint64_t> _tokenWaitsByCore;
    std::vector<std::uint64_t> _xcTokenWaitsByCore;

    /// Fleet interconnect (null = single cluster, no wire costs).
    net::Interconnect *_net = nullptr;

    /// Wire latency of the most recent acquireCommitTokens attempt
    /// (max round trip over the remote clusters it contacted); the
    /// commit step adds it to the step latency on grant and NACK.
    Cycle _tokenWireLat = 0;

    /// NACK/abort backoff state (all per core). Streaks reset at
    /// commit; the NACK streak additionally resets at abort (the
    /// restart is a fresh attempt). Heat is the conflict-proportional
    /// policy's pressure estimate: ++ on conflict NACK/abort, halved
    /// on commit.
    std::vector<Xoshiro> _backoffRng;
    std::vector<std::uint32_t> _nackStreak;
    std::vector<std::uint32_t> _abortStreak;
    std::vector<std::uint32_t> _conflictHeat;
    /// Consecutive cascade-cause aborts since the core's last commit
    /// (TMConfig::datmCascadeBackpressure).
    std::vector<std::uint32_t> _cascadeStreak;
    std::vector<Addr> _abortBlame;

    /// DATM: uid -> core for still-active attempts.
    std::unordered_map<std::uint64_t, CoreId> _activeUids;

    // ---- Internal helpers -------------------------------------------
    struct ConflictInfo {
        std::vector<CoreId> holders;
        bool anyOlder = false;
    };

    /** Effective age for arbitration (overflowed = oldest, non-tx = 0). */
    std::uint64_t effectiveTs(CoreId core, bool txnal) const;

    /** Find eager conflicts for an access. */
    ConflictInfo findConflicts(CoreId requester, Addr block,
                               bool is_write) const;

    /**
     * Resolve an eager conflict per the CM policy. Aborts losers as a
     * side effect. @return the outcome status for the requester.
     */
    OpStatus resolveConflict(CoreId requester, bool requester_txnal,
                             Addr block, bool is_write, bool is_retry);

    /**
     * Roll back and reset @p core's transaction. @p blame names the
     * contention cause (contested block / token-blame key) when the
     * abort was a contention loss; it is published via abortBlame()
     * and fed to the contention hook.
     */
    void doAbort(CoreId core, AbortCause cause, bool notify_exec,
                 Addr blame = 0);

    /**
     * NACK retry latency for @p core: nackRetryCycles plus the
     * configured backoff policy's extra delay (which grows with the
     * attempt's consecutive-NACK streak). @p conflict marks NACKs
     * caused by block/token contention — they raise the conflict-
     * proportional heat; availability waits (serial lock, overflow
     * token, DATM predecessor) do not.
     */
    Cycle nackLatency(CoreId core, bool conflict = true);

    /** Policy-scaled extra delay for a streak of @p steps retries. */
    Cycle backoffExtra(CoreId core, std::uint32_t steps);

    /** Directory banks @p core's commit will write (token set). */
    std::uint64_t neededBankMask(CoreId core) const;

    /**
     * Try to acquire every commit token in @p core's needed bank set,
     * all-or-nothing. Oldest-wins: younger holders are aborted, an
     * older holder makes the requester NACK. @return true when all
     * tokens are held and the commit may proceed.
     */
    bool acquireCommitTokens(CoreId core);

    /** Release @p core's commit tokens (commit completion or abort). */
    void releaseCommitTokens(CoreId core);

    /** DATM: abort @p core and all transitive successors. */
    void datmAbortCascade(CoreId core, AbortCause cause, bool notify_exec,
                          Addr blame = 0);

    /** DATM: would adding edge pred->succ create a dependence cycle? */
    bool datmCreatesCycle(std::uint64_t pred_uid,
                          std::uint64_t succ_uid) const;

    /** Mark a block's speculative bit placement; detects overflow. */
    void noteSpecBlock(CoreId core, Addr block);

    /** Common eager load/store path (also Serial, untracked RETCON). */
    MemOpOutcome eagerAccess(CoreId core, Addr addr, bool is_write,
                             Word value, unsigned size, bool txnal,
                             bool is_retry);

    /** RETCON/LazyVB: initial symbolic load of an untracked block. */
    MemOpOutcome symbolicFirstLoad(CoreId core, Addr addr, unsigned size,
                                   bool is_retry);

    /**
     * RETCON/LazyVB eager store path: invalidates any SSB entry for
     * the word and freezes value-tracked words it overwrites.
     */
    MemOpOutcome retconEagerStore(CoreId core, Addr addr, Word value,
                                  unsigned size, bool is_retry);

    /** Convert a deferred use-time validation failure into an abort. */
    MemOpOutcome earlyViolationAbort(CoreId core);

    /** Commit-phase helpers. */
    CommitStepOutcome commitStepRetcon(CoreId core, bool is_retry);
    CommitStepOutcome commitStepLazy(CoreId core, bool is_retry);
    CommitStepOutcome finalizeCommit(CoreId core);

    void sampleTxnStats(CoreId core);
    void emitTrace(CoreId core, const char *kind, Addr addr, Word value);

    /** Provenance emission (no-op without a sink). */
    void audit(CoreId core, trace::EventKind kind, Addr addr = 0,
               Word a = 0, Word b = 0,
               const std::optional<rtc::SymTag> &sym = std::nullopt,
               rtc::CmpOp cmp = rtc::CmpOp::EQ, std::uint8_t aux = 0,
               std::uint64_t vid = 0);

    /**
     * DATM: locate the newest speculative store to @p word among
     * active transactions other than @p reader (the store whose value
     * a forwarded load observes). Returns kNoCore when the word's
     * current value is committed data.
     */
    CoreId findForwardProducer(CoreId reader, Addr word,
                               std::uint64_t &store_seq) const;

    friend class MachineTestPeer;
};

} // namespace retcon::htm

#endif // RETCON_HTM_MACHINE_HPP
