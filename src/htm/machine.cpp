#include "htm/machine.hpp"

#include <algorithm>
#include <cstring>

#include "sim/logging.hpp"

namespace retcon::htm {

const char *
tmModeName(TMMode m)
{
    switch (m) {
      case TMMode::Serial: return "serial";
      case TMMode::Eager: return "eager";
      case TMMode::Lazy: return "lazy";
      case TMMode::LazyVB: return "lazy-vb";
      case TMMode::Retcon: return "retcon";
      case TMMode::DATM: return "datm";
    }
    return "?";
}

const char *
cmPolicyName(CMPolicy p)
{
    switch (p) {
      case CMPolicy::OldestWins: return "oldest-wins";
      case CMPolicy::RequesterLoses: return "requester-loses";
      case CMPolicy::RequesterWins: return "requester-wins";
    }
    return "?";
}

const char *
backoffPolicyName(BackoffPolicy p)
{
    switch (p) {
      case BackoffPolicy::None: return "none";
      case BackoffPolicy::Linear: return "linear";
      case BackoffPolicy::ExpCapped: return "exp";
      case BackoffPolicy::ConflictProportional: return "prop";
    }
    return "?";
}

BackoffPolicy
backoffPolicyFromName(const char *name)
{
    if (std::strcmp(name, "none") == 0)
        return BackoffPolicy::None;
    if (std::strcmp(name, "linear") == 0)
        return BackoffPolicy::Linear;
    if (std::strcmp(name, "exp") == 0)
        return BackoffPolicy::ExpCapped;
    if (std::strcmp(name, "prop") == 0)
        return BackoffPolicy::ConflictProportional;
    panic("unknown backoff policy '%s' (none|linear|exp|prop)", name);
}

const char *
abortCauseName(AbortCause c)
{
    switch (c) {
      case AbortCause::None: return "none";
      case AbortCause::Conflict: return "conflict";
      case AbortCause::ConstraintViolation: return "constraint-violation";
      case AbortCause::LazyValidation: return "lazy-validation";
      case AbortCause::LazyCommitter: return "lazy-committer";
      case AbortCause::DatmCycle: return "datm-cycle";
      case AbortCause::DatmCascade: return "datm-cascade";
      case AbortCause::Overflow: return "overflow";
      case AbortCause::Explicit: return "explicit";
      case AbortCause::Zombie: return "zombie";
    }
    return "?";
}

namespace {

/** Extract a size-byte value at byte offset within a word. */
Word
extractBytes(Word w, unsigned byte_off, unsigned size)
{
    if (size >= 8)
        return w;
    Word mask = (Word(1) << (size * 8)) - 1;
    return (w >> (byte_off * 8)) & mask;
}

/** Overlay size bytes of value into w at byte offset. */
Word
overlayBytes(Word w, Word value, unsigned byte_off, unsigned size)
{
    if (size >= 8)
        return value;
    Word mask = ((Word(1) << (size * 8)) - 1) << (byte_off * 8);
    return (w & ~mask) | ((value << (byte_off * 8)) & mask);
}

bool
isFullWordAccess(Addr addr, unsigned size)
{
    return byteInWord(addr) == 0 && size == 8;
}

} // namespace

TMMachine::TMMachine(const SimClock &clock, mem::MemorySystem &ms,
                     const TMConfig &cfg)
    : _eq(clock), _ms(ms), _cfg(cfg), _predictor(cfg.predictor)
{
    _cores.reserve(ms.numCores());
    for (unsigned i = 0; i < ms.numCores(); ++i)
        _cores.push_back(std::make_unique<CoreTxState>(
            _cfg, ms.cacheConfig().permOnly));
    _bankTokens.resize(ms.numBanks());
    _tokenWaitsByCore.assign(ms.numCores(), 0);
    _xcTokenWaitsByCore.assign(ms.numCores(), 0);
    _nackStreak.assign(ms.numCores(), 0);
    _abortStreak.assign(ms.numCores(), 0);
    _conflictHeat.assign(ms.numCores(), 0);
    _cascadeStreak.assign(ms.numCores(), 0);
    _abortBlame.assign(ms.numCores(), 0);
    _backoffRng.reserve(ms.numCores());
    for (unsigned i = 0; i < ms.numCores(); ++i)
        _backoffRng.push_back(Xoshiro::forThread(_cfg.backoff.seed, i));
    _ms.setListener(this);
}

TMMachine::~TMMachine()
{
    _ms.setListener(nullptr);
}

void
TMMachine::emitTrace(CoreId core, const char *kind, Addr addr, Word value)
{
    if (_trace)
        _trace(TraceEvent{_eq.now(), core, kind, addr, value});
}

void
TMMachine::audit(CoreId core, trace::EventKind kind, Addr addr, Word a,
                 Word b, const std::optional<rtc::SymTag> &sym,
                 rtc::CmpOp cmp, std::uint8_t aux, std::uint64_t vid)
{
    if (!_sink)
        return;
    trace::Record r;
    r.cycle = _eq.now();
    r.seq = _auditSeq++;
    r.core = core;
    r.kind = kind;
    r.addr = addr;
    r.a = a;
    r.b = b;
    if (sym) {
        r.sym = *sym;
        r.hasSym = true;
    }
    r.cmp = cmp;
    r.aux = aux;
    r.vid = vid;
    _sink->onEvent(r);
}

void
TMMachine::userMark(CoreId core, Word id)
{
    audit(core, trace::EventKind::UserMark, 0, id);
}

std::uint64_t
TMMachine::effectiveTs(CoreId core, bool txnal) const
{
    if (!txnal)
        return 0;
    const CoreTxState &st = *_cores[core];
    if (st.overflowed)
        return 0;
    return st.timestamp;
}

TMMachine::ConflictInfo
TMMachine::findConflicts(CoreId requester, Addr block, bool is_write) const
{
    ConflictInfo info;
    bool requester_txnal =
        requester != kNoCore && _cores[requester]->active();
    bool requester_committing =
        requester_txnal &&
        _cores[requester]->status == TxStatus::Committing;
    std::uint64_t req_ts =
        requester == kNoCore ? 0 : effectiveTs(requester, requester_txnal);
    for (CoreId c = 0; c < _ms.numCores(); ++c) {
        if (c == requester)
            continue;
        const CoreTxState &st = *_cores[c];
        if (!st.active())
            continue;
        bool hit = st.writeSet.count(block) ||
                   (is_write && st.readSet.count(block));
        if (!hit)
            continue;
        info.holders.push_back(c);
        // Commit priority: a transaction that reached its commit
        // point is logically serialized; requesters wait for it
        // rather than aborting it (deadlock-free: committers never
        // wait on active transactions, and committer-vs-committer
        // falls back to timestamps).
        bool holder_committing = st.status == TxStatus::Committing;
        bool holder_wins;
        if (holder_committing && !requester_committing)
            holder_wins = true;
        else if (!holder_committing && requester_committing)
            holder_wins = false;
        else
            holder_wins = effectiveTs(c, true) < req_ts;
        if (holder_wins)
            info.anyOlder = true;
    }
    return info;
}

OpStatus
TMMachine::resolveConflict(CoreId requester, bool requester_txnal,
                           Addr block, bool is_write, bool is_retry)
{
    ConflictInfo info = findConflicts(requester, block, is_write);
    if (info.holders.empty()) {
        if (requester_txnal)
            _cores[requester]->lastNackBlock = static_cast<Addr>(-1);
        return OpStatus::Ok;
    }

    // Train the predictor once per request (not per NACK retry).
    bool fresh = !is_retry ||
                 (requester_txnal &&
                  _cores[requester]->lastNackBlock != block);
    if (fresh) {
        ++_stats.conflicts;
        _predictor.observeConflict(block);
    }

    CMPolicy policy = _cfg.cmPolicy;
    if (!requester_txnal && policy == CMPolicy::RequesterLoses) {
        // Non-transactional requests cannot abort; they win instead.
        policy = CMPolicy::RequesterWins;
    }

    switch (policy) {
      case CMPolicy::OldestWins:
        if (!info.anyOlder) {
            for (CoreId h : info.holders)
                doAbort(h, AbortCause::Conflict, true, block);
            if (requester_txnal)
                _cores[requester]->lastNackBlock = static_cast<Addr>(-1);
            return OpStatus::Ok;
        }
        ++_stats.nacks;
        if (requester_txnal)
            _cores[requester]->lastNackBlock = block;
        emitTrace(requester, "nack", block, 0);
        return OpStatus::Nack;

      case CMPolicy::RequesterLoses:
        doAbort(requester, AbortCause::Conflict, false, block);
        return OpStatus::AbortSelf;

      case CMPolicy::RequesterWins:
        for (CoreId h : info.holders)
            doAbort(h, AbortCause::Conflict, true, block);
        return OpStatus::Ok;
    }
    return OpStatus::Ok;
}

void
TMMachine::doAbort(CoreId core, AbortCause cause, bool notify_exec,
                   Addr blame)
{
    if (_cfg.mode == TMMode::DATM) {
        datmAbortCascade(core, cause, notify_exec, blame);
        return;
    }
    CoreTxState &st = *_cores[core];
    sim_assert(st.active(), "aborting an idle transaction on core %u",
               core);
    _abortBlame[core] = blame;
    ++_abortStreak[core];
    _nackStreak[core] = 0;
    if (blame != 0) {
        ++_conflictHeat[core];
        if (_contention)
            _contention(core, blame);
    }
    st.undo.rollback(_ms.memory());
    if (_serialLockHolder == core)
        _serialLockHolder = kNoCore;
    if (_overflowTokenHolder == core)
        _overflowTokenHolder = kNoCore;
    if (_lazyCommitToken == core)
        _lazyCommitToken = kNoCore;
    releaseCommitTokens(core);
    _activeUids.erase(st.uid);
    st.resetSpeculation();
    ++_stats.aborts;
    ++_stats.abortsByCause[static_cast<int>(cause)];
    emitTrace(core, "abort", 0, static_cast<Word>(cause));
    // The abort record carries the blamed block (0 when the abort has
    // no conflicting block, e.g. constraint violations): the same key
    // the contention scheduler heats, now queryable offline as a
    // blame chain (src/query/, docs/trace-query.md).
    audit(core, trace::EventKind::Abort, blame, 0, 0, std::nullopt,
          rtc::CmpOp::EQ, static_cast<std::uint8_t>(cause));
    if (notify_exec && _onRemoteAbort)
        _onRemoteAbort(core, cause);
}

void
TMMachine::abortSelf(CoreId core, AbortCause cause)
{
    doAbort(core, cause, false);
}

// ---------------------------------------------------------------------
// DATM support
// ---------------------------------------------------------------------

bool
TMMachine::datmCreatesCycle(std::uint64_t pred_uid,
                            std::uint64_t succ_uid) const
{
    // Adding edge pred -> succ creates a cycle iff pred already
    // (transitively) depends on succ.
    std::vector<std::uint64_t> stack{pred_uid};
    std::vector<std::uint64_t> seen;
    while (!stack.empty()) {
        std::uint64_t u = stack.back();
        stack.pop_back();
        if (u == succ_uid)
            return true;
        if (std::find(seen.begin(), seen.end(), u) != seen.end())
            continue;
        seen.push_back(u);
        auto it = _activeUids.find(u);
        if (it == _activeUids.end())
            continue;
        for (const auto &[p, flags] : _cores[it->second]->datmPreds)
            stack.push_back(p);
    }
    return false;
}

CoreId
TMMachine::findForwardProducer(CoreId reader, Addr word,
                               std::uint64_t &store_seq) const
{
    // Every DATM store indexes its machine-global write sequence in
    // the writer's datmStoreSeq, so the newest indexed store for
    // `word` across active transactions names the store whose value
    // the word currently holds (rollbacks restore pre-images in
    // reverse seq order, which makes the surviving max-seq store the
    // value owner even after a cascade unwinds interleaved writes).
    // If that store belongs to the reader itself the load observes
    // its own data; if no active transaction indexed the word, its
    // value is committed. Only the remaining case is a genuine value
    // forward. Attribution is word-granular, newest writer wins: when
    // several in-flight transactions hold sub-word stores inside one
    // word, only the newest is named (and a reader whose own store is
    // newest is not considered forwarded-to at all), so chains over
    // sub-word interleavings are audited only through the newest
    // writer — see the ROADMAP item on byte-granular attribution.
    // Block-level dependence edges (set by the caller) still order
    // every writer, so this limits audit coverage, not correctness.
    Addr block = blockAddr(word);
    CoreId producer = kNoCore;
    std::uint64_t newest = 0;
    for (CoreId c = 0; c < _ms.numCores(); ++c) {
        const CoreTxState &st = *_cores[c];
        if (!st.active() || !st.writeSet.count(block))
            continue;
        auto it = st.datmStoreSeq.find(word);
        if (it != st.datmStoreSeq.end() && it->second >= newest) {
            newest = it->second;
            producer = c;
        }
    }
    if (producer == reader)
        return kNoCore;
    store_seq = newest;
    return producer;
}

void
TMMachine::datmAbortCascade(CoreId core, AbortCause cause,
                            bool notify_exec, Addr blame)
{
    CoreTxState &root = *_cores[core];
    sim_assert(root.active(), "DATM cascade from idle core %u", core);

    // Collect the initiating transaction plus every transitive
    // *dataflow* successor: transactions that consumed or overwrote a
    // member's speculative data must abort with it. Pure anti/output
    // ordering edges do not cascade.
    std::vector<CoreId> members{core};
    bool grew = true;
    while (grew) {
        grew = false;
        for (CoreId c = 0; c < _ms.numCores(); ++c) {
            CoreTxState &st = *_cores[c];
            if (!st.active())
                continue;
            if (std::find(members.begin(), members.end(), c) !=
                members.end())
                continue;
            for (CoreId m : members) {
                auto it = st.datmPreds.find(_cores[m]->uid);
                if (it != st.datmPreds.end() && (it->second & 2)) {
                    members.push_back(c);
                    grew = true;
                    break;
                }
            }
        }
    }

    // Merge all undo entries and restore newest-first so interleaved
    // forwarded writes unwind in correct reverse order.
    std::vector<UndoEntry> entries;
    for (CoreId m : members)
        for (const UndoEntry &e : _cores[m]->undo.entries())
            entries.push_back(e);
    std::sort(entries.begin(), entries.end(),
              [](const UndoEntry &a, const UndoEntry &b) {
                  return a.seq > b.seq;
              });
    for (const UndoEntry &e : entries)
        _ms.memory().writeWord(e.word, e.oldValue);

    for (CoreId m : members) {
        CoreTxState &st = *_cores[m];
        st.undo.clear();
        releaseCommitTokens(m);
        _activeUids.erase(st.uid);
        st.resetSpeculation();
        ++_stats.aborts;
        Addr bl = (m == core) ? blame : 0;
        _abortBlame[m] = bl;
        ++_abortStreak[m];
        _nackStreak[m] = 0;
        if (bl != 0) {
            ++_conflictHeat[m];
            if (_contention)
                _contention(m, bl);
        }
        AbortCause c = (m == core) ? cause : AbortCause::DatmCascade;
        // Any multi-member cascade (or a dependence-cycle kill) bumps
        // every member's cascade streak: each one's restart will be
        // back-pressured so the chain doesn't instantly rebuild. A
        // plain single-transaction DATM abort is not a cascade.
        if (members.size() > 1 || c == AbortCause::DatmCycle ||
            c == AbortCause::DatmCascade)
            ++_cascadeStreak[m];
        ++_stats.abortsByCause[static_cast<int>(c)];
        emitTrace(m, "abort", 0, static_cast<Word>(c));
        audit(m, trace::EventKind::Abort, bl, 0, 0, std::nullopt,
              rtc::CmpOp::EQ, static_cast<std::uint8_t>(c));
        bool notify = (m != core) || notify_exec;
        if (notify && _onRemoteAbort)
            _onRemoteAbort(m, c);
    }
}

// ---------------------------------------------------------------------
// Coherence listener
// ---------------------------------------------------------------------

void
TMMachine::onRemoteTake(CoreId victim, Addr block,
                        [[maybe_unused]] CoreId by, bool by_write)
{
    CoreTxState &st = *_cores[victim];
    if (!st.active())
        return;
    if (by_write) {
        if (rtc::IvbEntry *e = st.ivb.find(block)) {
            if (!e->lost) {
                e->lost = true;
                emitTrace(victim, "steal", block, 0);
                audit(victim, trace::EventKind::BlockLost, block);
            }
        }
        // Eagerly-protected blocks can only be taken after conflict
        // resolution has already aborted the holder (except in the
        // lazy/DATM modes, where takes are part of normal operation).
        if (_cfg.mode == TMMode::Eager || _cfg.mode == TMMode::LazyVB ||
            _cfg.mode == TMMode::Retcon) {
            sim_assert(!st.readSet.count(block) &&
                           !st.writeSet.count(block),
                       "speculative block 0x%llx stolen from core %u "
                       "without conflict resolution",
                       static_cast<unsigned long long>(block), victim);
        }
    }
}

void
TMMachine::onCapacityEvict(CoreId victim, Addr block)
{
    CoreTxState &st = *_cores[victim];
    if (!st.active())
        return;
    if (!st.readSet.count(block) && !st.writeSet.count(block))
        return;
    // Speculative bits survive in the permissions-only cache (§2).
    if (auto evicted = st.permCache.insert(block)) {
        if (st.readSet.count(*evicted) || st.writeSet.count(*evicted)) {
            // Even the permissions-only cache lost a speculative
            // block: fall back to OneTM serialized execution.
            st.overflowPending = true;
        }
    }
}

// ---------------------------------------------------------------------
// Eager access path
// ---------------------------------------------------------------------

MemOpOutcome
TMMachine::eagerAccess(CoreId core, Addr addr, bool is_write, Word value,
                       unsigned size, bool txnal, bool is_retry)
{
    Addr block = blockAddr(addr);
    Addr word = wordAddr(addr);
    MemOpOutcome out;

    if (_cfg.mode != TMMode::Serial) {
        OpStatus s =
            resolveConflict(core, txnal, block, is_write, is_retry);
        if (s != OpStatus::Ok) {
            out.status = s;
            out.latency = s == OpStatus::Nack ? nackLatency(core) : 0;
            return out;
        }
    }

    mem::AccessResult res = _ms.access(core, block, is_write);
    out.latency = res.latency;

    CoreTxState &st = *_cores[core];
    if (txnal) {
        if (is_write)
            st.writeSet.insert(block);
        else
            st.readSet.insert(block);
    }

    if (is_write) {
        std::uint64_t vid = _writeSeq++;
        if (txnal)
            st.undo.record(word, _ms.memory().readWord(word), vid);
        _ms.memory().write(addr, value, size);
        emitTrace(core, "store", addr, value);
        audit(core, trace::EventKind::Store, addr, value,
              _sink ? _ms.memory().readWord(word) : 0, std::nullopt,
              rtc::CmpOp::EQ, 0, vid);
    } else {
        out.value = _ms.memory().read(addr, size);
        emitTrace(core, "load", addr, out.value);
        audit(core, trace::EventKind::Load, addr, out.value);
    }
    return out;
}

// ---------------------------------------------------------------------
// Non-transactional accesses
// ---------------------------------------------------------------------

MemOpOutcome
TMMachine::plainLoad(CoreId core, Addr addr, unsigned size)
{
    if (_cfg.mode == TMMode::Lazy) {
        // Memory holds only committed data (writes are buffered).
        mem::AccessResult res = _ms.access(core, blockAddr(addr), false);
        MemOpOutcome out;
        out.latency = res.latency;
        out.value = _ms.memory().read(addr, size);
        return out;
    }
    return eagerAccess(core, addr, false, 0, size, false, false);
}

MemOpOutcome
TMMachine::plainStore(CoreId core, Addr addr, Word value, unsigned size)
{
    if (_cfg.mode == TMMode::Lazy) {
        // Acts as a degenerate committed transaction: committer wins.
        Addr block = blockAddr(addr);
        for (CoreId c = 0; c < _ms.numCores(); ++c) {
            if (c == core)
                continue;
            CoreTxState &st = *_cores[c];
            if (st.active() && (st.readSet.count(block) ||
                                st.writeSet.count(block) ||
                                st.ssb.find(wordAddr(addr))))
                doAbort(c, AbortCause::LazyCommitter, true, block);
        }
        mem::AccessResult res = _ms.access(core, block, true);
        _ms.memory().write(addr, value, size);
        MemOpOutcome out;
        out.latency = res.latency;
        return out;
    }
    return eagerAccess(core, addr, true, value, size, false, false);
}

// ---------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------

MemOpOutcome
TMMachine::txBegin(CoreId core, bool is_retry)
{
    CoreTxState &st = *_cores[core];
    sim_assert(st.status == TxStatus::Idle,
               "txBegin on active transaction (core %u)", core);
    sim_assert(!st.commitTokensHeld,
               "txBegin with commit tokens still held (core %u)", core);

    MemOpOutcome out;
    out.latency = _cfg.beginLatency;

    if (_cfg.mode == TMMode::Serial) {
        if (_serialLockHolder != kNoCore && _serialLockHolder != core) {
            out.status = OpStatus::Nack;
            out.latency = nackLatency(core, /*conflict=*/false);
            return out;
        }
        _serialLockHolder = core;
        out.latency = _cfg.serialLockLatency;
    }

    if (!is_retry || !st.hasTimestamp) {
        st.timestamp = _nextTimestamp++;
        st.hasTimestamp = true;
    }
    st.uid = _nextUid++;
    _activeUids[st.uid] = core;
    st.status = TxStatus::Active;
    st.txnStartCycle = _eq.now();
    emitTrace(core, "begin", 0, st.timestamp);
    audit(core, trace::EventKind::TxBegin, 0, st.timestamp, st.uid);
    return out;
}

MemOpOutcome
TMMachine::txLoad(CoreId core, Addr addr, unsigned size, bool is_retry)
{
    CoreTxState &st = *_cores[core];
    sim_assert(st.status == TxStatus::Active,
               "txLoad outside active transaction (core %u)", core);

    if (st.earlyViolation)
        return earlyViolationAbort(core);

    // OneTM overflow handling: acquire the serialization token first.
    if (st.overflowPending && !st.overflowed) {
        if (_overflowTokenHolder != kNoCore) {
            return MemOpOutcome{OpStatus::Nack,
                                nackLatency(core, /*conflict=*/false), 0,
                                std::nullopt};
        }
        _overflowTokenHolder = core;
        st.overflowed = true;
        st.overflowPending = false;
        ++_stats.overflows;
    }

    Addr block = blockAddr(addr);
    Addr word = wordAddr(addr);
    unsigned byte_off = byteInWord(addr);

    switch (_cfg.mode) {
      case TMMode::Serial:
      case TMMode::Eager:
        return eagerAccess(core, addr, false, 0, size, true, is_retry);

      case TMMode::Lazy: {
        if (rtc::SsbEntry *e = st.ssb.find(word)) {
            MemOpOutcome out;
            out.value = extractBytes(e->concrete, byte_off, size);
            out.latency = 1;
            return out;
        }
        mem::AccessResult res = _ms.access(core, block, false);
        st.readSet.insert(block);
        MemOpOutcome out;
        out.latency = res.latency;
        out.value = _ms.memory().read(addr, size);
        emitTrace(core, "load", addr, out.value);
        audit(core, trace::EventKind::Load, addr, out.value);
        return out;
      }

      case TMMode::LazyVB:
      case TMMode::Retcon: {
        // Figure 6: SSB, IVB, and data cache checked in parallel.
        if (_cfg.mode == TMMode::Retcon) {
            if (rtc::SsbEntry *e = st.ssb.find(word)) {
                MemOpOutcome out;
                out.latency = 1;
                if (addr == e->word && size == e->size) {
                    // Clean store-to-load bypass: copy the symbolic
                    // value, flattening the dependence (§4.3).
                    out.value = extractBytes(e->concrete, 0, size);
                    out.sym = e->sym;
                } else {
                    // Complex sub-word forwarding: pin inputs and
                    // reconstruct the merged bytes (§4.3).
                    if (e->sym)
                        pinEquality(core, e->sym->root);
                    Word base = _ms.memory().readWord(word);
                    if (rtc::IvbEntry *ie = st.ivb.find(block)) {
                        unsigned bw = wordInBlock(addr);
                        if (!((ie->frozenMask >> bw) & 1))
                            base = ie->initWords[bw];
                    }
                    Word merged = overlayBytes(base, e->concrete,
                                               byteInWord(e->word),
                                               e->size);
                    out.value = extractBytes(merged, byte_off, size);
                    if (rtc::IvbEntry *ie = st.ivb.find(block)) {
                        unsigned w = wordInBlock(addr);
                        ie->readMask |= 1u << w;
                        ie->eqMask |= 1u << w;
                        // Frozen words are validated at freeze time,
                        // not against the initial value at commit.
                        if (!((ie->frozenMask >> w) & 1))
                            audit(core, trace::EventKind::Pin, word,
                                  ie->initWords[w]);
                    }
                }
                emitTrace(core, "load", addr, out.value);
                audit(core, trace::EventKind::Load, addr, out.value);
                return out;
            }
        }
        if (rtc::IvbEntry *e = st.ivb.find(block)) {
            unsigned w = wordInBlock(addr);
            e->readMask |= 1u << w;
            bool frozen = (e->frozenMask >> w) & 1;
            // A frozen word was overwritten by our own eager store:
            // loads must see that store (memory holds it — we own the
            // block). curWords keeps the *pre-store* value, which is
            // the repair-input snapshot, not the load value.
            Word base = frozen ? _ms.memory().readWord(word)
                               : e->initWords[w];
            MemOpOutcome out;
            out.latency = 1;
            out.value = extractBytes(base, byte_off, size);
            if (_cfg.mode == TMMode::Retcon &&
                isFullWordAccess(addr, size) && !frozen) {
                out.sym = rtc::SymTag{word, 0, 8};
            } else if (!frozen) {
                e->eqMask |= 1u << w;
                audit(core, trace::EventKind::Pin, word,
                      e->initWords[w]);
                // Use-time revalidation: an equality-pinned word whose
                // architectural value already changed dooms this
                // transaction — abort now rather than let it chase
                // stale pointers (zombie containment).
                if (_ms.memory().readWord(word) != e->initWords[w]) {
                    _predictor.observeViolation(block);
                    ++_stats.abortsLazyValueMismatch;
                    doAbort(core, AbortCause::ConstraintViolation,
                            false);
                    return MemOpOutcome{OpStatus::AbortSelf, 0, 0,
                                        std::nullopt};
                }
            }
            emitTrace(core, "load", addr, out.value);
            audit(core,
                  out.sym ? trace::EventKind::SymLoad
                          : trace::EventKind::Load,
                  addr, out.value, 0, out.sym);
            return out;
        }
        if (!st.ivb.full() && _predictor.shouldTrack(block))
            return symbolicFirstLoad(core, addr, size, is_retry);
        return eagerAccess(core, addr, false, 0, size, true, is_retry);
      }

      case TMMode::DATM: {
        for (CoreId h = 0; h < _ms.numCores(); ++h) {
            if (h == core)
                continue;
            CoreTxState &hs = *_cores[h];
            if (!hs.active() || !hs.writeSet.count(block))
                continue;
            if (hs.datmPreds.count(st.uid) ||
                datmCreatesCycle(hs.uid, st.uid)) {
                // Cyclic dependence: abort the younger (Figure 2b).
                if (hs.timestamp > st.timestamp) {
                    datmAbortCascade(h, AbortCause::DatmCycle, true,
                                     block);
                    continue;
                }
                datmAbortCascade(core, AbortCause::DatmCycle, false,
                                 block);
                return MemOpOutcome{OpStatus::AbortSelf, 0, 0,
                                    std::nullopt};
            }
            st.datmPreds[hs.uid] |= 2; // Dataflow: forwarded value.
        }
        mem::AccessResult res = _ms.access(core, block, false);
        st.readSet.insert(block);
        MemOpOutcome out;
        out.latency = res.latency;
        // The dependence edges above are block-granular (conservative
        // ordering); the value flow the audit re-derives is per word.
        // A load consumes forwarded data exactly when the word's
        // current value is another in-flight transaction's store, in
        // which case a Forward record (replacing the plain Load)
        // names the producing attempt and store so the reenactment
        // validator can resolve this read against the producer's
        // logged write instead of trusting architectural memory.
        // This second O(cores) pass deliberately runs after the edge
        // loop: cycle resolution above can cascade-abort a candidate
        // producer and roll the word back, so any producer collected
        // mid-loop could be stale.
        std::uint64_t store_seq = 0;
        CoreId producer = findForwardProducer(core, word, store_seq);
        if (producer != kNoCore) {
            Word delivered =
                _ms.memory().readWord(word) ^ _cfg.faultInjectForwardXor;
            out.value = extractBytes(delivered, byte_off, size);
            ++_stats.fwdReads;
            st.datmForwardedRead = true;
            emitTrace(core, "forward", addr, out.value);
            audit(core, trace::EventKind::Forward, word, delivered,
                  _cores[producer]->uid, std::nullopt, rtc::CmpOp::EQ,
                  0, store_seq);
        } else {
            out.value = _ms.memory().read(addr, size);
            emitTrace(core, "load", addr, out.value);
            audit(core, trace::EventKind::Load, addr, out.value);
        }
        return out;
      }
    }
    panic("unreachable txLoad mode");
}

MemOpOutcome
TMMachine::symbolicFirstLoad(CoreId core, Addr addr, unsigned size,
                             bool is_retry)
{
    CoreTxState &st = *_cores[core];
    Addr block = blockAddr(addr);

    // The first symbolic load performs a real coherence read, so it
    // still conflicts with remote speculative *writers* (§4.2: loads
    // not involved with symbolic repair use the baseline detection;
    // the repair machinery only tolerates later remote writes).
    OpStatus s = resolveConflict(core, true, block, false, is_retry);
    if (s != OpStatus::Ok) {
        return MemOpOutcome{
            s, s == OpStatus::Nack ? nackLatency(core) : Cycle(0), 0,
            std::nullopt};
    }

    mem::AccessResult res = _ms.access(core, block, false);

    std::array<Word, kWordsPerBlock> words{};
    for (unsigned i = 0; i < kWordsPerBlock; ++i)
        words[i] = _ms.memory().readWord(block + i * kWordBytes);

    rtc::IvbEntry *e = st.ivb.allocate(block, words);
    sim_assert(e, "symbolicFirstLoad with full IVB");

    unsigned w = wordInBlock(addr);
    e->readMask |= 1u << w;

    MemOpOutcome out;
    out.latency = res.latency;
    out.value = extractBytes(words[w], byteInWord(addr), size);
    if (_cfg.mode == TMMode::Retcon && isFullWordAccess(addr, size)) {
        out.sym = rtc::SymTag{wordAddr(addr), 0, 8};
    } else {
        e->eqMask |= 1u << w;
        audit(core, trace::EventKind::Pin, wordAddr(addr), words[w]);
    }
    emitTrace(core, "load", addr, out.value);
    audit(core,
          out.sym ? trace::EventKind::SymLoad : trace::EventKind::Load,
          addr, out.value, 0, out.sym);
    return out;
}

MemOpOutcome
TMMachine::txStore(CoreId core, Addr addr, Word value,
                   const std::optional<rtc::SymTag> &sym, unsigned size,
                   bool is_retry)
{
    CoreTxState &st = *_cores[core];
    sim_assert(st.status == TxStatus::Active,
               "txStore outside active transaction (core %u)", core);

    if (st.earlyViolation)
        return earlyViolationAbort(core);

    if (st.overflowPending && !st.overflowed) {
        if (_overflowTokenHolder != kNoCore) {
            return MemOpOutcome{OpStatus::Nack,
                                nackLatency(core, /*conflict=*/false), 0,
                                std::nullopt};
        }
        _overflowTokenHolder = core;
        st.overflowed = true;
        st.overflowPending = false;
        ++_stats.overflows;
    }

    Addr block = blockAddr(addr);
    Addr word = wordAddr(addr);

    switch (_cfg.mode) {
      case TMMode::Serial:
      case TMMode::Eager:
        return eagerAccess(core, addr, true, value, size, true, is_retry);

      case TMMode::Lazy: {
        Word base = _ms.memory().readWord(word);
        if (rtc::SsbEntry *e = st.ssb.find(word))
            base = e->concrete;
        Word merged = overlayBytes(base, value, byteInWord(addr), size);
        auto put = st.ssb.put(word, merged, std::nullopt, 8);
        sim_assert(put != rtc::SymbolicStoreBuffer::Put::Full,
                   "lazy write buffer is unbounded");
        st.writeSet.insert(block);
        emitTrace(core, "store", addr, value);
        audit(core, trace::EventKind::SymStore, word, merged);
        return MemOpOutcome{OpStatus::Ok, 1, 0, std::nullopt};
      }

      case TMMode::LazyVB:
        return retconEagerStore(core, addr, value, size, is_retry);

      case TMMode::Retcon: {
        bool aligned = isFullWordAccess(addr, size);
        if (sym && aligned) {
            auto put = st.ssb.put(word, value, sym, 8);
            if (put != rtc::SymbolicStoreBuffer::Put::Full) {
                if (rtc::IvbEntry *e = st.ivb.find(block))
                    e->written = true;
                emitTrace(core, "store", addr, value);
                // aux=1 marks an overwrite of an earlier symbolic
                // store to the same word (last writer wins at drain).
                audit(core, trace::EventKind::SymStore, word, value, 0,
                      sym, rtc::CmpOp::EQ,
                      put == rtc::SymbolicStoreBuffer::Put::Updated ? 1
                                                                    : 0);
                return MemOpOutcome{OpStatus::Ok, 1, 0, std::nullopt};
            }
            // SSB full: pin the input and store eagerly (sound, not
            // repairable).
            pinEquality(core, sym->root);
        } else if (sym && !aligned) {
            // Sub-word symbolic data: untrackable (§4.3).
            pinEquality(core, sym->root);
        }
        return retconEagerStore(core, addr, value, size, is_retry);
      }

      case TMMode::DATM: {
        // A re-write invalidates values already forwarded to readers:
        // any transaction that consumed our speculative data for this
        // block read a stale intermediate value and must abort.
        for (CoreId s = 0; s < _ms.numCores(); ++s) {
            if (s == core)
                continue;
            CoreTxState &ss = *_cores[s];
            if (!ss.active())
                continue;
            auto it = ss.datmPreds.find(st.uid);
            if (it != ss.datmPreds.end() && (it->second & 2) &&
                ss.readSet.count(block) && st.writeSet.count(block)) {
                datmAbortCascade(s, AbortCause::DatmCascade, true,
                                 block);
            }
        }
        for (CoreId h = 0; h < _ms.numCores(); ++h) {
            if (h == core)
                continue;
            CoreTxState &hs = *_cores[h];
            if (!hs.active())
                continue;
            bool waw = hs.writeSet.count(block);
            bool anti = hs.readSet.count(block);
            if (!waw && !anti)
                continue;
            if (hs.datmPreds.count(st.uid) ||
                datmCreatesCycle(hs.uid, st.uid)) {
                if (hs.timestamp > st.timestamp) {
                    datmAbortCascade(h, AbortCause::DatmCycle, true,
                                     block);
                    continue;
                }
                datmAbortCascade(core, AbortCause::DatmCycle, false,
                                 block);
                return MemOpOutcome{OpStatus::AbortSelf, 0, 0,
                                    std::nullopt};
            }
            // WAW: our write layers above theirs (dataflow); pure
            // read-before-write is anti ordering only.
            st.datmPreds[hs.uid] |= waw ? 2 : 1;
        }
        mem::AccessResult res = _ms.access(core, block, true);
        st.writeSet.insert(block);
        std::uint64_t vid = _writeSeq++;
        st.undo.record(word, _ms.memory().readWord(word), vid);
        st.datmStoreSeq[word] = vid;
        _ms.memory().write(addr, value, size);
        emitTrace(core, "store", addr, value);
        audit(core, trace::EventKind::Store, addr, value,
              _sink ? _ms.memory().readWord(word) : 0, std::nullopt,
              rtc::CmpOp::EQ, 0, vid);
        return MemOpOutcome{OpStatus::Ok, res.latency, 0, std::nullopt};
      }
    }
    panic("unreachable txStore mode");
}

MemOpOutcome
TMMachine::retconEagerStore(CoreId core, Addr addr, Word value,
                            unsigned size, bool is_retry)
{
    CoreTxState &st = *_cores[core];
    Addr block = blockAddr(addr);
    Addr word = wordAddr(addr);

    // A normal store invalidates any SSB entry for the address
    // (Figure 8, time 10) and writes speculatively into the cache.
    st.ssb.invalidate(word);

    // Acquire the block eagerly *first*: conflict resolution must run
    // before we look at the word's pre-store value, otherwise we could
    // freeze a remote core's uncommitted data.
    OpStatus s = resolveConflict(core, true, block, true, is_retry);
    if (s != OpStatus::Ok) {
        MemOpOutcome out;
        out.status = s;
        out.latency = s == OpStatus::Nack ? nackLatency(core) : 0;
        return out;
    }
    mem::AccessResult res = _ms.access(core, block, true);

    // Storing into a value-tracked word fixes its input value: validate
    // the pre-store (now conflict-free) value and freeze it so the
    // pre-commit walk never compares the word against our own store.
    if (rtc::IvbEntry *e = st.ivb.find(block)) {
        unsigned w = wordInBlock(addr);
        bool already_frozen = (e->frozenMask >> w) & 1;
        if (!already_frozen) {
            Word pre = _ms.memory().readWord(word);
            bool value_sensitive =
                ((e->readMask >> w) & 1) && ((e->eqMask >> w) & 1);
            if (value_sensitive && pre != e->initWords[w]) {
                _predictor.observeViolation(block);
                ++_stats.abortsLazyValueMismatch;
                doAbort(core, AbortCause::ConstraintViolation, false);
                return MemOpOutcome{OpStatus::AbortSelf, 0, 0,
                                    std::nullopt};
            }
            if (!st.constraints.satisfied(
                    word, static_cast<std::int64_t>(pre))) {
                _predictor.observeViolation(block);
                doAbort(core, AbortCause::ConstraintViolation, false);
                return MemOpOutcome{OpStatus::AbortSelf, 0, 0,
                                    std::nullopt};
            }
            e->curWords[w] = pre;
            e->frozenMask |= 1u << w;
            audit(core, trace::EventKind::Freeze, word, pre);
        }
    }

    st.writeSet.insert(block);
    std::uint64_t vid = _writeSeq++;
    st.undo.record(word, _ms.memory().readWord(word), vid);
    _ms.memory().write(addr, value, size);
    emitTrace(core, "store", addr, value);
    audit(core, trace::EventKind::Store, addr, value,
          _sink ? _ms.memory().readWord(word) : 0, std::nullopt,
          rtc::CmpOp::EQ, 0, vid);
    return MemOpOutcome{OpStatus::Ok, res.latency, 0, std::nullopt};
}

void
TMMachine::recordBranchConstraint(CoreId core, const rtc::SymTag &sym,
                                  rtc::CmpOp op, std::int64_t rhs,
                                  bool taken)
{
    CoreTxState &st = *_cores[core];
    sim_assert(st.status == TxStatus::Active,
               "branch constraint outside transaction");
    if (_cfg.mode != TMMode::Retcon) {
        return;
    }
    rtc::CmpOp eff = taken ? op : rtc::negate(op);
    // Normalize ([root] + delta) OP rhs  to  [root] OP (rhs - delta).
    std::int64_t k = rhs - sym.delta;
    auto r = st.constraints.record(sym.root, eff, k);
    switch (r) {
      case rtc::ConstraintBuffer::Record::Ok:
        audit(core, trace::EventKind::Constraint, sym.root,
              static_cast<Word>(k), 0, std::nullopt, eff);
        break;
      case rtc::ConstraintBuffer::Record::Full:
      case rtc::ConstraintBuffer::Record::Inexact:
        pinEquality(core, sym.root);
        break;
      case rtc::ConstraintBuffer::Record::Unsat:
        panic("constraint record %s: the recorded set excludes the "
              "executed value (root 0x%llx)",
              rtc::ConstraintBuffer::recordName(r),
              static_cast<unsigned long long>(sym.root));
    }
}

void
TMMachine::pinEquality(CoreId core, Addr root)
{
    CoreTxState &st = *_cores[core];
    Addr block = blockAddr(root);
    rtc::IvbEntry *e = st.ivb.find(block);
    sim_assert(e, "equality pin for untracked root");
    unsigned w = wordInBlock(root);
    if ((e->frozenMask >> w) & 1)
        return; // Input already fixed and validated.
    e->eqMask |= 1u << w;
    e->readMask |= 1u << w;
    audit(core, trace::EventKind::Pin, root, e->initWords[w]);
    // Use-time revalidation (zombie containment). This runs between
    // instructions where aborting is unsafe; flag the violation and
    // let the next machine operation convert it into an abort.
    if (_ms.memory().readWord(root) != e->initWords[w]) {
        st.earlyViolation = true;
        st.earlyViolationBlock = block;
    }
}

MemOpOutcome
TMMachine::earlyViolationAbort(CoreId core)
{
    CoreTxState &st = *_cores[core];
    _predictor.observeViolation(st.earlyViolationBlock);
    ++_stats.abortsLazyValueMismatch;
    doAbort(core, AbortCause::ConstraintViolation, false);
    return MemOpOutcome{OpStatus::AbortSelf, 0, 0, std::nullopt};
}

// ---------------------------------------------------------------------
// NACK/abort retry backoff
// ---------------------------------------------------------------------

Cycle
TMMachine::backoffExtra(CoreId core, std::uint32_t steps)
{
    const BackoffConfig &b = _cfg.backoff;
    if (steps == 0)
        return 0;
    Cycle extra = 0;
    switch (b.policy) {
      case BackoffPolicy::None:
        return 0;
      case BackoffPolicy::Linear:
        extra = b.base * steps;
        break;
      case BackoffPolicy::ExpCapped:
        // base * 2^(steps-1), saturating well before the shift wraps.
        extra = steps >= 16 ? b.cap
                            : b.base * (Cycle(1) << (steps - 1));
        break;
      case BackoffPolicy::ConflictProportional:
        extra = b.base * _conflictHeat[core];
        break;
    }
    extra = std::min(extra, b.cap);
    if (b.jitter && extra > 1) {
        // Equal jitter: uniform in [extra/2, extra], per-core stream.
        extra = extra / 2 + _backoffRng[core].below(extra / 2 + 1);
    }
    return extra;
}

Cycle
TMMachine::nackLatency(CoreId core, bool conflict)
{
    Cycle lat = _cfg.nackRetryCycles;
    if (_cfg.backoff.policy == BackoffPolicy::None)
        return lat;
    if (conflict)
        ++_conflictHeat[core];
    ++_nackStreak[core];
    Cycle extra = backoffExtra(core, _nackStreak[core]);
    if (extra > 0) {
        ++_stats.backoffNacks;
        _stats.backoffCycles += extra;
    }
    return lat + extra;
}

Cycle
TMMachine::restartBackoff(CoreId core)
{
    // DATM cascade back-pressure: deterministic (no jitter),
    // independent of the retry-backoff policy, charged only to cores
    // whose last abort came from a forwarding cascade — every
    // non-DATM mode never builds a streak and is bit-identical.
    Cycle cascade = 0;
    if (_cfg.datmCascadeBackpressure && _cascadeStreak[core] > 0) {
        std::uint32_t s = std::min(_cascadeStreak[core] - 1, 16u);
        cascade = std::min(_cfg.datmCascadeCap,
                           _cfg.datmCascadeBase << s);
        ++_stats.cascadeBpRestarts;
        _stats.cascadeBpCycles += cascade;
    }
    if (_cfg.backoff.policy == BackoffPolicy::None)
        return cascade;
    Cycle extra = backoffExtra(core, _abortStreak[core]);
    if (extra > 0) {
        ++_stats.backoffRestarts;
        _stats.backoffCycles += extra;
    }
    return cascade + extra;
}

// ---------------------------------------------------------------------
// Commit-token arbitration (per directory bank)
// ---------------------------------------------------------------------

std::uint64_t
TMMachine::neededBankMask(CoreId core) const
{
    // Every block the commit protocol will write: the eager write set,
    // the SSB drain targets, and tracked blocks the pre-commit walk
    // reacquires for writing. Computed once at acquisition time — the
    // write set only grows during commit with blocks already named
    // here.
    const CoreTxState &st = *_cores[core];
    std::uint64_t mask = 0;
    auto add = [&](Addr block) {
        mask |= std::uint64_t(1) << _ms.bankOf(block);
    };
    for (Addr b : st.writeSet)
        add(b);
    for (const rtc::SsbEntry &e : st.ssb.entries())
        add(blockAddr(e.word));
    for (const rtc::IvbEntry &e : st.ivb.entries())
        if (e.written)
            add(e.block);
    return mask;
}

bool
TMMachine::acquireCommitTokens(CoreId core)
{
    CoreTxState &st = *_cores[core];
    _tokenWireLat = 0;
    if (st.commitTokensHeld)
        return true;
    if (!st.commitBankMaskValid) {
        st.commitBankMask = neededBankMask(core);
        st.commitBankMaskValid = true;
    }
    std::uint64_t need = st.commitBankMask;
    std::uint64_t req_ts = effectiveTs(core, true);
    const net::FleetTopology &topo = _ms.topology();
    unsigned my = topo.clusterOfCore(core);

    // All-or-nothing, oldest-wins. An older holder makes us wait; a
    // younger holder is aborted (it releases its tokens and retries),
    // exactly mirroring the block-level conflict policy. Waits
    // therefore only ever run younger -> older, so the oldest
    // committer always progresses and arbitration cannot deadlock.
    //
    // Two-level in a fleet: the committer's own cluster's tokens are
    // checked first with no wire cost — a local loss NACKs before any
    // remote cluster is bothered. Only then are the remote clusters
    // holding needed banks contacted, in parallel, one control round
    // trip each; grant or NACK is learned from the slowest reply, so
    // the wire cost (max RTT over contacted clusters) is paid either
    // way and shows up in the commit step's latency.
    for (unsigned b = 0; b < _bankTokens.size(); ++b) {
        if (!((need >> b) & 1) || topo.clusterOfBank(b) != my)
            continue;
        CoreId h = _bankTokens[b].holder;
        if (h == kNoCore || h == core)
            continue;
        if (effectiveTs(h, true) < req_ts) {
            ++_stats.tokenWaits;
            ++_bankTokens[b].stats.waits;
            ++_tokenWaitsByCore[core];
            emitTrace(core, "token-wait", b, h);
            audit(core, trace::EventKind::TokenWait, b, h, need);
            if (_contention)
                _contention(core, tokenBlameKey(b));
            return false;
        }
    }
    if (_net && topo.fleet()) {
        for (unsigned c = 0; c < topo.clusters; ++c) {
            if (c == my)
                continue;
            std::uint64_t cluster_banks =
                need >> (c * topo.banksPerCluster);
            cluster_banks &= (std::uint64_t(1) << topo.banksPerCluster) - 1;
            if (!cluster_banks)
                continue;
            Cycle rtt = _net->roundTrip(my, c, net::kCtrlMsgWords,
                                        net::kCtrlMsgWords, _eq.now());
            _tokenWireLat = std::max(_tokenWireLat, rtt);
            ++_stats.xcTokenMsgs;
        }
        _stats.xcTokenCycles += _tokenWireLat;
    }
    for (unsigned b = 0; b < _bankTokens.size(); ++b) {
        if (!((need >> b) & 1) || topo.clusterOfBank(b) == my)
            continue;
        CoreId h = _bankTokens[b].holder;
        if (h == kNoCore || h == core)
            continue;
        if (effectiveTs(h, true) < req_ts) {
            ++_stats.tokenWaits;
            ++_stats.xcTokenWaits;
            ++_bankTokens[b].stats.waits;
            ++_tokenWaitsByCore[core];
            ++_xcTokenWaitsByCore[core];
            emitTrace(core, "token-wait", b, h);
            audit(core, trace::EventKind::TokenWait, b, h, need);
            if (_contention)
                _contention(core, tokenBlameKey(b));
            return false;
        }
    }
    // Evict younger holders first (doAbort releases their tokens),
    // then take every needed bank — never assign tokens partially.
    for (unsigned b = 0; b < _bankTokens.size(); ++b) {
        if (!((need >> b) & 1))
            continue;
        CoreId h = _bankTokens[b].holder;
        if (h != kNoCore && h != core) {
            ++_stats.tokenSteals;
            doAbort(h, AbortCause::Conflict, true, tokenBlameKey(b));
        }
    }
    if (!st.active()) {
        // Defensive: a cascade from aborting a holder reached us
        // (cannot happen — commit-order waits resolve every
        // predecessor first — but never hand tokens to an idle
        // transaction).
        return false;
    }
    for (unsigned b = 0; b < _bankTokens.size(); ++b) {
        if (!((need >> b) & 1))
            continue;
        _bankTokens[b].holder = core;
        ++_bankTokens[b].stats.acquires;
    }
    st.heldBankMask = need;
    st.commitTokensHeld = true;
    ++_stats.tokenAcquires;
    return true;
}

void
TMMachine::releaseCommitTokens(CoreId core)
{
    CoreTxState &st = *_cores[core];
    if (!st.commitTokensHeld)
        return;
    for (unsigned b = 0; b < _bankTokens.size(); ++b)
        if (((st.heldBankMask >> b) & 1) && _bankTokens[b].holder == core)
            _bankTokens[b].holder = kNoCore;
    st.heldBankMask = 0;
    st.commitTokensHeld = false;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
TMMachine::noteSymRegsRepaired(CoreId core, std::uint64_t n)
{
    _cores[core]->symRegsRepaired = n;
}

Word
TMMachine::finalRootValue(CoreId core, Addr root) const
{
    const CoreTxState &st = *_cores[core];
    auto it = st.finalRoots.find(root);
    sim_assert(it != st.finalRoots.end(),
               "no final value for root 0x%llx",
               static_cast<unsigned long long>(root));
    return it->second;
}

bool
TMMachine::wouldTrack(Addr block) const
{
    return (_cfg.mode == TMMode::Retcon || _cfg.mode == TMMode::LazyVB) &&
           _predictor.shouldTrack(block);
}

CommitStepOutcome
TMMachine::commitStep(CoreId core, bool is_retry)
{
    CoreTxState &st = *_cores[core];
    sim_assert(st.active(), "commitStep on idle core %u", core);

    if (st.status == TxStatus::Active) {
        st.status = TxStatus::Committing;
        st.commitPhase = 0;
        audit(core, trace::EventKind::CommitStart);
    }

    CommitStepOutcome out;
    switch (_cfg.mode) {
      case TMMode::Serial:
      case TMMode::Eager:
      case TMMode::DATM:
        if (_cfg.mode == TMMode::DATM) {
            // Globally-enforced commit order: wait for predecessors.
            for (const auto &[p, flags] : st.datmPreds) {
                if (_activeUids.count(p)) {
                    out.status = OpStatus::Nack;
                    out.latency = nackLatency(core, /*conflict=*/false);
                    st.commitCycles += out.latency;
                    return out;
                }
            }
        }
        // Tokens are requested only after every commit-order
        // predecessor resolved (DATM), so a token holder can never be
        // waiting on the requester.
        if (_cfg.commitTokenArbitration && _cfg.mode != TMMode::Serial &&
            !acquireCommitTokens(core)) {
            out.status = OpStatus::Nack;
            out.latency = nackLatency(core) + _tokenWireLat;
            st.commitCycles += out.latency;
            return out;
        }
        if (st.commitPhase == 0) {
            st.commitPhase = 3;
            out.latency = _cfg.commitTokenLatency + _tokenWireLat;
            st.commitCycles += out.latency;
            return out;
        }
        return finalizeCommit(core);

      case TMMode::Lazy:
        return commitStepLazy(core, is_retry);

      case TMMode::LazyVB:
      case TMMode::Retcon:
        return commitStepRetcon(core, is_retry);
    }
    panic("unreachable commitStep mode");
}

CommitStepOutcome
TMMachine::commitStepRetcon(CoreId core, bool is_retry)
{
    CoreTxState &st = *_cores[core];
    CommitStepOutcome out;

    if (st.commitPhase == 0) {
        if (_cfg.commitTokenArbitration && !acquireCommitTokens(core)) {
            out.status = OpStatus::Nack;
            out.latency = nackLatency(core) + _tokenWireLat;
            st.commitCycles += out.latency;
            return out;
        }
        st.commitPhase = 1;
        st.commitIvbIdx = 0;
        st.commitSsbIdx = 0;
        out.latency = _cfg.commitTokenLatency + _tokenWireLat;
        st.commitCycles += out.latency;
        return out;
    }

    // Phase 1 (Figure 7, step 1): reacquire lost blocks, validate.
    if (st.commitPhase == 1) {
        if (st.commitIvbIdx >= st.ivb.entries().size()) {
            st.commitPhase = 2;
            // Every tracked block is now reacquired and protected by
            // the conflict sets: the roots' architectural values are
            // final for the rest of the commit.
            audit(core, trace::EventKind::CommitDrain);
            return commitStepRetcon(core, is_retry);
        }
        std::size_t count = _cfg.parallelReacquire
                                ? st.ivb.entries().size() -
                                      st.commitIvbIdx
                                : 1;
        Cycle max_lat = 0;
        for (std::size_t n = 0; n < count; ++n) {
            rtc::IvbEntry &e = st.ivb.entries()[st.commitIvbIdx];
            bool want_write = e.written; // §4.4 upgrade-miss avoidance.
            bool have = want_write
                            ? _ms.hasWritePerm(core, e.block)
                            : _ms.hasReadPerm(core, e.block);
            Cycle lat = _ms.timing().l1Hit;
            if (!have) {
                OpStatus s = resolveConflict(core, true, e.block,
                                             want_write, is_retry);
                if (s == OpStatus::Nack) {
                    out.status = OpStatus::Nack;
                    out.latency = nackLatency(core);
                    st.commitCycles += out.latency;
                    return out;
                }
                if (s == OpStatus::AbortSelf) {
                    out.status = OpStatus::AbortSelf;
                    out.latency = 0;
                    return out;
                }
                mem::AccessResult res =
                    _ms.access(core, e.block, want_write);
                lat = res.latency;
            }
            // Protect the block eagerly for the rest of the commit
            // (Figure 7 sets the speculatively-read bit).
            st.readSet.insert(e.block);
            if (want_write)
                st.writeSet.insert(e.block);

            // Refresh final values and check all constraints.
            for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                if (!((e.frozenMask >> w) & 1)) {
                    e.curWords[w] = _ms.memory().readWord(
                        e.block + w * kWordBytes);
                }
                bool read = (e.readMask >> w) & 1;
                if (!read)
                    continue;
                bool eq = (e.eqMask >> w) & 1;
                if (eq && !((e.frozenMask >> w) & 1) &&
                    e.curWords[w] != e.initWords[w]) {
                    _predictor.observeViolation(e.block);
                    doAbort(core, AbortCause::ConstraintViolation,
                            false);
                    out.status = OpStatus::AbortSelf;
                    out.latency = 0;
                    ++_stats.abortsLazyValueMismatch;
                    return out;
                }
                Addr word_addr = e.block + w * kWordBytes;
                if (!st.constraints.satisfied(
                        word_addr,
                        static_cast<std::int64_t>(e.curWords[w]))) {
                    _predictor.observeViolation(e.block);
                    doAbort(core, AbortCause::ConstraintViolation,
                            false);
                    out.status = OpStatus::AbortSelf;
                    out.latency = 0;
                    return out;
                }
            }
            ++st.commitIvbIdx;
            max_lat = std::max(max_lat, lat);
        }
        out.latency = max_lat;
        st.commitCycles += out.latency;
        emitTrace(core, "repair", 0, 0);
        return out;
    }

    // Phase 2 (Figure 7, step 2): drain the symbolic store buffer.
    if (st.commitPhase == 2) {
        if (st.commitSsbIdx >= st.ssb.entries().size()) {
            st.commitPhase = 3;
            return finalizeCommit(core);
        }
        rtc::SsbEntry &e = st.ssb.entries()[st.commitSsbIdx];
        Addr block = blockAddr(e.word);
        Cycle lat = _ms.timing().l1Hit;
        if (!_ms.hasWritePerm(core, block)) {
            OpStatus s =
                resolveConflict(core, true, block, true, is_retry);
            if (s == OpStatus::Nack) {
                out.status = OpStatus::Nack;
                out.latency = nackLatency(core);
                st.commitCycles += out.latency;
                return out;
            }
            if (s == OpStatus::AbortSelf) {
                out.status = OpStatus::AbortSelf;
                out.latency = 0;
                return out;
            }
            mem::AccessResult res = _ms.access(core, block, true);
            lat = res.latency;
        }
        st.writeSet.insert(block);
        Word value = e.concrete;
        if (e.sym) {
            rtc::IvbEntry *root_entry =
                st.ivb.find(blockAddr(e.sym->root));
            sim_assert(root_entry, "symbolic store with untracked root");
            Word root_val =
                root_entry->curWords[wordInBlock(e.sym->root)];
            value = rtc::evalSym(*e.sym, root_val);
        }
        value ^= _cfg.faultInjectRepairXor;
        Word before = _ms.memory().readWord(e.word);
        st.undo.record(e.word, before, _writeSeq++);
        _ms.memory().write(e.word, value, e.size);
        emitTrace(core, "repair-store", e.word, value);
        audit(core, trace::EventKind::Repair, e.word, before, value,
              e.sym);
        ++st.commitSsbIdx;
        out.latency = _cfg.freeCommitStores ? 0 : lat;
        st.commitCycles += out.latency;
        return out;
    }

    return finalizeCommit(core);
}

CommitStepOutcome
TMMachine::commitStepLazy(CoreId core, [[maybe_unused]] bool is_retry)
{
    CoreTxState &st = *_cores[core];
    CommitStepOutcome out;

    if (st.commitPhase == 0) {
        if (_lazyCommitToken != kNoCore && _lazyCommitToken != core) {
            out.status = OpStatus::Nack;
            out.latency = nackLatency(core, /*conflict=*/false);
            st.commitCycles += out.latency;
            return out;
        }
        _lazyCommitToken = core;
        st.commitPhase = 2;
        st.commitSsbIdx = 0;
        audit(core, trace::EventKind::CommitDrain);
        out.latency = _cfg.commitTokenLatency;
        st.commitCycles += out.latency;
        return out;
    }

    if (st.commitPhase == 2) {
        if (st.commitSsbIdx >= st.ssb.entries().size()) {
            st.commitPhase = 3;
            return finalizeCommit(core);
        }
        rtc::SsbEntry &e = st.ssb.entries()[st.commitSsbIdx];
        Addr block = blockAddr(e.word);
        // Committer wins: every other transaction that touched this
        // block aborts (Figure 2e).
        for (CoreId c = 0; c < _ms.numCores(); ++c) {
            if (c == core)
                continue;
            CoreTxState &cs = *_cores[c];
            if (!cs.active())
                continue;
            bool touched = cs.readSet.count(block) ||
                           cs.writeSet.count(block);
            if (touched)
                doAbort(c, AbortCause::LazyCommitter, true, block);
        }
        mem::AccessResult res = _ms.access(core, block, true);
        Word value = e.concrete ^ _cfg.faultInjectRepairXor;
        Word before = _ms.memory().readWord(e.word);
        _ms.memory().writeWord(e.word, value);
        audit(core, trace::EventKind::Repair, e.word, before, value);
        ++st.commitSsbIdx;
        out.latency = res.latency;
        st.commitCycles += out.latency;
        return out;
    }

    return finalizeCommit(core);
}

CommitStepOutcome
TMMachine::finalizeCommit(CoreId core)
{
    CoreTxState &st = *_cores[core];

    // Publish final root values for symbolic register repair.
    st.finalRoots.clear();
    for (const rtc::IvbEntry &e : st.ivb.entries())
        for (unsigned w = 0; w < kWordsPerBlock; ++w)
            st.finalRoots[e.block + w * kWordBytes] = e.curWords[w];

    sampleTxnStats(core);

    if (_serialLockHolder == core)
        _serialLockHolder = kNoCore;
    if (_overflowTokenHolder == core)
        _overflowTokenHolder = kNoCore;
    if (_lazyCommitToken == core)
        _lazyCommitToken = kNoCore;
    releaseCommitTokens(core);
    _activeUids.erase(st.uid);

    // The forwarded-data flag must be read before resetSpeculation()
    // clears it; it rides on the commit record so exports make the
    // validator's treat-DATM-as-eager gap visible per commit.
    std::uint8_t commit_aux =
        st.datmForwardedRead ? trace::kCommitAuxDatmForwarded : 0;
    st.resetSpeculation();
    st.hasTimestamp = false;
    // Backoff streaks end with the transaction; conflict heat decays
    // geometrically so the proportional policy tracks *recent*
    // pressure instead of a whole run's history.
    _nackStreak[core] = 0;
    _abortStreak[core] = 0;
    _conflictHeat[core] >>= 1;
    _cascadeStreak[core] = 0;
    ++_stats.commits;
    emitTrace(core, "commit", 0, 0);
    audit(core, trace::EventKind::Commit, 0, 0, 0, std::nullopt,
          rtc::CmpOp::EQ, commit_aux);

    CommitStepOutcome out;
    out.done = true;
    out.latency = 1;
    return out;
}

void
TMMachine::sampleTxnStats(CoreId core)
{
    CoreTxState &st = *_cores[core];
    _stats.blocksLost.sample(static_cast<double>(st.ivb.lostCount()));
    _stats.blocksTracked.sample(static_cast<double>(st.ivb.size()));
    _stats.symRegs.sample(static_cast<double>(st.symRegsRepaired));
    _stats.privateStores.sample(static_cast<double>(st.ssb.size()));
    _stats.constraintAddrs.sample(
        static_cast<double>(st.constraints.size()));
    _stats.commitCycles.sample(static_cast<double>(st.commitCycles));
    _stats.totalCommitCycles += static_cast<double>(st.commitCycles);
    _stats.totalTxnCycles +=
        static_cast<double>(_eq.now() - st.txnStartCycle);
}

} // namespace retcon::htm
