/**
 * @file
 * Eager version management: per-transaction undo log.
 *
 * The baseline HTM (§2) uses eager version management — speculative
 * stores update memory in place and log the previous value. Rollback
 * restores entries newest-first. Entries carry a global sequence number
 * so that DATM cascades can merge logs from several transactions and
 * still restore in correct reverse write order.
 */

#ifndef RETCON_HTM_UNDO_LOG_HPP
#define RETCON_HTM_UNDO_LOG_HPP

#include <cstdint>
#include <vector>

#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

namespace retcon::htm {

/** One logged pre-image. */
struct UndoEntry {
    Addr word;          ///< Word-aligned address.
    Word oldValue;      ///< Full pre-image of the word.
    std::uint64_t seq;  ///< Global write sequence number.
};

/** Append-only undo log with newest-first rollback. */
class UndoLog
{
  public:
    /** Log the current value of @p word before a speculative store. */
    void
    record(Addr word, Word old_value, std::uint64_t seq)
    {
        _entries.push_back(UndoEntry{word, old_value, seq});
    }

    /** Restore all pre-images into @p memory, newest first. */
    void
    rollback(mem::SparseMemory &memory)
    {
        for (auto it = _entries.rbegin(); it != _entries.rend(); ++it)
            memory.writeWord(it->word, it->oldValue);
        _entries.clear();
    }

    const std::vector<UndoEntry> &entries() const { return _entries; }
    std::size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }
    void clear() { _entries.clear(); }

  private:
    std::vector<UndoEntry> _entries;
};

} // namespace retcon::htm

#endif // RETCON_HTM_UNDO_LOG_HPP
