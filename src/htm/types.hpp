/**
 * @file
 * Shared vocabulary types for the transactional memory machine.
 */

#ifndef RETCON_HTM_TYPES_HPP
#define RETCON_HTM_TYPES_HPP

#include <cstdint>
#include <optional>

#include "retcon/predictor.hpp"
#include "retcon/symbolic.hpp"
#include "sim/types.hpp"

namespace retcon::htm {

/** Concurrency-control mode of the machine (one mode per run). */
enum class TMMode : std::uint8_t {
    Serial,   ///< Transactions serialize on a global lock (no speculation).
    Eager,    ///< Baseline HTM: eager conflict detection + version mgmt.
    Lazy,     ///< TCC-style: buffered writes, committer-wins at commit.
    LazyVB,   ///< RETCON variant: value-based read validation, no repair.
    Retcon,   ///< Full RETCON: symbolic tracking + commit-time repair.
    DATM,     ///< Dependence-aware TM: speculative value forwarding.
};

/** Name string for reports. */
const char *tmModeName(TMMode m);

/** Contention-management policy for eager conflicts (§2). */
enum class CMPolicy : std::uint8_t {
    OldestWins,      ///< Timestamp policy: younger side aborts/stalls.
    RequesterLoses,  ///< Requester aborts itself (Figure 2c).
    RequesterWins,   ///< Holders abort (livelock-prone; for the ablation).
};

const char *cmPolicyName(CMPolicy p);

/** Lifecycle state of a core's current transaction. */
enum class TxStatus : std::uint8_t { Idle, Active, Committing };

/** Why a transaction aborted. */
enum class AbortCause : std::uint8_t {
    None,
    Conflict,            ///< Lost an eager conflict.
    ConstraintViolation, ///< RETCON commit-time check failed.
    LazyValidation,      ///< lazy-vb value mismatch at commit.
    LazyCommitter,       ///< Aborted by a lazy committer's write set.
    DatmCycle,           ///< Cyclic dependence (DATM).
    DatmCascade,         ///< Cascaded abort of a forwarded value (DATM).
    Overflow,            ///< Could not obtain the OneTM overflow token.
    Explicit,            ///< Workload-requested abort.
    Zombie,              ///< Doomed transaction exceeded the op bound.
};

const char *abortCauseName(AbortCause c);

/** Status of one machine operation as seen by the executing core. */
enum class OpStatus : std::uint8_t {
    Ok,        ///< Operation performed; continue after `latency`.
    Nack,      ///< Stalled by contention management; retry later.
    AbortSelf, ///< This core's transaction was aborted (already rolled
               ///< back); restart the transaction.
};

/** Result of a load/store/begin operation. */
struct MemOpOutcome {
    OpStatus status = OpStatus::Ok;
    Cycle latency = 1;
    Word value = 0;
    std::optional<rtc::SymTag> sym;
};

/** Result of one pre-commit/commit step. */
struct CommitStepOutcome {
    OpStatus status = OpStatus::Ok;
    Cycle latency = 1;
    bool done = false;
};

/**
 * NACK/abort retry backoff policy. The baseline machine retries a
 * NACKed operation after a fixed `nackRetryCycles` and re-begins an
 * aborted transaction immediately — under heavy contention every
 * loser re-arrives in lockstep and loses again. A backoff policy adds
 * a growing extra delay so conflicting transactions de-phase.
 */
enum class BackoffPolicy : std::uint8_t {
    None,        ///< Fixed nackRetryCycles, immediate restart (baseline).
    Linear,      ///< extra = base * streak, capped.
    ExpCapped,   ///< extra = base * 2^(streak-1), capped (binary
                 ///< exponential backoff).
    ConflictProportional, ///< extra = base * per-core conflict heat
                          ///< (heat rises on every conflict NACK/abort,
                          ///< halves on commit), capped.
};

const char *backoffPolicyName(BackoffPolicy p);

/** Parse a policy name ("none", "linear", "exp", "prop"); fatal()s on
 *  unknown names. */
BackoffPolicy backoffPolicyFromName(const char *name);

/** NACK/abort backoff configuration (TMConfig::backoff). */
struct BackoffConfig {
    BackoffPolicy policy = BackoffPolicy::None;

    /// One backoff step, in cycles (the unit the policies scale).
    /// Deliberately gentle: rollback is zero-cycle in this machine,
    /// so retry waits beyond a few tens of cycles cost more than the
    /// wasted work they avoid (measured on the service mix —
    /// docs/tuning.md).
    Cycle base = 2;

    /// Upper bound on the extra delay of a single retry.
    Cycle cap = 64;

    /**
     * Equal-jitter randomization: the extra delay is drawn uniformly
     * from [extra/2, extra] per retry, from a per-core xoshiro stream
     * seeded by (seed, core) — fully deterministic for a fixed seed,
     * but different cores de-phase differently. Without jitter every
     * core backs off by the same schedule and re-collides.
     */
    bool jitter = true;

    /**
     * Seed of the per-core jitter streams. 0 (the default) means
     * "inherit the cluster seed" (exec::Cluster stamps it), so
     * RunConfig::seed alone reproduces a run bit-for-bit.
     */
    std::uint64_t seed = 0;
};

/**
 * Synthetic contention-blame key for a directory-bank commit token:
 * the contention scheduler's hot table is keyed by blamed address,
 * and token waits blame a bank rather than a block. The keys live at
 * the very top of the address space, far above any workload heap
 * (kTokenBlameBase marks the start of the range; bank is 0..63).
 */
inline constexpr Addr kTokenBlameBase = ~Addr(0) - 63;

constexpr Addr
tokenBlameKey(unsigned bank)
{
    return kTokenBlameBase + bank;
}

/** Machine configuration (Table 1 defaults). */
struct TMConfig {
    TMMode mode = TMMode::Eager;
    CMPolicy cmPolicy = CMPolicy::OldestWins;

    /// RETCON structure capacities (Table 1).
    std::size_t ivbEntries = 16;
    std::size_t constraintEntries = 16;
    std::size_t ssbEntries = 32;

    rtc::ConflictPredictor::Config predictor{};

    /// §5.3 idealized-RETCON knobs.
    bool unlimitedState = false;     ///< No structure capacity limits.
    bool parallelReacquire = false;  ///< Pre-commit reacquires overlap.
    bool freeCommitStores = false;   ///< Commit-time stores cost nothing.

    Cycle nackRetryCycles = 25;   ///< Base delay before retrying a NACK.

    /**
     * NACK/abort retry backoff. With the policy None (the default)
     * the machine reproduces the PR-4 behaviour bit-for-bit: fixed
     * nackRetryCycles per NACK, immediate restart after an abort.
     * Any other policy adds a growing, optionally jittered extra
     * delay per consecutive NACK (and before restarting an aborted
     * transaction), counted in MachineStats::{backoffNacks,
     * backoffRestarts, backoffCycles}.
     */
    BackoffConfig backoff{};
    Cycle beginLatency = 2;       ///< Transaction begin overhead.
    Cycle commitTokenLatency = 2; ///< Baseline commit overhead.

    /**
     * Model commit-token arbitration against the memory system's
     * directory banks: a commit must hold the commit token of every
     * bank its write set touches before it may enter the commit
     * protocol, so commits touching disjoint banks proceed in parallel
     * while same-bank commits serialize. Token conflicts resolve
     * oldest-wins (an older committer aborts a younger token holder;
     * a younger requester NACKs), which keeps every wait younger->older
     * and therefore deadlock-free. Off (the default) reproduces the
     * PR-3 implicit arbiter: acquisition always succeeds after
     * commitTokenLatency, making results independent of the bank
     * count. Lazy (TCC) mode keeps its single global commit token
     * either way — committer-wins drains are not undo-logged, so a
     * mid-drain abort (possible only with concurrent committers) would
     * corrupt memory.
     */
    bool commitTokenArbitration = false;
    Cycle abortRollbackCycles = 0; ///< §2: zero-cycle rollback baseline.
    Cycle serialLockLatency = 40; ///< Global-lock handoff (Serial mode).

    /**
     * Zombie containment: value-based modes execute on snapshot values,
     * so a doomed transaction can chase stale pointers through an
     * inconsistent structure indefinitely. Early validation (eq-pinned
     * words are revalidated on use) catches almost all of these; this
     * per-attempt memory-operation bound is the backstop.
     */
    std::uint64_t zombieOpLimit = 100000;

    /**
     * DATM cascade back-pressure (part of the DATM support envelope —
     * api/datm_envelope.hpp). A core whose transaction was killed by
     * a forwarding cascade delays its restart by
     * min(datmCascadeCap, datmCascadeBase << (streak - 1)) cycles,
     * where the streak counts consecutive cascade aborts since the
     * core's last commit. This breaks the retry storms that keep
     * cascading workloads from converging: re-launching every cascade
     * member at once just rebuilds the same dataflow chain and kills
     * it again. On by default; only cascade-cause aborts are charged,
     * so every non-DATM mode is bit-identical either way, and the
     * delay is deterministic (no jitter) independent of
     * BackoffConfig::policy. Charged cycles are reported separately
     * (MachineStats::cascadeBpCycles), never as backoffCycles.
     */
    bool datmCascadeBackpressure = true;
    Cycle datmCascadeBase = 16;
    Cycle datmCascadeCap = 2048;

    /**
     * Test-only fault injection: XORed into every commit-time repaired
     * store value before it is written. Nonzero values deliberately
     * corrupt repairs so the trace/reenact audit oracle can be shown
     * to catch them; must be 0 in real runs.
     */
    Word faultInjectRepairXor = 0;

    /**
     * Test-only fault injection for DATM: XORed into every forwarded
     * word value before it is delivered to the consuming transaction
     * (architectural memory keeps the producer's real value). Nonzero
     * values model a corrupted forwarding path; the trace/reenact
     * audit must catch the divergence when it re-derives the
     * forwarding chain at the consumer's commit. Must be 0 in real
     * runs.
     */
    Word faultInjectForwardXor = 0;
};

/** Observable machine events (used by the Figure 2 timeline bench). */
struct TraceEvent {
    Cycle cycle;
    CoreId core;
    const char *kind; ///< "begin", "load", "store", "abort", "commit",
                      ///< "repair", "forward", "nack".
    Addr addr;
    Word value;
};

} // namespace retcon::htm

#endif // RETCON_HTM_TYPES_HPP
