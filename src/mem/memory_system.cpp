#include "mem/memory_system.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace retcon::mem {

MemorySystem::MemorySystem(unsigned num_cores, const MemTimingConfig &timing,
                           const CacheConfig &caches, unsigned num_banks,
                           const net::FleetTopology &topo)
    : _numCores(num_cores), _timing(timing), _cacheConfig(caches),
      _directory(num_banks, topo)
{
    sim_assert(num_cores >= 1 && num_cores <= 64,
               "directory sharer mask supports at most 64 cores");
    sim_assert(!topo.fleet() ||
                   topo.clusters * topo.threadsPerCluster == num_cores,
               "fleet core partition must cover every core");
    _cores.reserve(num_cores);
    for (unsigned i = 0; i < num_cores; ++i)
        _cores.emplace_back(caches);
    _bankFreeAt.assign(num_banks, 0);
    _bankStats.resize(num_banks);
}

Cycle
MemorySystem::bankVisit(Addr block)
{
    unsigned bank = _directory.bankOf(block);
    BankStats &bs = _bankStats[bank];
    ++bs.requests;
    Cycle stall = 0;
    if (_timing.bankOccupancy != 0 && _clock) {
        // The request reaches the directory one hop after issue; the
        // bank services requests back to back, `bankOccupancy` cycles
        // each.
        Cycle arrive = _clock->now() + _timing.l1Hit + _timing.l2Hit +
                       _timing.hop;
        Cycle start = std::max(arrive, _bankFreeAt[bank]);
        _bankFreeAt[bank] = start + _timing.bankOccupancy;
        stall = start - arrive;
        if (stall > 0) {
            ++bs.stalled;
            bs.stallCycles += stall;
            _stats.add("bank_stalls");
        }
    }
    if (_bankFault.period != 0 && _clock &&
        (block / kBlockBytes) % _bankFault.sliceMod ==
            _bankFault.sliceVictim) {
        Cycle now = _clock->now();
        if ((now + _bankFault.offset) % _bankFault.period <
            _bankFault.len) {
            stall += _bankFault.extra;
            ++_bankFaultStalls;
            _bankFaultCycles += _bankFault.extra;
        }
    }
    return stall;
}

bool
MemorySystem::hasReadPerm(CoreId core, Addr block) const
{
    return _directory.hasReadPerm(block, core);
}

bool
MemorySystem::hasWritePerm(CoreId core, Addr block) const
{
    return _directory.hasWritePerm(block, core);
}

Cycle
MemorySystem::peekLatency(CoreId core, Addr block, bool is_write) const
{
    Cycle lat = localLatency(core, block, is_write);
    if (_net) {
        const CoreCaches &cc = _cores[core];
        bool perm = is_write ? _directory.hasWritePerm(block, core)
                             : _directory.hasReadPerm(block, core);
        bool hit = perm && (cc.l1.contains(block) || cc.l2.contains(block));
        unsigned src = topology().clusterOfCore(core);
        unsigned home = topology().clusterOfAddr(block);
        if (!hit && src != home)
            lat += _net->staticLatency(src, home, net::kCtrlMsgWords) +
                   _net->staticLatency(home, src, net::kDataMsgWords);
    }
    return lat;
}

Cycle
MemorySystem::localLatency(CoreId core, Addr block, bool is_write) const
{
    const CoreCaches &cc = _cores[core];
    bool perm = is_write ? _directory.hasWritePerm(block, core)
                         : _directory.hasReadPerm(block, core);
    if (perm && cc.l1.contains(block))
        return _timing.l1Hit;
    if (perm && cc.l2.contains(block))
        return _timing.l1Hit + _timing.l2Hit;

    // Miss: L1 issue + L2 lookup + hop to directory...
    Cycle lat = _timing.l1Hit + _timing.l2Hit + _timing.hop;
    DirEntry e = _directory.lookup(block);
    if (e.state == DirState::Modified && e.owner != core) {
        // Forward to owner; owner L2 access; data to requester.
        lat += _timing.hop + _timing.l2Hit + _timing.hop;
    } else if (e.state == DirState::Shared && is_write) {
        // Invalidate sharers (parallel) + ack; data from memory if the
        // requester lacks a copy.
        bool requester_shares = (e.sharers >> core) & 1;
        lat += 2 * _timing.hop;
        if (!requester_shares)
            lat += _timing.dram;
    } else if (e.state == DirState::Shared && !is_write) {
        // Clean data supplied by memory.
        lat += _timing.dram + _timing.hop;
    } else {
        // Invalid at directory: fetch from DRAM.
        lat += _timing.dram + _timing.hop;
    }
    return lat;
}

void
MemorySystem::fill(CoreId core, Addr block)
{
    CoreCaches &cc = _cores[core];
    // Inclusive hierarchy: L2 first; an L2 eviction kicks the block out
    // of L1 as well and surrenders directory permissions.
    if (auto evicted = cc.l2.insert(block)) {
        cc.l1.invalidate(*evicted);
        _directory.dropCore(*evicted, core);
        _stats.add("l2_evictions");
        if (_listener)
            _listener->onCapacityEvict(core, *evicted);
    }
    if (auto evicted = cc.l1.insert(block)) {
        // L1 victim stays in L2 (inclusive), no permission change.
        (void)evicted;
        _stats.add("l1_evictions");
    }
}

void
MemorySystem::invalidateRemotes(CoreId core, Addr block)
{
    DirEntry e = _directory.lookup(block);
    if (e.state == DirState::Modified && e.owner != core) {
        CoreId victim = e.owner;
        _cores[victim].l1.invalidate(block);
        _cores[victim].l2.invalidate(block);
        if (_listener)
            _listener->onRemoteTake(victim, block, core, true);
    } else if (e.state == DirState::Shared) {
        for (CoreId v = 0; v < _numCores; ++v) {
            if (v == core || !((e.sharers >> v) & 1))
                continue;
            _cores[v].l1.invalidate(block);
            _cores[v].l2.invalidate(block);
            if (_listener)
                _listener->onRemoteTake(v, block, core, true);
        }
    }
}

AccessResult
MemorySystem::access(CoreId core, Addr block, bool is_write)
{
    sim_assert(core < _numCores, "access from unknown core %u", core);
    sim_assert(blockAddr(block) == block, "access must be block-aligned");

    AccessResult res;
    res.latency = localLatency(core, block, is_write);

    CoreCaches &cc = _cores[core];
    bool perm = is_write ? _directory.hasWritePerm(block, core)
                         : _directory.hasReadPerm(block, core);

    if (perm && cc.l1.contains(block)) {
        res.l1Hit = true;
        cc.l1.touch(block);
        cc.l2.touch(block);
        _stats.add("l1_hits");
        return res;
    }
    if (perm && cc.l2.contains(block)) {
        res.l2Hit = true;
        cc.l2.touch(block);
        // Refill L1 from L2.
        if (auto evicted = cc.l1.insert(block))
            (void)evicted;
        _stats.add("l2_hits");
        return res;
    }

    _stats.add(is_write ? "write_misses" : "read_misses");
    // The miss visits the block's home directory bank; a busy bank
    // slips the request (0 when occupancy is unmodeled).
    res.latency += bankVisit(block);
    // A miss homed on another cluster's bank pays the wire: a control
    // request out, a data-bearing reply back, occupying the links it
    // crosses (hot links queue later traffic).
    if (_net) {
        unsigned src = topology().clusterOfCore(core);
        unsigned home = topology().clusterOfAddr(block);
        if (src != home) {
            Cycle now = _clock ? _clock->now() : 0;
            Cycle wire = _net->roundTrip(src, home, net::kCtrlMsgWords,
                                         net::kDataMsgWords, now);
            res.latency += wire;
            res.remoteCluster = true;
            _stats.add("xc_accesses");
            _stats.add("xc_access_cycles", static_cast<double>(wire));
        }
    }
    DirEntry pre = _directory.lookup(block);

    if (is_write) {
        res.remoteTransfer =
            pre.state == DirState::Modified && pre.owner != core;
        res.dramAccess = pre.state == DirState::Invalid ||
                         (pre.state == DirState::Shared &&
                          !((pre.sharers >> core) & 1));
        invalidateRemotes(core, block);
        DirEntry &e = _directory.entry(block);
        e.state = DirState::Modified;
        e.owner = core;
        e.sharers = 0;
    } else {
        DirEntry &e = _directory.entry(block);
        if (e.state == DirState::Modified && e.owner != core) {
            // Downgrade owner to sharer; data forwarded cache-to-cache.
            res.remoteTransfer = true;
            CoreId owner = e.owner;
            e.state = DirState::Shared;
            e.sharers = (std::uint64_t(1) << owner) |
                        (std::uint64_t(1) << core);
            e.owner = kNoCore;
            if (_listener)
                _listener->onRemoteTake(owner, block, core, false);
        } else if (e.state == DirState::Invalid) {
            res.dramAccess = true;
            e.state = DirState::Shared;
            e.sharers = std::uint64_t(1) << core;
        } else {
            // Shared (or own-Modified refetch after L2 eviction).
            if (e.state == DirState::Shared) {
                res.dramAccess = true;
                e.sharers |= std::uint64_t(1) << core;
            }
        }
    }

    if (res.remoteTransfer)
        _stats.add("cache_to_cache");
    if (res.dramAccess)
        _stats.add("dram_accesses");

    fill(core, block);
    return res;
}

void
MemorySystem::flushBlock(CoreId core, Addr block)
{
    CoreCaches &cc = _cores[core];
    cc.l1.invalidate(block);
    cc.l2.invalidate(block);
    _directory.dropCore(block, core);
}

} // namespace retcon::mem
