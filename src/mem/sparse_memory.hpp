/**
 * @file
 * Functional backing store for the simulated physical address space.
 *
 * The simulator separates *functional* state (the bytes a program would
 * observe) from *timing* state (caches, directory). SparseMemory is the
 * single functional store: every committed byte in the machine lives
 * here. Speculative state that must not be architecturally visible
 * (RETCON's symbolic store buffer, lazy write buffers) is kept in the
 * HTM structures and only drained here at commit.
 */

#ifndef RETCON_MEM_SPARSE_MEMORY_HPP
#define RETCON_MEM_SPARSE_MEMORY_HPP

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace retcon::mem {

/** Word-granularity sparse memory; unwritten words read as zero. */
class SparseMemory
{
  public:
    /** Read the aligned 64-bit word containing @p addr. */
    Word
    readWord(Addr addr) const
    {
        auto it = _words.find(wordAddr(addr));
        return it == _words.end() ? 0 : it->second;
    }

    /** Write the aligned 64-bit word containing @p addr. */
    void
    writeWord(Addr addr, Word value)
    {
        _words[wordAddr(addr)] = value;
    }

    /**
     * Read @p size bytes (1, 2, 4, or 8) at @p addr, zero-extended.
     * The access must not cross a word boundary; unaligned accesses
     * are split by callers (RETCON treats them as untrackable anyway).
     */
    Word
    read(Addr addr, unsigned size) const
    {
        Word w = readWord(addr);
        unsigned shift = byteInWord(addr) * 8;
        if (size >= 8)
            return w;
        Word mask = (Word(1) << (size * 8)) - 1;
        return (w >> shift) & mask;
    }

    /** Write @p size bytes (1, 2, 4, or 8) of @p value at @p addr. */
    void
    write(Addr addr, Word value, unsigned size)
    {
        if (size >= 8) {
            writeWord(addr, value);
            return;
        }
        Word w = readWord(addr);
        unsigned shift = byteInWord(addr) * 8;
        Word mask = ((Word(1) << (size * 8)) - 1) << shift;
        w = (w & ~mask) | ((value << shift) & mask);
        writeWord(addr, w);
    }

    /** Number of distinct words ever written (tests/footprint stats). */
    std::size_t footprintWords() const { return _words.size(); }

    /** Drop all contents. */
    void clear() { _words.clear(); }

  private:
    std::unordered_map<Addr, Word> _words;
};

} // namespace retcon::mem

#endif // RETCON_MEM_SPARSE_MEMORY_HPP
