/**
 * @file
 * Set-associative cache tag array with true-LRU replacement.
 *
 * Only presence/recency metadata is modeled; data lives in the shared
 * functional SparseMemory. The same class instantiates the L1 (64KB,
 * 4-way), the private L2 (1MB, 4-way) and the permissions-only cache
 * (4KB, 4-way) from Table 1 — the permissions-only cache simply treats
 * an entry as "this block's coherence permissions and speculative
 * read/written bits survive here after data eviction" (OneTM).
 */

#ifndef RETCON_MEM_CACHE_HPP
#define RETCON_MEM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::mem {

/** Geometry of a set-associative cache. */
struct CacheGeometry {
    std::uint64_t sizeBytes;
    unsigned ways;
    unsigned blockBytes = kBlockBytes;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * blockBytes);
    }
};

/** Tag array with LRU replacement; blocks identified by block address. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    /** True when @p block is currently resident. */
    bool contains(Addr block) const;

    /** Update LRU recency for a resident block. No-op when absent. */
    void touch(Addr block);

    /**
     * Insert @p block, evicting the set's LRU victim if the set is full.
     * @return the evicted block address, if any.
     */
    std::optional<Addr> insert(Addr block);

    /** Remove @p block if present. @return true when it was present. */
    bool invalidate(Addr block);

    /** Remove everything. */
    void clear();

    /** Number of resident blocks (for tests). */
    std::size_t occupancy() const { return _occupancy; }

    std::uint64_t numSets() const { return _sets.size(); }
    unsigned ways() const { return _ways; }

  private:
    struct Line {
        Addr block = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    using Set = std::vector<Line>;

    std::vector<Set> _sets;
    unsigned _ways;
    std::uint64_t _useClock = 0;
    std::size_t _occupancy = 0;

    Set &setFor(Addr block);
    const Set &setFor(Addr block) const;
};

} // namespace retcon::mem

#endif // RETCON_MEM_CACHE_HPP
