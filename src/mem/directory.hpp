/**
 * @file
 * Banked directory-based coherence bookkeeping (MSI states, Table 1
 * machine).
 *
 * One directory entry per coherence block: Invalid (no cached copy),
 * Shared (read-only copies in `sharers`), or Modified (one owning core).
 * State transitions are applied atomically at request time; the latency
 * of the corresponding protocol messages is computed by MemorySystem.
 *
 * The directory is split into N address-interleaved banks (block index
 * modulo bank count), mirroring how the event queue is sharded: bank
 * state is purely a partition of the block->entry map, so the bank
 * count never changes protocol behaviour — it only gives MemorySystem
 * a structural unit to model occupancy and queuing against, and gives
 * the TM machine a unit of commit-token arbitration. With one bank the
 * structure is exactly the PR-3 monolithic directory.
 */

#ifndef RETCON_MEM_DIRECTORY_HPP
#define RETCON_MEM_DIRECTORY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::mem {

/** Coherence state of a block at the directory. */
enum class DirState : std::uint8_t { Invalid, Shared, Modified };

/** Per-block directory entry. Sharer set is a 64-bit mask (<=64 cores). */
struct DirEntry {
    DirState state = DirState::Invalid;
    CoreId owner = kNoCore;
    std::uint64_t sharers = 0;
};

/**
 * One address-interleaved directory bank: the block->entry map for the
 * slice of the address space homed here. Pure state — occupancy and
 * queuing are modeled by MemorySystem, commit tokens by the TM machine.
 */
class DirectoryBank
{
  public:
    /** Look up (never creating) the entry for @p block. */
    DirEntry
    lookup(Addr block) const
    {
        auto it = _entries.find(block);
        return it == _entries.end() ? DirEntry{} : it->second;
    }

    /** Mutable entry for @p block, created Invalid on first touch. */
    DirEntry &entry(Addr block) { return _entries[block]; }

    /** Remove @p core from the sharer/owner info (eviction). */
    void
    dropCore(Addr block, CoreId core)
    {
        auto it = _entries.find(block);
        if (it == _entries.end())
            return;
        DirEntry &e = it->second;
        if (e.state == DirState::Modified && e.owner == core) {
            e.state = DirState::Invalid;
            e.owner = kNoCore;
        } else if (e.state == DirState::Shared) {
            e.sharers &= ~(std::uint64_t(1) << core);
            if (e.sharers == 0)
                e.state = DirState::Invalid;
        }
    }

    std::size_t numEntries() const { return _entries.size(); }

  private:
    std::unordered_map<Addr, DirEntry> _entries;
};

/** The full-machine directory: N address-interleaved banks. */
class Directory
{
  public:
    /** At most 64 banks (commit-token sets are 64-bit masks). */
    static constexpr unsigned kMaxBanks = 64;

    explicit Directory(unsigned num_banks = 1,
                       const net::FleetTopology &topo = {})
        : _banks(num_banks), _topo(topo)
    {
        sim_assert(num_banks >= 1 && num_banks <= kMaxBanks,
                   "directory bank count out of range (1..%u)",
                   kMaxBanks);
        sim_assert(!_topo.fleet() ||
                       _topo.clusters * _topo.banksPerCluster ==
                           num_banks,
                   "fleet bank partition must cover every bank");
    }

    unsigned numBanks() const
    {
        return static_cast<unsigned>(_banks.size());
    }

    /**
     * Home bank of @p block. The block index is mixed (Fibonacci
     * multiplicative hash) before the modulo so strided or clustered
     * hot sets — Zipfian hashtable buckets, queue heads — spread
     * across banks instead of camping on one; a plain low-order
     * interleave left one bank carrying most of the service
     * workload's stall cycles.
     *
     * In a fleet, a block homes on a bank of its address's home
     * *cluster* (net::FleetTopology heap regions) and the hash picks
     * among that cluster's banks only — so a cluster's state lives
     * entirely behind its own directory slice and a remote access is
     * structurally a visit to another cluster's bank. With one
     * cluster this reduces to exactly the fleet-unaware interleave.
     */
    unsigned
    bankOf(Addr block) const
    {
        std::uint64_t idx = block / kBlockBytes;
        idx *= 0x9E3779B97F4A7C15ull;
        if (!_topo.fleet())
            return static_cast<unsigned>((idx >> 32) % _banks.size());
        unsigned cluster = _topo.clusterOfAddr(block);
        return cluster * _topo.banksPerCluster +
               static_cast<unsigned>((idx >> 32) %
                                     _topo.banksPerCluster);
    }

    const net::FleetTopology &topology() const { return _topo; }

    DirectoryBank &bank(unsigned b) { return _banks[b]; }
    const DirectoryBank &bank(unsigned b) const { return _banks[b]; }

    DirEntry
    lookup(Addr block) const
    {
        return _banks[bankOf(block)].lookup(block);
    }

    DirEntry &
    entry(Addr block)
    {
        return _banks[bankOf(block)].entry(block);
    }

    /** True when @p core holds a readable copy per the directory. */
    bool
    hasReadPerm(Addr block, CoreId core) const
    {
        DirEntry e = lookup(block);
        if (e.state == DirState::Modified)
            return e.owner == core;
        if (e.state == DirState::Shared)
            return (e.sharers >> core) & 1;
        return false;
    }

    /** True when @p core holds exclusive/write permission. */
    bool
    hasWritePerm(Addr block, CoreId core) const
    {
        DirEntry e = lookup(block);
        return e.state == DirState::Modified && e.owner == core;
    }

    /** Remove @p core from the sharer/owner info (eviction). */
    void
    dropCore(Addr block, CoreId core)
    {
        _banks[bankOf(block)].dropCore(block, core);
    }

    /** Entries across all banks. */
    std::size_t
    numEntries() const
    {
        std::size_t n = 0;
        for (const DirectoryBank &b : _banks)
            n += b.numEntries();
        return n;
    }

  private:
    std::vector<DirectoryBank> _banks;
    net::FleetTopology _topo;
};

} // namespace retcon::mem

#endif // RETCON_MEM_DIRECTORY_HPP
