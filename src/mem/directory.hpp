/**
 * @file
 * Directory-based coherence bookkeeping (MSI states, Table 1 machine).
 *
 * One directory entry per coherence block: Invalid (no cached copy),
 * Shared (read-only copies in `sharers`), or Modified (one owning core).
 * State transitions are applied atomically at request time; the latency
 * of the corresponding protocol messages is computed by MemorySystem.
 */

#ifndef RETCON_MEM_DIRECTORY_HPP
#define RETCON_MEM_DIRECTORY_HPP

#include <cstdint>
#include <unordered_map>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::mem {

/** Coherence state of a block at the directory. */
enum class DirState : std::uint8_t { Invalid, Shared, Modified };

/** Per-block directory entry. Sharer set is a 64-bit mask (<=64 cores). */
struct DirEntry {
    DirState state = DirState::Invalid;
    CoreId owner = kNoCore;
    std::uint64_t sharers = 0;
};

/** The full-machine directory. */
class Directory
{
  public:
    /** Look up (never creating) the entry for @p block. */
    DirEntry
    lookup(Addr block) const
    {
        auto it = _entries.find(block);
        return it == _entries.end() ? DirEntry{} : it->second;
    }

    /** Mutable entry for @p block, created Invalid on first touch. */
    DirEntry &entry(Addr block) { return _entries[block]; }

    /** True when @p core holds a readable copy per the directory. */
    bool
    hasReadPerm(Addr block, CoreId core) const
    {
        DirEntry e = lookup(block);
        if (e.state == DirState::Modified)
            return e.owner == core;
        if (e.state == DirState::Shared)
            return (e.sharers >> core) & 1;
        return false;
    }

    /** True when @p core holds exclusive/write permission. */
    bool
    hasWritePerm(Addr block, CoreId core) const
    {
        DirEntry e = lookup(block);
        return e.state == DirState::Modified && e.owner == core;
    }

    /** Remove @p core from the sharer/owner info (eviction). */
    void
    dropCore(Addr block, CoreId core)
    {
        auto it = _entries.find(block);
        if (it == _entries.end())
            return;
        DirEntry &e = it->second;
        if (e.state == DirState::Modified && e.owner == core) {
            e.state = DirState::Invalid;
            e.owner = kNoCore;
        } else if (e.state == DirState::Shared) {
            e.sharers &= ~(std::uint64_t(1) << core);
            if (e.sharers == 0)
                e.state = DirState::Invalid;
        }
    }

    std::size_t numEntries() const { return _entries.size(); }

  private:
    std::unordered_map<Addr, DirEntry> _entries;
};

} // namespace retcon::mem

#endif // RETCON_MEM_DIRECTORY_HPP
