/**
 * @file
 * Timed coherent memory hierarchy for the simulated multicore.
 *
 * Models the Table 1 machine: per-core L1 (64KB/4-way) and private L2
 * (1MB/4-way) with 64B blocks, a directory protocol with 20-cycle hops,
 * 10-cycle L2 hits and 100-cycle DRAM. State transitions (directory and
 * tag arrays) are applied atomically at request time; the returned
 * latency schedules when the requesting core may continue. This keeps
 * the interleaving of memory operations — the thing conflict behaviour
 * depends on — cycle-accurate while avoiding transient protocol states.
 *
 * The HTM layer is notified of every coherence-driven invalidation and
 * every capacity eviction through CoherenceListener, which is how
 * speculative blocks get "stolen away" (RETCON §4) or overflow into the
 * permissions-only cache (OneTM).
 */

#ifndef RETCON_MEM_MEMORY_SYSTEM_HPP
#define RETCON_MEM_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/sparse_memory.hpp"
#include "net/interconnect.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace retcon::mem {

/** Latency parameters (cycles), defaults per Table 1. */
struct MemTimingConfig {
    Cycle l1Hit = 1;
    Cycle l2Hit = 10;
    Cycle hop = 20;      ///< Directory/interconnect hop.
    Cycle dram = 100;    ///< DRAM lookup.

    /**
     * Cycles a directory bank is occupied servicing one request
     * (0 = occupancy unmodeled, the PR-3 behaviour). With a nonzero
     * occupancy, a request that reaches a bank still busy with an
     * earlier request slips until the bank frees up — the stall is
     * added to the access latency and counted in the bank stats. This
     * is the serialization a monolithic (1-bank) directory suffers and
     * banking removes; with occupancy unmodeled the bank count is
     * performance-transparent and results are bit-identical for any
     * value.
     */
    Cycle bankOccupancy = 0;
};

/** Cache geometry parameters, defaults per Table 1. */
struct CacheConfig {
    CacheGeometry l1{64 * 1024, 4};
    CacheGeometry l2{1024 * 1024, 4};
    CacheGeometry permOnly{4 * 1024, 4};
};

/** Receives notifications about blocks leaving a core's caches. */
class CoherenceListener
{
  public:
    virtual ~CoherenceListener() = default;

    /**
     * @p victim lost its copy of @p block because @p by performed a
     * coherence request. @p by_write is true for invalidations (remote
     * write), false for downgrades M->S (remote read).
     */
    virtual void onRemoteTake(CoreId victim, Addr block, CoreId by,
                              bool by_write) = 0;

    /** @p victim lost @p block to a capacity eviction from its L2. */
    virtual void onCapacityEvict(CoreId victim, Addr block) = 0;
};

/** Outcome of a timed access. */
struct AccessResult {
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool remoteTransfer = false;  ///< Data came cache-to-cache.
    bool dramAccess = false;
    bool remoteCluster = false;   ///< Crossed the fleet interconnect.
};

/**
 * The coherent cache hierarchy shared by all cores.
 *
 * Functional data lives in SparseMemory and is read/written directly by
 * the TM layer; this class models permissions and timing only.
 */
class MemorySystem
{
  public:
    /** Per-bank request/occupancy counters (see MemTimingConfig). */
    struct BankStats {
        std::uint64_t requests = 0;    ///< Directory visits (misses).
        std::uint64_t stalled = 0;     ///< Requests that found the bank busy.
        std::uint64_t stallCycles = 0; ///< Total slip cycles.
    };

    /**
     * Slow-bank fault window (src/scenario/): directory visits to one
     * address slice pay `extra` cycles while the periodic window is
     * active. The victim is an *address* class — blocks with
     * (block / kBlockBytes) mod sliceMod == sliceVictim, i.e. exactly
     * one bank of a sliceMod-banked directory — not a configured bank
     * index, so the fault is bit-identical across bank counts the
     * same way unmodeled occupancy is. period == 0 disables.
     */
    struct BankFault {
        unsigned sliceMod = 16;
        unsigned sliceVictim = 0;
        Cycle period = 0;
        Cycle len = 0;
        Cycle offset = 0;
        Cycle extra = 0;
    };

    MemorySystem(unsigned num_cores, const MemTimingConfig &timing = {},
                 const CacheConfig &caches = {}, unsigned num_banks = 1,
                 const net::FleetTopology &topo = {});

    /** Install (or clear, with period 0) the slow-bank fault. */
    void setBankFault(const BankFault &f) { _bankFault = f; }

    /** Directory visits that paid the slow-bank fault. */
    std::uint64_t bankFaultStalls() const { return _bankFaultStalls; }

    /** Total extra cycles charged by the slow-bank fault. */
    std::uint64_t bankFaultCycles() const { return _bankFaultCycles; }

    /** Register the (single) HTM-side listener. */
    void setListener(CoherenceListener *l) { _listener = l; }

    /**
     * Attach the fleet interconnect (non-owning; null detaches — the
     * single-cluster configuration, where no access ever pays a wire
     * crossing). When attached, a miss whose home directory bank lives
     * on another cluster pays a request/data round trip over the wire
     * on top of the protocol latency, occupying the links it crosses.
     */
    void setNet(net::Interconnect *net) { _net = net; }

    /**
     * Observe @p clock for bank-occupancy modeling (non-owning; null
     * detaches). Only read when MemTimingConfig::bankOccupancy is
     * nonzero — with occupancy unmodeled the clock is never consulted
     * and timing is clock-independent.
     */
    void setClock(const SimClock *clock) { _clock = clock; }

    /**
     * Perform a timed coherence access by @p core to @p block.
     * Applies all state transitions and reports the latency.
     */
    AccessResult access(CoreId core, Addr block, bool is_write);

    /**
     * Latency the access *would* take, with no state change. Used by
     * the RETCON pre-commit engine to cost reacquisition decisions.
     * In a fleet, a miss to a remote cluster's bank includes the
     * uncontended interconnect round trip (queueing is unknowable
     * without performing the access, so the estimate is optimistic).
     */
    Cycle peekLatency(CoreId core, Addr block, bool is_write) const;

    /** True when @p core can read @p block without a miss. */
    bool hasReadPerm(CoreId core, Addr block) const;

    /** True when @p core can write @p block without a miss. */
    bool hasWritePerm(CoreId core, Addr block) const;

    /** Drop @p block from @p core's caches (abort cleanup, tests). */
    void flushBlock(CoreId core, Addr block);

    /** The functional store. */
    SparseMemory &memory() { return _memory; }
    const SparseMemory &memory() const { return _memory; }

    Directory &directory() { return _directory; }
    const Directory &directory() const { return _directory; }

    unsigned numCores() const { return _numCores; }

    /** Directory bank count (1 = monolithic). */
    unsigned numBanks() const { return _directory.numBanks(); }

    /** Home directory bank of @p block. */
    unsigned bankOf(Addr block) const { return _directory.bankOf(block); }

    /** The fleet partition this memory system is carved into. */
    const net::FleetTopology &topology() const
    {
        return _directory.topology();
    }

    const MemTimingConfig &timing() const { return _timing; }

    const CacheConfig &cacheConfig() const { return _cacheConfig; }

    /** Aggregate access statistics (hits/misses/transfers). */
    const StatSet &stats() const { return _stats; }

    /** Request/occupancy counters for bank @p b. */
    const BankStats &bankStats(unsigned b) const { return _bankStats[b]; }

  private:
    struct CoreCaches {
        SetAssocCache l1;
        SetAssocCache l2;

        explicit CoreCaches(const CacheConfig &cfg)
            : l1(cfg.l1), l2(cfg.l2)
        {}
    };

    unsigned _numCores;
    MemTimingConfig _timing;
    CacheConfig _cacheConfig;
    SparseMemory _memory;
    Directory _directory;
    std::vector<CoreCaches> _cores;
    CoherenceListener *_listener = nullptr;
    const SimClock *_clock = nullptr;
    net::Interconnect *_net = nullptr;
    StatSet _stats;

    /// Bank-occupancy model: per-bank busy-until cycle + counters.
    std::vector<Cycle> _bankFreeAt;
    std::vector<BankStats> _bankStats;

    /// Slow-bank fault window + counters (inert at period 0).
    BankFault _bankFault;
    std::uint64_t _bankFaultStalls = 0;
    std::uint64_t _bankFaultCycles = 0;

    /** Install @p block into @p core's L1+L2, handling evictions. */
    void fill(CoreId core, Addr block);

    /** Invalidate remote copies for a write by @p core. */
    void invalidateRemotes(CoreId core, Addr block);

    /**
     * Account a directory visit for @p block's home bank and @return
     * the occupancy stall (0 when unmodeled or the bank is free).
     */
    Cycle bankVisit(Addr block);

    /**
     * Protocol latency of an access with no interconnect component —
     * the single-cluster peekLatency. Both peekLatency (static wire
     * estimate on top) and access (dynamic wire charge on top) build
     * on this so the crossing is never counted twice.
     */
    Cycle localLatency(CoreId core, Addr block, bool is_write) const;
};

} // namespace retcon::mem

#endif // RETCON_MEM_MEMORY_SYSTEM_HPP
