#include "mem/cache.hpp"

namespace retcon::mem {

SetAssocCache::SetAssocCache(const CacheGeometry &geom)
    : _ways(geom.ways)
{
    std::uint64_t nsets = geom.numSets();
    sim_assert(nsets > 0 && (nsets & (nsets - 1)) == 0,
               "cache set count must be a nonzero power of two");
    _sets.resize(nsets);
    for (auto &s : _sets)
        s.resize(_ways);
}

SetAssocCache::Set &
SetAssocCache::setFor(Addr block)
{
    std::uint64_t idx = (block / kBlockBytes) & (_sets.size() - 1);
    return _sets[idx];
}

const SetAssocCache::Set &
SetAssocCache::setFor(Addr block) const
{
    std::uint64_t idx = (block / kBlockBytes) & (_sets.size() - 1);
    return _sets[idx];
}

bool
SetAssocCache::contains(Addr block) const
{
    for (const auto &line : setFor(block))
        if (line.valid && line.block == block)
            return true;
    return false;
}

void
SetAssocCache::touch(Addr block)
{
    for (auto &line : setFor(block)) {
        if (line.valid && line.block == block) {
            line.lastUse = ++_useClock;
            return;
        }
    }
}

std::optional<Addr>
SetAssocCache::insert(Addr block)
{
    Set &set = setFor(block);
    // Already resident: refresh recency.
    for (auto &line : set) {
        if (line.valid && line.block == block) {
            line.lastUse = ++_useClock;
            return std::nullopt;
        }
    }
    // Free way available.
    for (auto &line : set) {
        if (!line.valid) {
            line = Line{block, true, ++_useClock};
            ++_occupancy;
            return std::nullopt;
        }
    }
    // Evict LRU.
    Line *victim = &set[0];
    for (auto &line : set)
        if (line.lastUse < victim->lastUse)
            victim = &line;
    Addr evicted = victim->block;
    *victim = Line{block, true, ++_useClock};
    return evicted;
}

bool
SetAssocCache::invalidate(Addr block)
{
    for (auto &line : setFor(block)) {
        if (line.valid && line.block == block) {
            line.valid = false;
            --_occupancy;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::clear()
{
    for (auto &set : _sets)
        for (auto &line : set)
            line.valid = false;
    _occupancy = 0;
}

} // namespace retcon::mem
