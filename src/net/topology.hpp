/**
 * @file
 * Fleet topology descriptor: how a multi-cluster fleet partitions the
 * simulated machine's structural resources.
 *
 * A fleet of C clusters is simulated as one machine whose cores,
 * event-queue shards, directory banks, and workload heap regions are
 * partitioned C ways; "independent" means no structural resource is
 * shared across a cluster boundary, and every cross-cluster
 * interaction — a coherence request to a remote cluster's directory
 * bank, a commit-token acquisition for a remote bank — is charged to
 * the modeled interconnect (net/interconnect.hpp). With one cluster
 * every mapping below degenerates to the single-cluster identity, so
 * a 1-cluster fleet is bit-identical to a plain cluster run.
 *
 * Address homing is region-based: each cluster owns a fixed-stride
 * slice of the workload heap starting at kClusterRegionBase, so a
 * fleet-aware workload places cluster c's state in cluster c's region
 * and the directory homes it on cluster c's banks. Addresses below
 * the heap base (test scaffolding, globals) home on cluster 0, as
 * does everything past the last region.
 */

#ifndef RETCON_NET_TOPOLOGY_HPP
#define RETCON_NET_TOPOLOGY_HPP

#include "sim/types.hpp"

namespace retcon::net {

/** First byte of cluster 0's heap region (== workloads' kHeapBase). */
inline constexpr Addr kClusterRegionBase = 0x10000000;

/**
 * Bytes per cluster heap region. Sized for a full per-cluster
 * allocator footprint: ds::SimAllocator lays out one arena PER THREAD
 * plus a shared setup arena, so a cluster's workload state spans
 * (nthreads + 1) x arena_bytes — up to 65 x 6 MiB at the 64-core
 * machine limit. Memory is sparse, so the address range is free.
 */
inline constexpr Addr kClusterRegionBytes = 512 * 1024 * 1024;

/** Structural partition of the fleet (all mappings are pure). */
struct FleetTopology {
    unsigned clusters = 1;
    unsigned threadsPerCluster = 0; ///< Cores per cluster (0 = all).
    unsigned banksPerCluster = 0;   ///< Directory banks per cluster.

    bool fleet() const { return clusters > 1; }

    /** Home cluster of core @p c (cores are cluster-contiguous). */
    unsigned
    clusterOfCore(CoreId c) const
    {
        return fleet() ? c / threadsPerCluster : 0;
    }

    /** Home cluster of directory bank @p b (banks cluster-contiguous). */
    unsigned
    clusterOfBank(unsigned b) const
    {
        return fleet() ? b / banksPerCluster : 0;
    }

    /** Home cluster of byte address @p a (heap-region ownership). */
    unsigned
    clusterOfAddr(Addr a) const
    {
        if (!fleet() || a < kClusterRegionBase)
            return 0;
        Addr region = (a - kClusterRegionBase) / kClusterRegionBytes;
        return region >= clusters ? 0 : static_cast<unsigned>(region);
    }

    /** Base address of cluster @p c's heap region. */
    static Addr
    regionBase(unsigned c)
    {
        return kClusterRegionBase + Addr(c) * kClusterRegionBytes;
    }
};

} // namespace retcon::net

#endif // RETCON_NET_TOPOLOGY_HPP
