/**
 * @file
 * Modeled inter-cluster interconnect: latency, per-link bandwidth with
 * queueing, and a topology (crossbar or ring).
 *
 * The fleet's clusters exchange two kinds of traffic: coherence
 * requests that miss to a remote cluster's directory bank, and
 * commit-token messages of the two-level commit protocol
 * (htm::TMMachine). Both follow the machine's synchronous-latency
 * idiom: the sender asks the interconnect how long the message takes
 * and waits that long — the interconnect never schedules events
 * itself, so fleet runs stay exactly as deterministic as single-
 * cluster runs.
 *
 * Topologies:
 *  - Crossbar: one dedicated directed link per (src, dst) pair; every
 *    message is one hop of `linkLatency` cycles.
 *  - Ring: C directed clockwise links (c -> c+1 mod C) and C counter-
 *    clockwise links; a message takes the shorter direction and pays
 *    `linkLatency` per hop, occupying every link it crosses.
 *
 * Bandwidth: each directed link transfers `linkBandwidth` words per
 * cycle (0 = unlimited). A message occupies a link for
 * ceil(words / bandwidth) cycles; a message arriving while the link
 * is still draining an earlier one queues behind it, and the wait is
 * counted in the link's stats — this is how hot links slip under
 * cross-cluster load.
 */

#ifndef RETCON_NET_INTERCONNECT_HPP
#define RETCON_NET_INTERCONNECT_HPP

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/types.hpp"

namespace retcon::net {

/** Interconnect wiring shape. */
enum class Topology : std::uint8_t {
    Crossbar, ///< Fixed-latency all-to-all (one hop between any pair).
    Ring,     ///< Bidirectional ring; latency scales with hop count.
};

const char *topologyName(Topology t);

/** Parse "crossbar" / "ring"; fatal()s on unknown names. */
Topology topologyFromName(const char *name);

/** Interconnect knobs (api::RunConfig::{netTopology,netLatency,...}). */
struct NetConfig {
    Topology topology = Topology::Crossbar;

    /** Cycles per link traversal (one hop). */
    Cycle linkLatency = 50;

    /**
     * Words per cycle each directed link transfers; 0 = unlimited
     * (pure latency, no queueing — the performance-transparent
     * default for correctness sweeps).
     */
    unsigned linkBandwidth = 0;
};

/** Typical message payloads, in words (header + content). */
inline constexpr unsigned kCtrlMsgWords = 2;  ///< Request/ack/token.
inline constexpr unsigned kDataMsgWords =
    2 + static_cast<unsigned>(kWordsPerBlock); ///< Header + one block.

/** The modeled fabric joining a fleet's clusters. */
class Interconnect
{
  public:
    /** Lifetime counters, per directed link. */
    struct LinkStats {
        unsigned src = 0;
        unsigned dst = 0;
        std::uint64_t messages = 0;    ///< Messages crossing this link.
        std::uint64_t payloadWords = 0;
        std::uint64_t queueCycles = 0; ///< Waits behind earlier traffic.
    };

    /**
     * Degraded-link fault window (src/scenario/): the one directed
     * link `link` multiplies its hop latency by `latencyMult` while
     * the periodic window — ((now + offset) mod period) < len — is
     * active. period == 0 disables. Deterministic in simulated time,
     * so faulted fleet runs stay exactly as deterministic as healthy
     * ones.
     */
    struct LinkFault {
        unsigned link = 0;
        Cycle period = 0;
        Cycle len = 0;
        Cycle offset = 0;
        unsigned latencyMult = 1;
    };

    Interconnect(unsigned clusters, const NetConfig &cfg);

    unsigned clusters() const { return _clusters; }
    const NetConfig &config() const { return _cfg; }

    /** Install (or clear, with period 0) the degraded-link fault. */
    void setLinkFault(const LinkFault &f) { _linkFault = f; }

    /** Messages that crossed the degraded link inside a window. */
    std::uint64_t faultMessages() const { return _faultMessages; }

    /** Total extra latency cycles the degraded link imposed. */
    std::uint64_t faultExtraCycles() const { return _faultExtra; }

    /**
     * Deliver a @p words-word message from cluster @p src to @p dst,
     * starting at cycle @p now. Occupies every link on the route and
     * @return the delivery latency (queueing included). src == dst is
     * free (no link crossed, nothing counted).
     */
    Cycle deliver(unsigned src, unsigned dst, unsigned words, Cycle now);

    /**
     * Request/response round trip: @p reqWords to @p dst, @p respWords
     * back. The response departs after the request arrives.
     */
    Cycle
    roundTrip(unsigned src, unsigned dst, unsigned reqWords,
              unsigned respWords, Cycle now)
    {
        if (src == dst)
            return 0;
        Cycle there = deliver(src, dst, reqWords, now);
        return there + deliver(dst, src, respWords, now + there);
    }

    /**
     * Uncontended latency of a @p words-word message src -> dst: hop
     * latency plus serialization, no queueing, no state change (the
     * peek counterpart of deliver, for cost estimates).
     */
    Cycle staticLatency(unsigned src, unsigned dst,
                        unsigned words) const;

    unsigned numLinks() const
    {
        return static_cast<unsigned>(_links.size());
    }
    const LinkStats &linkStats(unsigned link) const
    {
        return _links[link].stats;
    }

    /** Fleet-wide totals over all links. */
    std::uint64_t totalMessages() const;
    std::uint64_t totalPayloadWords() const;
    std::uint64_t totalQueueCycles() const;

  private:
    struct Link {
        Cycle freeAt = 0; ///< Busy draining earlier traffic until here.
        LinkStats stats;
    };

    unsigned _clusters;
    NetConfig _cfg;
    std::vector<Link> _links;
    LinkFault _linkFault;
    std::uint64_t _faultMessages = 0;
    std::uint64_t _faultExtra = 0;

    /** Cycles a @p words-word message occupies one link. */
    Cycle serializeCycles(unsigned words) const;

    /** Directed link index for one hop @p src -> @p dst (adjacent in
     *  the topology; crossbar pairs are always adjacent). */
    unsigned linkIndex(unsigned src, unsigned dst) const;

    /** Cross one link now; @return latency including queueing. */
    Cycle crossLink(unsigned link, unsigned words, Cycle now);
};

} // namespace retcon::net

#endif // RETCON_NET_INTERCONNECT_HPP
