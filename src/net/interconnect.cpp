#include "net/interconnect.hpp"

#include <cstring>

#include "sim/logging.hpp"

namespace retcon::net {

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::Crossbar: return "crossbar";
      case Topology::Ring: return "ring";
    }
    return "?";
}

Topology
topologyFromName(const char *name)
{
    if (std::strcmp(name, "crossbar") == 0)
        return Topology::Crossbar;
    if (std::strcmp(name, "ring") == 0)
        return Topology::Ring;
    fatal("unknown interconnect topology '%s' (crossbar|ring)", name);
}

Interconnect::Interconnect(unsigned clusters, const NetConfig &cfg)
    : _clusters(clusters), _cfg(cfg)
{
    sim_assert(clusters >= 1, "interconnect needs >= 1 cluster");
    // Crossbar: one directed link per ordered pair. Ring: clockwise
    // links live at [0, C), counter-clockwise at [C, 2C) — link c is
    // c -> c+1 mod C, link C+c is c+1 mod C -> c.
    std::size_t nlinks = 0;
    if (clusters > 1) {
        nlinks = _cfg.topology == Topology::Crossbar
                     ? std::size_t(clusters) * (clusters - 1)
                     : std::size_t(clusters) * 2;
    }
    _links.resize(nlinks);
    std::size_t i = 0;
    if (_cfg.topology == Topology::Crossbar) {
        for (unsigned s = 0; s < clusters && nlinks; ++s)
            for (unsigned d = 0; d < clusters; ++d)
                if (s != d) {
                    _links[i].stats.src = s;
                    _links[i].stats.dst = d;
                    ++i;
                }
    } else {
        for (unsigned c = 0; c < clusters && nlinks; ++c) {
            _links[c].stats.src = c;
            _links[c].stats.dst = (c + 1) % clusters;
            _links[clusters + c].stats.src = (c + 1) % clusters;
            _links[clusters + c].stats.dst = c;
        }
    }
}

Cycle
Interconnect::serializeCycles(unsigned words) const
{
    if (_cfg.linkBandwidth == 0)
        return 0;
    Cycle w = words;
    return (w + _cfg.linkBandwidth - 1) / _cfg.linkBandwidth;
}

unsigned
Interconnect::linkIndex(unsigned src, unsigned dst) const
{
    if (_cfg.topology == Topology::Crossbar) {
        // Row src holds its C-1 outgoing links in dst order.
        unsigned col = dst < src ? dst : dst - 1;
        return src * (_clusters - 1) + col;
    }
    // Ring hop: clockwise src -> src+1, counter-clockwise src -> src-1.
    if (dst == (src + 1) % _clusters)
        return src;
    sim_assert(src == (dst + 1) % _clusters,
               "ring hop %u -> %u is not adjacent", src, dst);
    return _clusters + dst;
}

Cycle
Interconnect::crossLink(unsigned link, unsigned words, Cycle now)
{
    Link &l = _links[link];
    Cycle queue = l.freeAt > now ? l.freeAt - now : 0;
    Cycle drain = serializeCycles(words);
    l.freeAt = now + queue + drain;
    ++l.stats.messages;
    l.stats.payloadWords += words;
    l.stats.queueCycles += queue;
    Cycle latency = _cfg.linkLatency;
    if (_linkFault.period != 0 && link == _linkFault.link &&
        (now + _linkFault.offset) % _linkFault.period < _linkFault.len) {
        Cycle extra = latency * (_linkFault.latencyMult - 1);
        latency += extra;
        ++_faultMessages;
        _faultExtra += extra;
    }
    return queue + drain + latency;
}

Cycle
Interconnect::deliver(unsigned src, unsigned dst, unsigned words,
                      Cycle now)
{
    if (src == dst || _clusters <= 1)
        return 0;
    sim_assert(src < _clusters && dst < _clusters,
               "interconnect endpoint out of range");
    if (_cfg.topology == Topology::Crossbar)
        return crossLink(linkIndex(src, dst), words, now);

    // Ring: shorter direction, ties go clockwise; the message crosses
    // every intermediate link in order, paying each link's queue.
    unsigned cw = (dst + _clusters - src) % _clusters;
    unsigned ccw = _clusters - cw;
    bool clockwise = cw <= ccw;
    Cycle total = 0;
    unsigned at = src;
    while (at != dst) {
        unsigned next = clockwise ? (at + 1) % _clusters
                                  : (at + _clusters - 1) % _clusters;
        total += crossLink(linkIndex(at, next), words, now + total);
        at = next;
    }
    return total;
}

Cycle
Interconnect::staticLatency(unsigned src, unsigned dst,
                            unsigned words) const
{
    if (src == dst || _clusters <= 1)
        return 0;
    unsigned hops = 1;
    if (_cfg.topology == Topology::Ring) {
        unsigned cw = (dst + _clusters - src) % _clusters;
        unsigned ccw = _clusters - cw;
        hops = cw <= ccw ? cw : ccw;
    }
    return hops * (_cfg.linkLatency + serializeCycles(words));
}

std::uint64_t
Interconnect::totalMessages() const
{
    std::uint64_t n = 0;
    for (const Link &l : _links)
        n += l.stats.messages;
    return n;
}

std::uint64_t
Interconnect::totalPayloadWords() const
{
    std::uint64_t n = 0;
    for (const Link &l : _links)
        n += l.stats.payloadWords;
    return n;
}

std::uint64_t
Interconnect::totalQueueCycles() const
{
    std::uint64_t n = 0;
    for (const Link &l : _links)
        n += l.stats.queueCycles;
    return n;
}

} // namespace retcon::net
