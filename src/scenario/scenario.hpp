/**
 * @file
 * Scenario registry: named traffic/fault shapes for the service
 * workload (ROADMAP "scenario diversity" item).
 *
 * A Scenario is one row of a small mode table — `{name, description,
 * setup, update}` — the classic simulator mode-table idiom. `setup`
 * derives a pure-data Plan from the run's environment (seed, scale,
 * thread count, cluster count); `update` is the per-cycle driver that
 * turns (plan, now) into the instantaneous drive state: the arrival-
 * rate multiplier for open-loop traffic and whether the core-stall
 * fault window is currently active. Three orthogonal families compose
 * into a plan:
 *
 *  - **Open-loop arrivals** (Poisson, bursty on/off, diurnal ramp):
 *    workers stop closing the loop and instead pull requests from a
 *    modeled per-worker arrival queue (scenario/arrivals.hpp) with
 *    backlog, latency, and tail-drop accounting.
 *  - **Mid-run shifts**: the request-class mix rotates and/or the
 *    Zipfian hotset migrates at phase boundaries, each boundary
 *    emitted as a trace annotation so retcon-query can segment the
 *    run by phase (docs/trace-query.md).
 *  - **Faults**: a shard's cores stalling for periodic windows, an
 *    address slice (one directory bank's worth) running at k-times
 *    occupancy, an interconnect link degrading. Fault windows are
 *    periodic and derived deterministically from RunConfig::seed, so
 *    they engage at any workload scale.
 *
 * Determinism contract (docs/scenarios.md): every scenario effect is
 * a pure function of simulated state — (seed, cycle, core id, block
 * address) — never of host threading, shard assignment, or bank
 * count. That keeps every scenario bit-identical across hostThreads,
 * shard counts, and (occupancy unmodeled) bank counts, exactly like
 * an unscenario'd run, and lets every scenario run under the full
 * reenactment audit.
 */

#ifndef RETCON_SCENARIO_SCENARIO_HPP
#define RETCON_SCENARIO_SCENARIO_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace retcon::scenario {

/** Run environment a plan is derived from (api::RunConfig excerpt). */
struct Env {
    std::uint64_t seed = 1;
    double scale = 1.0;
    unsigned nthreads = 1; ///< Fleet-wide simulated thread total.
    unsigned clusters = 1;
};

/** How requests arrive at a worker. */
enum class ArrivalKind : std::uint8_t {
    Closed,  ///< Closed loop: next request only after the last one.
    Poisson, ///< Open loop, exponential inter-arrival gaps.
    Bursty,  ///< Open loop, on/off duty cycle (the burstiest shape).
    Diurnal, ///< Open loop, slow triangle ramp trough -> peak -> trough.
};

const char *arrivalKindName(ArrivalKind k);

/** Arrival-process parameters (per worker; see arrivals.hpp). */
struct ArrivalConfig {
    ArrivalKind kind = ArrivalKind::Closed;

    /** Mean inter-arrival gap in cycles at rate multiplier 1.0. */
    double meanGap = 220.0;

    /** Modulation period in cycles (bursty/diurnal; 0 = none). */
    Cycle period = 0;

    /** Bursty: fraction of each period the source is "on". */
    double onFraction = 0.3;

    /** Bursty: relative arrival rate while "off". */
    double offRate = 0.1;

    /** Diurnal: relative arrival rate at the trough. */
    double troughRate = 0.2;

    /** Backlog bound per worker; arrivals beyond it tail-drop. */
    unsigned queueBound = 24;

    bool open() const { return kind != ArrivalKind::Closed; }
};

/** Mid-run shift schedule (phases over each worker's request index). */
struct ShiftConfig {
    /** Phases per worker (1 = stationary, no marks emitted). */
    unsigned phases = 1;

    /** Rotate the request-class mix by one class per phase. */
    bool rotateMix = false;

    /** Shift the Zipfian hotset by keys/phases per phase. */
    bool migrateHotset = false;
};

/**
 * Deterministic fault windows. All three are periodic — active when
 * ((now + offset) mod period) < len — so they engage at any run
 * length; offsets are derived from the seed by setup hooks.
 */
struct FaultConfig {
    /**
     * Core stall: cores with (core mod stallGroupMod == stallVictim)
     * freeze for the remainder of any active window before serving a
     * request — the cores homed on one shard slot of a
     * stallGroupMod-shard cluster, expressed per-core so the effect
     * is identical at every actual shard count.
     */
    bool coreStall = false;
    unsigned stallGroupMod = 4;
    unsigned stallVictim = 0;
    Cycle stallPeriod = 0;
    Cycle stallLen = 0;
    Cycle stallOffset = 0;

    /**
     * Slow bank: accesses homed on one address slice — blocks with
     * (block / kBlockBytes) mod bankSliceMod == bankSliceVictim, i.e.
     * exactly one bank of a bankSliceMod-banked directory — pay
     * bankExtra cycles while the window is active. Keyed on the
     * address, not the configured bank count, so results stay
     * bit-identical across bank counts (mem::MemorySystem).
     */
    bool bankSlow = false;
    unsigned bankSliceMod = 16;
    unsigned bankSliceVictim = 0;
    Cycle bankPeriod = 0;
    Cycle bankLen = 0;
    Cycle bankOffset = 0;
    Cycle bankExtra = 0;

    /**
     * Degraded interconnect link: one directed link (linkSelector mod
     * numLinks, resolved when the fleet is built) multiplies its hop
     * latency by linkLatencyMult during active windows. Inert at
     * clusters == 1 (there is no interconnect to degrade).
     */
    bool linkDegrade = false;
    std::uint64_t linkSelector = 0;
    Cycle linkPeriod = 0;
    Cycle linkLen = 0;
    Cycle linkOffset = 0;
    unsigned linkLatencyMult = 1;
};

/** Everything a scenario decides, as pure data. */
struct Plan {
    ArrivalConfig arrival;
    ShiftConfig shift;
    FaultConfig fault;
};

/** Instantaneous drive state computed by a scenario's update hook. */
struct Drive {
    double rateMult = 1.0; ///< Arrival-rate multiplier at `now`.
    bool stallWindow = false; ///< Core-stall window active at `now`.
};

using SetupFn = void (*)(Plan &plan, const Env &env);
using UpdateFn = void (*)(const Plan &plan, Cycle now, Drive &drive);

/** One mode-table row. */
struct Scenario {
    const char *name;
    const char *description;
    SetupFn setup;
    UpdateFn update;
};

/** The full mode table, in registration order. */
const std::vector<Scenario> &registry();

/** Look up a scenario by name; nullptr on unknown names. */
const Scenario *scenarioByName(const std::string &name);

/** True when ((now + offset) mod period) < len (period 0 = never). */
inline bool
windowActive(Cycle now, Cycle period, Cycle len, Cycle offset)
{
    return period != 0 && (now + offset) % period < len;
}

/**
 * Per-run scenario state: the resolved table row, its plan, and the
 * aggregated worker-side statistics. Owned by api::runOnce, handed to
 * the service workload through WorkloadParams::scenario; workers fold
 * their arrival-source stats in as they finish (coroutine context —
 * serialized by the engine's dispatch order, like all host-side
 * workload accounting).
 */
class Runtime
{
  public:
    struct Stats {
        std::uint64_t injected = 0;  ///< Arrivals that occurred.
        std::uint64_t completed = 0; ///< Arrivals served.
        std::uint64_t dropped = 0;   ///< Tail-dropped at a full backlog.
        std::uint64_t peakBacklog = 0; ///< Max per-worker queue depth.
        std::uint64_t latencySum = 0;  ///< Sum of (serve - arrival).
        std::uint64_t latencyMax = 0;
        std::uint64_t stallHits = 0;   ///< Requests delayed by the
                                       ///< core-stall fault.
        std::uint64_t stallCycles = 0; ///< Cycles lost to stalls.
        std::uint64_t phaseMarks = 0;  ///< Shift annotations emitted.
    };

    Runtime(const Scenario &sc, const Env &env) : _sc(sc), _env(env)
    {
        _plan = Plan{};
        _sc.setup(_plan, env);
    }

    const Scenario &scenario() const { return _sc; }
    const Plan &plan() const { return _plan; }
    const Env &env() const { return _env; }

    /** Rate multiplier at @p now (dispatches the update hook). */
    double
    rateMult(Cycle now) const
    {
        Drive d;
        _sc.update(_plan, now, d);
        return d.rateMult;
    }

    /** Does the core-stall fault apply to @p core at all? */
    bool
    stallsCore(unsigned core) const
    {
        const FaultConfig &f = _plan.fault;
        return f.coreStall &&
               core % f.stallGroupMod == f.stallVictim;
    }

    /**
     * Cycles a stalled core must wait at @p now before serving (0
     * when no window is active): the remainder of the window, so a
     * victim core sleeps through it like a hung shard.
     */
    Cycle
    stallWait(Cycle now) const
    {
        const FaultConfig &f = _plan.fault;
        Drive d;
        _sc.update(_plan, now, d);
        if (!d.stallWindow)
            return 0;
        return f.stallLen - (now + f.stallOffset) % f.stallPeriod;
    }

    /** Fold one worker's arrival/stall accounting into the total. */
    void
    recordWorker(const Stats &w)
    {
        _stats.injected += w.injected;
        _stats.completed += w.completed;
        _stats.dropped += w.dropped;
        _stats.peakBacklog = std::max(_stats.peakBacklog, w.peakBacklog);
        _stats.latencySum += w.latencySum;
        _stats.latencyMax = std::max(_stats.latencyMax, w.latencyMax);
        _stats.stallHits += w.stallHits;
        _stats.stallCycles += w.stallCycles;
        _stats.phaseMarks += w.phaseMarks;
    }

    const Stats &stats() const { return _stats; }

  private:
    const Scenario &_sc;
    Env _env;
    Plan _plan;
    Stats _stats;
};

} // namespace retcon::scenario

#endif // RETCON_SCENARIO_SCENARIO_HPP
