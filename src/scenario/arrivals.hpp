/**
 * @file
 * Per-worker open-loop arrival source: a modeled arrival queue with
 * backlog, tail-drop, and latency accounting.
 *
 * Arrival times are generated lazily, one ahead, from a dedicated
 * Xoshiro stream (seeded from the run seed and the worker's tid, so
 * they are independent of the worker's request-randomness stream and
 * of anything host-side). Each gap is an exponential draw at the
 * plan's mean, divided by the scenario's rate multiplier *at the
 * previous arrival's cycle* — rate-scaled gaps, the standard
 * discrete-event approximation of an inhomogeneous Poisson process
 * (docs/scenarios.md discusses the fidelity tradeoff vs thinning).
 *
 * The worker drives the source from simulated time (WorkerCtx::now):
 * pull(now) first materializes every arrival that has occurred by
 * `now` — queueing each, or tail-dropping it when the backlog is at
 * the plan's bound — then pops the oldest queued request. The
 * conservation invariant `injected == completed + dropped + backlog`
 * is asserted on every pull and is what the scenario test suite pins
 * end to end.
 */

#ifndef RETCON_SCENARIO_ARRIVALS_HPP
#define RETCON_SCENARIO_ARRIVALS_HPP

#include <deque>

#include "scenario/scenario.hpp"
#include "sim/random.hpp"

namespace retcon::scenario {

class ArrivalSource
{
  public:
    struct Next {
        enum Kind {
            Ready, ///< A request was popped; `at` is its arrival cycle.
            Wait,  ///< Backlog empty; `at` is the next arrival cycle.
            Done,  ///< All arrivals injected and drained.
        } kind;
        Cycle at;
    };

    /**
     * @p total arrivals will be generated for this worker — the same
     * request count the closed loop would have served, so open- and
     * closed-loop runs stay size-comparable.
     */
    ArrivalSource(const Runtime &rt, std::uint64_t seed, unsigned tid,
                  std::uint64_t total);

    /** Materialize arrivals up to @p now, then pop or report. */
    Next pull(Cycle now);

    const Runtime::Stats &stats() const { return _stats; }
    std::uint64_t backlog() const { return _backlog.size(); }

  private:
    const Runtime &_rt;
    std::uint64_t _total;
    std::uint64_t _generated = 0;
    Cycle _nextArrival = 0;
    Xoshiro _rng;
    std::deque<Cycle> _backlog;
    Runtime::Stats _stats;

    void generateNext();
};

} // namespace retcon::scenario

#endif // RETCON_SCENARIO_ARRIVALS_HPP
