/**
 * @file
 * The scenario mode table. Each row's setup hook derives its Plan
 * deterministically from the Env — window offsets and victim picks
 * come from a seed hash, sizes from the workload scale — and each
 * update hook maps (plan, now) to the instantaneous drive state.
 *
 * Adding a scenario = adding one row here (docs/scenarios.md walks
 * through it). Names are part of the CLI surface (`sweep_main
 * --scenario NAME`) and the bench JSON schema, so renames are
 * breaking changes.
 */

#include "scenario/scenario.hpp"

namespace retcon::scenario {

namespace {

/** splitmix64: decorrelate the seed into per-knob draws. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// ---- Update hooks ----------------------------------------------------

void
updateFlat(const Plan &, Cycle, Drive &)
{
    // Rate 1.0, no windows: closed loop and plain Poisson.
}

void
updateBursty(const Plan &p, Cycle now, Drive &d)
{
    const ArrivalConfig &a = p.arrival;
    Cycle on = static_cast<Cycle>(
        static_cast<double>(a.period) * a.onFraction);
    d.rateMult = (now % a.period) < on ? 1.0 / a.onFraction : a.offRate;
}

void
updateDiurnal(const Plan &p, Cycle now, Drive &d)
{
    // Triangle wave: trough at phase 0, peak at period/2, back down.
    const ArrivalConfig &a = p.arrival;
    Cycle half = a.period / 2;
    Cycle ph = now % a.period;
    double frac = ph < half
                      ? static_cast<double>(ph) / half
                      : static_cast<double>(a.period - ph) / half;
    d.rateMult = a.troughRate + (1.0 - a.troughRate) * frac;
}

void
updateStall(const Plan &p, Cycle now, Drive &d)
{
    const FaultConfig &f = p.fault;
    d.stallWindow =
        windowActive(now, f.stallPeriod, f.stallLen, f.stallOffset);
}

// ---- Setup hooks -----------------------------------------------------

void
setupSteady(Plan &, const Env &)
{
    // The control row: the closed-loop stationary workload, run
    // through the scenario machinery so the grid has a baseline.
}

void
setupPoisson(Plan &p, const Env &env)
{
    p.arrival.kind = ArrivalKind::Poisson;
    // Near the service rate: backlogs form and drain, few drops.
    p.arrival.meanGap = 220.0 + mix(env.seed) % 40;
    p.arrival.queueBound = 24;
}

void
setupBursty(Plan &p, const Env &env)
{
    p.arrival.kind = ArrivalKind::Bursty;
    // Bursts run ~3.3x the sustainable rate (1/onFraction), so the
    // bound engages and tail-drops are expected — the burstiest
    // registered shape, used for the audit negative control.
    p.arrival.meanGap = 240.0;
    p.arrival.period = 6000 + mix(env.seed ^ 1) % 1000;
    p.arrival.onFraction = 0.3;
    p.arrival.offRate = 0.1;
    p.arrival.queueBound = 16;
}

void
setupDiurnal(Plan &p, const Env &env)
{
    p.arrival.kind = ArrivalKind::Diurnal;
    p.arrival.meanGap = 200.0;
    p.arrival.period = 20000 + mix(env.seed ^ 2) % 4000;
    p.arrival.troughRate = 0.2;
    p.arrival.queueBound = 32;
}

void
setupMixRotate(Plan &p, const Env &)
{
    p.shift.phases = 4;
    p.shift.rotateMix = true;
}

void
setupHotsetMigrate(Plan &p, const Env &)
{
    p.shift.phases = 4;
    p.shift.migrateHotset = true;
}

void
setupShardStall(Plan &p, const Env &env)
{
    FaultConfig &f = p.fault;
    f.coreStall = true;
    f.stallGroupMod = 4;
    f.stallVictim =
        static_cast<unsigned>(mix(env.seed ^ 3) % f.stallGroupMod);
    f.stallPeriod = 8000;
    f.stallLen = 1500;
    f.stallOffset = mix(env.seed ^ 4) % f.stallPeriod;
}

void
setupBankSlow(Plan &p, const Env &env)
{
    FaultConfig &f = p.fault;
    f.bankSlow = true;
    f.bankSliceMod = 16;
    f.bankSliceVictim =
        static_cast<unsigned>(mix(env.seed ^ 5) % f.bankSliceMod);
    f.bankPeriod = 6000;
    f.bankLen = 2400;
    f.bankOffset = mix(env.seed ^ 6) % f.bankPeriod;
    f.bankExtra = 40;
}

void
setupLinkDegrade(Plan &p, const Env &env)
{
    // Open-loop base so the scenario is interesting even where the
    // fault is inert (clusters == 1 has no interconnect).
    setupPoisson(p, env);
    FaultConfig &f = p.fault;
    f.linkDegrade = true;
    f.linkSelector = mix(env.seed ^ 7);
    f.linkPeriod = 7000;
    f.linkLen = 2800;
    f.linkOffset = mix(env.seed ^ 8) % f.linkPeriod;
    f.linkLatencyMult = 4;
}

void
setupStorm(Plan &p, const Env &env)
{
    // Composition check: the burstiest arrivals, a rotating mix, and
    // a stalling shard at once — the families are orthogonal by
    // construction and this row keeps them that way.
    setupBursty(p, env);
    p.shift.phases = 4;
    p.shift.rotateMix = true;
    setupShardStall(p, env);
}

void
updateStorm(const Plan &p, Cycle now, Drive &d)
{
    updateBursty(p, now, d);
    updateStall(p, now, d);
}

const std::vector<Scenario> &
table()
{
    static const std::vector<Scenario> rows = {
        {"steady-closed",
         "closed-loop stationary baseline (the pre-scenario workload)",
         setupSteady, updateFlat},
        {"poisson-open",
         "open loop, exponential inter-arrival gaps near service rate",
         setupPoisson, updateFlat},
        {"bursty-onoff",
         "open loop, on/off duty cycle; bursts overload the backlog "
         "bound (tail drops expected)",
         setupBursty, updateBursty},
        {"diurnal-ramp",
         "open loop, slow triangle ramp trough -> peak -> trough",
         setupDiurnal, updateDiurnal},
        {"mix-rotate",
         "request-class mix rotates one class per quarter, phase "
         "boundaries annotated",
         setupMixRotate, updateFlat},
        {"hotset-migrate",
         "Zipfian hotset shifts a quarter of the key space per "
         "quarter, phase boundaries annotated",
         setupHotsetMigrate, updateFlat},
        {"shard-stall",
         "one shard slot's cores freeze for periodic windows",
         setupShardStall, updateStall},
        {"bank-slow",
         "one directory bank's address slice runs at k-times "
         "occupancy in periodic windows",
         setupBankSlow, updateFlat},
        {"link-degrade",
         "one interconnect link at 4x hop latency in periodic "
         "windows, over Poisson arrivals (link inert at 1 cluster)",
         setupLinkDegrade, updateFlat},
        {"storm",
         "bursty arrivals + rotating mix + stalling shard composed",
         setupStorm, updateStorm},
    };
    return rows;
}

} // namespace

const char *
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Closed: return "closed";
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Diurnal: return "diurnal";
    }
    return "?";
}

const std::vector<Scenario> &
registry()
{
    return table();
}

const Scenario *
scenarioByName(const std::string &name)
{
    for (const Scenario &s : registry())
        if (name == s.name)
            return &s;
    return nullptr;
}

} // namespace retcon::scenario
