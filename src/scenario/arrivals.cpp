#include "scenario/arrivals.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace retcon::scenario {

ArrivalSource::ArrivalSource(const Runtime &rt, std::uint64_t seed,
                             unsigned tid, std::uint64_t total)
    : _rt(rt), _total(total),
      // A stream disjoint from the worker's request stream: same
      // per-thread splitting, different seed lane.
      _rng(Xoshiro::forThread(seed ^ 0xa1717a1ull, tid))
{
    sim_assert(_rt.plan().arrival.open(),
               "ArrivalSource on a closed-loop plan");
    if (_total > 0)
        generateNext(); // First arrival, gap measured from cycle 0.
}

void
ArrivalSource::generateNext()
{
    const ArrivalConfig &a = _rt.plan().arrival;
    double u = _rng.uniform();
    double raw = -std::log(1.0 - u) * a.meanGap;
    double rate = _rt.rateMult(_nextArrival);
    if (rate < 0.01)
        rate = 0.01;
    auto gap = static_cast<Cycle>(raw / rate);
    _nextArrival += gap < 1 ? 1 : gap;
}

ArrivalSource::Next
ArrivalSource::pull(Cycle now)
{
    const ArrivalConfig &a = _rt.plan().arrival;
    while (_generated < _total && _nextArrival <= now) {
        ++_stats.injected;
        if (_backlog.size() >= a.queueBound) {
            ++_stats.dropped; // Tail drop: the arrival, not the queue.
        } else {
            _backlog.push_back(_nextArrival);
            if (_backlog.size() > _stats.peakBacklog)
                _stats.peakBacklog = _backlog.size();
        }
        ++_generated;
        generateNext();
    }
    sim_assert(_stats.injected ==
                   _stats.completed + _stats.dropped + _backlog.size(),
               "arrival conservation violated");
    if (!_backlog.empty()) {
        Cycle arrival = _backlog.front();
        _backlog.pop_front();
        ++_stats.completed;
        std::uint64_t lat = now - arrival;
        _stats.latencySum += lat;
        if (lat > _stats.latencyMax)
            _stats.latencyMax = lat;
        return {Next::Ready, arrival};
    }
    if (_generated < _total)
        return {Next::Wait, _nextArrival};
    return {Next::Done, now};
}

} // namespace retcon::scenario
