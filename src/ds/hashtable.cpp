#include "ds/hashtable.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;

namespace retcon::ds {

SimHashtable
SimHashtable::create(mem::SparseMemory &mem, SimAllocator &alloc,
                     Word num_buckets, bool resizable)
{
    Addr base = alloc.allocShared(kBlockBytes);
    Addr array = alloc.allocShared(num_buckets * kWordBytes);
    mem.writeWord(base + kNumBuckets * kWordBytes, num_buckets);
    mem.writeWord(base + kSize * kWordBytes, 0);
    mem.writeWord(base + kThreshold * kWordBytes,
                  num_buckets * kLoadFactor);
    mem.writeWord(base + kArrayPtr * kWordBytes, array);
    mem.writeWord(base + kResizable * kWordBytes, resizable ? 1 : 0);
    for (Word b = 0; b < num_buckets; ++b)
        mem.writeWord(array + b * kWordBytes, 0);
    return SimHashtable(base, &alloc);
}

Task<TxValue>
SimHashtable::insert(Tx &tx, unsigned tid, Word key, Word value)
{
    // Header reads: bucket count and array pointer feed address
    // computation, so symbolic tracking pins them with equality
    // constraints — a remote resize correctly forces an abort.
    TxValue nbv = co_await tx.load(headerWord(kNumBuckets));
    Word num_buckets = tx.reify(nbv);
    TxValue arrv = co_await tx.load(headerWord(kArrayPtr));
    Addr array = tx.reify(arrv);

    Addr bucket = array + (hashKey(key) % num_buckets) * kWordBytes;
    TxValue headv = co_await tx.load(bucket);
    Addr node = tx.reify(headv);

    while (node != 0) {
        TxValue kv = co_await tx.load(node + kNodeKey * kWordBytes);
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key)))
            co_return TxValue(0); // Already present.
        TxValue nxt = co_await tx.load(node + kNodeNext * kWordBytes);
        node = tx.reify(nxt);
    }

    // Link a fresh node at the head of the chain.
    Addr fresh = _alloc->alloc(tid, kNodeBytes);
    co_await tx.store(fresh + kNodeKey * kWordBytes, TxValue(key));
    co_await tx.store(fresh + kNodeValue * kWordBytes, TxValue(value));
    co_await tx.store(fresh + kNodeNext * kWordBytes, headv);
    co_await tx.store(bucket, TxValue(fresh));

    TxValue rsz = co_await tx.load(headerWord(kResizable));
    if (tx.cmp(rsz, rtc::CmpOp::NE, 0)) {
        // Maintain the shared size field (the paper's conflict magnet:
        // pure +1 update, symbolically repairable).
        TxValue sz = co_await tx.load(headerWord(kSize));
        TxValue sz1 = tx.add(sz, 1);
        co_await tx.store(headerWord(kSize), sz1);

        // Resize check: a highly biased branch on the symbolic size,
        // captured as an interval constraint (§4: control flow is
        // insensitive to the exact value in a well-configured table).
        TxValue thr = co_await tx.load(headerWord(kThreshold));
        if (tx.cmpv(sz1, rtc::CmpOp::GT, thr))
            co_await resize(tx, tid);
    }
    co_return TxValue(1);
}

Task<TxValue>
SimHashtable::resize(Tx &tx, unsigned tid)
{
    // Grow to 2x buckets and rehash every chain. This transaction
    // touches the entire table: it conflicts with everything, which is
    // exactly the cost the paper attributes to resizable hashtables.
    TxValue nbv = co_await tx.load(headerWord(kNumBuckets));
    Word old_buckets = tx.reify(nbv);
    TxValue arrv = co_await tx.load(headerWord(kArrayPtr));
    Addr old_array = tx.reify(arrv);

    Word new_buckets = old_buckets * 2;
    Addr new_array = _alloc->alloc(tid, new_buckets * kWordBytes);
    for (Word b = 0; b < new_buckets; ++b)
        co_await tx.store(new_array + b * kWordBytes, TxValue(0));

    for (Word b = 0; b < old_buckets; ++b) {
        TxValue headv = co_await tx.load(old_array + b * kWordBytes);
        Addr node = tx.reify(headv);
        while (node != 0) {
            TxValue kv = co_await tx.load(node + kNodeKey * kWordBytes);
            Word key = tx.reify(kv);
            TxValue nxt =
                co_await tx.load(node + kNodeNext * kWordBytes);
            Addr next = tx.reify(nxt);
            Addr nb = new_array +
                      (hashKey(key) % new_buckets) * kWordBytes;
            TxValue nh = co_await tx.load(nb);
            co_await tx.store(node + kNodeNext * kWordBytes, nh);
            co_await tx.store(nb, TxValue(node));
            node = next;
        }
    }

    co_await tx.store(headerWord(kNumBuckets), TxValue(new_buckets));
    co_await tx.store(headerWord(kArrayPtr), TxValue(new_array));
    co_await tx.store(headerWord(kThreshold),
                      TxValue(new_buckets * kLoadFactor));
    co_return TxValue(1);
}

Task<TxValue>
SimHashtable::lookup(Tx &tx, Word key)
{
    TxValue nbv = co_await tx.load(headerWord(kNumBuckets));
    Word num_buckets = tx.reify(nbv);
    TxValue arrv = co_await tx.load(headerWord(kArrayPtr));
    Addr array = tx.reify(arrv);

    Addr bucket = array + (hashKey(key) % num_buckets) * kWordBytes;
    TxValue headv = co_await tx.load(bucket);
    Addr node = tx.reify(headv);

    while (node != 0) {
        TxValue kv = co_await tx.load(node + kNodeKey * kWordBytes);
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key))) {
            TxValue val =
                co_await tx.load(node + kNodeValue * kWordBytes);
            co_return tx.add(val, 1);
        }
        TxValue nxt = co_await tx.load(node + kNodeNext * kWordBytes);
        node = tx.reify(nxt);
    }
    co_return TxValue(0);
}

Task<TxValue>
SimHashtable::remove(Tx &tx, Word key)
{
    TxValue nbv = co_await tx.load(headerWord(kNumBuckets));
    Word num_buckets = tx.reify(nbv);
    TxValue arrv = co_await tx.load(headerWord(kArrayPtr));
    Addr array = tx.reify(arrv);

    Addr bucket = array + (hashKey(key) % num_buckets) * kWordBytes;
    Addr prev = 0; // 0 = bucket head.
    TxValue headv = co_await tx.load(bucket);
    Addr node = tx.reify(headv);

    while (node != 0) {
        TxValue kv = co_await tx.load(node + kNodeKey * kWordBytes);
        TxValue nxt = co_await tx.load(node + kNodeNext * kWordBytes);
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key))) {
            if (prev == 0)
                co_await tx.store(bucket, nxt);
            else
                co_await tx.store(prev + kNodeNext * kWordBytes, nxt);
            TxValue rsz = co_await tx.load(headerWord(kResizable));
            if (tx.cmp(rsz, rtc::CmpOp::NE, 0)) {
                TxValue sz = co_await tx.load(headerWord(kSize));
                co_await tx.store(headerWord(kSize), tx.sub(sz, 1));
            }
            co_return TxValue(1);
        }
        prev = node;
        node = tx.reify(nxt);
    }
    co_return TxValue(0);
}

void
SimHashtable::hostInsert(mem::SparseMemory &mem, Word key, Word value)
{
    Word num_buckets = mem.readWord(headerWord(kNumBuckets));
    Addr array = mem.readWord(headerWord(kArrayPtr));
    Addr bucket = array + (hashKey(key) % num_buckets) * kWordBytes;
    Addr node = mem.readWord(bucket);
    while (node != 0) {
        if (mem.readWord(node + kNodeKey * kWordBytes) == key)
            return;
        node = mem.readWord(node + kNodeNext * kWordBytes);
    }
    Addr fresh = _alloc->allocShared(kNodeBytes);
    mem.writeWord(fresh + kNodeKey * kWordBytes, key);
    mem.writeWord(fresh + kNodeValue * kWordBytes, value);
    mem.writeWord(fresh + kNodeNext * kWordBytes, mem.readWord(bucket));
    mem.writeWord(bucket, fresh);
    if (mem.readWord(headerWord(kResizable)))
        mem.writeWord(headerWord(kSize),
                      mem.readWord(headerWord(kSize)) + 1);
}

bool
SimHashtable::hostContains(const mem::SparseMemory &mem, Word key) const
{
    Word num_buckets = mem.readWord(headerWord(kNumBuckets));
    Addr array = mem.readWord(headerWord(kArrayPtr));
    Addr bucket = array + (hashKey(key) % num_buckets) * kWordBytes;
    Addr node = mem.readWord(bucket);
    while (node != 0) {
        if (mem.readWord(node + kNodeKey * kWordBytes) == key)
            return true;
        node = mem.readWord(node + kNodeNext * kWordBytes);
    }
    return false;
}

Word
SimHashtable::hostSize(const mem::SparseMemory &mem) const
{
    return mem.readWord(headerWord(kSize));
}

Word
SimHashtable::hostNumBuckets(const mem::SparseMemory &mem) const
{
    return mem.readWord(headerWord(kNumBuckets));
}

Word
SimHashtable::hostCountNodes(const mem::SparseMemory &mem) const
{
    Word num_buckets = mem.readWord(headerWord(kNumBuckets));
    Addr array = mem.readWord(headerWord(kArrayPtr));
    Word count = 0;
    for (Word b = 0; b < num_buckets; ++b) {
        Addr node = mem.readWord(array + b * kWordBytes);
        while (node != 0) {
            ++count;
            node = mem.readWord(node + kNodeNext * kWordBytes);
        }
    }
    return count;
}

} // namespace retcon::ds
