/**
 * @file
 * 3D routing grid (the labyrinth model).
 *
 * The grid is a dense array of words: 0 = free, otherwise the id of the
 * path occupying the cell. Following the paper's restructuring, the
 * router copies the grid *before* the transaction (plain loads) and
 * computes a path privately; the transaction then revalidates and
 * claims the path cells. Conflicts only arise when concurrent paths
 * overlap, which is rare on a sparse grid — labyrinth's bottleneck is
 * load imbalance (long, variable-length routes), not conflicts.
 */

#ifndef RETCON_DS_GRID_HPP
#define RETCON_DS_GRID_HPP

#include <vector>

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** A handle to a 3D grid in simulated memory. */
class SimGrid
{
  public:
    SimGrid() = default;

    static SimGrid create(mem::SparseMemory &mem, SimAllocator &alloc,
                          Word x, Word y, Word z);

    Word cells() const { return _x * _y * _z; }
    Addr cellAddr(Word idx) const { return _base + idx * kWordBytes; }

    Word
    index(Word cx, Word cy, Word cz) const
    {
        return (cz * _y + cy) * _x + cx;
    }

    Word xDim() const { return _x; }
    Word yDim() const { return _y; }
    Word zDim() const { return _z; }

    /**
     * Claim the cells of a path atomically: each cell is loaded,
     * checked free, and stamped with @p path_id. @return 1 on success,
     * 0 when some cell was already taken (the route must be redone).
     */
    exec::Task<exec::TxValue> claimPath(exec::Tx &tx,
                                        const std::vector<Word> &cells,
                                        Word path_id);

    /** Number of cells stamped with a nonzero id (host-side). */
    Word hostClaimedCells(const mem::SparseMemory &mem) const;

  private:
    Addr _base = 0;
    Word _x = 0, _y = 0, _z = 0;
};

} // namespace retcon::ds

#endif // RETCON_DS_GRID_HPP
