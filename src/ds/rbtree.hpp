/**
 * @file
 * Red-black tree map in simulated memory (vacation/intruder base
 * variants).
 *
 * Layout:
 *   header: [0] root ptr  [1] count
 *   node:   [0] key [1] value [2] left [3] right [4] parent
 *           [5] color (0=black 1=red) [6] deleted
 *
 * Insertions run the full red-black fixup (rotations + recoloring),
 * which is what makes the tree a conflict magnet near the root: an
 * insert deep in one subtree can recolor/rotate nodes shared with
 * every other insert. The paper's software restructuring replaces this
 * tree with a hashtable ("_opt" variants).
 *
 * Removal uses lazy deletion (a tombstone flag) — standard practice in
 * concurrent maps; it keeps the structural invariants intact while
 * still exercising read-modify-write on shared nodes.
 */

#ifndef RETCON_DS_RBTREE_HPP
#define RETCON_DS_RBTREE_HPP

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** A handle to a red-black tree in simulated memory. */
class SimRBTree
{
  public:
    static constexpr unsigned kRoot = 0;
    static constexpr unsigned kCount = 1;

    static constexpr unsigned kNodeKey = 0;
    static constexpr unsigned kNodeValue = 1;
    static constexpr unsigned kNodeLeft = 2;
    static constexpr unsigned kNodeRight = 3;
    static constexpr unsigned kNodeParent = 4;
    static constexpr unsigned kNodeColor = 5;
    static constexpr unsigned kNodeDeleted = 6;
    static constexpr Addr kNodeBytes = 7 * kWordBytes;

    SimRBTree() = default;
    SimRBTree(Addr base, SimAllocator *alloc) : _base(base), _alloc(alloc)
    {}

    static SimRBTree create(mem::SparseMemory &mem, SimAllocator &alloc);

    Addr base() const { return _base; }

    /**
     * Insert key -> value (revives tombstoned keys).
     * @return 1 inserted/revived, 0 already present.
     */
    exec::Task<exec::TxValue> insert(exec::Tx &tx, unsigned tid, Word key,
                                     Word value);

    /** Look up key. @return value+1 if present (not deleted), else 0. */
    exec::Task<exec::TxValue> lookup(exec::Tx &tx, Word key);

    /** Tombstone key. @return 1 removed, 0 absent. */
    exec::Task<exec::TxValue> remove(exec::Tx &tx, Word key);

    // Host-side helpers (setup / invariant checks).
    void hostInsert(mem::SparseMemory &mem, Word key, Word value);
    bool hostContains(const mem::SparseMemory &mem, Word key) const;
    Word hostCount(const mem::SparseMemory &mem) const;

    /**
     * Validate the red-black invariants over live structure: BST
     * ordering, no red node with a red child, equal black height on
     * every root-to-null path. @return true when all hold.
     */
    bool hostCheckInvariants(const mem::SparseMemory &mem) const;

  private:
    Addr _base = 0;
    SimAllocator *_alloc = nullptr;

    Addr headerWord(unsigned idx) const { return _base + idx * kWordBytes; }
    static Addr field(Addr node, unsigned idx)
    {
        return node + idx * kWordBytes;
    }

    exec::Task<exec::TxValue> fixupInsert(exec::Tx &tx, Addr node);
    exec::Task<exec::TxValue> rotate(exec::Tx &tx, Addr node, bool left);

    int hostBlackHeight(const mem::SparseMemory &mem, Addr node,
                        bool &ok) const;
};

} // namespace retcon::ds

#endif // RETCON_DS_RBTREE_HPP
