#include "ds/queue.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;

namespace retcon::ds {

SimQueue
SimQueue::create(mem::SparseMemory &mem, SimAllocator &alloc)
{
    Addr base = alloc.allocShared(kBlockBytes);
    mem.writeWord(base + kHead * kWordBytes, 0);
    mem.writeWord(base + kTail * kWordBytes, 0);
    mem.writeWord(base + kCount * kWordBytes, 0);
    return SimQueue(base, &alloc);
}

Task<TxValue>
SimQueue::enqueue(Tx &tx, unsigned tid, Word payload)
{
    Addr fresh = _alloc->alloc(tid, kNodeBytes);
    co_await tx.store(fresh + kNodePayload * kWordBytes,
                      TxValue(payload));
    co_await tx.store(fresh + kNodeNext * kWordBytes, TxValue(0));

    TxValue tailv = co_await tx.load(headerWord(kTail));
    Addr tail = tx.reify(tailv); // Address use: pins the tail pointer.
    if (tail == 0) {
        co_await tx.store(headerWord(kHead), TxValue(fresh));
    } else {
        co_await tx.store(tail + kNodeNext * kWordBytes, TxValue(fresh));
    }
    co_await tx.store(headerWord(kTail), TxValue(fresh));

    TxValue cnt = co_await tx.load(headerWord(kCount));
    co_await tx.store(headerWord(kCount), tx.add(cnt, 1));
    co_return TxValue(1);
}

Task<TxValue>
SimQueue::dequeue(Tx &tx)
{
    TxValue headv = co_await tx.load(headerWord(kHead));
    Addr head = tx.reify(headv); // Address use: pins the head pointer.
    if (head == 0)
        co_return TxValue(0);

    TxValue payload = co_await tx.load(head + kNodePayload * kWordBytes);
    TxValue nextv = co_await tx.load(head + kNodeNext * kWordBytes);
    Addr next = tx.reify(nextv);
    co_await tx.store(headerWord(kHead), TxValue(next));
    if (next == 0)
        co_await tx.store(headerWord(kTail), TxValue(0));

    TxValue cnt = co_await tx.load(headerWord(kCount));
    co_await tx.store(headerWord(kCount), tx.sub(cnt, 1));
    co_return tx.add(payload, 1);
}

void
SimQueue::hostEnqueue(mem::SparseMemory &mem, Word payload)
{
    Addr fresh = _alloc->allocShared(kNodeBytes);
    mem.writeWord(fresh + kNodePayload * kWordBytes, payload);
    mem.writeWord(fresh + kNodeNext * kWordBytes, 0);
    Addr tail = mem.readWord(headerWord(kTail));
    if (tail == 0)
        mem.writeWord(headerWord(kHead), fresh);
    else
        mem.writeWord(tail + kNodeNext * kWordBytes, fresh);
    mem.writeWord(headerWord(kTail), fresh);
    mem.writeWord(headerWord(kCount),
                  mem.readWord(headerWord(kCount)) + 1);
}

Word
SimQueue::hostCount(const mem::SparseMemory &mem) const
{
    return mem.readWord(headerWord(kCount));
}

} // namespace retcon::ds
