#include "ds/grid.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;

namespace retcon::ds {

SimGrid
SimGrid::create(mem::SparseMemory &mem, SimAllocator &alloc, Word x,
                Word y, Word z)
{
    SimGrid g;
    g._x = x;
    g._y = y;
    g._z = z;
    g._base = alloc.allocShared(x * y * z * kWordBytes);
    for (Word i = 0; i < x * y * z; ++i)
        mem.writeWord(g._base + i * kWordBytes, 0);
    return g;
}

Task<TxValue>
SimGrid::claimPath(Tx &tx, const std::vector<Word> &cells, Word path_id)
{
    for (Word idx : cells) {
        TxValue v = co_await tx.load(cellAddr(idx));
        if (tx.cmp(v, rtc::CmpOp::NE, 0))
            co_return TxValue(0); // Cell taken: semantic conflict.
    }
    for (Word idx : cells)
        co_await tx.store(cellAddr(idx), TxValue(path_id));
    co_return TxValue(1);
}

Word
SimGrid::hostClaimedCells(const mem::SparseMemory &mem) const
{
    Word n = 0;
    for (Word i = 0; i < cells(); ++i)
        n += mem.readWord(_base + i * kWordBytes) != 0;
    return n;
}

} // namespace retcon::ds
