/**
 * @file
 * Reference-counted shared objects (the cpython model).
 *
 * An object is a block-aligned region whose word 0 is the reference
 * count; the payload follows. CPython bumps the refcount of *every*
 * object a bytecode touches — including globally shared singletons
 * (small ints, interned strings, module dicts) — which is the paper's
 * flagship RETCON-repairable conflict: a pure load/add/store with
 * control flow that only tests for zero (never true for shared
 * singletons), so remote changes repair cleanly at commit.
 */

#ifndef RETCON_DS_REFCOUNT_HPP
#define RETCON_DS_REFCOUNT_HPP

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** Allocate a refcounted object with @p payload_words payload words. */
inline Addr
makeRefCounted(mem::SparseMemory &mem, SimAllocator &alloc,
               Addr payload_words, Word initial_count = 1)
{
    Addr obj = alloc.allocShared(kBlockBytes +
                                 payload_words * kWordBytes);
    mem.writeWord(obj, initial_count);
    return obj;
}

/** Py_INCREF: refcount += 1 (symbolically repairable). */
inline exec::Task<exec::TxValue>
incref(exec::Tx &tx, Addr obj)
{
    exec::TxValue rc = co_await tx.load(obj);
    co_await tx.store(obj, tx.add(rc, 1));
    co_return exec::TxValue(0);
}

/**
 * Py_DECREF: refcount -= 1; the deallocation branch tests for zero,
 * forming the interval constraint [rc] > 1 on the input — shared
 * singletons never hit it, so the branch stays repairable.
 */
inline exec::Task<exec::TxValue>
decref(exec::Tx &tx, Addr obj)
{
    exec::TxValue rc = co_await tx.load(obj);
    exec::TxValue rc1 = tx.sub(rc, 1);
    co_await tx.store(obj, rc1);
    if (tx.cmp(rc1, rtc::CmpOp::LE, 0)) {
        // Deallocation path (cold for shared objects): charge the
        // cost of tearing the object down.
        co_await tx.work(30);
    }
    co_return exec::TxValue(0);
}

} // namespace retcon::ds

#endif // RETCON_DS_REFCOUNT_HPP
