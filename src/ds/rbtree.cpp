#include "ds/rbtree.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;

namespace retcon::ds {

namespace {
constexpr Word kBlack = 0;
constexpr Word kRed = 1;
} // namespace

SimRBTree
SimRBTree::create(mem::SparseMemory &mem, SimAllocator &alloc)
{
    Addr base = alloc.allocShared(kBlockBytes);
    mem.writeWord(base + kRoot * kWordBytes, 0);
    mem.writeWord(base + kCount * kWordBytes, 0);
    return SimRBTree(base, &alloc);
}

Task<TxValue>
SimRBTree::rotate(Tx &tx, Addr x, bool left)
{
    unsigned toward = left ? kNodeLeft : kNodeRight;
    unsigned away = left ? kNodeRight : kNodeLeft;

    Addr y = tx.reify(co_await tx.load(field(x, away)));
    Addr y_toward = tx.reify(co_await tx.load(field(y, toward)));

    co_await tx.store(field(x, away), TxValue(y_toward));
    if (y_toward != 0)
        co_await tx.store(field(y_toward, kNodeParent), TxValue(x));

    Addr xp = tx.reify(co_await tx.load(field(x, kNodeParent)));
    co_await tx.store(field(y, kNodeParent), TxValue(xp));
    if (xp == 0) {
        co_await tx.store(headerWord(kRoot), TxValue(y));
    } else {
        Addr xp_left = tx.reify(co_await tx.load(field(xp, kNodeLeft)));
        if (xp_left == x)
            co_await tx.store(field(xp, kNodeLeft), TxValue(y));
        else
            co_await tx.store(field(xp, kNodeRight), TxValue(y));
    }
    co_await tx.store(field(y, toward), TxValue(x));
    co_await tx.store(field(x, kNodeParent), TxValue(y));
    co_return TxValue(0);
}

Task<TxValue>
SimRBTree::fixupInsert(Tx &tx, Addr z)
{
    for (;;) {
        Addr p = tx.reify(co_await tx.load(field(z, kNodeParent)));
        if (p == 0)
            break;
        TxValue pcol = co_await tx.load(field(p, kNodeColor));
        if (tx.cmp(pcol, rtc::CmpOp::EQ, kBlack))
            break;
        Addr g = tx.reify(co_await tx.load(field(p, kNodeParent)));
        if (g == 0)
            break;
        Addr g_left = tx.reify(co_await tx.load(field(g, kNodeLeft)));
        bool p_is_left = (p == g_left);
        Addr uncle = tx.reify(co_await tx.load(
            field(g, p_is_left ? kNodeRight : kNodeLeft)));

        bool uncle_red = false;
        if (uncle != 0) {
            TxValue ucol = co_await tx.load(field(uncle, kNodeColor));
            uncle_red = tx.cmp(ucol, rtc::CmpOp::EQ, kRed);
        }

        if (uncle_red) {
            co_await tx.store(field(p, kNodeColor), TxValue(kBlack));
            co_await tx.store(field(uncle, kNodeColor), TxValue(kBlack));
            co_await tx.store(field(g, kNodeColor), TxValue(kRed));
            z = g;
            continue;
        }

        Addr inner = tx.reify(co_await tx.load(
            field(p, p_is_left ? kNodeRight : kNodeLeft)));
        if (z == inner) {
            z = p;
            co_await rotate(tx, z, p_is_left);
            p = tx.reify(co_await tx.load(field(z, kNodeParent)));
        }
        co_await tx.store(field(p, kNodeColor), TxValue(kBlack));
        co_await tx.store(field(g, kNodeColor), TxValue(kRed));
        co_await rotate(tx, g, !p_is_left);
    }

    Addr root = tx.reify(co_await tx.load(headerWord(kRoot)));
    co_await tx.store(field(root, kNodeColor), TxValue(kBlack));
    co_return TxValue(0);
}

Task<TxValue>
SimRBTree::insert(Tx &tx, unsigned tid, Word key, Word value)
{
    Addr parent = 0;
    bool went_left = false;
    Addr cur = tx.reify(co_await tx.load(headerWord(kRoot)));

    while (cur != 0) {
        TxValue kv = co_await tx.load(field(cur, kNodeKey));
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key))) {
            TxValue del = co_await tx.load(field(cur, kNodeDeleted));
            if (tx.cmp(del, rtc::CmpOp::NE, 0)) {
                co_await tx.store(field(cur, kNodeDeleted), TxValue(0));
                co_await tx.store(field(cur, kNodeValue),
                                  TxValue(value));
                TxValue cnt = co_await tx.load(headerWord(kCount));
                co_await tx.store(headerWord(kCount), tx.add(cnt, 1));
                co_return TxValue(1);
            }
            co_return TxValue(0);
        }
        parent = cur;
        went_left = tx.cmpv(TxValue(key), rtc::CmpOp::LT, kv);
        cur = tx.reify(co_await tx.load(
            field(cur, went_left ? kNodeLeft : kNodeRight)));
    }

    Addr fresh = _alloc->alloc(tid, kNodeBytes);
    co_await tx.store(field(fresh, kNodeKey), TxValue(key));
    co_await tx.store(field(fresh, kNodeValue), TxValue(value));
    co_await tx.store(field(fresh, kNodeLeft), TxValue(0));
    co_await tx.store(field(fresh, kNodeRight), TxValue(0));
    co_await tx.store(field(fresh, kNodeParent), TxValue(parent));
    co_await tx.store(field(fresh, kNodeColor), TxValue(kRed));
    co_await tx.store(field(fresh, kNodeDeleted), TxValue(0));

    if (parent == 0) {
        co_await tx.store(headerWord(kRoot), TxValue(fresh));
    } else {
        co_await tx.store(
            field(parent, went_left ? kNodeLeft : kNodeRight),
            TxValue(fresh));
    }
    TxValue cnt = co_await tx.load(headerWord(kCount));
    co_await tx.store(headerWord(kCount), tx.add(cnt, 1));

    co_await fixupInsert(tx, fresh);
    co_return TxValue(1);
}

Task<TxValue>
SimRBTree::lookup(Tx &tx, Word key)
{
    Addr cur = tx.reify(co_await tx.load(headerWord(kRoot)));
    while (cur != 0) {
        TxValue kv = co_await tx.load(field(cur, kNodeKey));
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key))) {
            TxValue del = co_await tx.load(field(cur, kNodeDeleted));
            if (tx.cmp(del, rtc::CmpOp::NE, 0))
                co_return TxValue(0);
            TxValue val = co_await tx.load(field(cur, kNodeValue));
            co_return tx.add(val, 1);
        }
        bool left = tx.cmpv(TxValue(key), rtc::CmpOp::LT, kv);
        cur = tx.reify(co_await tx.load(
            field(cur, left ? kNodeLeft : kNodeRight)));
    }
    co_return TxValue(0);
}

Task<TxValue>
SimRBTree::remove(Tx &tx, Word key)
{
    Addr cur = tx.reify(co_await tx.load(headerWord(kRoot)));
    while (cur != 0) {
        TxValue kv = co_await tx.load(field(cur, kNodeKey));
        if (tx.cmpv(kv, rtc::CmpOp::EQ, TxValue(key))) {
            TxValue del = co_await tx.load(field(cur, kNodeDeleted));
            if (tx.cmp(del, rtc::CmpOp::NE, 0))
                co_return TxValue(0);
            co_await tx.store(field(cur, kNodeDeleted), TxValue(1));
            TxValue cnt = co_await tx.load(headerWord(kCount));
            co_await tx.store(headerWord(kCount), tx.sub(cnt, 1));
            co_return TxValue(1);
        }
        bool left = tx.cmpv(TxValue(key), rtc::CmpOp::LT, kv);
        cur = tx.reify(co_await tx.load(
            field(cur, left ? kNodeLeft : kNodeRight)));
    }
    co_return TxValue(0);
}

// ---------------------------------------------------------------------
// Host-side (functional) mirror used for setup and invariant checking.
// ---------------------------------------------------------------------

void
SimRBTree::hostInsert(mem::SparseMemory &mem, Word key, Word value)
{
    auto rd = [&](Addr a) { return mem.readWord(a); };
    auto wr = [&](Addr a, Word v) { mem.writeWord(a, v); };

    Addr parent = 0;
    bool went_left = false;
    Addr cur = rd(headerWord(kRoot));
    while (cur != 0) {
        Word k = rd(field(cur, kNodeKey));
        if (k == key) {
            if (rd(field(cur, kNodeDeleted))) {
                wr(field(cur, kNodeDeleted), 0);
                wr(field(cur, kNodeValue), value);
                wr(headerWord(kCount), rd(headerWord(kCount)) + 1);
            }
            return;
        }
        parent = cur;
        went_left = static_cast<std::int64_t>(key) <
                    static_cast<std::int64_t>(k);
        cur = rd(field(cur, went_left ? kNodeLeft : kNodeRight));
    }

    Addr fresh = _alloc->allocShared(kNodeBytes);
    wr(field(fresh, kNodeKey), key);
    wr(field(fresh, kNodeValue), value);
    wr(field(fresh, kNodeLeft), 0);
    wr(field(fresh, kNodeRight), 0);
    wr(field(fresh, kNodeParent), parent);
    wr(field(fresh, kNodeColor), kRed);
    wr(field(fresh, kNodeDeleted), 0);
    if (parent == 0)
        wr(headerWord(kRoot), fresh);
    else
        wr(field(parent, went_left ? kNodeLeft : kNodeRight), fresh);
    wr(headerWord(kCount), rd(headerWord(kCount)) + 1);

    auto rotate_host = [&](Addr x, bool left) {
        unsigned toward = left ? kNodeLeft : kNodeRight;
        unsigned away = left ? kNodeRight : kNodeLeft;
        Addr y = rd(field(x, away));
        Addr yt = rd(field(y, toward));
        wr(field(x, away), yt);
        if (yt)
            wr(field(yt, kNodeParent), x);
        Addr xp = rd(field(x, kNodeParent));
        wr(field(y, kNodeParent), xp);
        if (xp == 0)
            wr(headerWord(kRoot), y);
        else if (rd(field(xp, kNodeLeft)) == x)
            wr(field(xp, kNodeLeft), y);
        else
            wr(field(xp, kNodeRight), y);
        wr(field(y, toward), x);
        wr(field(x, kNodeParent), y);
    };

    Addr z = fresh;
    for (;;) {
        Addr p = rd(field(z, kNodeParent));
        if (p == 0 || rd(field(p, kNodeColor)) == kBlack)
            break;
        Addr g = rd(field(p, kNodeParent));
        if (g == 0)
            break;
        bool p_is_left = rd(field(g, kNodeLeft)) == p;
        Addr uncle = rd(field(g, p_is_left ? kNodeRight : kNodeLeft));
        if (uncle != 0 && rd(field(uncle, kNodeColor)) == kRed) {
            wr(field(p, kNodeColor), kBlack);
            wr(field(uncle, kNodeColor), kBlack);
            wr(field(g, kNodeColor), kRed);
            z = g;
            continue;
        }
        if (z == rd(field(p, p_is_left ? kNodeRight : kNodeLeft))) {
            z = p;
            rotate_host(z, p_is_left);
            p = rd(field(z, kNodeParent));
        }
        wr(field(p, kNodeColor), kBlack);
        wr(field(g, kNodeColor), kRed);
        rotate_host(g, !p_is_left);
    }
    wr(field(rd(headerWord(kRoot)), kNodeColor), kBlack);
}

bool
SimRBTree::hostContains(const mem::SparseMemory &mem, Word key) const
{
    Addr cur = mem.readWord(headerWord(kRoot));
    while (cur != 0) {
        Word k = mem.readWord(field(cur, kNodeKey));
        if (k == key)
            return mem.readWord(field(cur, kNodeDeleted)) == 0;
        bool left = static_cast<std::int64_t>(key) <
                    static_cast<std::int64_t>(k);
        cur = mem.readWord(field(cur, left ? kNodeLeft : kNodeRight));
    }
    return false;
}

Word
SimRBTree::hostCount(const mem::SparseMemory &mem) const
{
    return mem.readWord(headerWord(kCount));
}

int
SimRBTree::hostBlackHeight(const mem::SparseMemory &mem, Addr node,
                           bool &ok) const
{
    if (node == 0)
        return 1;
    Addr l = mem.readWord(field(node, kNodeLeft));
    Addr r = mem.readWord(field(node, kNodeRight));
    Word color = mem.readWord(field(node, kNodeColor));
    Word key = mem.readWord(field(node, kNodeKey));

    auto skey = static_cast<std::int64_t>(key);
    if (l && static_cast<std::int64_t>(
                 mem.readWord(field(l, kNodeKey))) >= skey)
        ok = false;
    if (r && static_cast<std::int64_t>(
                 mem.readWord(field(r, kNodeKey))) <= skey)
        ok = false;
    if (color == kRed) {
        if (l && mem.readWord(field(l, kNodeColor)) == kRed)
            ok = false;
        if (r && mem.readWord(field(r, kNodeColor)) == kRed)
            ok = false;
    }
    int hl = hostBlackHeight(mem, l, ok);
    int hr = hostBlackHeight(mem, r, ok);
    if (hl != hr)
        ok = false;
    return hl + (color == kBlack ? 1 : 0);
}

bool
SimRBTree::hostCheckInvariants(const mem::SparseMemory &mem) const
{
    Addr root = mem.readWord(headerWord(kRoot));
    if (root == 0)
        return true;
    if (mem.readWord(field(root, kNodeColor)) != kBlack)
        return false;
    bool ok = true;
    hostBlackHeight(mem, root, ok);
    return ok;
}

} // namespace retcon::ds
