/**
 * @file
 * Linked-list FIFO queue in simulated memory.
 *
 * Layout:
 *   header: [0] head ptr  [1] tail ptr  [2] count
 *   node:   [0] payload   [1] next
 *
 * The head/tail pointers are consumed as *addresses* by dequeue/enqueue,
 * so under RETCON they acquire equality constraints — a remote dequeue
 * changes them and forces an abort. This is the paper's intruder
 * pattern: "the values on which there is contention are used to index
 * into memory", the case repair cannot help (§5.4). The intruder_opt
 * variant sidesteps it with thread-private queues (one queue per
 * thread), not a different queue implementation.
 */

#ifndef RETCON_DS_QUEUE_HPP
#define RETCON_DS_QUEUE_HPP

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** A handle to a FIFO queue in simulated memory. */
class SimQueue
{
  public:
    static constexpr unsigned kHead = 0;
    static constexpr unsigned kTail = 1;
    static constexpr unsigned kCount = 2;
    static constexpr unsigned kNodePayload = 0;
    static constexpr unsigned kNodeNext = 1;
    static constexpr Addr kNodeBytes = 2 * kWordBytes;

    SimQueue() = default;
    SimQueue(Addr base, SimAllocator *alloc) : _base(base), _alloc(alloc)
    {}

    static SimQueue create(mem::SparseMemory &mem, SimAllocator &alloc);

    Addr base() const { return _base; }

    /** Append @p payload. */
    exec::Task<exec::TxValue> enqueue(exec::Tx &tx, unsigned tid,
                                      Word payload);

    /** Pop the oldest payload. @return payload+1, or 0 when empty. */
    exec::Task<exec::TxValue> dequeue(exec::Tx &tx);

    // Host-side helpers (setup / validation).
    void hostEnqueue(mem::SparseMemory &mem, Word payload);
    Word hostCount(const mem::SparseMemory &mem) const;

  private:
    Addr _base = 0;
    SimAllocator *_alloc = nullptr;

    Addr headerWord(unsigned idx) const { return _base + idx * kWordBytes; }
};

} // namespace retcon::ds

#endif // RETCON_DS_QUEUE_HPP
