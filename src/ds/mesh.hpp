/**
 * @file
 * Shared refinement mesh (the yada model).
 *
 * Nodes are triangles with neighbour pointers; refinement transactions
 * pick a "bad" element, expand a cavity by chasing neighbour pointers,
 * and retriangulate (rewrite links, clear/set bad flags). The chased
 * pointers feed address computation, so under RETCON every node visited
 * acquires an equality constraint — and since concurrent refinements
 * restructure overlapping cavities, the constraints are violated and
 * repair fails: yada is the paper's example of conflicts central to
 * the dataflow (§5.4).
 *
 * Node layout: [0..3] neighbour ptrs, [4] bad flag, [5] epoch.
 */

#ifndef RETCON_DS_MESH_HPP
#define RETCON_DS_MESH_HPP

#include <vector>

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** A handle to a refinement mesh in simulated memory. */
class SimMesh
{
  public:
    static constexpr unsigned kNeighbors = 4;
    static constexpr unsigned kBadFlag = 4;
    static constexpr unsigned kEpoch = 5;
    static constexpr Addr kNodeBytes = 6 * kWordBytes;

    SimMesh() = default;

    /**
     * Build a connected random mesh of @p num_nodes elements with
     * @p bad_fraction_pct percent initially marked bad.
     */
    static SimMesh create(mem::SparseMemory &mem, SimAllocator &alloc,
                          Word num_nodes, unsigned bad_fraction_pct,
                          Xoshiro &rng);

    /** Address of node @p i. */
    Addr node(Word i) const { return _nodes.at(i); }
    Word numNodes() const { return _nodes.size(); }

    /**
     * Refine the cavity around @p start: walk up to @p depth neighbour
     * hops, clear bad flags, bump epochs, and rewire one link per
     * visited node. @return number of nodes touched.
     */
    exec::Task<exec::TxValue> refine(exec::Tx &tx, Addr start,
                                     unsigned depth);

    /** Count nodes whose bad flag is still set (host-side). */
    Word hostCountBad(const mem::SparseMemory &mem) const;

  private:
    std::vector<Addr> _nodes;
};

} // namespace retcon::ds

#endif // RETCON_DS_MESH_HPP
