/**
 * @file
 * Chained hashtable in simulated memory (the STAMP hashtable model).
 *
 * Layout:
 *   header block:  [0] numBuckets  [1] size  [2] resizeThreshold
 *                  [3] bucketArrayPtr  [4] resizable flag
 *   bucket array:  numBuckets words of chain-head pointers
 *   node:          [0] key  [1] value  [2] next
 *
 * The shared `size` word is the paper's flagship repairable conflict:
 * every insert executes load/add-1/store on it, and the resize check
 * branches on it — a highly biased branch that becomes an interval
 * constraint under RETCON. With `resizable` false the size word is not
 * maintained at all (STAMP's default non-resizable hashtable), which is
 * why the fixed-size variants scale even on the baseline.
 */

#ifndef RETCON_DS_HASHTABLE_HPP
#define RETCON_DS_HASHTABLE_HPP

#include "ds/sim_alloc.hpp"
#include "exec/core.hpp"
#include "exec/task.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** Mix a key into a hash (splitmix64 finalizer). */
constexpr Word
hashKey(Word k)
{
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
}

/** A handle to a hashtable living in simulated memory. */
class SimHashtable
{
  public:
    /** Header word indices. */
    static constexpr unsigned kNumBuckets = 0;
    static constexpr unsigned kSize = 1;
    static constexpr unsigned kThreshold = 2;
    static constexpr unsigned kArrayPtr = 3;
    static constexpr unsigned kResizable = 4;

    /** Node word indices. */
    static constexpr unsigned kNodeKey = 0;
    static constexpr unsigned kNodeValue = 1;
    static constexpr unsigned kNodeNext = 2;
    static constexpr Addr kNodeBytes = 3 * kWordBytes;

    /** Growth trigger: resize when size > buckets * kLoadFactor. */
    static constexpr Word kLoadFactor = 4;

    SimHashtable() = default;
    SimHashtable(Addr base, SimAllocator *alloc)
        : _base(base), _alloc(alloc)
    {}

    /** Functionally create a table (setup phase, zero simulated time). */
    static SimHashtable create(mem::SparseMemory &mem, SimAllocator &alloc,
                               Word num_buckets, bool resizable);

    Addr base() const { return _base; }

    // ---- Transactional operations (timed, conflict-detected) --------
    /**
     * Insert key -> value. @return 1 when inserted, 0 when the key was
     * already present.
     */
    exec::Task<exec::TxValue> insert(exec::Tx &tx, unsigned tid, Word key,
                                     Word value);

    /** Look up key. @return value+1 when found, 0 when absent. */
    exec::Task<exec::TxValue> lookup(exec::Tx &tx, Word key);

    /** Remove key. @return 1 when removed, 0 when absent. */
    exec::Task<exec::TxValue> remove(exec::Tx &tx, Word key);

    // ---- Functional (host-side) helpers for setup & validation ------
    void hostInsert(mem::SparseMemory &mem, Word key, Word value);
    bool hostContains(const mem::SparseMemory &mem, Word key) const;
    Word hostSize(const mem::SparseMemory &mem) const;
    Word hostNumBuckets(const mem::SparseMemory &mem) const;
    /** Count reachable nodes by walking every chain. */
    Word hostCountNodes(const mem::SparseMemory &mem) const;

  private:
    Addr _base = 0;
    SimAllocator *_alloc = nullptr;

    Addr headerWord(unsigned idx) const { return _base + idx * kWordBytes; }

    /** The resize transaction body (grow + rehash). */
    exec::Task<exec::TxValue> resize(exec::Tx &tx, unsigned tid);
};

} // namespace retcon::ds

#endif // RETCON_DS_HASHTABLE_HPP
