#include "ds/mesh.hpp"

using retcon::exec::Task;
using retcon::exec::Tx;
using retcon::exec::TxValue;

namespace retcon::ds {

SimMesh
SimMesh::create(mem::SparseMemory &mem, SimAllocator &alloc,
                Word num_nodes, unsigned bad_fraction_pct, Xoshiro &rng)
{
    SimMesh mesh;
    mesh._nodes.reserve(num_nodes);
    for (Word i = 0; i < num_nodes; ++i)
        mesh._nodes.push_back(alloc.allocShared(kBlockBytes));

    for (Word i = 0; i < num_nodes; ++i) {
        Addr n = mesh._nodes[i];
        // Ring edges keep the mesh connected; the rest are random,
        // giving the irregular sharing pattern of a refinement mesh.
        mem.writeWord(n + 0 * kWordBytes,
                      mesh._nodes[(i + 1) % num_nodes]);
        mem.writeWord(n + 1 * kWordBytes,
                      mesh._nodes[(i + num_nodes - 1) % num_nodes]);
        mem.writeWord(n + 2 * kWordBytes,
                      mesh._nodes[rng.below(num_nodes)]);
        mem.writeWord(n + 3 * kWordBytes,
                      mesh._nodes[rng.below(num_nodes)]);
        mem.writeWord(n + kBadFlag * kWordBytes,
                      rng.chance(bad_fraction_pct, 100) ? 1 : 0);
        mem.writeWord(n + kEpoch * kWordBytes, 0);
    }
    return mesh;
}

Task<TxValue>
SimMesh::refine(Tx &tx, Addr start, unsigned depth)
{
    // Cavity expansion: chase neighbour pointers from the seed. Every
    // pointer is consumed as an address (tx.reify), so each visited
    // node is pinned — remote retriangulation of an overlapping cavity
    // changes the links and the repair constraints fail.
    Word touched = 0;
    Addr cur = start;
    Addr prev = 0;
    for (unsigned d = 0; d < depth; ++d) {
        TxValue bad = co_await tx.load(cur + kBadFlag * kWordBytes);
        if (tx.cmp(bad, rtc::CmpOp::NE, 0))
            co_await tx.store(cur + kBadFlag * kWordBytes, TxValue(0));

        TxValue ep = co_await tx.load(cur + kEpoch * kWordBytes);
        co_await tx.store(cur + kEpoch * kWordBytes, tx.add(ep, 1));
        ++touched;

        // Retriangulate: point one link of the current node back at
        // the previous cavity member.
        if (prev != 0)
            co_await tx.store(cur + 3 * kWordBytes, TxValue(prev));

        TxValue nxt =
            co_await tx.load(cur + (d % kNeighbors) * kWordBytes);
        Addr next = tx.reify(nxt);
        if (next == 0)
            break;
        prev = cur;
        cur = next;
        co_await tx.work(60); // Geometric predicate cost.
    }
    co_return TxValue(touched);
}

Word
SimMesh::hostCountBad(const mem::SparseMemory &mem) const
{
    Word n = 0;
    for (Addr node : _nodes)
        n += mem.readWord(node + kBadFlag * kWordBytes) != 0;
    return n;
}

} // namespace retcon::ds
