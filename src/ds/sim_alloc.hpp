/**
 * @file
 * Per-thread arena allocator over the simulated address space.
 *
 * Models the paper's use of Hoard: allocation never induces
 * inter-thread conflicts because each thread carves objects out of its
 * own arena, so objects allocated by different threads never share a
 * coherence block. Allocation metadata is host-side (bump pointers);
 * an aborted transaction simply leaks its bump advance, which is
 * deterministic and harmless (real allocators fragment similarly).
 */

#ifndef RETCON_DS_SIM_ALLOC_HPP
#define RETCON_DS_SIM_ALLOC_HPP

#include <vector>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace retcon::ds {

/** Bump allocator with one arena per simulated thread. */
class SimAllocator
{
  public:
    /**
     * @param base       start of the managed region (block-aligned)
     * @param arena_bytes bytes per thread arena
     * @param nthreads   number of thread arenas (+1 shared setup arena)
     */
    SimAllocator(Addr base, Addr arena_bytes, unsigned nthreads)
        : _base(base), _arenaBytes(arena_bytes)
    {
        sim_assert(blockAddr(base) == base, "arena base must be aligned");
        for (unsigned t = 0; t <= nthreads; ++t)
            _bump.push_back(base + t * arena_bytes);
    }

    /**
     * Allocate @p bytes from thread @p tid's arena. Every per-thread
     * allocation starts on its own coherence block: a thread's bump
     * frontier is written on every allocation, and packing live nodes
     * next to it would manufacture false-sharing conflicts the
     * paper's workloads do not exhibit (Hoard-style segregation).
     */
    Addr
    alloc(unsigned tid, Addr bytes)
    {
        sim_assert(tid < _bump.size() - 1, "allocator: bad thread id");
        _bump[tid] = (_bump[tid] + kBlockBytes - 1) & ~(kBlockBytes - 1);
        return bump(tid, bytes);
    }

    /** Allocate from the shared setup arena (single-threaded phases). */
    Addr
    allocShared(Addr bytes)
    {
        return bump(static_cast<unsigned>(_bump.size() - 1), bytes);
    }

    /** Bytes consumed from @p tid's arena so far. */
    Addr
    used(unsigned tid) const
    {
        return _bump[tid] - (_base + tid * _arenaBytes);
    }

  private:
    Addr _base;
    Addr _arenaBytes;
    std::vector<Addr> _bump;

    Addr
    bump(unsigned idx, Addr bytes)
    {
        bytes = (bytes + kWordBytes - 1) & ~(kWordBytes - 1);
        if (bytes >= kBlockBytes) {
            // Block-align large objects.
            _bump[idx] = (_bump[idx] + kBlockBytes - 1) &
                         ~(kBlockBytes - 1);
        }
        Addr p = _bump[idx];
        _bump[idx] += bytes;
        Addr limit = _base + (idx + 1) * _arenaBytes;
        sim_assert(_bump[idx] <= limit,
                   "arena %u exhausted (%llu bytes requested)", idx,
                   static_cast<unsigned long long>(bytes));
        return p;
    }
};

} // namespace retcon::ds

#endif // RETCON_DS_SIM_ALLOC_HPP
