/**
 * @file
 * ParallelEngine: conservative host-parallel execution of the sharded
 * event queue, bit-identical to the sequential engine by construction.
 *
 * ## Why callbacks stay serialized
 *
 * Every event callback reaches globally coupled model state (the TM
 * machine's conflict detection, the banked directory, the trace
 * stream), so bit-identity with the sequential engine forces callbacks
 * to execute in exactly the sequential global (cycle, seq) order. The
 * engine therefore serializes *execution* behind a migrating dispatch
 * token while parallelizing everything around it: each worker owns a
 * contiguous group of shards and concurrently applies cross-shard
 * mailbox traffic to its heaps (pushes, cancel marks, cancelled-top
 * pruning) and republishes its shards' horizons while the token holder
 * is busy running callbacks. Heap maintenance — the non-model half of
 * a discrete-event simulator's work — overlaps with model execution.
 *
 * ## The barrier-free lower-bound-timestamp protocol
 *
 * - Worker w owns shards [first_w, first_w + count_w). A shard's heap
 *   is touched ONLY by its owner thread: the holder dispatches only
 *   its own shards' events, and foreign schedules/cancels travel
 *   through per-pair SPSC mailboxes applied by the owner.
 * - Each shard publishes a horizon slot (next-due (cycle, seq), or
 *   "empty") under a per-slot spinlock. The owner republishes after
 *   applying mail and before handing off the token.
 * - Mail to a consumer carries a per-consumer sequence number
 *   (allocated under the token) and is applied strictly in that
 *   order, so a cancel can never outrun the schedule it targets.
 * - The holder computes a conservative lower bound for every foreign
 *   shard: the published horizon, min-ed with the earliest in-flight
 *   mailed schedule (`mailedMin`) while the owner's mailbox is not
 *   settled (applied-counter < sent-counter). It executes its own
 *   earliest event only when that event lex-precedes every foreign
 *   bound; otherwise it publishes its horizons and hands the token to
 *   the bound's owner. Each handoff applies outstanding mail and
 *   refines a stale bound, so the protocol cannot ping-pong forever.
 * - With a modeled dispatch bandwidth, the work-steal busy-probe needs
 *   *exact* foreign horizons; the holder waits for all mailboxes to
 *   settle before consulting them (counted as a stall, not a barrier:
 *   no worker ever waits for all others collectively).
 *
 * Determinism follows: schedule order (and thus the global seq
 * allocation), dispatch order, slip/steal decisions, and every model
 * callback happen in the identical sequence as the sequential engine,
 * on a fixed host thread per core. Wall-clock wins come from the
 * overlapped heap maintenance and, at the tool level, from running
 * independent sweep cells on host threads (docs/parallel-engine.md).
 */

#ifndef RETCON_SIM_PARALLEL_ENGINE_HPP
#define RETCON_SIM_PARALLEL_ENGINE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/sharded_queue.hpp"

namespace retcon {

/** Conservative host-parallel engine over a ShardedEventQueue. */
class ParallelEngine
{
  public:
    /** Host-side counters (never part of simulated results). */
    struct Stats {
        unsigned workers = 1;
        std::uint64_t handoffs = 0; ///< Token migrations.
        std::uint64_t stalls = 0;   ///< Holder waits on in-flight mail.
        std::uint64_t mailed = 0;   ///< Cross-worker messages sent.
        double wallMs = 0.0;        ///< run() wall-clock time.
    };

    /**
     * @p workers host threads drive @p q's shards in contiguous
     * groups; clamped to the shard count. The engine does not attach
     * itself: call q.setEngine(&engine) to activate delegation.
     */
    ParallelEngine(ShardedEventQueue &q, unsigned workers);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    unsigned workers() const { return _nworkers; }

    /** True while worker threads are live (run() in progress). */
    bool
    active() const
    {
        return _active.load(std::memory_order_acquire);
    }

    /** Execute the queue to completion; same contract as
     *  ShardedEventQueue::run(). */
    Cycle run(Cycle maxCycles);

    const Stats &stats() const { return _stats; }

    // ---- Called by ShardedEventQueue while active (token holder) ----
    EventHandle routeSchedule(unsigned shard, Cycle when,
                              EventQueue::Callback cb);
    void routeCancel(EventHandle h);

    /**
     * Mailed schedules need sender-fabricated event ids; they live far
     * above any per-shard allocation (a shard would need 2^40 local
     * events to collide) and below the shard tag at bit 56.
     */
    static constexpr std::uint64_t kMailIdBase = std::uint64_t(1) << 40;

  private:
    struct Mail {
        enum class Kind : std::uint8_t { Schedule, Cancel };
        Kind kind = Kind::Schedule;
        unsigned shard = 0;
        Cycle when = 0;
        std::uint64_t seq = 0;
        std::uint64_t id = 0; ///< Heap-local id (no shard tag).
        std::uint64_t mailSeq = 0;
        EventQueue::Callback cb;
    };

    /**
     * Single-producer single-consumer ring. The producer role rotates
     * with the dispatch token; release/acquire chains through the
     * token handoff make the rotation sound.
     */
    class SpscRing
    {
      public:
        explicit SpscRing(std::size_t cap) : _slots(cap), _mask(cap - 1)
        {}

        bool
        tryPush(Mail &&m)
        {
            std::size_t t = _tail.load(std::memory_order_relaxed);
            std::size_t h = _head.load(std::memory_order_acquire);
            if (t - h > _mask)
                return false;
            _slots[t & _mask] = std::move(m);
            _tail.store(t + 1, std::memory_order_release);
            return true;
        }

        bool
        tryPop(Mail &m)
        {
            std::size_t h = _head.load(std::memory_order_relaxed);
            std::size_t t = _tail.load(std::memory_order_acquire);
            if (h == t)
                return false;
            m = std::move(_slots[h & _mask]);
            _head.store(h + 1, std::memory_order_release);
            return true;
        }

      private:
        std::vector<Mail> _slots;
        std::size_t _mask;
        alignas(64) std::atomic<std::size_t> _head{0};
        alignas(64) std::atomic<std::size_t> _tail{0};
    };

    /** Published per-shard horizon, guarded by a tiny spinlock. */
    struct alignas(64) HorizonSlot {
        std::atomic_flag lock = ATOMIC_FLAG_INIT;
        Cycle when = kNoEvent;
        std::uint64_t seq = 0;
    };

    struct Worker {
        unsigned first = 0; ///< First owned shard.
        unsigned count = 0; ///< Owned shard count.
        /// Reorder buffer: mail arrives over W-1 rings but applies in
        /// per-consumer mailSeq order.
        std::map<std::uint64_t, Mail> stash;
        std::uint64_t nextApply = 0;
        unsigned idleSpins = 0;
        std::thread thread;
    };

    static constexpr Cycle kNoEvent = ~Cycle(0);

    ShardedEventQueue &_q;
    unsigned _nworkers;
    std::vector<Worker> _workers;
    std::vector<unsigned> _ownerOf; ///< shard -> worker.
    std::vector<std::unique_ptr<SpscRing>> _rings; ///< [prod*W + cons].
    std::vector<HorizonSlot> _slots;               ///< One per shard.

    // Token-owned state: written only by the current holder (or the
    // owner applying mail, for the applied counters); cross-thread
    // visibility rides the release/acquire token handoff.
    std::vector<std::uint64_t> _sentMail; ///< Per consumer.
    std::unique_ptr<std::atomic<std::uint64_t>[]> _appliedMail;
    std::vector<std::pair<Cycle, std::uint64_t>> _mailedMin; ///< Per shard.
    std::uint64_t _nextMailId = kMailIdBase;
    Cycle _maxCycles = kNoEvent;

    std::atomic<unsigned> _token{0};
    std::atomic<bool> _stop{false};
    std::atomic<bool> _active{false};

    Stats _stats;

    void workerLoop(unsigned w);
    bool drainMail(unsigned w);
    bool holderStep(unsigned w);
    void publishShards(unsigned w);
    void writeSlot(unsigned shard, Cycle when, std::uint64_t seq);
    std::pair<Cycle, std::uint64_t> readSlot(unsigned shard);
    void sendMail(unsigned producer, unsigned consumer, Mail &&m);
    static bool lexLess(Cycle aw, std::uint64_t as, Cycle bw,
                        std::uint64_t bs);
};

} // namespace retcon

#endif // RETCON_SIM_PARALLEL_ENGINE_HPP
