/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for simulator bugs (conditions that must never happen
 * regardless of user input); fatal() is for user/configuration errors;
 * warn() and inform() report conditions without stopping the simulation.
 */

#ifndef RETCON_SIM_LOGGING_HPP
#define RETCON_SIM_LOGGING_HPP

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace retcon {

/** Global verbosity switch: 0 = errors only, 1 = warn, 2 = inform. */
extern int logVerbosity;

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

} // namespace retcon

/** Abort the process: an internal simulator invariant was violated. */
#define panic(...) ::retcon::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit with an error: the user supplied an impossible configuration. */
#define fatal(...) ::retcon::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious but survivable condition. */
#define warn(...) ::retcon::warnImpl(__VA_ARGS__)

/** Report a normal informational message. */
#define inform(...) ::retcon::informImpl(__VA_ARGS__)

/** panic() unless the stated invariant holds. */
#define sim_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::retcon::panicImpl(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                                 \
    } while (0)

#endif // RETCON_SIM_LOGGING_HPP
