/**
 * @file
 * Fundamental simulator-wide type aliases and block-geometry helpers.
 *
 * The simulated machine is a 64-bit word-addressable multiprocessor with
 * 64-byte coherence blocks (Table 1 of the RETCON paper). All modules
 * share these aliases so that address arithmetic is consistent.
 */

#ifndef RETCON_SIM_TYPES_HPP
#define RETCON_SIM_TYPES_HPP

#include <cstdint>
#include <functional>

namespace retcon {

/** Simulated time in processor cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier of a simulated core (0-based). */
using CoreId = std::uint32_t;

/** A 64-bit simulated machine word. */
using Word = std::uint64_t;

/** Sentinel core id meaning "no core" / "memory". */
inline constexpr CoreId kNoCore = static_cast<CoreId>(-1);

/** Coherence/cache block size in bytes (Table 1: 64B blocks). */
inline constexpr Addr kBlockBytes = 64;

/** Bytes per simulated machine word. */
inline constexpr Addr kWordBytes = 8;

/** Words per coherence block. */
inline constexpr Addr kWordsPerBlock = kBlockBytes / kWordBytes;

/** Round a byte address down to its containing block address. */
constexpr Addr
blockAddr(Addr a)
{
    return a & ~(kBlockBytes - 1);
}

/** Round a byte address down to its containing word address. */
constexpr Addr
wordAddr(Addr a)
{
    return a & ~(kWordBytes - 1);
}

/** Index of the word within its block (0..7). */
constexpr unsigned
wordInBlock(Addr a)
{
    return static_cast<unsigned>((a & (kBlockBytes - 1)) / kWordBytes);
}

/** Byte offset within the containing word (0..7). */
constexpr unsigned
byteInWord(Addr a)
{
    return static_cast<unsigned>(a & (kWordBytes - 1));
}

/**
 * Read-only view of a simulated clock.
 *
 * Both the single EventQueue and the sharded cluster queue implement
 * this, so consumers that only observe time (the TM machine stamps
 * latencies and provenance records but never schedules) work against
 * either clock source.
 */
class SimClock
{
  public:
    virtual ~SimClock() = default;

    /** Current simulated cycle. */
    virtual Cycle now() const = 0;
};

} // namespace retcon

#endif // RETCON_SIM_TYPES_HPP
