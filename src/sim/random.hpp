/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * A xoshiro256** generator: fast, high quality, and fully reproducible
 * across platforms (unlike std::mt19937 distributions, whose results
 * are implementation-defined for some adaptors). Every workload thread
 * derives its own stream from (seed, threadId) so runs are deterministic
 * regardless of interleaving.
 */

#ifndef RETCON_SIM_RANDOM_HPP
#define RETCON_SIM_RANDOM_HPP

#include <cmath>
#include <cstdint>

namespace retcon {

/** xoshiro256** PRNG with splitmix64 seeding. */
class Xoshiro
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Xoshiro(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Derive an independent stream for a given thread. */
    static Xoshiro
    forThread(std::uint64_t seed, std::uint32_t thread)
    {
        return Xoshiro(seed * 0x100000001b3ull + thread + 1);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for the
        // bounds used by the workloads (all << 2^32).
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _s[4];
};

/**
 * Zipfian key distribution over [0, n) — the YCSB/Gray "quickly
 * generating billion-record databases" method. Rank 0 is the hottest
 * key; theta (default 0.99, the YCSB standard) controls the skew.
 * Used by the service workload to model web-request key popularity.
 *
 * The harmonic normalizer is precomputed in the constructor (O(n),
 * fine at workload key-space sizes); next() is O(1) and consumes one
 * value from the caller's per-thread stream, so draws stay
 * deterministic regardless of interleaving.
 */
class Zipfian
{
  public:
    explicit Zipfian(std::uint64_t n, double theta = 0.99)
        : _n(n), _theta(theta)
    {
        double zetan = 0, zeta2 = 0;
        for (std::uint64_t i = 1; i <= _n; ++i) {
            zetan += 1.0 / std::pow(static_cast<double>(i), _theta);
            if (i == 2)
                zeta2 = zetan;
        }
        _zetan = zetan;
        _alpha = 1.0 / (1.0 - _theta);
        _eta = (1.0 - std::pow(2.0 / static_cast<double>(_n),
                               1.0 - _theta)) /
               (1.0 - zeta2 / _zetan);
    }

    std::uint64_t n() const { return _n; }
    double theta() const { return _theta; }

    /** Draw a rank in [0, n): 0 is the most popular. */
    std::uint64_t
    next(Xoshiro &rng)
    {
        double u = rng.uniform();
        double uz = u * _zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, _theta))
            return 1;
        auto r = static_cast<std::uint64_t>(
            static_cast<double>(_n) *
            std::pow(_eta * u - _eta + 1.0, _alpha));
        return r >= _n ? _n - 1 : r;
    }

  private:
    std::uint64_t _n;
    double _theta;
    double _alpha = 0;
    double _zetan = 0;
    double _eta = 0;
};

} // namespace retcon

#endif // RETCON_SIM_RANDOM_HPP
