#include "sim/sharded_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/parallel_engine.hpp"

namespace retcon {

ShardedEventQueue::ShardedEventQueue(const ShardedQueueConfig &cfg)
    : _cfg(cfg)
{
    sim_assert(cfg.nshards >= 1 && cfg.nshards <= 64,
               "shard count out of range");
    _shards.reserve(cfg.nshards);
    for (unsigned s = 0; s < cfg.nshards; ++s)
        _shards.push_back(std::make_unique<EventQueue>());
    _stats.resize(cfg.nshards);
    _dispatched.resize(cfg.nshards, 0);
}

Cycle
ShardedEventQueue::shardNow(unsigned shard) const
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    return _shards[shard]->now();
}

const ShardedEventQueue::ShardStats &
ShardedEventQueue::shardStats(unsigned shard) const
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    return _stats[shard];
}

EventHandle
ShardedEventQueue::schedule(unsigned shard, Cycle when, Callback cb)
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    sim_assert(when >= _now, "scheduling into the global past");
    // Under an active parallel engine, only the dispatch-token holder
    // executes callbacks (and therefore schedules); operations on a
    // foreign worker's shard travel through its mailbox.
    if (_engine && _engine->active())
        return _engine->routeSchedule(shard, when, std::move(cb));
    EventHandle h =
        _shards[shard]->scheduleSeq(when, _nextSeq++, std::move(cb));
    sim_assert(h.id <= kIdMask, "per-shard event ids exhausted");
    ++_stats[shard].scheduled;
    h.id |= static_cast<std::uint64_t>(shard) << kShardShift;
    return h;
}

void
ShardedEventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return;
    auto shard = static_cast<unsigned>(h.id >> kShardShift);
    sim_assert(shard < _cfg.nshards, "cancel of a foreign handle");
    if (_engine && _engine->active())
        return _engine->routeCancel(h);
    _shards[shard]->cancel(EventHandle{h.id & kIdMask});
}

bool
ShardedEventQueue::empty() const
{
    for (const auto &s : _shards)
        if (!s->empty())
            return false;
    return true;
}

std::size_t
ShardedEventQueue::pending() const
{
    std::size_t n = 0;
    for (const auto &s : _shards)
        n += s->pending();
    return n;
}

int
ShardedEventQueue::findEarliest(Cycle &when, std::uint64_t &seq)
{
    int best = -1;
    for (unsigned s = 0; s < _cfg.nshards; ++s) {
        Cycle w;
        std::uint64_t q;
        if (!_shards[s]->peekNext(w, q))
            continue;
        if (best < 0 || w < when || (w == when && q < seq)) {
            best = static_cast<int>(s);
            when = w;
            seq = q;
        }
    }
    return best;
}

int
ShardedEventQueue::pickExecutor(unsigned home, Cycle when)
{
    return pickExecutorT(home, when,
                         [this](unsigned t, Cycle &w, std::uint64_t &q) {
                             return _shards[t]->peekNext(w, q);
                         });
}

bool
ShardedEventQueue::step(Cycle maxCycles)
{
    for (;;) {
        Cycle when = 0;
        std::uint64_t seq = 0;
        int home = findEarliest(when, seq);
        if (home < 0 || when > maxCycles)
            return false;

        if (dispatchAt(static_cast<unsigned>(home), when,
                       [this](unsigned t, Cycle &w, std::uint64_t &q) {
                           return _shards[t]->peekNext(w, q);
                       }))
            return true;
    }
}

Cycle
ShardedEventQueue::run(Cycle maxCycles)
{
    if (_engine)
        return _engine->run(maxCycles);
    while (step(maxCycles)) {
    }
    return _now;
}

} // namespace retcon
