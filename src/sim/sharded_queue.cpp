#include "sim/sharded_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace retcon {

ShardedEventQueue::ShardedEventQueue(const ShardedQueueConfig &cfg)
    : _cfg(cfg)
{
    sim_assert(cfg.nshards >= 1 && cfg.nshards <= 64,
               "shard count out of range");
    _shards.reserve(cfg.nshards);
    for (unsigned s = 0; s < cfg.nshards; ++s)
        _shards.push_back(std::make_unique<EventQueue>());
    _stats.resize(cfg.nshards);
    _dispatched.resize(cfg.nshards, 0);
}

Cycle
ShardedEventQueue::shardNow(unsigned shard) const
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    return _shards[shard]->now();
}

const ShardedEventQueue::ShardStats &
ShardedEventQueue::shardStats(unsigned shard) const
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    return _stats[shard];
}

EventHandle
ShardedEventQueue::schedule(unsigned shard, Cycle when, Callback cb)
{
    sim_assert(shard < _cfg.nshards, "shard %u out of range", shard);
    sim_assert(when >= _now, "scheduling into the global past");
    EventHandle h =
        _shards[shard]->scheduleSeq(when, _nextSeq++, std::move(cb));
    sim_assert(h.id <= kIdMask, "per-shard event ids exhausted");
    ++_stats[shard].scheduled;
    h.id |= static_cast<std::uint64_t>(shard) << kShardShift;
    return h;
}

void
ShardedEventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return;
    auto shard = static_cast<unsigned>(h.id >> kShardShift);
    sim_assert(shard < _cfg.nshards, "cancel of a foreign handle");
    _shards[shard]->cancel(EventHandle{h.id & kIdMask});
}

bool
ShardedEventQueue::empty() const
{
    for (const auto &s : _shards)
        if (!s->empty())
            return false;
    return true;
}

std::size_t
ShardedEventQueue::pending() const
{
    std::size_t n = 0;
    for (const auto &s : _shards)
        n += s->pending();
    return n;
}

int
ShardedEventQueue::findEarliest(Cycle &when, std::uint64_t &seq)
{
    int best = -1;
    for (unsigned s = 0; s < _cfg.nshards; ++s) {
        Cycle w;
        std::uint64_t q;
        if (!_shards[s]->peekNext(w, q))
            continue;
        if (best < 0 || w < when || (w == when && q < seq)) {
            best = static_cast<int>(s);
            when = w;
            seq = q;
        }
    }
    return best;
}

int
ShardedEventQueue::pickExecutor(unsigned home, Cycle when)
{
    unsigned bw = _cfg.dispatchBandwidth;
    if (bw == 0 || _dispatched[home] < bw)
        return static_cast<int>(home);
    if (!_cfg.workStealing || _cfg.nshards == 1)
        return -1;
    // Work-stealing fallback: a shard with no event due this cycle and
    // spare dispatch slots drains the busy shard. The rotating cursor
    // spreads steals across idle shards deterministically. Candidates
    // come from the home shard's steal group only — the whole machine
    // by default, the home cluster's shards in a fleet.
    unsigned group = _cfg.stealGroup ? _cfg.stealGroup : _cfg.nshards;
    unsigned base = (home / group) * group;
    for (unsigned probe = 0; probe < group; ++probe) {
        unsigned t = base + (_stealCursor + probe) % group;
        if (t == home || t >= _cfg.nshards || _dispatched[t] >= bw)
            continue;
        Cycle w;
        std::uint64_t q;
        bool has = _shards[t]->peekNext(w, q);
        if (has && w <= when)
            continue; // Busy itself this cycle; not a thief.
        _stealCursor = (t + 1) % group;
        ++_stats[t].stolen;
        return static_cast<int>(t);
    }
    return -1;
}

bool
ShardedEventQueue::step(Cycle maxCycles)
{
    for (;;) {
        Cycle when = 0;
        std::uint64_t seq = 0;
        int home = findEarliest(when, seq);
        if (home < 0 || when > maxCycles)
            return false;

        if (when != _dispatchCycle) {
            // Clock advances: all dispatch slots refill.
            _dispatchCycle = when;
            std::fill(_dispatched.begin(), _dispatched.end(), 0u);
        }

        int exec = pickExecutor(static_cast<unsigned>(home), when);
        if (exec < 0) {
            // All slots this cycle are spoken for: the event slips.
            _shards[home]->deferNext(when + 1);
            ++_stats[home].deferred;
            continue;
        }

        ++_dispatched[exec];
        ++_stats[home].drained;
        ++_stats[exec].executed;
        ++_executed;
        _now = when;
        // Runs the peeked event: it is its shard's earliest, and
        // advances that shard's local clock domain.
        _shards[home]->step();
        return true;
    }
}

Cycle
ShardedEventQueue::run(Cycle maxCycles)
{
    while (step(maxCycles)) {
    }
    return _now;
}

} // namespace retcon
