/**
 * @file
 * ShardedEventQueue: N per-shard event queues behind one global clock.
 *
 * The single-queue cluster funnels every core's events through one
 * binary heap — the scale-out bottleneck the ROADMAP calls out on the
 * path to service-scale workloads. This queue partitions events across
 * N shards (cores map to shards round-robin); each shard is a plain
 * EventQueue and keeps its own clock domain (shardNow() = the cycle of
 * the last event that shard dispatched).
 *
 * Global correctness: execution always picks the globally earliest
 * live event, with same-cycle ties broken by a *global* sequence
 * number allocated at schedule time. With unlimited dispatch bandwidth
 * this reproduces the single queue's execution order bit-for-bit, so
 * shard count never changes simulated results — the determinism the
 * repair-audit oracle and the unit tests rely on.
 *
 * Dispatch bandwidth models the sequencer serialization a real
 * sharded cluster removes: each shard dispatches at most
 * `dispatchBandwidth` events per cycle (0 = unlimited). An event that
 * finds its home shard's slots exhausted either slips to the next
 * cycle or — the work-stealing fallback — is drained by an idle shard
 * (one with no event due this cycle) that still has slots, so idle
 * shards absorb bursts from busy ones. Stealing changes attribution
 * and slip timing only; the drain order is still the unique global
 * (cycle, seq) order, so runs stay deterministic for a fixed
 * configuration.
 */

#ifndef RETCON_SIM_SHARDED_QUEUE_HPP
#define RETCON_SIM_SHARDED_QUEUE_HPP

#include <memory>
#include <vector>

#include "sim/event_queue.hpp"

namespace retcon {

class ParallelEngine;

/** Sharded-queue configuration. */
struct ShardedQueueConfig {
    unsigned nshards = 1;

    /**
     * Events each shard may dispatch per cycle; 0 = unlimited.
     * Unlimited bandwidth makes execution order (and therefore every
     * simulated outcome) independent of the shard count.
     */
    unsigned dispatchBandwidth = 0;

    /**
     * With bandwidth limited, let shards with no event due this cycle
     * drain over-quota shards instead of letting the event slip.
     */
    bool workStealing = true;

    /**
     * Steal-group size: a shard only steals from shards in its own
     * contiguous group of this many (0 = one machine-wide group, the
     * single-cluster behaviour). A fleet sets this to the per-cluster
     * shard count so an idle shard never drains another cluster's
     * sequencer — clusters share no dispatch capacity, only the wire.
     */
    unsigned stealGroup = 0;
};

/** Cycle-ordered event queue sharded N ways under one global clock. */
class ShardedEventQueue final : public SimClock
{
  public:
    using Callback = EventQueue::Callback;

    /** Per-shard load and work-stealing counters. */
    struct ShardStats {
        std::uint64_t scheduled = 0; ///< Events homed to this shard.
        std::uint64_t drained = 0;   ///< Events popped from this queue.
        std::uint64_t executed = 0;  ///< Events this shard dispatched.
        std::uint64_t stolen = 0;    ///< Of executed: other shards' events.
        std::uint64_t deferred = 0;  ///< Slips to the next cycle.
    };

    explicit ShardedEventQueue(const ShardedQueueConfig &cfg = {});

    unsigned numShards() const { return _cfg.nshards; }
    const ShardedQueueConfig &config() const { return _cfg; }

    /** Global simulated cycle (max over dispatched events). */
    Cycle now() const override { return _now; }

    /** Shard-local clock domain: cycle of @p shard's last dispatch. */
    Cycle shardNow(unsigned shard) const;

    /** Schedule @p cb on @p shard at absolute cycle @p when. */
    EventHandle schedule(unsigned shard, Cycle when, Callback cb);

    /** Schedule @p cb on @p shard @p delta cycles after global now. */
    EventHandle
    scheduleAfter(unsigned shard, Cycle delta, Callback cb)
    {
        return schedule(shard, _now + delta, std::move(cb));
    }

    /** Cancel a previously scheduled event. Idempotent. */
    void cancel(EventHandle h);

    /** True when no live events remain on any shard. */
    bool empty() const;

    /** Live (non-cancelled) pending events across all shards. */
    std::size_t pending() const;

    /**
     * Dispatch exactly one live event (the globally earliest, after
     * any bandwidth slips). @return false when drained, or when the
     * earliest event lies past @p maxCycles (it is left queued).
     */
    bool step(Cycle maxCycles = ~Cycle(0));

    /**
     * Run until every shard drains or the next event would fire past
     * @p maxCycles. @return the final global now().
     */
    Cycle run(Cycle maxCycles = ~Cycle(0));

    /** Total events dispatched since construction. */
    std::uint64_t executed() const { return _executed; }

    const ShardStats &shardStats(unsigned shard) const;

    /**
     * Attach a host-parallel engine (non-owning; may be null). While
     * the engine is active, run() delegates to it and schedule()/
     * cancel() route cross-shard operations through its mailboxes; the
     * engine preserves the global (cycle, seq) dispatch order, so
     * simulated results stay bit-identical (sim/parallel_engine.hpp).
     */
    void setEngine(ParallelEngine *engine) { _engine = engine; }

  private:
    friend class ParallelEngine;
    ShardedQueueConfig _cfg;
    /// unique_ptr because EventQueue is non-movable (owns a heap).
    std::vector<std::unique_ptr<EventQueue>> _shards;
    std::vector<ShardStats> _stats;

    Cycle _now = 0;
    std::uint64_t _nextSeq = 1;
    std::uint64_t _executed = 0;

    /// Per-cycle dispatch accounting (reset when the clock advances).
    Cycle _dispatchCycle = 0;
    std::vector<unsigned> _dispatched;
    unsigned _stealCursor = 0;

    /// Shard index is packed into the handle's top byte.
    static constexpr unsigned kShardShift = 56;
    static constexpr std::uint64_t kIdMask =
        (std::uint64_t(1) << kShardShift) - 1;

    ParallelEngine *_engine = nullptr;

    /** Find the shard holding the globally earliest live event. */
    int findEarliest(Cycle &when, std::uint64_t &seq);

    /**
     * Pick the shard that dispatches an event due at @p when homed on
     * @p home: the home shard if it has bandwidth, else an idle shard
     * with spare slots (work stealing), else -1 (the event must slip).
     *
     * Templated over the next-due probe so the sequential engine
     * (peekNext on each shard heap) and the host-parallel engine
     * (published horizons for foreign shards) run the exact same
     * decision procedure — the steal/slip choices that shape simulated
     * timing cannot diverge between the two.
     */
    template <class NextDue>
    int
    pickExecutorT(unsigned home, Cycle when, NextDue &&nextDue)
    {
        unsigned bw = _cfg.dispatchBandwidth;
        if (bw == 0 || _dispatched[home] < bw)
            return static_cast<int>(home);
        if (!_cfg.workStealing || _cfg.nshards == 1)
            return -1;
        // Work-stealing fallback: a shard with no event due this cycle
        // and spare dispatch slots drains the busy shard. The rotating
        // cursor spreads steals across idle shards deterministically.
        // Candidates come from the home shard's steal group only — the
        // whole machine by default, the home cluster's shards in a
        // fleet.
        unsigned group = _cfg.stealGroup ? _cfg.stealGroup : _cfg.nshards;
        unsigned base = (home / group) * group;
        for (unsigned probe = 0; probe < group; ++probe) {
            unsigned t = base + (_stealCursor + probe) % group;
            if (t == home || t >= _cfg.nshards || _dispatched[t] >= bw)
                continue;
            Cycle w;
            std::uint64_t q;
            bool has = nextDue(t, w, q);
            if (has && w <= when)
                continue; // Busy itself this cycle; not a thief.
            _stealCursor = (t + 1) % group;
            ++_stats[t].stolen;
            return static_cast<int>(t);
        }
        return -1;
    }

    int pickExecutor(unsigned home, Cycle when);

    /**
     * Dispatch the event (@p when, @p seq) homed on @p home: refill
     * per-cycle slots on a clock advance, pick an executor, and either
     * run the event or slip it one cycle. Shared between run() and the
     * parallel engine so both make identical slip decisions.
     * @return true when the event ran, false when it slipped.
     */
    template <class NextDue>
    bool
    dispatchAt(unsigned home, Cycle when, NextDue &&nextDue)
    {
        if (when != _dispatchCycle) {
            // Clock advances: all dispatch slots refill.
            _dispatchCycle = when;
            std::fill(_dispatched.begin(), _dispatched.end(), 0u);
        }
        int exec =
            pickExecutorT(home, when, std::forward<NextDue>(nextDue));
        if (exec < 0) {
            // All slots this cycle are spoken for: the event slips.
            _shards[home]->deferNext(when + 1);
            ++_stats[home].deferred;
            return false;
        }
        ++_dispatched[exec];
        ++_stats[home].drained;
        ++_stats[exec].executed;
        ++_executed;
        _now = when;
        // Runs the peeked event: it is its shard's earliest, and
        // advances that shard's local clock domain.
        _shards[home]->step();
        return true;
    }
};

/**
 * A core's handle onto its home shard: global clock plus scheduling.
 * Value type — cores hold it by value and never outlive the queue.
 */
class ShardRef
{
  public:
    ShardRef(ShardedEventQueue &q, unsigned shard) : _q(&q), _shard(shard)
    {}

    Cycle now() const { return _q->now(); }
    unsigned shard() const { return _shard; }

    EventHandle
    scheduleAfter(Cycle delta, ShardedEventQueue::Callback cb)
    {
        return _q->scheduleAfter(_shard, delta, std::move(cb));
    }

    void cancel(EventHandle h) { _q->cancel(h); }

  private:
    ShardedEventQueue *_q;
    unsigned _shard;
};

} // namespace retcon

#endif // RETCON_SIM_SHARDED_QUEUE_HPP
