#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <chrono>

#include "sim/logging.hpp"

namespace retcon {

namespace {

/// Mailbox depth per worker pair. The producer (token holder) spins
/// when full while the consumer keeps draining, so capacity only
/// bounds burst size, not correctness.
constexpr std::size_t kRingCapacity = 1024;

} // namespace

ParallelEngine::ParallelEngine(ShardedEventQueue &q, unsigned workers)
    : _q(q), _nworkers(std::max(1u, std::min(workers, q.numShards())))
{
    unsigned n = q.numShards();
    _workers.resize(_nworkers);
    _ownerOf.resize(n);
    unsigned per = n / _nworkers;
    unsigned rem = n % _nworkers;
    unsigned next = 0;
    for (unsigned w = 0; w < _nworkers; ++w) {
        _workers[w].first = next;
        _workers[w].count = per + (w < rem ? 1 : 0);
        for (unsigned s = 0; s < _workers[w].count; ++s)
            _ownerOf[next + s] = w;
        next += _workers[w].count;
    }
    _rings.resize(std::size_t(_nworkers) * _nworkers);
    for (unsigned p = 0; p < _nworkers; ++p)
        for (unsigned c = 0; c < _nworkers; ++c)
            if (p != c)
                _rings[std::size_t(p) * _nworkers + c] =
                    std::make_unique<SpscRing>(kRingCapacity);
    _slots = std::vector<HorizonSlot>(n);
    _sentMail.assign(_nworkers, 0);
    _appliedMail =
        std::make_unique<std::atomic<std::uint64_t>[]>(_nworkers);
    for (unsigned w = 0; w < _nworkers; ++w)
        _appliedMail[w].store(0, std::memory_order_relaxed);
    _mailedMin.assign(n, {kNoEvent, 0});
}

ParallelEngine::~ParallelEngine() = default;

bool
ParallelEngine::lexLess(Cycle aw, std::uint64_t as, Cycle bw,
                        std::uint64_t bs)
{
    return aw < bw || (aw == bw && as < bs);
}

void
ParallelEngine::writeSlot(unsigned shard, Cycle when, std::uint64_t seq)
{
    HorizonSlot &s = _slots[shard];
    while (s.lock.test_and_set(std::memory_order_acquire)) {
    }
    s.when = when;
    s.seq = seq;
    s.lock.clear(std::memory_order_release);
}

std::pair<Cycle, std::uint64_t>
ParallelEngine::readSlot(unsigned shard)
{
    HorizonSlot &s = _slots[shard];
    while (s.lock.test_and_set(std::memory_order_acquire)) {
    }
    std::pair<Cycle, std::uint64_t> out{s.when, s.seq};
    s.lock.clear(std::memory_order_release);
    return out;
}

void
ParallelEngine::publishShards(unsigned w)
{
    const Worker &me = _workers[w];
    for (unsigned i = 0; i < me.count; ++i) {
        unsigned s = me.first + i;
        Cycle when;
        std::uint64_t seq;
        if (_q._shards[s]->peekNext(when, seq))
            writeSlot(s, when, seq);
        else
            writeSlot(s, kNoEvent, 0);
    }
}

void
ParallelEngine::sendMail(unsigned producer, unsigned consumer, Mail &&m)
{
    SpscRing &ring =
        *_rings[std::size_t(producer) * _nworkers + consumer];
    while (!ring.tryPush(std::move(m))) {
        // Full: the consumer is draining concurrently; wait for space.
        std::this_thread::yield();
    }
    ++_stats.mailed;
}

EventHandle
ParallelEngine::routeSchedule(unsigned shard, Cycle when,
                              EventQueue::Callback cb)
{
    unsigned w = _token.load(std::memory_order_relaxed);
    unsigned owner = _ownerOf[shard];
    std::uint64_t seq = _q._nextSeq++;
    if (owner == w) {
        EventHandle h =
            _q._shards[shard]->scheduleSeq(when, seq, std::move(cb));
        sim_assert(h.id < kMailIdBase, "per-shard event ids exhausted");
        ++_q._stats[shard].scheduled;
        h.id |= static_cast<std::uint64_t>(shard)
                << ShardedEventQueue::kShardShift;
        return h;
    }
    std::uint64_t id = _nextMailId++;
    sim_assert(id <= ShardedEventQueue::kIdMask,
               "mailed event ids exhausted");
    Mail m;
    m.kind = Mail::Kind::Schedule;
    m.shard = shard;
    m.when = when;
    m.seq = seq;
    m.id = id;
    m.mailSeq = _sentMail[owner]++;
    m.cb = std::move(cb);
    auto &mm = _mailedMin[shard];
    if (lexLess(when, seq, mm.first, mm.second))
        mm = {when, seq};
    sendMail(w, owner, std::move(m));
    return EventHandle{id | (static_cast<std::uint64_t>(shard)
                             << ShardedEventQueue::kShardShift)};
}

void
ParallelEngine::routeCancel(EventHandle h)
{
    unsigned w = _token.load(std::memory_order_relaxed);
    auto shard =
        static_cast<unsigned>(h.id >> ShardedEventQueue::kShardShift);
    std::uint64_t id = h.id & ShardedEventQueue::kIdMask;
    unsigned owner = _ownerOf[shard];
    if (owner == w) {
        // All mail to the holder was applied before its dispatches
        // began, so the target is in the heap: a direct cancel.
        _q._shards[shard]->cancel(EventHandle{id});
        return;
    }
    // Per-consumer mailSeq ordering guarantees the owner applies this
    // after the schedule that created the target — a cancel can never
    // outrun its event.
    Mail m;
    m.kind = Mail::Kind::Cancel;
    m.shard = shard;
    m.id = id;
    m.mailSeq = _sentMail[owner]++;
    sendMail(w, owner, std::move(m));
}

bool
ParallelEngine::drainMail(unsigned w)
{
    Worker &me = _workers[w];
    Mail m;
    for (unsigned p = 0; p < _nworkers; ++p) {
        if (p == w)
            continue;
        SpscRing &ring = *_rings[std::size_t(p) * _nworkers + w];
        while (ring.tryPop(m))
            me.stash.emplace(m.mailSeq, std::move(m));
    }
    bool applied = false;
    while (!me.stash.empty() &&
           me.stash.begin()->first == me.nextApply) {
        Mail mm = std::move(me.stash.begin()->second);
        me.stash.erase(me.stash.begin());
        EventQueue &shard = *_q._shards[mm.shard];
        if (mm.kind == Mail::Kind::Schedule) {
            shard.scheduleSeqId(mm.when, mm.seq, mm.id,
                                std::move(mm.cb));
            ++_q._stats[mm.shard].scheduled;
        } else {
            shard.cancel(EventHandle{mm.id});
        }
        ++me.nextApply;
        applied = true;
    }
    if (applied) {
        // Horizons first, then the settle counter: when the holder
        // observes applied == sent, every published slot is exact.
        publishShards(w);
        _appliedMail[w].store(me.nextApply, std::memory_order_release);
    }
    return applied;
}

bool
ParallelEngine::holderStep(unsigned w)
{
    Worker &me = _workers[w];
    // All mail to the new holder was sent before the handoff that
    // made it holder (only the holder sends mail, and it never mails
    // itself), so the post-acquire drain in workerLoop applied
    // everything.
    sim_assert(me.stash.empty() && me.nextApply == _sentMail[w],
               "holder has unapplied mail");
    for (unsigned i = 0; i < me.count; ++i)
        _mailedMin[me.first + i] = {kNoEvent, 0};

    // Exact minimum over the holder's own shards.
    bool haveOwn = false;
    unsigned home = 0;
    Cycle when = 0;
    std::uint64_t seq = 0;
    for (unsigned i = 0; i < me.count; ++i) {
        unsigned s = me.first + i;
        Cycle sw;
        std::uint64_t sq;
        if (!_q._shards[s]->peekNext(sw, sq))
            continue;
        if (!haveOwn || lexLess(sw, sq, when, seq)) {
            haveOwn = true;
            home = s;
            when = sw;
            seq = sq;
        }
    }

    // Conservative lower bounds for every foreign shard.
    bool allSettled = true;
    bool haveForeign = false;
    unsigned bestOwner = 0;
    Cycle fWhen = 0;
    std::uint64_t fSeq = 0;
    for (unsigned c = 0; c < _nworkers; ++c) {
        if (c == w)
            continue;
        bool settled =
            _appliedMail[c].load(std::memory_order_acquire) ==
            _sentMail[c];
        if (!settled)
            allSettled = false;
        const Worker &other = _workers[c];
        for (unsigned i = 0; i < other.count; ++i) {
            unsigned s = other.first + i;
            auto [hw, hq] = readSlot(s);
            if (settled) {
                // Mailbox drained: the published horizon is exact and
                // any stale in-flight bound is obsolete.
                _mailedMin[s] = {kNoEvent, 0};
            } else {
                auto &mm = _mailedMin[s];
                if (lexLess(mm.first, mm.second, hw, hq)) {
                    hw = mm.first;
                    hq = mm.second;
                }
            }
            if (hw == kNoEvent)
                continue;
            if (!haveForeign || lexLess(hw, hq, fWhen, fSeq)) {
                haveForeign = true;
                bestOwner = c;
                fWhen = hw;
                fSeq = hq;
            }
        }
    }

    if (!haveOwn && !haveForeign) {
        if (allSettled) {
            // Globally drained: nothing queued, nothing in flight.
            _stop.store(true, std::memory_order_release);
            return true;
        }
        ++_stats.stalls;
        return false;
    }

    if (haveForeign && (!haveOwn || lexLess(fWhen, fSeq, when, seq))) {
        // A foreign shard may hold the global minimum: migrate the
        // token to its owner, which drains its mail and re-decides
        // with exact knowledge of its own shards.
        publishShards(w);
        ++_stats.handoffs;
        _token.store(bestOwner, std::memory_order_release);
        return true;
    }

    // The holder's own event is the global minimum (sequence numbers
    // are unique, so foreign bounds can never tie it).
    if (when > _maxCycles) {
        // Same contract as the sequential engine: leave it queued. The
        // stop waits for in-flight mail so post-run queue state (live
        // counts, pending cancels) matches the sequential run.
        if (allSettled) {
            _stop.store(true, std::memory_order_release);
            return true;
        }
        ++_stats.stalls;
        return false;
    }

    if (when != _q._dispatchCycle) {
        _q._dispatchCycle = when;
        std::fill(_q._dispatched.begin(), _q._dispatched.end(), 0u);
    }
    unsigned bw = _q._cfg.dispatchBandwidth;
    if (bw != 0 && _q._dispatched[home] >= bw && !allSettled) {
        // The steal busy-probe needs exact foreign horizons; wait for
        // the mailboxes to settle so the probe cannot diverge from the
        // sequential decision.
        ++_stats.stalls;
        return false;
    }
    _q.dispatchAt(home, when,
                  [this, w](unsigned t, Cycle &tw, std::uint64_t &tq) {
                      if (_ownerOf[t] == w)
                          return _q._shards[t]->peekNext(tw, tq);
                      auto [hw, hq] = readSlot(t);
                      tw = hw;
                      tq = hq;
                      return hw != kNoEvent;
                  });
    return true;
}

void
ParallelEngine::workerLoop(unsigned w)
{
    Worker &me = _workers[w];
    for (;;) {
        bool activity = drainMail(w);
        if (_stop.load(std::memory_order_acquire))
            break;
        if (_token.load(std::memory_order_acquire) == w) {
            // Mail can land between the drain above and the token
            // check: the previous holder sends its last batch and
            // THEN releases the token. The acquire load above
            // synchronizes with that release, so one more drain is
            // guaranteed to see every send counted in _sentMail[w] —
            // re-establishing the holder invariant before stepping.
            drainMail(w);
            if (holderStep(w))
                me.idleSpins = 0;
            else if (++me.idleSpins > 64)
                std::this_thread::yield();
            continue;
        }
        if (activity) {
            me.idleSpins = 0;
            continue;
        }
        if (++me.idleSpins < 64) {
            // Tight spin: a handoff or mail burst is likely imminent.
        } else if (me.idleSpins < 65536) {
            std::this_thread::yield();
        } else {
            // Long idle (another worker owns a serial phase): park
            // briefly so oversubscribed hosts — e.g. parallel sweep
            // cells each running an engine — stay cheap.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
}

Cycle
ParallelEngine::run(Cycle maxCycles)
{
    if (_nworkers <= 1) {
        // Degenerate case: no threads, no protocol.
        while (_q.step(maxCycles)) {
        }
        return _q._now;
    }
    auto t0 = std::chrono::steady_clock::now();
    _maxCycles = maxCycles;
    _stop.store(false, std::memory_order_relaxed);
    _token.store(0, std::memory_order_relaxed);
    for (unsigned w = 0; w < _nworkers; ++w) {
        _workers[w].stash.clear();
        _workers[w].nextApply = 0;
        _workers[w].idleSpins = 0;
        _sentMail[w] = 0;
        _appliedMail[w].store(0, std::memory_order_relaxed);
    }
    // Exact initial horizons for every shard (heaps were filled on
    // this thread; spawning the workers publishes them).
    for (unsigned s = 0; s < _q.numShards(); ++s) {
        Cycle when;
        std::uint64_t seq;
        if (_q._shards[s]->peekNext(when, seq))
            writeSlot(s, when, seq);
        else
            writeSlot(s, kNoEvent, 0);
    }
    _active.store(true, std::memory_order_release);
    for (unsigned w = 0; w < _nworkers; ++w)
        _workers[w].thread = std::thread([this, w] { workerLoop(w); });
    for (unsigned w = 0; w < _nworkers; ++w)
        _workers[w].thread.join();
    _active.store(false, std::memory_order_release);
    _stats.workers = _nworkers;
    _stats.wallMs +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return _q._now;
}

} // namespace retcon
