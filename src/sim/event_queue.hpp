/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are callbacks scheduled at an absolute cycle. Events scheduled
 * for the same cycle fire in the order they were scheduled (a strictly
 * increasing sequence number breaks ties), so a simulation with a fixed
 * seed is bit-for-bit reproducible. Cancellation is supported through
 * EventHandle generations rather than queue surgery: a cancelled event
 * stays in the heap but is skipped when popped.
 */

#ifndef RETCON_SIM_EVENT_QUEUE_HPP
#define RETCON_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace retcon {

/** Opaque ticket identifying a scheduled event so it can be cancelled. */
struct EventHandle {
    std::uint64_t id = 0;

    bool valid() const { return id != 0; }
};

/**
 * Cycle-ordered event queue driving the whole simulation.
 *
 * The queue owns the simulated clock: now() advances only when run()
 * pops an event scheduled later than the current cycle. When used as
 * one shard of a ShardedEventQueue (sim/sharded_queue.hpp), the owner
 * supplies globally unique sequence numbers through scheduleSeq() and
 * drives execution through peekNext()/step(), so this clock becomes
 * the shard's local clock domain.
 */
class EventQueue : public SimClock
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const override { return _now; }

    /**
     * Schedule @p cb to run at absolute cycle @p when.
     * @return a handle usable with cancel().
     */
    EventHandle schedule(Cycle when, Callback cb);

    /**
     * Schedule with a caller-supplied tie-break sequence number.
     * A ShardedEventQueue allocates these from one global counter so
     * same-cycle events merge across shards in schedule order exactly
     * as a single queue would order them.
     */
    EventHandle scheduleSeq(Cycle when, std::uint64_t seq, Callback cb);

    /**
     * Schedule with caller-supplied sequence number AND event id,
     * leaving this queue's own id counter untouched. The host-parallel
     * engine (sim/parallel_engine.hpp) fabricates handles for
     * cross-shard schedules before the owning worker has applied them,
     * so the id must be chosen by the sender; engine ids live in a
     * disjoint range far above any per-shard allocation.
     */
    EventHandle scheduleSeqId(Cycle when, std::uint64_t seq,
                              std::uint64_t id, Callback cb);

    /**
     * Peek at the next live event without running it (prunes cancelled
     * entries from the heap top). @return false when drained.
     */
    bool peekNext(Cycle &when, std::uint64_t &seq);

    /**
     * Re-schedule the next live event to @p new_when, keeping its
     * sequence number (and therefore its order relative to events it
     * was already ahead of). Used by the sharded queue to model
     * per-cycle dispatch-bandwidth slips. Call only after a successful
     * peekNext(); @p new_when must not be in the past.
     */
    void deferNext(Cycle new_when);

    /** Schedule @p cb @p delta cycles from now. */
    EventHandle
    scheduleAfter(Cycle delta, Callback cb)
    {
        return schedule(_now + delta, std::move(cb));
    }

    /** Cancel a previously scheduled event. Idempotent. */
    void cancel(EventHandle h);

    /** True when no live events remain. */
    bool empty() const { return _live == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return _live; }

    /**
     * Run until the queue drains or @p maxCycles elapses.
     * @return the final value of now().
     */
    Cycle run(Cycle maxCycles = ~Cycle(0));

    /** Pop and run exactly one live event. @return false if drained. */
    bool step();

    /** Total events executed since construction (for stats/tests). */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq;
        std::uint64_t id;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::vector<std::uint64_t> _cancelled;
    Cycle _now = 0;
    std::uint64_t _nextSeq = 1;
    std::uint64_t _nextId = 1;
    std::size_t _live = 0;
    std::uint64_t _executed = 0;

    bool isCancelled(std::uint64_t id) const;
};

} // namespace retcon

#endif // RETCON_SIM_EVENT_QUEUE_HPP
