/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are callbacks scheduled at an absolute cycle. Events scheduled
 * for the same cycle fire in the order they were scheduled (a strictly
 * increasing sequence number breaks ties), so a simulation with a fixed
 * seed is bit-for-bit reproducible. Cancellation is supported through
 * EventHandle generations rather than queue surgery: a cancelled event
 * stays in the heap but is skipped when popped.
 */

#ifndef RETCON_SIM_EVENT_QUEUE_HPP
#define RETCON_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace retcon {

/** Opaque ticket identifying a scheduled event so it can be cancelled. */
struct EventHandle {
    std::uint64_t id = 0;

    bool valid() const { return id != 0; }
};

/**
 * Cycle-ordered event queue driving the whole simulation.
 *
 * The queue owns the simulated clock: now() advances only when run()
 * pops an event scheduled later than the current cycle.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute cycle @p when.
     * @return a handle usable with cancel().
     */
    EventHandle schedule(Cycle when, Callback cb);

    /** Schedule @p cb @p delta cycles from now. */
    EventHandle
    scheduleAfter(Cycle delta, Callback cb)
    {
        return schedule(_now + delta, std::move(cb));
    }

    /** Cancel a previously scheduled event. Idempotent. */
    void cancel(EventHandle h);

    /** True when no live events remain. */
    bool empty() const { return _live == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return _live; }

    /**
     * Run until the queue drains or @p maxCycles elapses.
     * @return the final value of now().
     */
    Cycle run(Cycle maxCycles = ~Cycle(0));

    /** Pop and run exactly one live event. @return false if drained. */
    bool step();

    /** Total events executed since construction (for stats/tests). */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq;
        std::uint64_t id;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::vector<std::uint64_t> _cancelled;
    Cycle _now = 0;
    std::uint64_t _nextSeq = 1;
    std::uint64_t _nextId = 1;
    std::size_t _live = 0;
    std::uint64_t _executed = 0;

    bool isCancelled(std::uint64_t id) const;
};

} // namespace retcon

#endif // RETCON_SIM_EVENT_QUEUE_HPP
