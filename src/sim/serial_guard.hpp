/**
 * @file
 * Debug-only enforcement of single-writer threading contracts.
 *
 * Several hot model structures (trace::ShardMux's lifetime counters,
 * exec::ContentionScheduler's hot-block tables) are written from event
 * callbacks with no locking. That is sound because callbacks execute
 * strictly one at a time: sequentially on the driving thread, or under
 * the host-parallel engine's migrating dispatch token, whose
 * release/acquire handoff orders every callback's plain accesses
 * (sim/parallel_engine.hpp, docs/parallel-engine.md). The contract is
 * easy to break silently — a future engine change that overlaps
 * callbacks would corrupt these counters long before any test notices
 * — so debug builds enforce it: a SerialSection::Scope panics the
 * moment two threads are inside the same section at once.
 *
 * Release builds (NDEBUG) compile both macros away to nothing; the
 * guarded paths stay lock- and atomic-free.
 *
 * Usage:
 *   struct Thing {
 *       RETCON_SERIAL_SECTION(_serial); // member declaration
 *       void hotPath() {
 *           RETCON_SERIAL_SCOPE(_serial, "Thing::hotPath");
 *           ...plain writes...
 *       }
 *   };
 */

#ifndef RETCON_SIM_SERIAL_GUARD_HPP
#define RETCON_SIM_SERIAL_GUARD_HPP

#ifndef NDEBUG

#include <atomic>

#include "sim/logging.hpp"

namespace retcon::sim {

/** One single-writer section; pair with SerialSection::Scope. */
class SerialSection
{
  public:
    class Scope
    {
      public:
        Scope(SerialSection &s, const char *what) : _s(s)
        {
            sim_assert(
                !_s._busy.exchange(true, std::memory_order_acquire),
                "threading contract violated: concurrent entry into "
                "%s (single-writer section)",
                what);
        }
        ~Scope() { _s._busy.store(false, std::memory_order_release); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SerialSection &_s;
    };

  private:
    std::atomic<bool> _busy{false};
};

} // namespace retcon::sim

#define RETCON_SERIAL_SECTION(name) ::retcon::sim::SerialSection name
#define RETCON_SERIAL_SCOPE(section, what)                                \
    ::retcon::sim::SerialSection::Scope retcon_serial_scope_(section,     \
                                                             what)

#else // NDEBUG

#define RETCON_SERIAL_SECTION(name) static_assert(true, "")
#define RETCON_SERIAL_SCOPE(section, what) static_assert(true, "")

#endif // NDEBUG

#endif // RETCON_SIM_SERIAL_GUARD_HPP
