/**
 * @file
 * Lightweight statistics primitives used throughout the simulator.
 *
 * Table 3 of the paper reports "average (max)" pairs for structure
 * occupancy, so AvgMax is the workhorse here. Histogram supports the
 * distribution analyses in the benches.
 */

#ifndef RETCON_SIM_STATS_HPP
#define RETCON_SIM_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace retcon {

/** Running average + maximum tracker (Table 3 "avg (max)" columns). */
class AvgMax
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        _max = std::max(_max, v);
    }

    /** Mean of all samples, or 0 when empty. */
    double avg() const { return _count ? _sum / _count : 0.0; }

    /** Largest sample seen (correct for negative streams), or 0 when
     *  empty. */
    double max() const { return _count ? _max : 0.0; }

    /** Number of samples. */
    std::uint64_t count() const { return _count; }

    /** Sum of all samples. */
    double sum() const { return _sum; }

    /** Merge another tracker into this one. */
    void
    merge(const AvgMax &o)
    {
        _sum += o._sum;
        _count += o._count;
        _max = std::max(_max, o._max);
    }

    /** Drop all samples. */
    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _max = kNoMax;
    }

  private:
    /// Bootstrapping from -inf (not 0) keeps max() exact when every
    /// sample is negative; merging an empty tracker is then a no-op.
    static constexpr double kNoMax =
        -std::numeric_limits<double>::infinity();

    double _sum = 0;
    std::uint64_t _count = 0;
    double _max = kNoMax;
};

/** Fixed-bucket histogram over integer samples. */
class Histogram
{
  public:
    /** @param num_buckets direct buckets [0, num_buckets); larger
     *  samples land in the overflow bucket, negative samples in the
     *  underflow bucket. */
    explicit Histogram(std::size_t num_buckets = 32)
        : _buckets(num_buckets, 0)
    {}

    void
    sample(std::int64_t v)
    {
        ++_total;
        if (v < 0)
            ++_underflow;
        else if (static_cast<std::uint64_t>(v) < _buckets.size())
            ++_buckets[static_cast<std::size_t>(v)];
        else
            ++_overflow;
    }

    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t total() const { return _total; }
    std::size_t size() const { return _buckets.size(); }

    /** Merge another histogram (buckets align by index; a smaller
     *  bucket array is extended to the larger one). */
    void
    merge(const Histogram &o)
    {
        if (o._buckets.size() != _buckets.size())
            _buckets.resize(
                std::max(_buckets.size(), o._buckets.size()), 0);
        for (std::size_t i = 0; i < o._buckets.size(); ++i)
            _buckets[i] += o._buckets[i];
        _underflow += o._underflow;
        _overflow += o._overflow;
        _total += o._total;
    }

    /** Smallest v such that at least frac of samples are <= v. */
    std::uint64_t
    percentile(double frac) const
    {
        std::uint64_t need =
            static_cast<std::uint64_t>(frac * static_cast<double>(_total));
        std::uint64_t seen = _underflow; // Negatives precede bucket 0.
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            seen += _buckets[i];
            if (seen >= need)
                return i;
        }
        return _buckets.size();
    }

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/** Named scalar counters, grouped for report printing. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, double delta = 1.0)
    {
        _values[name] += delta;
    }

    /** Current value of @p name (0 when absent). */
    double
    get(const std::string &name) const
    {
        auto it = _values.find(name);
        return it == _values.end() ? 0.0 : it->second;
    }

    const std::map<std::string, double> &all() const { return _values; }

    void
    merge(const StatSet &o)
    {
        for (const auto &[k, v] : o._values)
            _values[k] += v;
    }

    void reset() { _values.clear(); }

  private:
    std::map<std::string, double> _values;
};

} // namespace retcon

#endif // RETCON_SIM_STATS_HPP
