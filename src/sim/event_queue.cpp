#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace retcon {

EventHandle
EventQueue::schedule(Cycle when, Callback cb)
{
    sim_assert(when >= _now, "scheduling into the past");
    std::uint64_t id = _nextId++;
    _heap.push(Entry{when, _nextSeq++, id, std::move(cb)});
    ++_live;
    return EventHandle{id};
}

void
EventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return;
    if (isCancelled(h.id))
        return;
    _cancelled.push_back(h.id);
    if (_live > 0)
        --_live;
}

bool
EventQueue::isCancelled(std::uint64_t id) const
{
    return std::find(_cancelled.begin(), _cancelled.end(), id) !=
           _cancelled.end();
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        Entry e = _heap.top();
        _heap.pop();
        if (isCancelled(e.id)) {
            _cancelled.erase(
                std::find(_cancelled.begin(), _cancelled.end(), e.id));
            continue;
        }
        sim_assert(e.when >= _now, "event heap out of order");
        _now = e.when;
        --_live;
        ++_executed;
        e.cb();
        return true;
    }
    return false;
}

Cycle
EventQueue::run(Cycle maxCycles)
{
    while (!_heap.empty()) {
        if (_heap.top().when > maxCycles && !isCancelled(_heap.top().id))
            break;
        if (!step())
            break;
    }
    return _now;
}

} // namespace retcon
