#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace retcon {

EventHandle
EventQueue::schedule(Cycle when, Callback cb)
{
    return scheduleSeq(when, _nextSeq++, std::move(cb));
}

EventHandle
EventQueue::scheduleSeq(Cycle when, std::uint64_t seq, Callback cb)
{
    sim_assert(when >= _now, "scheduling into the past");
    std::uint64_t id = _nextId++;
    _heap.push(Entry{when, seq, id, std::move(cb)});
    ++_live;
    return EventHandle{id};
}

EventHandle
EventQueue::scheduleSeqId(Cycle when, std::uint64_t seq, std::uint64_t id,
                          Callback cb)
{
    sim_assert(when >= _now, "scheduling into the past");
    _heap.push(Entry{when, seq, id, std::move(cb)});
    ++_live;
    return EventHandle{id};
}

bool
EventQueue::peekNext(Cycle &when, std::uint64_t &seq)
{
    while (!_heap.empty() && isCancelled(_heap.top().id)) {
        _cancelled.erase(std::find(_cancelled.begin(), _cancelled.end(),
                                   _heap.top().id));
        _heap.pop();
    }
    if (_heap.empty())
        return false;
    when = _heap.top().when;
    seq = _heap.top().seq;
    return true;
}

void
EventQueue::deferNext(Cycle new_when)
{
    sim_assert(!_heap.empty(), "deferNext on a drained queue");
    // Move out of the heap top: safe because the entry is popped
    // immediately after.
    Entry e = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    sim_assert(new_when >= e.when, "deferring into the past");
    e.when = new_when;
    _heap.push(std::move(e));
}

void
EventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return;
    if (isCancelled(h.id))
        return;
    _cancelled.push_back(h.id);
    if (_live > 0)
        --_live;
}

bool
EventQueue::isCancelled(std::uint64_t id) const
{
    return std::find(_cancelled.begin(), _cancelled.end(), id) !=
           _cancelled.end();
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        // Move out of the heap top (the entry is popped right away);
        // avoids copying the callback closure on every event.
        Entry e = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        if (isCancelled(e.id)) {
            _cancelled.erase(
                std::find(_cancelled.begin(), _cancelled.end(), e.id));
            continue;
        }
        sim_assert(e.when >= _now, "event heap out of order");
        _now = e.when;
        --_live;
        ++_executed;
        e.cb();
        return true;
    }
    return false;
}

Cycle
EventQueue::run(Cycle maxCycles)
{
    while (!_heap.empty()) {
        if (_heap.top().when > maxCycles && !isCancelled(_heap.top().id))
            break;
        if (!step())
            break;
    }
    return _now;
}

} // namespace retcon
