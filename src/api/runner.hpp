/**
 * @file
 * Public experiment API: run a Table 2 workload on the Table 1 machine
 * under a chosen TM configuration and collect everything the paper's
 * figures and tables report.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   api::RunConfig cfg;
 *   cfg.workload = "python_opt";
 *   cfg.tm = api::retconConfig();
 *   api::RunResult r = api::runOnce(cfg);
 *   double speedup = api::speedupOverSequential(cfg);
 */

#ifndef RETCON_API_RUNNER_HPP
#define RETCON_API_RUNNER_HPP

#include <string>

#include "exec/cluster.hpp"
#include "htm/machine.hpp"
#include "workloads/workload.hpp"

namespace retcon::api {

/** One experiment run description. */
struct RunConfig {
    std::string workload = "genome";
    unsigned nthreads = 32;
    htm::TMConfig tm{};
    std::uint64_t seed = 1;
    double scale = 1.0;
    Cycle maxCycles = 2'000'000'000ull;
};

/** Everything a run produces. */
struct RunResult {
    Cycle cycles = 0;
    exec::TimeBreakdown breakdown;
    exec::CoreStats coreStats;
    htm::MachineStats machineStats;
    workloads::ValidationResult validation;
};

/** Baseline HTM of §2: eager + oldest-wins. */
htm::TMConfig eagerConfig();

/** The paper's lazy-vb variant (§5.1). */
htm::TMConfig lazyVbConfig();

/** Full RETCON (Table 1 structure sizes, §4.4 optimizations). */
htm::TMConfig retconConfig();

/** Global-lock serialization (the sequential baseline substrate). */
htm::TMConfig serialConfig();

/** Execute one run (setup, simulate, validate). fatal()s on deadlock. */
RunResult runOnce(const RunConfig &cfg);

/**
 * Run the sequential baseline for @p cfg's workload (1 thread, Serial)
 * and return its makespan in cycles.
 */
Cycle sequentialCycles(const RunConfig &cfg);

/** Makespan speedup of @p cfg over the sequential baseline. */
double speedupOverSequential(const RunConfig &cfg);

/** Name -> config for the three Figure 9/10 machine configurations. */
struct ConfigPoint {
    const char *label;
    htm::TMConfig tm;
};
std::vector<ConfigPoint> paperConfigs();

} // namespace retcon::api

#endif // RETCON_API_RUNNER_HPP
