/**
 * @file
 * Public experiment API: run a Table 2 workload on the Table 1 machine
 * under a chosen TM configuration and collect everything the paper's
 * figures and tables report.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   api::RunConfig cfg;
 *   cfg.workload = "python_opt";
 *   cfg.tm = api::retconConfig();
 *   api::RunResult r = api::runOnce(cfg);
 *   double speedup = api::speedupOverSequential(cfg);
 */

#ifndef RETCON_API_RUNNER_HPP
#define RETCON_API_RUNNER_HPP

#include <string>

#include "exec/cluster.hpp"
#include "exec/fleet.hpp"
#include "htm/machine.hpp"
#include "scenario/scenario.hpp"
#include "trace/reenact.hpp"
#include "workloads/workload.hpp"

namespace retcon::api {

/** Opt-in provenance/audit options for a run. */
struct TraceOptions {
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;

    /** Reenact every commit against architectural memory. */
    bool validate = true;

    /**
     * Retain the newest this-many events *per event-queue shard* for
     * export (0 = no rings, counters only). Total retention is up to
     * ringCapacity * RunConfig::shards; exports merge the per-shard
     * rings (see docs/trace-format.md).
     */
    std::size_t ringCapacity = 1 << 16;

    /** When non-empty, export retained events after the run. */
    std::string exportJsonPath;
    std::string exportCsvPath;

    /**
     * When non-empty, export retained events as framed binary (.rtt,
     * trace::exportBinaryFile) after the run — the third export
     * format, bit-exact with the JSON/CSV round trip
     * (docs/streaming.md).
     */
    std::string exportBinPath;

    /**
     * When non-empty, stream every record to this .rtt file WHILE the
     * run is live (trace::StreamWriter attached as a mux downstream).
     * Unlike the exports, this needs no ring retention — it works
     * with ringCapacity 0 and captures the complete dense stream no
     * matter how long the run is; RunResult::traceStream reports the
     * writer's overhead. The streamed file re-validates incrementally
     * via query::validateStreamFile (docs/streaming.md).
     */
    std::string streamPath;

    /**
     * Export window on the machine-global `seq` key: only records
     * with exportSeqMin <= seq < exportSeqMax are written
     * (trace::seqWindow). The defaults (0, 0 = unbounded) export
     * every retained record — the whole-buffer behaviour.
     */
    std::uint64_t exportSeqMin = 0;
    std::uint64_t exportSeqMax = 0;

    /**
     * Programmatic capture: when set, the merged (seq-windowed) record
     * snapshot is appended here after the run — the same stream the
     * file exporters would write. This is how the what-if engine
     * (api/whatif.hpp) and retcon-query's `smoke` subcommand get at a
     * run's records without a filesystem round-trip. Must outlive the
     * runOnce call; requires ringCapacity > 0 to retain anything.
     */
    std::vector<trace::Record> *captureInto = nullptr;
};

/** One experiment run description. */
struct RunConfig {
    std::string workload = "genome";
    unsigned nthreads = 32;
    htm::TMConfig tm{};
    std::uint64_t seed = 1;
    double scale = 1.0;
    Cycle maxCycles = 2'000'000'000ull;
    TraceOptions trace{};

    /**
     * Ask the workload to emit `user-mark` annotation records at its
     * phase boundaries (WorkerCtx::annotate). Currently honoured by
     * the `service` workload, which marks each worker's request-range
     * quarters; other workloads ignore it. No simulated-timing effect
     * — marks are audit-stream-only (docs/trace-query.md).
     */
    bool annotatePhases = false;

    /**
     * Event-queue shards (1..nthreads; cores map round-robin). With
     * shardBandwidth 0 results are bit-identical for any shard count;
     * a nonzero bandwidth models the per-shard dispatch serialization
     * sharding exists to remove (see docs/architecture.md).
     */
    unsigned shards = 1;
    unsigned shardBandwidth = 0; ///< Events/cycle/shard; 0 = unlimited.
    bool shardWorkStealing = true;

    /**
     * Host threads driving the simulation (0/1 = sequential engine;
     * >= 2 runs the conservative host-parallel engine on
     * min(hostThreads, shards) threads). Purely host-side: simulated
     * results, traces, and audit verdicts are bit-identical for any
     * value — a contract enforced by tests/unit/test_parallel_engine
     * (see docs/parallel-engine.md).
     */
    unsigned hostThreads = 0;

    /**
     * Directory banks in the memory system (1..64). Performance-
     * transparent (bit-identical results for any count) unless bank
     * contention is modeled: memBankOccupancy models directory-bank
     * queuing, tm.commitTokenArbitration models per-bank commit
     * tokens (see docs/architecture.md).
     */
    unsigned memBanks = 1;

    /** Cycles a directory bank is busy per request; 0 = unmodeled. */
    Cycle memBankOccupancy = 0;

    /**
     * Workload-side partitions for the `service` workload (session
     * hashtable + per-request-class job queues; ignored by the
     * Table 2 set). 1 = the unpartitioned layout, bit-identical to
     * pre-partitioning behaviour (docs/tuning.md).
     */
    unsigned servicePartitions = 1;

    /**
     * Contention-aware re-dispatch scheduling (exec/scheduler.hpp):
     * per-shard hot-block tables, fed by abort and commit-token
     * contention events, defer restarting a task whose last abort
     * blamed a hot block. Off (the default) reproduces immediate
     * re-dispatch exactly; NACK-retry backoff is configured
     * separately via tm.backoff (htm::BackoffConfig).
     */
    bool contentionSched = false;

    /** Scheduler knobs. The scheduler engages when either this
     *  struct's own `enabled` or `contentionSched` above is set. */
    exec::SchedulerConfig sched{};

    /**
     * Clusters in the fleet (1 = the plain single-cluster machine,
     * bit-identical to pre-fleet runs). With clusters > 1, nthreads /
     * shards / memBanks / servicePartitions are PER-CLUSTER sizes —
     * the fleet multiplies them — and fleet-wide totals must respect
     * the machine limits (64 cores, 64 banks). Clusters interact only
     * over the modeled interconnect: remote coherence misses, and the
     * two-level commit protocol's remote-bank token messages (see
     * docs/fleet.md).
     */
    unsigned clusters = 1;

    /** Interconnect wiring: "crossbar" or "ring" (docs/fleet.md). */
    std::string netTopology = "crossbar";

    /** Cycles per interconnect link traversal (one hop). */
    Cycle netLatency = 50;

    /** Words/cycle per directed link; 0 = unlimited (no queueing). */
    unsigned netBandwidth = 0;

    /**
     * Fraction of `service` requests whose session/queue accesses are
     * routed to a uniformly-chosen remote cluster's state (0 = fully
     * partitioned; ignored at clusters == 1, where the routing draw
     * is never made).
     */
    double crossClusterFraction = 0.0;

    /**
     * Named scenario from the scenario registry (src/scenario/,
     * docs/scenarios.md): open-loop arrival processes, mid-run
     * mix/hotset shifts, and deterministic fault windows for the
     * `service` workload. Empty (the default) is the plain stationary
     * run, bit-identical to pre-scenario behaviour. runOnce fatal()s
     * on unknown names and on non-service workloads; the plan is
     * derived deterministically from `seed`, so scenario runs keep
     * the full shards/hostThreads/banks determinism contract and run
     * under the reenactment audit like any other run.
     */
    std::string scenario;
};

/** Per-shard outcome of a run (one entry per event-queue shard). */
struct ShardSummary {
    /// Core-level activity of the cores homed on this shard.
    std::uint64_t txns = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;

    /// Queue-level load and work stealing.
    std::uint64_t queueScheduled = 0;
    std::uint64_t queueExecuted = 0;
    std::uint64_t queueStolen = 0;
    std::uint64_t queueDeferred = 0;

    /// Provenance counters (0 unless trace.enabled).
    std::uint64_t traceEvents = 0;
    std::uint64_t repairs = 0;
    std::uint64_t forwards = 0; ///< DATM forwarded-value loads.

    /// Commit-token waits charged to cores homed on this shard
    /// (0 unless tm.commitTokenArbitration).
    std::uint64_t tokenWaits = 0;

    /// Contention-aware scheduling on this shard (all 0 unless
    /// RunConfig::contentionSched): hot-block observations fed to the
    /// shard's table, restarts deferred, and total deferral cycles.
    std::uint64_t schedObserved = 0;
    std::uint64_t schedDefers = 0;
    std::uint64_t schedDeferCycles = 0;
    /// Defers waived because the blamed block is repairable-class
    /// (0 unless sched.skipRepairableBlame).
    std::uint64_t schedRepairableSkips = 0;
};

/** Per-directory-bank outcome of a run (one entry per memory bank). */
struct BankSummary {
    /// Directory occupancy (stall fields 0 unless memBankOccupancy).
    std::uint64_t requests = 0;    ///< Misses served by this bank.
    std::uint64_t stalled = 0;     ///< Requests that found it busy.
    std::uint64_t stallCycles = 0; ///< Total slip cycles.

    /// Commit-token arbitration (0 unless tm.commitTokenArbitration).
    std::uint64_t tokenAcquires = 0; ///< Grants including this bank.
    std::uint64_t tokenWaits = 0;    ///< NACKs blamed on this bank.
};

/** One directed interconnect link's lifetime traffic. */
struct NetLinkSummary {
    unsigned src = 0;
    unsigned dst = 0;
    std::uint64_t messages = 0;
    std::uint64_t payloadWords = 0;
    std::uint64_t queueCycles = 0; ///< Waits behind earlier traffic.
};

/** Fleet interconnect roll-up (all empty/zero at clusters == 1). */
struct NetSummary {
    std::uint64_t messages = 0;
    std::uint64_t payloadWords = 0;
    std::uint64_t queueCycles = 0;
    std::vector<NetLinkSummary> links;
};

/**
 * Host-side execution metadata: how the simulation ran, never what it
 * computed. Excluded from determinism fingerprints by design — wall
 * time and stall counts are timing-dependent even when every simulated
 * result is bit-identical.
 */
struct HostParallelSummary {
    unsigned threads = 1;   ///< Engine worker threads (1 = sequential).
    double wallMs = 0.0;    ///< Host wall-clock time of the run.
    std::uint64_t barrierStalls = 0; ///< Holder waits on in-flight mail.
};

/**
 * Live trace-stream writer activity (all-zero unless
 * TraceOptions::streamPath). Host-side like HostParallelSummary:
 * flush stalls are wall time the event loop spent blocked in stream
 * writes, never simulated cycles — streaming must not perturb the
 * simulation (bench/trace_stream proves cycles identical either way).
 */
struct TraceStreamSummary {
    std::uint64_t records = 0;
    std::uint64_t bytesWritten = 0; ///< Includes the file header.
    std::uint64_t flushes = 0;      ///< Batched write() calls.
    double flushWallMs = 0.0;       ///< Host time blocked writing.
};

/**
 * Scenario outcome (all-zero/empty unless RunConfig::scenario). The
 * arrival/stall fields aggregate the workers' scenario accounting
 * (scenario::Runtime::Stats); the fault fields read the machine-level
 * overlays back out of the memory system and the interconnect.
 * Everything here is simulated state — part of the determinism
 * fingerprint, unlike HostParallelSummary.
 */
struct ScenarioSummary {
    std::string name;
    bool openLoop = false;
    unsigned phases = 1;

    /// Arrival-queue accounting, summed over workers. Conservation:
    /// injected == completed + dropped (workers drain their backlog
    /// before finishing, so nothing is left in flight at the end).
    std::uint64_t injected = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t peakBacklog = 0; ///< Max per-worker queue depth.
    std::uint64_t latencySum = 0;  ///< Sum of queueing delays.
    std::uint64_t latencyMax = 0;

    /// Mid-run shift annotations emitted (phase boundaries).
    std::uint64_t phaseMarks = 0;

    /// Core-stall fault engagement.
    std::uint64_t stallHits = 0;
    std::uint64_t stallCycles = 0;

    /// Slow-bank fault engagement (mem::MemorySystem counters).
    std::uint64_t bankFaultStalls = 0;
    std::uint64_t bankFaultCycles = 0;

    /// Degraded-link fault engagement (0 at clusters == 1).
    std::uint64_t linkFaultMessages = 0;
    std::uint64_t linkFaultCycles = 0;
};

/** Everything a run produces. */
struct RunResult {
    Cycle cycles = 0;
    exec::TimeBreakdown breakdown;
    exec::CoreStats coreStats;
    htm::MachineStats machineStats;
    workloads::ValidationResult validation;

    /** One entry per event-queue shard. */
    std::vector<ShardSummary> shards;

    /** One entry per directory bank (shard x bank crossbar columns). */
    std::vector<BankSummary> banks;

    /** One entry per cluster (size 1 at clusters == 1). */
    std::vector<exec::ClusterSummary> clusterSummaries;

    /** Interconnect traffic (links empty at clusters == 1). */
    NetSummary net;

    /**
     * Audit results (all-zero unless trace.enabled && validate).
     * Under DATM, `reenact.forwardedCommitsChecked` counts commits
     * whose forwarding chains were fully re-derived and
     * `reenact.forwardedCommitsSkipped` counts chains the validator
     * could not walk — zero on a healthy run.
     */
    trace::ReenactReport reenact;
    /** Events seen by the trace subsystem (0 unless enabled). */
    std::uint64_t traceEvents = 0;

    /** Stream-writer activity (0 unless trace.streamPath was set). */
    TraceStreamSummary traceStream;

    /** Host-side engine metadata (not part of simulated results). */
    HostParallelSummary hostParallel;

    /** Scenario outcome (empty name unless RunConfig::scenario). */
    ScenarioSummary scenario;
};

/** Baseline HTM of §2: eager + oldest-wins. */
htm::TMConfig eagerConfig();

/** The paper's lazy-vb variant (§5.1). */
htm::TMConfig lazyVbConfig();

/** Full RETCON (Table 1 structure sizes, §4.4 optimizations). */
htm::TMConfig retconConfig();

/** Global-lock serialization (the sequential baseline substrate). */
htm::TMConfig serialConfig();

/** Execute one run (setup, simulate, validate). fatal()s on deadlock. */
RunResult runOnce(const RunConfig &cfg);

/**
 * Run the sequential baseline for @p cfg's workload (1 thread, Serial)
 * and return its makespan in cycles.
 */
Cycle sequentialCycles(const RunConfig &cfg);

/** Makespan speedup of @p cfg over the sequential baseline. */
double speedupOverSequential(const RunConfig &cfg);

/** Name -> config for the three Figure 9/10 machine configurations. */
struct ConfigPoint {
    const char *label;
    htm::TMConfig tm;
};
std::vector<ConfigPoint> paperConfigs();

} // namespace retcon::api

#endif // RETCON_API_RUNNER_HPP
