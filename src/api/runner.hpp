/**
 * @file
 * Public experiment API: run a Table 2 workload on the Table 1 machine
 * under a chosen TM configuration and collect everything the paper's
 * figures and tables report.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   api::RunConfig cfg;
 *   cfg.workload = "python_opt";
 *   cfg.tm = api::retconConfig();
 *   api::RunResult r = api::runOnce(cfg);
 *   double speedup = api::speedupOverSequential(cfg);
 */

#ifndef RETCON_API_RUNNER_HPP
#define RETCON_API_RUNNER_HPP

#include <string>

#include "exec/cluster.hpp"
#include "htm/machine.hpp"
#include "trace/reenact.hpp"
#include "workloads/workload.hpp"

namespace retcon::api {

/** Opt-in provenance/audit options for a run. */
struct TraceOptions {
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;

    /** Reenact every commit against architectural memory. */
    bool validate = true;

    /** Retain the newest this-many events for export (0 = no ring). */
    std::size_t ringCapacity = 1 << 16;

    /** When non-empty, export retained events after the run. */
    std::string exportJsonPath;
    std::string exportCsvPath;
};

/** One experiment run description. */
struct RunConfig {
    std::string workload = "genome";
    unsigned nthreads = 32;
    htm::TMConfig tm{};
    std::uint64_t seed = 1;
    double scale = 1.0;
    Cycle maxCycles = 2'000'000'000ull;
    TraceOptions trace{};
};

/** Everything a run produces. */
struct RunResult {
    Cycle cycles = 0;
    exec::TimeBreakdown breakdown;
    exec::CoreStats coreStats;
    htm::MachineStats machineStats;
    workloads::ValidationResult validation;

    /** Audit results (all-zero unless trace.enabled && validate). */
    trace::ReenactReport reenact;
    /** Events seen by the ring recorder (0 unless enabled). */
    std::uint64_t traceEvents = 0;
};

/** Baseline HTM of §2: eager + oldest-wins. */
htm::TMConfig eagerConfig();

/** The paper's lazy-vb variant (§5.1). */
htm::TMConfig lazyVbConfig();

/** Full RETCON (Table 1 structure sizes, §4.4 optimizations). */
htm::TMConfig retconConfig();

/** Global-lock serialization (the sequential baseline substrate). */
htm::TMConfig serialConfig();

/** Execute one run (setup, simulate, validate). fatal()s on deadlock. */
RunResult runOnce(const RunConfig &cfg);

/**
 * Run the sequential baseline for @p cfg's workload (1 thread, Serial)
 * and return its makespan in cycles.
 */
Cycle sequentialCycles(const RunConfig &cfg);

/** Makespan speedup of @p cfg over the sequential baseline. */
double speedupOverSequential(const RunConfig &cfg);

/** Name -> config for the three Figure 9/10 machine configurations. */
struct ConfigPoint {
    const char *label;
    htm::TMConfig tm;
};
std::vector<ConfigPoint> paperConfigs();

} // namespace retcon::api

#endif // RETCON_API_RUNNER_HPP
