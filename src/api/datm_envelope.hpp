/**
 * @file
 * The DATM support envelope, as a queryable table.
 *
 * DATM (dependence-aware forwarding) stresses two things the other
 * modes do not: forwarding cascades multiply aborted attempts — and
 * ds::SimAllocator leaks one arena bump per aborted attempt by design
 * — and cascade storms can stop converging inside the cycle bound on
 * workloads with long dataflow chains (yada's mesh epochs). The
 * envelope used to be a hard-coded probe buried in tests/sweep_main
 * (`datmUnsupported()`); it is now owned by the library, asserted by
 * tests/unit/test_scenario.cpp, and *widened* by two per-mode
 * mitigations applied automatically by api::runOnce:
 *
 *  - per-mode arena sizing (arenaBytesFor): DATM runs get 4x the
 *    default per-thread arena, clamped so (nthreads + 1) arenas still
 *    fit one cluster heap region — headroom for the leak-per-abort;
 *  - cascade back-pressure (htm::TMConfig::datmCascadeBackpressure,
 *    on by default): cores aborted by a forwarding cascade delay
 *    their restart exponentially in the cascade streak, breaking the
 *    retry storms that previously kept yada/intruder from converging
 *    at moderate scales.
 *
 * Points outside the envelope are *skipped*, never silently shrunk:
 * sweep_main consults datmSupported() and prints the skip.
 */

#ifndef RETCON_API_DATM_ENVELOPE_HPP
#define RETCON_API_DATM_ENVELOPE_HPP

#include <string>
#include <vector>

#include "htm/types.hpp"
#include "sim/types.hpp"

namespace retcon::api {

/** One envelope row; workloads not listed are fully supported. */
struct DatmEnvelopeEntry {
    /** Workload name, or a prefix when `prefix` ("python" covers
     *  python and python_opt). */
    const char *workload;
    bool prefix;

    /** Largest supported scale (0 = unsupported at any scale). */
    double maxScale;

    /** Supported on a multi-cluster fleet (clusters > 1)? */
    bool fleetSupported;

    /** Why the bound exists (printed by sweep skips). */
    const char *reason;
};

/** The full envelope table. */
const std::vector<DatmEnvelopeEntry> &datmEnvelope();

/**
 * True when @p workload under DATM at (@p scale, @p clusters) is
 * inside the supported envelope — i.e. runOnce with the automatic
 * DATM mitigations completes, validates, and audits with zero skipped
 * forwarding chains.
 */
bool datmSupported(const std::string &workload, double scale,
                   unsigned clusters);

/**
 * Per-mode arena sizing: the per-thread arena bytes runOnce hands the
 * workload for @p mode with @p nthreads fleet-wide threads. The
 * default size for every mode but DATM; 4x for DATM, clamped to keep
 * (nthreads + 1) arenas inside one cluster heap region.
 */
Addr arenaBytesFor(htm::TMMode mode, unsigned nthreads);

} // namespace retcon::api

#endif // RETCON_API_DATM_ENVELOPE_HPP
