/**
 * @file
 * What-if reenactment: re-execute a recorded run with one (or a few)
 * changed knobs and report exactly how far the change reached
 * (docs/what-if.md).
 *
 * The engine leans on two properties the rest of the repo already
 * enforces:
 *
 *  1. **Determinism** — a RunConfig reproduces its provenance stream
 *     bit-for-bit (tests/unit/test_parallel_engine, test_trace), so
 *     "replay the run" is just `runOnce` again and divergence between
 *     the recorded and variant streams is attributable to the knob
 *     change alone.
 *
 *  2. **Bounded reach** — each knob is classified by the earliest
 *     machine step it can possibly perturb (ReachClass). A
 *     backoff policy only acts when a NACK or abort happens; the
 *     dependence graph of the recorded stream (trace/graph.hpp) names
 *     the first seq where any cross-attempt interaction exists, so
 *     every record before that frontier is *provably unreached* and
 *     the recorded prefix is reused verbatim instead of trusted to
 *     re-derive.
 *
 * The reconstructed stream (reused recorded prefix + variant suffix)
 * is then validated offline (query/replay.hpp): it must reenact
 * cleanly, proving the splice is a coherent history and not just a
 * concatenation.
 */

#ifndef RETCON_API_WHATIF_HPP
#define RETCON_API_WHATIF_HPP

#include <string>
#include <vector>

#include "api/runner.hpp"
#include "query/replay.hpp"
#include "trace/graph.hpp"

namespace retcon::api {

/**
 * How early in a recorded stream a knob change can possibly take
 * effect. Ordered weakest to strongest; a multi-knob change takes the
 * strongest class among its knobs.
 */
enum class ReachClass : std::uint8_t {
    /** Host-side only (shards, hostThreads, memBanks without
     *  occupancy): the simulated stream is bit-identical by
     *  contract, nothing is reachable. */
    Nothing,
    /** Acts only where attempts interact (backoff, scheduling,
     *  commit-token arbitration, bank occupancy, shard bandwidth):
     *  first reachable record = the first-interaction frontier. */
    Conflicts,
    /** Acts only on commit-time repaired stores (repair fault
     *  injection): first reachable record = first `repair`. */
    Repairs,
    /** Acts only on DATM forwarded values: first reachable record =
     *  first `forward`. */
    Forwards,
    /** Changes the program itself (seed, workload, nthreads, scale,
     *  tm.mode, partitioning): everything is reachable. */
    Everything,
};

const char *reachClassName(ReachClass c);

/** One knob change, by name (see applyKnob for the vocabulary). */
struct KnobChange {
    std::string knob;
    std::string value;
};

/** Reach classification of one knob name (Everything if unknown —
 *  the sound default: never under-estimate reach). */
ReachClass classifyKnob(const std::string &knob);

/**
 * Apply one knob change to @p cfg. Supported knobs:
 *
 *   seed, workload, nthreads, scale, servicePartitions, clusters,
 *   crossClusterFraction, tm.mode (serial|eager|lazy|lazy-vb|
 *   retcon|datm)                                    -> Everything
 *   backoff (none|linear|exp|prop), contentionSched (0|1),
 *   commitTokenArbitration (0|1), memBankOccupancy,
 *   shardBandwidth                                  -> Conflicts
 *   faultInjectRepairXor                            -> Repairs
 *   faultInjectForwardXor                           -> Forwards
 *   shards, memBanks, hostThreads                   -> Nothing
 *
 * @return false (cfg untouched) on unknown knob or unparseable value.
 */
bool applyKnob(RunConfig &cfg, const std::string &knob,
               const std::string &value);

/** Everything one what-if reenactment produces. */
struct WhatIfResult {
    bool ok = false;       ///< False: see error (bad knob, no trace).
    std::string error;

    /** The two full streams and the spliced one. */
    std::vector<trace::Record> recorded;
    std::vector<trace::Record> variant;
    std::vector<trace::Record> reconstructed;

    /** Reach classification of the change set. */
    ReachClass reach = ReachClass::Everything;
    /** First seq the change could reach (kSeqUnreached = none). */
    std::uint64_t firstReachableSeq = trace::kSeqUnreached;
    /** Records of the recorded prefix reused verbatim. */
    std::uint64_t prefixRecords = 0;
    /** prefixRecords / recorded.size() (1.0 on an unreached change). */
    double prefixReuse = 0.0;
    /**
     * The reach proof, checked rather than assumed: the variant's
     * first prefixRecords records must equal the reused prefix
     * bit-for-bit. False would mean a knob was misclassified.
     */
    bool prefixProofHeld = true;

    /** Recorded vs variant, record-by-record. */
    bool bitIdentical = false;
    bool diverged = false;
    /** Recorded-stream seq of the first differing record
     *  (kSeqUnreached when bitIdentical). */
    std::uint64_t firstDivergentSeq = trace::kSeqUnreached;

    /** Per-block record-count delta (variant - recorded), only
     *  blocks whose counts differ, sorted by |delta| descending. */
    std::vector<std::pair<Addr, std::int64_t>> blockDeltas;

    /** Offline reenactment of the reconstructed stream. */
    query::ReplayResult reenact;

    /** Full run outcomes for downstream comparison. */
    RunResult baseResult;
    RunResult variantResult;
};

/**
 * Record @p base (tracing forced on), apply @p changes, re-run, and
 * compare. @p base's own trace options are honoured where sensible
 * (ringCapacity 0 is promoted to a full-retention default, since the
 * engine needs the records).
 */
WhatIfResult runWhatIf(const RunConfig &base,
                       const std::vector<KnobChange> &changes);

} // namespace retcon::api

#endif // RETCON_API_WHATIF_HPP
