#include "api/runner.hpp"

#include "sim/logging.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace retcon::api {

htm::TMConfig
eagerConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Eager;
    cfg.cmPolicy = htm::CMPolicy::OldestWins;
    return cfg;
}

htm::TMConfig
lazyVbConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::LazyVB;
    return cfg;
}

htm::TMConfig
retconConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::Retcon;
    return cfg;
}

htm::TMConfig
serialConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Serial;
    return cfg;
}

std::vector<ConfigPoint>
paperConfigs()
{
    return {
        {"eager", eagerConfig()},
        {"lazy-vb", lazyVbConfig()},
        {"RetCon", retconConfig()},
    };
}

RunResult
runOnce(const RunConfig &cfg)
{
    workloads::WorkloadParams params;
    params.nthreads = cfg.nthreads;
    params.seed = cfg.seed;
    params.scale = cfg.scale;
    auto workload = workloads::makeWorkload(cfg.workload, params);

    exec::ClusterConfig ccfg;
    ccfg.numThreads = cfg.nthreads;
    ccfg.seed = cfg.seed;
    ccfg.tm = cfg.tm;
    ccfg.maxCycles = cfg.maxCycles;

    exec::Cluster cluster(ccfg);

    // Optional provenance/audit instrumentation. The sinks must
    // outlive the run; the validator reads architectural memory, so it
    // is built against this cluster instance.
    trace::MultiSink sink;
    std::unique_ptr<trace::TraceRecorder> recorder;
    std::unique_ptr<trace::ReenactmentValidator> validator;
    if (cfg.trace.enabled) {
        if (cfg.trace.ringCapacity > 0) {
            recorder = std::make_unique<trace::TraceRecorder>(
                cfg.trace.ringCapacity);
            sink.add(recorder.get());
        }
        if (cfg.trace.validate) {
            validator = std::make_unique<trace::ReenactmentValidator>(
                [&cluster](Addr a) {
                    return cluster.memory().readWord(a);
                });
            sink.add(validator.get());
        }
        cluster.setTraceSink(&sink);
    }

    workload->setup(cluster);
    cluster.start(workload->program());

    RunResult result;
    result.cycles = cluster.run();
    result.breakdown = cluster.aggregateBreakdown();
    result.coreStats = cluster.aggregateStats();
    result.machineStats = cluster.machine().stats();
    result.validation = workload->validate(cluster);
    if (!result.validation.ok) {
        warn("workload %s failed validation: %s", cfg.workload.c_str(),
             result.validation.note.c_str());
    }

    if (validator) {
        result.reenact = validator->report();
        if (!result.reenact.ok()) {
            warn("workload %s failed reenactment audit: %s",
                 cfg.workload.c_str(),
                 result.reenact.summary().c_str());
        }
    }
    if (recorder) {
        result.traceEvents = recorder->totalEvents();
        if (!cfg.trace.exportJsonPath.empty())
            trace::exportJsonFile(*recorder, cfg.trace.exportJsonPath);
        if (!cfg.trace.exportCsvPath.empty())
            trace::exportCsvFile(*recorder, cfg.trace.exportCsvPath);
    }
    return result;
}

Cycle
sequentialCycles(const RunConfig &cfg)
{
    RunConfig seq = cfg;
    seq.nthreads = 1;
    seq.tm = serialConfig();
    return runOnce(seq).cycles;
}

double
speedupOverSequential(const RunConfig &cfg)
{
    Cycle seq = sequentialCycles(cfg);
    RunResult par = runOnce(cfg);
    sim_assert(par.cycles > 0, "zero-cycle run");
    return static_cast<double>(seq) / static_cast<double>(par.cycles);
}

} // namespace retcon::api
