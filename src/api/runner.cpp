#include "api/runner.hpp"

#include <chrono>

#include "api/datm_envelope.hpp"
#include "sim/logging.hpp"
#include "trace/export.hpp"
#include "trace/shard_mux.hpp"
#include "trace/stream.hpp"

namespace retcon::api {

htm::TMConfig
eagerConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Eager;
    cfg.cmPolicy = htm::CMPolicy::OldestWins;
    return cfg;
}

htm::TMConfig
lazyVbConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::LazyVB;
    return cfg;
}

htm::TMConfig
retconConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::Retcon;
    return cfg;
}

htm::TMConfig
serialConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Serial;
    return cfg;
}

std::vector<ConfigPoint>
paperConfigs()
{
    return {
        {"eager", eagerConfig()},
        {"lazy-vb", lazyVbConfig()},
        {"RetCon", retconConfig()},
    };
}

RunResult
runOnce(const RunConfig &cfg)
{
    sim_assert(cfg.clusters >= 1, "clusters must be >= 1");
    workloads::WorkloadParams params;
    params.nthreads = cfg.nthreads * cfg.clusters;
    params.seed = cfg.seed;
    params.scale = cfg.scale;
    params.servicePartitions = cfg.servicePartitions;
    params.clusters = cfg.clusters;
    params.crossClusterFraction = cfg.crossClusterFraction;
    params.annotatePhases = cfg.annotatePhases;
    params.arenaBytes = arenaBytesFor(cfg.tm.mode, params.nthreads);

    // Resolve the scenario before anything else so a typo fails fast.
    // The runtime owns the plan for the whole run; the workload reads
    // it through params.scenario, machine-level fault overlays are
    // installed below once the fleet exists.
    std::unique_ptr<scenario::Runtime> scenarioRt;
    if (!cfg.scenario.empty()) {
        const scenario::Scenario *sc =
            scenario::scenarioByName(cfg.scenario);
        if (sc == nullptr)
            fatal("unknown scenario '%s' (see --list-scenarios)",
                  cfg.scenario.c_str());
        sim_assert(cfg.workload == "service",
                   "scenario '%s' requires the service workload, not "
                   "%s",
                   cfg.scenario.c_str(), cfg.workload.c_str());
        scenario::Env env;
        env.seed = cfg.seed;
        env.scale = cfg.scale;
        env.nthreads = params.nthreads;
        env.clusters = cfg.clusters;
        scenarioRt = std::make_unique<scenario::Runtime>(*sc, env);
        params.scenario = scenarioRt.get();
    }
    auto workload = workloads::makeWorkload(cfg.workload, params);

    // nthreads/shards/memBanks size ONE cluster; the Fleet multiplies
    // them. At clusters == 1 the config passes through untouched and
    // no interconnect is built — bit-identical to pre-fleet runs.
    exec::ClusterConfig ccfg;
    ccfg.numThreads = cfg.nthreads;
    ccfg.seed = cfg.seed;
    ccfg.tm = cfg.tm;
    ccfg.maxCycles = cfg.maxCycles;
    ccfg.numShards = cfg.shards;
    ccfg.shardBandwidth = cfg.shardBandwidth;
    ccfg.shardWorkStealing = cfg.shardWorkStealing;
    ccfg.hostThreads = cfg.hostThreads;
    ccfg.memBanks = cfg.memBanks;
    ccfg.timing.bankOccupancy = cfg.memBankOccupancy;
    ccfg.sched = cfg.sched;
    // Either switch engages the scheduler: the RunConfig-level bool
    // is the convenient knob, sched.enabled the embedded master
    // switch — honoring both means neither silently wins.
    ccfg.sched.enabled = cfg.contentionSched || cfg.sched.enabled;

    net::NetConfig ncfg;
    ncfg.topology = net::topologyFromName(cfg.netTopology.c_str());
    ncfg.linkLatency = cfg.netLatency;
    ncfg.linkBandwidth = cfg.netBandwidth;

    exec::Fleet fleet(ccfg, cfg.clusters, ncfg);
    exec::Cluster &cluster = fleet.cluster();

    // Machine-level fault overlays from the scenario plan. Both are
    // windows over simulated time keyed on addresses/link indices —
    // pure functions of simulated state, so the determinism contract
    // (shards, hostThreads, banks) is untouched.
    if (scenarioRt) {
        const scenario::FaultConfig &f = scenarioRt->plan().fault;
        if (f.bankSlow) {
            mem::MemorySystem::BankFault bf;
            bf.sliceMod = f.bankSliceMod;
            bf.sliceVictim = f.bankSliceVictim;
            bf.period = f.bankPeriod;
            bf.len = f.bankLen;
            bf.offset = f.bankOffset;
            bf.extra = f.bankExtra;
            cluster.memorySystem().setBankFault(bf);
        }
        if (f.linkDegrade) {
            if (net::Interconnect *n = fleet.net()) {
                net::Interconnect::LinkFault lf;
                lf.link = static_cast<unsigned>(f.linkSelector %
                                                n->numLinks());
                lf.period = f.linkPeriod;
                lf.len = f.linkLen;
                lf.offset = f.linkOffset;
                lf.latencyMult = f.linkLatencyMult;
                n->setLinkFault(lf);
            }
            // No interconnect at clusters == 1: the fault is inert by
            // definition (nothing to degrade), not dropped — the
            // scenario still runs its arrival/shift families.
        }
    }

    // Optional provenance/audit instrumentation. The sinks must
    // outlive the run; the validator reads architectural memory, so it
    // is built against this cluster instance. Records are captured in
    // per-shard rings (ShardMux) and the validator consumes the merged
    // live stream, which arrives in global order by construction.
    std::unique_ptr<trace::ShardMux> mux;
    std::unique_ptr<trace::ReenactmentValidator> validator;
    std::unique_ptr<trace::StreamWriter> streamWriter;
    if (cfg.trace.enabled) {
        mux = std::make_unique<trace::ShardMux>(
            cluster.numShards(),
            [&cluster](CoreId core) { return cluster.shardOf(core); },
            cfg.trace.ringCapacity);
        if (cfg.trace.validate) {
            validator = std::make_unique<trace::ReenactmentValidator>(
                [&cluster](Addr a) {
                    return cluster.memory().readWord(a);
                });
            mux->addDownstream(validator.get());
        }
        if (!cfg.trace.streamPath.empty()) {
            // The live downstream sees the complete dense stream (the
            // mux feeds in machine-global seq order), independent of
            // ring retention — streaming works with ringCapacity 0.
            streamWriter = std::make_unique<trace::StreamWriter>(
                cfg.trace.streamPath);
            mux->addDownstream(streamWriter.get());
        }
        cluster.setTraceSink(mux.get());
    }

    workload->setup(cluster);
    cluster.start(workload->program());

    RunResult result;
    auto host0 = std::chrono::steady_clock::now();
    result.cycles = cluster.run();
    result.hostParallel.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - host0)
            .count();
    if (const ParallelEngine *eng = cluster.engine()) {
        result.hostParallel.threads = eng->stats().workers;
        result.hostParallel.barrierStalls = eng->stats().stalls;
    }
    result.breakdown = cluster.aggregateBreakdown();
    result.coreStats = cluster.aggregateStats();
    result.machineStats = cluster.machine().stats();
    result.validation = workload->validate(cluster);
    if (!result.validation.ok) {
        warn("workload %s failed validation: %s", cfg.workload.c_str(),
             result.validation.note.c_str());
    }

    result.shards.resize(cluster.numShards());
    for (unsigned s = 0; s < cluster.numShards(); ++s) {
        ShardSummary &sum = result.shards[s];
        exec::CoreStats cs = cluster.shardCoreStats(s);
        sum.txns = cs.txns;
        sum.commits = cs.commits;
        sum.aborts = cs.aborts;
        const auto &qs = cluster.shardQueueStats(s);
        sum.queueScheduled = qs.scheduled;
        sum.queueExecuted = qs.executed;
        sum.queueStolen = qs.stolen;
        sum.queueDeferred = qs.deferred;
        if (mux) {
            sum.traceEvents = mux->counters(s).events;
            sum.repairs = mux->counters(s).repairs;
            sum.forwards = mux->counters(s).forwards;
        }
        for (CoreId c = 0; c < cluster.numThreads(); ++c)
            if (cluster.shardOf(c) == s)
                sum.tokenWaits += cluster.machine().tokenWaits(c);
        exec::ContentionScheduler::Stats sched = cluster.schedStats(s);
        sum.schedObserved = sched.observed;
        sum.schedDefers = sched.defers;
        sum.schedDeferCycles = sched.deferCycles;
        sum.schedRepairableSkips = sched.repairableSkips;
    }

    result.banks.resize(cluster.numBanks());
    for (unsigned b = 0; b < cluster.numBanks(); ++b) {
        BankSummary &sum = result.banks[b];
        const auto &bs = cluster.memorySystem().bankStats(b);
        sum.requests = bs.requests;
        sum.stalled = bs.stalled;
        sum.stallCycles = bs.stallCycles;
        const auto &ts = cluster.machine().bankTokenStats(b);
        sum.tokenAcquires = ts.acquires;
        sum.tokenWaits = ts.waits;
    }

    result.clusterSummaries.resize(cfg.clusters);
    for (unsigned c = 0; c < cfg.clusters; ++c)
        result.clusterSummaries[c] = fleet.summarize(c);
    if (const net::Interconnect *n = fleet.net()) {
        result.net.messages = n->totalMessages();
        result.net.payloadWords = n->totalPayloadWords();
        result.net.queueCycles = n->totalQueueCycles();
        result.net.links.resize(n->numLinks());
        for (unsigned l = 0; l < n->numLinks(); ++l) {
            const auto &ls = n->linkStats(l);
            NetLinkSummary &sum = result.net.links[l];
            sum.src = ls.src;
            sum.dst = ls.dst;
            sum.messages = ls.messages;
            sum.payloadWords = ls.payloadWords;
            sum.queueCycles = ls.queueCycles;
        }
    }

    if (scenarioRt) {
        ScenarioSummary &sum = result.scenario;
        const scenario::Plan &plan = scenarioRt->plan();
        const scenario::Runtime::Stats &st = scenarioRt->stats();
        sum.name = scenarioRt->scenario().name;
        sum.openLoop = plan.arrival.open();
        sum.phases = plan.shift.phases;
        sum.injected = st.injected;
        sum.completed = st.completed;
        sum.dropped = st.dropped;
        sum.peakBacklog = st.peakBacklog;
        sum.latencySum = st.latencySum;
        sum.latencyMax = st.latencyMax;
        sum.phaseMarks = st.phaseMarks;
        sum.stallHits = st.stallHits;
        sum.stallCycles = st.stallCycles;
        sum.bankFaultStalls = cluster.memorySystem().bankFaultStalls();
        sum.bankFaultCycles = cluster.memorySystem().bankFaultCycles();
        if (const net::Interconnect *n = fleet.net()) {
            sum.linkFaultMessages = n->faultMessages();
            sum.linkFaultCycles = n->faultExtraCycles();
        }
    }

    if (validator) {
        result.reenact = validator->report();
        if (!result.reenact.ok()) {
            warn("workload %s failed reenactment audit: %s",
                 cfg.workload.c_str(),
                 result.reenact.summary().c_str());
        }
    }
    if (streamWriter) {
        streamWriter->close();
        const trace::StreamWriter::Stats &ws = streamWriter->stats();
        result.traceStream.records = ws.records;
        result.traceStream.bytesWritten = ws.bytesWritten;
        result.traceStream.flushes = ws.flushes;
        result.traceStream.flushWallMs = ws.flushWallMs;
    }
    if (mux) {
        result.traceEvents = mux->totalEvents();
        if (cfg.trace.ringCapacity > 0 &&
            (cfg.trace.captureInto ||
             !cfg.trace.exportJsonPath.empty() ||
             !cfg.trace.exportCsvPath.empty() ||
             !cfg.trace.exportBinPath.empty())) {
            std::vector<trace::Record> merged = mux->mergedSnapshot();
            if (cfg.trace.exportSeqMin != 0 ||
                cfg.trace.exportSeqMax != 0) {
                merged = trace::seqWindow(merged, cfg.trace.exportSeqMin,
                                          cfg.trace.exportSeqMax);
            }
            if (!cfg.trace.exportJsonPath.empty())
                trace::exportJsonFile(merged, cfg.trace.exportJsonPath);
            if (!cfg.trace.exportCsvPath.empty())
                trace::exportCsvFile(merged, cfg.trace.exportCsvPath);
            if (!cfg.trace.exportBinPath.empty())
                trace::exportBinaryFile(merged, cfg.trace.exportBinPath);
            if (cfg.trace.captureInto)
                cfg.trace.captureInto->insert(
                    cfg.trace.captureInto->end(), merged.begin(),
                    merged.end());
        }
    }
    return result;
}

Cycle
sequentialCycles(const RunConfig &cfg)
{
    RunConfig seq = cfg;
    seq.nthreads = 1;
    seq.shards = 1; // A single core needs (and permits) one shard.
    seq.clusters = 1;
    seq.crossClusterFraction = 0.0;
    seq.tm = serialConfig();
    return runOnce(seq).cycles;
}

double
speedupOverSequential(const RunConfig &cfg)
{
    Cycle seq = sequentialCycles(cfg);
    RunResult par = runOnce(cfg);
    sim_assert(par.cycles > 0, "zero-cycle run");
    return static_cast<double>(seq) / static_cast<double>(par.cycles);
}

} // namespace retcon::api
