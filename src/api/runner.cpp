#include "api/runner.hpp"

#include "sim/logging.hpp"

namespace retcon::api {

htm::TMConfig
eagerConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Eager;
    cfg.cmPolicy = htm::CMPolicy::OldestWins;
    return cfg;
}

htm::TMConfig
lazyVbConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::LazyVB;
    return cfg;
}

htm::TMConfig
retconConfig()
{
    htm::TMConfig cfg = eagerConfig();
    cfg.mode = htm::TMMode::Retcon;
    return cfg;
}

htm::TMConfig
serialConfig()
{
    htm::TMConfig cfg;
    cfg.mode = htm::TMMode::Serial;
    return cfg;
}

std::vector<ConfigPoint>
paperConfigs()
{
    return {
        {"eager", eagerConfig()},
        {"lazy-vb", lazyVbConfig()},
        {"RetCon", retconConfig()},
    };
}

RunResult
runOnce(const RunConfig &cfg)
{
    workloads::WorkloadParams params;
    params.nthreads = cfg.nthreads;
    params.seed = cfg.seed;
    params.scale = cfg.scale;
    auto workload = workloads::makeWorkload(cfg.workload, params);

    exec::ClusterConfig ccfg;
    ccfg.numThreads = cfg.nthreads;
    ccfg.seed = cfg.seed;
    ccfg.tm = cfg.tm;
    ccfg.maxCycles = cfg.maxCycles;

    exec::Cluster cluster(ccfg);
    workload->setup(cluster);
    cluster.start(workload->program());

    RunResult result;
    result.cycles = cluster.run();
    result.breakdown = cluster.aggregateBreakdown();
    result.coreStats = cluster.aggregateStats();
    result.machineStats = cluster.machine().stats();
    result.validation = workload->validate(cluster);
    if (!result.validation.ok) {
        warn("workload %s failed validation: %s", cfg.workload.c_str(),
             result.validation.note.c_str());
    }
    return result;
}

Cycle
sequentialCycles(const RunConfig &cfg)
{
    RunConfig seq = cfg;
    seq.nthreads = 1;
    seq.tm = serialConfig();
    return runOnce(seq).cycles;
}

double
speedupOverSequential(const RunConfig &cfg)
{
    Cycle seq = sequentialCycles(cfg);
    RunResult par = runOnce(cfg);
    sim_assert(par.cycles > 0, "zero-cycle run");
    return static_cast<double>(seq) / static_cast<double>(par.cycles);
}

} // namespace retcon::api
