#include "api/datm_envelope.hpp"

#include <algorithm>

#include "net/topology.hpp"
#include "workloads/workload.hpp"

namespace retcon::api {

const std::vector<DatmEnvelopeEntry> &
datmEnvelope()
{
    // Bounds are pinned by tests/unit/test_scenario.cpp: the widened
    // points (intruder 0.25, service 0.75) run audited there, so the
    // table cannot drift optimistic without a test run noticing.
    static const std::vector<DatmEnvelopeEntry> rows = {
        {"python", true, 0.0, false,
         "interpreter-lock forwarding diverges under DATM"},
        {"intruder", true, 0.25, false,
         "flow-reassembly cascades exhaust arenas beyond scale 0.25 "
         "(was 0.1 before per-mode arena sizing + back-pressure)"},
        {"yada", false, 0.1, false,
         "mesh-epoch cascade storms stop converging beyond tiny "
         "inputs"},
        {"service", false, 0.75, true,
         "Zipfian-hot forwarding cascades exhaust arenas at full "
         "scale (was 0.5 before per-mode arena sizing)"},
    };
    return rows;
}

bool
datmSupported(const std::string &workload, double scale,
              unsigned clusters)
{
    for (const DatmEnvelopeEntry &e : datmEnvelope()) {
        bool match = e.prefix
                         ? workload.rfind(e.workload, 0) == 0
                         : workload == e.workload;
        if (!match)
            continue;
        if (clusters > 1 && !e.fleetSupported)
            return false;
        return scale <= e.maxScale;
    }
    return true;
}

Addr
arenaBytesFor(htm::TMMode mode, unsigned nthreads)
{
    if (mode != htm::TMMode::DATM)
        return 0; // WorkloadParams::arena() falls back to the default.
    Addr widened = workloads::kDefaultArenaBytes * 4;
    // (nthreads + 1) arenas — one per thread plus the shared setup
    // arena — must fit a cluster heap region, block-aligned.
    Addr cap = net::kClusterRegionBytes / (nthreads + 1);
    cap &= ~(Addr(kBlockBytes) - 1);
    return std::min(widened, cap);
}

} // namespace retcon::api
