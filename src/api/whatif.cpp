#include "api/whatif.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

namespace retcon::api {

namespace {

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end == s.c_str() + s.size();
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "1" || s == "true" || s == "on") {
        out = true;
        return true;
    }
    if (s == "0" || s == "false" || s == "off") {
        out = false;
        return true;
    }
    return false;
}

bool
tmModeFromName(const std::string &s, htm::TMMode &out)
{
    for (int m = 0; m <= static_cast<int>(htm::TMMode::DATM); ++m) {
        auto mode = static_cast<htm::TMMode>(m);
        if (s == htm::tmModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

} // namespace

const char *
reachClassName(ReachClass c)
{
    switch (c) {
      case ReachClass::Nothing:    return "nothing";
      case ReachClass::Conflicts:  return "conflicts";
      case ReachClass::Repairs:    return "repairs";
      case ReachClass::Forwards:   return "forwards";
      case ReachClass::Everything: return "everything";
    }
    return "?";
}

ReachClass
classifyKnob(const std::string &knob)
{
    if (knob == "shards" || knob == "memBanks" || knob == "hostThreads")
        return ReachClass::Nothing;
    if (knob == "backoff" || knob == "contentionSched" ||
        knob == "commitTokenArbitration" ||
        knob == "memBankOccupancy" || knob == "shardBandwidth")
        return ReachClass::Conflicts;
    if (knob == "faultInjectRepairXor")
        return ReachClass::Repairs;
    if (knob == "faultInjectForwardXor")
        return ReachClass::Forwards;
    // seed, workload, nthreads, scale, tm.mode, partitioning — and,
    // deliberately, anything unknown: never under-estimate reach.
    return ReachClass::Everything;
}

bool
applyKnob(RunConfig &cfg, const std::string &knob,
          const std::string &value)
{
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;

    if (knob == "seed") {
        if (!parseU64(value, u))
            return false;
        cfg.seed = u;
    } else if (knob == "workload") {
        if (value.empty())
            return false;
        cfg.workload = value;
    } else if (knob == "nthreads") {
        if (!parseU64(value, u) || u == 0 || u > 64)
            return false;
        cfg.nthreads = static_cast<unsigned>(u);
    } else if (knob == "scale") {
        if (!parseDouble(value, d) || d <= 0.0)
            return false;
        cfg.scale = d;
    } else if (knob == "servicePartitions") {
        if (!parseU64(value, u) || u == 0)
            return false;
        cfg.servicePartitions = static_cast<unsigned>(u);
    } else if (knob == "clusters") {
        if (!parseU64(value, u) || u == 0)
            return false;
        cfg.clusters = static_cast<unsigned>(u);
    } else if (knob == "crossClusterFraction") {
        if (!parseDouble(value, d) || d < 0.0 || d > 1.0)
            return false;
        cfg.crossClusterFraction = d;
    } else if (knob == "tm.mode") {
        htm::TMMode mode;
        if (!tmModeFromName(value, mode))
            return false;
        cfg.tm.mode = mode;
    } else if (knob == "backoff") {
        // backoffPolicyFromName panics on unknown names; gate it.
        if (value != "none" && value != "linear" && value != "exp" &&
            value != "prop")
            return false;
        cfg.tm.backoff.policy = htm::backoffPolicyFromName(value.c_str());
    } else if (knob == "contentionSched") {
        if (!parseBool(value, b))
            return false;
        cfg.contentionSched = b;
    } else if (knob == "commitTokenArbitration") {
        if (!parseBool(value, b))
            return false;
        cfg.tm.commitTokenArbitration = b;
    } else if (knob == "memBankOccupancy") {
        if (!parseU64(value, u))
            return false;
        cfg.memBankOccupancy = u;
    } else if (knob == "shardBandwidth") {
        if (!parseU64(value, u))
            return false;
        cfg.shardBandwidth = static_cast<unsigned>(u);
    } else if (knob == "faultInjectRepairXor") {
        if (!parseU64(value, u))
            return false;
        cfg.tm.faultInjectRepairXor = u;
    } else if (knob == "faultInjectForwardXor") {
        if (!parseU64(value, u))
            return false;
        cfg.tm.faultInjectForwardXor = u;
    } else if (knob == "shards") {
        if (!parseU64(value, u) || u == 0)
            return false;
        cfg.shards = static_cast<unsigned>(u);
    } else if (knob == "memBanks") {
        if (!parseU64(value, u) || u == 0 || u > 64)
            return false;
        cfg.memBanks = static_cast<unsigned>(u);
    } else if (knob == "hostThreads") {
        if (!parseU64(value, u))
            return false;
        cfg.hostThreads = static_cast<unsigned>(u);
    } else {
        return false;
    }
    return true;
}

WhatIfResult
runWhatIf(const RunConfig &base, const std::vector<KnobChange> &changes)
{
    WhatIfResult out;

    // Both runs record with identical trace settings; the engine needs
    // the full stream, so counters-only tracing is promoted.
    RunConfig rec = base;
    rec.trace.enabled = true;
    if (rec.trace.ringCapacity == 0)
        rec.trace.ringCapacity = std::size_t{1} << 20;
    rec.trace.exportJsonPath.clear();
    rec.trace.exportCsvPath.clear();

    RunConfig var = rec;
    out.reach = ReachClass::Nothing;
    for (const KnobChange &c : changes) {
        if (!applyKnob(var, c.knob, c.value)) {
            out.error = "bad knob change: " + c.knob + "=" + c.value;
            return out;
        }
        ReachClass rc = classifyKnob(c.knob);
        if (static_cast<int>(rc) > static_cast<int>(out.reach))
            out.reach = rc;
    }

    rec.trace.captureInto = &out.recorded;
    out.baseResult = runOnce(rec);
    var.trace.captureInto = &out.variant;
    out.variantResult = runOnce(var);

    // Reach frontier of the change set, from the recorded graph.
    trace::DepGraph graph = trace::buildDepGraph(out.recorded);
    switch (out.reach) {
      case ReachClass::Nothing:
        out.firstReachableSeq = trace::kSeqUnreached;
        break;
      case ReachClass::Conflicts:
        out.firstReachableSeq = graph.firstContentionSeq;
        break;
      case ReachClass::Repairs:
        out.firstReachableSeq = graph.firstRepairSeq;
        break;
      case ReachClass::Forwards:
        out.firstReachableSeq = graph.firstForwardSeq;
        break;
      case ReachClass::Everything:
        out.firstReachableSeq = graph.firstSeq;
        break;
    }

    // Splice: recorded prefix verbatim + variant suffix. The prefix
    // proof checks the variant actually reproduced the prefix — if a
    // knob were misclassified, this is where it shows.
    std::vector<trace::Record> prefix =
        trace::reusablePrefix(out.recorded, out.firstReachableSeq);
    out.prefixRecords = prefix.size();
    out.prefixReuse =
        out.recorded.empty()
            ? 1.0
            : static_cast<double>(prefix.size()) /
                  static_cast<double>(out.recorded.size());
    out.prefixProofHeld = prefix.size() <= out.variant.size();
    for (std::size_t i = 0; out.prefixProofHeld && i < prefix.size();
         ++i)
        out.prefixProofHeld =
            trace::recordsIdentical(prefix[i], out.variant[i]);

    out.reconstructed = prefix;
    out.reconstructed.insert(out.reconstructed.end(),
                             out.variant.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(prefix.size(),
                                          out.variant.size())),
                             out.variant.end());

    // Divergence: first record where the streams differ.
    std::size_t n = std::min(out.recorded.size(), out.variant.size());
    std::size_t firstDiff = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (!trace::recordsIdentical(out.recorded[i], out.variant[i])) {
            firstDiff = i;
            break;
        }
    }
    out.bitIdentical = firstDiff == n &&
                       out.recorded.size() == out.variant.size();
    out.diverged = !out.bitIdentical;
    if (out.diverged) {
        if (firstDiff < out.recorded.size())
            out.firstDivergentSeq = out.recorded[firstDiff].seq;
        else if (firstDiff < out.variant.size())
            out.firstDivergentSeq = out.variant[firstDiff].seq;
        // (one stream is a strict prefix of the other otherwise —
        // divergence starts past the shorter stream's end)
        else if (!out.recorded.empty())
            out.firstDivergentSeq = out.recorded.back().seq + 1;
    }

    // Per-block churn: which addresses the change actually moved.
    std::map<Addr, std::int64_t> delta;
    for (const trace::Record &r : out.recorded)
        --delta[blockAddr(r.addr)];
    for (const trace::Record &r : out.variant)
        ++delta[blockAddr(r.addr)];
    for (const auto &[block, d] : delta)
        if (d != 0)
            out.blockDeltas.emplace_back(block, d);
    std::sort(out.blockDeltas.begin(), out.blockDeltas.end(),
              [](const auto &x, const auto &y) {
                  auto ax = x.second < 0 ? -x.second : x.second;
                  auto ay = y.second < 0 ? -y.second : y.second;
                  return ax != ay ? ax > ay : x.first < y.first;
              });

    // The spliced stream must be a coherent history, not just a
    // concatenation: reenact it offline.
    out.reenact = query::replayValidate(out.reconstructed);

    out.ok = true;
    return out;
}

} // namespace retcon::api
