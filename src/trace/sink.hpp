/**
 * @file
 * TraceSink: the subscription point for provenance events.
 *
 * The TM machine holds one nullable sink pointer. With no sink
 * attached, instrumentation reduces to a single null check per
 * event site and no Record is ever constructed (zero cost when
 * disabled). MultiSink fans one event stream out to several
 * consumers (e.g. a ring-buffer recorder plus the reenactment
 * validator).
 */

#ifndef RETCON_TRACE_SINK_HPP
#define RETCON_TRACE_SINK_HPP

#include <vector>

#include "trace/event.hpp"

namespace retcon::trace {

/** Consumer of the provenance event stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called synchronously at every instrumented machine event. */
    virtual void onEvent(const Record &r) = 0;
};

/** Fan-out sink: forwards each event to every registered child. */
class MultiSink final : public TraceSink
{
  public:
    /** Register a child (non-owning; may not be null). */
    void add(TraceSink *child)
    {
        if (child)
            _children.push_back(child);
    }

    void
    onEvent(const Record &r) override
    {
        for (TraceSink *c : _children)
            c->onEvent(r);
    }

    std::size_t size() const { return _children.size(); }

  private:
    std::vector<TraceSink *> _children;
};

} // namespace retcon::trace

#endif // RETCON_TRACE_SINK_HPP
