/**
 * @file
 * TraceRecorder: fixed-capacity ring buffer of provenance records.
 *
 * Keeps the most recent `capacity` events; older events are
 * overwritten and counted as dropped. Storage is allocated once up
 * front, so steady-state recording performs no allocation — suitable
 * for always-on flight-recorder use on long runs, with the full
 * buffer exportable after the fact (trace/export.hpp).
 */

#ifndef RETCON_TRACE_RECORDER_HPP
#define RETCON_TRACE_RECORDER_HPP

#include <functional>
#include <vector>

#include "trace/sink.hpp"

namespace retcon::trace {

/** Ring-buffer sink retaining the newest `capacity` records. */
class TraceRecorder final : public TraceSink
{
  public:
    explicit TraceRecorder(std::size_t capacity = 1 << 16);

    void onEvent(const Record &r) override;

    /** Records currently retained (<= capacity). */
    std::size_t size() const { return _size; }

    /** Total events ever seen (retained + dropped). */
    std::uint64_t totalEvents() const { return _total; }

    /** Events overwritten by wraparound. */
    std::uint64_t dropped() const { return _total - _size; }

    std::size_t capacity() const { return _buf.size(); }

    /** Visit retained records oldest-first. */
    void forEach(const std::function<void(const Record &)> &fn) const;

    /** Copy retained records oldest-first. */
    std::vector<Record> snapshot() const;

    /** Drop everything (capacity is kept). */
    void clear();

  private:
    std::vector<Record> _buf;
    std::size_t _head = 0; ///< Next write position.
    std::size_t _size = 0;
    std::uint64_t _total = 0;
};

} // namespace retcon::trace

#endif // RETCON_TRACE_RECORDER_HPP
