/**
 * @file
 * Offline trace export: serialize a TraceRecorder's retained events as
 * JSON Lines or CSV for analysis outside the simulator (timeline
 * reconstruction, per-address conflict studies, repair audits).
 *
 * JSON Lines (one object per line) is chosen over a single array so
 * multi-gigabyte traces stream through line-oriented tools; the CSV
 * schema is flat with one column per Record field.
 */

#ifndef RETCON_TRACE_EXPORT_HPP
#define RETCON_TRACE_EXPORT_HPP

#include <ostream>
#include <string>

#include "trace/recorder.hpp"

namespace retcon::trace {

/** Stream retained records as JSON Lines. @return records written. */
std::size_t exportJson(const TraceRecorder &rec, std::ostream &os);

/** Stream retained records as CSV (with header). @return records. */
std::size_t exportCsv(const TraceRecorder &rec, std::ostream &os);

/** Write to a file; fatal()s when the file cannot be opened. */
std::size_t exportJsonFile(const TraceRecorder &rec,
                           const std::string &path);
std::size_t exportCsvFile(const TraceRecorder &rec,
                          const std::string &path);

} // namespace retcon::trace

#endif // RETCON_TRACE_EXPORT_HPP
