/**
 * @file
 * Offline trace export: serialize provenance records as JSON Lines or
 * CSV for analysis outside the simulator (timeline reconstruction,
 * per-address conflict studies, repair audits). The field-by-field
 * schema is documented in docs/trace-format.md.
 *
 * JSON Lines (one object per line) is chosen over a single array so
 * multi-gigabyte traces stream through line-oriented tools; the CSV
 * schema is flat with one column per Record field.
 *
 * Sources: a single TraceRecorder's retained ring, or any
 * vector<Record> — e.g. ShardMux::mergedSnapshot(), the globally
 * ordered merge of a sharded run's per-shard rings.
 */

#ifndef RETCON_TRACE_EXPORT_HPP
#define RETCON_TRACE_EXPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace retcon::trace {

/** Stable operator spelling ("<", "<=", "==", ...). */
const char *cmpOpName(rtc::CmpOp op);

/**
 * Parse an operator back from its spelling. @return false (leaving
 * @p out untouched) on unknown spellings — the trace loader's
 * corrupted-input detection path (src/query/loader).
 */
bool cmpOpFromName(const char *name, rtc::CmpOp &out);

/** Serialize one record as a single JSON object (no newline). */
void writeJsonRecord(const Record &r, std::ostream &os);

/** Serialize one record as a CSV row (no newline). */
void writeCsvRecord(const Record &r, std::ostream &os);

/** The CSV header row matching writeCsvRecord (no newline). */
const char *csvHeader();

/**
 * Window a record stream on the machine-global `seq` key: keep
 * records with seq_min <= seq < seq_max. A bound of 0 means
 * unbounded on that side, so (0, 0) copies everything — the
 * whole-buffer export behaviour. Records are assumed (and kept)
 * in their input order; on a merged snapshot that is ascending seq,
 * so the result is the contiguous sub-trace of the window
 * (docs/trace-format.md, "Windowed export").
 */
std::vector<Record> seqWindow(const std::vector<Record> &recs,
                              std::uint64_t seq_min,
                              std::uint64_t seq_max);

/** Stream retained records as JSON Lines. @return records written. */
std::size_t exportJson(const TraceRecorder &rec, std::ostream &os);
std::size_t exportJson(const std::vector<Record> &recs, std::ostream &os);

/** Stream retained records as CSV (with header). @return records. */
std::size_t exportCsv(const TraceRecorder &rec, std::ostream &os);
std::size_t exportCsv(const std::vector<Record> &recs, std::ostream &os);

/** Write to a file; fatal()s when the file cannot be opened. */
std::size_t exportJsonFile(const TraceRecorder &rec,
                           const std::string &path);
std::size_t exportJsonFile(const std::vector<Record> &recs,
                           const std::string &path);
std::size_t exportCsvFile(const TraceRecorder &rec,
                          const std::string &path);
std::size_t exportCsvFile(const std::vector<Record> &recs,
                          const std::string &path);

} // namespace retcon::trace

#endif // RETCON_TRACE_EXPORT_HPP
