/**
 * @file
 * Dependence-graph extraction over a recorded provenance stream: the
 * constraint/forward-chain graph the what-if reenactment service walks
 * to bound the reach of a change (src/api/whatif, docs/what-if.md).
 *
 * The stream already *is* a dependence order — machine-global `seq`
 * is the emission order of every observable machine step — so the
 * graph extractor's job is to name the cross-attempt interactions
 * inside it:
 *
 *  - **forward edges**: a DATM `forward` record names its producing
 *    attempt explicitly (producer uid -> consumer uid);
 *  - **overlap edges**: two attempts concurrently touching the same
 *    coherence block — the interaction every conflict, NACK, token
 *    steal, and repair flows through. Detected by walking the stream
 *    in seq order with a per-block set of in-flight touchers;
 *  - **contention markers**: records that only exist because
 *    attempts interacted (`abort`, `token-wait`, `block-lost`,
 *    `forward`).
 *
 * From these the extractor derives the *first-interaction frontier*:
 * the earliest seq at which any cross-attempt interaction is visible.
 * A change that can only act through contention (a backoff policy, a
 * scheduler knob, commit-token arbitration, an occupancy model)
 * provably cannot perturb any record before that frontier — the
 * machine executes identically until the first step where two
 * attempts meet — so the recorded prefix up to the frontier is
 * reusable verbatim (docs/what-if.md, "Reach semantics").
 */

#ifndef RETCON_TRACE_GRAPH_HPP
#define RETCON_TRACE_GRAPH_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace retcon::trace {

/** Sentinel seq for "no such record exists in the stream". */
inline constexpr std::uint64_t kSeqUnreached = ~std::uint64_t{0};

/** One transaction attempt's interval in the stream. */
struct GraphAttempt {
    std::uint64_t uid = 0;
    CoreId core = 0;
    std::uint64_t beginSeq = 0;
    /** Seq of the commit/abort record; kSeqUnreached while in flight
     *  at end of stream. */
    std::uint64_t endSeq = kSeqUnreached;
    bool committed = false;
    bool aborted = false;
    /** Blocks this attempt touched (tracked or eager). */
    std::vector<Addr> blocks;
};

/** One cross-attempt dependence edge. */
struct GraphEdge {
    enum class Kind : std::uint8_t {
        Forward, ///< DATM value flow: from's store fed to's load.
        Overlap, ///< Both attempts in flight on the same block.
    };
    Kind kind = Kind::Overlap;
    std::uint64_t fromUid = 0;
    std::uint64_t toUid = 0;
    Addr block = 0;        ///< The shared block (Forward: its block).
    std::uint64_t seq = 0; ///< Seq of the record that created the edge.
};

/** The extracted graph plus its reach frontiers. */
struct DepGraph {
    std::unordered_map<std::uint64_t, GraphAttempt> attempts;
    std::vector<GraphEdge> edges;

    /** Seq of the first record in the stream (kSeqUnreached if empty). */
    std::uint64_t firstSeq = kSeqUnreached;
    /**
     * The first-interaction frontier: min seq over every overlap
     * edge, forward record, abort, token-wait, and block-lost.
     * kSeqUnreached when the run is entirely conflict-free.
     */
    std::uint64_t firstContentionSeq = kSeqUnreached;
    /** First `repair` record (reach frontier of repair-path knobs). */
    std::uint64_t firstRepairSeq = kSeqUnreached;
    /** First `forward` record (reach frontier of forward-path knobs). */
    std::uint64_t firstForwardSeq = kSeqUnreached;
};

/**
 * Extract the dependence graph of @p recs. The stream must be in
 * ascending seq order (any merged snapshot or export is).
 */
DepGraph buildDepGraph(const std::vector<Record> &recs);

/**
 * The provably-unreached prefix of @p recs for a change whose first
 * reachable record is @p first_reachable_seq: every record with
 * seq < first_reachable_seq, copied in order. Pass kSeqUnreached to
 * reuse the whole stream.
 */
std::vector<Record> reusablePrefix(const std::vector<Record> &recs,
                                   std::uint64_t first_reachable_seq);

} // namespace retcon::trace

#endif // RETCON_TRACE_GRAPH_HPP
