/**
 * @file
 * Provenance event vocabulary for the trace/audit subsystem.
 *
 * Every record describes one observable step of a transaction's
 * lifecycle on the shared TM machine, at the granularity the RETCON
 * repair rules operate on (words for values, blocks for tracking).
 * Together the records of one attempt form a symbolic log that is
 * sufficient to *reenact* the transaction's commit: re-evaluate every
 * symbolic store and recorded constraint against the architectural
 * memory and check that the machine's repaired commit wrote exactly
 * the values the log implies (see trace/reenact.hpp).
 */

#ifndef RETCON_TRACE_EVENT_HPP
#define RETCON_TRACE_EVENT_HPP

#include <cstdint>

#include "htm/types.hpp"
#include "retcon/interval.hpp"
#include "retcon/symbolic.hpp"
#include "sim/types.hpp"

namespace retcon::trace {

/** What happened. One enumerator per instrumentation point. */
enum class EventKind : std::uint8_t {
    TxBegin,     ///< Transaction (re)started; a = timestamp,
                 ///< b = attempt uid.
    Load,        ///< Concrete load; addr = byte address, a = value.
    SymLoad,     ///< Symbolic load; addr, a = value, sym = root+delta.
    Store,       ///< Eager (non-symbolic) store; addr, a = value,
                 ///< b = resulting word value, vid = write seq.
    Forward,     ///< DATM forwarded-data load: the value came from
                 ///< another in-flight transaction's speculative
                 ///< store; addr = word, a = delivered word value,
                 ///< b = producer attempt uid, vid = value-id of the
                 ///< producing store (its machine-global write seq).
    SymStore,    ///< SSB insert/update; addr = word, a = concrete, sym.
    Freeze,      ///< Tracked word input fixed by a local eager store;
                 ///< addr = word, a = validated pre-store value.
    Pin,         ///< Degrade to value validation (§4.2 equality pin);
                 ///< addr = root word, a = required initial value.
    Constraint,  ///< Interval constraint recorded; addr = root word,
                 ///< a = rhs (as signed), cmp = operator.
    BlockLost,   ///< Tracked block stolen mid-transaction; addr = block.
    CommitStart, ///< Commit process entered. With commit-token
                 ///< arbitration modeled, token acquisition happens
                 ///< after this record — TokenWait records for the
                 ///< same attempt may follow it.
    TokenWait,   ///< Commit stalled on a directory-bank commit token;
                 ///< addr = bank index, a = holding core, b = the
                 ///< full bank mask the commit needs. Emitted once per
                 ///< NACKed acquisition attempt; informational for the
                 ///< validator (token waits carry no value flow).
    CommitDrain, ///< Pre-commit walk done, all tracked blocks
                 ///< reacquired and protected; the SSB drain begins.
    Repair,      ///< Commit-time repaired store; addr = word,
                 ///< a = memory value before, b = value written, sym =
                 ///< the symbolic value that produced b (hasSym).
    Commit,      ///< Transaction committed.
    Abort,       ///< Transaction aborted; aux = htm::AbortCause,
                 ///< addr = blamed block (0 when no block is to
                 ///< blame, e.g. constraint violations).
    UserMark,    ///< Workload annotation via WorkerCtx; a = mark id.
};

/** Short stable name (used by the exporters and reports). */
const char *eventKindName(EventKind k);

/**
 * Parse a kind back from its stable name ("begin", "sym-load", ...).
 * @return false (leaving @p out untouched) on unknown names — the
 * trace loader's corrupted-input detection path (src/query/loader).
 */
bool eventKindFromName(const char *name, EventKind &out);

/**
 * Commit-record aux bit: the committing transaction consumed a value
 * forwarded from another in-flight transaction (DATM). Each such
 * consumption also emitted a Forward record naming the producing
 * attempt and store, so the reenactment validator re-derives the
 * whole forwarding chain at commit instead of trusting architectural
 * memory (docs/trace-format.md).
 */
inline constexpr std::uint8_t kCommitAuxDatmForwarded = 0x1;

/** One fixed-size trace record (POD; cheap to buffer in bulk). */
struct Record {
    Cycle cycle = 0;
    CoreId core = 0;
    EventKind kind = EventKind::TxBegin;
    Addr addr = 0;           ///< Word/block/byte address (see kind).
    Word a = 0;              ///< Primary value.
    Word b = 0;              ///< Secondary value (Repair: written).
    rtc::SymTag sym{};       ///< Symbolic tag, when hasSym.
    bool hasSym = false;
    rtc::CmpOp cmp = rtc::CmpOp::EQ; ///< Constraint operator.
    std::uint8_t aux = 0;    ///< AbortCause, or per-kind flag bits.
    /// Machine-global emission order. Same-cycle records from
    /// different cores (and therefore different shard recorders)
    /// merge deterministically on this key.
    std::uint64_t seq = 0;
    /// Value-id: the machine-global write sequence of the store this
    /// record performs (Store) or consumes (Forward). Matches a
    /// Forward record to the exact producing store so forwarding
    /// chains re-derive without ambiguity; 0 for other kinds.
    std::uint64_t vid = 0;
};

/**
 * Field-by-field equality (Records are PODs with padding, so memcmp
 * is not reliable). The bit-identity currency of the what-if engine
 * and the determinism tests.
 */
inline bool
recordsIdentical(const Record &x, const Record &y)
{
    return x.cycle == y.cycle && x.core == y.core && x.kind == y.kind &&
           x.addr == y.addr && x.a == y.a && x.b == y.b &&
           x.hasSym == y.hasSym &&
           (!x.hasSym || (x.sym.root == y.sym.root &&
                          x.sym.delta == y.sym.delta &&
                          x.sym.size == y.sym.size)) &&
           x.cmp == y.cmp && x.aux == y.aux && x.seq == y.seq &&
           x.vid == y.vid;
}

} // namespace retcon::trace

#endif // RETCON_TRACE_EVENT_HPP
