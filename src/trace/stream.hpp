/**
 * @file
 * Streaming binary trace format (.rtt): an append-only framed record
 * stream written while the run is live, so trace length is bounded by
 * disk instead of ring memory (docs/streaming.md).
 *
 * Layout (all integers little-endian):
 *
 *   file header (16 bytes)
 *     [0..7]   magic "RTCSTRM1"
 *     [8..9]   u16 format version (1)
 *     [10..11] u16 header length in bytes (>= 16; readers skip extra)
 *     [12..15] u32 flags (bit 0: seq values are dense — every record
 *              present, machine-global seq N, N+1, N+2, ...)
 *
 *   frame (82 bytes per record)
 *     [0..1]   sync marker 0xA5 0x5C
 *     [2..3]   u16 payload length (66 for version 1)
 *     [4..11]  u64 machine-global seq
 *     [12..77] payload (fixed 66-byte Record image, see stream.cpp)
 *     [78..81] u32 CRC-32 (IEEE) over bytes [2..77] — length, seq,
 *              and payload; the sync marker is excluded so a marker
 *              found by scanning is validated by the checksum.
 *
 * The framing is escape-free: payload bytes are written verbatim, so
 * a reader that loses sync (corruption, torn write, mid-file seek)
 * resynchronizes by scanning for the sync marker and accepting the
 * first candidate whose length and checksum validate. The per-frame
 * seq then tells it exactly how many records the gap swallowed.
 */

#ifndef RETCON_TRACE_STREAM_HPP
#define RETCON_TRACE_STREAM_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace retcon::trace {

/** File-header magic; first byte 'R' is the loader's sniff key. */
inline constexpr char kStreamMagic[8] = {'R', 'T', 'C', 'S',
                                         'T', 'R', 'M', '1'};
inline constexpr std::uint16_t kStreamVersion = 1;
inline constexpr std::size_t kStreamHeaderBytes = 16;
/** Header flag bit 0: seqs are dense (no record ever dropped). */
inline constexpr std::uint32_t kStreamFlagDenseSeq = 0x1;

inline constexpr unsigned char kFrameSync0 = 0xA5;
inline constexpr unsigned char kFrameSync1 = 0x5C;
inline constexpr std::size_t kFramePayloadBytes = 66;
/** sync(2) + length(2) + seq(8) + payload + crc(4). */
inline constexpr std::size_t kFrameBytes = 2 + 2 + 8 +
                                           kFramePayloadBytes + 4;

/** CRC-32 (IEEE 802.3, poly 0xEDB88320), table-driven, no deps. */
std::uint32_t crc32(const unsigned char *data, std::size_t n);

/** Serialize one record as a complete frame (sync..crc). */
void encodeFrame(const Record &r, unsigned char out[kFrameBytes]);

/**
 * Decode a frame payload back into @p out (seq comes from the frame
 * header, not the payload — the caller sets it). @return false when
 * the payload is structurally invalid: unknown event kind, unknown
 * constraint operator, undefined flag bits, or an abort record whose
 * cause byte names no htm::AbortCause.
 */
bool decodePayload(const unsigned char *payload, Record &out);

/** Serialize the 16-byte file header. */
void encodeStreamHeader(bool dense_seq,
                        unsigned char out[kStreamHeaderBytes]);

/**
 * TraceSink that appends every record to an .rtt file as it happens.
 * Buffered: frames accumulate in memory and are written out in
 * batches, so the simulation only stalls on actual disk writes —
 * Stats::flushWallMs is exactly that stall time. The writer performs
 * no validation (the mux feed is ascending by construction; the
 * reader is the integrity check), and fatal()s on I/O errors — a
 * trace that silently stopped recording is worse than no run.
 */
class StreamWriter final : public TraceSink
{
  public:
    struct Stats {
        std::uint64_t records = 0;
        std::uint64_t bytesWritten = 0; ///< Includes the file header.
        std::uint64_t flushes = 0;      ///< Batched write() calls.
        double flushWallMs = 0.0;       ///< Host time blocked writing.
    };

    /**
     * @param dense_seq sets the header's dense flag: a live
     * machine-attached writer sees every record (seq 1, 2, 3, ...),
     * so a reader may treat any gap as data loss. Pass false when
     * writing a windowed/merged subset.
     */
    explicit StreamWriter(const std::string &path, bool dense_seq = true,
                          std::size_t buffer_bytes = 1 << 16);
    ~StreamWriter() override;
    StreamWriter(const StreamWriter &) = delete;
    StreamWriter &operator=(const StreamWriter &) = delete;

    void onEvent(const Record &r) override;

    /** Write out any buffered frames now. */
    void flush();

    /** Flush and close the file; further records are an error. */
    void close();

    const Stats &stats() const { return _stats; }

  private:
    std::FILE *_f = nullptr;
    std::string _path;
    std::vector<unsigned char> _buf;
    std::size_t _bufLimit;
    Stats _stats;
};

/** One integrity fault detected while reading a stream. */
struct StreamFault {
    enum class Kind : std::uint8_t {
        BadMagic,    ///< File does not start with the .rtt header.
        BadVersion,  ///< Header version this reader cannot parse.
        BadSync,     ///< Expected frame start, found other bytes.
        BadLength,   ///< Frame length field is not a v1 payload size.
        BadChecksum, ///< Frame CRC mismatch (corrupted in place).
        BadPayload,  ///< CRC valid but the payload decodes to no
                     ///< legal record (hand-crafted/wrong-version).
        SeqOrder,    ///< Frame seq <= the previous frame's seq.
        SeqGap,      ///< Dense stream skipped seqs: records lost.
                     ///< The record itself is intact and is still
                     ///< delivered by the following next() call.
        Truncated,   ///< Stream ends mid-frame (torn final write).
    };
    Kind kind = Kind::BadSync;
    std::uint64_t offset = 0;      ///< Byte offset of the fault.
    std::uint64_t recordIndex = 0; ///< Records yielded before it.
    std::uint64_t prevSeq = 0;     ///< Last good seq (0 = none yet).
    std::uint64_t seq = 0;         ///< Faulting frame's seq, if known.

    /** Offset-precise one-line diagnostic. */
    std::string describe() const;
};

/**
 * Incremental .rtt reader: yields one record per next() call from a
 * bounded internal buffer, so resident memory never depends on trace
 * length. Two modes:
 *
 *  - strict (default): the first fault is terminal — next() reports
 *    it once and then returns End. This is the loader's mode: a
 *    corrupted or truncated trace must not masquerade as a recording.
 *  - resync: a fault is reported, then the reader scans forward for
 *    the next checksum-valid frame and continues — the
 *    flight-recorder mode, where the records after a torn region are
 *    still worth having. bytesSkipped() totals what the scans
 *    discarded.
 */
class StreamReader
{
  public:
    enum class Status : std::uint8_t {
        Record, ///< @p out holds the next record.
        Fault,  ///< @p fault describes a detected integrity fault.
        End,    ///< Clean end of stream (or terminal after strict
                ///< fault).
    };

    explicit StreamReader(const std::string &path, bool resync = false);
    ~StreamReader();
    StreamReader(const StreamReader &) = delete;
    StreamReader &operator=(const StreamReader &) = delete;

    /** File opened successfully (false: next() returns End only). */
    bool ok() const { return _f != nullptr; }

    Status next(Record &out, StreamFault &fault);

    /** Header dense flag (valid after the first next()). */
    bool denseSeq() const { return _dense; }
    std::uint64_t recordsRead() const { return _records; }
    std::uint64_t faultsSeen() const { return _faults; }
    std::uint64_t bytesSkipped() const { return _skipped; }

  private:
    std::size_t avail() const { return _buf.size() - _pos; }
    void refill(std::size_t want);
    std::uint64_t offsetAt(std::size_t rel) const;
    Status fail(StreamFault &fault, StreamFault::Kind kind,
                std::uint64_t offset, std::uint64_t seq);
    bool parseHeader(StreamFault &fault, Status &status);
    /** Resync scan: drop bytes until a checksum-valid frame heads
     *  the buffer (or EOF). */
    void scanToFrame();
    /** Frame at _pos is complete and checksum-valid. */
    bool frameValid();

    std::FILE *_f = nullptr;
    bool _resync;
    bool _headerParsed = false;
    bool _done = false;
    bool _dense = false;
    bool _eof = false;
    std::vector<unsigned char> _buf;
    std::size_t _pos = 0;       ///< Read cursor into _buf.
    std::uint64_t _base = 0;    ///< File offset of _buf[0].
    std::uint64_t _lastSeq = 0;
    std::uint64_t _records = 0;
    std::uint64_t _faults = 0;
    std::uint64_t _skipped = 0;
    bool _pending = false; ///< A SeqGap left its record undelivered.
    Record _pendingRec{};
};

/**
 * Export @p recs as one .rtt stream (the binary sibling of
 * exportJsonFile/exportCsvFile). The dense header flag is set when
 * the records' seqs are actually consecutive — true for a complete
 * capture, false for a windowed or wrapped snapshot.
 * @return records written.
 */
std::size_t exportBinaryFile(const std::vector<Record> &recs,
                             const std::string &path);

} // namespace retcon::trace

#endif // RETCON_TRACE_STREAM_HPP
