/**
 * @file
 * ShardMux: per-shard trace capture for the sharded cluster.
 *
 * One machine-wide provenance stream fans into:
 *  - one TraceRecorder ring per event-queue shard (a record is homed
 *    on the shard of the core that produced it), so flight-recorder
 *    memory scales out with the cluster instead of one global ring
 *    thrashing under service-scale traffic;
 *  - per-shard lifetime counters (events, commits, aborts, repairs,
 *    DATM-forwarded commits) that survive ring wraparound — the
 *    inputs of bench/service_scalability's per-shard repair rates;
 *  - any number of downstream sinks, fed live in machine order.
 *
 * The ReenactmentValidator attaches downstream: it must observe the
 * *merged* stream in global order (its per-core symbolic logs snapshot
 * architectural memory at CommitDrain, which only exists live), and
 * the machine emits exactly that order because the sharded queue
 * dispatches events in global (cycle, seq) order. For offline use,
 * mergedSnapshot() reassembles the per-shard rings into one globally
 * ordered trace on the records' machine-global `seq` key.
 *
 * Threading contract (single writer): onEvent() mutates the lifetime
 * counters, the rings, and the core->shard cache with plain,
 * unsynchronized accesses. Callers must guarantee that at most one
 * thread is inside onEvent() at a time, with a happens-before edge
 * between successive calls from different threads. Both engines
 * satisfy this by construction — the sequential engine runs every
 * callback on one thread, and the host-parallel engine serializes
 * callbacks behind its migrating dispatch token, whose
 * release/acquire handoff provides the edge (docs/parallel-engine.md).
 * Debug builds enforce the contract with a serial-section assertion;
 * the read-side accessors (counters(), mergedSnapshot(), ...) are
 * safe only after the run completes (or from the same serialized
 * context).
 */

#ifndef RETCON_TRACE_SHARD_MUX_HPP
#define RETCON_TRACE_SHARD_MUX_HPP

#include <functional>
#include <memory>
#include <vector>

#include "sim/serial_guard.hpp"
#include "trace/recorder.hpp"

namespace retcon::trace {

/** Fan provenance events into per-shard rings + counters. */
class ShardMux final : public TraceSink
{
  public:
    /** Maps an emitting core to its home shard. */
    using ShardOfFn = std::function<unsigned(CoreId)>;

    /** Lifetime per-shard counters (immune to ring wraparound). */
    struct Counters {
        std::uint64_t events = 0;
        std::uint64_t commits = 0;
        std::uint64_t aborts = 0;
        std::uint64_t repairs = 0;
        std::uint64_t forwards = 0; ///< DATM forwarded-value loads.
        std::uint64_t datmForwardedCommits = 0;
    };

    /**
     * @p ring_capacity is per shard; 0 keeps counters only (no
     * retention), matching TraceOptions::ringCapacity semantics.
     */
    ShardMux(unsigned nshards, ShardOfFn shard_of,
             std::size_t ring_capacity);

    /** Attach a live consumer of the merged stream (non-owning). */
    void addDownstream(TraceSink *sink);

    void onEvent(const Record &r) override;

    unsigned numShards() const { return _nshards; }

    /** Shard @p s's ring. Only valid when ring capacity is nonzero. */
    const TraceRecorder &recorder(unsigned s) const;

    const Counters &counters(unsigned s) const;

    /** Total events seen across all shards. */
    std::uint64_t totalEvents() const;

    /**
     * Merge the per-shard rings into one globally ordered trace
     * (ascending machine `seq`). Each ring retains its own newest
     * window, so after wraparound the merge is the union of per-shard
     * windows, not a contiguous global suffix.
     */
    std::vector<Record> mergedSnapshot() const;

  private:
    unsigned _nshards;
    ShardOfFn _shardOf;
    /// Core -> shard, resolved through _shardOf once per core ever
    /// (the mapping is fixed for a cluster's lifetime) so the hot
    /// onEvent path avoids a std::function call per record.
    std::vector<std::uint8_t> _shardOfCore;
    std::vector<std::unique_ptr<TraceRecorder>> _rings;
    std::vector<Counters> _counters;
    std::vector<TraceSink *> _downstream;
    /// Debug-only single-writer enforcement for onEvent (see the
    /// threading contract in the file header).
    RETCON_SERIAL_SECTION(_serial);

    unsigned shardOfCore(CoreId core);
};

} // namespace retcon::trace

#endif // RETCON_TRACE_SHARD_MUX_HPP
