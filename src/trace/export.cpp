#include "trace/export.hpp"

#include <fstream>
#include <string_view>

#include "sim/logging.hpp"

namespace retcon::trace {

const char *
cmpOpName(rtc::CmpOp op)
{
    switch (op) {
      case rtc::CmpOp::LT: return "<";
      case rtc::CmpOp::LE: return "<=";
      case rtc::CmpOp::EQ: return "==";
      case rtc::CmpOp::NE: return "!=";
      case rtc::CmpOp::GE: return ">=";
      case rtc::CmpOp::GT: return ">";
    }
    return "?";
}

bool
cmpOpFromName(const char *name, rtc::CmpOp &out)
{
    for (int op = 0; op <= static_cast<int>(rtc::CmpOp::GT); ++op) {
        auto cmp = static_cast<rtc::CmpOp>(op);
        if (std::string_view(cmpOpName(cmp)) == name) {
            out = cmp;
            return true;
        }
    }
    return false;
}

std::vector<Record>
seqWindow(const std::vector<Record> &recs, std::uint64_t seq_min,
          std::uint64_t seq_max)
{
    std::vector<Record> out;
    for (const Record &r : recs) {
        if (r.seq < seq_min)
            continue;
        if (seq_max != 0 && r.seq >= seq_max)
            continue;
        out.push_back(r);
    }
    return out;
}

void
writeJsonRecord(const Record &r, std::ostream &os)
{
    os << "{\"cycle\":" << r.cycle << ",\"seq\":" << r.seq
       << ",\"core\":" << r.core << ",\"kind\":\""
       << eventKindName(r.kind) << "\""
       << ",\"addr\":" << r.addr << ",\"a\":" << r.a << ",\"b\":" << r.b;
    if (r.hasSym) {
        os << ",\"sym\":{\"root\":" << r.sym.root
           << ",\"delta\":" << r.sym.delta << "}";
    }
    if (r.vid != 0)
        os << ",\"vid\":" << r.vid;
    if (r.kind == EventKind::Forward)
        os << ",\"producer_uid\":" << r.b;
    if (r.kind == EventKind::Constraint)
        os << ",\"cmp\":\"" << cmpOpName(r.cmp) << "\"";
    if (r.kind == EventKind::Abort) {
        os << ",\"cause\":\""
           << htm::abortCauseName(static_cast<htm::AbortCause>(r.aux))
           << "\"";
        if (r.addr != 0)
            os << ",\"blame\":" << r.addr;
    }
    if (r.kind == EventKind::Commit)
        os << ",\"datm_forwarded\":"
           << ((r.aux & kCommitAuxDatmForwarded) ? "true" : "false");
    if (r.kind == EventKind::UserMark)
        os << ",\"annotation\":" << r.a;
    os << "}";
}

void
writeCsvRecord(const Record &r, std::ostream &os)
{
    os << r.cycle << ',' << r.core << ',' << eventKindName(r.kind) << ','
       << r.addr << ',' << r.a << ',' << r.b << ',';
    if (r.hasSym)
        os << r.sym.root << ',' << r.sym.delta;
    else
        os << ',';
    os << ',' << cmpOpName(r.cmp) << ',' << static_cast<unsigned>(r.aux)
       << ',' << r.seq << ','
       << (r.kind == EventKind::Commit &&
                   (r.aux & kCommitAuxDatmForwarded)
               ? 1
               : 0)
       << ',' << r.vid << ',';
    // CSV parity with the JSON `annotation` decode: the mark id of a
    // `mark` record, empty for every other kind.
    if (r.kind == EventKind::UserMark)
        os << r.a;
}

const char *
csvHeader()
{
    return "cycle,core,kind,addr,a,b,sym_root,sym_delta,cmp,aux,seq,"
           "datm_forwarded,vid,annotation";
}

std::size_t
exportJson(const TraceRecorder &rec, std::ostream &os)
{
    std::size_t n = 0;
    rec.forEach([&](const Record &r) {
        writeJsonRecord(r, os);
        os << '\n';
        ++n;
    });
    return n;
}

std::size_t
exportJson(const std::vector<Record> &recs, std::ostream &os)
{
    for (const Record &r : recs) {
        writeJsonRecord(r, os);
        os << '\n';
    }
    return recs.size();
}

std::size_t
exportCsv(const TraceRecorder &rec, std::ostream &os)
{
    os << csvHeader() << '\n';
    std::size_t n = 0;
    rec.forEach([&](const Record &r) {
        writeCsvRecord(r, os);
        os << '\n';
        ++n;
    });
    return n;
}

std::size_t
exportCsv(const std::vector<Record> &recs, std::ostream &os)
{
    os << csvHeader() << '\n';
    for (const Record &r : recs) {
        writeCsvRecord(r, os);
        os << '\n';
    }
    return recs.size();
}

namespace {

template <typename Source, typename Fn>
std::size_t
exportToFile(const Source &src, const std::string &path, Fn fn)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace export file %s", path.c_str());
    return fn(src, os);
}

} // namespace

std::size_t
exportJsonFile(const TraceRecorder &rec, const std::string &path)
{
    return exportToFile(rec, path, [](const TraceRecorder &r,
                                      std::ostream &os) {
        return exportJson(r, os);
    });
}

std::size_t
exportJsonFile(const std::vector<Record> &recs, const std::string &path)
{
    return exportToFile(recs, path, [](const std::vector<Record> &r,
                                       std::ostream &os) {
        return exportJson(r, os);
    });
}

std::size_t
exportCsvFile(const TraceRecorder &rec, const std::string &path)
{
    return exportToFile(rec, path, [](const TraceRecorder &r,
                                      std::ostream &os) {
        return exportCsv(r, os);
    });
}

std::size_t
exportCsvFile(const std::vector<Record> &recs, const std::string &path)
{
    return exportToFile(recs, path, [](const std::vector<Record> &r,
                                       std::ostream &os) {
        return exportCsv(r, os);
    });
}

} // namespace retcon::trace
