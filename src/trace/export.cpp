#include "trace/export.hpp"

#include <fstream>

#include "sim/logging.hpp"

namespace retcon::trace {

namespace {

const char *
cmpOpName(rtc::CmpOp op)
{
    switch (op) {
      case rtc::CmpOp::LT: return "<";
      case rtc::CmpOp::LE: return "<=";
      case rtc::CmpOp::EQ: return "==";
      case rtc::CmpOp::NE: return "!=";
      case rtc::CmpOp::GE: return ">=";
      case rtc::CmpOp::GT: return ">";
    }
    return "?";
}

} // namespace

std::size_t
exportJson(const TraceRecorder &rec, std::ostream &os)
{
    std::size_t n = 0;
    rec.forEach([&](const Record &r) {
        os << "{\"cycle\":" << r.cycle << ",\"core\":" << r.core
           << ",\"kind\":\"" << eventKindName(r.kind) << "\""
           << ",\"addr\":" << r.addr << ",\"a\":" << r.a
           << ",\"b\":" << r.b;
        if (r.hasSym) {
            os << ",\"sym\":{\"root\":" << r.sym.root
               << ",\"delta\":" << r.sym.delta << "}";
        }
        if (r.kind == EventKind::Constraint)
            os << ",\"cmp\":\"" << cmpOpName(r.cmp) << "\"";
        if (r.kind == EventKind::Abort)
            os << ",\"cause\":\""
               << htm::abortCauseName(
                      static_cast<htm::AbortCause>(r.aux))
               << "\"";
        os << "}\n";
        ++n;
    });
    return n;
}

std::size_t
exportCsv(const TraceRecorder &rec, std::ostream &os)
{
    os << "cycle,core,kind,addr,a,b,sym_root,sym_delta,cmp,aux\n";
    std::size_t n = 0;
    rec.forEach([&](const Record &r) {
        os << r.cycle << ',' << r.core << ','
           << eventKindName(r.kind) << ',' << r.addr << ',' << r.a
           << ',' << r.b << ',';
        if (r.hasSym)
            os << r.sym.root << ',' << r.sym.delta;
        else
            os << ',';
        os << ',' << cmpOpName(r.cmp) << ','
           << static_cast<unsigned>(r.aux) << '\n';
        ++n;
    });
    return n;
}

std::size_t
exportJsonFile(const TraceRecorder &rec, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace export file %s", path.c_str());
    return exportJson(rec, os);
}

std::size_t
exportCsvFile(const TraceRecorder &rec, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace export file %s", path.c_str());
    return exportCsv(rec, os);
}

} // namespace retcon::trace
