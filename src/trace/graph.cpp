#include "trace/graph.hpp"

#include <algorithm>

namespace retcon::trace {

namespace {

/** Does this record touch a coherence block through its addr? */
bool
touchesBlock(EventKind k)
{
    switch (k) {
      case EventKind::Load:
      case EventKind::SymLoad:
      case EventKind::Store:
      case EventKind::SymStore:
      case EventKind::Freeze:
      case EventKind::Pin:
      case EventKind::Constraint:
      case EventKind::Forward:
      case EventKind::Repair:
      case EventKind::BlockLost:
        return true;
      default:
        return false;
    }
}

/** Does this record only exist because attempts interacted? */
bool
contentionMarker(EventKind k)
{
    switch (k) {
      case EventKind::Forward:
      case EventKind::TokenWait:
      case EventKind::BlockLost:
      case EventKind::Abort:
        return true;
      default:
        return false;
    }
}

void
lower(std::uint64_t &frontier, std::uint64_t seq)
{
    if (seq < frontier)
        frontier = seq;
}

} // namespace

DepGraph
buildDepGraph(const std::vector<Record> &recs)
{
    DepGraph g;
    if (recs.empty())
        return g;
    g.firstSeq = recs.front().seq;

    // Core -> uid of its in-flight attempt (0 = idle).
    std::unordered_map<CoreId, std::uint64_t> inFlight;
    // Block -> uids of in-flight attempts that touched it.
    std::unordered_map<Addr, std::vector<std::uint64_t>> touchers;

    for (const Record &r : recs) {
        if (contentionMarker(r.kind))
            lower(g.firstContentionSeq, r.seq);
        if (r.kind == EventKind::Repair)
            lower(g.firstRepairSeq, r.seq);
        if (r.kind == EventKind::Forward)
            lower(g.firstForwardSeq, r.seq);

        if (r.kind == EventKind::TxBegin) {
            std::uint64_t uid = r.b;
            inFlight[r.core] = uid;
            GraphAttempt &at = g.attempts[uid];
            at.uid = uid;
            at.core = r.core;
            at.beginSeq = r.seq;
            continue;
        }

        auto fit = inFlight.find(r.core);
        std::uint64_t uid = fit == inFlight.end() ? 0 : fit->second;

        if (r.kind == EventKind::Commit || r.kind == EventKind::Abort) {
            if (uid != 0) {
                GraphAttempt &at = g.attempts[uid];
                at.endSeq = r.seq;
                at.committed = r.kind == EventKind::Commit;
                at.aborted = r.kind == EventKind::Abort;
                for (Addr b : at.blocks) {
                    auto &v = touchers[b];
                    v.erase(std::remove(v.begin(), v.end(), uid),
                            v.end());
                }
                inFlight.erase(r.core);
            }
            continue;
        }

        if (uid == 0 || !touchesBlock(r.kind))
            continue;

        GraphAttempt &at = g.attempts[uid];
        Addr block = blockAddr(r.addr);
        auto &present = touchers[block];
        bool firstTouch = std::find(at.blocks.begin(), at.blocks.end(),
                                    block) == at.blocks.end();
        if (firstTouch) {
            // One overlap edge per (other attempt, block) pair: every
            // attempt already in flight on this block now shares it
            // with us.
            for (std::uint64_t other : present) {
                g.edges.push_back({GraphEdge::Kind::Overlap, other,
                                   uid, block, r.seq});
                lower(g.firstContentionSeq, r.seq);
            }
            present.push_back(uid);
            at.blocks.push_back(block);
        }
        if (r.kind == EventKind::Forward && r.b != 0)
            g.edges.push_back(
                {GraphEdge::Kind::Forward, r.b, uid, block, r.seq});
    }
    return g;
}

std::vector<Record>
reusablePrefix(const std::vector<Record> &recs,
               std::uint64_t first_reachable_seq)
{
    std::vector<Record> out;
    for (const Record &r : recs) {
        if (r.seq >= first_reachable_seq)
            break;
        out.push_back(r);
    }
    return out;
}

} // namespace retcon::trace
