#include "trace/stream.hpp"

#include <array>
#include <chrono>
#include <cstring>

#include "htm/types.hpp"
#include "sim/logging.hpp"

namespace retcon::trace {

namespace {

/*
 * Frame payload image (66 bytes, little-endian). seq lives in the
 * frame header, not here, so the payload is exactly the Record minus
 * its merge key. sym root/delta/size serialize unconditionally (the
 * defaults are zeros + size 8), which keeps re-encoding byte-stable:
 * decode(encode(r)) == r field for field, and encode(decode(bytes))
 * == bytes for every valid frame.
 */
constexpr std::size_t kOffCycle = 0;
constexpr std::size_t kOffAddr = 8;
constexpr std::size_t kOffA = 16;
constexpr std::size_t kOffB = 24;
constexpr std::size_t kOffVid = 32;
constexpr std::size_t kOffSymRoot = 40;
constexpr std::size_t kOffSymDelta = 48;
constexpr std::size_t kOffCore = 56;
constexpr std::size_t kOffKind = 60;
constexpr std::size_t kOffFlags = 61;
constexpr std::size_t kOffCmp = 62;
constexpr std::size_t kOffAux = 63;
constexpr std::size_t kOffSymSize = 64;
constexpr std::size_t kOffReserved = 65;

constexpr std::uint8_t kPayloadFlagHasSym = 0x1;

void
put16(unsigned char *p, std::uint16_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
}

void
put32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
put64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint16_t
get16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint16_t(p[1]) << 8));
}

std::uint32_t
get32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

const char *
faultKindName(StreamFault::Kind k)
{
    switch (k) {
      case StreamFault::Kind::BadMagic:
        return "not an .rtt stream (bad magic)";
      case StreamFault::Kind::BadVersion:
        return "unsupported stream version";
      case StreamFault::Kind::BadSync:
        return "frame sync marker not found";
      case StreamFault::Kind::BadLength:
        return "frame length field invalid";
      case StreamFault::Kind::BadChecksum:
        return "frame checksum mismatch";
      case StreamFault::Kind::BadPayload:
        return "frame payload decodes to no legal record";
      case StreamFault::Kind::SeqOrder:
        return "seq order violated";
      case StreamFault::Kind::SeqGap:
        return "seq gap in a dense stream (records lost)";
      case StreamFault::Kind::Truncated:
        return "stream truncated mid-frame";
    }
    return "unknown fault";
}

} // namespace

std::uint32_t
crc32(const unsigned char *data, std::size_t n)
{
    const auto &t = crcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = t[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
encodeFrame(const Record &r, unsigned char out[kFrameBytes])
{
    out[0] = kFrameSync0;
    out[1] = kFrameSync1;
    put16(out + 2, static_cast<std::uint16_t>(kFramePayloadBytes));
    put64(out + 4, r.seq);
    unsigned char *p = out + 12;
    put64(p + kOffCycle, r.cycle);
    put64(p + kOffAddr, r.addr);
    put64(p + kOffA, r.a);
    put64(p + kOffB, r.b);
    put64(p + kOffVid, r.vid);
    put64(p + kOffSymRoot, r.sym.root);
    put64(p + kOffSymDelta, static_cast<std::uint64_t>(r.sym.delta));
    put32(p + kOffCore, r.core);
    p[kOffKind] = static_cast<unsigned char>(r.kind);
    p[kOffFlags] = r.hasSym ? kPayloadFlagHasSym : 0;
    p[kOffCmp] = static_cast<unsigned char>(r.cmp);
    p[kOffAux] = r.aux;
    p[kOffSymSize] = r.sym.size;
    p[kOffReserved] = 0;
    put32(out + 12 + kFramePayloadBytes,
          crc32(out + 2, 2 + 8 + kFramePayloadBytes));
}

bool
decodePayload(const unsigned char *p, Record &out)
{
    if (p[kOffKind] > static_cast<unsigned char>(EventKind::UserMark))
        return false;
    if (p[kOffCmp] > static_cast<unsigned char>(rtc::CmpOp::GT))
        return false;
    if (p[kOffFlags] & ~kPayloadFlagHasSym)
        return false;
    out.cycle = get64(p + kOffCycle);
    out.addr = get64(p + kOffAddr);
    out.a = get64(p + kOffA);
    out.b = get64(p + kOffB);
    out.vid = get64(p + kOffVid);
    out.sym.root = get64(p + kOffSymRoot);
    out.sym.delta = static_cast<std::int64_t>(get64(p + kOffSymDelta));
    out.sym.size = p[kOffSymSize];
    out.core = get32(p + kOffCore);
    out.kind = static_cast<EventKind>(p[kOffKind]);
    out.hasSym = (p[kOffFlags] & kPayloadFlagHasSym) != 0;
    out.cmp = static_cast<rtc::CmpOp>(p[kOffCmp]);
    out.aux = p[kOffAux];
    // The same per-kind strictness as the JSON/CSV loaders: an abort
    // record must name a real cause.
    if (out.kind == EventKind::Abort &&
        out.aux > static_cast<std::uint8_t>(htm::AbortCause::Zombie))
        return false;
    return true;
}

void
encodeStreamHeader(bool dense_seq,
                   unsigned char out[kStreamHeaderBytes])
{
    std::memcpy(out, kStreamMagic, sizeof(kStreamMagic));
    put16(out + 8, kStreamVersion);
    put16(out + 10, static_cast<std::uint16_t>(kStreamHeaderBytes));
    put32(out + 12, dense_seq ? kStreamFlagDenseSeq : 0);
}

// ---------------------------------------------------------------------
// StreamWriter

StreamWriter::StreamWriter(const std::string &path, bool dense_seq,
                           std::size_t buffer_bytes)
    : _path(path), _bufLimit(buffer_bytes < kFrameBytes ? kFrameBytes
                                                        : buffer_bytes)
{
    _f = std::fopen(path.c_str(), "wb");
    if (!_f)
        fatal("cannot open trace stream %s for writing", path.c_str());
    _buf.reserve(_bufLimit + kFrameBytes);
    _buf.resize(kStreamHeaderBytes);
    encodeStreamHeader(dense_seq, _buf.data());
}

StreamWriter::~StreamWriter()
{
    close();
}

void
StreamWriter::onEvent(const Record &r)
{
    sim_assert(_f, "trace stream %s written after close",
               _path.c_str());
    std::size_t at = _buf.size();
    _buf.resize(at + kFrameBytes);
    encodeFrame(r, _buf.data() + at);
    ++_stats.records;
    if (_buf.size() >= _bufLimit)
        flush();
}

void
StreamWriter::flush()
{
    if (!_f || _buf.empty())
        return;
    auto t0 = std::chrono::steady_clock::now();
    std::size_t n = std::fwrite(_buf.data(), 1, _buf.size(), _f);
    _stats.flushWallMs +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (n != _buf.size())
        fatal("short write to trace stream %s (%zu of %zu bytes)",
              _path.c_str(), n, _buf.size());
    _stats.bytesWritten += n;
    ++_stats.flushes;
    _buf.clear();
}

void
StreamWriter::close()
{
    if (!_f)
        return;
    flush();
    std::fclose(_f);
    _f = nullptr;
}

// ---------------------------------------------------------------------
// StreamReader

StreamReader::StreamReader(const std::string &path, bool resync)
    : _resync(resync)
{
    _f = std::fopen(path.c_str(), "rb");
    if (!_f)
        _done = true;
    _buf.reserve(1 << 16);
}

StreamReader::~StreamReader()
{
    if (_f)
        std::fclose(_f);
}

std::uint64_t
StreamReader::offsetAt(std::size_t rel) const
{
    return _base + _pos + rel;
}

void
StreamReader::refill(std::size_t want)
{
    if (avail() >= want || _eof)
        return;
    // Compact: drop consumed bytes so the buffer stays bounded no
    // matter how long the stream is.
    if (_pos > 0) {
        _base += _pos;
        _buf.erase(_buf.begin(),
                   _buf.begin() + static_cast<std::ptrdiff_t>(_pos));
        _pos = 0;
    }
    while (_buf.size() < want && !_eof) {
        unsigned char chunk[1 << 15];
        std::size_t n = std::fread(chunk, 1, sizeof(chunk), _f);
        if (n == 0) {
            _eof = true;
            break;
        }
        _buf.insert(_buf.end(), chunk, chunk + n);
    }
}

StreamReader::Status
StreamReader::fail(StreamFault &fault, StreamFault::Kind kind,
                   std::uint64_t offset, std::uint64_t seq)
{
    ++_faults;
    fault.kind = kind;
    fault.offset = offset;
    fault.recordIndex = _records;
    fault.prevSeq = _lastSeq;
    fault.seq = seq;
    if (!_resync) {
        _done = true;
    } else if (kind != StreamFault::Kind::SeqGap) {
        // Skip at least one byte of the bad region, then hunt for the
        // next checksum-valid frame. A SeqGap frame is itself intact
        // (it is sitting in _pendingRec), so nothing is skipped.
        if (kind == StreamFault::Kind::SeqOrder) {
            // The frame parsed and checksummed; only its seq is
            // stale. Drop the whole frame, not one byte of it.
            _skipped += kFrameBytes;
            _pos += kFrameBytes;
        } else if (kind == StreamFault::Kind::Truncated) {
            _skipped += avail();
            _pos = _buf.size();
        } else {
            ++_skipped;
            ++_pos;
        }
        scanToFrame();
    }
    return Status::Fault;
}

bool
StreamReader::frameValid()
{
    refill(kFrameBytes);
    if (avail() < kFrameBytes)
        return false;
    const unsigned char *p = _buf.data() + _pos;
    if (p[0] != kFrameSync0 || p[1] != kFrameSync1)
        return false;
    if (get16(p + 2) != kFramePayloadBytes)
        return false;
    return get32(p + 12 + kFramePayloadBytes) ==
           crc32(p + 2, 2 + 8 + kFramePayloadBytes);
}

void
StreamReader::scanToFrame()
{
    while (true) {
        refill(kFrameBytes);
        if (avail() < kFrameBytes) {
            // Tail shorter than a frame can hide no record.
            _skipped += avail();
            _pos = _buf.size();
            return;
        }
        if (frameValid())
            return;
        ++_skipped;
        ++_pos;
    }
}

bool
StreamReader::parseHeader(StreamFault &fault, Status &status)
{
    refill(kStreamHeaderBytes);
    if (avail() < kStreamHeaderBytes) {
        status = avail() == 0
                     ? fail(fault, StreamFault::Kind::BadMagic, 0, 0)
                     : fail(fault, StreamFault::Kind::Truncated,
                            offsetAt(avail()), 0);
        _done = true; // A headerless stream cannot be resynced.
        return false;
    }
    const unsigned char *p = _buf.data() + _pos;
    if (std::memcmp(p, kStreamMagic, sizeof(kStreamMagic)) != 0) {
        status = fail(fault, StreamFault::Kind::BadMagic, 0, 0);
        _done = true;
        return false;
    }
    std::uint16_t version = get16(p + 8);
    if (version != kStreamVersion) {
        status = fail(fault, StreamFault::Kind::BadVersion, 8, version);
        _done = true;
        return false;
    }
    std::uint16_t hdrBytes = get16(p + 10);
    if (hdrBytes < kStreamHeaderBytes) {
        status = fail(fault, StreamFault::Kind::BadLength, 10,
                      hdrBytes);
        _done = true;
        return false;
    }
    _dense = (get32(p + 12) & kStreamFlagDenseSeq) != 0;
    // Skip any forward-compatible header extension.
    refill(hdrBytes);
    if (avail() < hdrBytes) {
        status = fail(fault, StreamFault::Kind::Truncated,
                      offsetAt(avail()), 0);
        _done = true;
        return false;
    }
    _pos += hdrBytes;
    _headerParsed = true;
    return true;
}

StreamReader::Status
StreamReader::next(Record &out, StreamFault &fault)
{
    if (_done)
        return Status::End;
    Status status = Status::End;
    if (!_headerParsed && !parseHeader(fault, status))
        return status;
    if (_pending) {
        _pending = false;
        out = _pendingRec;
        return Status::Record;
    }
    refill(kFrameBytes);
    if (avail() == 0) {
        _done = true;
        return Status::End;
    }
    std::uint64_t frameOff = offsetAt(0);
    const unsigned char *p = _buf.data() + _pos;
    if (p[0] != kFrameSync0 ||
        (avail() >= 2 && p[1] != kFrameSync1))
        return fail(fault, StreamFault::Kind::BadSync, frameOff, 0);
    if (avail() < kFrameBytes) {
        // Sync matched but the stream ends inside the frame: a torn
        // final write. The offset names the first missing byte.
        std::uint64_t endOff = offsetAt(avail());
        std::uint64_t seq = avail() >= 12 ? get64(p + 4) : 0;
        return fail(fault, StreamFault::Kind::Truncated, endOff, seq);
    }
    std::uint16_t len = get16(p + 2);
    if (len != kFramePayloadBytes)
        return fail(fault, StreamFault::Kind::BadLength, frameOff + 2,
                    len);
    std::uint64_t seq = get64(p + 4);
    if (get32(p + 12 + kFramePayloadBytes) !=
        crc32(p + 2, 2 + 8 + kFramePayloadBytes))
        return fail(fault, StreamFault::Kind::BadChecksum, frameOff,
                    seq);
    Record rec;
    if (!decodePayload(p + 12, rec))
        return fail(fault, StreamFault::Kind::BadPayload, frameOff + 12,
                    seq);
    rec.seq = seq;
    if (seq <= _lastSeq)
        return fail(fault, StreamFault::Kind::SeqOrder, frameOff + 4,
                    seq);
    bool gap = _dense && _lastSeq != 0 && seq != _lastSeq + 1;
    _pos += kFrameBytes;
    std::uint64_t prev = _lastSeq;
    _lastSeq = seq;
    ++_records;
    if (gap) {
        // The record is intact; deliver it on the next call so the
        // gap itself is observable (strict mode treats it as fatal:
        // a dense stream with missing records is an incomplete
        // recording masquerading as a complete one).
        --_records; // fail() reports the pre-record index...
        Status s = fail(fault, StreamFault::Kind::SeqGap, frameOff + 4,
                        seq);
        fault.prevSeq = prev;
        ++_records;
        if (_resync) {
            _pending = true;
            _pendingRec = rec;
        }
        return s;
    }
    out = rec;
    return Status::Record;
}

std::string
StreamFault::describe() const
{
    std::string s = "offset " + std::to_string(offset) + " (record " +
                    std::to_string(recordIndex) + "): " +
                    faultKindName(kind);
    if (kind == Kind::SeqOrder || kind == Kind::SeqGap)
        s += " (seq " + std::to_string(seq) + " after " +
             std::to_string(prevSeq) + ")";
    else if (seq != 0)
        s += " (seq " + std::to_string(seq) + ")";
    return s;
}

// ---------------------------------------------------------------------
// Binary export

std::size_t
exportBinaryFile(const std::vector<Record> &recs,
                 const std::string &path)
{
    bool dense = true;
    for (std::size_t i = 1; i < recs.size(); ++i)
        if (recs[i].seq != recs[i - 1].seq + 1) {
            dense = false;
            break;
        }
    StreamWriter w(path, dense);
    for (const Record &r : recs)
        w.onEvent(r);
    w.close();
    return recs.size();
}

} // namespace retcon::trace
