#include "trace/shard_mux.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace retcon::trace {

ShardMux::ShardMux(unsigned nshards, ShardOfFn shard_of,
                   std::size_t ring_capacity)
    : _nshards(nshards), _shardOf(std::move(shard_of))
{
    sim_assert(_nshards >= 1, "ShardMux needs at least one shard");
    sim_assert(_shardOf != nullptr, "ShardMux needs a shard map");
    if (ring_capacity > 0) {
        _rings.reserve(_nshards);
        for (unsigned s = 0; s < _nshards; ++s)
            _rings.push_back(
                std::make_unique<TraceRecorder>(ring_capacity));
    }
    _counters.resize(_nshards);
}

void
ShardMux::addDownstream(TraceSink *sink)
{
    if (sink)
        _downstream.push_back(sink);
}

unsigned
ShardMux::shardOfCore(CoreId core)
{
    if (core >= _shardOfCore.size())
        _shardOfCore.resize(core + 1, 0xff);
    std::uint8_t cached = _shardOfCore[core];
    if (cached != 0xff)
        return cached;
    unsigned s = _shardOf(core);
    sim_assert(s < _nshards && s < 0xff,
               "core %u homed on unknown shard %u", core, s);
    _shardOfCore[core] = static_cast<std::uint8_t>(s);
    return s;
}

void
ShardMux::onEvent(const Record &r)
{
    RETCON_SERIAL_SCOPE(_serial, "trace::ShardMux::onEvent");
    unsigned s = shardOfCore(r.core);
    Counters &c = _counters[s];
    ++c.events;
    switch (r.kind) {
      case EventKind::Commit:
        ++c.commits;
        if (r.aux & kCommitAuxDatmForwarded)
            ++c.datmForwardedCommits;
        break;
      case EventKind::Abort:
        ++c.aborts;
        break;
      case EventKind::Repair:
        ++c.repairs;
        break;
      case EventKind::Forward:
        ++c.forwards;
        break;
      default:
        break;
    }
    if (!_rings.empty())
        _rings[s]->onEvent(r);
    for (TraceSink *d : _downstream)
        d->onEvent(r);
}

const TraceRecorder &
ShardMux::recorder(unsigned s) const
{
    sim_assert(!_rings.empty(), "ShardMux built without rings");
    sim_assert(s < _nshards, "shard %u out of range", s);
    return *_rings[s];
}

const ShardMux::Counters &
ShardMux::counters(unsigned s) const
{
    sim_assert(s < _nshards, "shard %u out of range", s);
    return _counters[s];
}

std::uint64_t
ShardMux::totalEvents() const
{
    std::uint64_t n = 0;
    for (const Counters &c : _counters)
        n += c.events;
    return n;
}

std::vector<Record>
ShardMux::mergedSnapshot() const
{
    std::vector<Record> merged;
    if (_rings.empty())
        return merged;
    std::size_t total = 0;
    for (const auto &ring : _rings)
        total += ring->size();
    merged.reserve(total);
    for (const auto &ring : _rings)
        ring->forEach([&](const Record &r) { merged.push_back(r); });
    // Each ring is already seq-ascending; a stable sort on the
    // machine-global seq is the k-way merge.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Record &a, const Record &b) {
                         return a.seq < b.seq;
                     });
    return merged;
}

} // namespace retcon::trace
