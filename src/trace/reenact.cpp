#include "trace/reenact.hpp"

#include <cinttypes>
#include <cstdio>

#include "sim/logging.hpp"

namespace retcon::trace {

namespace {

const char *
mismatchName(Mismatch::What w)
{
    switch (w) {
      case Mismatch::What::RepairValue: return "repair-value";
      case Mismatch::What::Constraint: return "constraint";
      case Mismatch::What::PinValue: return "pin-value";
      case Mismatch::What::UndrainedStore: return "undrained-store";
      case Mismatch::What::ForwardValue: return "forward-value";
      case Mismatch::What::ForwardChain: return "forward-chain";
    }
    return "?";
}

} // namespace

std::string
Mismatch::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s core=%u cycle=%" PRIu64 " word=0x%" PRIx64
                  " expected=%" PRIu64 " got=%" PRIu64,
                  mismatchName(what), core, cycle, word, expected, got);
    return buf;
}

std::string
ReenactReport::summary() const
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "reenact: %" PRIu64 " commits, %" PRIu64 " repairs, %"
                  PRIu64 " constraints, %" PRIu64 " pins, %" PRIu64
                  " forwards checked; %" PRIu64
                  " forwarded commits re-derived, %" PRIu64
                  " skipped; %" PRIu64 " mismatches",
                  commitsChecked, repairsChecked, constraintsChecked,
                  pinsChecked, forwardsChecked, forwardedCommitsChecked,
                  forwardedCommitsSkipped, mismatches);
    return buf;
}

ReenactmentValidator::ReenactmentValidator(ReadWordFn read_word,
                                           std::size_t max_samples)
    : _readWord(std::move(read_word)), _maxSamples(max_samples)
{
    sim_assert(_readWord, "reenactment validator needs a memory reader");
}

ReenactmentValidator::TxLog &
ReenactmentValidator::log(CoreId core)
{
    if (core >= _logs.size())
        _logs.resize(core + 1);
    return _logs[core];
}

std::size_t
ReenactmentValidator::openAttempts() const
{
    std::size_t open = 0;
    for (const TxLog &t : _logs)
        if (t.active)
            ++open;
    return open;
}

void
ReenactmentValidator::reset()
{
    _logs.clear();
    _uidCore.clear();
    _report = ReenactReport{};
}

void
ReenactmentValidator::flag(Mismatch m)
{
    ++_report.mismatches;
    if (_report.samples.size() < _maxSamples)
        _report.samples.push_back(m);
    warn("reenactment mismatch: %s", m.describe().c_str());
}

void
ReenactmentValidator::snapshotRoots(TxLog &t)
{
    // The machine emits CommitDrain only after every tracked block has
    // been reacquired and inserted into the committing transaction's
    // conflict sets, so the words read here are coherence-protected
    // until the commit completes: this snapshot IS the set of final
    // input values a full replay would observe.
    auto snap = [&](Addr root) {
        if (t.roots.count(root))
            return;
        auto f = t.frozen.find(root);
        t.roots[root] = f != t.frozen.end() ? f->second
                                            : _readWord(root);
    };
    for (const auto &[word, e] : t.stores)
        if (e.symbolic)
            snap(e.sym.root);
    for (const auto &c : t.constraints)
        snap(c.root);
    for (const auto &p : t.pins)
        snap(p.root);
}

Word
ReenactmentValidator::rootValue(const TxLog &t, Addr root) const
{
    auto it = t.roots.find(root);
    sim_assert(it != t.roots.end(),
               "reenactment root 0x%llx not snapshotted",
               static_cast<unsigned long long>(root));
    return it->second;
}

void
ReenactmentValidator::checkRepair(TxLog &t, const Record &r)
{
    ++_report.repairsChecked;
    auto it = t.stores.find(r.addr);
    if (it == t.stores.end()) {
        // The machine drained a store our log never saw: count it as a
        // repair-value mismatch against "no such store".
        flag(Mismatch{Mismatch::What::RepairValue, r.cycle, r.core,
                      r.addr, 0, r.b});
        return;
    }
    StoreEnt &e = it->second;
    e.repaired = true;
    Word expected = e.symbolic
                        ? rtc::evalSym(e.sym, rootValue(t, e.sym.root))
                        : e.concrete;
    if (expected != r.b) {
        flag(Mismatch{Mismatch::What::RepairValue, r.cycle, r.core,
                      r.addr, expected, r.b});
    }
}

void
ReenactmentValidator::resolveForward(TxLog &t, const Record &r)
{
    // Records arrive in machine-global seq order, so the producing
    // store — and, transitively, every upstream link of the chain —
    // has already been processed when the Forward record lands: the
    // producer's `writes` entry for this word is exactly the store
    // the machine claims to have forwarded, iff the value-ids match.
    // The verdict is held on the link and scored only if the
    // consuming attempt commits (aborted attempts owe nothing).
    FwdLink l;
    l.cycle = r.cycle;
    l.word = r.addr;
    l.producerUid = r.b;
    l.delivered = r.a;
    auto uc = _uidCore.find(r.b);
    if (uc != _uidCore.end()) {
        TxLog &p = log(uc->second);
        if (p.active && p.uid == r.b) {
            auto w = p.writes.find(r.addr);
            if (w != p.writes.end() && w->second.vid == r.vid) {
                l.resolved = true;
                l.derived = w->second.word;
            }
        }
    }
    t.links.push_back(l);
}

void
ReenactmentValidator::poisonLinksFrom(std::uint64_t producer_uid)
{
    // The producer aborted: every value it forwarded is invalid. DATM
    // must cascade-abort the consumers; one that commits anyway has a
    // broken chain, which scoring the poisoned link will flag.
    for (TxLog &t : _logs) {
        if (!t.active)
            continue;
        for (FwdLink &l : t.links)
            if (l.producerUid == producer_uid)
                l.poisoned = true;
    }
}

void
ReenactmentValidator::checkForwardChain(TxLog &t, const Record &r)
{
    bool flagged = (r.aux & kCommitAuxDatmForwarded) != 0;
    if (!flagged && t.links.empty())
        return;
    if (flagged && t.links.empty()) {
        // The machine says this commit consumed forwarded data, but
        // the stream carries no Forward record to re-derive it from.
        // Cannot happen on a healthy machine; count the commit as
        // skipped so reports can prove zero chains escaped the audit.
        ++_report.forwardedCommitsSkipped;
        flag(Mismatch{Mismatch::What::ForwardChain, r.cycle, r.core, 0,
                      0, 0});
        return;
    }
    if (!flagged) {
        // Forward records without the commit flag: the machine lost
        // track of its own forwarding. Flag, then still score links.
        flag(Mismatch{Mismatch::What::ForwardChain, r.cycle, r.core,
                      t.links.front().word, 0, 0});
    } else {
        ++_report.forwardedCommitsChecked;
    }
    for (const FwdLink &l : t.links) {
        ++_report.forwardsChecked;
        if (l.poisoned || !l.resolved) {
            flag(Mismatch{Mismatch::What::ForwardChain, l.cycle, r.core,
                          l.word, l.resolved ? l.derived : 0,
                          l.delivered});
            continue;
        }
        // DATM enforces commit order along dataflow edges: a consumer
        // must not commit while a transaction it consumed data from
        // is still in flight (the producer could yet abort — or
        // commit after its consumer, inverting the serial order). A
        // still-active producer here is a machine bug regardless of
        // the producer's eventual fate, and checking it now is what
        // lets the consumer's log be discarded at commit rather than
        // retained until every producer resolves.
        if (_uidCore.count(l.producerUid)) {
            flag(Mismatch{Mismatch::What::ForwardChain, l.cycle, r.core,
                          l.word, l.derived, l.delivered});
            continue;
        }
        if (l.delivered != l.derived) {
            flag(Mismatch{Mismatch::What::ForwardValue, l.cycle, r.core,
                          l.word, l.derived, l.delivered});
        }
    }
}

void
ReenactmentValidator::finishCommit(TxLog &t, const Record &r)
{
    ++_report.commitsChecked;
    checkForwardChain(t, r);
    _uidCore.erase(t.uid);

    // A commit that never reached the drain phase (eager/serial modes,
    // or a retcon commit with no tracked state) has an empty log;
    // everything below is vacuous then.
    for (const auto &c : t.constraints) {
        ++_report.constraintsChecked;
        Word root = t.roots.count(c.root) ? t.roots.at(c.root)
                                          : _readWord(c.root);
        if (!rtc::evalCmp(static_cast<std::int64_t>(root), c.op, c.rhs)) {
            flag(Mismatch{Mismatch::What::Constraint, r.cycle, r.core,
                          c.root, static_cast<Word>(c.rhs), root});
        }
    }
    for (const auto &p : t.pins) {
        ++_report.pinsChecked;
        Word root = t.roots.count(p.root) ? t.roots.at(p.root)
                                          : _readWord(p.root);
        if (root != p.initValue) {
            flag(Mismatch{Mismatch::What::PinValue, r.cycle, r.core,
                          p.root, p.initValue, root});
        }
    }
    for (const auto &[word, e] : t.stores) {
        if (!e.repaired) {
            flag(Mismatch{Mismatch::What::UndrainedStore, r.cycle,
                          r.core, word,
                          e.symbolic
                              ? rtc::evalSym(e.sym,
                                             rootValue(t, e.sym.root))
                              : e.concrete,
                          0});
        }
    }
    t.clear();
}

void
ReenactmentValidator::onEvent(const Record &r)
{
    TxLog &t = log(r.core);
    switch (r.kind) {
      case EventKind::TxBegin:
        t.clear();
        t.active = true;
        t.uid = r.b;
        if (t.uid != 0)
            _uidCore[t.uid] = r.core;
        break;

      case EventKind::SymStore:
        if (!t.active)
            break;
        // Mirrors SymbolicStoreBuffer::put: last writer wins per word.
        t.stores[r.addr] =
            StoreEnt{r.a, r.sym, r.hasSym, false};
        break;

      case EventKind::Store:
        // An eager store to a word invalidates any pending symbolic
        // store for it (Figure 8, time 10). Word granularity. The
        // resulting word value + write seq are also logged so the
        // attempt can act as a forwarding producer (DATM).
        if (t.active) {
            Addr word = r.addr & ~(kWordBytes - 1);
            t.stores.erase(word);
            t.writes[word] = WriteEnt{r.b, r.vid};
        }
        break;

      case EventKind::Forward:
        if (t.active)
            resolveForward(t, r);
        break;

      case EventKind::Freeze:
        if (t.active)
            t.frozen[r.addr] = r.a;
        break;

      case EventKind::Pin:
        if (t.active)
            t.pins.push_back(PinEnt{r.addr, r.a});
        break;

      case EventKind::Constraint:
        if (t.active)
            t.constraints.push_back(ConstraintEnt{
                r.addr, r.cmp, static_cast<std::int64_t>(r.a)});
        break;

      case EventKind::CommitDrain:
        if (t.active) {
            t.draining = true;
            snapshotRoots(t);
        }
        break;

      case EventKind::Repair:
        if (t.active && t.draining)
            checkRepair(t, r);
        break;

      case EventKind::Commit:
        if (t.active)
            finishCommit(t, r);
        t.clear();
        break;

      case EventKind::Abort:
        ++_report.abortsSeen;
        if (t.active) {
            poisonLinksFrom(t.uid);
            _uidCore.erase(t.uid);
        }
        t.clear();
        break;

      case EventKind::Load:
      case EventKind::SymLoad:
      case EventKind::BlockLost:
      case EventKind::CommitStart:
      case EventKind::TokenWait:
      case EventKind::UserMark:
        break; // Informational only.
    }
}

} // namespace retcon::trace
