#include "trace/reenact.hpp"

#include <cinttypes>
#include <cstdio>

#include "sim/logging.hpp"

namespace retcon::trace {

namespace {

const char *
mismatchName(Mismatch::What w)
{
    switch (w) {
      case Mismatch::What::RepairValue: return "repair-value";
      case Mismatch::What::Constraint: return "constraint";
      case Mismatch::What::PinValue: return "pin-value";
      case Mismatch::What::UndrainedStore: return "undrained-store";
    }
    return "?";
}

} // namespace

std::string
Mismatch::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s core=%u cycle=%" PRIu64 " word=0x%" PRIx64
                  " expected=%" PRIu64 " got=%" PRIu64,
                  mismatchName(what), core, cycle, word, expected, got);
    return buf;
}

std::string
ReenactReport::summary() const
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "reenact: %" PRIu64 " commits, %" PRIu64 " repairs, %"
                  PRIu64 " constraints, %" PRIu64 " pins checked; %"
                  PRIu64 " mismatches",
                  commitsChecked, repairsChecked, constraintsChecked,
                  pinsChecked, mismatches);
    return buf;
}

ReenactmentValidator::ReenactmentValidator(ReadWordFn read_word,
                                           std::size_t max_samples)
    : _readWord(std::move(read_word)), _maxSamples(max_samples)
{
    sim_assert(_readWord, "reenactment validator needs a memory reader");
}

ReenactmentValidator::TxLog &
ReenactmentValidator::log(CoreId core)
{
    if (core >= _logs.size())
        _logs.resize(core + 1);
    return _logs[core];
}

void
ReenactmentValidator::reset()
{
    _logs.clear();
    _report = ReenactReport{};
}

void
ReenactmentValidator::flag(Mismatch m)
{
    ++_report.mismatches;
    if (_report.samples.size() < _maxSamples)
        _report.samples.push_back(m);
    warn("reenactment mismatch: %s", m.describe().c_str());
}

void
ReenactmentValidator::snapshotRoots(TxLog &t)
{
    // The machine emits CommitDrain only after every tracked block has
    // been reacquired and inserted into the committing transaction's
    // conflict sets, so the words read here are coherence-protected
    // until the commit completes: this snapshot IS the set of final
    // input values a full replay would observe.
    auto snap = [&](Addr root) {
        if (t.roots.count(root))
            return;
        auto f = t.frozen.find(root);
        t.roots[root] = f != t.frozen.end() ? f->second
                                            : _readWord(root);
    };
    for (const auto &[word, e] : t.stores)
        if (e.symbolic)
            snap(e.sym.root);
    for (const auto &c : t.constraints)
        snap(c.root);
    for (const auto &p : t.pins)
        snap(p.root);
}

Word
ReenactmentValidator::rootValue(const TxLog &t, Addr root) const
{
    auto it = t.roots.find(root);
    sim_assert(it != t.roots.end(),
               "reenactment root 0x%llx not snapshotted",
               static_cast<unsigned long long>(root));
    return it->second;
}

void
ReenactmentValidator::checkRepair(TxLog &t, const Record &r)
{
    ++_report.repairsChecked;
    auto it = t.stores.find(r.addr);
    if (it == t.stores.end()) {
        // The machine drained a store our log never saw: count it as a
        // repair-value mismatch against "no such store".
        flag(Mismatch{Mismatch::What::RepairValue, r.cycle, r.core,
                      r.addr, 0, r.b});
        return;
    }
    StoreEnt &e = it->second;
    e.repaired = true;
    Word expected = e.symbolic
                        ? rtc::evalSym(e.sym, rootValue(t, e.sym.root))
                        : e.concrete;
    if (expected != r.b) {
        flag(Mismatch{Mismatch::What::RepairValue, r.cycle, r.core,
                      r.addr, expected, r.b});
    }
}

void
ReenactmentValidator::finishCommit(TxLog &t, const Record &r)
{
    ++_report.commitsChecked;

    // A commit that never reached the drain phase (eager/serial modes,
    // or a retcon commit with no tracked state) has an empty log;
    // everything below is vacuous then.
    for (const auto &c : t.constraints) {
        ++_report.constraintsChecked;
        Word root = t.roots.count(c.root) ? t.roots.at(c.root)
                                          : _readWord(c.root);
        if (!rtc::evalCmp(static_cast<std::int64_t>(root), c.op, c.rhs)) {
            flag(Mismatch{Mismatch::What::Constraint, r.cycle, r.core,
                          c.root, static_cast<Word>(c.rhs), root});
        }
    }
    for (const auto &p : t.pins) {
        ++_report.pinsChecked;
        Word root = t.roots.count(p.root) ? t.roots.at(p.root)
                                          : _readWord(p.root);
        if (root != p.initValue) {
            flag(Mismatch{Mismatch::What::PinValue, r.cycle, r.core,
                          p.root, p.initValue, root});
        }
    }
    for (const auto &[word, e] : t.stores) {
        if (!e.repaired) {
            flag(Mismatch{Mismatch::What::UndrainedStore, r.cycle,
                          r.core, word,
                          e.symbolic
                              ? rtc::evalSym(e.sym,
                                             rootValue(t, e.sym.root))
                              : e.concrete,
                          0});
        }
    }
    t.clear();
}

void
ReenactmentValidator::onEvent(const Record &r)
{
    TxLog &t = log(r.core);
    switch (r.kind) {
      case EventKind::TxBegin:
        t.clear();
        t.active = true;
        break;

      case EventKind::SymStore:
        if (!t.active)
            break;
        // Mirrors SymbolicStoreBuffer::put: last writer wins per word.
        t.stores[r.addr] =
            StoreEnt{r.a, r.sym, r.hasSym, false};
        break;

      case EventKind::Store:
        // An eager store to a word invalidates any pending symbolic
        // store for it (Figure 8, time 10). Word granularity.
        if (t.active)
            t.stores.erase(r.addr & ~(kWordBytes - 1));
        break;

      case EventKind::Freeze:
        if (t.active)
            t.frozen[r.addr] = r.a;
        break;

      case EventKind::Pin:
        if (t.active)
            t.pins.push_back(PinEnt{r.addr, r.a});
        break;

      case EventKind::Constraint:
        if (t.active)
            t.constraints.push_back(ConstraintEnt{
                r.addr, r.cmp, static_cast<std::int64_t>(r.a)});
        break;

      case EventKind::CommitDrain:
        if (t.active) {
            t.draining = true;
            snapshotRoots(t);
        }
        break;

      case EventKind::Repair:
        if (t.active && t.draining)
            checkRepair(t, r);
        break;

      case EventKind::Commit:
        if (t.active)
            finishCommit(t, r);
        t.clear();
        break;

      case EventKind::Abort:
        ++_report.abortsSeen;
        t.clear();
        break;

      case EventKind::Load:
      case EventKind::SymLoad:
      case EventKind::BlockLost:
      case EventKind::CommitStart:
      case EventKind::UserMark:
        break; // Informational only.
    }
}

} // namespace retcon::trace
