#include "trace/recorder.hpp"

#include <string_view>

#include "sim/logging.hpp"

namespace retcon::trace {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::TxBegin: return "begin";
      case EventKind::Load: return "load";
      case EventKind::SymLoad: return "sym-load";
      case EventKind::Store: return "store";
      case EventKind::Forward: return "forward";
      case EventKind::SymStore: return "sym-store";
      case EventKind::Freeze: return "freeze";
      case EventKind::Pin: return "pin";
      case EventKind::Constraint: return "constraint";
      case EventKind::BlockLost: return "block-lost";
      case EventKind::CommitStart: return "commit-start";
      case EventKind::TokenWait: return "token-wait";
      case EventKind::CommitDrain: return "commit-drain";
      case EventKind::Repair: return "repair";
      case EventKind::Commit: return "commit";
      case EventKind::Abort: return "abort";
      case EventKind::UserMark: return "mark";
    }
    return "?";
}

bool
eventKindFromName(const char *name, EventKind &out)
{
    for (int k = 0; k <= static_cast<int>(EventKind::UserMark); ++k) {
        auto kind = static_cast<EventKind>(k);
        if (std::string_view(eventKindName(kind)) == name) {
            out = kind;
            return true;
        }
    }
    return false;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : _buf(capacity == 0 ? 1 : capacity)
{
}

void
TraceRecorder::onEvent(const Record &r)
{
    _buf[_head] = r;
    _head = (_head + 1) % _buf.size();
    if (_size < _buf.size())
        ++_size;
    ++_total;
}

void
TraceRecorder::forEach(const std::function<void(const Record &)> &fn) const
{
    std::size_t start = (_head + _buf.size() - _size) % _buf.size();
    for (std::size_t i = 0; i < _size; ++i)
        fn(_buf[(start + i) % _buf.size()]);
}

std::vector<Record>
TraceRecorder::snapshot() const
{
    std::vector<Record> out;
    out.reserve(_size);
    forEach([&out](const Record &r) { out.push_back(r); });
    return out;
}

void
TraceRecorder::clear()
{
    _head = 0;
    _size = 0;
    _total = 0;
}

} // namespace retcon::trace
