/**
 * @file
 * ReenactmentValidator: a live equivalence oracle for RETCON commits.
 *
 * RETCON's correctness claim (§4) is that a repaired commit is
 * indistinguishable from re-executing the transaction against the
 * final committed input values. This sink checks that claim on every
 * commit, independently of the machine's own repair machinery:
 *
 *  - it accumulates each attempt's *symbolic log* from the event
 *    stream: symbolic stores ([root] + delta per word, mirroring the
 *    SSB's last-writer-wins semantics), interval constraints, equality
 *    pins, and input words frozen by local eager stores;
 *  - when the pre-commit walk completes (CommitDrain — every tracked
 *    block has been reacquired and is coherence-protected until the
 *    commit finishes), it snapshots the final value of every
 *    referenced root directly from architectural memory;
 *  - it then re-derives each repaired store via rtc::evalSym over the
 *    snapshot, re-evaluates every constraint and pin, and flags any
 *    disagreement with what htm::TMMachine actually wrote or accepted.
 *
 * The validator shares only `evalSym`/`evalCmp` (the ~10-line symbolic
 * semantics) with the machine; the IVB/SSB/constraint-buffer walk that
 * produced the commit is reenacted from scratch, so a bookkeeping bug
 * in any of those structures shows up as a mismatch rather than
 * silently corrupting committed state.
 */

#ifndef RETCON_TRACE_REENACT_HPP
#define RETCON_TRACE_REENACT_HPP

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"

namespace retcon::trace {

/** One detected disagreement between machine and reenactment. */
struct Mismatch {
    enum class What : std::uint8_t {
        RepairValue,   ///< Repaired store != reenacted value.
        Constraint,    ///< Final root value violates an interval
                       ///< constraint the machine accepted.
        PinValue,      ///< Equality-pinned word changed, yet committed.
        UndrainedStore ///< Symbolic store never drained at commit.
    };
    What what = What::RepairValue;
    Cycle cycle = 0;
    CoreId core = 0;
    Addr word = 0;
    Word expected = 0;
    Word got = 0;

    std::string describe() const;
};

/** Aggregate audit results over a run. */
struct ReenactReport {
    std::uint64_t commitsChecked = 0;
    std::uint64_t repairsChecked = 0;
    std::uint64_t constraintsChecked = 0;
    std::uint64_t pinsChecked = 0;
    std::uint64_t abortsSeen = 0;
    std::uint64_t mismatches = 0;
    /** First few mismatches, for diagnostics (capped). */
    std::vector<Mismatch> samples;

    bool ok() const { return mismatches == 0; }
    std::string summary() const;
};

/** Sink that reenacts every RETCON/lazy-vb commit as it happens. */
class ReenactmentValidator final : public TraceSink
{
  public:
    /** Reads one aligned word of architectural memory. */
    using ReadWordFn = std::function<Word(Addr)>;

    explicit ReenactmentValidator(ReadWordFn read_word,
                                  std::size_t max_samples = 16);

    void onEvent(const Record &r) override;

    const ReenactReport &report() const { return _report; }

    /** Forget all per-core logs and results. */
    void reset();

  private:
    /** One word's pending symbolic/concrete store (SSB mirror). */
    struct StoreEnt {
        Word concrete = 0;
        rtc::SymTag sym{};
        bool symbolic = false;
        bool repaired = false;
    };

    struct ConstraintEnt {
        Addr root = 0;
        rtc::CmpOp op = rtc::CmpOp::EQ;
        std::int64_t rhs = 0;
    };

    struct PinEnt {
        Addr root = 0;
        Word initValue = 0;
    };

    /** The reenactment log of one core's in-flight attempt. */
    struct TxLog {
        bool active = false;
        bool draining = false;
        std::unordered_map<Addr, StoreEnt> stores;
        std::vector<ConstraintEnt> constraints;
        std::vector<PinEnt> pins;
        std::unordered_map<Addr, Word> frozen;
        /** Final root values snapshotted at CommitDrain. */
        std::unordered_map<Addr, Word> roots;

        void
        clear()
        {
            active = false;
            draining = false;
            stores.clear();
            constraints.clear();
            pins.clear();
            frozen.clear();
            roots.clear();
        }
    };

    TxLog &log(CoreId core);
    void snapshotRoots(TxLog &t);
    Word rootValue(const TxLog &t, Addr root) const;
    void checkRepair(TxLog &t, const Record &r);
    void finishCommit(TxLog &t, const Record &r);
    void flag(Mismatch m);

    ReadWordFn _readWord;
    std::size_t _maxSamples;
    std::vector<TxLog> _logs;
    ReenactReport _report;
};

} // namespace retcon::trace

#endif // RETCON_TRACE_REENACT_HPP
