/**
 * @file
 * ReenactmentValidator: a live equivalence oracle for RETCON commits.
 *
 * RETCON's correctness claim (§4) is that a repaired commit is
 * indistinguishable from re-executing the transaction against the
 * final committed input values. This sink checks that claim on every
 * commit, independently of the machine's own repair machinery:
 *
 *  - it accumulates each attempt's *symbolic log* from the event
 *    stream: symbolic stores ([root] + delta per word, mirroring the
 *    SSB's last-writer-wins semantics), interval constraints, equality
 *    pins, and input words frozen by local eager stores;
 *  - when the pre-commit walk completes (CommitDrain — every tracked
 *    block has been reacquired and is coherence-protected until the
 *    commit finishes), it snapshots the final value of every
 *    referenced root directly from architectural memory;
 *  - it then re-derives each repaired store via rtc::evalSym over the
 *    snapshot, re-evaluates every constraint and pin, and flags any
 *    disagreement with what htm::TMMachine actually wrote or accepted;
 *  - for DATM commits it additionally re-derives the forwarding
 *    chain: every forwarded read (Forward record) is resolved against
 *    the producing attempt's logged store — matched by value-id, not
 *    by re-reading architectural memory — and scored when the
 *    consumer commits. Records arrive in machine-global seq order, so
 *    resolving links in arrival order walks chains topologically
 *    (producers strictly before consumers), across any number of
 *    event-queue shards.
 *
 * The validator shares only `evalSym`/`evalCmp` (the ~10-line symbolic
 * semantics) with the machine; the IVB/SSB/constraint-buffer walk that
 * produced the commit is reenacted from scratch, so a bookkeeping bug
 * in any of those structures shows up as a mismatch rather than
 * silently corrupting committed state.
 */

#ifndef RETCON_TRACE_REENACT_HPP
#define RETCON_TRACE_REENACT_HPP

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"

namespace retcon::trace {

/** One detected disagreement between machine and reenactment. */
struct Mismatch {
    enum class What : std::uint8_t {
        RepairValue,   ///< Repaired store != reenacted value.
        Constraint,    ///< Final root value violates an interval
                       ///< constraint the machine accepted.
        PinValue,      ///< Equality-pinned word changed, yet committed.
        UndrainedStore, ///< Symbolic store never drained at commit.
        ForwardValue,  ///< Forwarded value != the producer's
                       ///< re-derived store (DATM chain divergence).
        ForwardChain   ///< Forwarding chain structurally broken: no
                       ///< producing store matches the link's
                       ///< value-id, the producer aborted or was
                       ///< still in flight when the consumer
                       ///< committed (DATM commit order violated), or
                       ///< the commit's forwarded flag disagrees with
                       ///< the links.
    };
    What what = What::RepairValue;
    Cycle cycle = 0;
    CoreId core = 0;
    Addr word = 0;
    Word expected = 0;
    Word got = 0;

    std::string describe() const;
};

/** Aggregate audit results over a run. */
struct ReenactReport {
    std::uint64_t commitsChecked = 0;
    std::uint64_t repairsChecked = 0;
    std::uint64_t constraintsChecked = 0;
    std::uint64_t pinsChecked = 0;
    std::uint64_t abortsSeen = 0;
    /** Forwarded-read links re-derived at consumer commits (DATM). */
    std::uint64_t forwardsChecked = 0;
    /** Commits flagged datm_forwarded whose chains were re-derived. */
    std::uint64_t forwardedCommitsChecked = 0;
    /**
     * Commits flagged datm_forwarded that could not be re-derived
     * (no recorded links — also flagged as a ForwardChain mismatch).
     * Zero on a healthy run: every recorded chain is walked.
     * (Attribution is word-granular, newest writer wins — see
     * docs/trace-format.md for the sub-word scoping caveat.)
     */
    std::uint64_t forwardedCommitsSkipped = 0;
    std::uint64_t mismatches = 0;
    /** First few mismatches, for diagnostics (capped). */
    std::vector<Mismatch> samples;

    bool ok() const { return mismatches == 0; }
    std::string summary() const;
};

/** Sink that reenacts every RETCON/lazy-vb commit as it happens. */
class ReenactmentValidator final : public TraceSink
{
  public:
    /** Reads one aligned word of architectural memory. */
    using ReadWordFn = std::function<Word(Addr)>;

    explicit ReenactmentValidator(ReadWordFn read_word,
                                  std::size_t max_samples = 16);

    void onEvent(const Record &r) override;

    const ReenactReport &report() const { return _report; }

    /**
     * Attempts currently holding resident log state. Per-attempt logs
     * retire at commit/abort, so this — not the run length — bounds
     * the validator's memory: the windowed-validation contract
     * (docs/streaming.md).
     */
    std::size_t openAttempts() const;

    /** Forget all per-core logs and results. */
    void reset();

  private:
    /** One word's pending symbolic/concrete store (SSB mirror). */
    struct StoreEnt {
        Word concrete = 0;
        rtc::SymTag sym{};
        bool symbolic = false;
        bool repaired = false;
    };

    struct ConstraintEnt {
        Addr root = 0;
        rtc::CmpOp op = rtc::CmpOp::EQ;
        std::int64_t rhs = 0;
    };

    struct PinEnt {
        Addr root = 0;
        Word initValue = 0;
    };

    /** One eager store of the attempt (word granularity, DATM/eager). */
    struct WriteEnt {
        Word word = 0;         ///< Resulting word value after the store.
        std::uint64_t vid = 0; ///< Machine-global write sequence.
    };

    /**
     * One forwarded-read edge of a DATM chain, resolved at read time
     * against the producer's logged store (records arrive in
     * machine-global seq order, so the producing store — and every
     * upstream link of the chain — has already been processed: the
     * seq walk IS the topological walk). The verdict is only scored
     * if the consuming attempt commits.
     */
    struct FwdLink {
        Cycle cycle = 0;
        Addr word = 0;
        std::uint64_t producerUid = 0;
        Word delivered = 0;    ///< Word value the consumer observed.
        Word derived = 0;      ///< Producer's re-derived store value.
        bool resolved = false; ///< Producing store found (vid match).
        bool poisoned = false; ///< Producer aborted after forwarding.
    };

    /** The reenactment log of one core's in-flight attempt. */
    struct TxLog {
        bool active = false;
        bool draining = false;
        std::uint64_t uid = 0;
        std::unordered_map<Addr, StoreEnt> stores;
        std::vector<ConstraintEnt> constraints;
        std::vector<PinEnt> pins;
        std::unordered_map<Addr, Word> frozen;
        /** Final root values snapshotted at CommitDrain. */
        std::unordered_map<Addr, Word> roots;
        /** Eager stores by word (the forwarding producers' side). */
        std::unordered_map<Addr, WriteEnt> writes;
        /** Forwarded reads consumed by this attempt. */
        std::vector<FwdLink> links;

        void
        clear()
        {
            active = false;
            draining = false;
            uid = 0;
            stores.clear();
            constraints.clear();
            pins.clear();
            frozen.clear();
            roots.clear();
            writes.clear();
            links.clear();
        }
    };

    TxLog &log(CoreId core);
    void snapshotRoots(TxLog &t);
    Word rootValue(const TxLog &t, Addr root) const;
    void checkRepair(TxLog &t, const Record &r);
    void finishCommit(TxLog &t, const Record &r);
    void resolveForward(TxLog &t, const Record &r);
    void checkForwardChain(TxLog &t, const Record &r);
    void poisonLinksFrom(std::uint64_t producer_uid);
    void flag(Mismatch m);

    ReadWordFn _readWord;
    std::size_t _maxSamples;
    std::vector<TxLog> _logs;
    /** Attempt uid -> core, for resolving forward links. */
    std::unordered_map<std::uint64_t, CoreId> _uidCore;
    ReenactReport _report;
};

} // namespace retcon::trace

#endif // RETCON_TRACE_REENACT_HPP
