// Quick end-to-end smoke driver (not a gtest). Phase 1: N threads
// increment a shared counter K times each inside transactions, under
// several modes. Phase 2: the service workload (Zipfian queue +
// hashtable request mix) across event-queue shard counts. Every run
// has the trace/reenact audit oracle attached: each commit the machine
// performs must be independently re-derivable from its recorded
// symbolic log (zero mismatches required).
#include <cstdio>

#include "api/runner.hpp"
#include "exec/cluster.hpp"
#include "trace/reenact.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 50;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn(
            [](Tx &tx) { return incrementBody(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

} // namespace

int
main()
{
    std::uint64_t retconRepairs = 0;
    std::uint64_t datmChains = 0;
    for (htm::TMMode mode :
         {htm::TMMode::Serial, htm::TMMode::Eager, htm::TMMode::Lazy,
          htm::TMMode::LazyVB, htm::TMMode::Retcon, htm::TMMode::DATM}) {
        ClusterConfig cfg;
        cfg.numThreads = 8;
        cfg.tm.mode = mode;
        // Pre-train the predictor so RETCON tracks the counter block.
        Cluster cluster(cfg);
        cluster.machine().predictor().observeConflict(
            blockAddr(kCounter));
        trace::ReenactmentValidator validator(
            [&cluster](Addr a) { return cluster.memory().readWord(a); });
        cluster.setTraceSink(&validator);
        cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
        Cycle end = cluster.run();
        Word final = cluster.memory().readWord(kCounter);
        auto agg = cluster.aggregateStats();
        const auto &audit = validator.report();
        std::printf(
            "%-8s final=%llu (want %d) cycles=%llu commits=%llu "
            "aborts=%llu audit-repairs=%llu audit-fwd=%llu/%llu "
            "audit-mismatch=%llu\n",
            htm::tmModeName(mode), (unsigned long long)final,
            8 * kIters, (unsigned long long)end,
            (unsigned long long)agg.commits,
            (unsigned long long)agg.aborts,
            (unsigned long long)audit.repairsChecked,
            (unsigned long long)audit.forwardedCommitsChecked,
            (unsigned long long)audit.forwardedCommitsSkipped,
            (unsigned long long)audit.mismatches);
        if (final != Word(8 * kIters))
            return 1;
        if (!audit.ok() || audit.commitsChecked == 0) {
            std::printf("reenactment audit failed: %s\n",
                        audit.summary().c_str());
            return 1;
        }
        if (audit.forwardedCommitsSkipped != 0) {
            std::printf("audit skipped %llu forwarding chains\n",
                        (unsigned long long)
                            audit.forwardedCommitsSkipped);
            return 1;
        }
        if (mode == htm::TMMode::Retcon)
            retconRepairs = audit.repairsChecked;
        if (mode == htm::TMMode::DATM)
            datmChains = audit.forwardedCommitsChecked;
    }
    if (retconRepairs == 0) {
        std::printf("RETCON run repaired nothing — audit was vacuous\n");
        return 1;
    }
    if (datmChains == 0) {
        std::printf("DATM run forwarded nothing — the chain audit was "
                    "vacuous\n");
        return 1;
    }

    // Phase 2: the service workload across shard counts. Shard count
    // must not perturb committed state (the audit re-derives every
    // commit either way), and RETCON must be repairing the Zipfian-hot
    // counters, not just committing eagerly.
    for (htm::TMMode mode :
         {htm::TMMode::Eager, htm::TMMode::LazyVB, htm::TMMode::Retcon}) {
        for (unsigned shards : {1u, 4u}) {
            api::RunConfig cfg;
            cfg.workload = "service";
            cfg.nthreads = 8;
            cfg.scale = 0.05;
            cfg.shards = shards;
            cfg.tm.mode = mode;
            cfg.trace.enabled = true;
            cfg.trace.ringCapacity = 0;
            api::RunResult r = api::runOnce(cfg);
            std::uint64_t repairs = 0;
            for (const auto &s : r.shards)
                repairs += s.repairs;
            std::printf("service  %-8s shards=%u cycles=%llu "
                        "commits=%llu repairs=%llu mismatch=%llu\n",
                        htm::tmModeName(mode), shards,
                        (unsigned long long)r.cycles,
                        (unsigned long long)r.coreStats.commits,
                        (unsigned long long)repairs,
                        (unsigned long long)r.reenact.mismatches);
            if (!r.validation.ok) {
                std::printf("service validation failed: %s\n",
                            r.validation.note.c_str());
                return 1;
            }
            if (!r.reenact.ok() || r.reenact.commitsChecked == 0) {
                std::printf("service reenactment audit failed: %s\n",
                            r.reenact.summary().c_str());
                return 1;
            }
            if (mode == htm::TMMode::Retcon && repairs == 0) {
                std::printf("service under RETCON repaired nothing — "
                            "audit was vacuous\n");
                return 1;
            }
        }
    }
    std::printf("smoke OK\n");
    return 0;
}
