// Quick end-to-end smoke driver (not a gtest): N threads increment a
// shared counter K times each inside transactions, under several modes.
#include <cstdio>

#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 50;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn(
            [](Tx &tx) { return incrementBody(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

} // namespace

int
main()
{
    for (htm::TMMode mode :
         {htm::TMMode::Serial, htm::TMMode::Eager, htm::TMMode::Lazy,
          htm::TMMode::LazyVB, htm::TMMode::Retcon, htm::TMMode::DATM}) {
        ClusterConfig cfg;
        cfg.numThreads = 8;
        cfg.tm.mode = mode;
        // Pre-train the predictor so RETCON tracks the counter block.
        Cluster cluster(cfg);
        cluster.machine().predictor().observeConflict(
            blockAddr(kCounter));
        cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
        Cycle end = cluster.run();
        Word final = cluster.memory().readWord(kCounter);
        auto agg = cluster.aggregateStats();
        std::printf(
            "%-8s final=%llu (want %d) cycles=%llu commits=%llu "
            "aborts=%llu\n",
            htm::tmModeName(mode), (unsigned long long)final,
            8 * kIters, (unsigned long long)end,
            (unsigned long long)agg.commits,
            (unsigned long long)agg.aborts);
        if (final != Word(8 * kIters))
            return 1;
    }
    std::printf("smoke OK\n");
    return 0;
}
