/**
 * @file
 * Scenario registry + differential scenario-grid suite.
 *
 * Every registered scenario must behave like any other run under the
 * repo's core contracts: bit-identical results across host-thread and
 * shard counts, audit-clean under the reenactment oracle (zero skipped
 * DATM forwarding chains), and a conserving arrival ledger
 * (injected == completed + dropped). The suite also pins the DATM
 * support envelope table (api/datm_envelope.hpp) and proves the
 * widened points really run audited, and keeps the audit honest with a
 * fault-injection negative control under the burstiest scenario.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "api/datm_envelope.hpp"
#include "api/runner.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"

using namespace retcon;

namespace {

/** FNV-1a over every simulated observable, scenario fields included. */
std::uint64_t
fingerprint(const api::RunResult &r)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(r.cycles);
    mix(r.coreStats.txns);
    mix(r.coreStats.commits);
    mix(r.coreStats.aborts);
    mix(r.coreStats.finishCycle);
    mix(r.validation.ok);
    mix(r.traceEvents);
    mix(r.reenact.commitsChecked);
    mix(r.reenact.repairsChecked);
    mix(r.reenact.forwardsChecked);
    mix(r.reenact.forwardedCommitsChecked);
    mix(r.reenact.forwardedCommitsSkipped);
    mix(r.reenact.mismatches);
    const api::ScenarioSummary &s = r.scenario;
    mix(s.openLoop);
    mix(s.phases);
    mix(s.injected);
    mix(s.completed);
    mix(s.dropped);
    mix(s.peakBacklog);
    mix(s.latencySum);
    mix(s.latencyMax);
    mix(s.phaseMarks);
    mix(s.stallHits);
    mix(s.stallCycles);
    mix(s.bankFaultStalls);
    mix(s.bankFaultCycles);
    mix(s.linkFaultMessages);
    mix(s.linkFaultCycles);
    return h;
}

/** Quick-sized audited service run of @p scenarioName. */
api::RunConfig
scenarioConfig(const std::string &scenarioName)
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.scenario = scenarioName;
    cfg.scale = 0.05;
    cfg.nthreads = 4;
    cfg.tm = api::retconConfig();
    cfg.trace.enabled = true;
    cfg.trace.ringCapacity = 0; // Audit only; no event retention.
    return cfg;
}

api::RunResult
runClean(const api::RunConfig &cfg, const std::string &tag)
{
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << tag << ": " << r.validation.note;
    EXPECT_EQ(r.reenact.mismatches, 0u)
        << tag << ": " << r.reenact.summary();
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u) << tag;
    return r;
}

} // namespace

TEST(ScenarioRegistry, EnumerationRoundTripAndUniqueness)
{
    const auto &table = scenario::registry();
    ASSERT_GE(table.size(), 8u);
    std::set<std::string> names;
    for (const scenario::Scenario &s : table) {
        ASSERT_NE(s.name, nullptr);
        ASSERT_NE(s.description, nullptr);
        EXPECT_FALSE(std::string(s.name).empty());
        EXPECT_FALSE(std::string(s.description).empty());
        ASSERT_NE(s.setup, nullptr) << s.name;
        ASSERT_NE(s.update, nullptr) << s.name;
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name " << s.name;
        EXPECT_EQ(scenario::scenarioByName(s.name), &s) << s.name;
    }
    EXPECT_EQ(scenario::scenarioByName("no-such-scenario"), nullptr);
    EXPECT_EQ(scenario::scenarioByName(""), nullptr);
}

TEST(ScenarioRegistry, PlansAreDeterministicInTheSeed)
{
    scenario::Env env;
    env.seed = 42;
    env.scale = 0.25;
    env.nthreads = 8;
    for (const scenario::Scenario &s : scenario::registry()) {
        scenario::Plan a, b;
        s.setup(a, env);
        s.setup(b, env);
        EXPECT_EQ(a.arrival.kind, b.arrival.kind) << s.name;
        EXPECT_EQ(a.arrival.period, b.arrival.period) << s.name;
        EXPECT_EQ(a.fault.stallOffset, b.fault.stallOffset) << s.name;
        EXPECT_EQ(a.fault.bankOffset, b.fault.bankOffset) << s.name;
    }
}

/**
 * The tentpole contract: for every registered scenario, the simulated
 * outcome — cycles, validation, audit counters, and the scenario
 * ledger itself — is bit-identical across host-thread counts {1, 4}
 * and shard counts {1, 4}, and every variant is audit-clean.
 */
TEST(ScenarioGrid, BitIdenticalAcrossHostThreadsAndShards)
{
    for (const scenario::Scenario &s : scenario::registry()) {
        api::RunConfig base = scenarioConfig(s.name);
        api::RunResult ref = runClean(base, s.name);
        const std::uint64_t refFp = fingerprint(ref);

        struct Variant {
            unsigned hostThreads, shards;
        } variants[] = {{1, 4}, {4, 4}};
        for (const Variant &v : variants) {
            api::RunConfig cfg = base;
            cfg.hostThreads = v.hostThreads;
            cfg.shards = v.shards;
            std::string tag = std::string(s.name) + " ht" +
                              std::to_string(v.hostThreads) + "/s" +
                              std::to_string(v.shards);
            api::RunResult r = runClean(cfg, tag);
            EXPECT_EQ(fingerprint(r), refFp)
                << tag << " diverged from ht0/s1";
        }
    }
}

/** Arrival ledgers conserve, and each family's mechanism engages. */
TEST(ScenarioGrid, ArrivalConservationAndEngagement)
{
    for (const scenario::Scenario &s : scenario::registry()) {
        api::RunResult r = runClean(scenarioConfig(s.name), s.name);
        const api::ScenarioSummary &sum = r.scenario;
        EXPECT_EQ(sum.name, s.name);

        scenario::Env env;
        env.seed = api::RunConfig{}.seed;
        env.scale = 0.05;
        env.nthreads = 4;
        scenario::Plan plan;
        s.setup(plan, env);

        EXPECT_EQ(sum.openLoop, plan.arrival.open()) << s.name;
        if (plan.arrival.open()) {
            EXPECT_GT(sum.injected, 0u) << s.name;
            EXPECT_EQ(sum.injected, sum.completed + sum.dropped)
                << s.name << ": arrival ledger does not conserve";
        } else {
            EXPECT_EQ(sum.injected, 0u) << s.name;
        }
        if (plan.shift.phases > 1)
            EXPECT_GT(sum.phaseMarks, 0u) << s.name;
        if (plan.fault.coreStall) {
            EXPECT_GT(sum.stallHits, 0u) << s.name;
            EXPECT_GT(sum.stallCycles, 0u) << s.name;
        }
        if (plan.fault.bankSlow) {
            EXPECT_GT(sum.bankFaultStalls, 0u) << s.name;
            EXPECT_GT(sum.bankFaultCycles, 0u) << s.name;
        }
    }
}

/** The burstiest source must actually overload its backlog bound. */
TEST(ScenarioGrid, BurstyTailDropsOccur)
{
    api::RunResult r =
        runClean(scenarioConfig("bursty-onoff"), "bursty-onoff");
    EXPECT_GT(r.scenario.dropped, 0u)
        << "bursty-onoff never overloaded the backlog bound — the "
           "drop path is untested";
    EXPECT_GT(r.scenario.peakBacklog, 1u);
    EXPECT_GT(r.scenario.latencyMax, 0u);
}

/** Every scenario also runs audit-clean under DATM (forwarding on). */
TEST(ScenarioGrid, DatmAuditCleanForEveryScenario)
{
    for (const scenario::Scenario &s : scenario::registry()) {
        api::RunConfig cfg = scenarioConfig(s.name);
        cfg.tm = api::eagerConfig();
        cfg.tm.mode = htm::TMMode::DATM;
        runClean(cfg, std::string("datm ") + s.name);
    }
}

/**
 * Negative control: the grid's "audit-clean" verdict must be capable
 * of failing. Corrupt commit-time repairs under the burstiest
 * scenario and require the reenactment oracle to flag mismatches.
 */
TEST(ScenarioGrid, FaultInjectionNegativeControl)
{
    api::RunConfig cfg = scenarioConfig("bursty-onoff");
    cfg.tm.faultInjectRepairXor = 0x5a5a;
    api::RunResult r = api::runOnce(cfg);
    ASSERT_GT(r.reenact.repairsChecked, 0u)
        << "no repairs happened; the control is vacuous";
    EXPECT_GT(r.reenact.mismatches, 0u)
        << "corrupted repairs sailed through the audit";
}

/** link-degrade is inert at one cluster, engaged on a fleet. */
TEST(ScenarioGrid, LinkDegradeEngagesOnAFleet)
{
    api::RunResult solo =
        runClean(scenarioConfig("link-degrade"), "link-degrade@1");
    EXPECT_EQ(solo.scenario.linkFaultMessages, 0u);

    api::RunConfig cfg = scenarioConfig("link-degrade");
    cfg.clusters = 2;
    cfg.crossClusterFraction = 0.25;
    cfg.tm.commitTokenArbitration = true;
    api::RunResult fleet = runClean(cfg, "link-degrade@2");
    EXPECT_GT(fleet.scenario.linkFaultMessages, 0u)
        << "degraded link never touched a message";
    EXPECT_GT(fleet.scenario.linkFaultCycles, 0u);
}

/** The envelope table itself: pinned so it cannot drift silently. */
TEST(DatmEnvelope, TableIsPinned)
{
    const auto &rows = api::datmEnvelope();
    ASSERT_EQ(rows.size(), 4u);
    for (const api::DatmEnvelopeEntry &e : rows)
        EXPECT_FALSE(std::string(e.reason).empty()) << e.workload;

    EXPECT_FALSE(api::datmSupported("python", 0.01, 1));
    EXPECT_FALSE(api::datmSupported("python_opt", 0.01, 1));
    EXPECT_TRUE(api::datmSupported("intruder", 0.25, 1));
    EXPECT_FALSE(api::datmSupported("intruder", 0.3, 1));
    EXPECT_FALSE(api::datmSupported("intruder", 0.1, 2));
    EXPECT_TRUE(api::datmSupported("yada", 0.1, 1));
    EXPECT_FALSE(api::datmSupported("yada", 0.2, 1));
    EXPECT_TRUE(api::datmSupported("service", 0.75, 1));
    EXPECT_FALSE(api::datmSupported("service", 0.8, 1));
    EXPECT_TRUE(api::datmSupported("service", 0.5, 2))
        << "service is fleet-supported inside its scale bound";
    // Unlisted workloads are fully supported.
    EXPECT_TRUE(api::datmSupported("genome", 1.0, 4));
    EXPECT_TRUE(api::datmSupported("kmeans", 1.0, 1));
}

/** DATM runs get the widened arena; every other mode the default. */
TEST(DatmEnvelope, ArenaSizingIsPerMode)
{
    EXPECT_EQ(api::arenaBytesFor(htm::TMMode::Retcon, 8), 0u);
    EXPECT_EQ(api::arenaBytesFor(htm::TMMode::Eager, 8), 0u);
    Addr datm = api::arenaBytesFor(htm::TMMode::DATM, 8);
    EXPECT_GT(datm, workloads::kDefaultArenaBytes);
    EXPECT_EQ(datm % kBlockBytes, 0u);
    // The clamp holds at the core-count ceiling too.
    Addr wide = api::arenaBytesFor(htm::TMMode::DATM, 64);
    EXPECT_GT(wide, 0u);
    EXPECT_LE(static_cast<std::uint64_t>(wide) * 65,
              static_cast<std::uint64_t>(net::kClusterRegionBytes));
}

/**
 * Regression for the widening itself: points the old hard-coded probe
 * rejected (intruder beyond 0.1, service beyond 0.5) now complete and
 * audit clean under the automatic mitigations.
 */
TEST(DatmEnvelope, PreviouslyUnsupportedPointsRunAudited)
{
    {
        api::RunConfig cfg;
        cfg.workload = "intruder";
        cfg.scale = 0.2; // Old bound: 0.1.
        cfg.nthreads = 4;
        cfg.tm = api::eagerConfig();
        cfg.tm.mode = htm::TMMode::DATM;
        cfg.trace.enabled = true;
        cfg.trace.ringCapacity = 0;
        ASSERT_TRUE(api::datmSupported(cfg.workload, cfg.scale, 1));
        api::RunResult r = runClean(cfg, "intruder datm 0.2");
        EXPECT_GT(r.reenact.forwardedCommitsChecked, 0u);
    }
    {
        api::RunConfig cfg;
        cfg.workload = "service";
        cfg.scale = 0.6; // Old bound: 0.5.
        cfg.nthreads = 4;
        cfg.tm = api::eagerConfig();
        cfg.tm.mode = htm::TMMode::DATM;
        cfg.trace.enabled = true;
        cfg.trace.ringCapacity = 0;
        ASSERT_TRUE(api::datmSupported(cfg.workload, cfg.scale, 1));
        runClean(cfg, "service datm 0.6");
    }
}
