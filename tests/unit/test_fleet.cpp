/**
 * @file
 * Tests for the fleet layer (exec::Fleet + src/net/): the topology
 * partition and interconnect model in isolation, bit-identity of a
 * 1-cluster fleet with the plain machine regardless of net knobs,
 * same-seed determinism at clusters in {2, 4}, conservation plus an
 * audit-clean merged provenance stream on a cross-routed 2-cluster
 * service run, and the reenactment oracle catching corrupted repairs
 * and forwards whose conflicts span a cluster boundary.
 */

#include <gtest/gtest.h>

#include "api/runner.hpp"
#include "exec/fleet.hpp"
#include "net/interconnect.hpp"
#include "trace/reenact.hpp"
#include "trace/shard_mux.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

/** Fingerprint of everything a run's outcome observable to callers. */
struct RunPrint {
    Cycle cycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t nacks = 0;
    double totalTxnCycles = 0;
    bool valid = false;

    bool
    operator==(const RunPrint &o) const
    {
        return cycles == o.cycles && commits == o.commits &&
               aborts == o.aborts && conflicts == o.conflicts &&
               nacks == o.nacks && totalTxnCycles == o.totalTxnCycles &&
               valid == o.valid;
    }
};

RunPrint
fingerprint(const api::RunResult &r)
{
    RunPrint p;
    p.cycles = r.cycles;
    p.commits = r.machineStats.commits;
    p.aborts = r.machineStats.aborts;
    p.conflicts = r.machineStats.conflicts;
    p.nacks = r.machineStats.nacks;
    p.totalTxnCycles = r.machineStats.totalTxnCycles;
    p.valid = r.validation.ok;
    return p;
}

api::RunConfig
serviceConfig()
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.1;
    cfg.tm = api::retconConfig();
    return cfg;
}

/** The ISSUE's fleet scale-out point: 2 x (2 shards x 2 banks). */
api::RunConfig
fleetServiceConfig()
{
    api::RunConfig cfg = serviceConfig();
    cfg.nthreads = 4; // Per cluster; 8 fleet-wide.
    cfg.clusters = 2;
    cfg.shards = 2;
    cfg.memBanks = 2;
    cfg.memBankOccupancy = 8;
    cfg.tm.commitTokenArbitration = true;
    cfg.crossClusterFraction = 0.3;
    return cfg;
}

// Two contended counters, one homed in each cluster's heap region:
// every transaction increments both, so every commit needs tokens from
// both clusters' bank slices and every conflict can span the wire.
const Addr kCtrHome = net::FleetTopology::regionBase(0) + 0x40;
const Addr kCtrAway = net::FleetTopology::regionBase(1) + 0x40;
constexpr int kIters = 25;

Task<TxValue>
incrementBoth(Tx &tx)
{
    TxValue a = co_await tx.load(kCtrHome);
    co_await tx.store(kCtrHome, tx.add(a, 1));
    TxValue b = co_await tx.load(kCtrAway);
    co_await tx.store(kCtrAway, tx.add(b, 1));
    co_return b;
}

Task<void>
fleetThreadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn([](Tx &tx) { return incrementBoth(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

/**
 * Contended-counter run on a 2-cluster fleet (2 x (4 cores, 2 shards,
 * 2 banks)) with contention modeling and the reenactment oracle on the
 * merged stream. The synthetic body only adds, so fault-injected
 * (corrupted) values can never feed an address computation or divisor
 * — the standard negative-control harness (cf. test_mem_banks), here
 * with every transaction's footprint straddling the cluster boundary.
 */
trace::ReenactReport
runFleetCounter(htm::TMMode mode, Word repair_xor, Word fwd_xor)
{
    ClusterConfig cfg;
    cfg.numThreads = 4; // Per cluster; the fleet doubles this.
    cfg.numShards = 2;
    cfg.memBanks = 2;
    cfg.timing.bankOccupancy = 8;
    cfg.tm.mode = mode;
    cfg.tm.commitTokenArbitration = true;
    cfg.tm.faultInjectRepairXor = repair_xor;
    cfg.tm.faultInjectForwardXor = fwd_xor;
    Fleet fleet(cfg, 2);
    Cluster &cluster = fleet.cluster();
    cluster.machine().predictor().observeConflict(blockAddr(kCtrHome));
    cluster.machine().predictor().observeConflict(blockAddr(kCtrAway));

    trace::ShardMux mux(
        cluster.numShards(),
        [&cluster](CoreId c) { return cluster.shardOf(c); },
        /*ring_capacity=*/0);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    mux.addDownstream(&validator);
    cluster.setTraceSink(&mux);

    cluster.start([](WorkerCtx &ctx) { return fleetThreadMain(ctx); });
    cluster.run();

    // Every commit crossed the wire for the remote counter's token.
    EXPECT_GT(fleet.net()->totalMessages(), 0u);
    EXPECT_GT(cluster.machine().stats().xcTokenMsgs, 0u);

    // Injected faults corrupt committed state by design; only clean
    // runs must land the exact counts.
    if (repair_xor == 0 && fwd_xor == 0) {
        Word want = Word(cluster.numThreads()) * kIters;
        EXPECT_EQ(cluster.memory().readWord(kCtrHome), want);
        EXPECT_EQ(cluster.memory().readWord(kCtrAway), want);
    }
    return validator.report();
}

} // namespace

TEST(FleetTopology, MappingsPartitionTheMachine)
{
    net::FleetTopology t;
    t.clusters = 2;
    t.threadsPerCluster = 4;
    t.banksPerCluster = 2;
    EXPECT_TRUE(t.fleet());
    EXPECT_EQ(t.clusterOfCore(0), 0u);
    EXPECT_EQ(t.clusterOfCore(3), 0u);
    EXPECT_EQ(t.clusterOfCore(4), 1u);
    EXPECT_EQ(t.clusterOfBank(1), 0u);
    EXPECT_EQ(t.clusterOfBank(2), 1u);
    // Region-based address homing; scaffolding below the heap base and
    // anything past the last region home on cluster 0.
    EXPECT_EQ(t.clusterOfAddr(net::FleetTopology::regionBase(0)), 0u);
    EXPECT_EQ(t.clusterOfAddr(net::FleetTopology::regionBase(1)), 1u);
    EXPECT_EQ(t.clusterOfAddr(0x1000), 0u);
    EXPECT_EQ(t.clusterOfAddr(net::FleetTopology::regionBase(2)), 0u);

    // The degenerate descriptor is the single-cluster identity.
    net::FleetTopology one;
    EXPECT_FALSE(one.fleet());
    EXPECT_EQ(one.clusterOfCore(63), 0u);
    EXPECT_EQ(one.clusterOfAddr(net::FleetTopology::regionBase(3)), 0u);
}

TEST(Interconnect, CrossbarIsOneHopEachWay)
{
    net::NetConfig cfg;
    cfg.linkLatency = 50;
    net::Interconnect net(4, cfg);
    EXPECT_EQ(net.numLinks(), 12u);
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned d = 0; d < 4; ++d)
            EXPECT_EQ(net.staticLatency(s, d, net::kCtrlMsgWords),
                      s == d ? 0u : 50u);
    // Unlimited bandwidth: deliver == static, and a round trip is two
    // hops with no queueing.
    EXPECT_EQ(net.deliver(0, 2, net::kDataMsgWords, 0), 50u);
    EXPECT_EQ(net.roundTrip(1, 3, net::kCtrlMsgWords,
                            net::kDataMsgWords, 0),
              100u);
    EXPECT_EQ(net.totalQueueCycles(), 0u);
    EXPECT_EQ(net.totalMessages(), 3u);
}

TEST(Interconnect, RingPaysPerHopAndTakesShortcut)
{
    net::NetConfig cfg;
    cfg.topology = net::Topology::Ring;
    cfg.linkLatency = 10;
    net::Interconnect net(4, cfg);
    EXPECT_EQ(net.numLinks(), 8u);
    EXPECT_EQ(net.staticLatency(0, 1, 2), 10u); // 1 hop clockwise.
    EXPECT_EQ(net.staticLatency(0, 2, 2), 20u); // 2 hops (tie -> cw).
    EXPECT_EQ(net.staticLatency(0, 3, 2), 10u); // 1 hop ccw shortcut.
    EXPECT_EQ(net.deliver(0, 2, 2, 0), 20u);
}

TEST(Interconnect, BandwidthQueuesBehindEarlierTraffic)
{
    net::NetConfig cfg;
    cfg.linkLatency = 50;
    cfg.linkBandwidth = 2; // kDataMsgWords = 2 + block -> drains > 1cy.
    net::Interconnect net(2, cfg);
    Cycle drain = (net::kDataMsgWords + 1) / 2;
    EXPECT_EQ(net.deliver(0, 1, net::kDataMsgWords, 0), 50u + drain);
    // Same cycle, same link: the second message waits the full drain.
    EXPECT_EQ(net.deliver(0, 1, net::kDataMsgWords, 0),
              50u + 2 * drain);
    EXPECT_EQ(net.totalQueueCycles(), drain);
    // The reverse link is independent — no queueing there.
    EXPECT_EQ(net.deliver(1, 0, net::kDataMsgWords, 0), 50u + drain);
}

TEST(Fleet, OneClusterIsBitIdenticalRegardlessOfNetKnobs)
{
    // A 1-cluster fleet builds no interconnect and must be invisible:
    // net knobs and the cross-cluster fraction cannot perturb results.
    api::RunConfig cfg = serviceConfig();
    cfg.shards = 2;
    cfg.memBanks = 2;
    api::RunResult base = api::runOnce(cfg);
    ASSERT_TRUE(base.validation.ok);
    EXPECT_EQ(base.clusterSummaries.size(), 1u);
    EXPECT_EQ(base.net.messages, 0u);
    EXPECT_TRUE(base.net.links.empty());
    EXPECT_EQ(base.machineStats.xcTokenMsgs, 0u);
    RunPrint want = fingerprint(base);

    api::RunConfig knobs = cfg;
    knobs.netTopology = "ring";
    knobs.netLatency = 500;
    knobs.netBandwidth = 1;
    knobs.crossClusterFraction = 0.9;
    RunPrint got = fingerprint(api::runOnce(knobs));
    EXPECT_TRUE(want == got)
        << "net knobs perturbed a 1-cluster run: cycles " << got.cycles
        << " vs " << want.cycles;
}

TEST(Fleet, SameSeedSameResultAtTwoAndFourClusters)
{
    for (unsigned clusters : {2u, 4u}) {
        api::RunConfig cfg = fleetServiceConfig();
        cfg.clusters = clusters;
        cfg.nthreads = clusters == 4 ? 2 : 4; // Stay inside 64 cores.
        api::RunResult a = api::runOnce(cfg);
        api::RunResult b = api::runOnce(cfg);
        ASSERT_TRUE(a.validation.ok) << clusters << " clusters";
        EXPECT_TRUE(fingerprint(a) == fingerprint(b))
            << clusters << " clusters diverged across identical runs: "
            << a.cycles << " vs " << b.cycles << " cycles";
        EXPECT_EQ(a.net.messages, b.net.messages);
        EXPECT_EQ(a.machineStats.xcTokenCycles,
                  b.machineStats.xcTokenCycles);
        EXPECT_EQ(a.clusterSummaries.size(), clusters);
        EXPECT_EQ(b.clusterSummaries.size(), clusters);
        for (unsigned c = 0; c < clusters; ++c) {
            EXPECT_EQ(a.clusterSummaries[c].commits,
                      b.clusterSummaries[c].commits);
            EXPECT_GT(a.clusterSummaries[c].commits, 0u)
                << "cluster " << c << " idle";
        }
    }
}

TEST(Fleet, CrossRoutedServiceIsConservedAndAuditClean)
{
    // The ISSUE's acceptance point: 2 x (2 shards x 2 banks) service
    // run with cross-cluster routing, full contention modeling, and
    // the merged provenance stream audited. Conservation (workload
    // validation) must hold fleet-wide, the reenactment must re-derive
    // every repaired commit with zero skips, and the run must actually
    // exercise the wire and the two-level commit protocol.
    api::RunConfig cfg = fleetServiceConfig();
    // Hot enough that some commit loses a remote bank token to an
    // older holder (the xcTokenWaits assertion below is vacuous at
    // the smaller determinism-test point).
    cfg.nthreads = 8;
    cfg.scale = 0.2;
    cfg.crossClusterFraction = 0.5;
    cfg.trace.enabled = true;
    cfg.trace.ringCapacity = 0;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << r.validation.note;
    EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
    EXPECT_GT(r.reenact.commitsChecked, 0u);
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u);

    // The wire saw traffic and hot links are accounted per direction.
    EXPECT_GT(r.net.messages, 0u);
    EXPECT_GT(r.net.payloadWords, 0u);
    ASSERT_EQ(r.net.links.size(), 2u);
    for (const api::NetLinkSummary &l : r.net.links)
        EXPECT_GT(l.messages, 0u)
            << "link " << l.src << "->" << l.dst << " idle";

    // Two-level commit engaged: remote clusters were contacted for
    // tokens, and some acquisitions lost to an older remote holder.
    EXPECT_GT(r.machineStats.xcTokenMsgs, 0u);
    EXPECT_GT(r.machineStats.xcTokenCycles, 0u);
    EXPECT_GT(r.machineStats.xcTokenWaits, 0u);

    // Both clusters carried load.
    ASSERT_EQ(r.clusterSummaries.size(), 2u);
    for (const ClusterSummary &c : r.clusterSummaries)
        EXPECT_GT(c.commits, 0u);
}

TEST(Fleet, DatmChainsValidateAcrossClusters)
{
    // DATM forwarding chains must re-derive with zero skips when the
    // conflicting transactions live in different clusters.
    api::RunConfig cfg = fleetServiceConfig();
    cfg.tm.mode = htm::TMMode::DATM;
    cfg.scale = 0.2;
    cfg.trace.enabled = true;
    cfg.trace.ringCapacity = 0;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << r.validation.note;
    EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
    EXPECT_GT(r.reenact.forwardedCommitsChecked, 0u)
        << "vacuous: no forwarding chains re-derived";
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u);
    EXPECT_GT(r.net.messages, 0u);
}

TEST(Fleet, CleanCounterReenactsAcrossTheBoundary)
{
    // Positive control for the negative controls below.
    trace::ReenactReport r = runFleetCounter(htm::TMMode::Retcon, 0, 0);
    EXPECT_EQ(r.mismatches, 0u) << r.summary();
    EXPECT_GT(r.repairsChecked, 0u) << "vacuous: no repairs audited";
}

TEST(Fleet, FaultInjectedRepairCaughtAcrossTheBoundary)
{
    // Negative control: a corrupted commit-time repair must be flagged
    // when the repaired conflict spans the cluster boundary.
    trace::ReenactReport r =
        runFleetCounter(htm::TMMode::Retcon, 0x4, 0);
    EXPECT_GT(r.mismatches, 0u)
        << "corrupted repairs escaped the audit across clusters";
}

TEST(Fleet, FaultInjectedForwardCaughtAcrossTheBoundary)
{
    trace::ReenactReport r = runFleetCounter(htm::TMMode::DATM, 0, 0x10);
    EXPECT_GT(r.mismatches, 0u)
        << "corrupted forwards escaped the audit across clusters";
}
