/**
 * @file
 * Behavioural tests for the RETCON mechanism: symbolic tracking,
 * commit-time repair (Figure 7), constraint checking, fallbacks, and
 * the lazy-vb variant.
 */

#include <gtest/gtest.h>

#include "htm/machine.hpp"

using namespace retcon;
using namespace retcon::htm;

namespace {

constexpr Addr kA = 0x10000; // Tracked block.
constexpr Addr kB = 0x20000;

struct Rig {
    EventQueue eq;
    mem::MemorySystem ms{4};
    TMMachine tm;
    int remoteAborts = 0;

    explicit Rig(TMMode mode = TMMode::Retcon) : tm(eq, ms, cfg(mode))
    {
        tm.setRemoteAbortHandler(
            [this](CoreId, AbortCause) { ++remoteAborts; });
        // Pre-train the predictor for block A.
        tm.predictor().observeConflict(blockAddr(kA));
    }

    static TMConfig
    cfg(TMMode mode)
    {
        TMConfig c;
        c.mode = mode;
        return c;
    }

    void
    begin(CoreId c)
    {
        ASSERT_EQ(tm.txBegin(c, false).status, OpStatus::Ok);
    }

    /** Run the commit to completion. @return true if committed. */
    bool
    commit(CoreId c)
    {
        for (int i = 0; i < 200; ++i) {
            CommitStepOutcome out = tm.commitStep(c, false);
            if (out.status == OpStatus::AbortSelf)
                return false;
            EXPECT_NE(out.status, OpStatus::Nack);
            if (out.done)
                return true;
        }
        ADD_FAILURE() << "commit did not converge";
        return false;
    }
};

} // namespace

TEST(Retcon, SymbolicLoadReturnsTagAndTracksBlock)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome out = rig.tm.txLoad(0, kA);
    EXPECT_EQ(out.value, 5u);
    ASSERT_TRUE(out.sym.has_value());
    EXPECT_EQ(out.sym->root, kA);
    EXPECT_EQ(out.sym->delta, 0);
    EXPECT_EQ(rig.tm.coreState(0).ivb.size(), 1u);
    // Symbolic loads do not enter the eager read set.
    EXPECT_TRUE(rig.tm.coreState(0).readSet.empty());
}

TEST(Retcon, RepairAppliesRemoteUpdateAtCommit)
{
    // The Figure 2(a) scenario at machine level: core 0 computes
    // counter+1 from value 5; core 1 commits 5->7 meanwhile; core 0's
    // commit must repair its store to 8 without aborting.
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rtc::SymTag plus1 = *ld.sym;
    plus1.delta = 1;
    ASSERT_EQ(rig.tm.txStore(0, kA, ld.value + 1, plus1).status,
              OpStatus::Ok);

    // Remote transaction commits two increments.
    rig.begin(1);
    MemOpOutcome ld1 = rig.tm.txLoad(1, kA);
    rtc::SymTag plus2 = *ld1.sym;
    plus2.delta = 2;
    ASSERT_EQ(rig.tm.txStore(1, kA, ld1.value + 2, plus2).status,
              OpStatus::Ok);
    ASSERT_TRUE(rig.commit(1));
    EXPECT_EQ(rig.ms.memory().readWord(kA), 7u);

    // Core 0 lost the block but repairs: final value 7 + 1 = 8.
    ASSERT_TRUE(rig.commit(0));
    EXPECT_EQ(rig.ms.memory().readWord(kA), 8u);
    EXPECT_EQ(rig.remoteAborts, 0);
    EXPECT_EQ(rig.tm.finalRootValue(0, kA), 7u);
}

TEST(Retcon, SatisfiedIntervalConstraintCommits)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    // Branch: value < 100 taken -> constraint [A] < 100.
    rig.tm.recordBranchConstraint(0, *ld.sym, rtc::CmpOp::LT, 100,
                                  true);
    // Remote write within the interval.
    rig.tm.plainStore(1, kA, 50);
    EXPECT_TRUE(rig.commit(0));
}

TEST(Retcon, ViolatedIntervalConstraintAborts)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rig.tm.recordBranchConstraint(0, *ld.sym, rtc::CmpOp::LT, 100,
                                  true);
    rig.tm.plainStore(1, kA, 200); // Outside [..99].
    EXPECT_FALSE(rig.commit(0));
    EXPECT_EQ(rig.tm.stats()
                  .abortsByCause[static_cast<int>(
                      AbortCause::ConstraintViolation)],
              1u);
    // Violation trains the predictor down.
    EXPECT_FALSE(rig.tm.predictor().shouldTrack(blockAddr(kA)));
}

TEST(Retcon, EqualityPinAbortsOnAnyChange)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rig.tm.pinEquality(0, ld.sym->root);
    rig.tm.plainStore(1, kA, 6);
    EXPECT_FALSE(rig.commit(0));
}

TEST(Retcon, EqualityPinSurvivesUnchangedValue)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rig.tm.pinEquality(0, ld.sym->root);
    // Temporally-silent remote update: 5 -> 9 -> 5.
    rig.tm.plainStore(1, kA, 9);
    rig.tm.plainStore(1, kA, 5);
    EXPECT_TRUE(rig.commit(0));
}

TEST(Retcon, StoreToLoadBypassCopiesSymbolicValue)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rtc::SymTag plus3 = *ld.sym;
    plus3.delta = 3;
    rig.tm.txStore(0, kA, 8, plus3);
    MemOpOutcome ld2 = rig.tm.txLoad(0, kA);
    EXPECT_EQ(ld2.value, 8u);
    ASSERT_TRUE(ld2.sym.has_value());
    EXPECT_EQ(ld2.sym->delta, 3);
    EXPECT_EQ(ld2.latency, 1u); // SSB hit, no cache access.
}

TEST(Retcon, SymbolicStoreToUntrackedAddressDrainsAtCommit)
{
    // Figure 8: a symbolic value stored to B (B not in the IVB).
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rtc::SymTag plus1 = *ld.sym;
    plus1.delta = 1;
    rig.tm.txStore(0, kB, 6, plus1);
    rig.tm.plainStore(1, kA, 10); // Steal + change A.
    ASSERT_TRUE(rig.commit(0));
    EXPECT_EQ(rig.ms.memory().readWord(kB), 11u); // Repaired: 10+1.
}

TEST(Retcon, NonSymbolicStoreInvalidatesSsbEntry)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    rtc::SymTag plus1 = *ld.sym;
    plus1.delta = 1;
    rig.tm.txStore(0, kA, 6, plus1);
    EXPECT_EQ(rig.tm.coreState(0).ssb.size(), 1u);
    // Concrete overwrite (Figure 8 time 10).
    rig.tm.txStore(0, kA, 42, std::nullopt);
    EXPECT_EQ(rig.tm.coreState(0).ssb.size(), 0u);
    ASSERT_TRUE(rig.commit(0));
    EXPECT_EQ(rig.ms.memory().readWord(kA), 42u);
}

TEST(Retcon, OwnEagerStoreVisibleToOwnLoads)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    rig.tm.txLoad(0, kA);
    rig.tm.txStore(0, kA, 42, std::nullopt);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    EXPECT_EQ(ld.value, 42u);
    EXPECT_FALSE(ld.sym.has_value()); // Frozen word: no longer input.
}

TEST(Retcon, SubWordLoadFallsBackToEqualityBit)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 0x1234);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA, 4);
    EXPECT_EQ(ld.value, 0x1234u);
    EXPECT_FALSE(ld.sym.has_value());
    rtc::IvbEntry *e = rig.tm.coreState(0).ivb.find(blockAddr(kA));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->eqMask & 1);
}

TEST(Retcon, IvbCapacityFallsBackToEagerPath)
{
    Rig rig;
    rig.begin(0);
    // Train and touch 17 blocks; the 17th load must go eager.
    for (int i = 0; i < 17; ++i) {
        Addr block = 0x100000 + Addr(i) * kBlockBytes;
        rig.tm.predictor().observeConflict(block);
        rig.tm.txLoad(0, block);
    }
    EXPECT_EQ(rig.tm.coreState(0).ivb.size(), 16u);
    EXPECT_EQ(rig.tm.coreState(0).readSet.size(), 1u);
}

TEST(Retcon, SsbCapacityFallsBackToEagerStoreWithPin)
{
    TMConfig cfg;
    cfg.mode = TMMode::Retcon;
    cfg.ssbEntries = 2;
    EventQueue eq;
    mem::MemorySystem ms(2);
    TMMachine tm(eq, ms, cfg);
    tm.predictor().observeConflict(blockAddr(kA));
    ASSERT_EQ(tm.txBegin(0, false).status, OpStatus::Ok);
    MemOpOutcome ld = tm.txLoad(0, kA);
    rtc::SymTag t = *ld.sym;
    t.delta = 1;
    // Fill the 2-entry SSB, then a third symbolic store must fall
    // back to an eager store and pin the root.
    tm.txStore(0, kB, 1, t);
    tm.txStore(0, kB + 8, 1, t);
    tm.txStore(0, kB + 16, 1, t);
    EXPECT_EQ(tm.coreState(0).ssb.size(), 2u);
    EXPECT_EQ(tm.coreState(0).writeSet.count(blockAddr(kB)), 1u);
    rtc::IvbEntry *e = tm.coreState(0).ivb.find(blockAddr(kA));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->eqMask & 1);
}

TEST(Retcon, BlocksLostStatCountsSteals)
{
    Rig rig;
    rig.begin(0);
    rig.tm.txLoad(0, kA);
    rig.tm.plainStore(1, kA, 1);
    EXPECT_TRUE(rig.commit(0));
    EXPECT_DOUBLE_EQ(rig.tm.stats().blocksLost.max(), 1.0);
}

TEST(LazyVb, ValueChangeAborts)
{
    Rig rig(TMMode::LazyVB);
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    MemOpOutcome ld = rig.tm.txLoad(0, kA);
    EXPECT_EQ(ld.value, 5u);
    EXPECT_FALSE(ld.sym.has_value()); // lazy-vb never tracks symbolically.
    rig.tm.plainStore(1, kA, 6);
    EXPECT_FALSE(rig.commit(0));
}

TEST(LazyVb, SilentAndFalseSharingCommit)
{
    Rig rig(TMMode::LazyVB);
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0);
    rig.tm.txLoad(0, kA);
    // False sharing: remote writes a *different word* of the block.
    rig.tm.plainStore(1, kA + 8, 99);
    // Silent sharing: remote rewrites the same value.
    rig.tm.plainStore(1, kA, 5);
    EXPECT_TRUE(rig.commit(0));
    EXPECT_EQ(rig.remoteAborts, 0);
}

TEST(Retcon, UntrackedBlocksStillConflictEagerly)
{
    Rig rig; // Only kA is trained; kB is untracked.
    rig.begin(0);
    rig.begin(1);
    ASSERT_EQ(rig.tm.txLoad(0, kB).status, OpStatus::Ok);
    EXPECT_EQ(rig.tm.txStore(1, kB, 1, std::nullopt).status,
              OpStatus::Nack);
}

TEST(Retcon, CommitPriorityProtectsCommitterFromOlderActive)
{
    Rig rig;
    rig.ms.memory().writeWord(kA, 5);
    rig.begin(0); // Older.
    rig.begin(1); // Younger; will commit first.
    MemOpOutcome ld = rig.tm.txLoad(1, kA);
    rtc::SymTag t = *ld.sym;
    t.delta = 1;
    rig.tm.txStore(1, kA, 6, t);
    // Drive core 1 into its commit (phase transitions), then have the
    // older core 0 access the block core 1 holds mid-commit.
    CommitStepOutcome s = rig.tm.commitStep(1, false);
    ASSERT_EQ(s.status, OpStatus::Ok);
    while (rig.tm.coreState(1).writeSet.empty() && !s.done)
        s = rig.tm.commitStep(1, false);
    MemOpOutcome out = rig.tm.txStore(0, kA, 9, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::Nack); // Waits, does not abort.
    EXPECT_EQ(rig.remoteAborts, 0);
}
