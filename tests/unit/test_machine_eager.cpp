/**
 * @file
 * Behavioural tests for the baseline eager HTM (§2): conflict
 * detection matrix, contention management policies, version
 * management, OneTM overflow.
 */

#include <gtest/gtest.h>

#include "htm/machine.hpp"

using namespace retcon;
using namespace retcon::htm;

namespace {

constexpr Addr kA = 0x10000;
constexpr Addr kB = 0x20000;

struct EagerRig {
    EventQueue eq;
    mem::MemorySystem ms{4};
    TMMachine tm;
    std::vector<std::pair<CoreId, AbortCause>> remoteAborts;

    explicit EagerRig(TMConfig cfg = makeCfg())
        : tm(eq, ms, cfg)
    {
        tm.setRemoteAbortHandler([this](CoreId c, AbortCause a) {
            remoteAborts.emplace_back(c, a);
        });
    }

    static TMConfig
    makeCfg()
    {
        TMConfig cfg;
        cfg.mode = TMMode::Eager;
        return cfg;
    }

    void
    begin(CoreId c)
    {
        ASSERT_EQ(tm.txBegin(c, false).status, OpStatus::Ok);
    }

    /** Drive commitStep until done; expects success. */
    void
    commit(CoreId c)
    {
        for (int i = 0; i < 100; ++i) {
            CommitStepOutcome out = tm.commitStep(c, false);
            ASSERT_EQ(out.status, OpStatus::Ok);
            if (out.done)
                return;
        }
        FAIL() << "commit did not converge";
    }
};

} // namespace

TEST(EagerHtm, ReadReadDoesNotConflict)
{
    EagerRig rig;
    rig.begin(0);
    rig.begin(1);
    EXPECT_EQ(rig.tm.txLoad(0, kA).status, OpStatus::Ok);
    EXPECT_EQ(rig.tm.txLoad(1, kA).status, OpStatus::Ok);
    EXPECT_TRUE(rig.remoteAborts.empty());
    EXPECT_EQ(rig.tm.stats().conflicts, 0u);
}

TEST(EagerHtm, WriteAfterRemoteReadStallsYoungerRequester)
{
    EagerRig rig;
    rig.begin(0); // Older.
    rig.begin(1); // Younger.
    EXPECT_EQ(rig.tm.txLoad(0, kA).status, OpStatus::Ok);
    // Core 1 (younger) writes the block core 0 read: NACK.
    MemOpOutcome out = rig.tm.txStore(1, kA, 7, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::Nack);
    EXPECT_TRUE(rig.remoteAborts.empty());
    EXPECT_EQ(rig.tm.stats().nacks, 1u);
}

TEST(EagerHtm, OlderWriterAbortsYoungerReader)
{
    EagerRig rig;
    rig.begin(0); // Older.
    rig.begin(1); // Younger.
    EXPECT_EQ(rig.tm.txLoad(1, kA).status, OpStatus::Ok);
    // Core 0 (older) writes: the younger holder aborts.
    MemOpOutcome out = rig.tm.txStore(0, kA, 7, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::Ok);
    ASSERT_EQ(rig.remoteAborts.size(), 1u);
    EXPECT_EQ(rig.remoteAborts[0].first, 1u);
    EXPECT_EQ(rig.tm.status(1), TxStatus::Idle);
}

TEST(EagerHtm, ReadAfterRemoteWriteConflicts)
{
    EagerRig rig;
    rig.begin(0);
    rig.begin(1);
    EXPECT_EQ(rig.tm.txStore(0, kA, 7, std::nullopt).status,
              OpStatus::Ok);
    EXPECT_EQ(rig.tm.txLoad(1, kA).status, OpStatus::Nack);
}

TEST(EagerHtm, WriteWriteConflicts)
{
    EagerRig rig;
    rig.begin(0);
    rig.begin(1);
    EXPECT_EQ(rig.tm.txStore(0, kA, 1, std::nullopt).status,
              OpStatus::Ok);
    EXPECT_EQ(rig.tm.txStore(1, kA, 2, std::nullopt).status,
              OpStatus::Nack);
}

TEST(EagerHtm, DifferentBlocksDoNotConflict)
{
    EagerRig rig;
    rig.begin(0);
    rig.begin(1);
    EXPECT_EQ(rig.tm.txStore(0, kA, 1, std::nullopt).status,
              OpStatus::Ok);
    EXPECT_EQ(rig.tm.txStore(1, kB, 2, std::nullopt).status,
              OpStatus::Ok);
}

TEST(EagerHtm, AbortRollsBackAllSpeculativeStores)
{
    EagerRig rig;
    rig.ms.memory().writeWord(kA, 100);
    rig.ms.memory().writeWord(kB, 200);
    rig.begin(1);
    rig.tm.txStore(1, kA, 111, std::nullopt);
    rig.tm.txStore(1, kB, 222, std::nullopt);
    rig.tm.txStore(1, kA, 112, std::nullopt);
    rig.tm.abortSelf(1, AbortCause::Explicit);
    EXPECT_EQ(rig.ms.memory().readWord(kA), 100u);
    EXPECT_EQ(rig.ms.memory().readWord(kB), 200u);
    EXPECT_EQ(rig.tm.status(1), TxStatus::Idle);
}

TEST(EagerHtm, CommitMakesStoresDurable)
{
    EagerRig rig;
    rig.begin(0);
    rig.tm.txStore(0, kA, 42, std::nullopt);
    rig.commit(0);
    EXPECT_EQ(rig.ms.memory().readWord(kA), 42u);
    EXPECT_EQ(rig.tm.stats().commits, 1u);
    // The block is no longer speculative: another txn may write it.
    rig.begin(1);
    EXPECT_EQ(rig.tm.txStore(1, kA, 43, std::nullopt).status,
              OpStatus::Ok);
}

TEST(EagerHtm, TimestampRetainedAcrossRetrySoVictimAges)
{
    EagerRig rig;
    rig.begin(0); // ts 1.
    rig.begin(1); // ts 2.
    rig.tm.txLoad(1, kA);
    rig.tm.txStore(0, kA, 1, std::nullopt); // Aborts core 1.
    ASSERT_EQ(rig.tm.status(1), TxStatus::Idle);
    // Core 1 retries, keeping ts 2; core 0 commits; a *new* txn on
    // core 0 gets ts 3 and now loses to core 1.
    ASSERT_EQ(rig.tm.txBegin(1, true).status, OpStatus::Ok);
    rig.commit(0);
    rig.begin(0); // ts 3.
    rig.tm.txLoad(1, kA);
    MemOpOutcome out = rig.tm.txStore(0, kA, 2, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::Nack); // Core 1 is older now.
}

TEST(EagerHtm, RequesterLosesPolicyAbortsSelf)
{
    TMConfig cfg;
    cfg.mode = TMMode::Eager;
    cfg.cmPolicy = CMPolicy::RequesterLoses;
    EagerRig rig(cfg);
    rig.begin(0);
    rig.begin(1);
    rig.tm.txLoad(0, kA);
    MemOpOutcome out = rig.tm.txStore(1, kA, 7, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::AbortSelf);
    EXPECT_EQ(rig.tm.status(1), TxStatus::Idle);
    EXPECT_EQ(rig.tm.status(0), TxStatus::Active);
}

TEST(EagerHtm, RequesterWinsPolicyAbortsHolderEvenIfOlder)
{
    TMConfig cfg;
    cfg.mode = TMMode::Eager;
    cfg.cmPolicy = CMPolicy::RequesterWins;
    EagerRig rig(cfg);
    rig.begin(0); // Older holder.
    rig.begin(1);
    rig.tm.txLoad(0, kA);
    MemOpOutcome out = rig.tm.txStore(1, kA, 7, std::nullopt);
    EXPECT_EQ(out.status, OpStatus::Ok);
    ASSERT_EQ(rig.remoteAborts.size(), 1u);
    EXPECT_EQ(rig.remoteAborts[0].first, 0u);
}

TEST(EagerHtm, NonTransactionalStoreWinsAgainstTransaction)
{
    EagerRig rig;
    rig.begin(0);
    rig.tm.txLoad(0, kA);
    MemOpOutcome out = rig.tm.plainStore(1, kA, 9);
    EXPECT_EQ(out.status, OpStatus::Ok);
    ASSERT_EQ(rig.remoteAborts.size(), 1u);
    EXPECT_EQ(rig.remoteAborts[0].first, 0u);
    EXPECT_EQ(rig.ms.memory().readWord(kA), 9u);
}

TEST(EagerHtm, SubWordStoresRoundTrip)
{
    EagerRig rig;
    rig.ms.memory().writeWord(kA, 0xffffffffffffffffull);
    rig.begin(0);
    rig.tm.txStore(0, kA, 0x12, std::nullopt, 1);
    MemOpOutcome out = rig.tm.txLoad(0, kA, 1);
    EXPECT_EQ(out.value, 0x12u);
    out = rig.tm.txLoad(0, kA + 1, 1);
    EXPECT_EQ(out.value, 0xffu);
    rig.commit(0);
    EXPECT_EQ(rig.ms.memory().readWord(kA), 0xffffffffffffff12ull);
}

TEST(EagerHtm, OverflowTakesOneTmTokenAndWins)
{
    // Tiny caches so the L2 and permissions-only cache overflow fast.
    mem::CacheConfig small;
    small.l1 = {128, 2};     // 1 set of 2.
    small.l2 = {256, 2};     // 2 sets of 2.
    small.permOnly = {128, 2}; // 1 set of 2.
    EventQueue eq;
    mem::MemorySystem ms(2, mem::MemTimingConfig{}, small);
    TMConfig cfg;
    cfg.mode = TMMode::Eager;
    TMMachine tm(eq, ms, cfg);
    int aborted = 0;
    tm.setRemoteAbortHandler([&](CoreId, AbortCause) { ++aborted; });

    ASSERT_EQ(tm.txBegin(0, false).status, OpStatus::Ok);
    // Touch many blocks in the same sets to evict speculative blocks
    // out of the L2 and then out of the permissions-only cache.
    for (int i = 0; i < 12; ++i) {
        MemOpOutcome out =
            tm.txLoad(0, 0x100000 + Addr(i) * 256 * 4);
        ASSERT_NE(out.status, OpStatus::AbortSelf);
    }
    EXPECT_EQ(tm.stats().overflows, 1u);
    EXPECT_EQ(aborted, 0);

    // A second transaction that also overflows must wait for the
    // token (NACK), implementing OneTM serialization.
    ASSERT_EQ(tm.txBegin(1, false).status, OpStatus::Ok);
    bool nacked = false;
    for (int i = 0; i < 12 && !nacked; ++i) {
        MemOpOutcome out =
            tm.txLoad(1, 0x900000 + Addr(i) * 256 * 4);
        nacked = out.status == OpStatus::Nack;
    }
    EXPECT_TRUE(nacked);
}
