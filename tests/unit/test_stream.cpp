/**
 * @file
 * Tests for the streaming binary trace format (src/trace/stream) and
 * its windowed consumption path (query::StreamingReplay /
 * validateStreamFile): payload codec round trips, writer/reader file
 * round trips against the text exporters (bit-exact both ways),
 * corruption detection with offset-precise diagnostics (checksum,
 * truncation, seq gap, seq regression), resynchronization after a
 * corrupted frame, and windowed-vs-post-hoc verdict identity with the
 * resident-state bound (docs/streaming.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exec/cluster.hpp"
#include "query/loader.hpp"
#include "query/replay.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "trace/stream.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

/** Contended-counter run under RETCON, fully recorded (dense seq). */
std::vector<trace::Record>
recordCounterRun()
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.tm.mode = htm::TMMode::Retcon;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));
    trace::TraceRecorder ring(1 << 16);
    cluster.setTraceSink(&ring);
    cluster.start([](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < kIters; ++i) {
            co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
            co_await ctx.work(20);
        }
        co_await ctx.barrier();
    });
    cluster.run();
    EXPECT_EQ(cluster.memory().readWord(kCounter),
              Word{kThreads} * kIters);
    std::vector<trace::Record> recs;
    ring.forEach([&](const trace::Record &r) { recs.push_back(r); });
    EXPECT_EQ(ring.dropped(), 0u);
    return recs;
}

std::vector<unsigned char>
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<unsigned char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

/** Drain a reader; returns records and counts faults by kind. */
struct DrainResult {
    std::vector<trace::Record> records;
    std::vector<trace::StreamFault> faults;
};

DrainResult
drain(trace::StreamReader &reader)
{
    DrainResult out;
    trace::Record r;
    trace::StreamFault f;
    while (true) {
        trace::StreamReader::Status s = reader.next(r, f);
        if (s == trace::StreamReader::Status::Record)
            out.records.push_back(r);
        else if (s == trace::StreamReader::Status::Fault)
            out.faults.push_back(f);
        else
            return out;
    }
}

/** Hand-craft an .rtt file from explicit records (test harness for
 *  seq-fault injection — the writer itself never misorders). */
void
craftStream(const std::string &path, bool dense,
            const std::vector<trace::Record> &recs)
{
    std::vector<unsigned char> bytes(trace::kStreamHeaderBytes);
    trace::encodeStreamHeader(dense, bytes.data());
    for (const trace::Record &r : recs) {
        std::size_t at = bytes.size();
        bytes.resize(at + trace::kFrameBytes);
        trace::encodeFrame(r, bytes.data() + at);
    }
    writeBytes(path, bytes);
}

trace::Record
sampleRecord(std::uint64_t seq, trace::EventKind kind)
{
    trace::Record r;
    r.cycle = 1000 + seq;
    r.core = static_cast<CoreId>(seq % kThreads);
    r.kind = kind;
    r.addr = kCounter + 8 * seq;
    r.a = 0xA0000000ull + seq;
    r.b = 0xB0000000ull + seq;
    r.seq = seq;
    r.vid = seq * 3;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Codec: payload round trips, byte-stable re-encode
// ---------------------------------------------------------------------

TEST(StreamCodec, EveryKindRoundTripsThroughAFrame)
{
    for (int k = 0; k <= static_cast<int>(trace::EventKind::UserMark);
         ++k) {
        trace::Record r =
            sampleRecord(7 + static_cast<std::uint64_t>(k),
                         static_cast<trace::EventKind>(k));
        // Exercise the conditional fields: a symbolic tag with a
        // negative delta, a non-default operator, and a legal aux
        // (Abort's aux must name a real cause).
        if (k % 2 == 0) {
            r.hasSym = true;
            r.sym.root = 0x2000;
            r.sym.delta = -17;
            r.sym.size = 4;
        }
        r.cmp = rtc::CmpOp::GE;
        r.aux = r.kind == trace::EventKind::Abort
                    ? static_cast<std::uint8_t>(htm::AbortCause::Zombie)
                    : trace::kCommitAuxDatmForwarded;

        unsigned char frame[trace::kFrameBytes];
        trace::encodeFrame(r, frame);
        EXPECT_EQ(frame[0], trace::kFrameSync0);
        EXPECT_EQ(frame[1], trace::kFrameSync1);

        trace::Record back;
        ASSERT_TRUE(trace::decodePayload(frame + 12, back));
        back.seq = r.seq; // seq travels in the frame header.
        EXPECT_TRUE(trace::recordsIdentical(r, back))
            << "kind " << k;

        // Re-encoding the decode reproduces the frame byte for byte —
        // the property behind file-level binary round-trip identity.
        unsigned char again[trace::kFrameBytes];
        trace::encodeFrame(back, again);
        EXPECT_EQ(std::memcmp(frame, again, trace::kFrameBytes), 0);
    }
}

TEST(StreamCodec, IllegalPayloadsAreRejected)
{
    trace::Record r = sampleRecord(1, trace::EventKind::Commit);
    unsigned char frame[trace::kFrameBytes];
    trace::Record out;

    // Unknown event kind.
    trace::encodeFrame(r, frame);
    frame[12 + 60] =
        static_cast<unsigned char>(trace::EventKind::UserMark) + 1;
    EXPECT_FALSE(trace::decodePayload(frame + 12, out));

    // Unknown constraint operator.
    trace::encodeFrame(r, frame);
    frame[12 + 62] = static_cast<unsigned char>(rtc::CmpOp::GT) + 1;
    EXPECT_FALSE(trace::decodePayload(frame + 12, out));

    // Undefined flag bits.
    trace::encodeFrame(r, frame);
    frame[12 + 61] = 0x2;
    EXPECT_FALSE(trace::decodePayload(frame + 12, out));

    // Abort cause beyond the enum.
    r.kind = trace::EventKind::Abort;
    r.aux = static_cast<std::uint8_t>(htm::AbortCause::Zombie) + 1;
    trace::encodeFrame(r, frame);
    EXPECT_FALSE(trace::decodePayload(frame + 12, out));
}

// ---------------------------------------------------------------------
// File round trips: writer/reader, binary vs JSON/CSV bit-exactness
// ---------------------------------------------------------------------

TEST(StreamFile, WriterReaderRoundTripIsLossless)
{
    const std::string path = "test_stream_roundtrip.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    ASSERT_FALSE(recs.empty());

    trace::StreamWriter writer(path);
    for (const trace::Record &r : recs)
        writer.onEvent(r);
    writer.close();
    EXPECT_EQ(writer.stats().records, recs.size());
    EXPECT_EQ(writer.stats().bytesWritten,
              trace::kStreamHeaderBytes +
                  recs.size() * trace::kFrameBytes);
    EXPECT_GE(writer.stats().flushes, 1u);

    trace::StreamReader reader(path);
    DrainResult got = drain(reader);
    EXPECT_TRUE(got.faults.empty());
    EXPECT_TRUE(reader.denseSeq());
    ASSERT_EQ(got.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
        ASSERT_TRUE(trace::recordsIdentical(got.records[i], recs[i]))
            << "record " << i;

    // The generic loader sniffs the magic and takes the binary path.
    query::LoadResult sniffed = query::loadTraceFile(path);
    ASSERT_TRUE(sniffed.ok) << sniffed.error;
    ASSERT_EQ(sniffed.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
        ASSERT_TRUE(
            trace::recordsIdentical(sniffed.records[i], recs[i]));
    std::remove(path.c_str());
}

TEST(StreamFile, BinaryAndTextExportsRoundTripBitExactBothWays)
{
    const std::string binPath = "test_stream_export.rtt";
    const std::string binPath2 = "test_stream_export2.rtt";
    std::vector<trace::Record> recs = recordCounterRun();

    // Binary -> records.
    EXPECT_EQ(trace::exportBinaryFile(recs, binPath), recs.size());
    query::LoadResult fromBin = query::loadBinary(binPath);
    ASSERT_TRUE(fromBin.ok) << fromBin.error;

    // JSON -> records and CSV -> records, through the text loaders.
    std::ostringstream json, csv;
    trace::exportJson(recs, json);
    trace::exportCsv(recs, csv);
    std::istringstream jsonIn(json.str()), csvIn(csv.str());
    query::LoadResult fromJson = query::loadJson(jsonIn);
    query::LoadResult fromCsv = query::loadCsv(csvIn);
    ASSERT_TRUE(fromJson.ok) << fromJson.error;
    ASSERT_TRUE(fromCsv.ok) << fromCsv.error;

    // All three decodes agree with the original, field for field.
    ASSERT_EQ(fromBin.records.size(), recs.size());
    ASSERT_EQ(fromJson.records.size(), recs.size());
    ASSERT_EQ(fromCsv.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(
            trace::recordsIdentical(fromBin.records[i], recs[i]));
        ASSERT_TRUE(
            trace::recordsIdentical(fromJson.records[i], recs[i]));
        ASSERT_TRUE(
            trace::recordsIdentical(fromCsv.records[i], recs[i]));
    }

    // Closing the loop binary -> JSON -> binary: re-exporting the
    // JSON-loaded records reproduces the .rtt file byte for byte.
    trace::exportBinaryFile(fromJson.records, binPath2);
    EXPECT_EQ(readBytes(binPath), readBytes(binPath2));
    std::remove(binPath.c_str());
    std::remove(binPath2.c_str());
}

// ---------------------------------------------------------------------
// Fault detection: checksum, truncation, seq gap/regression, resync
// ---------------------------------------------------------------------

TEST(StreamFile, ChecksumCorruptionIsRejectedWithItsOffset)
{
    const std::string path = "test_stream_corrupt.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    trace::exportBinaryFile(recs, path);

    // Flip one payload byte in the middle frame.
    std::vector<unsigned char> bytes = readBytes(path);
    const std::size_t frame = recs.size() / 2;
    const std::size_t frameOff =
        trace::kStreamHeaderBytes + frame * trace::kFrameBytes;
    bytes[frameOff + 20] ^= 0x40;
    writeBytes(path, bytes);

    // Strict reader: the records before the corruption, then one
    // terminal BadChecksum fault naming the frame's exact offset.
    trace::StreamReader reader(path);
    DrainResult got = drain(reader);
    EXPECT_EQ(got.records.size(), frame);
    ASSERT_EQ(got.faults.size(), 1u);
    EXPECT_EQ(got.faults[0].kind,
              trace::StreamFault::Kind::BadChecksum);
    EXPECT_EQ(got.faults[0].offset, frameOff);
    EXPECT_EQ(got.faults[0].recordIndex, frame);

    // The loader refuses the whole file with the same diagnostic.
    query::LoadResult load = query::loadBinary(path);
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("offset " + std::to_string(frameOff)),
              std::string::npos)
        << load.error;
    EXPECT_NE(load.error.find("checksum"), std::string::npos);
    EXPECT_TRUE(load.records.empty());
    std::remove(path.c_str());
}

TEST(StreamFile, TruncationIsRejected)
{
    const std::string path = "test_stream_trunc.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    trace::exportBinaryFile(recs, path);

    // Tear the final frame: keep all but its last 10 bytes.
    std::vector<unsigned char> bytes = readBytes(path);
    bytes.resize(bytes.size() - 10);
    writeBytes(path, bytes);

    trace::StreamReader reader(path);
    DrainResult got = drain(reader);
    EXPECT_EQ(got.records.size(), recs.size() - 1);
    ASSERT_EQ(got.faults.size(), 1u);
    EXPECT_EQ(got.faults[0].kind, trace::StreamFault::Kind::Truncated);
    EXPECT_EQ(got.faults[0].offset, bytes.size());

    query::LoadResult load = query::loadBinary(path);
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("truncated"), std::string::npos)
        << load.error;
    std::remove(path.c_str());
}

TEST(StreamFile, ResyncRecoversEverythingAfterACorruptFrame)
{
    const std::string path = "test_stream_resync.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    trace::exportBinaryFile(recs, path);

    std::vector<unsigned char> bytes = readBytes(path);
    const std::size_t frame = recs.size() / 2;
    const std::size_t frameOff =
        trace::kStreamHeaderBytes + frame * trace::kFrameBytes;
    bytes[frameOff + 20] ^= 0x40;
    writeBytes(path, bytes);

    // Resync mode: one frame is lost, everything else is recovered.
    // The scan reports the checksum fault, skips exactly the broken
    // frame, and the dense-seq check then flags the swallowed record.
    trace::StreamReader reader(path, /*resync=*/true);
    DrainResult got = drain(reader);
    ASSERT_EQ(got.records.size(), recs.size() - 1);
    ASSERT_EQ(got.faults.size(), 2u);
    EXPECT_EQ(got.faults[0].kind,
              trace::StreamFault::Kind::BadChecksum);
    EXPECT_EQ(got.faults[1].kind, trace::StreamFault::Kind::SeqGap);
    EXPECT_EQ(got.faults[1].prevSeq, recs[frame - 1].seq);
    EXPECT_EQ(got.faults[1].seq, recs[frame + 1].seq);
    EXPECT_EQ(reader.bytesSkipped(), trace::kFrameBytes);

    // Order and identity: the survivors are exactly recs minus the
    // corrupted frame's record.
    for (std::size_t i = 0; i < got.records.size(); ++i) {
        const trace::Record &want =
            i < frame ? recs[i] : recs[i + 1];
        ASSERT_TRUE(trace::recordsIdentical(got.records[i], want))
            << "record " << i;
    }
    std::remove(path.c_str());
}

TEST(StreamFile, DenseSeqGapIsFatalInStrictMode)
{
    const std::string path = "test_stream_gap.rtt";
    std::vector<trace::Record> recs = {
        sampleRecord(1, trace::EventKind::TxBegin),
        sampleRecord(2, trace::EventKind::Load),
        sampleRecord(4, trace::EventKind::Commit), // 3 missing.
    };
    craftStream(path, /*dense=*/true, recs);

    trace::StreamReader strict(path);
    DrainResult got = drain(strict);
    EXPECT_EQ(got.records.size(), 2u);
    ASSERT_EQ(got.faults.size(), 1u);
    EXPECT_EQ(got.faults[0].kind, trace::StreamFault::Kind::SeqGap);
    EXPECT_EQ(got.faults[0].prevSeq, 2u);
    EXPECT_EQ(got.faults[0].seq, 4u);

    // Resync mode reports the same gap but still delivers the intact
    // record behind it.
    trace::StreamReader lax(path, /*resync=*/true);
    DrainResult got2 = drain(lax);
    EXPECT_EQ(got2.records.size(), 3u);
    ASSERT_EQ(got2.faults.size(), 1u);
    EXPECT_EQ(got2.faults[0].kind, trace::StreamFault::Kind::SeqGap);

    // A sparse (non-dense) stream makes the same seqs legal: windowed
    // exports gap by construction.
    craftStream(path, /*dense=*/false, recs);
    trace::StreamReader sparse(path);
    DrainResult got3 = drain(sparse);
    EXPECT_EQ(got3.records.size(), 3u);
    EXPECT_TRUE(got3.faults.empty());
    std::remove(path.c_str());
}

TEST(StreamFile, SeqRegressionIsRejected)
{
    const std::string path = "test_stream_seqorder.rtt";
    std::vector<trace::Record> recs = {
        sampleRecord(5, trace::EventKind::TxBegin),
        sampleRecord(3, trace::EventKind::Load), // Regression.
        sampleRecord(6, trace::EventKind::Commit),
    };
    craftStream(path, /*dense=*/false, recs);

    trace::StreamReader strict(path);
    DrainResult got = drain(strict);
    EXPECT_EQ(got.records.size(), 1u);
    ASSERT_EQ(got.faults.size(), 1u);
    EXPECT_EQ(got.faults[0].kind, trace::StreamFault::Kind::SeqOrder);
    EXPECT_EQ(got.faults[0].prevSeq, 5u);
    EXPECT_EQ(got.faults[0].seq, 3u);

    // Resync skips the stale frame and keeps going.
    trace::StreamReader lax(path, /*resync=*/true);
    DrainResult got2 = drain(lax);
    EXPECT_EQ(got2.records.size(), 2u);
    EXPECT_EQ(got2.records[1].seq, 6u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Windowed validation: verdict identity and the resident-state bound
// ---------------------------------------------------------------------

TEST(StreamValidate, WindowedVerdictMatchesPostHocFieldForField)
{
    const std::string path = "test_stream_validate.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    trace::exportBinaryFile(recs, path);

    query::ReplayResult post = query::replayValidate(recs);
    ASSERT_TRUE(post.report.ok()) << post.report.summary();

    query::StreamValidateResult inc = query::validateStreamFile(path);
    ASSERT_TRUE(inc.streamOk) << inc.error;
    EXPECT_EQ(inc.recordsRead, recs.size());
    EXPECT_TRUE(inc.ok());

    const trace::ReenactReport &a = inc.replay.report;
    const trace::ReenactReport &b = post.report;
    EXPECT_EQ(a.commitsChecked, b.commitsChecked);
    EXPECT_EQ(a.repairsChecked, b.repairsChecked);
    EXPECT_EQ(a.constraintsChecked, b.constraintsChecked);
    EXPECT_EQ(a.pinsChecked, b.pinsChecked);
    EXPECT_EQ(a.abortsSeen, b.abortsSeen);
    EXPECT_EQ(a.forwardsChecked, b.forwardsChecked);
    EXPECT_EQ(a.forwardedCommitsChecked, b.forwardedCommitsChecked);
    EXPECT_EQ(a.forwardedCommitsSkipped, b.forwardedCommitsSkipped);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(inc.replay.unknownReads, post.unknownReads);
    EXPECT_EQ(inc.replay.seededWords, post.seededWords);

    // The windowed-validation memory contract: resident state peaks
    // at the number of cores that can hold an attempt open, never the
    // run length — and the run really did open attempts.
    EXPECT_GT(inc.replay.peakOpenAttempts, 0u);
    EXPECT_LE(inc.replay.peakOpenAttempts, kThreads);
    EXPECT_EQ(inc.replay.peakOpenAttempts, post.peakOpenAttempts);
    std::remove(path.c_str());
}

TEST(StreamValidate, CorruptedStreamIsNotScored)
{
    const std::string path = "test_stream_validate_bad.rtt";
    std::vector<trace::Record> recs = recordCounterRun();
    trace::exportBinaryFile(recs, path);

    std::vector<unsigned char> bytes = readBytes(path);
    bytes[bytes.size() / 2] ^= 0xFF;
    writeBytes(path, bytes);

    query::StreamValidateResult v = query::validateStreamFile(path);
    EXPECT_FALSE(v.streamOk);
    EXPECT_FALSE(v.ok());
    EXPECT_NE(v.error.find("offset"), std::string::npos) << v.error;
    std::remove(path.c_str());
}
