/**
 * @file
 * Integration tests for the coroutine execution runtime: transaction
 * retry, commit-value delivery with symbolic repair, barriers, cycle
 * accounting, and the serializability property suite (random counter
 * programs must produce identical committed state in every TM mode).
 */

#include <gtest/gtest.h>

#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;

Task<TxValue>
incrementBody(Tx &tx, Addr addr, std::int64_t delta)
{
    TxValue v = co_await tx.load(addr);
    v = tx.add(v, delta);
    co_await tx.store(addr, v);
    co_return v;
}

} // namespace

TEST(ExecRuntime, SingleThreadTxnDeliversValue)
{
    ClusterConfig cfg;
    cfg.numThreads = 1;
    cfg.tm.mode = htm::TMMode::Eager;
    Cluster cl(cfg);
    cl.memory().writeWord(kCounter, 41);
    Word seen = 0;
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        TxValue r = co_await ctx.txn([](Tx &tx) {
            return incrementBody(tx, kCounter, 1);
        });
        seen = r.raw();
        co_await ctx.barrier();
    });
    cl.run();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(cl.memory().readWord(kCounter), 42u);
}

TEST(ExecRuntime, ReturnedSymbolicValueIsRepaired)
{
    // Under RETCON the returned value must reflect the *final* input
    // value, not the one observed during execution.
    ClusterConfig cfg;
    cfg.numThreads = 2;
    cfg.tm.mode = htm::TMMode::Retcon;
    Cluster cl(cfg);
    cl.machine().predictor().observeConflict(blockAddr(kCounter));
    Word results[2] = {};
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        TxValue r = co_await ctx.txn([](Tx &tx) {
            return incrementBody(tx, kCounter, 1);
        });
        results[ctx.tid()] = r.raw();
        co_await ctx.barrier();
    });
    cl.run();
    EXPECT_EQ(cl.memory().readWord(kCounter), 2u);
    // One transaction returned 1, the other (repaired) returned 2.
    EXPECT_EQ(results[0] + results[1], 3u);
}

TEST(ExecRuntime, AccountingPartitionsCoreTime)
{
    ClusterConfig cfg;
    cfg.numThreads = 4;
    cfg.tm.mode = htm::TMMode::Eager;
    Cluster cl(cfg);
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await ctx.txn([](Tx &tx) {
                return incrementBody(tx, kCounter, 1);
            });
            co_await ctx.work(17);
        }
        co_await ctx.barrier();
    });
    cl.run();
    for (unsigned c = 0; c < 4; ++c) {
        const auto &core = cl.core(c);
        // Every cycle from 0 to the finish cycle lands in a bucket.
        EXPECT_NEAR(core.breakdown().total(),
                    double(core.stats().finishCycle), 2.0)
            << "core " << c;
    }
}

TEST(ExecRuntime, WorkChargesExactCycles)
{
    ClusterConfig cfg;
    cfg.numThreads = 1;
    Cluster cl(cfg);
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        co_await ctx.work(123);
        co_await ctx.barrier();
    });
    Cycle end = cl.run();
    EXPECT_GE(end, 123u);
    EXPECT_LE(end, 130u); // + barrier release cycle.
}

TEST(ExecRuntime, BarrierReleasesAllTogether)
{
    ClusterConfig cfg;
    cfg.numThreads = 4;
    Cluster cl(cfg);
    Cycle releases[4] = {};
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        co_await ctx.work(100 * (ctx.tid() + 1));
        co_await ctx.barrier();
        releases[ctx.tid()] = cl.eventQueue().now();
        co_await ctx.barrier();
    });
    cl.run();
    // All threads resumed at the same cycle, after the slowest (400).
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(releases[i], releases[0]);
        EXPECT_GE(releases[i], 400u);
    }
    // The early arrivals accumulated barrier time.
    EXPECT_GT(cl.core(0).breakdown().barrier, 250.0);
}

TEST(ExecRuntime, AbortedAttemptsRetryUntilCommit)
{
    ClusterConfig cfg;
    cfg.numThreads = 8;
    cfg.tm.mode = htm::TMMode::Eager;
    Cluster cl(cfg);
    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < 25; ++i)
            co_await ctx.txn([](Tx &tx) {
                return incrementBody(tx, kCounter, 1);
            });
        co_await ctx.barrier();
    });
    cl.run();
    EXPECT_EQ(cl.memory().readWord(kCounter), 200u);
    auto agg = cl.aggregateStats();
    EXPECT_EQ(agg.commits, 200u);
    EXPECT_GT(agg.aborts + cl.machine().stats().nacks, 0u)
        << "8 threads on one counter must have conflicted";
}

TEST(ExecRuntime, DeterministicAcrossRuns)
{
    auto run = [] {
        ClusterConfig cfg;
        cfg.numThreads = 6;
        cfg.tm.mode = htm::TMMode::Retcon;
        cfg.seed = 33;
        Cluster cl(cfg);
        cl.machine().predictor().observeConflict(blockAddr(kCounter));
        cl.start([&](WorkerCtx &ctx) -> Task<void> {
            for (int i = 0; i < 20; ++i) {
                co_await ctx.txn([](Tx &tx) {
                    return incrementBody(tx, kCounter, 1);
                });
                co_await ctx.work(ctx.rng().below(50));
            }
            co_await ctx.barrier();
        });
        return cl.run();
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------
// Serializability property suite: random multi-counter programs must
// leave the same committed sums in every mode (adds commute, so the
// final value of each counter equals the sum of all committed deltas,
// which equals the statically-known total).
// ---------------------------------------------------------------------

class SerializabilityTest
    : public ::testing::TestWithParam<std::tuple<htm::TMMode, int>>
{};

TEST_P(SerializabilityTest, RandomCounterProgramsCommitExactly)
{
    auto [mode, seed] = GetParam();
    constexpr int kCounters = 6;
    constexpr int kTxnsPerThread = 30;
    const unsigned nthreads = 6;

    ClusterConfig cfg;
    cfg.numThreads = nthreads;
    cfg.tm.mode = mode;
    cfg.seed = seed;
    Cluster cl(cfg);
    for (int c = 0; c < kCounters; ++c)
        cl.machine().predictor().observeConflict(
            blockAddr(0x1000 + Addr(c) * kBlockBytes));

    // Expected totals computed from the same deterministic streams.
    std::int64_t expected[kCounters] = {};
    for (unsigned t = 0; t < nthreads; ++t) {
        Xoshiro rng = Xoshiro::forThread(7 * seed + 1, t);
        for (int i = 0; i < kTxnsPerThread; ++i) {
            int c = static_cast<int>(rng.below(kCounters));
            std::int64_t d =
                static_cast<std::int64_t>(rng.below(9)) - 4;
            expected[c] += d;
        }
    }

    cl.start([&](WorkerCtx &ctx) -> Task<void> {
        Xoshiro rng =
            Xoshiro::forThread(7 * Word(std::get<1>(GetParam())) + 1,
                               ctx.tid());
        for (int i = 0; i < kTxnsPerThread; ++i) {
            int c = static_cast<int>(rng.below(kCounters));
            std::int64_t d =
                static_cast<std::int64_t>(rng.below(9)) - 4;
            Addr addr = 0x1000 + Addr(c) * kBlockBytes;
            co_await ctx.txn([addr, d](Tx &tx) {
                return incrementBody(tx, addr, d);
            });
        }
        co_await ctx.barrier();
    });
    cl.run();

    for (int c = 0; c < kCounters; ++c) {
        EXPECT_EQ(static_cast<std::int64_t>(cl.memory().readWord(
                      0x1000 + Addr(c) * kBlockBytes)),
                  expected[c])
            << "counter " << c << " under mode "
            << htm::tmModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SerializabilityTest,
    ::testing::Combine(
        ::testing::Values(htm::TMMode::Serial, htm::TMMode::Eager,
                          htm::TMMode::Lazy, htm::TMMode::LazyVB,
                          htm::TMMode::Retcon, htm::TMMode::DATM),
        ::testing::Values(1, 2, 3)));
