/**
 * @file
 * Tests for the banked memory system and commit-token arbitration:
 * the directory bank count must never change simulated results while
 * bank contention is unmodeled (bit-identical RunResults across
 * memBanks in {1,2,4}), modeled contention (bank occupancy + per-bank
 * commit tokens) must stay audit-clean at every shard x bank point,
 * banking must actually relieve the modeled bottleneck (4 banks beat
 * 1 bank under contention), and the reenactment oracle must still
 * catch deliberately corrupted repairs and forwards at the full
 * 4 shards x 4 banks scale-out point.
 */

#include <gtest/gtest.h>

#include "api/runner.hpp"
#include "exec/cluster.hpp"
#include "mem/directory.hpp"
#include "trace/reenact.hpp"
#include "trace/shard_mux.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

/**
 * Contended-counter run on a 4-shard x 4-bank cluster with full
 * contention modeling and the reenactment oracle attached. The
 * synthetic body only adds, so fault-injected (corrupted) values can
 * never feed an address computation or divisor — the standard harness
 * for negative controls (cf. test_sharded_exec).
 */
trace::ReenactReport
runBankedCounter(htm::TMMode mode, Word repair_xor, Word fwd_xor)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.numShards = 4;
    cfg.memBanks = 4;
    cfg.timing.bankOccupancy = 8;
    cfg.tm.mode = mode;
    cfg.tm.commitTokenArbitration = true;
    cfg.tm.faultInjectRepairXor = repair_xor;
    cfg.tm.faultInjectForwardXor = fwd_xor;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));

    trace::ShardMux mux(
        4, [&cluster](CoreId c) { return cluster.shardOf(c); },
        /*ring_capacity=*/0);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    mux.addDownstream(&validator);
    cluster.setTraceSink(&mux);

    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    cluster.run();
    // Injected faults corrupt committed state by design; only clean
    // runs must land the exact count.
    if (repair_xor == 0 && fwd_xor == 0) {
        EXPECT_EQ(cluster.memory().readWord(kCounter),
                  Word(kThreads * kIters));
    }
    return validator.report();
}

/** Fingerprint of everything a run's outcome observable to callers. */
struct RunPrint {
    Cycle cycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t nacks = 0;
    double totalTxnCycles = 0;
    bool valid = false;

    bool
    operator==(const RunPrint &o) const
    {
        return cycles == o.cycles && commits == o.commits &&
               aborts == o.aborts && conflicts == o.conflicts &&
               nacks == o.nacks && totalTxnCycles == o.totalTxnCycles &&
               valid == o.valid;
    }
};

RunPrint
fingerprint(const api::RunResult &r)
{
    RunPrint p;
    p.cycles = r.cycles;
    p.commits = r.machineStats.commits;
    p.aborts = r.machineStats.aborts;
    p.conflicts = r.machineStats.conflicts;
    p.nacks = r.machineStats.nacks;
    p.totalTxnCycles = r.machineStats.totalTxnCycles;
    p.valid = r.validation.ok;
    return p;
}

api::RunConfig
serviceConfig()
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.1;
    cfg.tm = api::retconConfig();
    return cfg;
}

} // namespace

TEST(DirectoryBanks, PartitionIsExhaustiveAndStable)
{
    mem::Directory dir(4);
    EXPECT_EQ(dir.numBanks(), 4u);
    for (Addr block = 0; block < 512 * kBlockBytes;
         block += kBlockBytes) {
        unsigned b = dir.bankOf(block);
        ASSERT_LT(b, 4u);
        EXPECT_EQ(b, dir.bankOf(block)); // Pure function of address.
    }

    // Entries land in their home bank and aggregate across banks.
    dir.entry(0).state = mem::DirState::Modified;
    dir.entry(kBlockBytes).state = mem::DirState::Shared;
    dir.entry(7 * kBlockBytes).state = mem::DirState::Shared;
    EXPECT_EQ(dir.numEntries(), 3u);
    EXPECT_EQ(dir.bank(dir.bankOf(0)).numEntries() +
                  dir.bank(dir.bankOf(kBlockBytes)).numEntries() +
                  dir.bank(dir.bankOf(7 * kBlockBytes)).numEntries(),
              3u);

    // dropCore routes to the right bank.
    dir.entry(0).owner = 3;
    dir.dropCore(0, 3);
    EXPECT_EQ(dir.lookup(0).state, mem::DirState::Invalid);
}

TEST(DirectoryBanks, HashSpreadsDenseRange)
{
    // The mixed bank hash must not camp a dense block range (the
    // natural layout of a hashtable's bucket array) on few banks.
    mem::Directory dir(4);
    unsigned perBank[4] = {};
    constexpr unsigned kBlocks = 4096;
    for (Addr i = 0; i < kBlocks; ++i)
        ++perBank[dir.bankOf(i * kBlockBytes)];
    for (unsigned b = 0; b < 4; ++b) {
        EXPECT_GT(perBank[b], kBlocks / 8) << "bank " << b;
        EXPECT_LT(perBank[b], kBlocks / 2) << "bank " << b;
    }
}

TEST(MemBanks, BitIdenticalAcrossBankCountsWhenUnmodeled)
{
    // With occupancy and token arbitration unmodeled the bank count
    // must be invisible: identical cycles, commits, aborts, NACKs.
    api::RunConfig cfg = serviceConfig();
    cfg.shards = 2;
    api::RunResult base = api::runOnce(cfg);
    ASSERT_TRUE(base.validation.ok);
    RunPrint want = fingerprint(base);
    for (unsigned banks : {2u, 4u, 64u}) {
        api::RunConfig c = cfg;
        c.memBanks = banks;
        RunPrint got = fingerprint(api::runOnce(c));
        EXPECT_TRUE(want == got) << banks << " banks diverged: cycles "
                                 << got.cycles << " vs " << want.cycles;
    }
}

TEST(MemBanks, BitIdenticalAcrossBankCountsEagerMode)
{
    api::RunConfig cfg = serviceConfig();
    cfg.tm = api::eagerConfig();
    api::RunResult base = api::runOnce(cfg);
    ASSERT_TRUE(base.validation.ok);
    RunPrint want = fingerprint(base);
    for (unsigned banks : {2u, 4u}) {
        api::RunConfig c = cfg;
        c.memBanks = banks;
        RunPrint got = fingerprint(api::runOnce(c));
        EXPECT_TRUE(want == got) << banks << " banks diverged";
    }
}

TEST(MemBanks, AuditCleanWithContentionModeled)
{
    // Full modeling on: directory occupancy + per-bank commit tokens.
    // Every (shards x banks) point must validate and reenact cleanly.
    for (unsigned n : {1u, 2u, 4u}) {
        api::RunConfig cfg = serviceConfig();
        cfg.shards = n;
        cfg.memBanks = n;
        cfg.memBankOccupancy = 8;
        cfg.tm.commitTokenArbitration = true;
        cfg.trace.enabled = true;
        cfg.trace.ringCapacity = 0;
        api::RunResult r = api::runOnce(cfg);
        EXPECT_TRUE(r.validation.ok) << n << "x" << n;
        EXPECT_TRUE(r.reenact.ok()) << n << "x" << n << ": "
                                    << r.reenact.summary();
        EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u);
        EXPECT_GT(r.reenact.commitsChecked, 0u);
        // The contention model must actually engage: directory
        // requests are accounted per bank, and commits acquired
        // tokens.
        std::uint64_t requests = 0, acquires = 0;
        for (const api::BankSummary &b : r.banks) {
            requests += b.requests;
            acquires += b.tokenAcquires;
        }
        EXPECT_GT(requests, 0u);
        EXPECT_GT(acquires, 0u);
        EXPECT_EQ(r.banks.size(), n);
    }
}

TEST(MemBanks, DatmChainsValidateUnderBankedMemory)
{
    // DATM forwarding chains must re-derive with zero skips on a
    // banked, contention-modeled memory system (the PR-3 oracle
    // guards this refactor).
    api::RunConfig cfg = serviceConfig();
    cfg.tm.mode = htm::TMMode::DATM;
    cfg.scale = 0.2;
    cfg.shards = 4;
    cfg.memBanks = 4;
    cfg.memBankOccupancy = 8;
    cfg.tm.commitTokenArbitration = true;
    cfg.trace.enabled = true;
    cfg.trace.ringCapacity = 0;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok);
    EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
    EXPECT_GT(r.reenact.forwardedCommitsChecked, 0u)
        << "vacuous: no forwarding chains re-derived";
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u);
}

TEST(MemBanks, BankingRelievesModeledContention)
{
    // The tentpole claim: with the monolithic spine modeled (occupied
    // directory + commit tokens), adding banks must shorten the run.
    api::RunConfig cfg = serviceConfig();
    cfg.nthreads = 16;
    cfg.scale = 0.2;
    cfg.shards = 4;
    cfg.memBankOccupancy = 8;
    cfg.tm.commitTokenArbitration = true;

    api::RunConfig one = cfg;
    one.memBanks = 1;
    api::RunConfig four = cfg;
    four.memBanks = 4;
    api::RunResult r1 = api::runOnce(one);
    api::RunResult r4 = api::runOnce(four);
    ASSERT_TRUE(r1.validation.ok);
    ASSERT_TRUE(r4.validation.ok);
    EXPECT_LT(r4.cycles, r1.cycles)
        << "4 banks should beat 1 bank under modeled contention";
    // And the single bank must show the queueing the banks remove.
    EXPECT_GT(r1.banks[0].stallCycles, 0u);
}

TEST(MemBanks, CleanCounterReenactsAt4x4)
{
    // Positive control for the negative controls below: the same
    // harness with no fault injection must reenact cleanly.
    trace::ReenactReport r =
        runBankedCounter(htm::TMMode::Retcon, 0, 0);
    EXPECT_EQ(r.mismatches, 0u) << r.summary();
    EXPECT_GT(r.repairsChecked, 0u) << "vacuous: no repairs audited";
}

TEST(MemBanks, FaultInjectedRepairCaughtAt4x4)
{
    // Negative control: a corrupted commit-time repair must be
    // flagged by the reenactment oracle at the full scale-out point
    // (4 shards x 4 banks, contention modeled).
    trace::ReenactReport r =
        runBankedCounter(htm::TMMode::Retcon, 0x4, 0);
    EXPECT_GT(r.mismatches, 0u)
        << "corrupted repairs escaped the audit on banked memory";
}

TEST(MemBanks, FaultInjectedForwardCaughtAt4x4)
{
    trace::ReenactReport r =
        runBankedCounter(htm::TMMode::DATM, 0, 0x10);
    EXPECT_GT(r.mismatches, 0u)
        << "corrupted forwards escaped the audit on banked memory";
}

TEST(MemBanks, TokenStatsOnlyWithArbitration)
{
    // Arbitration off: no token traffic, no waits, any bank count.
    api::RunConfig cfg = serviceConfig();
    cfg.memBanks = 4;
    api::RunResult r = api::runOnce(cfg);
    std::uint64_t acquires = 0, waits = 0;
    for (const api::BankSummary &b : r.banks) {
        acquires += b.tokenAcquires;
        waits += b.tokenWaits;
    }
    EXPECT_EQ(acquires, 0u);
    EXPECT_EQ(waits, 0u);
    for (const api::ShardSummary &s : r.shards)
        EXPECT_EQ(s.tokenWaits, 0u);
}
