/**
 * @file
 * Tests for the trace-query layer (src/query) and the what-if
 * reenactment engine (src/api/whatif): index surfaces on a recorded
 * contended-counter run, annotation anchoring, loader strictness on
 * corrupted input, offline replay, and the two what-if proofs — the
 * no-change bit-identity self-check and reach-frontier soundness
 * under a conflict-class knob change.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/whatif.hpp"
#include "exec/cluster.hpp"
#include "query/index.hpp"
#include "query/loader.hpp"
#include "query/replay.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;
constexpr Word kPhaseMark = 7;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

/** Contended-counter run under RETCON, fully recorded. */
std::vector<trace::Record>
recordCounterRun(bool annotate = false)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.tm.mode = htm::TMMode::Retcon;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));
    trace::TraceRecorder ring(1 << 16);
    cluster.setTraceSink(&ring);
    cluster.start([annotate](WorkerCtx &ctx) -> Task<void> {
        if (annotate)
            ctx.annotate(kPhaseMark);
        for (int i = 0; i < kIters; ++i) {
            co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
            co_await ctx.work(20);
        }
        if (annotate)
            ctx.annotate(kPhaseMark + 1);
        co_await ctx.barrier();
    });
    cluster.run();
    EXPECT_EQ(cluster.memory().readWord(kCounter),
              Word{kThreads} * kIters);
    std::vector<trace::Record> recs;
    ring.forEach([&](const trace::Record &r) { recs.push_back(r); });
    EXPECT_EQ(ring.dropped(), 0u);
    return recs;
}

/** Quick contended service base config for the what-if proofs. */
api::RunConfig
whatIfBase()
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    cfg.annotatePhases = true;
    cfg.trace.enabled = true;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// TraceIndex surfaces on a recorded contended run
// ---------------------------------------------------------------------

TEST(QueryIndex, TimelineCoversTheContendedBlock)
{
    query::TraceIndex idx(recordCounterRun());
    auto tl = idx.blockTimeline(kCounter);
    ASSERT_FALSE(tl.empty());
    std::uint64_t prevSeq = 0;
    for (const query::TimelineEntry &e : tl) {
        const trace::Record &r = idx.records()[e.recordIdx];
        // Every entry touches (or blames) the counter's block, in
        // strictly ascending seq order.
        EXPECT_EQ(blockAddr(r.addr), blockAddr(kCounter));
        EXPECT_GT(r.seq, prevSeq);
        prevSeq = r.seq;
    }
    // All 200 increments flow through this one block: every repair in
    // the run lands on its timeline.
    query::TraceStats st = idx.stats();
    ASSERT_GT(st.repairs, 0u);
    std::uint64_t repairsOnBlock = 0;
    for (const query::TimelineEntry &e : tl)
        repairsOnBlock += idx.records()[e.recordIdx].kind ==
                          trace::EventKind::Repair;
    EXPECT_EQ(repairsOnBlock, st.repairs);
    EXPECT_FALSE(st.hotBlocks.empty());
    EXPECT_EQ(st.hotBlocks.front().first, blockAddr(kCounter));
}

TEST(QueryIndex, AttemptsPartitionTheStream)
{
    query::TraceIndex idx(recordCounterRun());
    query::TraceStats st = idx.stats();
    EXPECT_EQ(st.attempts, idx.attempts().size());
    EXPECT_EQ(st.commits, Word{kThreads} * kIters);
    for (const auto &[uid, at] : idx.attempts()) {
        EXPECT_EQ(at.uid, uid);
        EXPECT_FALSE(at.committed && at.aborted);
        EXPECT_FALSE(at.recordIdx.empty());
        if (at.committed || at.aborted)
            EXPECT_GT(at.endSeq, at.beginSeq);
        // attemptAtSeq maps the interval back to the attempt.
        EXPECT_EQ(idx.attemptAtSeq(at.beginSeq), uid);
    }
}

TEST(QueryIndex, BlameChainsNameTheKillerBlock)
{
    query::TraceIndex idx(recordCounterRun());
    std::size_t chained = 0;
    for (const auto &[uid, at] : idx.attempts()) {
        if (!at.aborted)
            continue;
        auto chain = idx.blameChain(uid);
        ASSERT_FALSE(chain.empty());
        EXPECT_EQ(chain.front().uid, uid);
        EXPECT_EQ(chain.front().cause, at.abortCause);
        if (at.blameBlock != 0) {
            EXPECT_EQ(chain.front().block, blockAddr(kCounter));
            ++chained;
        }
        // A non-aborted attempt has nothing to blame.
        if (chain.front().winnerUid != 0) {
            const query::Attempt *w = idx.attempt(chain.front().winnerUid);
            ASSERT_NE(w, nullptr);
            EXPECT_NE(w->uid, uid);
        }
    }
    // The contended counter aborts with the counter block to blame at
    // least once in 200 racing increments.
    EXPECT_GT(chained, 0u);
}

TEST(QueryIndex, CommitDiffReplaysTheRepairedIncrement)
{
    query::TraceIndex idx(recordCounterRun());
    std::size_t diffs = 0;
    for (const auto &[uid, at] : idx.attempts()) {
        if (!at.committed || at.repairs == 0)
            continue;
        auto d = idx.commitDiff(at.endSeq);
        ASSERT_TRUE(d.has_value());
        ASSERT_EQ(d->size(), at.repairs);
        for (const query::RepairDelta &delta : *d) {
            // The counter increment: before + 1, symbolically tagged.
            EXPECT_EQ(delta.word, wordAddr(kCounter));
            EXPECT_EQ(delta.after, delta.before + 1);
            EXPECT_TRUE(delta.symbolic);
            EXPECT_EQ(delta.sym.delta, 1);
        }
        ++diffs;
    }
    EXPECT_GT(diffs, 0u);
    // A seq outside every committed attempt has no diff.
    EXPECT_FALSE(idx.commitDiff(~std::uint64_t{0} - 1).has_value());
}

TEST(QueryIndex, AnnotationSpansAnchorAttempts)
{
    query::TraceIndex idx(recordCounterRun(/*annotate=*/true));

    // Hit: every core opened a kPhaseMark span and closed it at its
    // second mark.
    auto spans = idx.spansForMark(kPhaseMark);
    ASSERT_EQ(spans.size(), kThreads);
    for (const query::AnnotationSpan &s : spans)
        EXPECT_LT(s.startSeq, s.endSeq);
    // Every attempt began inside a kPhaseMark span (the second mark
    // fires after the loop, before the barrier).
    for (const auto &[uid, at] : idx.attempts()) {
        ASSERT_TRUE(at.annotation.has_value());
        EXPECT_EQ(*at.annotation, kPhaseMark);
    }
    // abortsUnderMark partitions exactly the aborted attempts.
    query::TraceStats st = idx.stats();
    EXPECT_EQ(idx.abortsUnderMark(kPhaseMark).size(), st.aborts);

    // Miss: an unknown mark matches nothing.
    EXPECT_TRUE(idx.spansForMark(0xDEAD).empty());
    EXPECT_TRUE(idx.abortsUnderMark(0xDEAD).empty());
}

TEST(QueryReplay, RecordedCounterRunReenactsOffline)
{
    std::vector<trace::Record> recs = recordCounterRun();
    query::ReplayResult rep = query::replayValidate(recs);
    EXPECT_TRUE(rep.report.ok()) << rep.report.summary();
    EXPECT_GT(rep.report.commitsChecked, 0u);
    EXPECT_GT(rep.report.repairsChecked, 0u);
    // The complete stream reveals every word before it is needed.
    EXPECT_EQ(rep.unknownReads, 0u);
}

// ---------------------------------------------------------------------
// Loader strictness: a corrupted trace must not load
// ---------------------------------------------------------------------

TEST(QueryLoader, RoundTripThenCorruptionIsRejected)
{
    std::vector<trace::Record> recs = recordCounterRun();
    std::ostringstream json;
    trace::exportJson(recs, json);

    // Baseline: the untouched export loads bit-identically.
    {
        std::istringstream in(json.str());
        query::LoadResult ok = query::loadJson(in);
        ASSERT_TRUE(ok.ok) << ok.error;
        ASSERT_EQ(ok.records.size(), recs.size());
        for (std::size_t i = 0; i < recs.size(); ++i)
            ASSERT_TRUE(
                trace::recordsIdentical(ok.records[i], recs[i]));
    }

    // Unknown kind name.
    {
        std::string bad = json.str();
        std::size_t p = bad.find("\"kind\":\"commit\"");
        ASSERT_NE(p, std::string::npos);
        bad.replace(p, 15, "\"kind\":\"commot\"");
        std::istringstream in(bad);
        query::LoadResult r = query::loadJson(in);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("unknown kind"), std::string::npos);
    }

    // Seq-order violation (a duplicated line).
    {
        std::string s = json.str();
        std::size_t firstNl = s.find('\n');
        ASSERT_NE(firstNl, std::string::npos);
        std::string dup = s.substr(0, firstNl + 1);
        std::istringstream in(dup + dup);
        query::LoadResult r = query::loadJson(in);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("seq order"), std::string::npos);
    }

    // Truncated line (not a JSON object anymore).
    {
        std::string s = json.str();
        std::istringstream in(s.substr(0, s.find('\n') - 3));
        query::LoadResult r = query::loadJson(in);
        EXPECT_FALSE(r.ok);
    }

    // CSV: a malformed row fails with its line number.
    {
        std::ostringstream csv;
        trace::exportCsv(recs, csv);
        std::string bad = csv.str();
        std::size_t hdr = bad.find('\n');
        std::size_t row = bad.find('\n', hdr + 1);
        ASSERT_NE(row, std::string::npos);
        bad.insert(hdr + 1, "not,a,row\n");
        std::istringstream in(bad);
        query::LoadResult r = query::loadCsv(in);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("line 2"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// What-if reenactment
// ---------------------------------------------------------------------

TEST(WhatIf, NoChangeIsBitIdenticalWithFullPrefixReuse)
{
    api::WhatIfResult w = api::runWhatIf(whatIfBase(), {});
    ASSERT_TRUE(w.ok) << w.error;
    EXPECT_EQ(w.reach, api::ReachClass::Nothing);
    EXPECT_TRUE(w.bitIdentical);
    EXPECT_FALSE(w.diverged);
    EXPECT_DOUBLE_EQ(w.prefixReuse, 1.0);
    EXPECT_EQ(w.prefixRecords, w.recorded.size());
    EXPECT_TRUE(w.prefixProofHeld);
    EXPECT_TRUE(w.blockDeltas.empty());
    // The reconstructed stream is the recorded one, and it reenacts.
    ASSERT_EQ(w.reconstructed.size(), w.recorded.size());
    EXPECT_TRUE(w.reenact.report.ok()) << w.reenact.report.summary();
}

TEST(WhatIf, ConflictKnobDivergesAtOrAfterTheFrontier)
{
    api::WhatIfResult w =
        api::runWhatIf(whatIfBase(), {{"backoff", "exp"}});
    ASSERT_TRUE(w.ok) << w.error;
    EXPECT_EQ(w.reach, api::ReachClass::Conflicts);
    // The contended service recording must have a frontier, else the
    // soundness claim below is vacuous.
    ASSERT_NE(w.firstReachableSeq, trace::kSeqUnreached);
    EXPECT_GT(w.prefixRecords, 0u);
    EXPECT_LT(w.prefixReuse, 1.0);
    // Reach soundness: backoff only acts where attempts interact, so
    // nothing before the first-interaction frontier may move.
    EXPECT_TRUE(w.prefixProofHeld);
    if (w.diverged)
        EXPECT_GE(w.firstDivergentSeq, w.firstReachableSeq);
    // The spliced prefix+suffix stream is a coherent history.
    EXPECT_TRUE(w.reenact.report.ok()) << w.reenact.report.summary();
    // Both runs were real, audited runs.
    EXPECT_TRUE(w.baseResult.validation.ok);
    EXPECT_TRUE(w.variantResult.validation.ok);
    EXPECT_TRUE(w.baseResult.reenact.ok());
    EXPECT_TRUE(w.variantResult.reenact.ok());
}

TEST(WhatIf, EverythingClassKnobReachesTheWholeStream)
{
    api::WhatIfResult w =
        api::runWhatIf(whatIfBase(), {{"seed", "2"}});
    ASSERT_TRUE(w.ok) << w.error;
    EXPECT_EQ(w.reach, api::ReachClass::Everything);
    // Everything is reachable: no prefix can be reused...
    EXPECT_EQ(w.prefixRecords, 0u);
    // ...and a different seed genuinely diverges.
    EXPECT_TRUE(w.diverged);
    EXPECT_GE(w.firstDivergentSeq, w.recorded.front().seq);
    EXPECT_TRUE(w.reenact.report.ok()) << w.reenact.report.summary();
}

TEST(WhatIf, BadKnobIsRejected)
{
    api::WhatIfResult w =
        api::runWhatIf(whatIfBase(), {{"warp-factor", "9"}});
    EXPECT_FALSE(w.ok);
    EXPECT_NE(w.error.find("warp-factor"), std::string::npos);

    api::RunConfig cfg;
    EXPECT_FALSE(api::applyKnob(cfg, "backoff", "sideways"));
    EXPECT_FALSE(api::applyKnob(cfg, "nthreads", "0"));
    EXPECT_TRUE(api::applyKnob(cfg, "backoff", "exp"));
    EXPECT_EQ(cfg.tm.backoff.policy, htm::BackoffPolicy::ExpCapped);
}
