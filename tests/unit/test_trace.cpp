/**
 * @file
 * Tests for the provenance & repair-audit subsystem (src/trace):
 * ring-buffer wraparound, the disabled-sink fast path (identical
 * simulated timing with tracing on/off), reenactment agreement on the
 * contended shared-counter workload in every TM mode, detection of
 * deliberately corrupted repairs, and the exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/cluster.hpp"
#include "query/loader.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "trace/reenact.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

/** Branches on the symbolic counter so constraints get recorded. */
Task<TxValue>
boundedIncrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    if (tx.cmp(v, rtc::CmpOp::LT, 1'000'000))
        v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx, bool bounded)
{
    for (int i = 0; i < kIters; ++i) {
        if (bounded) {
            co_await ctx.txn(
                [](Tx &tx) { return boundedIncrementBody(tx); });
        } else {
            co_await ctx.txn(
                [](Tx &tx) { return incrementBody(tx); });
        }
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

struct RunOutput {
    Cycle cycles = 0;
    Word counter = 0;
    trace::ReenactReport report;
    std::uint64_t events = 0;
};

RunOutput
runCounter(htm::TMMode mode, bool traced, Word fault_xor = 0,
           bool bounded = false, trace::TraceRecorder *ring = nullptr,
           Word fwd_fault_xor = 0)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.tm.mode = mode;
    cfg.tm.faultInjectRepairXor = fault_xor;
    cfg.tm.faultInjectForwardXor = fwd_fault_xor;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));

    trace::MultiSink sink;
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    if (traced) {
        sink.add(&validator);
        if (ring)
            sink.add(ring);
        cluster.setTraceSink(&sink);
    }

    cluster.start([bounded](WorkerCtx &ctx) {
        return threadMain(ctx, bounded);
    });
    RunOutput out;
    out.cycles = cluster.run();
    out.counter = cluster.memory().readWord(kCounter);
    out.report = validator.report();
    if (ring)
        out.events = ring->totalEvents();
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------

TEST(TraceRecorder, RetainsEverythingBelowCapacity)
{
    trace::TraceRecorder rec(8);
    for (Word i = 0; i < 5; ++i)
        rec.onEvent(trace::Record{i, 0, trace::EventKind::UserMark, 0, i,
                                  0, {}, false, rtc::CmpOp::EQ, 0});
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.totalEvents(), 5u);
    EXPECT_EQ(rec.dropped(), 0u);
    auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (Word i = 0; i < 5; ++i)
        EXPECT_EQ(snap[i].a, i);
}

TEST(TraceRecorder, WraparoundKeepsNewestInOrder)
{
    trace::TraceRecorder rec(4);
    for (Word i = 0; i < 11; ++i)
        rec.onEvent(trace::Record{i, 0, trace::EventKind::UserMark, 0, i,
                                  0, {}, false, rtc::CmpOp::EQ, 0});
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.totalEvents(), 11u);
    EXPECT_EQ(rec.dropped(), 7u);
    auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // The newest 4 records (7,8,9,10), oldest first.
    for (Word i = 0; i < 4; ++i)
        EXPECT_EQ(snap[i].a, 7 + i);
}

TEST(TraceRecorder, ClearResetsButKeepsCapacity)
{
    trace::TraceRecorder rec(4);
    for (Word i = 0; i < 6; ++i)
        rec.onEvent(trace::Record{});
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.totalEvents(), 0u);
    EXPECT_EQ(rec.capacity(), 4u);
    rec.onEvent(trace::Record{});
    EXPECT_EQ(rec.size(), 1u);
}

// ---------------------------------------------------------------------
// Disabled fast path
// ---------------------------------------------------------------------

TEST(TraceDisabled, TimingIdenticalWithAndWithoutSink)
{
    // Tracing must observe, never perturb: the deterministic simulation
    // must produce cycle-identical runs with the sink on and off.
    for (htm::TMMode mode :
         {htm::TMMode::Eager, htm::TMMode::Retcon, htm::TMMode::Lazy}) {
        RunOutput off = runCounter(mode, false);
        RunOutput on = runCounter(mode, true);
        EXPECT_EQ(off.cycles, on.cycles) << htm::tmModeName(mode);
        EXPECT_EQ(off.counter, on.counter) << htm::tmModeName(mode);
    }
}

TEST(TraceDisabled, NoSinkReportsNothing)
{
    RunOutput off = runCounter(htm::TMMode::Retcon, false);
    EXPECT_EQ(off.counter, Word(kThreads * kIters));
    EXPECT_EQ(off.report.commitsChecked, 0u);
    EXPECT_EQ(off.report.repairsChecked, 0u);
}

// ---------------------------------------------------------------------
// Reenactment agreement
// ---------------------------------------------------------------------

TEST(Reenactment, SharedCounterAgreesInEveryMode)
{
    for (htm::TMMode mode :
         {htm::TMMode::Serial, htm::TMMode::Eager, htm::TMMode::Lazy,
          htm::TMMode::LazyVB, htm::TMMode::Retcon, htm::TMMode::DATM}) {
        RunOutput out = runCounter(mode, true);
        EXPECT_EQ(out.counter, Word(kThreads * kIters))
            << htm::tmModeName(mode);
        EXPECT_EQ(out.report.mismatches, 0u) << htm::tmModeName(mode);
        EXPECT_EQ(out.report.commitsChecked,
                  std::uint64_t(kThreads * kIters))
            << htm::tmModeName(mode);
    }
}

TEST(Reenactment, RetconRepairsAreChecked)
{
    RunOutput out = runCounter(htm::TMMode::Retcon, true);
    // Contended symbolic counter: commits must actually repair.
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_EQ(out.report.mismatches, 0u);
}

TEST(Reenactment, LazyVbPinsAreChecked)
{
    // lazy-vb degrades every tracked word to value validation: the
    // audit must re-verify those equality pins at commit.
    RunOutput out = runCounter(htm::TMMode::LazyVB, true);
    EXPECT_GT(out.report.pinsChecked, 0u);
    EXPECT_EQ(out.report.mismatches, 0u);
}

TEST(Reenactment, BranchConstraintsAreReplayed)
{
    RunOutput out =
        runCounter(htm::TMMode::Retcon, true, 0, /*bounded=*/true);
    EXPECT_EQ(out.counter, Word(kThreads * kIters));
    EXPECT_GT(out.report.constraintsChecked, 0u);
    EXPECT_EQ(out.report.mismatches, 0u);
}

TEST(Reenactment, CorruptedRepairIsFlagged)
{
    // Fault-inject a bit flip into every repaired commit store: the
    // machine happily commits, so only the reenactment oracle stands
    // between the bug and silently corrupted committed state.
    RunOutput out = runCounter(htm::TMMode::Retcon, true, /*xor=*/0x10);
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::RepairValue);
    // expected ^ got must show exactly the injected fault.
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x10));
}

TEST(Reenactment, CorruptedLazyDrainIsFlagged)
{
    // The lazy write-buffer drain is also a commit-time repair path;
    // fault injection must be observable by the oracle there too.
    RunOutput out = runCounter(htm::TMMode::Lazy, true, /*xor=*/0x4);
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

TEST(TraceExport, JsonAndCsvCoverAllRetainedRecords)
{
    trace::TraceRecorder ring(1 << 12);
    RunOutput out =
        runCounter(htm::TMMode::Retcon, true, 0, false, &ring);
    ASSERT_GT(out.events, 0u);

    std::ostringstream json;
    std::size_t njson = trace::exportJson(ring, json);
    EXPECT_EQ(njson, ring.size());
    // One JSON object per line.
    std::size_t lines = 0;
    for (char c : json.str())
        lines += c == '\n';
    EXPECT_EQ(lines, njson);
    EXPECT_NE(json.str().find("\"kind\":\"repair\""), std::string::npos);
    EXPECT_NE(json.str().find("\"sym\":{\"root\":"), std::string::npos);

    std::ostringstream csv;
    std::size_t ncsv = trace::exportCsv(ring, csv);
    EXPECT_EQ(ncsv, ring.size());
    EXPECT_EQ(csv.str().rfind("cycle,core,kind,", 0), 0u);
    // The machine-global merge key is exported in both formats.
    EXPECT_NE(json.str().find("\"seq\":"), std::string::npos);
    EXPECT_NE(std::string(trace::csvHeader()).find("seq"),
              std::string::npos);
}

TEST(TraceExport, AnnotationMarksRoundTripThroughJson)
{
    // WorkerCtx::annotate stamps a UserMark record into the stream;
    // the JSON export must surface the mark id in a dedicated
    // `annotation` field so consumers can correlate workload phases
    // with machine events (docs/trace-format.md).
    ClusterConfig cfg;
    cfg.numThreads = 2;
    trace::TraceRecorder ring(1 << 10);
    Cluster cluster(cfg);
    cluster.setTraceSink(&ring);
    cluster.start([](WorkerCtx &ctx) -> Task<void> {
        ctx.annotate(0xBEE5 + ctx.tid());
        co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
        ctx.annotate(0xD0CE);
        co_await ctx.barrier();
    });
    cluster.run();

    std::uint64_t marks = 0;
    ring.forEach([&](const trace::Record &r) {
        marks += r.kind == trace::EventKind::UserMark;
    });
    EXPECT_EQ(marks, 4u); // Two per thread.

    std::ostringstream json;
    trace::exportJson(ring, json);
    EXPECT_NE(json.str().find("\"kind\":\"mark\""), std::string::npos);
    EXPECT_NE(json.str().find("\"annotation\":" +
                              std::to_string(0xBEE5)),
              std::string::npos);
    EXPECT_NE(json.str().find("\"annotation\":" +
                              std::to_string(0xD0CE)),
              std::string::npos);
    // Non-mark records must not carry the field.
    EXPECT_EQ(json.str().find("\"kind\":\"commit\",\"annotation\""),
              std::string::npos);
}

TEST(TraceExport, CsvCarriesAnnotationAndBothFormatsRoundTrip)
{
    // CSV must match JSON on the annotation surface: a mark row
    // carries its id in the trailing `annotation` column, every other
    // row leaves it empty. And both exports must parse back
    // (query::loadJson / loadCsv) into the exact records they came
    // from — the loader is the query CLI's input path, so a lossy
    // round trip would silently corrupt every downstream query.
    ClusterConfig cfg;
    cfg.numThreads = 2;
    trace::TraceRecorder ring(1 << 10);
    Cluster cluster(cfg);
    cluster.setTraceSink(&ring);
    cluster.start([](WorkerCtx &ctx) -> Task<void> {
        ctx.annotate(0xFACE);
        co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
        co_await ctx.barrier();
    });
    cluster.run();

    EXPECT_NE(std::string(trace::csvHeader()).find("annotation"),
              std::string::npos);
    std::ostringstream csv;
    trace::exportCsv(ring, csv);
    EXPECT_NE(csv.str().find("," + std::to_string(0xFACE) + "\n"),
              std::string::npos);

    std::vector<trace::Record> original;
    ring.forEach([&](const trace::Record &r) { original.push_back(r); });

    std::istringstream csvIn(csv.str());
    query::LoadResult fromCsv = query::loadCsv(csvIn);
    ASSERT_TRUE(fromCsv.ok) << fromCsv.error;
    ASSERT_EQ(fromCsv.records.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_TRUE(
            trace::recordsIdentical(fromCsv.records[i], original[i]))
            << "CSV row " << i;

    std::ostringstream json;
    trace::exportJson(ring, json);
    std::istringstream jsonIn(json.str());
    query::LoadResult fromJson = query::loadJson(jsonIn);
    ASSERT_TRUE(fromJson.ok) << fromJson.error;
    ASSERT_EQ(fromJson.records.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_TRUE(
            trace::recordsIdentical(fromJson.records[i], original[i]))
            << "JSON line " << i;
}

// ---------------------------------------------------------------------
// DATM forwarding visibility
// ---------------------------------------------------------------------

TEST(TraceDatm, ForwardedCommitsCarryTheDatmForwardedFlag)
{
    // Every commit that consumed forwarded data is flagged, and every
    // flagged commit's chain is re-derived by the validator (the
    // Forward records name the producing attempt + store).
    trace::TraceRecorder ring(1 << 14);
    RunOutput out =
        runCounter(htm::TMMode::DATM, true, 0, false, &ring);
    EXPECT_EQ(out.counter, Word(kThreads * kIters));
    std::uint64_t commits = 0, flagged = 0;
    ring.forEach([&](const trace::Record &r) {
        if (r.kind != trace::EventKind::Commit)
            return;
        ++commits;
        if (r.aux & trace::kCommitAuxDatmForwarded)
            ++flagged;
    });
    EXPECT_EQ(commits, std::uint64_t(kThreads * kIters));
    // The contended counter forwards constantly under DATM.
    EXPECT_GT(flagged, 0u);
    EXPECT_LT(flagged, commits); // Uncontended commits stay unflagged.
    // The flag and the validator agree commit by commit.
    EXPECT_EQ(out.report.forwardedCommitsChecked, flagged);
    EXPECT_EQ(out.report.forwardedCommitsSkipped, 0u);

    // And the flag round-trips through the JSON export.
    std::ostringstream json;
    trace::exportJson(ring, json);
    EXPECT_NE(json.str().find("\"datm_forwarded\":true"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"datm_forwarded\":false"),
              std::string::npos);
}

TEST(TraceDatm, ForwardingChainsAreReDerived)
{
    // The tentpole guarantee: zero chains skipped, every forwarded
    // read resolved against the producer's logged store — the audit
    // is no longer "sound except on the interesting path".
    RunOutput out = runCounter(htm::TMMode::DATM, true);
    EXPECT_EQ(out.counter, Word(kThreads * kIters));
    EXPECT_GT(out.report.forwardsChecked, 0u);
    EXPECT_GT(out.report.forwardedCommitsChecked, 0u);
    EXPECT_EQ(out.report.forwardedCommitsSkipped, 0u);
    EXPECT_EQ(out.report.mismatches, 0u) << out.report.summary();
}

TEST(TraceDatm, ForwardRecordsNameProducerAndValueId)
{
    trace::TraceRecorder ring(1 << 14);
    runCounter(htm::TMMode::DATM, true, 0, false, &ring);
    std::uint64_t forwards = 0;
    ring.forEach([&](const trace::Record &r) {
        if (r.kind != trace::EventKind::Forward)
            return;
        ++forwards;
        EXPECT_NE(r.b, 0u);   // Producer attempt uid.
        EXPECT_NE(r.vid, 0u); // Producing store's write seq.
        EXPECT_EQ(r.addr % kWordBytes, 0u);
    });
    EXPECT_GT(forwards, 0u);

    // Forward records round-trip through the JSON export.
    std::ostringstream json;
    trace::exportJson(ring, json);
    EXPECT_NE(json.str().find("\"kind\":\"forward\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"producer_uid\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"vid\":"), std::string::npos);
}

TEST(TraceDatm, CorruptedForwardedValueIsFlagged)
{
    // Fault-inject a bit flip into every forwarded value as it is
    // delivered (architectural memory keeps the producer's real
    // value). The machine commits regardless; only the chain
    // re-derivation stands between the bug and silently wrong
    // committed state. Do not assert the final counter here — the
    // injected corruption really does poison the computed sums.
    RunOutput out = runCounter(htm::TMMode::DATM, true, 0, false,
                               nullptr, /*fwd_xor=*/0x20);
    EXPECT_GT(out.report.forwardsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::ForwardValue);
    // expected ^ got must show exactly the injected fault.
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x20));
}

TEST(TraceDatm, CleanModesNeverRecordForwards)
{
    for (htm::TMMode mode :
         {htm::TMMode::Eager, htm::TMMode::Lazy, htm::TMMode::Retcon}) {
        RunOutput out = runCounter(mode, true);
        EXPECT_EQ(out.report.forwardsChecked, 0u)
            << htm::tmModeName(mode);
        EXPECT_EQ(out.report.forwardedCommitsChecked, 0u)
            << htm::tmModeName(mode);
    }
}

// ---------------------------------------------------------------------
// Validator protocol checks on synthetic streams
//
// The machine enforces DATM commit order, so the broken interleavings
// below can only be produced by a buggy machine — which is precisely
// what the audit exists to catch. Feed the validator hand-crafted
// record streams and pin each verdict.
// ---------------------------------------------------------------------

namespace {

trace::Record
rec(trace::EventKind kind, CoreId core, Addr addr = 0, Word a = 0,
    Word b = 0, std::uint8_t aux = 0, std::uint64_t vid = 0)
{
    static std::uint64_t seq = 1;
    trace::Record r;
    r.kind = kind;
    r.core = core;
    r.addr = addr;
    r.a = a;
    r.b = b;
    r.aux = aux;
    r.vid = vid;
    r.seq = seq++;
    return r;
}

trace::ReenactmentValidator
makeValidator()
{
    return trace::ReenactmentValidator([](Addr) { return Word(0); });
}

} // namespace

TEST(TraceDatmProtocol, CleanHandoffValidates)
{
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, /*uid=*/101));
    v.onEvent(rec(trace::EventKind::Store, 0, 0x100, 7, 7, 0, 11));
    v.onEvent(rec(trace::EventKind::TxBegin, 1, 0, 2, /*uid=*/102));
    v.onEvent(rec(trace::EventKind::Forward, 1, 0x100, 7, 101, 0, 11));
    v.onEvent(rec(trace::EventKind::Commit, 0)); // Producer first.
    v.onEvent(rec(trace::EventKind::Commit, 1, 0, 0, 0,
                  trace::kCommitAuxDatmForwarded));
    EXPECT_EQ(v.report().mismatches, 0u) << v.report().summary();
    EXPECT_EQ(v.report().forwardsChecked, 1u);
    EXPECT_EQ(v.report().forwardedCommitsChecked, 1u);
    EXPECT_EQ(v.report().forwardedCommitsSkipped, 0u);
}

TEST(TraceDatmProtocol, ConsumerCommitBeforeProducerResolvesIsFlagged)
{
    // The consumer commits while its producer is still in flight:
    // DATM commit order violated, whatever the producer does later.
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, 101));
    v.onEvent(rec(trace::EventKind::Store, 0, 0x100, 7, 7, 0, 11));
    v.onEvent(rec(trace::EventKind::TxBegin, 1, 0, 2, 102));
    v.onEvent(rec(trace::EventKind::Forward, 1, 0x100, 7, 101, 0, 11));
    v.onEvent(rec(trace::EventKind::Commit, 1, 0, 0, 0,
                  trace::kCommitAuxDatmForwarded));
    EXPECT_EQ(v.report().mismatches, 1u);
    ASSERT_FALSE(v.report().samples.empty());
    EXPECT_EQ(v.report().samples[0].what,
              trace::Mismatch::What::ForwardChain);
}

TEST(TraceDatmProtocol, ProducerAbortPoisonsConsumersLinks)
{
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, 101));
    v.onEvent(rec(trace::EventKind::Store, 0, 0x100, 7, 7, 0, 11));
    v.onEvent(rec(trace::EventKind::TxBegin, 1, 0, 2, 102));
    v.onEvent(rec(trace::EventKind::Forward, 1, 0x100, 7, 101, 0, 11));
    v.onEvent(rec(trace::EventKind::Abort, 0)); // Producer dies...
    v.onEvent(rec(trace::EventKind::Commit, 1, 0, 0, 0,
                  trace::kCommitAuxDatmForwarded)); // ...consumer not.
    EXPECT_EQ(v.report().mismatches, 1u);
    ASSERT_FALSE(v.report().samples.empty());
    EXPECT_EQ(v.report().samples[0].what,
              trace::Mismatch::What::ForwardChain);
}

TEST(TraceDatmProtocol, ValueIdMismatchBreaksTheChain)
{
    // The Forward names a store the producer's log does not hold
    // (wrong vid): the machine forwarded a value with no matching
    // provenance.
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, 101));
    v.onEvent(rec(trace::EventKind::Store, 0, 0x100, 7, 7, 0, 11));
    v.onEvent(rec(trace::EventKind::TxBegin, 1, 0, 2, 102));
    v.onEvent(rec(trace::EventKind::Forward, 1, 0x100, 7, 101, 0, 12));
    v.onEvent(rec(trace::EventKind::Commit, 0));
    v.onEvent(rec(trace::EventKind::Commit, 1, 0, 0, 0,
                  trace::kCommitAuxDatmForwarded));
    EXPECT_EQ(v.report().mismatches, 1u);
    ASSERT_FALSE(v.report().samples.empty());
    EXPECT_EQ(v.report().samples[0].what,
              trace::Mismatch::What::ForwardChain);
}

TEST(TraceDatmProtocol, FlaggedCommitWithoutLinksCountsAsSkipped)
{
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, 101));
    v.onEvent(rec(trace::EventKind::Commit, 0, 0, 0, 0,
                  trace::kCommitAuxDatmForwarded));
    EXPECT_EQ(v.report().forwardedCommitsSkipped, 1u);
    EXPECT_EQ(v.report().mismatches, 1u);
}

TEST(TraceDatmProtocol, LinksWithoutTheCommitFlagAreFlagged)
{
    auto v = makeValidator();
    v.onEvent(rec(trace::EventKind::TxBegin, 0, 0, 1, 101));
    v.onEvent(rec(trace::EventKind::Store, 0, 0x100, 7, 7, 0, 11));
    v.onEvent(rec(trace::EventKind::TxBegin, 1, 0, 2, 102));
    v.onEvent(rec(trace::EventKind::Forward, 1, 0x100, 7, 101, 0, 11));
    v.onEvent(rec(trace::EventKind::Commit, 0));
    v.onEvent(rec(trace::EventKind::Commit, 1)); // Flag lost.
    EXPECT_EQ(v.report().mismatches, 1u);
    // The links are still scored after the structural flag.
    EXPECT_EQ(v.report().forwardsChecked, 1u);
}

TEST(TraceDatm, NonDatmCommitsNeverCarryTheFlag)
{
    trace::TraceRecorder ring(1 << 14);
    runCounter(htm::TMMode::Retcon, true, 0, false, &ring);
    ring.forEach([&](const trace::Record &r) {
        if (r.kind == trace::EventKind::Commit) {
            EXPECT_EQ(r.aux & trace::kCommitAuxDatmForwarded, 0);
        }
    });
}
