/** @file Unit tests for stats primitives and the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace retcon;

TEST(AvgMax, EmptyIsZero)
{
    AvgMax a;
    EXPECT_DOUBLE_EQ(a.avg(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(AvgMax, TracksAverageAndMax)
{
    AvgMax a;
    a.sample(2);
    a.sample(4);
    a.sample(12);
    EXPECT_DOUBLE_EQ(a.avg(), 6.0);
    EXPECT_DOUBLE_EQ(a.max(), 12.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(AvgMax, MergeCombinesStreams)
{
    AvgMax a, b;
    a.sample(1);
    a.sample(3);
    b.sample(5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.avg(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(AvgMax, MaxCorrectForAllNegativeSamples)
{
    AvgMax a;
    a.sample(-7);
    a.sample(-3);
    a.sample(-12);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
    EXPECT_DOUBLE_EQ(a.avg(), -22.0 / 3.0);
}

TEST(AvgMax, MergeRoundTripMatchesSingleStream)
{
    // Splitting one sample stream across trackers and merging must
    // reproduce the single-tracker result exactly — including when
    // every sample is negative and when one side is empty.
    const double samples[] = {-9, -2.5, -4, -100, -0.5};
    AvgMax whole, left, right, empty;
    for (std::size_t i = 0; i < std::size(samples); ++i) {
        whole.sample(samples[i]);
        (i % 2 ? left : right).sample(samples[i]);
    }
    left.merge(right);
    left.merge(empty);
    EXPECT_DOUBLE_EQ(left.avg(), whole.avg());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), whole.sum());

    // Merging a populated tracker into an empty one is the identity.
    AvgMax onto;
    onto.merge(whole);
    EXPECT_DOUBLE_EQ(onto.max(), whole.max());
    EXPECT_DOUBLE_EQ(onto.avg(), whole.avg());
}

TEST(AvgMax, ResetRestoresNegativeCorrectness)
{
    AvgMax a;
    a.sample(5);
    a.reset();
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    a.sample(-2);
    EXPECT_DOUBLE_EQ(a.max(), -2.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(99);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Percentile)
{
    Histogram h(16);
    for (std::uint64_t v = 0; v < 10; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Histogram, NegativeSamplesLandInUnderflow)
{
    Histogram h(4);
    h.sample(-1);
    h.sample(-100);
    h.sample(2);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.total(), 3u);
    // Negatives sit below every bucket for percentile purposes.
    EXPECT_EQ(h.percentile(1.0), 2u);
}

TEST(Histogram, MergeRoundTripMatchesSingleStream)
{
    const std::int64_t samples[] = {-3, 0, 1, 1, 3, 7, 99};
    Histogram whole(4), left(4), right(4);
    for (std::size_t i = 0; i < std::size(samples); ++i) {
        whole.sample(samples[i]);
        (i % 2 ? left : right).sample(samples[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), whole.total());
    EXPECT_EQ(left.underflow(), whole.underflow());
    EXPECT_EQ(left.overflow(), whole.overflow());
    for (std::size_t i = 0; i < whole.size(); ++i)
        EXPECT_EQ(left.bucket(i), whole.bucket(i)) << i;
    EXPECT_EQ(left.percentile(0.5), whole.percentile(0.5));
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("commits");
    s.add("commits", 2);
    EXPECT_DOUBLE_EQ(s.get("commits"), 3.0);
    EXPECT_DOUBLE_EQ(s.get("absent"), 0.0);
}

TEST(StatSet, Merge)
{
    StatSet a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
}

TEST(Xoshiro, DeterministicForSameSeed)
{
    Xoshiro a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Xoshiro, BelowStaysInRange)
{
    Xoshiro r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Xoshiro, RangeInclusive)
{
    Xoshiro r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Xoshiro, PerThreadStreamsIndependent)
{
    Xoshiro a = Xoshiro::forThread(1, 0);
    Xoshiro b = Xoshiro::forThread(1, 1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Xoshiro, UniformInUnitInterval)
{
    Xoshiro r(11);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro, ChanceExtremes)
{
    Xoshiro r(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0, 100));
        EXPECT_TRUE(r.chance(100, 100));
    }
}
