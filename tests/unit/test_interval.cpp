/**
 * @file
 * Property-style tests for the interval constraint algebra (§4.4).
 *
 * The soundness obligation: the interval must never *accept* a value
 * that some recorded constraint rejects (accepting too much would let
 * RETCON commit state computed from an impossible input). Rejecting
 * too much merely costs a spurious abort.
 */

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "retcon/interval.hpp"
#include "sim/random.hpp"

using namespace retcon;
using namespace retcon::rtc;

TEST(Interval, DefaultUnconstrained)
{
    Interval iv;
    EXPECT_TRUE(iv.unconstrained());
    EXPECT_FALSE(iv.empty());
    EXPECT_TRUE(iv.contains(0));
    EXPECT_TRUE(iv.contains(std::numeric_limits<std::int64_t>::min()));
    EXPECT_TRUE(iv.contains(std::numeric_limits<std::int64_t>::max()));
}

TEST(Interval, SingleConstraints)
{
    {
        Interval iv;
        EXPECT_TRUE(iv.constrain(CmpOp::LT, 10));
        EXPECT_TRUE(iv.contains(9));
        EXPECT_FALSE(iv.contains(10));
    }
    {
        Interval iv;
        EXPECT_TRUE(iv.constrain(CmpOp::LE, 10));
        EXPECT_TRUE(iv.contains(10));
        EXPECT_FALSE(iv.contains(11));
    }
    {
        Interval iv;
        EXPECT_TRUE(iv.constrain(CmpOp::EQ, 10));
        EXPECT_TRUE(iv.contains(10));
        EXPECT_FALSE(iv.contains(9));
        EXPECT_FALSE(iv.contains(11));
    }
    {
        Interval iv;
        EXPECT_TRUE(iv.constrain(CmpOp::GE, 10));
        EXPECT_TRUE(iv.contains(10));
        EXPECT_FALSE(iv.contains(9));
    }
    {
        Interval iv;
        EXPECT_TRUE(iv.constrain(CmpOp::GT, 10));
        EXPECT_TRUE(iv.contains(11));
        EXPECT_FALSE(iv.contains(10));
    }
}

TEST(Interval, NeAtEdgesIsExact)
{
    Interval iv;
    iv.constrain(CmpOp::GE, 5);
    iv.constrain(CmpOp::LE, 10);
    EXPECT_TRUE(iv.constrain(CmpOp::NE, 5));
    EXPECT_FALSE(iv.contains(5));
    EXPECT_TRUE(iv.contains(6));
    EXPECT_TRUE(iv.constrain(CmpOp::NE, 10));
    EXPECT_FALSE(iv.contains(10));
}

TEST(Interval, NeOutsideIsFree)
{
    Interval iv;
    iv.constrain(CmpOp::GE, 5);
    iv.constrain(CmpOp::LE, 10);
    EXPECT_TRUE(iv.constrain(CmpOp::NE, 100));
    EXPECT_TRUE(iv.contains(7));
}

TEST(Interval, InteriorNeIsRejectedNotDropped)
{
    Interval iv;
    iv.constrain(CmpOp::GE, 0);
    iv.constrain(CmpOp::LE, 10);
    Interval before = iv;
    // Interior exclusion cannot be represented: the call must refuse
    // (so the caller falls back to an equality pin) and must leave the
    // interval untouched.
    EXPECT_FALSE(iv.constrain(CmpOp::NE, 5));
    EXPECT_EQ(iv, before);
}

TEST(Interval, ContradictionBecomesEmpty)
{
    Interval iv;
    iv.constrain(CmpOp::GT, 10);
    iv.constrain(CmpOp::LT, 5);
    EXPECT_TRUE(iv.empty());
    EXPECT_FALSE(iv.contains(7));
}

TEST(Interval, NegationTable)
{
    EXPECT_EQ(negate(CmpOp::LT), CmpOp::GE);
    EXPECT_EQ(negate(CmpOp::LE), CmpOp::GT);
    EXPECT_EQ(negate(CmpOp::EQ), CmpOp::NE);
    EXPECT_EQ(negate(CmpOp::NE), CmpOp::EQ);
    EXPECT_EQ(negate(CmpOp::GE), CmpOp::LT);
    EXPECT_EQ(negate(CmpOp::GT), CmpOp::LE);
}

TEST(Interval, EvalCmpMatchesOperators)
{
    for (std::int64_t a : {-3, 0, 7}) {
        for (std::int64_t b : {-3, 0, 7}) {
            EXPECT_EQ(evalCmp(a, CmpOp::LT, b), a < b);
            EXPECT_EQ(evalCmp(a, CmpOp::LE, b), a <= b);
            EXPECT_EQ(evalCmp(a, CmpOp::EQ, b), a == b);
            EXPECT_EQ(evalCmp(a, CmpOp::NE, b), a != b);
            EXPECT_EQ(evalCmp(a, CmpOp::GE, b), a >= b);
            EXPECT_EQ(evalCmp(a, CmpOp::GT, b), a > b);
        }
    }
}

/**
 * Property sweep: apply random constraint sequences and verify the
 * interval never accepts a rejected value (soundness) over a probe
 * grid, whenever the constraint was accepted as exact.
 */
class IntervalPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(IntervalPropertyTest, SoundnessUnderRandomConstraintSequences)
{
    Xoshiro rng(GetParam() * 7919 + 13);
    for (int trial = 0; trial < 200; ++trial) {
        Interval iv;
        std::vector<std::pair<CmpOp, std::int64_t>> accepted;
        for (int c = 0; c < 6; ++c) {
            auto op = static_cast<CmpOp>(rng.below(6));
            std::int64_t k =
                static_cast<std::int64_t>(rng.below(41)) - 20;
            if (iv.constrain(op, k))
                accepted.emplace_back(op, k);
        }
        for (std::int64_t v = -25; v <= 25; ++v) {
            bool all_ok = true;
            for (auto &[op, k] : accepted)
                all_ok = all_ok && evalCmp(v, op, k);
            if (iv.contains(v)) {
                // Soundness: accepted values satisfy every exact
                // constraint.
                EXPECT_TRUE(all_ok)
                    << "interval accepts " << v
                    << " which violates a recorded constraint";
            } else if (all_ok) {
                // Precision loss must come only from NE handling,
                // which shrinks edges: the interval may reject a
                // satisfying value, and that is acceptable.
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Range(0, 8));
