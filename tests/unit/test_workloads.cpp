/**
 * @file
 * Workload-level integration tests: every Table 2 workload validates
 * its functional output under every machine configuration at a small
 * scale, deterministically; plus shape assertions for the paper's
 * headline qualitative results.
 */

#include <gtest/gtest.h>

#include "api/runner.hpp"

using namespace retcon;

class WorkloadValidation
    : public ::testing::TestWithParam<
          std::tuple<std::string, const char *>>
{};

TEST_P(WorkloadValidation, FunctionalStateCorrect)
{
    auto [workload, config] = GetParam();
    api::RunConfig cfg;
    cfg.workload = workload;
    cfg.nthreads = 4;
    cfg.scale = 0.05;
    if (std::string(config) == "eager")
        cfg.tm = api::eagerConfig();
    else if (std::string(config) == "lazy-vb")
        cfg.tm = api::lazyVbConfig();
    else
        cfg.tm = api::retconConfig();
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << r.validation.note;
    EXPECT_GT(r.coreStats.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadValidation,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::extendedWorkloadNames()),
        ::testing::Values("eager", "lazy-vb", "retcon")),
    [](const auto &info) {
        std::string name =
            std::get<0>(info.param) + "_" + std::get<1>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(WorkloadDeterminism, SameSeedSameCycles)
{
    api::RunConfig cfg;
    cfg.workload = "vacation_opt-sz";
    cfg.nthreads = 4;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    Cycle a = api::runOnce(cfg).cycles;
    Cycle b = api::runOnce(cfg).cycles;
    EXPECT_EQ(a, b);
}

TEST(WorkloadShape, RetconLiftsPythonOpt)
{
    // The headline result at test scale: RETCON must clearly beat the
    // eager baseline on python_opt (refcount repair).
    api::RunConfig cfg;
    cfg.workload = "python_opt";
    cfg.nthreads = 8;
    cfg.scale = 0.25;
    cfg.tm = api::eagerConfig();
    Cycle eager = api::runOnce(cfg).cycles;
    cfg.tm = api::retconConfig();
    Cycle rc = api::runOnce(cfg).cycles;
    EXPECT_LT(double(rc) * 1.5, double(eager))
        << "RETCON should be at least 1.5x faster than eager";
}

TEST(WorkloadShape, RetconDoesNotHelpYada)
{
    api::RunConfig cfg;
    cfg.workload = "yada";
    cfg.nthreads = 8;
    cfg.scale = 0.25;
    cfg.tm = api::eagerConfig();
    Cycle eager = api::runOnce(cfg).cycles;
    cfg.tm = api::retconConfig();
    Cycle rc = api::runOnce(cfg).cycles;
    // Within 40% of each other: no dramatic change either way (§5.4).
    EXPECT_LT(double(rc), 1.4 * double(eager));
    EXPECT_GT(double(rc), 0.6 * double(eager));
}

TEST(WorkloadShape, FixedTablesOutscaleResizableOnEager)
{
    api::RunConfig cfg;
    cfg.nthreads = 8;
    cfg.scale = 0.25;
    cfg.tm = api::eagerConfig();
    cfg.workload = "intruder_opt";
    Cycle fixed = api::runOnce(cfg).cycles;
    cfg.workload = "intruder_opt-sz";
    Cycle sz = api::runOnce(cfg).cycles;
    EXPECT_LT(double(fixed), double(sz))
        << "size-field conflicts must hurt the eager baseline";
}

TEST(WorkloadShape, Table1DefaultsMatchPaper)
{
    // Table 1 configuration constants.
    mem::MemTimingConfig t;
    EXPECT_EQ(t.l1Hit, 1u);
    EXPECT_EQ(t.l2Hit, 10u);
    EXPECT_EQ(t.hop, 20u);
    EXPECT_EQ(t.dram, 100u);
    mem::CacheConfig c;
    EXPECT_EQ(c.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(c.l1.ways, 4u);
    EXPECT_EQ(c.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(c.permOnly.sizeBytes, 4u * 1024);
    htm::TMConfig tm = api::retconConfig();
    EXPECT_EQ(tm.ivbEntries, 16u);
    EXPECT_EQ(tm.constraintEntries, 16u);
    EXPECT_EQ(tm.ssbEntries, 32u);
    EXPECT_EQ(tm.predictor.trainDownConflicts, 100u);
}
