/**
 * @file
 * Differential determinism suite for the host-parallel engine.
 *
 * The sequential engine is the reference; the parallel engine must be
 * bit-identical at every tested grid point: same RunResult
 * fingerprints, byte-identical merged traces, same audit verdicts
 * (zero mismatches, zero skipped forward chains), and the
 * fault-injection negative controls must still be *caught* when the
 * engine runs on real host threads. A repeated-run harness
 * (ParallelDeterminism.*, registered separately in ctest as
 * test_parallel_determinism) runs one parallel config 20x in-process:
 * a real race may survive one lucky run, but not twenty.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/runner.hpp"
#include "exec/cluster.hpp"
#include "trace/reenact.hpp"
#include "trace/shard_mux.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

/** Serialize every field of every record: byte equality, not "close". */
std::string
traceBytes(const std::vector<trace::Record> &records)
{
    std::ostringstream os;
    for (const trace::Record &r : records) {
        os << r.cycle << '|' << unsigned(r.core) << '|'
           << unsigned(r.kind) << '|' << r.addr << '|' << r.a << '|'
           << r.b << '|' << r.hasSym << '|' << unsigned(r.cmp) << '|'
           << unsigned(r.aux) << '|' << r.seq << '|' << r.vid << '\n';
    }
    return os.str();
}

struct CounterRun {
    Cycle cycles = 0;
    Word counter = 0;
    std::uint64_t commits = 0;
    std::uint64_t executed = 0;
    trace::ReenactReport report;
    std::string trace;
    std::uint64_t muxEvents = 0;
};

/** Contended-counter run with mux + validator on N host threads. */
CounterRun
runCounter(unsigned nshards, unsigned host_threads,
           unsigned bandwidth = 0, htm::TMMode mode = htm::TMMode::Retcon,
           Word fault_xor = 0, Word fwd_fault_xor = 0)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.numShards = nshards;
    cfg.shardBandwidth = bandwidth;
    cfg.hostThreads = host_threads;
    cfg.tm.mode = mode;
    cfg.tm.faultInjectRepairXor = fault_xor;
    cfg.tm.faultInjectForwardXor = fwd_fault_xor;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));

    trace::ShardMux mux(
        nshards, [&cluster](CoreId c) { return cluster.shardOf(c); },
        /*ring_capacity=*/1 << 16);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    mux.addDownstream(&validator);
    cluster.setTraceSink(&mux);

    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    CounterRun out;
    out.cycles = cluster.run();
    out.counter = cluster.memory().readWord(kCounter);
    out.commits = cluster.aggregateStats().commits;
    out.executed = cluster.eventQueue().executed();
    out.report = validator.report();
    out.trace = traceBytes(mux.mergedSnapshot());
    out.muxEvents = mux.totalEvents();
    return out;
}

/** FNV-1a over every simulated observable of a RunResult. */
std::uint64_t
fingerprint(const api::RunResult &r)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(r.cycles);
    mix(r.coreStats.txns);
    mix(r.coreStats.commits);
    mix(r.coreStats.aborts);
    mix(r.coreStats.finishCycle);
    mix(r.validation.ok);
    mix(r.traceEvents);
    mix(r.reenact.commitsChecked);
    mix(r.reenact.repairsChecked);
    mix(r.reenact.forwardsChecked);
    mix(r.reenact.forwardedCommitsChecked);
    mix(r.reenact.forwardedCommitsSkipped);
    mix(r.reenact.mismatches);
    for (const api::ShardSummary &s : r.shards) {
        mix(s.txns);
        mix(s.commits);
        mix(s.aborts);
        mix(s.queueScheduled);
        mix(s.queueExecuted);
        mix(s.queueStolen);
        mix(s.queueDeferred);
        mix(s.traceEvents);
        mix(s.repairs);
        mix(s.forwards);
        mix(s.tokenWaits);
        mix(s.schedObserved);
        mix(s.schedDefers);
        mix(s.schedDeferCycles);
        mix(s.schedRepairableSkips);
    }
    for (const api::BankSummary &b : r.banks) {
        mix(b.requests);
        mix(b.stalled);
        mix(b.stallCycles);
        mix(b.tokenAcquires);
        mix(b.tokenWaits);
    }
    mix(r.net.messages);
    mix(r.net.payloadWords);
    mix(r.net.queueCycles);
    return h;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** runOnce with the trace exported, returning (fingerprint, bytes). */
std::pair<std::uint64_t, std::string>
runApi(api::RunConfig cfg, const std::string &tag)
{
    cfg.trace.enabled = true;
    std::string path = "pe_trace_" + tag + ".json";
    cfg.trace.exportJsonPath = path;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << tag << ": " << r.validation.note;
    EXPECT_EQ(r.reenact.mismatches, 0u)
        << tag << ": " << r.reenact.summary();
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u) << tag;
    std::string bytes = slurp(path);
    EXPECT_FALSE(bytes.empty()) << tag;
    std::remove(path.c_str());
    return {fingerprint(r), bytes};
}

} // namespace

// ---------------------------------------------------------------------
// Differential grid: counter workload at the cluster level
// ---------------------------------------------------------------------

TEST(ParallelEngine, CounterGridBitIdenticalToSequential)
{
    for (unsigned shards : {1u, 4u}) {
        CounterRun ref = runCounter(shards, /*host_threads=*/0);
        ASSERT_EQ(ref.counter, Word(kThreads * kIters));
        ASSERT_EQ(ref.report.mismatches, 0u) << ref.report.summary();
        for (unsigned ht : {1u, 2u, 4u}) {
            CounterRun par = runCounter(shards, ht);
            SCOPED_TRACE(std::to_string(shards) + " shards, " +
                         std::to_string(ht) + " host threads");
            EXPECT_EQ(par.cycles, ref.cycles);
            EXPECT_EQ(par.counter, ref.counter);
            EXPECT_EQ(par.commits, ref.commits);
            EXPECT_EQ(par.executed, ref.executed);
            EXPECT_EQ(par.muxEvents, ref.muxEvents);
            EXPECT_EQ(par.report.mismatches, 0u)
                << par.report.summary();
            EXPECT_EQ(par.report.forwardedCommitsSkipped, 0u);
            EXPECT_EQ(par.trace, ref.trace)
                << "merged trace bytes diverged";
        }
    }
}

TEST(ParallelEngine, BandwidthAndStealingBitIdenticalOnHostThreads)
{
    // Dispatch-bandwidth slip and work stealing consult foreign-shard
    // horizons: the settle-before-steal path must reproduce the
    // sequential decisions exactly.
    CounterRun ref = runCounter(4, 0, /*bandwidth=*/1);
    for (unsigned ht : {2u, 4u}) {
        CounterRun par = runCounter(4, ht, /*bandwidth=*/1);
        SCOPED_TRACE(std::to_string(ht) + " host threads");
        EXPECT_EQ(par.cycles, ref.cycles);
        EXPECT_EQ(par.counter, ref.counter);
        EXPECT_EQ(par.executed, ref.executed);
        EXPECT_EQ(par.trace, ref.trace);
        EXPECT_EQ(par.report.mismatches, 0u) << par.report.summary();
    }
}

TEST(ParallelEngine, DatmForwardingBitIdenticalOnHostThreads)
{
    CounterRun ref = runCounter(4, 0, 0, htm::TMMode::DATM);
    ASSERT_GT(ref.report.forwardsChecked, 0u);
    ASSERT_EQ(ref.report.forwardedCommitsSkipped, 0u);
    for (unsigned ht : {2u, 4u}) {
        CounterRun par = runCounter(4, ht, 0, htm::TMMode::DATM);
        SCOPED_TRACE(std::to_string(ht) + " host threads");
        EXPECT_EQ(par.cycles, ref.cycles);
        EXPECT_EQ(par.trace, ref.trace);
        EXPECT_EQ(par.report.forwardsChecked, ref.report.forwardsChecked);
        EXPECT_EQ(par.report.forwardedCommitsSkipped, 0u);
        EXPECT_EQ(par.report.mismatches, 0u) << par.report.summary();
    }
}

// ---------------------------------------------------------------------
// Negative controls: corruption must still be CAUGHT on host threads
// ---------------------------------------------------------------------

TEST(ParallelEngine, CorruptedRepairCaughtUnderParallelEngine)
{
    CounterRun out =
        runCounter(4, /*host_threads=*/4, 0, htm::TMMode::Retcon,
                   /*fault_xor=*/0x10);
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::RepairValue);
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x10));
}

TEST(ParallelEngine, CorruptedForwardCaughtUnderParallelEngine)
{
    CounterRun out =
        runCounter(4, /*host_threads=*/4, 0, htm::TMMode::DATM,
                   /*fault_xor=*/0, /*fwd_fault_xor=*/0x40);
    EXPECT_GT(out.report.forwardsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::ForwardValue);
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x40));
}

// ---------------------------------------------------------------------
// Differential grid: real workloads through the public API
// ---------------------------------------------------------------------

TEST(ParallelEngine, WorkloadGridBitIdenticalToSequential)
{
    for (const char *workload : {"service", "intruder"}) {
        for (unsigned shards : {1u, 4u}) {
            for (unsigned banks : {1u, 4u}) {
                api::RunConfig cfg;
                cfg.workload = workload;
                cfg.nthreads = 8;
                cfg.scale = 0.05;
                cfg.tm = api::retconConfig();
                cfg.shards = shards;
                cfg.memBanks = banks;
                std::string base = std::string(workload) + "_s" +
                                   std::to_string(shards) + "_b" +
                                   std::to_string(banks);
                auto ref = runApi(cfg, base + "_ref");
                for (unsigned ht : {1u, 2u, 4u}) {
                    cfg.hostThreads = ht;
                    auto par =
                        runApi(cfg, base + "_h" + std::to_string(ht));
                    SCOPED_TRACE(base + " hostThreads=" +
                                 std::to_string(ht));
                    EXPECT_EQ(par.first, ref.first)
                        << "RunResult fingerprint diverged";
                    EXPECT_EQ(par.second, ref.second)
                        << "exported trace bytes diverged";
                }
            }
        }
    }
}

TEST(ParallelEngine, PartitionsClustersAndSchedulingBitIdentical)
{
    // The remaining tentpole axes: service partitions, a 2-cluster
    // fleet with cross-cluster routing, modeled contention (bandwidth,
    // bank occupancy, commit tokens) and the contention-aware
    // scheduler — all under host threads.
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    cfg.tm.commitTokenArbitration = true;
    cfg.shards = 4;
    cfg.shardBandwidth = 1;
    cfg.memBanks = 4;
    cfg.memBankOccupancy = 8;
    cfg.servicePartitions = 4;
    cfg.contentionSched = true;
    auto ref = runApi(cfg, "svc_part_ref");
    for (unsigned ht : {2u, 4u}) {
        cfg.hostThreads = ht;
        auto par = runApi(cfg, "svc_part_h" + std::to_string(ht));
        SCOPED_TRACE("partitions hostThreads=" + std::to_string(ht));
        EXPECT_EQ(par.first, ref.first);
        EXPECT_EQ(par.second, ref.second);
    }

    api::RunConfig fcfg;
    fcfg.workload = "service";
    fcfg.nthreads = 4;
    fcfg.scale = 0.05;
    fcfg.tm = api::retconConfig();
    fcfg.shards = 2;
    fcfg.memBanks = 2;
    fcfg.clusters = 2;
    fcfg.crossClusterFraction = 0.1;
    auto fref = runApi(fcfg, "svc_fleet_ref");
    for (unsigned ht : {2u, 4u}) {
        fcfg.hostThreads = ht;
        auto fpar = runApi(fcfg, "svc_fleet_h" + std::to_string(ht));
        SCOPED_TRACE("fleet hostThreads=" + std::to_string(ht));
        EXPECT_EQ(fpar.first, fref.first);
        EXPECT_EQ(fpar.second, fref.second);
    }
}

TEST(ParallelEngine, HostParallelSummaryReportsEngineShape)
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    cfg.shards = 4;

    api::RunResult seq = api::runOnce(cfg);
    EXPECT_EQ(seq.hostParallel.threads, 1u);
    EXPECT_EQ(seq.hostParallel.barrierStalls, 0u);
    EXPECT_GT(seq.hostParallel.wallMs, 0.0);

    cfg.hostThreads = 4;
    api::RunResult par = api::runOnce(cfg);
    EXPECT_EQ(par.hostParallel.threads, 4u);
    EXPECT_GT(par.hostParallel.wallMs, 0.0);
    // Host metadata must not leak into simulated results.
    EXPECT_EQ(par.cycles, seq.cycles);

    // hostThreads beyond the shard count clamps to one worker per
    // shard group.
    cfg.hostThreads = 16;
    api::RunResult clamped = api::runOnce(cfg);
    EXPECT_EQ(clamped.hostParallel.threads, 4u);
    EXPECT_EQ(clamped.cycles, seq.cycles);
}

// ---------------------------------------------------------------------
// Repeated-run flakiness harness (ctest: test_parallel_determinism)
// ---------------------------------------------------------------------

TEST(ParallelDeterminism, RepeatedRunsIdentical)
{
    // One lucky run hides a real race; twenty runs of the same config
    // on 4 host threads do not. Fingerprints AND trace bytes must all
    // be identical.
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    cfg.shards = 4;
    cfg.memBanks = 4;
    cfg.hostThreads = 4;
    auto first = runApi(cfg, "det_0");
    for (int i = 1; i < 20; ++i) {
        auto rep = runApi(cfg, "det_" + std::to_string(i));
        ASSERT_EQ(rep.first, first.first) << "run " << i;
        ASSERT_EQ(rep.second, first.second) << "run " << i;
    }
}

TEST(ParallelDeterminism, RepeatedCounterRunsIdentical)
{
    CounterRun first = runCounter(4, 4, /*bandwidth=*/1);
    for (int i = 1; i < 20; ++i) {
        CounterRun rep = runCounter(4, 4, /*bandwidth=*/1);
        ASSERT_EQ(rep.cycles, first.cycles) << "run " << i;
        ASSERT_EQ(rep.trace, first.trace) << "run " << i;
        ASSERT_EQ(rep.report.mismatches, 0u) << "run " << i;
    }
}
