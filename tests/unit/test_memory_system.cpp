/**
 * @file
 * Tests for the coherent memory hierarchy: Table 1 latencies, directory
 * transitions, invalidation/eviction notifications.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hpp"

using namespace retcon;
using namespace retcon::mem;

namespace {

struct Recorder : CoherenceListener {
    struct Take {
        CoreId victim;
        Addr block;
        CoreId by;
        bool byWrite;
    };
    std::vector<Take> takes;
    std::vector<std::pair<CoreId, Addr>> evicts;

    void
    onRemoteTake(CoreId victim, Addr block, CoreId by,
                 bool by_write) override
    {
        takes.push_back({victim, block, by, by_write});
    }

    void
    onCapacityEvict(CoreId victim, Addr block) override
    {
        evicts.emplace_back(victim, block);
    }
};

constexpr Addr kB = 0x10000; // A block-aligned test address.

} // namespace

TEST(MemorySystem, ColdReadGoesToDram)
{
    MemorySystem ms(4);
    AccessResult r = ms.access(0, kB, false);
    // 1 (L1) + 10 (L2) + 20 (hop) + 100 (DRAM) + 20 (hop back) = 151.
    EXPECT_EQ(r.latency, 151u);
    EXPECT_TRUE(r.dramAccess);
    EXPECT_FALSE(r.remoteTransfer);
}

TEST(MemorySystem, SecondReadHitsL1)
{
    MemorySystem ms(4);
    ms.access(0, kB, false);
    AccessResult r = ms.access(0, kB, false);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_TRUE(r.l1Hit);
}

TEST(MemorySystem, ReadFromRemoteModifiedIsCacheToCache)
{
    MemorySystem ms(4);
    ms.access(1, kB, true); // Core 1 takes M.
    AccessResult r = ms.access(0, kB, false);
    // 31 (to dir) + 20 (fwd) + 10 (owner L2) + 20 (data) = 81.
    EXPECT_EQ(r.latency, 81u);
    EXPECT_TRUE(r.remoteTransfer);
    // Both are sharers afterwards.
    EXPECT_TRUE(ms.hasReadPerm(0, kB));
    EXPECT_TRUE(ms.hasReadPerm(1, kB));
    EXPECT_FALSE(ms.hasWritePerm(1, kB));
}

TEST(MemorySystem, WriteInvalidatesSharers)
{
    MemorySystem ms(4);
    Recorder rec;
    ms.access(0, kB, false);
    ms.access(1, kB, false);
    ms.setListener(&rec);
    ms.access(2, kB, true);
    EXPECT_TRUE(ms.hasWritePerm(2, kB));
    EXPECT_FALSE(ms.hasReadPerm(0, kB));
    EXPECT_FALSE(ms.hasReadPerm(1, kB));
    ASSERT_EQ(rec.takes.size(), 2u);
    for (const auto &t : rec.takes) {
        EXPECT_EQ(t.by, 2u);
        EXPECT_TRUE(t.byWrite);
        EXPECT_EQ(t.block, kB);
    }
}

TEST(MemorySystem, WriteStealsFromRemoteOwner)
{
    MemorySystem ms(4);
    Recorder rec;
    ms.access(1, kB, true);
    ms.setListener(&rec);
    AccessResult r = ms.access(0, kB, true);
    EXPECT_TRUE(r.remoteTransfer);
    EXPECT_EQ(r.latency, 81u);
    EXPECT_TRUE(ms.hasWritePerm(0, kB));
    EXPECT_FALSE(ms.hasReadPerm(1, kB));
    ASSERT_EQ(rec.takes.size(), 1u);
    EXPECT_EQ(rec.takes[0].victim, 1u);
}

TEST(MemorySystem, RemoteReadDowngradesOwnerWithNonWriteTake)
{
    MemorySystem ms(4);
    Recorder rec;
    ms.access(1, kB, true);
    ms.setListener(&rec);
    ms.access(0, kB, false);
    ASSERT_EQ(rec.takes.size(), 1u);
    EXPECT_EQ(rec.takes[0].victim, 1u);
    EXPECT_FALSE(rec.takes[0].byWrite);
    EXPECT_TRUE(ms.hasReadPerm(1, kB)); // Still a sharer.
}

TEST(MemorySystem, UpgradeFromSharedCostsInvalidationRound)
{
    MemorySystem ms(4);
    ms.access(0, kB, false);
    ms.access(1, kB, false);
    AccessResult r = ms.access(0, kB, true);
    // Requester already shares the data: 31 + 2 hops (inval+ack) = 71.
    EXPECT_EQ(r.latency, 71u);
    EXPECT_FALSE(r.dramAccess);
}

TEST(MemorySystem, WriteHitInOwnModifiedIsOneCycle)
{
    MemorySystem ms(4);
    ms.access(0, kB, true);
    AccessResult r = ms.access(0, kB, true);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_TRUE(r.l1Hit);
}

TEST(MemorySystem, PeekLatencyMatchesAccessWithoutStateChange)
{
    MemorySystem ms(4);
    ms.access(1, kB, true);
    Cycle peeked = ms.peekLatency(0, kB, false);
    AccessResult r = ms.access(0, kB, false);
    EXPECT_EQ(peeked, r.latency);
}

TEST(MemorySystem, L1EvictionStillHitsL2)
{
    // L1 is 64KB 4-way => 256 sets; 5 blocks mapping to the same set
    // overflow the L1 but stay in the 1MB L2.
    MemorySystem ms(1);
    std::vector<Addr> blocks;
    for (int i = 0; i < 5; ++i)
        blocks.push_back(kB + i * 64 * 1024); // Same L1 set.
    for (Addr b : blocks)
        ms.access(0, b, false);
    AccessResult r = ms.access(0, blocks[0], false);
    EXPECT_EQ(r.latency, 11u); // L1 miss, L2 hit.
    EXPECT_TRUE(r.l2Hit);
}

TEST(MemorySystem, L2CapacityEvictionNotifiesListener)
{
    // Shrink the caches so evictions are easy to provoke.
    CacheConfig small;
    small.l1 = {256, 2};  // 2 sets.
    small.l2 = {512, 2};  // 4 sets.
    MemorySystem ms(1, MemTimingConfig{}, small);
    Recorder rec;
    ms.setListener(&rec);
    // Three blocks mapping to the same L2 set (set stride 4 blocks).
    for (int i = 0; i < 3; ++i)
        ms.access(0, kB + i * 4 * 64, false);
    EXPECT_FALSE(rec.evicts.empty());
    EXPECT_EQ(rec.evicts[0].second, kB);
    // Evicted block lost its directory permissions.
    EXPECT_FALSE(ms.hasReadPerm(0, kB));
}

TEST(MemorySystem, FlushBlockDropsPermissions)
{
    MemorySystem ms(2);
    ms.access(0, kB, true);
    ms.flushBlock(0, kB);
    EXPECT_FALSE(ms.hasReadPerm(0, kB));
    EXPECT_FALSE(ms.hasWritePerm(0, kB));
    AccessResult r = ms.access(0, kB, false);
    EXPECT_EQ(r.latency, 151u); // Back to DRAM.
}

TEST(MemorySystem, IndependentBlocksDoNotInterfere)
{
    MemorySystem ms(2);
    ms.access(0, kB, true);
    ms.access(1, kB + kBlockBytes, true);
    EXPECT_TRUE(ms.hasWritePerm(0, kB));
    EXPECT_TRUE(ms.hasWritePerm(1, kB + kBlockBytes));
}

TEST(MemorySystem, StatsCountHitsAndMisses)
{
    MemorySystem ms(1);
    ms.access(0, kB, false);
    ms.access(0, kB, false);
    ms.access(0, kB, false);
    EXPECT_EQ(ms.stats().get("read_misses"), 1.0);
    EXPECT_EQ(ms.stats().get("l1_hits"), 2.0);
}
