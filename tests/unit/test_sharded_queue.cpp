/**
 * @file
 * Tests for the sharded event queue (sim/sharded_queue.hpp): global
 * time/schedule ordering across shards, equivalence with a single
 * queue for any shard count, per-shard clock domains, cancellation
 * routing, dispatch-bandwidth slips, and the work-stealing fallback.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"

using namespace retcon;

namespace {

ShardedQueueConfig
config(unsigned nshards, unsigned bandwidth = 0, bool stealing = true)
{
    ShardedQueueConfig cfg;
    cfg.nshards = nshards;
    cfg.dispatchBandwidth = bandwidth;
    cfg.workStealing = stealing;
    return cfg;
}

} // namespace

TEST(ShardedQueue, RunsEventsInGlobalTimeOrderAcrossShards)
{
    ShardedEventQueue q(config(3));
    std::vector<int> order;
    q.schedule(2, 30, [&] { order.push_back(30); });
    q.schedule(0, 10, [&] { order.push_back(10); });
    q.schedule(1, 20, [&] { order.push_back(20); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
    EXPECT_EQ(q.now(), 30u);
    EXPECT_TRUE(q.empty());
}

TEST(ShardedQueue, SameCycleTiesBreakOnGlobalScheduleOrder)
{
    // Same-cycle events land on different shards but must fire in the
    // order they were scheduled, exactly as one queue would run them.
    ShardedEventQueue q(config(4));
    std::vector<int> order;
    q.schedule(3, 5, [&] { order.push_back(0); });
    q.schedule(1, 5, [&] { order.push_back(1); });
    q.schedule(2, 5, [&] { order.push_back(2); });
    q.schedule(0, 5, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedQueue, ExecutionOrderIndependentOfShardCount)
{
    // A deterministic self-scheduling workload must execute in the
    // same order for any shard count (cores map round-robin).
    auto trace = [](unsigned nshards) {
        ShardedEventQueue q(config(nshards));
        std::vector<int> order;
        constexpr unsigned kCores = 8;
        for (unsigned c = 0; c < kCores; ++c) {
            unsigned shard = c % nshards;
            // Each "core" reschedules itself with a varying stride.
            auto tick = [&q, &order, c, shard](auto &&self,
                                               int depth) -> void {
                order.push_back(static_cast<int>(c * 100) + depth);
                if (depth >= 6)
                    return;
                q.scheduleAfter(shard, 1 + (c + depth) % 3,
                                [&, self, depth] { self(self, depth + 1); });
            };
            q.schedule(shard, c % 4, [&, tick] { tick(tick, 0); });
        }
        q.run();
        return order;
    };
    std::vector<int> one = trace(1);
    EXPECT_EQ(trace(2), one);
    EXPECT_EQ(trace(3), one);
    EXPECT_EQ(trace(8), one);
}

TEST(ShardedQueue, ShardClocksAreIndependentDomains)
{
    ShardedEventQueue q(config(2));
    q.schedule(0, 10, [] {});
    q.schedule(1, 25, [] {});
    q.run();
    EXPECT_EQ(q.shardNow(0), 10u);
    EXPECT_EQ(q.shardNow(1), 25u);
    EXPECT_EQ(q.now(), 25u);
}

TEST(ShardedQueue, CancelRoutesToTheHomeShard)
{
    ShardedEventQueue q(config(4));
    bool fired = false;
    q.schedule(0, 5, [] {});
    EventHandle h = q.schedule(3, 5, [&] { fired = true; });
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(h);
    q.cancel(h); // Idempotent.
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(ShardedQueue, BandwidthSlipsOverQuotaEventsToLaterCycles)
{
    ShardedEventQueue q(config(1, /*bandwidth=*/1));
    std::vector<Cycle> at;
    for (int i = 0; i < 3; ++i)
        q.schedule(0, 5, [&] { at.push_back(q.now()); });
    q.run();
    // One dispatch per cycle: the burst serializes over 5, 6, 7.
    EXPECT_EQ(at, (std::vector<Cycle>{5, 6, 7}));
    EXPECT_GT(q.shardStats(0).deferred, 0u);
}

TEST(ShardedQueue, IdleShardStealsInsteadOfSlipping)
{
    ShardedEventQueue q(config(2, /*bandwidth=*/1));
    std::vector<Cycle> at;
    q.schedule(0, 5, [&] { at.push_back(q.now()); });
    q.schedule(0, 5, [&] { at.push_back(q.now()); });
    q.run();
    // Shard 1 is idle at cycle 5 and drains shard 0's second event in
    // the same cycle — no slip.
    EXPECT_EQ(at, (std::vector<Cycle>{5, 5}));
    EXPECT_EQ(q.shardStats(1).stolen, 1u);
    EXPECT_EQ(q.shardStats(1).executed, 1u);
    EXPECT_EQ(q.shardStats(0).drained, 2u);
    EXPECT_EQ(q.shardStats(0).deferred, 0u);
}

TEST(ShardedQueue, StealingDisabledFallsBackToSlips)
{
    ShardedEventQueue q(config(2, /*bandwidth=*/1, /*stealing=*/false));
    std::vector<Cycle> at;
    q.schedule(0, 5, [&] { at.push_back(q.now()); });
    q.schedule(0, 5, [&] { at.push_back(q.now()); });
    q.run();
    EXPECT_EQ(at, (std::vector<Cycle>{5, 6}));
    EXPECT_EQ(q.shardStats(0).deferred, 1u);
    EXPECT_EQ(q.shardStats(1).stolen, 0u);
}

TEST(ShardedQueue, BusyShardIsNotPickedAsThief)
{
    // Both shards have an event due this cycle; neither may steal, so
    // the over-quota burst on shard 0 slips instead.
    ShardedEventQueue q(config(2, /*bandwidth=*/1));
    std::vector<std::pair<int, Cycle>> at;
    q.schedule(0, 5, [&] { at.emplace_back(0, q.now()); });
    q.schedule(0, 5, [&] { at.emplace_back(1, q.now()); });
    q.schedule(1, 5, [&] { at.emplace_back(2, q.now()); });
    q.run();
    EXPECT_EQ(at, (std::vector<std::pair<int, Cycle>>{
                      {0, 5}, {2, 5}, {1, 6}}));
    EXPECT_EQ(q.shardStats(0).deferred, 1u);
    EXPECT_EQ(q.shardStats(1).stolen, 0u);
}

TEST(ShardedQueue, PendingAndExecutedAggregateAcrossShards)
{
    ShardedEventQueue q(config(3));
    for (unsigned s = 0; s < 3; ++s)
        for (int i = 0; i < 2; ++i)
            q.schedule(s, s + 1, [] {});
    EXPECT_EQ(q.pending(), 6u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(q.executed(), 6u);
    for (unsigned s = 0; s < 3; ++s) {
        EXPECT_EQ(q.shardStats(s).scheduled, 2u);
        EXPECT_EQ(q.shardStats(s).drained, 2u);
    }
}

TEST(ShardedQueue, RunStopsAtMaxCycles)
{
    ShardedEventQueue q(config(2));
    int ran = 0;
    q.schedule(0, 10, [&] { ++ran; });
    q.schedule(1, 100, [&] { ++ran; });
    q.run(50);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.pending(), 1u);
}
