/**
 * @file
 * Tests for the PR-5 conflict-time knobs: partitioned service state
 * (WorkloadParams::servicePartitions), NACK/abort retry backoff
 * (htm::BackoffConfig), and contention-aware re-dispatch
 * (exec/scheduler.hpp) — plus the windowed trace export.
 *
 * The contract under test is three-sided:
 *  - conservation: the service workload's validation holds at every
 *    partitions x shards x banks point (the invariant is a sum, so
 *    it is interleaving-independent by construction);
 *  - determinism: backoff jitter comes from per-core streams seeded
 *    by RunConfig::seed, so the same seed must reproduce a run
 *    bit-for-bit, and all-knobs-off must reproduce the pre-PR-5
 *    behaviour bit-for-bit;
 *  - auditability: the knobs change timing only, so the reenactment
 *    oracle must stay green (and catch injected corruption) with
 *    every knob engaged.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "api/runner.hpp"
#include "exec/cluster.hpp"
#include "trace/export.hpp"
#include "trace/reenact.hpp"
#include "trace/shard_mux.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

/** Service run under RETCON with audit on. */
api::RunConfig
serviceConfig(unsigned partitions, unsigned shards, unsigned banks)
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    cfg.shards = shards;
    cfg.memBanks = banks;
    cfg.servicePartitions = partitions;
    cfg.trace.enabled = true;
    cfg.trace.ringCapacity = 0;
    return cfg;
}

struct Fingerprint {
    Cycle cycles;
    std::uint64_t commits;
    std::uint64_t aborts;
    std::uint64_t nacks;
    std::uint64_t backoffCycles;

    bool
    operator==(const Fingerprint &o) const
    {
        return cycles == o.cycles && commits == o.commits &&
               aborts == o.aborts && nacks == o.nacks &&
               backoffCycles == o.backoffCycles;
    }
};

Fingerprint
fingerprint(const api::RunResult &r)
{
    return {r.cycles, r.coreStats.commits, r.coreStats.aborts,
            r.machineStats.nacks, r.machineStats.backoffCycles};
}

} // namespace

// ---------------------------------------------------------------------
// Partitioned service conservation across the full knob grid
// ---------------------------------------------------------------------

TEST(Contention, PartitionedServiceConservesAcrossPartitionsShardsBanks)
{
    for (unsigned parts : {1u, 2u, 8u}) {
        for (unsigned shards : {1u, 4u}) {
            for (unsigned banks : {1u, 4u}) {
                api::RunConfig cfg = serviceConfig(parts, shards, banks);
                api::RunResult r = api::runOnce(cfg);
                EXPECT_TRUE(r.validation.ok)
                    << parts << " partitions, " << shards << " shards, "
                    << banks << " banks: " << r.validation.note;
                EXPECT_TRUE(r.reenact.ok())
                    << parts << "p/" << shards << "s/" << banks
                    << "b: " << r.reenact.summary();
                EXPECT_GT(r.reenact.commitsChecked, 0u);
            }
        }
    }
}

TEST(Contention, PartitioningChangesTimingButNotRequestTotals)
{
    api::RunResult mono = api::runOnce(serviceConfig(1, 1, 1));
    api::RunResult part = api::runOnce(serviceConfig(8, 1, 1));
    // Same request stream (partition selection draws no randomness),
    // so the committed transaction count is identical; only the
    // conflict structure — and therefore timing — may differ.
    EXPECT_EQ(part.coreStats.commits, mono.coreStats.commits);
    EXPECT_TRUE(part.validation.ok) << part.validation.note;
}

// ---------------------------------------------------------------------
// All-knobs-off bit-identity and backoff determinism
// ---------------------------------------------------------------------

TEST(Contention, AllKnobsOffIsBitIdenticalToDefaults)
{
    api::RunConfig plain = serviceConfig(1, 1, 1);
    api::RunConfig knobs = plain;
    knobs.servicePartitions = 1;
    knobs.tm.backoff.policy = htm::BackoffPolicy::None;
    knobs.contentionSched = false;
    Fingerprint a = fingerprint(api::runOnce(plain));
    Fingerprint b = fingerprint(api::runOnce(knobs));
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.backoffCycles, 0u);
}

TEST(Contention, BackoffSameSeedSameResult)
{
    for (htm::BackoffPolicy pol :
         {htm::BackoffPolicy::Linear, htm::BackoffPolicy::ExpCapped,
          htm::BackoffPolicy::ConflictProportional}) {
        api::RunConfig cfg = serviceConfig(2, 4, 4);
        cfg.tm.backoff.policy = pol;
        cfg.tm.backoff.jitter = true;
        cfg.seed = 7;
        Fingerprint a = fingerprint(api::runOnce(cfg));
        Fingerprint b = fingerprint(api::runOnce(cfg));
        EXPECT_TRUE(a == b)
            << "policy " << htm::backoffPolicyName(pol)
            << " is not deterministic for a fixed seed";
    }
}

TEST(Contention, BackoffPoliciesImposeDelayAndStayValid)
{
    for (htm::BackoffPolicy pol :
         {htm::BackoffPolicy::Linear, htm::BackoffPolicy::ExpCapped,
          htm::BackoffPolicy::ConflictProportional}) {
        api::RunConfig cfg = serviceConfig(1, 1, 1);
        cfg.tm.backoff.policy = pol;
        api::RunResult r = api::runOnce(cfg);
        EXPECT_TRUE(r.validation.ok)
            << htm::backoffPolicyName(pol) << ": " << r.validation.note;
        EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
        EXPECT_GT(r.machineStats.backoffNacks +
                      r.machineStats.backoffRestarts,
                  0u)
            << htm::backoffPolicyName(pol) << " never backed off";
        EXPECT_GT(r.machineStats.backoffCycles, 0u);
    }
}

TEST(Contention, BackoffSeedChangesJitterSchedule)
{
    // Different run seeds must (a) still validate and (b) feed
    // different jitter streams. Equal makespans for two seeds are
    // possible in principle, so assert only on validity plus the
    // backoff totals of a contended run actually responding to the
    // seed somewhere in a small sample.
    api::RunConfig cfg = serviceConfig(1, 1, 1);
    cfg.tm.backoff.policy = htm::BackoffPolicy::ExpCapped;
    bool any_difference = false;
    Fingerprint first{};
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        cfg.seed = seed;
        api::RunResult r = api::runOnce(cfg);
        EXPECT_TRUE(r.validation.ok) << r.validation.note;
        Fingerprint f = fingerprint(r);
        if (seed == 1)
            first = f;
        else if (!(f == first))
            any_difference = true;
    }
    EXPECT_TRUE(any_difference)
        << "three seeds produced identical runs — jitter looks dead";
}

// ---------------------------------------------------------------------
// Contention-aware scheduling
// ---------------------------------------------------------------------

TEST(Contention, SchedulerEngagedStaysAuditCleanAndDefers)
{
    // Eager mode on the contended service mix aborts plenty, so the
    // hot-block tables heat up and deferrals actually fire; the
    // reenactment oracle must stay green throughout.
    api::RunConfig cfg = serviceConfig(1, 4, 4);
    cfg.tm = api::eagerConfig();
    cfg.contentionSched = true;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << r.validation.note;
    EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
    std::uint64_t observed = 0, defers = 0, defer_cycles = 0;
    for (const api::ShardSummary &s : r.shards) {
        observed += s.schedObserved;
        defers += s.schedDefers;
        defer_cycles += s.schedDeferCycles;
    }
    EXPECT_GT(observed, 0u) << "no contention events reached the tables";
    EXPECT_GT(defers, 0u) << "scheduler never deferred a restart";
    EXPECT_GT(defer_cycles, 0u);
}

TEST(Contention, SchedulerOffReportsZeroDefers)
{
    api::RunConfig cfg = serviceConfig(1, 4, 4);
    cfg.tm = api::eagerConfig();
    api::RunResult r = api::runOnce(cfg);
    for (const api::ShardSummary &s : r.shards) {
        EXPECT_EQ(s.schedObserved, 0u);
        EXPECT_EQ(s.schedDefers, 0u);
        EXPECT_EQ(s.schedDeferCycles, 0u);
    }
}

TEST(Contention, RepairableBlameSkipDropsDefersOnServiceMix)
{
    // skipRepairableBlame: a restart whose last abort blamed a
    // tracked (repairable-class) block needs no de-phasing — RETCON's
    // pre-commit repair absorbs that conflict — so waiving those
    // deferrals must record skips, lower the defer count, and cost
    // nothing in validity or audit cleanliness.
    api::RunConfig base = serviceConfig(1, 4, 4);
    base.contentionSched = true;
    api::RunResult defer = api::runOnce(base);

    api::RunConfig waive = base;
    waive.sched.skipRepairableBlame = true;
    api::RunResult skip = api::runOnce(waive);

    std::uint64_t defers = 0, skips = 0;
    for (const api::ShardSummary &s : defer.shards) {
        defers += s.schedDefers;
        EXPECT_EQ(s.schedRepairableSkips, 0u) << "skips without knob";
    }
    std::uint64_t skipDefers = 0;
    for (const api::ShardSummary &s : skip.shards) {
        skipDefers += s.schedDefers;
        skips += s.schedRepairableSkips;
    }
    EXPECT_GT(defers, 0u) << "vacuous: scheduler never deferred";
    EXPECT_GT(skips, 0u) << "no repairable-class blame was waived";
    EXPECT_LT(skipDefers, defers)
        << "waiving repairable blame did not drop deferrals";
    EXPECT_TRUE(skip.validation.ok) << skip.validation.note;
    EXPECT_TRUE(skip.reenact.ok()) << skip.reenact.summary();
}

TEST(Contention, SchedulerEngagedCatchesCorruptedRepair)
{
    // The negative control must survive the new timing: a fault-
    // injected repair still shows up as an audit mismatch with the
    // scheduler and backoff both engaged.
    api::RunConfig cfg = serviceConfig(2, 4, 4);
    cfg.contentionSched = true;
    cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
    cfg.tm.faultInjectRepairXor = 0x20;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_GT(r.reenact.mismatches, 0u)
        << "corrupted repairs escaped the audit under the new knobs";
}

TEST(Contention, FullKnobStackMatchesTheBenchGateShape)
{
    // The service_scalability scaled point in miniature: partitions +
    // backoff + scheduler + modeled contention all on. Everything
    // must validate, audit clean, and record knob activity.
    api::RunConfig cfg = serviceConfig(4, 4, 4);
    cfg.shardBandwidth = 1;
    cfg.memBankOccupancy = 8;
    cfg.tm.commitTokenArbitration = true;
    cfg.tm.backoff.policy = htm::BackoffPolicy::Linear;
    cfg.tm.backoff.base = 1;
    cfg.tm.backoff.cap = 16;
    cfg.contentionSched = true;
    api::RunResult r = api::runOnce(cfg);
    EXPECT_TRUE(r.validation.ok) << r.validation.note;
    EXPECT_TRUE(r.reenact.ok()) << r.reenact.summary();
    EXPECT_EQ(r.reenact.forwardedCommitsSkipped, 0u);
    EXPECT_GT(r.machineStats.backoffCycles, 0u);
}

// ---------------------------------------------------------------------
// Windowed trace export
// ---------------------------------------------------------------------

TEST(Contention, SeqWindowSelectsTheRequestedSlice)
{
    trace::Record r;
    std::vector<trace::Record> recs;
    for (std::uint64_t s = 1; s <= 100; ++s) {
        r.seq = s;
        recs.push_back(r);
    }
    std::vector<trace::Record> win = trace::seqWindow(recs, 20, 30);
    ASSERT_EQ(win.size(), 10u);
    EXPECT_EQ(win.front().seq, 20u);
    EXPECT_EQ(win.back().seq, 29u);

    // Open bounds: 0 means unbounded on that side.
    EXPECT_EQ(trace::seqWindow(recs, 0, 0).size(), recs.size());
    EXPECT_EQ(trace::seqWindow(recs, 91, 0).size(), 10u);
    EXPECT_EQ(trace::seqWindow(recs, 0, 11).size(), 10u);
    EXPECT_TRUE(trace::seqWindow(recs, 60, 50).empty());
}

TEST(Contention, SeqWindowedExportWritesOnlyTheWindow)
{
    // End-to-end through api::runOnce: the exported JSON Lines file
    // must hold exactly the records inside [seqMin, seqMax).
    api::RunConfig cfg = serviceConfig(1, 2, 1);
    cfg.trace.ringCapacity = 1 << 16;
    cfg.trace.exportSeqMin = 100;
    cfg.trace.exportSeqMax = 200;
    std::string path = ::testing::TempDir() + "retcon_seq_window.jsonl";
    cfg.trace.exportJsonPath = path;
    api::RunResult r = api::runOnce(cfg);
    ASSERT_GT(r.traceEvents, 200u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        auto pos = line.find("\"seq\":");
        ASSERT_NE(pos, std::string::npos);
        std::uint64_t seq = std::strtoull(
            line.c_str() + pos + 6, nullptr, 10);
        EXPECT_GE(seq, 100u);
        EXPECT_LT(seq, 200u);
    }
    EXPECT_EQ(lines, 100u);
    std::remove(path.c_str());
}
