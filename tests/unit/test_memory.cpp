/** @file Unit tests for sparse memory, cache tags, and the directory. */

#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/sparse_memory.hpp"

using namespace retcon;
using namespace retcon::mem;

// ---------------------------------------------------------------------
// SparseMemory
// ---------------------------------------------------------------------

TEST(SparseMemory, UnwrittenWordsReadZero)
{
    SparseMemory m;
    EXPECT_EQ(m.readWord(0x1000), 0u);
    EXPECT_EQ(m.read(0x1234, 4), 0u);
}

TEST(SparseMemory, WordRoundTrip)
{
    SparseMemory m;
    m.writeWord(0x40, 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.readWord(0x40), 0xdeadbeefcafef00dull);
    // Unaligned address resolves to the containing word.
    EXPECT_EQ(m.readWord(0x44), 0xdeadbeefcafef00dull);
}

TEST(SparseMemory, SubWordExtraction)
{
    SparseMemory m;
    m.writeWord(0x40, 0x8877665544332211ull);
    EXPECT_EQ(m.read(0x40, 1), 0x11u);
    EXPECT_EQ(m.read(0x41, 1), 0x22u);
    EXPECT_EQ(m.read(0x40, 2), 0x2211u);
    EXPECT_EQ(m.read(0x44, 4), 0x88776655u);
}

TEST(SparseMemory, SubWordWritePreservesNeighbours)
{
    SparseMemory m;
    m.writeWord(0x40, 0xffffffffffffffffull);
    m.write(0x42, 0xab, 1);
    EXPECT_EQ(m.readWord(0x40), 0xffffffffffabffffull);
}

TEST(SparseMemory, FootprintCountsDistinctWords)
{
    SparseMemory m;
    m.writeWord(0x40, 1);
    m.writeWord(0x48, 2);
    m.writeWord(0x40, 3);
    EXPECT_EQ(m.footprintWords(), 2u);
}

// ---------------------------------------------------------------------
// SetAssocCache
// ---------------------------------------------------------------------

TEST(SetAssocCache, GeometryMatchesTable1L1)
{
    // 64KB, 4-way, 64B blocks -> 256 sets.
    SetAssocCache c({64 * 1024, 4});
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.ways(), 4u);
}

TEST(SetAssocCache, InsertThenContains)
{
    SetAssocCache c({4 * 1024, 4});
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.insert(0x1000).has_value());
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_EQ(c.occupancy(), 1u);
}

TEST(SetAssocCache, EvictsLruWhenSetFull)
{
    // 1 set, 2 ways: third insert evicts the least recently used.
    SetAssocCache c({128, 2});
    ASSERT_EQ(c.numSets(), 1u);
    c.insert(0x000);
    c.insert(0x040);
    c.touch(0x000); // 0x040 is now LRU.
    auto evicted = c.insert(0x080);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x040u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x040));
}

TEST(SetAssocCache, ReinsertRefreshesRecency)
{
    SetAssocCache c({128, 2});
    c.insert(0x000);
    c.insert(0x040);
    c.insert(0x000); // Refresh, no eviction.
    auto evicted = c.insert(0x080);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x040u);
}

TEST(SetAssocCache, InvalidateFreesWay)
{
    SetAssocCache c({128, 2});
    c.insert(0x000);
    EXPECT_TRUE(c.invalidate(0x000));
    EXPECT_FALSE(c.invalidate(0x000));
    EXPECT_EQ(c.occupancy(), 0u);
    c.insert(0x040);
    EXPECT_FALSE(c.insert(0x080).has_value()); // Room for both.
}

TEST(SetAssocCache, DifferentSetsDoNotInterfere)
{
    SetAssocCache c({256, 2}); // 2 sets.
    c.insert(0x000);
    c.insert(0x080); // Different set (bit 6 toggles set 1).
    c.insert(0x040);
    c.insert(0x0c0);
    EXPECT_EQ(c.occupancy(), 4u);
}

TEST(SetAssocCache, ClearEmptiesEverything)
{
    SetAssocCache c({4 * 1024, 4});
    for (Addr b = 0; b < 16; ++b)
        c.insert(b * kBlockBytes);
    c.clear();
    EXPECT_EQ(c.occupancy(), 0u);
    EXPECT_FALSE(c.contains(0));
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

TEST(Directory, DefaultStateInvalid)
{
    Directory d;
    EXPECT_EQ(d.lookup(0x1000).state, DirState::Invalid);
    EXPECT_FALSE(d.hasReadPerm(0x1000, 0));
    EXPECT_FALSE(d.hasWritePerm(0x1000, 0));
}

TEST(Directory, SharedGrantsReadToSharersOnly)
{
    Directory d;
    DirEntry &e = d.entry(0x1000);
    e.state = DirState::Shared;
    e.sharers = 0b101; // Cores 0 and 2.
    EXPECT_TRUE(d.hasReadPerm(0x1000, 0));
    EXPECT_FALSE(d.hasReadPerm(0x1000, 1));
    EXPECT_TRUE(d.hasReadPerm(0x1000, 2));
    EXPECT_FALSE(d.hasWritePerm(0x1000, 0));
}

TEST(Directory, ModifiedGrantsBothToOwner)
{
    Directory d;
    DirEntry &e = d.entry(0x1000);
    e.state = DirState::Modified;
    e.owner = 3;
    EXPECT_TRUE(d.hasReadPerm(0x1000, 3));
    EXPECT_TRUE(d.hasWritePerm(0x1000, 3));
    EXPECT_FALSE(d.hasReadPerm(0x1000, 1));
}

TEST(Directory, DropCoreRemovesSharer)
{
    Directory d;
    DirEntry &e = d.entry(0x1000);
    e.state = DirState::Shared;
    e.sharers = 0b11;
    d.dropCore(0x1000, 0);
    EXPECT_FALSE(d.hasReadPerm(0x1000, 0));
    EXPECT_TRUE(d.hasReadPerm(0x1000, 1));
    d.dropCore(0x1000, 1);
    EXPECT_EQ(d.lookup(0x1000).state, DirState::Invalid);
}

TEST(Directory, DropOwnerInvalidates)
{
    Directory d;
    DirEntry &e = d.entry(0x1000);
    e.state = DirState::Modified;
    e.owner = 2;
    d.dropCore(0x1000, 2);
    EXPECT_EQ(d.lookup(0x1000).state, DirState::Invalid);
}
