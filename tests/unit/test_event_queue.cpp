/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

using namespace retcon;

TEST(EventQueue, StartsAtCycleZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleEventsFireInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesOnlyWhenEventsFire)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.step();
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CancelledEventsDoNotFire)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.cancel(h);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue eq;
    EventHandle h = eq.schedule(10, [] {});
    eq.cancel(h);
    eq.cancel(h);
    eq.cancel(EventHandle{});
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    EventHandle a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleAfter(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 28u);
}

TEST(EventQueue, RunStopsAtMaxCycles)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ExecutedCountsFiredEventsOnly)
{
    EventQueue eq;
    EventHandle h = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.cancel(h);
    eq.run();
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(10, [] {}), "past");
}
