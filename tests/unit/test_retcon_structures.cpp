/** @file Unit tests for the RETCON hardware structures (Figure 5). */

#include <gtest/gtest.h>

#include "retcon/constraint_buffer.hpp"
#include "retcon/ivb.hpp"
#include "retcon/predictor.hpp"
#include "retcon/ssb.hpp"
#include "retcon/symbolic.hpp"

using namespace retcon;
using namespace retcon::rtc;

// ---------------------------------------------------------------------
// SymTag / evalSym
// ---------------------------------------------------------------------

TEST(SymbolicValue, EvalAppliesDelta)
{
    SymTag t{0x1000, 5, 8};
    EXPECT_EQ(evalSym(t, 10), 15u);
    t.delta = -3;
    EXPECT_EQ(evalSym(t, 10), 7u);
}

TEST(SymbolicValue, EvalWrapsLikeHardware)
{
    SymTag t{0x1000, 1, 8};
    EXPECT_EQ(evalSym(t, ~Word(0)), 0u);
}

TEST(SymbolicValue, SubWordEvalMasks)
{
    SymTag t{0x1000, 1, 4};
    EXPECT_EQ(evalSym(t, 0xffffffffull), 0u);
    SymTag t2{0x1000, 0, 2};
    EXPECT_EQ(evalSym(t2, 0x12345678ull), 0x5678u);
}

// ---------------------------------------------------------------------
// InitialValueBuffer
// ---------------------------------------------------------------------

TEST(Ivb, AllocateAndFind)
{
    InitialValueBuffer ivb(4);
    std::array<Word, kWordsPerBlock> words{1, 2, 3, 4, 5, 6, 7, 8};
    IvbEntry *e = ivb.allocate(0x1000, words);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->initWords[2], 3u);
    EXPECT_EQ(e->curWords[2], 3u);
    EXPECT_EQ(ivb.find(0x1000), &ivb.entries()[0]);
    EXPECT_EQ(ivb.find(0x2000), nullptr);
}

TEST(Ivb, CapacityLimitReturnsNull)
{
    InitialValueBuffer ivb(2);
    std::array<Word, kWordsPerBlock> words{};
    EXPECT_NE(ivb.allocate(0x1000, words), nullptr);
    EXPECT_NE(ivb.allocate(0x2000, words), nullptr);
    EXPECT_TRUE(ivb.full());
    EXPECT_EQ(ivb.allocate(0x3000, words), nullptr);
}

TEST(Ivb, LostCountTracksStolenBlocks)
{
    InitialValueBuffer ivb(4);
    std::array<Word, kWordsPerBlock> words{};
    ivb.allocate(0x1000, words);
    ivb.allocate(0x2000, words);
    EXPECT_EQ(ivb.lostCount(), 0u);
    ivb.find(0x1000)->lost = true;
    EXPECT_EQ(ivb.lostCount(), 1u);
}

TEST(Ivb, EntriesKeepInsertionOrder)
{
    InitialValueBuffer ivb(4);
    std::array<Word, kWordsPerBlock> words{};
    ivb.allocate(0x3000, words);
    ivb.allocate(0x1000, words);
    ivb.allocate(0x2000, words);
    EXPECT_EQ(ivb.entries()[0].block, 0x3000u);
    EXPECT_EQ(ivb.entries()[1].block, 0x1000u);
    EXPECT_EQ(ivb.entries()[2].block, 0x2000u);
}

// ---------------------------------------------------------------------
// ConstraintBuffer
// ---------------------------------------------------------------------

TEST(ConstraintBuffer, RecordsAndChecks)
{
    ConstraintBuffer cb(4);
    EXPECT_EQ(cb.record(0x1000, CmpOp::GT, 4),
              ConstraintBuffer::Record::Ok);
    EXPECT_TRUE(cb.satisfied(0x1000, 5));
    EXPECT_FALSE(cb.satisfied(0x1000, 4));
    EXPECT_TRUE(cb.satisfied(0x9999, -100)); // Unconstrained root.
}

TEST(ConstraintBuffer, IntersectsConstraintsOnSameRoot)
{
    ConstraintBuffer cb(4);
    cb.record(0x1000, CmpOp::GT, 0);
    cb.record(0x1000, CmpOp::LT, 7);
    EXPECT_TRUE(cb.satisfied(0x1000, 3));
    EXPECT_FALSE(cb.satisfied(0x1000, 0));
    EXPECT_FALSE(cb.satisfied(0x1000, 7));
    EXPECT_EQ(cb.size(), 1u);
}

TEST(ConstraintBuffer, FullForcesFallback)
{
    ConstraintBuffer cb(1);
    EXPECT_EQ(cb.record(0x1000, CmpOp::GT, 0),
              ConstraintBuffer::Record::Ok);
    EXPECT_EQ(cb.record(0x2000, CmpOp::GT, 0),
              ConstraintBuffer::Record::Full);
    // Existing roots still accept refinements.
    EXPECT_EQ(cb.record(0x1000, CmpOp::LT, 9),
              ConstraintBuffer::Record::Ok);
}

TEST(ConstraintBuffer, InteriorNeReportsInexact)
{
    ConstraintBuffer cb(4);
    cb.record(0x1000, CmpOp::GE, 0);
    cb.record(0x1000, CmpOp::LE, 10);
    EXPECT_EQ(cb.record(0x1000, CmpOp::NE, 5),
              ConstraintBuffer::Record::Inexact);
    // The interval must be unchanged after the refusal.
    EXPECT_TRUE(cb.satisfied(0x1000, 5));
}

// ---------------------------------------------------------------------
// SymbolicStoreBuffer
// ---------------------------------------------------------------------

TEST(Ssb, PutFindInvalidate)
{
    SymbolicStoreBuffer ssb(4);
    EXPECT_EQ(ssb.put(0x1000, 42, SymTag{0x2000, 1, 8}, 8),
              SymbolicStoreBuffer::Put::Inserted);
    SsbEntry *e = ssb.find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->concrete, 42u);
    ASSERT_TRUE(e->sym.has_value());
    EXPECT_EQ(e->sym->root, 0x2000u);
    ssb.invalidate(0x1000);
    EXPECT_EQ(ssb.find(0x1000), nullptr);
}

TEST(Ssb, OverwriteReplacesInPlace)
{
    SymbolicStoreBuffer ssb(2);
    ssb.put(0x1000, 1, std::nullopt, 8);
    ssb.put(0x1000, 2, std::nullopt, 8);
    EXPECT_EQ(ssb.size(), 1u);
    EXPECT_EQ(ssb.find(0x1000)->concrete, 2u);
}

TEST(Ssb, FullRejectsNewEntries)
{
    SymbolicStoreBuffer ssb(1);
    EXPECT_EQ(ssb.put(0x1000, 1, std::nullopt, 8),
              SymbolicStoreBuffer::Put::Inserted);
    EXPECT_EQ(ssb.put(0x2000, 2, std::nullopt, 8),
              SymbolicStoreBuffer::Put::Full);
    // Overwrites of existing entries still succeed.
    EXPECT_EQ(ssb.put(0x1000, 3, std::nullopt, 8),
              SymbolicStoreBuffer::Put::Updated);
}

TEST(Ssb, DrainOrderIsInsertionOrder)
{
    SymbolicStoreBuffer ssb(4);
    ssb.put(0x3000, 1, std::nullopt, 8);
    ssb.put(0x1000, 2, std::nullopt, 8);
    EXPECT_EQ(ssb.entries()[0].word, 0x3000u);
    EXPECT_EQ(ssb.entries()[1].word, 0x1000u);
}

// ---------------------------------------------------------------------
// ConflictPredictor
// ---------------------------------------------------------------------

TEST(Predictor, UntrainedBlocksNotTracked)
{
    ConflictPredictor p;
    EXPECT_FALSE(p.shouldTrack(0x1000));
}

TEST(Predictor, TrainsUpAfterThresholdConflicts)
{
    ConflictPredictor p(ConflictPredictor::Config{2, 100});
    p.observeConflict(0x1000);
    EXPECT_FALSE(p.shouldTrack(0x1000));
    p.observeConflict(0x1000);
    EXPECT_TRUE(p.shouldTrack(0x1000));
}

TEST(Predictor, ViolationTrainsDownFor100Conflicts)
{
    ConflictPredictor p(ConflictPredictor::Config{1, 100});
    p.observeConflict(0x1000);
    ASSERT_TRUE(p.shouldTrack(0x1000));
    p.observeViolation(0x1000);
    EXPECT_FALSE(p.shouldTrack(0x1000));
    for (int i = 0; i < 99; ++i)
        p.observeConflict(0x1000);
    EXPECT_FALSE(p.shouldTrack(0x1000));
    p.observeConflict(0x1000); // The 100th observation re-arms.
    EXPECT_TRUE(p.shouldTrack(0x1000));
    EXPECT_EQ(p.totalViolations(), 1u);
}

TEST(Predictor, BlocksAreIndependent)
{
    ConflictPredictor p(ConflictPredictor::Config{1, 100});
    p.observeConflict(0x1000);
    p.observeViolation(0x1000);
    p.observeConflict(0x2000);
    EXPECT_FALSE(p.shouldTrack(0x1000));
    EXPECT_TRUE(p.shouldTrack(0x2000));
}
