/**
 * @file
 * Tests for the simulated data structures: hashtable mirrored against
 * std::unordered_map (including through resizes and under concurrent
 * mixed workloads), red-black invariants, queue FIFO order, allocator
 * segregation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "ds/grid.hpp"
#include "ds/hashtable.hpp"
#include "ds/mesh.hpp"
#include "ds/queue.hpp"
#include "ds/rbtree.hpp"
#include "ds/refcount.hpp"
#include "exec/cluster.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

struct DsRig {
    Cluster cl;
    ds::SimAllocator alloc;

    explicit DsRig(unsigned nthreads = 1,
                   htm::TMMode mode = htm::TMMode::Serial)
        : cl(makeCfg(nthreads, mode)),
          alloc(0x10000000, 8 << 20, nthreads)
    {}

    static ClusterConfig
    makeCfg(unsigned nthreads, htm::TMMode mode)
    {
        ClusterConfig cfg;
        cfg.numThreads = nthreads;
        cfg.tm.mode = mode;
        return cfg;
    }
};

} // namespace

TEST(Allocator, AllocationsNeverOverlap)
{
    ds::SimAllocator alloc(0x10000000, 1 << 20, 4);
    std::set<Addr> blocks;
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 50; ++i) {
            Addr a = alloc.alloc(t, 24);
            // Block-aligned per-thread allocations: each lands on a
            // fresh block.
            EXPECT_EQ(blockAddr(a), a);
            EXPECT_TRUE(blocks.insert(a).second);
        }
    }
}

TEST(Allocator, SharedArenaIsWordPacked)
{
    ds::SimAllocator alloc(0x10000000, 1 << 20, 1);
    Addr a = alloc.allocShared(8);
    Addr b = alloc.allocShared(8);
    EXPECT_EQ(b, a + 8); // Packed: false sharing is *possible* here.
}

TEST(AllocatorDeath, ArenaExhaustionIsFatal)
{
    ds::SimAllocator alloc(0x10000000, 4096, 1);
    EXPECT_DEATH(
        {
            for (int i = 0; i < 1000; ++i)
                alloc.alloc(0, kBlockBytes);
        },
        "exhausted");
}

TEST(Hashtable, MirrorsStdMapThroughResizes)
{
    DsRig rig;
    auto table = ds::SimHashtable::create(rig.cl.memory(), rig.alloc, 4,
                                          /*resizable=*/true);
    std::unordered_map<Word, Word> mirror;
    Xoshiro rng(5);

    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < 300; ++i) {
            Word key = rng.below(120);
            unsigned op = static_cast<unsigned>(rng.below(3));
            if (op == 0) {
                co_await ctx.txn([&table, &ctx, key](Tx &tx) {
                    return table.insert(tx, ctx.tid(), key, key * 3);
                });
                mirror.emplace(key, key * 3);
            } else if (op == 1) {
                TxValue found =
                    co_await ctx.txn([&table, key](Tx &tx) {
                        return table.lookup(tx, key);
                    });
                if (mirror.count(key)) {
                    EXPECT_EQ(found.raw(), mirror[key] + 1);
                } else {
                    EXPECT_EQ(found.raw(), 0u);
                }
            } else {
                TxValue removed =
                    co_await ctx.txn([&table, key](Tx &tx) {
                        return table.remove(tx, key);
                    });
                EXPECT_EQ(removed.raw(), mirror.erase(key));
            }
        }
        co_await ctx.barrier();
    });
    rig.cl.run();

    EXPECT_EQ(table.hostCountNodes(rig.cl.memory()), mirror.size());
    EXPECT_EQ(table.hostSize(rig.cl.memory()), mirror.size());
    // It must actually have grown from 4 buckets.
    EXPECT_GT(table.hostNumBuckets(rig.cl.memory()), 4u);
    for (const auto &[k, v] : mirror)
        EXPECT_TRUE(table.hostContains(rig.cl.memory(), k));
}

TEST(Hashtable, ConcurrentInsertsAllLand)
{
    DsRig rig(8, htm::TMMode::Retcon);
    auto table = ds::SimHashtable::create(rig.cl.memory(), rig.alloc,
                                          16, true);
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < 40; ++i) {
            Word key = ctx.tid() * 1000 + i;
            co_await ctx.txn([&table, &ctx, key](Tx &tx) {
                return table.insert(tx, ctx.tid(), key, key);
            });
        }
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_EQ(table.hostCountNodes(rig.cl.memory()), 320u);
    EXPECT_EQ(table.hostSize(rig.cl.memory()), 320u);
}

TEST(RbTree, InvariantsHoldUnderConcurrentInserts)
{
    for (auto mode : {htm::TMMode::Eager, htm::TMMode::LazyVB,
                      htm::TMMode::Retcon}) {
        DsRig rig(6, mode);
        auto tree = ds::SimRBTree::create(rig.cl.memory(), rig.alloc);
        rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
            for (int i = 0; i < 50; ++i) {
                Word key =
                    ds::hashKey(ctx.tid() * 333 + Word(i) + 1);
                co_await ctx.txn([&tree, &ctx, key](Tx &tx) {
                    return tree.insert(tx, ctx.tid(), key, key);
                });
            }
            co_await ctx.barrier();
        });
        rig.cl.run();
        EXPECT_TRUE(tree.hostCheckInvariants(rig.cl.memory()))
            << "mode " << htm::tmModeName(mode);
        EXPECT_EQ(tree.hostCount(rig.cl.memory()), 300u);
    }
}

TEST(RbTree, LookupAndLazyRemove)
{
    DsRig rig;
    auto tree = ds::SimRBTree::create(rig.cl.memory(), rig.alloc);
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (Word k = 1; k <= 20; ++k)
            co_await ctx.txn([&tree, &ctx, k](Tx &tx) {
                return tree.insert(tx, ctx.tid(), k, k * 7);
            });
        TxValue v = co_await ctx.txn(
            [&tree](Tx &tx) { return tree.lookup(tx, 13); });
        EXPECT_EQ(v.raw(), 13u * 7 + 1);
        TxValue r = co_await ctx.txn(
            [&tree](Tx &tx) { return tree.remove(tx, 13); });
        EXPECT_EQ(r.raw(), 1u);
        v = co_await ctx.txn(
            [&tree](Tx &tx) { return tree.lookup(tx, 13); });
        EXPECT_EQ(v.raw(), 0u);
        // Reinsert revives the tombstone.
        r = co_await ctx.txn([&tree, &ctx](Tx &tx) {
            return tree.insert(tx, ctx.tid(), 13, 99);
        });
        EXPECT_EQ(r.raw(), 1u);
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_EQ(tree.hostCount(rig.cl.memory()), 20u);
    EXPECT_TRUE(tree.hostCheckInvariants(rig.cl.memory()));
}

TEST(Queue, FifoOrderSingleThread)
{
    DsRig rig;
    auto q = ds::SimQueue::create(rig.cl.memory(), rig.alloc);
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (Word v = 1; v <= 10; ++v)
            co_await ctx.txn([&q, &ctx, v](Tx &tx) {
                return q.enqueue(tx, ctx.tid(), v);
            });
        for (Word v = 1; v <= 10; ++v) {
            TxValue got = co_await ctx.txn(
                [&q](Tx &tx) { return q.dequeue(tx); });
            EXPECT_EQ(got.raw(), v + 1);
        }
        TxValue empty = co_await ctx.txn(
            [&q](Tx &tx) { return q.dequeue(tx); });
        EXPECT_EQ(empty.raw(), 0u);
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_EQ(q.hostCount(rig.cl.memory()), 0u);
}

TEST(Queue, ConcurrentDrainDeliversEachItemOnce)
{
    for (auto mode : {htm::TMMode::Eager, htm::TMMode::Retcon}) {
        DsRig rig(6, mode);
        auto q = ds::SimQueue::create(rig.cl.memory(), rig.alloc);
        for (Word v = 1; v <= 120; ++v)
            q.hostEnqueue(rig.cl.memory(), v);
        std::vector<Word> seen;
        rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
            for (;;) {
                TxValue got = co_await ctx.txn(
                    [&q](Tx &tx) { return q.dequeue(tx); });
                if (got.raw() == 0)
                    break;
                seen.push_back(got.raw() - 1);
            }
            co_await ctx.barrier();
        });
        rig.cl.run();
        std::sort(seen.begin(), seen.end());
        ASSERT_EQ(seen.size(), 120u) << htm::tmModeName(mode);
        for (Word v = 1; v <= 120; ++v)
            EXPECT_EQ(seen[v - 1], v);
    }
}

TEST(RefCount, BalancedPairsRestoreCount)
{
    DsRig rig(4, htm::TMMode::Retcon);
    Addr obj = ds::makeRefCounted(rig.cl.memory(), rig.alloc, 2, 50);
    rig.cl.machine().predictor().observeConflict(blockAddr(obj));
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        for (int i = 0; i < 30; ++i) {
            co_await ctx.txn([obj](Tx &tx) -> Task<TxValue> {
                co_await ds::incref(tx, obj);
                co_await tx.work(20);
                co_await ds::decref(tx, obj);
                co_return TxValue(0);
            });
        }
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_EQ(rig.cl.memory().readWord(obj), 50u);
}

TEST(Grid, ClaimPathIsAllOrNothing)
{
    DsRig rig;
    auto grid =
        ds::SimGrid::create(rig.cl.memory(), rig.alloc, 8, 8, 2);
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        std::vector<Word> path1{1, 2, 3};
        std::vector<Word> path2{3, 4, 5}; // Overlaps path1 at cell 3.
        TxValue ok1 = co_await ctx.txn([&](Tx &tx) {
            return grid.claimPath(tx, path1, 7);
        });
        EXPECT_EQ(ok1.raw(), 1u);
        TxValue ok2 = co_await ctx.txn([&](Tx &tx) {
            return grid.claimPath(tx, path2, 8);
        });
        EXPECT_EQ(ok2.raw(), 0u);
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_EQ(grid.hostClaimedCells(rig.cl.memory()), 3u);
}

TEST(Mesh, RefineClearsBadFlagsAndBumpsEpochs)
{
    DsRig rig;
    Xoshiro rng(3);
    auto mesh = ds::SimMesh::create(rig.cl.memory(), rig.alloc, 32,
                                    100, rng);
    ASSERT_EQ(mesh.hostCountBad(rig.cl.memory()), 32u);
    Word touched_total = 0;
    rig.cl.start([&](WorkerCtx &ctx) -> Task<void> {
        TxValue touched = co_await ctx.txn([&](Tx &tx) {
            return mesh.refine(tx, mesh.node(0), 6);
        });
        touched_total = touched.raw();
        co_await ctx.barrier();
    });
    rig.cl.run();
    EXPECT_GT(touched_total, 0u);
    EXPECT_LT(mesh.hostCountBad(rig.cl.memory()), 32u);
}
