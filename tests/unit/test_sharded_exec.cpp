/**
 * @file
 * End-to-end tests for the sharded cluster: shard count must never
 * change committed architectural state (bit-identical runs for a
 * fixed seed), the per-shard TraceRecorders must merge into one
 * globally ordered trace, the ReenactmentValidator must stay sound
 * over the merged stream with N > 1 shards — including catching
 * deliberately corrupted repairs (faultInjectRepairXor) — and the
 * service workload must conserve its invariants under sharding and
 * dispatch-bandwidth modeling.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "api/runner.hpp"
#include "exec/cluster.hpp"
#include "trace/reenact.hpp"
#include "trace/shard_mux.hpp"

using namespace retcon;
using namespace retcon::exec;

namespace {

constexpr Addr kCounter = 0x1000;
constexpr int kIters = 25;
constexpr unsigned kThreads = 8;

Task<TxValue>
incrementBody(Tx &tx)
{
    TxValue v = co_await tx.load(kCounter);
    v = tx.add(v, 1);
    co_await tx.store(kCounter, v);
    co_return v;
}

Task<void>
threadMain(WorkerCtx &ctx)
{
    for (int i = 0; i < kIters; ++i) {
        co_await ctx.txn([](Tx &tx) { return incrementBody(tx); });
        co_await ctx.work(20);
    }
    co_await ctx.barrier();
}

struct ShardedRun {
    Cycle cycles = 0;
    Word counter = 0;
    std::uint64_t commits = 0;
    trace::ReenactReport report;
    std::vector<trace::Record> merged;
    std::uint64_t muxEvents = 0;
    std::uint64_t muxRepairs = 0;
};

/** Contended-counter run on a sharded cluster with mux + validator. */
ShardedRun
runSharded(unsigned nshards, Word fault_xor = 0, unsigned bandwidth = 0,
           htm::TMMode mode = htm::TMMode::Retcon,
           Word fwd_fault_xor = 0)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.numShards = nshards;
    cfg.shardBandwidth = bandwidth;
    cfg.tm.mode = mode;
    cfg.tm.faultInjectRepairXor = fault_xor;
    cfg.tm.faultInjectForwardXor = fwd_fault_xor;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));

    trace::ShardMux mux(
        nshards, [&cluster](CoreId c) { return cluster.shardOf(c); },
        /*ring_capacity=*/1 << 16);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    mux.addDownstream(&validator);
    cluster.setTraceSink(&mux);

    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    ShardedRun out;
    out.cycles = cluster.run();
    out.counter = cluster.memory().readWord(kCounter);
    out.commits = cluster.aggregateStats().commits;
    out.report = validator.report();
    out.merged = mux.mergedSnapshot();
    out.muxEvents = mux.totalEvents();
    for (unsigned s = 0; s < nshards; ++s)
        out.muxRepairs += mux.counters(s).repairs;
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Determinism across shard counts
// ---------------------------------------------------------------------

TEST(ShardedExec, ShardCountDoesNotChangeCommittedState)
{
    ShardedRun one = runSharded(1);
    EXPECT_EQ(one.counter, Word(kThreads * kIters));
    for (unsigned n : {2u, 4u, 8u}) {
        ShardedRun sharded = runSharded(n);
        // Bit-identical simulation: same makespan, same architectural
        // state, same commit count, same provenance stream length.
        EXPECT_EQ(sharded.cycles, one.cycles) << n << " shards";
        EXPECT_EQ(sharded.counter, one.counter) << n << " shards";
        EXPECT_EQ(sharded.commits, one.commits) << n << " shards";
        EXPECT_EQ(sharded.muxEvents, one.muxEvents) << n << " shards";
    }
}

TEST(ShardedExec, ServiceWorkloadStateIdenticalAcrossShardCounts)
{
    api::RunConfig cfg;
    cfg.workload = "service";
    cfg.nthreads = 8;
    cfg.scale = 0.05;
    cfg.tm = api::retconConfig();
    api::RunResult one = api::runOnce(cfg);
    EXPECT_TRUE(one.validation.ok) << one.validation.note;
    for (unsigned n : {2u, 4u}) {
        cfg.shards = n;
        api::RunResult r = api::runOnce(cfg);
        EXPECT_TRUE(r.validation.ok) << r.validation.note;
        EXPECT_EQ(r.cycles, one.cycles) << n << " shards";
        EXPECT_EQ(r.coreStats.commits, one.coreStats.commits);
        EXPECT_EQ(r.coreStats.aborts, one.coreStats.aborts);
    }
}

TEST(ShardedExec, BandwidthModelChangesTimingButPreservesCorrectness)
{
    ShardedRun free = runSharded(4);
    ShardedRun limited = runSharded(4, 0, /*bandwidth=*/1);
    // Dispatch serialization slows the run but every invariant holds.
    EXPECT_GT(limited.cycles, free.cycles);
    EXPECT_EQ(limited.counter, Word(kThreads * kIters));
    EXPECT_EQ(limited.report.mismatches, 0u);
    EXPECT_EQ(limited.report.commitsChecked,
              std::uint64_t(kThreads * kIters));
}

// ---------------------------------------------------------------------
// Merged per-shard traces + the audit oracle at N > 1
// ---------------------------------------------------------------------

TEST(ShardedExec, MergedShardTracesPassReenactmentValidator)
{
    ShardedRun out = runSharded(4);
    EXPECT_EQ(out.report.mismatches, 0u) << out.report.summary();
    EXPECT_EQ(out.report.commitsChecked,
              std::uint64_t(kThreads * kIters));
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_GT(out.muxRepairs, 0u);
}

TEST(ShardedExec, MergedSnapshotIsGloballyOrderedAndComplete)
{
    ShardedRun out = runSharded(4);
    // Ring capacity exceeds the event count: the merge must contain
    // every event exactly once, in strictly increasing machine order.
    ASSERT_EQ(out.merged.size(), out.muxEvents);
    for (std::size_t i = 1; i < out.merged.size(); ++i) {
        EXPECT_LT(out.merged[i - 1].seq, out.merged[i].seq);
        EXPECT_LE(out.merged[i - 1].cycle, out.merged[i].cycle);
    }
}

TEST(ShardedExec, ShardRecordersOnlyHoldTheirCoresRecords)
{
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.numShards = 4;
    cfg.tm.mode = htm::TMMode::Retcon;
    Cluster cluster(cfg);
    cluster.machine().predictor().observeConflict(blockAddr(kCounter));
    trace::ShardMux mux(
        4, [&cluster](CoreId c) { return cluster.shardOf(c); }, 1 << 16);
    cluster.setTraceSink(&mux);
    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    cluster.run();
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_GT(mux.recorder(s).size(), 0u) << "shard " << s;
        mux.recorder(s).forEach([&](const trace::Record &r) {
            EXPECT_EQ(cluster.shardOf(r.core), s);
        });
    }
}

TEST(ShardedExec, CorruptedRepairIsCaughtWithFourShards)
{
    // The negative control must survive sharding: a fault-injected
    // repair shows up as a mismatch in the merged audit stream.
    ShardedRun out = runSharded(4, /*fault_xor=*/0x10);
    EXPECT_GT(out.report.repairsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::RepairValue);
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x10));
}

TEST(ShardedExec, CorruptedRepairIsCaughtUnderBandwidthAndStealing)
{
    ShardedRun out = runSharded(4, /*fault_xor=*/0x4, /*bandwidth=*/1);
    EXPECT_GT(out.report.mismatches, 0u);
}

// ---------------------------------------------------------------------
// DATM forwarding chains across shard boundaries
// ---------------------------------------------------------------------

TEST(ShardedExec, DatmForwardingChainsValidateAcrossShards)
{
    // Forward records resolve against the producer's logged store on
    // the *merged* live stream: a consumer on one shard must find the
    // producing store a different shard recorded, in global order.
    ShardedRun out = runSharded(4, 0, 0, htm::TMMode::DATM);
    EXPECT_EQ(out.counter, Word(kThreads * kIters));
    EXPECT_GT(out.report.forwardsChecked, 0u);
    EXPECT_GT(out.report.forwardedCommitsChecked, 0u);
    EXPECT_EQ(out.report.forwardedCommitsSkipped, 0u);
    EXPECT_EQ(out.report.mismatches, 0u) << out.report.summary();
}

TEST(ShardedExec, DatmChainsActuallyCrossShardBoundaries)
{
    // The contended counter bounces between all 8 cores, which map
    // round-robin onto 4 shards: resolve each Forward record's
    // producer (via its TxBegin uid) and require at least one link
    // whose consumer and producer live on different shards.
    ClusterConfig cfg;
    cfg.numThreads = kThreads;
    cfg.numShards = 4;
    cfg.tm.mode = htm::TMMode::DATM;
    Cluster cluster(cfg);
    trace::ShardMux mux(
        4, [&cluster](CoreId c) { return cluster.shardOf(c); }, 1 << 16);
    trace::ReenactmentValidator validator(
        [&cluster](Addr a) { return cluster.memory().readWord(a); });
    mux.addDownstream(&validator);
    cluster.setTraceSink(&mux);
    cluster.start([](WorkerCtx &ctx) { return threadMain(ctx); });
    cluster.run();

    std::unordered_map<std::uint64_t, CoreId> uid_core;
    std::uint64_t cross_shard = 0, forwards = 0;
    for (const trace::Record &r : mux.mergedSnapshot()) {
        if (r.kind == trace::EventKind::TxBegin) {
            uid_core[r.b] = r.core;
        } else if (r.kind == trace::EventKind::Forward) {
            ++forwards;
            auto it = uid_core.find(r.b);
            ASSERT_NE(it, uid_core.end());
            if (cluster.shardOf(it->second) != cluster.shardOf(r.core))
                ++cross_shard;
        }
    }
    EXPECT_GT(forwards, 0u);
    EXPECT_GT(cross_shard, 0u);
    EXPECT_EQ(validator.report().mismatches, 0u)
        << validator.report().summary();
}

TEST(ShardedExec, CorruptedForwardIsCaughtWithFourShards)
{
    // The DATM negative control must survive sharding too: a
    // corrupted forwarded value shows up as a chain mismatch in the
    // merged audit stream.
    ShardedRun out = runSharded(4, 0, 0, htm::TMMode::DATM,
                                /*fwd_fault_xor=*/0x40);
    EXPECT_GT(out.report.forwardsChecked, 0u);
    EXPECT_GT(out.report.mismatches, 0u);
    ASSERT_FALSE(out.report.samples.empty());
    EXPECT_EQ(out.report.samples[0].what,
              trace::Mismatch::What::ForwardValue);
    EXPECT_EQ(out.report.samples[0].expected ^ out.report.samples[0].got,
              Word(0x40));
}
